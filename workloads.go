package sensmart

import (
	"repro/internal/progs"
)

// Workload re-exports: the paper's benchmark applications, usable as
// ready-made programs for Deploy or for native runs.

// PeriodicParams configures the PeriodicTask workload (Section V-C).
type PeriodicParams = progs.PeriodicParams

// TreeSearchParams configures the sense-and-send binary-tree workload
// (Section V-D).
type TreeSearchParams = progs.TreeSearchParams

// KernelBenchmark names one of the seven kernel benchmark programs.
type KernelBenchmark = progs.KernelBenchmark

// KernelBenchmarks returns the seven kernel benchmarks of Figures 4 and 5
// (am, amplitude, crc, eventchain, lfsr, readadc, timer).
func KernelBenchmarks() []KernelBenchmark { return progs.KernelBenchmarks() }

// PeriodicTask builds the kernel-paced PeriodicTask program.
func PeriodicTask(p PeriodicParams) *Program { return progs.PeriodicTask(p) }

// PeriodicTaskNative builds the bare-metal PeriodicTask variant (Timer0
// interrupt wake-ups instead of kernel sleep quanta).
func PeriodicTaskNative(p PeriodicParams) *Program { return progs.PeriodicTaskNative(p) }

// TreeSearch builds one sense-and-send binary-tree search task.
func TreeSearch(p TreeSearchParams) (*Program, error) { return progs.TreeSearch(p) }

// LFSR, CRC, Amplitude, ReadADC, AM, EventChain and Timer build individual
// kernel benchmarks with custom workload sizes.
var (
	LFSR       = progs.LFSR
	CRC        = progs.CRC
	Amplitude  = progs.Amplitude
	ReadADC    = progs.ReadADC
	AM         = progs.AM
	EventChain = progs.EventChain
	Timer      = progs.Timer
)

// AllocDemo builds a program exercising the dynamic-memory allocation
// module of Section III-A (a bump allocator with pool reset).
func AllocDemo(nodes int) (*Program, error) { return progs.AllocDemo(nodes) }

// Package sensmart is the public API of the SenSmart reproduction: a
// multitasking operating system for wireless sensor networks built on
// base-station binary rewriting and versatile stack management (Chu, Gu,
// Liu, Li, Lu — "Versatile Stack Management for Multitasking Sensor
// Networks", ICDCS 2010).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - Assemble: the AVR assembler (the "compiler" of the paper's Figure 1)
//   - Rewrite: the base-station binary rewriter producing naturalized code
//   - NewSystem: a simulated MICA2-class node with the SenSmart kernel,
//     ready to deploy and run tasks
//   - The benchmark programs and evaluation harnesses used to regenerate
//     every table and figure of the paper (see EXPERIMENTS.md)
//
// Quickstart:
//
//	sys := sensmart.NewSystem()
//	prog, err := sys.CompileString("hello", src)
//	// handle err
//	task, err := sys.Deploy(prog)
//	// handle err
//	if err := sys.Boot(); err != nil { ... }
//	if err := sys.Run(10_000_000); err != nil { ... }
//
// See examples/ for runnable programs.
package sensmart

import (
	"repro/internal/avr/asm"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/minic"
	"repro/internal/profile"
	"repro/internal/rewriter"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Core workflow types.
type (
	// System is a simulated node with the SenSmart kernel attached.
	System = core.System
	// Option configures NewSystem.
	Option = core.Option
	// Program is a compiled application image plus its symbol list.
	Program = image.Program
	// Naturalized is a rewritten (naturalized) program.
	Naturalized = rewriter.Naturalized
	// Task is one running application instance with its memory region.
	Task = kernel.Task
	// Machine is the simulated ATmega128L-class node.
	Machine = mcu.Machine
	// KernelConfig tunes the kernel runtime.
	KernelConfig = kernel.Config
	// RewriterConfig tunes the base-station rewriter.
	RewriterConfig = rewriter.Config
	// ExperimentRunner regenerates the paper's tables and figures with a
	// configurable worker pool (see internal/experiment).
	ExperimentRunner = experiment.Runner
	// TraceRecorder collects typed cycle-stamped kernel/machine events
	// (see internal/trace).
	TraceRecorder = trace.Recorder
	// TraceEvent is one cycle-stamped event of the recorded stream.
	TraceEvent = trace.Event
	// Metrics is the kernel's aggregation snapshot: per-task utilization,
	// per-service trap costs, and the kernel-vs-application cycle split.
	Metrics = trace.Metrics
	// Profiler is the cycle-exact symbol profiler: per-(task, symbol, PC)
	// cycle attribution, a stack-depth flight recorder, and memory
	// watchpoints (see internal/profile).
	Profiler = profile.Profiler
	// ProfileOptions tunes the profiler (stack sampling interval, ring
	// size, watch-hit cap).
	ProfileOptions = profile.Options
	// Watchpoint is one watched logical address range.
	Watchpoint = profile.Watchpoint
	// TelemetrySampler snapshots kernel and per-task gauges every N
	// simulated cycles into a fixed-size ring, with Prometheus/JSON/NDJSON
	// exporters and an embedded live dashboard (see internal/telemetry).
	TelemetrySampler = telemetry.Sampler
	// TelemetryOptions tunes the sampler (interval, ring size, NDJSON
	// stream).
	TelemetryOptions = telemetry.Options
	// TelemetrySample is one cycle-stamped gauge snapshot.
	TelemetrySample = telemetry.Sample
	// TelemetryServer serves a sampler (dashboard, /metrics, /api/series)
	// over HTTP.
	TelemetryServer = telemetry.Server
)

// NewSystem creates a fresh simulated node with an attached SenSmart
// kernel. See core.NewSystem.
func NewSystem(opts ...Option) *System { return core.NewSystem(opts...) }

// WithKernelConfig overrides the kernel configuration.
func WithKernelConfig(cfg KernelConfig) Option { return core.WithKernelConfig(cfg) }

// WithRewriterConfig overrides the rewriter configuration.
func WithRewriterConfig(cfg RewriterConfig) Option { return core.WithRewriterConfig(cfg) }

// WithTrace attaches a trace recorder to the system being built; the kernel
// and machine stamp typed cycle events into it. Export the stream with
// System.WriteTrace or inspect it with NewTraceRecorder().Events().
func WithTrace(r *TraceRecorder) Option { return core.WithTrace(r) }

// NewTraceRecorder returns an empty unbounded trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// WithProfile attaches a cycle-exact profiler to the system being built.
// Export results with System.WriteProfile ("pprof", "folded", or "csv") or
// query them with Profiler.Top / Flatten / StackTimeline / WatchHits.
func WithProfile(p *Profiler) Option { return core.WithProfile(p) }

// NewProfiler returns an empty profiler. Attach it with WithProfile.
func NewProfiler(o ProfileOptions) *Profiler { return profile.New(o) }

// WithTelemetry attaches a cycle-domain telemetry sampler to the system
// being built. Read it live over HTTP with TelemetryServer, or export with
// Sampler.WriteJSON / WriteNDJSON / WritePrometheus; take a final
// reconciled snapshot with System.SampleTelemetry.
func WithTelemetry(s *TelemetrySampler) Option { return core.WithTelemetry(s) }

// NewTelemetrySampler returns an empty sampler. Attach it with
// WithTelemetry.
func NewTelemetrySampler(o TelemetryOptions) *TelemetrySampler { return telemetry.New(o) }

// ParseWatch parses a -watch style watchpoint spec: addr[:len][:r|w|rw],
// addresses in task-logical space (hex accepted with 0x prefix).
func ParseWatch(s string) (Watchpoint, error) { return profile.ParseWatch(s) }

// Assemble compiles AVR assembly source into a program image.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// Rewrite naturalizes a program for execution under the SenSmart kernel
// (the base-station rewriting stage of Figure 1).
func Rewrite(prog *Program, cfg RewriterConfig) (*Naturalized, error) {
	return rewriter.Rewrite(prog, cfg)
}

// NewMachine returns a bare simulated node (no kernel) for native runs.
func NewMachine() *Machine { return mcu.New() }

// CompileC compiles a minic (C subset) source file into a program image —
// the paper's applications are written in C/nesC; internal/minic provides
// that front end (see its package documentation for the supported subset).
func CompileC(name, src string) (*Program, error) { return minic.Compile(name, src) }

// Experiments returns an evaluation-harness runner that fans each sweep
// point out to the given number of workers (0 selects GOMAXPROCS, 1 forces
// the serial path). Results merge in sweep order, so output is identical
// for every concurrency level.
func Experiments(concurrency int) ExperimentRunner {
	return ExperimentRunner{Concurrency: concurrency}
}

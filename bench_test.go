package sensmart

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (run with `go test -bench=. -benchmem`), plus
// ablation benchmarks for the design choices DESIGN.md calls out and
// substrate micro-benchmarks. The custom b.ReportMetric series mirror the
// rows the paper reports; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/avr/asm"
	"repro/internal/baseline/tkernel"
	"repro/internal/experiment"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// BenchmarkTable1FeatureMatrix regenerates the qualitative comparison
// matrix (Table I).
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Table1()
		if len(t.Rows) != 8 {
			b.Fatal("feature matrix incomplete")
		}
	}
}

// BenchmarkTable2Overheads measures the kernel-service overheads (Table II)
// and reports the headline rows as metrics.
func BenchmarkTable2Overheads(b *testing.B) {
	var tab *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiment.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tab.Rows {
		if v, convErr := strconv.ParseFloat(row[1], 64); convErr == nil {
			b.ReportMetric(v, "cyc/"+metricName(row[0]))
		}
	}
}

// BenchmarkFigure4CodeInflation regenerates the code-inflation comparison
// (Figure 4) and reports SenSmart's inflation per benchmark.
func BenchmarkFigure4CodeInflation(b *testing.B) {
	var tab *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiment.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tab.Rows {
		native, _ := strconv.ParseFloat(row[1], 64)
		total, _ := strconv.ParseFloat(row[5], 64)
		b.ReportMetric(100*(total-native)/native, "infl%/"+row[0])
	}
}

// BenchmarkFigure5ExecutionTime regenerates the kernel-benchmark timing
// comparison (Figure 5), reporting the SenSmart/native slowdown factors.
func BenchmarkFigure5ExecutionTime(b *testing.B) {
	var tab *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiment.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range tab.Rows {
		native, _ := strconv.ParseFloat(row[1], 64)
		smart, _ := strconv.ParseFloat(row[3], 64)
		if native > 0 {
			b.ReportMetric(smart/native, "slowdown/"+row[0])
		}
	}
}

// fig6Sizes is a reduced sweep for the bench harness (the full 10-point
// 300-activation sweep belongs to `sensmart-bench -exp fig6`).
var fig6Sizes = []int{20_000, 60_000, 100_000}

// BenchmarkFigure6aPeriodicTime regenerates the PeriodicTask execution-time
// sweep (Figure 6a).
func BenchmarkFigure6aPeriodicTime(b *testing.B) {
	var points []experiment.Figure6Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiment.Figure6(fig6Sizes, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(float64(p.SenSmartCycles)/float64(p.NativeCycles),
			fmt.Sprintf("xnative/%dk", p.Instructions/1000))
	}
}

// BenchmarkFigure6bUtilization regenerates the CPU-utilization sweep
// (Figure 6b).
func BenchmarkFigure6bUtilization(b *testing.B) {
	var points []experiment.Figure6Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiment.Figure6(fig6Sizes, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(100*p.SenSmartUtil, fmt.Sprintf("util%%/%dk", p.Instructions/1000))
	}
}

// BenchmarkFigure6cMate regenerates the Maté-VM comparison (Figure 6c).
func BenchmarkFigure6cMate(b *testing.B) {
	var points []experiment.Figure6Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiment.Figure6(fig6Sizes, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(float64(p.MateCycles)/float64(p.NativeCycles),
			fmt.Sprintf("matexnative/%dk", p.Instructions/1000))
	}
}

// BenchmarkFigure7StackVersatility regenerates the binary-tree search
// stack-versatility experiment (Figure 7).
func BenchmarkFigure7StackVersatility(b *testing.B) {
	var points []experiment.Figure7Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiment.Figure7([]int{8, 24, 40}, 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(float64(p.SurvivingTasks), fmt.Sprintf("tasks/n%d", p.NodesPerTree))
		b.ReportMetric(p.AvgStackAlloc, fmt.Sprintf("stackB/n%d", p.NodesPerTree))
		b.ReportMetric(float64(p.Relocations), fmt.Sprintf("relocs/n%d", p.NodesPerTree))
	}
}

// BenchmarkFigure8VsLiteOS regenerates the SenSmart-vs-fixed-stack
// comparison (Figure 8).
func BenchmarkFigure8VsLiteOS(b *testing.B) {
	var points []experiment.Figure8Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiment.Figure8([]int{10, 30, 50}, 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(float64(p.SenSmartTasks), fmt.Sprintf("sensmart/n%d", p.NodesPerTree))
		b.ReportMetric(float64(p.FixedTasks), fmt.Sprintf("liteos/n%d", p.NodesPerTree))
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationGrouping quantifies the grouped-memory-access
// optimization (Section IV-C2) on a double-word copy loop — the "2 or 4
// memory access instructions performed together" pattern the paper
// describes.
func BenchmarkAblationGrouping(b *testing.B) {
	prog, err := asm.Assemble("copy32", `
.data
buf: .space 64
.text
main:
    ldi r20, 200         ; outer repetitions
outer:
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
    ldi r17, 8           ; 8 double-words of 4 bytes
copy:
    ld r0, X+            ; grouped 4-access run
    ld r1, X+
    ld r2, X+
    ld r3, X+
    add r0, r1
    dec r17
    brne copy
    dec r20
    brne outer
    break
`)
	if err != nil {
		b.Fatal(err)
	}
	run := func(cfg rewriter.Config) uint64 {
		nat, err := rewriter.Rewrite(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		m := mcu.New()
		k := kernel.New(m, kernel.Config{})
		if _, err := k.AddTask("crc", nat); err != nil {
			b.Fatal(err)
		}
		if err := k.Boot(); err != nil {
			b.Fatal(err)
		}
		if err := k.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
		return m.Cycles()
	}
	var with, without uint64
	for i := 0; i < b.N; i++ {
		with = run(rewriter.Config{})
		without = run(rewriter.Config{NoGrouping: true})
	}
	b.ReportMetric(float64(without)/float64(with), "speedup")
}

// BenchmarkAblationTrampolineMerge quantifies trampoline merging: total
// trampoline bytes across the seven kernel benchmarks with and without it.
func BenchmarkAblationTrampolineMerge(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		with, without = 0, 0
		for _, kb := range progs.KernelBenchmarks() {
			m, err := rewriter.Rewrite(kb.Program, rewriter.Config{})
			if err != nil {
				b.Fatal(err)
			}
			u, err := rewriter.Rewrite(kb.Program, rewriter.Config{NoTrampolineMerge: true})
			if err != nil {
				b.Fatal(err)
			}
			with += 2 * m.TrampolineWords
			without += 2 * u.TrampolineWords
		}
	}
	b.ReportMetric(float64(without-with), "bytes-saved")
}

// BenchmarkAblationRelocation quantifies stack relocation itself: how many
// tree-search tasks survive with and without it, in the same memory.
func BenchmarkAblationRelocation(b *testing.B) {
	run := func(disable bool) int {
		m := mcu.New()
		k := kernel.New(m, kernel.Config{InitialStack: 64, DisableRelocation: disable})
		for i := 0; i < 8; i++ {
			prog, err := progs.TreeSearch(progs.TreeSearchParams{
				Trees: 4, NodesPerTree: 20, Seed: uint16(0xACE1 + 7*i),
			})
			if err != nil {
				b.Fatal(err)
			}
			nat, err := rewriter.Rewrite(prog, rewriter.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := k.AddTask(fmt.Sprintf("t%d", i), nat); err != nil {
				break
			}
		}
		if err := k.Boot(); err != nil {
			b.Fatal(err)
		}
		if err := k.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		alive := 0
		for _, t := range k.Tasks {
			if t.State() != kernel.TaskTerminated {
				alive++
			}
		}
		return alive
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(float64(with), "tasks-with-reloc")
	b.ReportMetric(float64(without), "tasks-without")
}

// --- Substrate micro-benchmarks ---

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second of the MCU core (the substrate every experiment stands on).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog := progs.LFSR(1_000_000)
	m := mcu.New()
	if err := m.LoadFlash(0, prog.Words); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.SetPC(prog.Entry)
		_ = m.Run(8_000_000)
		cycles += m.Cycles()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkRewriter measures base-station rewriting throughput.
func BenchmarkRewriter(b *testing.B) {
	prog := progs.CRC(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewriter.Rewrite(prog, rewriter.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prog.SizeBytes()), "bytes/prog")
}

// BenchmarkTKernelNaturalize measures the t-kernel baseline's rewriting.
func BenchmarkTKernelNaturalize(b *testing.B) {
	prog := progs.CRC(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tkernel.Naturalize(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// metricName compresses a row label into a metric suffix.
func metricName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c == ' ':
			out = append(out, '-')
		}
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}

// BenchmarkAblationCrossProgramMerge quantifies cross-program trampoline
// merging on a node that co-hosts all seven kernel benchmarks.
func BenchmarkAblationCrossProgramMerge(b *testing.B) {
	var shared, separate int
	for i := 0; i < b.N; i++ {
		var nats []*rewriter.Naturalized
		for _, kb := range progs.KernelBenchmarks() {
			nat, err := rewriter.Rewrite(kb.Program, rewriter.Config{})
			if err != nil {
				b.Fatal(err)
			}
			nats = append(nats, nat)
		}
		shared, separate = rewriter.SharedTrampolineWords(nats...)
	}
	b.ReportMetric(float64(2*(separate-shared)), "bytes-saved")
}

// Command sensmart-cc compiles minic (C subset) source into a SenSmart
// program image — the compiler stage of the paper's Figure 1.
//
// Usage:
//
//	sensmart-cc [-o prog.json] [-S] [-list] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/avr"
	"repro/internal/minic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-cc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-cc", flag.ContinueOnError)
	out := fs.String("o", "", "write the program image (JSON) to this file")
	list := fs.Bool("list", false, "print the generated AVR code listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sensmart-cc [-o out.json] [-list] file.c")
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	prog, err := minic.Compile(name, string(src))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes of code, heap %d bytes, %d symbols\n",
		prog.Name, prog.SizeBytes(), prog.HeapSize, len(prog.Symbols))
	if *list {
		fmt.Print(avr.DisasmWords(prog.Words))
	}
	if *out != "" {
		data, err := prog.EncodeJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/image"
)

const testC = `
int x;
void main() {
    x = 6 * 7;
    exit();
}
`

func TestCCToolCompiles(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(src, []byte(testC), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "prog.json")
	if err := run([]string{"-o", out, "-list", src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var prog image.Program
	if err := prog.DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	if _, ok := prog.Lookup("g_x"); !ok {
		t.Error("compiled image missing g_x symbol")
	}
}

func TestCCToolRejectsBadC(t *testing.T) {
	src := filepath.Join(t.TempDir(), "bad.c")
	if err := os.WriteFile(src, []byte("void main() { y = 1; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{src}); err == nil {
		t.Error("expected compile error")
	}
}

func TestCCToolUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
}

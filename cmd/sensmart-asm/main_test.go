package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/image"
)

const testSrc = `
.data
v: .space 1
.text
main:
    ldi r16, 7
    sts v, r16
    break
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAsmToolWritesImage(t *testing.T) {
	src := writeTemp(t, "prog.s", testSrc)
	out := filepath.Join(t.TempDir(), "prog.json")
	if err := run([]string{"-o", out, "-list", "-sym", src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var prog image.Program
	if err := prog.DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	if prog.Name != "prog" || len(prog.Words) == 0 {
		t.Errorf("decoded program wrong: %+v", prog)
	}
}

func TestAsmToolRejectsBadSource(t *testing.T) {
	src := writeTemp(t, "bad.s", "main:\n    frobnicate r1\n")
	if err := run([]string{src}); err == nil {
		t.Error("expected assembly error")
	}
}

func TestAsmToolUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error with no arguments")
	}
	if err := run([]string{"/nonexistent/file.s"}); err == nil {
		t.Error("expected error for a missing file")
	}
}

// Command sensmart-asm assembles AVR source into a SenSmart program image
// (the compiler stage of the paper's Figure 1).
//
// Usage:
//
//	sensmart-asm [-o prog.json] [-list] [-sym] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/avr"
	"repro/internal/avr/asm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-asm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-asm", flag.ContinueOnError)
	out := fs.String("o", "", "write the program image (JSON) to this file")
	list := fs.Bool("list", false, "print a disassembly listing")
	sym := fs.Bool("sym", false, "print the symbol list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sensmart-asm [-o out.json] [-list] [-sym] file.s")
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	prog, err := asm.Assemble(name, string(src))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes of code, entry %#x, heap %d bytes, %d symbols\n",
		prog.Name, prog.SizeBytes(), prog.Entry, prog.HeapSize, len(prog.Symbols))
	if *list {
		fmt.Print(avr.DisasmWords(prog.Words))
	}
	if *sym {
		for _, s := range prog.Symbols {
			fmt.Printf("%-24s %-5s %#06x\n", s.Name, s.Kind, s.Addr)
		}
	}
	if *out != "" {
		data, err := prog.EncodeJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

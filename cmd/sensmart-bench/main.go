// Command sensmart-bench regenerates the tables and figures of the paper's
// evaluation (Section V). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	sensmart-bench -exp all
//	sensmart-bench -exp fig6 -activations 300
//	sensmart-bench -exp fig7 -budget 80000000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|fig7|fig8|all")
	activations := fs.Int("activations", 300, "PeriodicTask activations (fig6; the paper uses 300)")
	budget := fs.Uint64("budget", 40_000_000, "simulated cycle budget for fig7/fig8 workloads")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Print(experiment.Table1().Render())
			return nil
		},
		"table2": func() error {
			t, err := experiment.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig4": func() error {
			t, err := experiment.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig5": func() error {
			t, err := experiment.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig6": func() error {
			points, err := experiment.Figure6(nil, *activations)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure6Table(points).Render())
			return nil
		},
		"fig7": func() error {
			points, err := experiment.Figure7(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure7Table(points).Render())
			return nil
		},
		"fig8": func() error {
			points, err := experiment.Figure8(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure8Table(points).Render())
			return nil
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return runner()
}

// Command sensmart-bench regenerates the tables and figures of the paper's
// evaluation (Section V). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	sensmart-bench -exp all
//	sensmart-bench -exp fig6 -activations 300
//	sensmart-bench -exp fig7 -budget 80000000
//	sensmart-bench -exp fig5 -parallel 4
//	sensmart-bench -exp benchparallel -parallel 4 -activations 40 -out BENCH_parallel.json
//
// Sweeps fan out to -parallel workers (default GOMAXPROCS); each sweep
// point runs on a machine of its own and results merge in sweep order, so
// the output is byte-identical for every worker count. -parallel 1 keeps
// everything on one goroutine for debugging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|fig7|fig8|benchparallel|all")
	activations := fs.Int("activations", 300, "PeriodicTask activations (fig6; the paper uses 300)")
	budget := fs.Uint64("budget", 40_000_000, "simulated cycle budget for fig7/fig8 workloads")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count; 1 = serial")
	out := fs.String("out", "BENCH_parallel.json", "output path for -exp benchparallel")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := experiment.Runner{Concurrency: *parallel}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Print(experiment.Table1().Render())
			return nil
		},
		"table2": func() error {
			t, err := experiment.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig4": func() error {
			t, err := r.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig5": func() error {
			t, err := r.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig6": func() error {
			points, err := r.Figure6(nil, *activations)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure6Table(points).Render())
			return nil
		},
		"fig7": func() error {
			points, err := r.Figure7(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure7Table(points).Render())
			return nil
		},
		"fig8": func() error {
			points, err := r.Figure8(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure8Table(points).Render())
			return nil
		},
		"benchparallel": func() error {
			b, err := experiment.BenchParallel(*parallel, *activations)
			if err != nil {
				return err
			}
			data, err := json.MarshalIndent(b, "", "  ")
			if err != nil {
				return err
			}
			data = append(data, '\n')
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n%s", *out, data)
			return nil
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return runner()
}

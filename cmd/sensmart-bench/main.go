// Command sensmart-bench regenerates the tables and figures of the paper's
// evaluation (Section V). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	sensmart-bench -exp all
//	sensmart-bench -exp fig6 -activations 300
//	sensmart-bench -exp fig7 -budget 80000000
//	sensmart-bench -exp fig5 -parallel 4
//	sensmart-bench -exp overhead -trace overhead.json -metrics
//	sensmart-bench -exp hotspots -top 5
//	sensmart-bench -exp hotspots -profile hotspots.pb.gz -folded hotspots.folded
//	sensmart-bench -exp profilebench -out BENCH_profile.json
//	sensmart-bench -exp benchparallel -parallel 4 -activations 40 -out BENCH_parallel.json
//	sensmart-bench -exp faultcampaign -seed 1 -trials 20 -out BENCH_faultcampaign.json
//	sensmart-bench -exp warmstart -prefix 2000000 -points 6 -out BENCH_warmstart.json
//	sensmart-bench -exp energy -activations 300 -out BENCH_energy.json
//	sensmart-bench -exp interp -out BENCH_interp.json
//	sensmart-bench -exp interp -baseline BENCH_interp.baseline.json
//	sensmart-bench -exp compare -old BENCH_interp.baseline.json -new BENCH_interp.json
//	sensmart-bench -exp fig6 -serve :8080
//
// Sweeps fan out to -parallel workers (default GOMAXPROCS); each sweep
// point runs on a machine of its own and results merge in sweep order, so
// the output is byte-identical for every worker count. -parallel 1 keeps
// everything on one goroutine for debugging.
//
// Pool runs report per-point progress lines (benchmark, sweep position,
// simulation rate) on stderr; -quiet suppresses them. -serve additionally
// exposes the progress feed and dashboard over HTTP while sweeps run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"

	"repro/internal/experiment"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|fig7|fig8|overhead|hotspots|profilebench|benchparallel|interp|faultcampaign|warmstart|energy|compare|all")
	activations := fs.Int("activations", 300, "PeriodicTask activations (fig6; the paper uses 300)")
	budget := fs.Uint64("budget", 40_000_000, "simulated cycle budget for fig7/fig8 workloads")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count; 1 = serial")
	out := fs.String("out", "", "output path for -exp benchparallel (default BENCH_parallel.json) and -exp profilebench (default BENCH_profile.json)")
	topK := fs.Int("top", 5, "with -exp hotspots: frames to report per benchmark")
	profileOut := fs.String("profile", "", "with -exp hotspots: run the seven benchmarks as one profiled multitask workload and write a gzipped pprof profile.proto here")
	foldedOut := fs.String("folded", "", "with -exp hotspots: like -profile, but folded stacks for speedscope / flamegraph.pl")
	reps := fs.Int("reps", 3, "with -exp profilebench: timing repetitions (best-of)")
	traceOut := fs.String("trace", "", "with -exp overhead: run all seven kernel benchmarks as one traced multitask workload and write Chrome trace_event JSON here (load in ui.perfetto.dev)")
	metrics := fs.Bool("metrics", false, "with -exp overhead: print the traced multitask workload's kernel metrics snapshot")
	baseline := fs.String("baseline", "", "with -exp interp: gate the fresh results against this committed BENCH_interp baseline")
	minSpeedup := fs.Float64("min-speedup", 1.3, "with -exp interp -baseline: required suite-aggregate fast/checked speedup (checked mode shares the predecoded cache, so this gates the run-loop structure, not the full gain over the pre-predecode interpreter)")
	minFused := fs.Float64("min-fused", 1.05, "with -exp interp -baseline: required suite-aggregate fused/fast speedup from basic-block translation (SenSmart virtualizes every guest branch into a kernel trap, so fused blocks average a handful of instructions and the gain is bounded by trap-service time)")
	minTotal := fs.Float64("min-total", 1.5, "with -exp interp -baseline: required suite-aggregate checked/fused speedup, the end-to-end figure the translation layer is accountable for")
	fusedThreshold := fs.Int("fused-threshold", 0, "with -exp interp: block-translation landing threshold for the fused passes (0 = mcu default)")
	tolerance := fs.Float64("tolerance", 50, "with -exp interp -baseline: allowed %% drop of serial fast MIPS below the baseline; with -exp compare: %% band inside which a metric counts as unchanged (wide band: absolute wall-clock is host-dependent)")
	seed := fs.Uint64("seed", 1, "with -exp faultcampaign: campaign seed (every trial site derives from it)")
	trials := fs.Int("trials", 20, "with -exp faultcampaign: injected trials per benchmark")
	prefix := fs.Uint64("prefix", 2_000_000, "with -exp warmstart: shared warm-up cycles skipped by restoring the checkpoint")
	points := fs.Int("points", 6, "with -exp warmstart: budget sweep points per pass")
	oldPath := fs.String("old", "", "with -exp compare: baseline BENCH_*.json file")
	newPath := fs.String("new", "", "with -exp compare: fresh BENCH_*.json file of the same kind")
	quiet := fs.Bool("quiet", false, "suppress per-point progress lines on stderr")
	serveAddr := fs.String("serve", "", "serve the live progress feed and dashboard over HTTP on this address (e.g. :8080) while sweeps run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sink func(string)
	if !*quiet {
		sink = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	progress := telemetry.NewProgress(sink)
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return err
		}
		srv := &telemetry.Server{Progress: progress, Title: "sensmart-bench"}
		fmt.Fprintf(os.Stderr, "progress: dashboard on http://%s/ (also /api/progress)\n", ln.Addr())
		go func() { _ = http.Serve(ln, srv.Handler()) }()
	}
	r := experiment.Runner{Concurrency: *parallel, Progress: progress}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Print(experiment.Table1().Render())
			return nil
		},
		"table2": func() error {
			t, err := experiment.Table2()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig4": func() error {
			t, err := r.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig5": func() error {
			t, err := r.Figure5()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			return nil
		},
		"fig6": func() error {
			points, err := r.Figure6(nil, *activations)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure6Table(points).Render())
			return nil
		},
		"fig7": func() error {
			points, err := r.Figure7(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure7Table(points).Render())
			return nil
		},
		"fig8": func() error {
			points, err := r.Figure8(nil, *budget)
			if err != nil {
				return err
			}
			fmt.Print(experiment.Figure8Table(points).Render())
			return nil
		},
		"overhead": func() error {
			t, err := r.KernelOverhead()
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			if *traceOut == "" && !*metrics {
				return nil
			}
			// One traced multitask run of all seven benchmarks backs both
			// the Chrome export and the metrics snapshot.
			var programs []*image.Program
			for _, b := range progs.KernelBenchmarks() {
				programs = append(programs, b.Program.Clone())
			}
			rec, m, err := experiment.TraceRun(4_000_000_000, programs...)
			if err != nil {
				return err
			}
			if *metrics {
				fmt.Println()
				fmt.Print(m.Render())
			}
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					return err
				}
				werr := trace.WriteChrome(f, rec.Events(), trace.ChromeOptions{
					ClockHz:     mcu.ClockHz,
					ServiceName: kernel.ServiceName,
				})
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return werr
				}
				fmt.Printf("trace: %d events written to %s\n", rec.Len(), *traceOut)
			}
			return nil
		},
		"hotspots": func() error {
			t, err := r.Hotspots(*topK)
			if err != nil {
				return err
			}
			fmt.Print(t.Render())
			if *profileOut == "" && *foldedOut == "" {
				return nil
			}
			// One profiled multitask run of all seven benchmarks backs the
			// pprof and folded exports.
			var programs []*image.Program
			for _, b := range progs.KernelBenchmarks() {
				programs = append(programs, b.Program.Clone())
			}
			prof, err := experiment.ProfileRun(4_000_000_000, programs...)
			if err != nil {
				return err
			}
			write := func(path, what string, emit func(w io.Writer) error) error {
				if path == "" {
					return nil
				}
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				werr := emit(f)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return werr
				}
				fmt.Printf("profile: %s written to %s\n", what, path)
				return nil
			}
			if err := write(*profileOut, "pprof protobuf", prof.WritePprof); err != nil {
				return err
			}
			return write(*foldedOut, "folded stacks", prof.WriteFolded)
		},
		"profilebench": func() error {
			b, err := experiment.BenchProfile(*reps)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_profile.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n%s", path, data)
			return nil
		},
		"interp": func() error {
			b, err := experiment.BenchInterp(*reps, *parallel, *fusedThreshold)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_interp.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n%s", path, data)
			var blocks, invals uint64
			var fusedFrac float64
			for _, p := range b.Benchmarks {
				blocks += p.BlocksBuilt
				invals += p.BlockInvalidations
				fusedFrac += p.FusedFrac
			}
			if n := len(b.Benchmarks); n > 0 {
				fusedFrac /= float64(n)
			}
			fmt.Printf("block translation: threshold %d, %d blocks built, %d invalidated, mean fused-instruction fraction %.3f\n",
				b.FusedThreshold, blocks, invals, fusedFrac)
			if *baseline == "" {
				return nil
			}
			raw, err := os.ReadFile(*baseline)
			if err != nil {
				return err
			}
			var base experiment.InterpBench
			if err := json.Unmarshal(raw, &base); err != nil {
				return fmt.Errorf("baseline %s: %w", *baseline, err)
			}
			if err := experiment.CheckInterpBaseline(b, &base, *minSpeedup, *minFused, *minTotal, *tolerance); err != nil {
				return err
			}
			fmt.Printf("interp gate: ok (suite speedup %.2fx, fused %.2fx on top, total %.2fx, serial %.1f MIPS vs baseline %.1f MIPS)\n",
				b.SuiteSpeedup, b.FusedSuiteSpeedup, b.TotalSuiteSpeedup, b.SerialFastMIPS, base.SerialFastMIPS)
			return nil
		},
		"benchparallel": func() error {
			b, err := experiment.BenchParallel(*parallel, *activations)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_parallel.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n%s", path, data)
			return nil
		},
		"faultcampaign": func() error {
			b, err := r.FaultCampaign(*seed, *trials)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_faultcampaign.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
			fmt.Print(experiment.FaultCampaignTable(b).Render())
			return nil
		},
		"warmstart": func() error {
			b, err := r.BenchWarmstart(*prefix, *points)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_warmstart.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
			fmt.Printf("warmstart: checkpoint at cycle %d (%d bytes), %d budgets, identical=%v, cold %.2fs vs warm %.2fs (%.2fx)\n",
				b.CheckpointAt, b.SnapshotBytes, len(b.Budgets), b.Identical,
				float64(b.ColdWallNS)/1e9, float64(b.WarmWallNS)/1e9, b.Speedup)
			return nil
		},
		"energy": func() error {
			b, err := r.BenchEnergy(*activations)
			if err != nil {
				return err
			}
			path := *out
			if path == "" {
				path = "BENCH_energy.json"
			}
			data, err := experiment.WriteBenchFile(path, b)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
			fmt.Print(experiment.EnergyTable(b).Render())
			return nil
		},
		"compare": func() error {
			if *oldPath == "" || *newPath == "" {
				return fmt.Errorf("-exp compare needs -old and -new BENCH_*.json files")
			}
			tbl, regressions, err := experiment.CompareBenchFiles(*oldPath, *newPath, *tolerance)
			if err != nil {
				return err
			}
			fmt.Print(tbl.Render())
			if len(regressions) > 0 {
				for _, reg := range regressions {
					fmt.Fprintln(os.Stderr, "regression:", reg)
				}
				return fmt.Errorf("%d metric(s) regressed beyond ±%.0f%%", len(regressions), *tolerance)
			}
			fmt.Printf("compare: ok, no metric regressed beyond ±%.0f%%\n", *tolerance)
			return nil
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "overhead", "hotspots"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	runner, ok := runners[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return runner()
}

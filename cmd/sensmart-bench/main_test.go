package main

import "testing"

func TestBenchToolRunsQuickExperiments(t *testing.T) {
	// table1 and fig4 are cheap enough for a unit test; the heavyweight
	// sweeps are covered by the root benchmarks and the experiment package.
	for _, exp := range []string{"table1", "fig4"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestBenchToolRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestBenchToolKernelOverhead(t *testing.T) {
	if err := run([]string{"-exp", "overhead"}); err != nil {
		t.Errorf("overhead: %v", err)
	}
}

package main

import (
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

func TestBenchToolRunsQuickExperiments(t *testing.T) {
	// table1 and fig4 are cheap enough for a unit test; the heavyweight
	// sweeps are covered by the root benchmarks and the experiment package.
	for _, exp := range []string{"table1", "fig4"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestBenchToolRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestBenchToolKernelOverhead(t *testing.T) {
	if err := run([]string{"-exp", "overhead"}); err != nil {
		t.Errorf("overhead: %v", err)
	}
}

func TestBenchToolCompare(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	fresh := filepath.Join(dir, "new.json")
	payload := &experiment.ProfileBench{
		BenchMeta: experiment.NewBenchMeta("profile", "kernel7"),
		Benchmarks: []experiment.ProfileBenchPoint{
			{Benchmark: "lfsr", UnprofiledMs: 10, ProfiledMs: 12},
		},
	}
	if _, err := experiment.WriteBenchFile(old, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := experiment.WriteBenchFile(fresh, payload); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "compare", "-old", old, "-new", fresh, "-tolerance", "10"}); err != nil {
		t.Fatalf("identical files: %v", err)
	}
	payload.Benchmarks[0].ProfiledMs = 40
	if _, err := experiment.WriteBenchFile(fresh, payload); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "compare", "-old", old, "-new", fresh, "-tolerance", "10"}); err == nil {
		t.Fatal("3.3x slower profiled_ms did not fail the compare gate")
	}
	if err := run([]string{"-exp", "compare", "-old", old}); err == nil {
		t.Fatal("compare without -new did not error")
	}
}

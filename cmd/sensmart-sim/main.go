// Command sensmart-sim runs programs on the simulated MICA2-class node,
// either bare-metal ("native") or as tasks under the SenSmart kernel.
//
// Usage:
//
//	sensmart-sim [-native] [-cycles N] [-copies N] [-uart] [-stats]
//	             [-trace out.json] [-metrics] [-energy]
//	             [-profile out.pb.gz] [-folded out.folded] [-stackrec out.csv]
//	             [-watch addr[:len][:r|w|rw]]...
//	             [-inject KIND:PARAMS@CYCLE]...
//	             [-checkpoint-at CYCLE -checkpoint out.ssnp] [-restore in.ssnp]
//	             [-serve :8080] [-telemetry out.ndjson] [-sample N]
//	             [-debug -at CYCLE... [-dump SECTIONS] [-ring N] [-ring-every N]]
//	             file.{s,json}...
//
// -debug records the run under a time-travel checkpoint ring and then seeks
// to each -at cycle, printing the -dump sections (regs, stack, tasks, energy,
// events, mem:ADDR+LEN) at the landed state; -inject composes with it, so a
// faulty run can be replayed to any cycle and inspected.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/avr/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/faultinject"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/minic"
	"repro/internal/profile"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-sim:", err)
		os.Exit(1)
	}
}

// simFlags captures the parsed flag state validateFlags rules on. Keeping it
// a plain value (counts and booleans, plus which flags were explicitly set)
// makes the combination rules table-testable without touching the filesystem.
type simFlags struct {
	native     bool
	copies     int
	programs   int
	profiling  bool // -profile/-folded/-stackrec/-watch
	stackrec   bool
	trace      bool
	metrics    bool
	energy     bool
	stats      bool
	serve      bool
	telemetry  bool
	checkpoint bool            // -checkpoint FILE
	restore    bool            // -restore FILE
	inject     bool            // at least one -inject
	debug      bool            // -debug
	atCount    int             // number of -at seeks
	set        map[string]bool // flags the user passed explicitly
}

// validateFlags rejects flag combinations that cannot work together, before
// any program is loaded or simulated. -native runs bare metal with no
// kernel, so every kernel-side observer (profiler, tracer, metrics,
// telemetry) is rejected consistently; interval flags without the feature
// they tune are rejected rather than silently ignored.
func validateFlags(f simFlags) error {
	if f.native {
		if f.programs != 1 || f.copies != 1 {
			return errors.New("-native runs exactly one program")
		}
		if f.profiling {
			return errors.New("-profile/-folded/-stackrec/-watch need the kernel's symbolizer; drop -native")
		}
		if f.trace || f.metrics || f.stats {
			return errors.New("-trace/-metrics/-stats read kernel ledgers; drop -native")
		}
		if f.energy {
			return errors.New("-energy attaches the meter through the kernel config; drop -native")
		}
		if f.serve || f.telemetry {
			return errors.New("-serve/-telemetry sample kernel state; drop -native")
		}
		if f.checkpoint || f.restore || f.set["checkpoint-at"] {
			return errors.New("-checkpoint/-checkpoint-at/-restore snapshot kernel state; drop -native")
		}
	}
	if f.checkpoint && !f.set["checkpoint-at"] {
		return errors.New("-checkpoint needs -checkpoint-at CYCLE to say when to snapshot")
	}
	if f.set["checkpoint-at"] && !f.checkpoint {
		return errors.New("-checkpoint-at needs -checkpoint FILE to say where to write the snapshot")
	}
	if f.inject && (f.checkpoint || f.restore) {
		return errors.New("an armed fault injection is a pending side effect a snapshot cannot carry; drop -inject or -checkpoint/-restore")
	}
	if f.set["stackevery"] && !f.stackrec {
		return errors.New("-stackevery tunes the stack flight recorder; add -stackrec")
	}
	if f.set["sample"] && !f.serve && !f.telemetry {
		return errors.New("-sample tunes the telemetry sampler; add -serve or -telemetry")
	}
	if f.debug {
		if f.native {
			return errors.New("-debug replays under the kernel; drop -native")
		}
		if f.trace || f.metrics || f.stats || f.energy {
			return errors.New("-debug owns its observers (a tracer and an energy meter are always attached); drop -trace/-metrics/-stats/-energy and use -dump")
		}
		if f.profiling {
			return errors.New("-profile/-folded/-stackrec/-watch record one forward run; -debug replays many — drop one side")
		}
		if f.serve || f.telemetry {
			return errors.New("-serve/-telemetry stream a live run; -debug inspects a finished one — drop one side")
		}
		if f.checkpoint || f.restore || f.set["checkpoint-at"] {
			return errors.New("-debug manages its own checkpoint ring; drop -checkpoint/-checkpoint-at/-restore")
		}
		if f.atCount == 0 {
			return errors.New("-debug needs at least one -at CYCLE to seek to")
		}
	} else {
		for _, name := range []string{"at", "dump", "ring", "ring-every"} {
			if f.set[name] {
				return fmt.Errorf("-%s is a -debug flag; add -debug", name)
			}
		}
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-sim", flag.ContinueOnError)
	native := fs.Bool("native", false, "run bare-metal without the kernel (single program)")
	cycles := fs.Uint64("cycles", 200_000_000, "cycle budget (0 = unlimited)")
	copies := fs.Int("copies", 1, "task instances to deploy per program")
	uart := fs.Bool("uart", false, "dump UART output after the run")
	stats := fs.Bool("stats", false, "print kernel statistics")
	verbose := fs.Bool("v", false, "trace kernel events")
	traceOut := fs.String("trace", "", "record a cycle trace and write Chrome trace_event JSON to this file (load in chrome://tracing or ui.perfetto.dev)")
	metrics := fs.Bool("metrics", false, "print the kernel metrics snapshot (per-task utilization, per-service costs, kernel-vs-app cycles)")
	energyReport := fs.Bool("energy", false, "attach the cycle-domain energy meter and print the per-device joules budget after the run")
	profileOut := fs.String("profile", "", "attach the cycle-exact profiler and write a gzipped pprof profile.proto here (go tool pprof <file>)")
	foldedOut := fs.String("folded", "", "attach the profiler and write folded stacks here (speedscope / flamegraph.pl)")
	stackrecOut := fs.String("stackrec", "", "attach the profiler and write the per-task stack-depth flight recorder CSV here")
	stackEvery := fs.Uint64("stackevery", 1024, "stack flight recorder sampling interval in cycles (with -stackrec)")
	serve := fs.String("serve", "", "serve the live telemetry dashboard, /metrics (Prometheus), and /api/series over HTTP on this address (e.g. :8080) while the simulation runs")
	telemetryOut := fs.String("telemetry", "", "stream telemetry samples to this file as NDJSON, one sample per line")
	sampleEvery := fs.Uint64("sample", telemetry.DefaultEvery, "telemetry sampling interval in simulated cycles (with -serve/-telemetry)")
	checkpointAt := fs.Uint64("checkpoint-at", 0, "arm a one-shot checkpoint at this simulated cycle (with -checkpoint)")
	checkpointOut := fs.String("checkpoint", "", "write the checkpoint armed by -checkpoint-at to this file")
	restoreIn := fs.String("restore", "", "restore state from a checkpoint file instead of booting (deploy the same programs with the same flags)")
	var watches []profile.Watchpoint
	fs.Func("watch", "watch a task-logical address: addr[:len][:r|w|rw] (repeatable)", func(s string) error {
		wp, err := profile.ParseWatch(s)
		if err != nil {
			return err
		}
		watches = append(watches, wp)
		return nil
	})
	debug := fs.Bool("debug", false, "record the run under a time-travel checkpoint ring, then seek to each -at cycle and print the -dump sections")
	ringN := fs.Int("ring", 8, "checkpoint ring capacity (with -debug)")
	ringEvery := fs.Uint64("ring-every", 1<<20, "nominal cycles between ring checkpoints (with -debug)")
	dumpStr := fs.String("dump", "regs,stack", "comma-separated sections to print at each -at cycle: regs, stack, tasks, energy, events, mem:ADDR+LEN (with -debug)")
	var ats []uint64
	fs.Func("at", "seek to this cycle and dump state (repeatable, with -debug)", func(s string) error {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return fmt.Errorf("bad -at cycle %q: %v", s, err)
		}
		ats = append(ats, v)
		return nil
	})
	var injections []faultinject.Injection
	fs.Func("inject", "inject a fault at a cycle: sram:ADDR[:BIT]@CYC | burst:ADDR:LEN[:BIT]@CYC | reg:rN[:BIT]@CYC | smash:LEN:VALUE@CYC | retaddr:TARGET@CYC | radio:HEXBYTES@CYC (repeatable)", func(s string) error {
		in, err := faultinject.ParseInject(s)
		if err != nil {
			return err
		}
		injections = append(injections, in)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: sensmart-sim [flags] file.{s,json}...")
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	sf := simFlags{
		native:     *native,
		copies:     *copies,
		programs:   fs.NArg(),
		profiling:  *profileOut != "" || *foldedOut != "" || *stackrecOut != "" || len(watches) > 0,
		stackrec:   *stackrecOut != "",
		trace:      *traceOut != "",
		metrics:    *metrics,
		energy:     *energyReport,
		stats:      *stats,
		serve:      *serve != "",
		telemetry:  *telemetryOut != "",
		checkpoint: *checkpointOut != "",
		restore:    *restoreIn != "",
		inject:     len(injections) > 0,
		debug:      *debug,
		atCount:    len(ats),
		set:        set,
	}
	if err := validateFlags(sf); err != nil {
		return err
	}
	var programs []*image.Program
	for _, path := range fs.Args() {
		p, err := loadProgram(path)
		if err != nil {
			return err
		}
		programs = append(programs, p)
	}

	if *debug {
		dumps, err := parseDump(*dumpStr)
		if err != nil {
			return err
		}
		return runDebug(programs, *copies, *cycles, injections, *ringN, *ringEvery, ats, dumps)
	}

	if *native {
		return runNative(programs[0], *cycles, *uart, injections)
	}

	cfg := kernel.Config{}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "kernel: "+format+"\n", a...)
		}
	}
	opts := []core.Option{core.WithKernelConfig(cfg)}
	if *traceOut != "" {
		opts = append(opts, core.WithTrace(trace.New()))
	}
	var prof *profile.Profiler
	if sf.profiling {
		po := profile.Options{}
		if *stackrecOut != "" {
			po.StackInterval = *stackEvery
		}
		prof = profile.New(po)
		for _, wp := range watches {
			prof.AddWatch(wp)
		}
		opts = append(opts, core.WithProfile(prof))
	}
	var meter *energy.Meter
	if *energyReport {
		meter = new(energy.Meter)
		opts = append(opts, core.WithEnergy(meter))
	}
	var sampler *telemetry.Sampler
	var streamFile *os.File
	if *serve != "" || *telemetryOut != "" {
		topts := telemetry.Options{Every: *sampleEvery}
		if *telemetryOut != "" {
			f, err := os.Create(*telemetryOut)
			if err != nil {
				return err
			}
			streamFile = f
			topts.Stream = f
		}
		sampler = telemetry.New(topts)
		opts = append(opts, core.WithTelemetry(sampler))
	}
	sys := core.NewSystem(opts...)
	if *serve != "" {
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		srv := &telemetry.Server{Sampler: sampler, Title: "sensmart-sim"}
		fmt.Printf("telemetry: dashboard on http://%s/ (also /metrics, /api/series)\n", ln.Addr())
		go func() { _ = http.Serve(ln, srv.Handler()) }()
	}
	for _, p := range programs {
		for c := 0; c < *copies; c++ {
			if _, err := sys.Deploy(p); err != nil {
				return err
			}
		}
	}
	if *restoreIn != "" {
		blob, err := os.ReadFile(*restoreIn)
		if err != nil {
			return err
		}
		st, err := snapshot.Decode(blob)
		if err != nil {
			return fmt.Errorf("restore %s: %w", *restoreIn, err)
		}
		if err := sys.Restore(st); err != nil {
			return fmt.Errorf("restore %s: %w", *restoreIn, err)
		}
		fmt.Printf("restored %s: resuming at cycle %d\n", *restoreIn, st.Machine.Cycle)
	} else if err := sys.Boot(); err != nil {
		return err
	}
	faultinject.ArmAll(sys.Machine(), injections)
	var ckptErr error
	ckptCycle := uint64(0)
	ckptWritten := false
	if *checkpointOut != "" {
		sys.ArmCheckpoint(*checkpointAt, func(st *snapshot.State, err error) {
			var blob []byte
			if err == nil {
				blob, err = snapshot.Encode(st)
			}
			if err == nil {
				err = os.WriteFile(*checkpointOut, blob, 0o644)
			}
			if err != nil {
				ckptErr = err
				return
			}
			ckptWritten, ckptCycle = true, st.Machine.Cycle
		})
	}
	if err := sys.Run(*cycles); err != nil {
		return err
	}
	if ckptErr != nil {
		return fmt.Errorf("checkpoint: %w", ckptErr)
	}
	if *checkpointOut != "" {
		if ckptWritten {
			fmt.Printf("checkpoint: state at cycle %d written to %s\n", ckptCycle, *checkpointOut)
		} else {
			fmt.Printf("checkpoint: cycle %d never reached (run ended at %d); nothing written\n",
				*checkpointAt, sys.Machine().Cycles())
		}
	}
	m := sys.Machine()
	fmt.Printf("ran %d cycles (%.3f s simulated), idle %.1f%%, ~%.2f mJ CPU energy\n",
		m.Cycles(), float64(m.Cycles())/mcu.ClockHz,
		100*float64(m.IdleCycles())/float64(m.Cycles()), m.EnergyMilliJoules())
	for _, t := range sys.Tasks() {
		pl, ph, pu := t.Region()
		status := t.State().String()
		if t.ExitReason != "" {
			status += ": " + t.ExitReason
		}
		fmt.Printf("  %-20s %-28s region [%#x,%#x) heap %dB stack %dB peak %dB\n",
			t.Name, status, pl, pu, ph-pl, t.StackAlloc(), t.MaxStackUsed)
	}
	if *stats {
		st := sys.Kernel().Stats
		fmt.Printf("stats: switches=%d preemptions=%d branch-traps=%d relocations=%d (%d B moved) terminations=%d\n",
			st.ContextSwitches, st.Preemptions, st.BranchTraps,
			st.Relocations, st.RelocatedBytes, st.Terminations)
		for _, s := range sys.Metrics().Services {
			fmt.Printf("  service %-14s %d\n", s.Name, s.Calls)
		}
	}
	if *metrics {
		fmt.Print(sys.Metrics().Render())
	}
	if meter != nil {
		printEnergyBudget(meter, m.Cycles())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := sys.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s\n", sys.Trace().Len(), *traceOut)
	}
	if prof != nil {
		if err := writeProfileOutputs(sys, prof, *profileOut, *foldedOut, *stackrecOut); err != nil {
			return err
		}
		if len(watches) > 0 {
			reportWatchHits(prof)
		}
	}
	if *uart {
		fmt.Printf("uart: %q\n", m.UARTOutput())
	}
	if sampler != nil {
		// Capture the end-of-run state as a final sample, so exports and the
		// dashboard include the terminal snapshot even between boundaries.
		if _, err := sys.SampleTelemetry(); err != nil {
			return err
		}
		if err := sampler.StreamErr(); err != nil {
			return fmt.Errorf("telemetry stream: %w", err)
		}
		if streamFile != nil {
			if err := streamFile.Close(); err != nil {
				return err
			}
			fmt.Printf("telemetry: %d samples streamed to %s (%d retained in ring)\n",
				sampler.Total(), *telemetryOut, len(sampler.Samples()))
		}
	}
	if *serve != "" {
		fmt.Println("telemetry: run complete; serving final state (Ctrl-C to exit)")
		select {}
	}
	return nil
}

// printEnergyBudget renders the meter's per-device joules budget at the final
// cycle: each component's share of the total, plus the device activity that
// produced it.
func printEnergyBudget(meter *energy.Meter, cycles uint64) {
	b := meter.Report(cycles)
	secs := float64(cycles) / mcu.ClockHz
	avgMW := 0.0
	if secs > 0 {
		avgMW = float64(b.TotalPJ) / 1e9 / secs
	}
	fmt.Printf("energy: %s total over %.3f s simulated (avg %.2f mW)\n",
		energy.FormatPJ(b.TotalPJ), secs, avgMW)
	pct := func(pj uint64) float64 {
		if b.TotalPJ == 0 {
			return 0
		}
		return 100 * float64(pj) / float64(b.TotalPJ)
	}
	fmt.Printf("  cpu-active %12s %5.1f%%  (%d cycles)\n", energy.FormatPJ(b.CPUActivePJ), pct(b.CPUActivePJ), b.CPUActiveCycles)
	fmt.Printf("  cpu-sleep  %12s %5.1f%%  (%d cycles)\n", energy.FormatPJ(b.CPUSleepPJ), pct(b.CPUSleepPJ), b.CPUSleepCycles)
	fmt.Printf("  radio      %12s %5.1f%%  (%d bytes)\n", energy.FormatPJ(b.RadioPJ), pct(b.RadioPJ), b.RadioBytes)
	fmt.Printf("  uart       %12s %5.1f%%  (%d bytes)\n", energy.FormatPJ(b.UARTPJ), pct(b.UARTPJ), b.UARTBytes)
	fmt.Printf("  adc        %12s %5.1f%%  (%d conversions)\n", energy.FormatPJ(b.ADCPJ), pct(b.ADCPJ), b.ADCConversions)
	fmt.Printf("  timer      %12s %5.1f%%\n", energy.FormatPJ(b.TimerPJ), pct(b.TimerPJ))
}

// writeProfileOutputs exports the requested profiler artifacts.
func writeProfileOutputs(sys *core.System, prof *profile.Profiler, pprofOut, foldedOut, stackrecOut string) error {
	write := func(path, format, what string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := sys.WriteProfile(f, format)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("profile: %s written to %s\n", what, path)
		return nil
	}
	if err := write(pprofOut, "pprof", "pprof protobuf"); err != nil {
		return err
	}
	if err := write(foldedOut, "folded", "folded stacks"); err != nil {
		return err
	}
	if stackrecOut != "" {
		f, err := os.Create(stackrecOut)
		if err != nil {
			return err
		}
		werr := prof.WriteStackTimeline(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("profile: stack flight recorder written to %s\n", stackrecOut)
	}
	return nil
}

// reportWatchHits prints recorded watchpoint hits with task + symbol context.
func reportWatchHits(prof *profile.Profiler) {
	hits := prof.WatchHits()
	fmt.Printf("watch: %d hit(s)\n", len(hits))
	for _, h := range hits {
		op := "read"
		if h.Write {
			op = "write"
		}
		fmt.Printf("  cycle %-12d task %-20s %-5s %#04x at pc %#x in %s\n",
			h.Cycle, prof.TaskName(h.Task), op, h.Addr, h.PC,
			prof.Symbolizer().Name(h.PC))
	}
	if d := prof.DroppedWatchHits(); d > 0 {
		fmt.Printf("  (%d further hit(s) dropped; raise the watch-hit cap)\n", d)
	}
}

func runNative(prog *image.Program, limit uint64, uart bool, injections []faultinject.Injection) error {
	m := mcu.New()
	if err := m.LoadFlash(0, prog.Words); err != nil {
		return err
	}
	for i, b := range prog.DataInit {
		m.Poke(prog.HeapBase+uint16(i), b)
	}
	m.SetPC(prog.Entry)
	faultinject.ArmAll(m, injections)
	err := m.Run(limit)
	var f *mcu.Fault
	if err != nil && !(errors.As(err, &f) && f.Kind == mcu.FaultBreak) {
		return err
	}
	fmt.Printf("native run: %d cycles (%.3f s simulated), idle %.1f%%, ~%.2f mJ CPU energy\n",
		m.Cycles(), float64(m.Cycles())/mcu.ClockHz,
		100*float64(m.IdleCycles())/float64(m.Cycles()), m.EnergyMilliJoules())
	if uart {
		fmt.Printf("uart: %q\n", m.UARTOutput())
	}
	return nil
}

func loadProgram(path string) (*image.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch filepath.Ext(path) {
	case ".json":
		var prog image.Program
		if err := prog.DecodeJSON(data); err != nil {
			return nil, err
		}
		return &prog, nil
	case ".c":
		return minic.Compile(name, string(data))
	}
	return asm.Assemble(name, string(data))
}

package main

import (
	"strings"
	"testing"
)

// counterSrc counts a heap byte with a spin delay, then parks in a sleep
// loop — long-lived enough for ring checkpoints to fire and state to stay
// inspectable at any -at cycle.
const counterSrc = `
.data
n: .space 1
.text
main:
    clr r24
    sts n, r24
loop:
    lds r24, n
    inc r24
    sts n, r24
    rcall delay
    cpi r24, 150
    brne loop
park:
    sleep
    rjmp park
delay:
    ldi r20, 200
spin:
    dec r20
    brne spin
    ret
`

func TestParseDump(t *testing.T) {
	cases := []struct {
		in      string
		want    int    // spec count on success
		wantErr string // substring; "" = valid
	}{
		{"regs", 1, ""},
		{"regs,stack,tasks,energy,events", 5, ""},
		{"mem:0x100+16", 1, ""},
		{"mem:256+16", 1, ""},
		{"regs, stack , mem:0x100+4", 3, ""},
		{"mem:0x100+8,mem:0x200+8", 2, ""},
		{"", 0, "unknown -dump section"},
		{"regs,", 0, "unknown -dump section"},
		{"bogus", 0, "unknown -dump section"},
		{"mem:0x100", 0, "want mem:ADDR+LEN"},
		{"mem:zz+16", 0, "bad -dump address"},
		{"mem:0x10000+16", 0, "bad -dump address"},
		{"mem:0x100+0", 0, "bad -dump length"},
		{"mem:0x100+99999", 0, "bad -dump length"},
	}
	for _, tc := range cases {
		specs, err := parseDump(tc.in)
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("parseDump(%q): unexpected error %v", tc.in, err)
		case tc.wantErr == "" && len(specs) != tc.want:
			t.Errorf("parseDump(%q) = %d specs, want %d", tc.in, len(specs), tc.want)
		case tc.wantErr != "" && err == nil:
			t.Errorf("parseDump(%q) accepted, want error containing %q", tc.in, tc.wantErr)
		case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
			t.Errorf("parseDump(%q) error %q does not mention %q", tc.in, err, tc.wantErr)
		}
	}
}

func TestValidateDebugCombos(t *testing.T) {
	dbg := func(extra func(*simFlags)) simFlags {
		f := simFlags{programs: 1, copies: 1, debug: true, atCount: 1,
			set: map[string]bool{"debug": true, "at": true}}
		if extra != nil {
			extra(&f)
		}
		return f
	}
	cases := []struct {
		name    string
		f       simFlags
		wantErr string // substring; "" = valid
	}{
		{"debug with one seek", dbg(nil), ""},
		{"debug with inject", dbg(func(f *simFlags) { f.inject = true; f.set["inject"] = true }), ""},
		{"debug with dump/ring tuning", dbg(func(f *simFlags) {
			f.set["dump"], f.set["ring"], f.set["ring-every"] = true, true, true
		}), ""},
		{"debug without -at", dbg(func(f *simFlags) { f.atCount = 0; delete(f.set, "at") }), "at least one -at"},
		{"debug with native", dbg(func(f *simFlags) { f.native = true }), "drop -native"},
		{"debug with trace", dbg(func(f *simFlags) { f.trace = true }), "use -dump"},
		{"debug with metrics", dbg(func(f *simFlags) { f.metrics = true }), "use -dump"},
		{"debug with stats", dbg(func(f *simFlags) { f.stats = true }), "use -dump"},
		{"debug with energy", dbg(func(f *simFlags) { f.energy = true }), "use -dump"},
		{"debug with profiling", dbg(func(f *simFlags) { f.profiling = true }), "drop one side"},
		{"debug with serve", dbg(func(f *simFlags) { f.serve = true }), "drop one side"},
		{"debug with telemetry", dbg(func(f *simFlags) { f.telemetry = true }), "drop one side"},
		{"debug with checkpoint", dbg(func(f *simFlags) {
			f.checkpoint = true
			f.set["checkpoint"], f.set["checkpoint-at"] = true, true
		}), "its own checkpoint ring"},
		{"debug with restore", dbg(func(f *simFlags) { f.restore = true; f.set["restore"] = true }), "its own checkpoint ring"},
		{"at without debug", simFlags{programs: 1, copies: 1, atCount: 1,
			set: map[string]bool{"at": true}}, "add -debug"},
		{"dump without debug", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"dump": true}}, "add -debug"},
		{"ring without debug", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"ring": true}}, "add -debug"},
		{"ring-every without debug", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"ring-every": true}}, "add -debug"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.f)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("combination accepted, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// The full scripted session: record, seek to a batch of cycles (boot
// fallback, ring restore, the Seek(0) boot state), dump every section kind.
func TestSimToolDebugSeekDump(t *testing.T) {
	src := writeTemp(t, counterSrc)
	err := run([]string{"-debug", "-cycles", "300000", "-ring", "4", "-ring-every", "32768",
		"-at", "0", "-at", "100000", "-at", "299999",
		"-dump", "regs,stack,mem:0x100+16,tasks,energy,events", src})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimToolDebugWithInjection(t *testing.T) {
	src := writeTemp(t, counterSrc)
	err := run([]string{"-debug", "-cycles", "200000", "-ring", "4", "-ring-every", "32768",
		"-inject", "sram:0x100:7@60000", "-at", "100000", "-dump", "regs,mem:0x100+2", src})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimToolDebugErrors(t *testing.T) {
	src := writeTemp(t, counterSrc)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"seek past end", []string{"-debug", "-cycles", "100000", "-at", "999999999", src}, "past the end"},
		{"bad -at", []string{"-debug", "-at", "zzz", src}, "bad -at cycle"},
		{"bad -dump", []string{"-debug", "-at", "50000", "-dump", "mem:0x100", src}, "want mem:ADDR+LEN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// Combination rules fire before any program file is touched: these name a
// file that does not exist.
func TestSimToolDebugRejectsBeforeLoading(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-debug", "nonexistent.s"}, "at least one -at"},
		{[]string{"-debug", "-at", "1000", "-metrics", "nonexistent.s"}, "use -dump"},
		{[]string{"-at", "1000", "nonexistent.s"}, "add -debug"},
		{[]string{"-ring", "4", "nonexistent.s"}, "add -debug"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
		}
	}
}

; Long-running loop workload for the checkpoint/restore CI smoke
; (make checkpoint): roughly two million cycles of compute with one UART
; byte per outer pass, so a mid-run snapshot carries live device state.
.data
sum: .space 2
.text
main:
    ldi r20, 20
outer:
    ldi r21, 200
mid:
    ldi r16, 250
spin:
    dec r16
    brne spin
    dec r21
    brne mid
    mov r24, r20
    ori r24, 0x40
wait:
    in r17, UCSR0A
    sbrs r17, 5
    rjmp wait
    out UDR0, r24
    dec r20
    brne outer
    sts sum, r20
    break

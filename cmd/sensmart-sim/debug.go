package main

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/faultinject"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/timetravel"
	"repro/internal/trace"
)

// The -debug mode: record one run under a time-travel checkpoint ring, then
// serve a scriptable batch of seeks (-at CYCLE, repeatable) and print the
// requested -dump sections at each landed cycle. Non-interactive by design:
// the whole session is reproducible from the command line.

// dumpSpec is one section of a -dump request.
type dumpSpec struct {
	kind string // "regs", "stack", "tasks", "energy", "events", or "mem"
	addr uint16 // mem: start of the physical window
	n    int    // mem: window length; events: tail length
}

// parseDump parses the comma-separated -dump section list.
func parseDump(s string) ([]dumpSpec, error) {
	var specs []dumpSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "regs" || tok == "stack" || tok == "tasks" || tok == "energy":
			specs = append(specs, dumpSpec{kind: tok})
		case tok == "events":
			specs = append(specs, dumpSpec{kind: "events", n: 16})
		case strings.HasPrefix(tok, "mem:"):
			addrs, lens, ok := strings.Cut(strings.TrimPrefix(tok, "mem:"), "+")
			if !ok {
				return nil, fmt.Errorf("bad -dump section %q (want mem:ADDR+LEN)", tok)
			}
			addr, err := strconv.ParseUint(addrs, 0, 16)
			if err != nil {
				return nil, fmt.Errorf("bad -dump address in %q: %v", tok, err)
			}
			n, err := strconv.ParseUint(lens, 0, 16)
			if err != nil || n == 0 || n > uint64(mcu.DataSize) {
				return nil, fmt.Errorf("bad -dump length in %q (want 1..%d)", tok, mcu.DataSize)
			}
			specs = append(specs, dumpSpec{kind: "mem", addr: uint16(addr), n: int(n)})
		default:
			return nil, fmt.Errorf("unknown -dump section %q (want regs, stack, tasks, energy, events, or mem:ADDR+LEN)", tok)
		}
	}
	if len(specs) == 0 {
		return nil, errors.New("-dump needs at least one section")
	}
	return specs, nil
}

// runDebug records the deployment under a checkpoint ring, then executes the
// seek batch. The factory always attaches a trace recorder and an energy
// meter so every landed cycle can answer for its history and its joules.
func runDebug(programs []*image.Program, copies int, limit uint64,
	injections []faultinject.Injection, ring int, ringEvery uint64,
	ats []uint64, dumps []dumpSpec) error {
	factory := func() (*core.System, error) {
		sys := core.NewSystem(
			core.WithKernelConfig(kernel.Config{}),
			core.WithTrace(trace.New()),
			core.WithEnergy(new(energy.Meter)),
		)
		for _, p := range programs {
			for c := 0; c < copies; c++ {
				if _, err := sys.Deploy(p); err != nil {
					return nil, err
				}
			}
		}
		return sys, nil
	}
	cfg := timetravel.Config{Checkpoints: ring, Every: ringEvery}
	if len(injections) > 0 {
		cfg.Rearm = func(sys *core.System) {
			faultinject.ArmAll(sys.Machine(), injections)
		}
	}
	d, err := timetravel.New(factory, cfg)
	if err != nil {
		return err
	}
	if err := d.Record(limit); err != nil {
		return fmt.Errorf("debug: record: %w", err)
	}
	fmt.Printf("debug: recorded %d cycles; ring holds %d checkpoint(s), %d evicted, %d skipped\n",
		d.End(), len(d.Checkpoints()), d.Evicted(), d.Skipped())
	for _, at := range ats {
		insp, err := d.Seek(at)
		if err != nil {
			return fmt.Errorf("debug: seek %d: %w", at, err)
		}
		printSeek(insp, dumps)
	}
	return nil
}

// printSeek renders one landed seek: a header locating the cycle, then the
// requested dump sections.
func printSeek(insp *timetravel.Inspector, dumps []dumpSpec) {
	base, fromRing := insp.Base()
	via := "boot"
	if fromRing {
		via = "checkpoint"
	}
	fmt.Printf("\n== cycle %d (requested %d, replayed from %s at %d)\n",
		insp.Cycle(), insp.Requested(), via, base)
	fmt.Printf("   pc %#05x %s", insp.PC(), insp.PCSymbol())
	if t := insp.Current(); t != nil {
		fmt.Printf("   task %s", t.Name)
	}
	fmt.Println()
	for _, spec := range dumps {
		switch spec.kind {
		case "regs":
			printRegs(insp)
		case "stack":
			printStack(insp)
		case "tasks":
			printTasks(insp)
		case "energy":
			if _, ok := insp.Energy(); ok {
				printEnergyBudget(insp.System().Energy(), insp.Cycle())
			}
		case "events":
			printEvents(insp, spec.n)
		case "mem":
			printMem(insp, spec.addr, spec.n)
		}
	}
}

func printRegs(insp *timetravel.Inspector) {
	regs := insp.Registers()
	for row := 0; row < 4; row++ {
		fmt.Printf("   ")
		for col := 0; col < 8; col++ {
			i := row*8 + col
			fmt.Printf("r%-2d=%02x ", i, regs[i])
		}
		fmt.Println()
	}
	sp := insp.SP()
	line := fmt.Sprintf("   SREG=%02x SP=%#04x", insp.SREG(), sp)
	if ai := insp.DecodeAddr(sp); ai.Task != nil {
		line += fmt.Sprintf(" (logical %#04x, %s of %s)", ai.Logical, ai.Kind, ai.Task.Name)
	}
	fmt.Println(line)
}

func printStack(insp *timetravel.Inspector) {
	frames := insp.Stack(16)
	if len(frames) == 0 {
		fmt.Println("   stack: no saved return addresses on the live stack")
		return
	}
	sym := insp.System().Kernel().Symbolizer()
	fmt.Println("   stack:")
	for _, fr := range frames {
		fmt.Printf("     %#04x (logical %#04x): -> %#05x %s\n",
			fr.Phys, fr.Logical, fr.Target, sym.Name(fr.Target))
	}
}

func printTasks(insp *timetravel.Inspector) {
	fmt.Println("   tasks:")
	for _, t := range insp.System().Kernel().Tasks {
		pl, ph, pu := t.Region()
		status := t.State().String()
		if t.ExitReason != "" {
			status += ": " + t.ExitReason
		}
		fmt.Printf("     %-20s %-28s region [%#04x,%#04x) heap %dB stack %dB peak %dB logical-sp %#04x\n",
			t.Name, status, pl, pu, ph-pl, t.StackAlloc(), t.MaxStackUsed, t.LogicalSP())
	}
}

func printEvents(insp *timetravel.Inspector, n int) {
	evs := insp.Events(n)
	if len(evs) == 0 {
		fmt.Println("   events: none recorded")
		return
	}
	names := trace.TaskNames(insp.Events(0))
	name := func(id int32) string {
		if nm, ok := names[id]; ok {
			return nm
		}
		return fmt.Sprintf("task%d", id)
	}
	fmt.Printf("   last %d events:\n", len(evs))
	for _, e := range evs {
		fmt.Printf("     %s\n", e.Format(name))
	}
}

func printMem(insp *timetravel.Inspector, addr uint16, n int) {
	data := insp.Mem(addr, n)
	info := insp.DecodeAddr(addr)
	where := "unmapped"
	if info.Task != nil {
		where = fmt.Sprintf("%s of %s, logical %#04x", info.Kind, info.Task.Name, info.Logical)
	}
	fmt.Printf("   mem %#04x+%d (%s):\n", addr, n, where)
	for off := 0; off < len(data); off += 16 {
		end := off + 16
		if end > len(data) {
			end = len(data)
		}
		row := data[off:end]
		hexs := make([]string, len(row))
		ascii := make([]byte, len(row))
		for i, b := range row {
			hexs[i] = fmt.Sprintf("%02x", b)
			if b >= 0x20 && b < 0x7F {
				ascii[i] = b
			} else {
				ascii[i] = '.'
			}
		}
		fmt.Printf("     %#04x: %-47s |%s|\n", addr+uint16(off), strings.Join(hexs, " "), ascii)
	}
}

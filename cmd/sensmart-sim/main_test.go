package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const testSrc = `
.data
v: .space 1
.text
main:
    ldi r16, 9
    sts v, r16
    break
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimToolKernelRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-stats", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolMultipleCopies(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-copies", "3", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", "-cycles", "1000000", "-uart", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRejectsMultiple(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", src, src}); err == nil {
		t.Error("expected error: -native takes one program")
	}
}

func TestSimToolUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
}

func TestSimToolTraceAndMetrics(t *testing.T) {
	src := writeTemp(t, testSrc)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-metrics", "-trace", out, src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}
}

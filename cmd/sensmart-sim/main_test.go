package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSrc = `
.data
v: .space 1
.text
main:
    ldi r16, 9
    sts v, r16
    break
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimToolKernelRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-stats", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolMultipleCopies(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-copies", "3", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", "-cycles", "1000000", "-uart", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRejectsMultiple(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", src, src}); err == nil {
		t.Error("expected error: -native takes one program")
	}
}

func TestSimToolUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
}

func TestValidateFlagCombos(t *testing.T) {
	cases := []struct {
		name    string
		f       simFlags
		wantErr string // substring; "" = valid
	}{
		{"plain kernel run", simFlags{programs: 2, copies: 1}, ""},
		{"native single program", simFlags{native: true, programs: 1, copies: 1}, ""},
		{"native two programs", simFlags{native: true, programs: 2, copies: 1}, "exactly one program"},
		{"native copies", simFlags{native: true, programs: 1, copies: 3}, "exactly one program"},
		{"native profiling", simFlags{native: true, programs: 1, copies: 1, profiling: true}, "drop -native"},
		{"native trace", simFlags{native: true, programs: 1, copies: 1, trace: true}, "kernel ledgers"},
		{"native metrics", simFlags{native: true, programs: 1, copies: 1, metrics: true}, "kernel ledgers"},
		{"native stats", simFlags{native: true, programs: 1, copies: 1, stats: true}, "kernel ledgers"},
		{"native serve", simFlags{native: true, programs: 1, copies: 1, serve: true}, "sample kernel state"},
		{"native telemetry stream", simFlags{native: true, programs: 1, copies: 1, telemetry: true}, "sample kernel state"},
		{"stackevery without stackrec", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"stackevery": true}}, "add -stackrec"},
		{"stackevery with stackrec", simFlags{programs: 1, copies: 1, profiling: true, stackrec: true,
			set: map[string]bool{"stackevery": true, "stackrec": true}}, ""},
		{"sample without sink", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"sample": true}}, "add -serve or -telemetry"},
		{"sample with serve", simFlags{programs: 1, copies: 1, serve: true,
			set: map[string]bool{"sample": true, "serve": true}}, ""},
		{"sample with telemetry stream", simFlags{programs: 1, copies: 1, telemetry: true,
			set: map[string]bool{"sample": true, "telemetry": true}}, ""},
		{"serve with profiling", simFlags{programs: 1, copies: 1, serve: true, profiling: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.f)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("combination accepted, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// The CLI must reject bad combinations before it touches any program file:
// these invocations name files that do not exist, so reaching the loader
// would surface a different (file-not-found) error.
func TestSimToolRejectsBadCombosBeforeLoading(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-native", "-trace", "t.json", "nonexistent.s"}, "kernel ledgers"},
		{[]string{"-native", "-serve", ":0", "nonexistent.s"}, "sample kernel state"},
		{[]string{"-stackevery", "512", "nonexistent.s"}, "add -stackrec"},
		{[]string{"-sample", "1000", "nonexistent.s"}, "add -serve or -telemetry"},
		{[]string{"-native", "-profile", "p.pb.gz", "nonexistent.s"}, "drop -native"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
		}
	}
}

func TestSimToolTelemetryStream(t *testing.T) {
	src := writeTemp(t, testSrc)
	out := filepath.Join(t.TempDir(), "telemetry.ndjson")
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-telemetry", out, "-sample", "1000", src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("telemetry stream is empty")
	}
	for i, line := range lines {
		var s struct {
			Cycle uint64           `json:"cycle"`
			Tasks []map[string]any `json:"tasks"`
		}
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if len(s.Tasks) != 2 {
			t.Fatalf("line %d carries %d tasks, want 2", i, len(s.Tasks))
		}
	}
}

func TestSimToolTraceAndMetrics(t *testing.T) {
	src := writeTemp(t, testSrc)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-metrics", "-trace", out, src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

const testSrc = `
.data
v: .space 1
.text
main:
    ldi r16, 9
    sts v, r16
    break
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimToolKernelRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-stats", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolMultipleCopies(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-copies", "3", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRun(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", "-cycles", "1000000", "-uart", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolNativeRejectsMultiple(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-native", src, src}); err == nil {
		t.Error("expected error: -native takes one program")
	}
}

func TestSimToolUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
}

func TestValidateFlagCombos(t *testing.T) {
	cases := []struct {
		name    string
		f       simFlags
		wantErr string // substring; "" = valid
	}{
		{"plain kernel run", simFlags{programs: 2, copies: 1}, ""},
		{"native single program", simFlags{native: true, programs: 1, copies: 1}, ""},
		{"native two programs", simFlags{native: true, programs: 2, copies: 1}, "exactly one program"},
		{"native copies", simFlags{native: true, programs: 1, copies: 3}, "exactly one program"},
		{"native profiling", simFlags{native: true, programs: 1, copies: 1, profiling: true}, "drop -native"},
		{"native trace", simFlags{native: true, programs: 1, copies: 1, trace: true}, "kernel ledgers"},
		{"native metrics", simFlags{native: true, programs: 1, copies: 1, metrics: true}, "kernel ledgers"},
		{"native stats", simFlags{native: true, programs: 1, copies: 1, stats: true}, "kernel ledgers"},
		{"native energy", simFlags{native: true, programs: 1, copies: 1, energy: true}, "drop -native"},
		{"energy kernel run", simFlags{programs: 1, copies: 1, energy: true}, ""},
		{"native serve", simFlags{native: true, programs: 1, copies: 1, serve: true}, "sample kernel state"},
		{"native telemetry stream", simFlags{native: true, programs: 1, copies: 1, telemetry: true}, "sample kernel state"},
		{"stackevery without stackrec", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"stackevery": true}}, "add -stackrec"},
		{"stackevery with stackrec", simFlags{programs: 1, copies: 1, profiling: true, stackrec: true,
			set: map[string]bool{"stackevery": true, "stackrec": true}}, ""},
		{"sample without sink", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"sample": true}}, "add -serve or -telemetry"},
		{"sample with serve", simFlags{programs: 1, copies: 1, serve: true,
			set: map[string]bool{"sample": true, "serve": true}}, ""},
		{"sample with telemetry stream", simFlags{programs: 1, copies: 1, telemetry: true,
			set: map[string]bool{"sample": true, "telemetry": true}}, ""},
		{"serve with profiling", simFlags{programs: 1, copies: 1, serve: true, profiling: true}, ""},
		{"checkpoint pair", simFlags{programs: 1, copies: 1, checkpoint: true,
			set: map[string]bool{"checkpoint-at": true, "checkpoint": true}}, ""},
		{"checkpoint without checkpoint-at", simFlags{programs: 1, copies: 1, checkpoint: true,
			set: map[string]bool{"checkpoint": true}}, "needs -checkpoint-at"},
		{"checkpoint-at without checkpoint", simFlags{programs: 1, copies: 1,
			set: map[string]bool{"checkpoint-at": true}}, "needs -checkpoint FILE"},
		{"restore alone", simFlags{programs: 1, copies: 1, restore: true,
			set: map[string]bool{"restore": true}}, ""},
		{"restore then checkpoint again", simFlags{programs: 1, copies: 1, restore: true, checkpoint: true,
			set: map[string]bool{"restore": true, "checkpoint": true, "checkpoint-at": true}}, ""},
		{"restore with native", simFlags{native: true, programs: 1, copies: 1, restore: true,
			set: map[string]bool{"restore": true}}, "drop -native"},
		{"checkpoint with native", simFlags{native: true, programs: 1, copies: 1, checkpoint: true,
			set: map[string]bool{"checkpoint": true, "checkpoint-at": true}}, "drop -native"},
		{"checkpoint-at with native", simFlags{native: true, programs: 1, copies: 1,
			set: map[string]bool{"checkpoint-at": true}}, "drop -native"},
		{"restore with inject", simFlags{programs: 1, copies: 1, restore: true, inject: true,
			set: map[string]bool{"restore": true, "inject": true}}, "drop -inject"},
		{"checkpoint with inject", simFlags{programs: 1, copies: 1, checkpoint: true, inject: true,
			set: map[string]bool{"checkpoint": true, "checkpoint-at": true, "inject": true}}, "drop -inject"},
		{"inject without snapshotting", simFlags{programs: 1, copies: 1, inject: true,
			set: map[string]bool{"inject": true}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.f)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("combination accepted, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// The CLI must reject bad combinations before it touches any program file:
// these invocations name files that do not exist, so reaching the loader
// would surface a different (file-not-found) error.
func TestSimToolRejectsBadCombosBeforeLoading(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-native", "-trace", "t.json", "nonexistent.s"}, "kernel ledgers"},
		{[]string{"-native", "-serve", ":0", "nonexistent.s"}, "sample kernel state"},
		{[]string{"-stackevery", "512", "nonexistent.s"}, "add -stackrec"},
		{[]string{"-sample", "1000", "nonexistent.s"}, "add -serve or -telemetry"},
		{[]string{"-native", "-profile", "p.pb.gz", "nonexistent.s"}, "drop -native"},
		{[]string{"-native", "-energy", "nonexistent.s"}, "drop -native"},
		{[]string{"-native", "-restore", "c.ssnp", "nonexistent.s"}, "drop -native"},
		{[]string{"-checkpoint-at", "1000", "nonexistent.s"}, "needs -checkpoint FILE"},
		{[]string{"-restore", "c.ssnp", "-inject", "sram:0x200@500", "nonexistent.s"}, "drop -inject"},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
		}
	}
}

// loopSrc runs long enough for a mid-run checkpoint to fire.
const loopSrc = `
.data
v: .space 1
.text
main:
    ldi r20, 200
outer:
    ldi r16, 255
spin:
    dec r16
    brne spin
    dec r20
    brne outer
    sts v, r20
    break
`

func TestSimToolCheckpointRestore(t *testing.T) {
	src := writeTemp(t, loopSrc)
	ckpt := filepath.Join(t.TempDir(), "mid.ssnp")

	if err := run([]string{"-cycles", "10000000", "-checkpoint-at", "50000", "-checkpoint", ckpt, src}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	st, err := snapshot.Decode(blob)
	if err != nil {
		t.Fatalf("checkpoint file does not decode: %v", err)
	}
	if st.Machine.Cycle < 50000 {
		t.Errorf("checkpoint taken at cycle %d, want >= 50000", st.Machine.Cycle)
	}

	if err := run([]string{"-cycles", "10000000", "-stats", "-restore", ckpt, src}); err != nil {
		t.Fatalf("restore run: %v", err)
	}

	// Restoring with a different program must fail the image hash check.
	other := writeTemp(t, testSrc)
	if err := run([]string{"-restore", ckpt, other}); err == nil {
		t.Error("restore with a different program succeeded; want image mismatch")
	}
}

func TestSimToolCheckpointNotReached(t *testing.T) {
	src := writeTemp(t, testSrc)
	ckpt := filepath.Join(t.TempDir(), "never.ssnp")
	if err := run([]string{"-cycles", "1000000", "-checkpoint-at", "999999999", "-checkpoint", ckpt, src}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("unreached checkpoint wrote a file (stat err: %v)", err)
	}
}

func TestSimToolTelemetryStream(t *testing.T) {
	src := writeTemp(t, testSrc)
	out := filepath.Join(t.TempDir(), "telemetry.ndjson")
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-telemetry", out, "-sample", "1000", src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("telemetry stream is empty")
	}
	for i, line := range lines {
		var s struct {
			Cycle uint64           `json:"cycle"`
			Tasks []map[string]any `json:"tasks"`
		}
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if len(s.Tasks) != 2 {
			t.Fatalf("line %d carries %d tasks, want 2", i, len(s.Tasks))
		}
	}
}

func TestSimToolEnergyBudget(t *testing.T) {
	src := writeTemp(t, testSrc)
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-energy", "-metrics", src}); err != nil {
		t.Fatal(err)
	}
}

func TestSimToolTraceAndMetrics(t *testing.T) {
	src := writeTemp(t, testSrc)
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-cycles", "1000000", "-copies", "2", "-metrics", "-trace", out, src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}
}

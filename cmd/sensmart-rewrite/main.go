// Command sensmart-rewrite runs the base-station binary rewriter on a
// program (assembly source or a JSON image from sensmart-asm) and reports
// the naturalization result: patch sites, shift table, trampoline layout,
// and code inflation — the quantities of the paper's Figure 4.
//
// Usage:
//
//	sensmart-rewrite [-nogroup] [-nomerge] [-patches] [-list] file.{s,json}
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/avr"
	"repro/internal/avr/asm"
	"repro/internal/image"
	"repro/internal/minic"
	"repro/internal/rewriter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sensmart-rewrite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sensmart-rewrite", flag.ContinueOnError)
	noGroup := fs.Bool("nogroup", false, "disable the grouped-memory-access optimization")
	noMerge := fs.Bool("nomerge", false, "disable trampoline merging")
	patches := fs.Bool("patches", false, "list every patch site")
	list := fs.Bool("list", false, "print the naturalized code listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sensmart-rewrite [-nogroup] [-nomerge] [-patches] [-list] file.{s,json}")
	}
	prog, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	nat, err := rewriter.Rewrite(prog, rewriter.Config{
		NoGrouping:        *noGroup,
		NoTrampolineMerge: *noMerge,
	})
	if err != nil {
		return err
	}
	native := prog.SizeBytes()
	total := nat.Program.SizeBytes()
	fmt.Printf("%s: native %d B -> naturalized %d B (%.1f%% inflation)\n",
		prog.Name, native, total, 100*float64(total-native)/float64(native))
	fmt.Printf("  code %d B, shift table %d entries (%d B), trampolines %d B (%d bodies)\n",
		2*nat.CodeWords, nat.Shift.Len(), 2*nat.ShiftWords,
		2*nat.TrampolineWords, len(nat.Trampolines))
	byClass := make(map[rewriter.Class]int)
	for _, p := range nat.Patches {
		byClass[p.Class]++
	}
	fmt.Printf("  %d patch sites:", len(nat.Patches))
	for c := rewriter.ClassBranch; c <= rewriter.ClassExit; c++ {
		if n := byClass[c]; n > 0 {
			fmt.Printf(" %s=%d", c, n)
		}
	}
	fmt.Println()
	if *patches {
		for _, p := range nat.Patches {
			fmt.Printf("  #%-4d %-12s orig %#06x -> nat %#06x  %s\n",
				p.Local, p.Class, p.OrigPC, p.NatPC, avr.Disasm(p.Orig))
		}
	}
	if *list {
		fmt.Print(avr.DisasmWords(nat.Program.Words[:nat.CodeWords]))
	}
	return nil
}

// loadProgram reads either assembly source or a JSON image.
func loadProgram(path string) (*image.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch filepath.Ext(path) {
	case ".json":
		var prog image.Program
		if err := prog.DecodeJSON(data); err != nil {
			return nil, err
		}
		return &prog, nil
	case ".c":
		return minic.Compile(name, string(data))
	}
	return asm.Assemble(name, string(data))
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/avr/asm"
)

const testSrc = `
.data
v: .space 2
.text
main:
    ldi r26, lo8(v)
    ldi r27, hi8(v)
    ldi r16, 3
loop:
    st X+, r16
    dec r16
    brne loop
    break
`

func TestRewriteToolOnSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(src, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-patches", "-list", src}); err != nil {
		t.Fatal(err)
	}
	// The ablation flags must also work.
	if err := run([]string{"-nogroup", "-nomerge", src}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteToolOnJSONImage(t *testing.T) {
	prog, err := asm.Assemble("fromjson", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteToolUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected usage error")
	}
}

package faultinject

import (
	"bytes"
	"fmt"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// Containment verdicts, ordered most-severe-first — classify reports the
// first one whose evidence holds.
const (
	VerdictKernelCompromise   = "kernel-compromise"
	VerdictCrossTaskBreach    = "cross-task-breach"
	VerdictContainedFault     = "contained-fault"
	VerdictSilentCorruption   = "silent-corruption"
	VerdictContainedRecovered = "contained-recovered"
)

// Benchmark names one campaign workload: a victim program that must exit on
// its own in an uninjected run.
type Benchmark struct {
	Name    string
	Program *image.Program
}

// Benchmarks returns the campaign suite: the seven kernel benchmarks of the
// paper's evaluation at reduced workload sizes (a campaign runs hundreds of
// full system boots, so each golden run is kept under a few million cycles)
// plus the deliberately vulnerable radiosink receiver.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{"am", progs.AM(6)},
		{"amplitude", progs.Amplitude(40)},
		{"crc", progs.CRC(12)},
		{"eventchain", progs.EventChain(60)},
		{"lfsr", progs.LFSR(3000)},
		{"readadc", progs.ReadADC(40)},
		{"timer", progs.Timer(8)},
		{"radiosink", RadioSink(4)},
	}
}

// Spec configures a campaign: every (Seed, benchmark, trial) triple fully
// determines one injection, so reports are reproducible byte-for-byte.
type Spec struct {
	Seed   uint64
	Trials int
}

// Trial records one injection and its verdict. Non-contained verdicts carry
// a forensic report reconstructing how the payload escaped.
type Trial struct {
	Trial    int       `json:"trial"`
	Kind     string    `json:"kind"`
	Site     string    `json:"site"`
	Verdict  string    `json:"verdict"`
	Detail   string    `json:"detail,omitempty"`
	Forensic *Forensic `json:"forensics,omitempty"`
}

// Report aggregates one benchmark's trials.
type Report struct {
	Benchmark    string         `json:"benchmark"`
	GoldenCycles uint64         `json:"golden_cycles"`
	Verdicts     map[string]int `json:"verdicts"`
	Trials       []Trial        `json:"trials"`
}

// goldenLimit caps the uninjected reference run; a benchmark that cannot
// finish inside it is misconfigured for campaign use.
const goldenLimit = 400_000_000

// trialSlack is added on top of twice the golden runtime to bound each
// trial: enough headroom for containment and relocation detours, small
// enough that livelocks resolve quickly.
const trialSlack = 2_000_000

// rearmDelay is how long a victim-gated injection waits before re-checking
// whether the victim holds the CPU.
const rearmDelay = 512

// outcome captures everything classify needs from one boot-and-run.
type outcome struct {
	k                *kernel.Kernel
	m                *mcu.Machine
	victim, sentinel *kernel.Task
	// victimDone is set by the exit hook on the victim's termination —
	// normal or faulted; ExitReason distinguishes. The machine halts
	// there: a trial is over once its victim is.
	victimDone bool
	exitCycle  uint64
	victimHeap []byte
	uart       []byte
	radio      []byte
	// sentinelHeap is the witness pattern at the end of the run. The
	// pattern ships in .data and is never legitimately written, so it is
	// comparable across runs regardless of when each one stopped.
	sentinelHeap []byte
	runErr       error
	// firedAt is the boundary clock the armed injection actually fired at
	// (0 = never fired) — the anchor forensic replays lockstep from.
	firedAt uint64
}

// snapshotHeap copies a task's live heap bytes [pl, ph).
func snapshotHeap(m *mcu.Machine, t *kernel.Task) []byte {
	pl, ph, _ := t.Region()
	out := make([]byte, 0, ph-pl)
	for a := pl; a < ph; a++ {
		out = append(out, m.Peek(a))
	}
	return out
}

// flattenRadio reduces transmitted frames to their payload bytes: trial
// timing legitimately shifts under injection, so cycles are not compared.
func flattenRadio(frames []mcu.RadioFrame) []byte {
	out := make([]byte, len(frames))
	for i, f := range frames {
		out[i] = f.Byte
	}
	return out
}

// setupOnce boots victim+sentinel and lets arm plant an injection, stopping
// short of the run itself — forensic replays drive the kernel boundary by
// boundary instead of to completion. rec, when non-nil, attaches a trace
// recorder for the replay that reconstructs the event tail.
func setupOnce(victimName string, victimNat, sentinelNat *rewriter.Naturalized,
	arm func(o *outcome), rec *trace.Recorder) (*outcome, error) {
	o := &outcome{m: mcu.New()}
	cfg := kernel.Config{Trace: rec, OnTaskExit: func(k *kernel.Kernel, t *kernel.Task) {
		if t != o.victim || o.victimDone {
			return
		}
		o.victimDone = true
		o.exitCycle = o.m.Cycles()
		o.victimHeap = snapshotHeap(o.m, t)
		o.uart = o.m.UARTOutput()
		o.radio = flattenRadio(o.m.RadioOutput())
		o.m.Halt("faultinject: victim done")
	}}
	o.k = kernel.New(o.m, cfg)
	var err error
	if o.victim, err = o.k.AddTask(victimName, victimNat); err != nil {
		return nil, fmt.Errorf("faultinject: add victim: %w", err)
	}
	if o.sentinel, err = o.k.AddTask("sentinel", sentinelNat); err != nil {
		return nil, fmt.Errorf("faultinject: add sentinel: %w", err)
	}
	if err := o.k.Boot(); err != nil {
		return nil, fmt.Errorf("faultinject: boot: %w", err)
	}
	if arm != nil {
		arm(o)
	}
	return o, nil
}

// runOnce boots victim+sentinel, lets arm plant an injection, and runs to
// the victim's termination or the cycle limit. Setup failures are engine
// errors; a failing kernel run lands in outcome.runErr for classification.
func runOnce(victimName string, victimNat, sentinelNat *rewriter.Naturalized, limit uint64,
	arm func(o *outcome)) (*outcome, error) {
	o, err := setupOnce(victimName, victimNat, sentinelNat, arm, nil)
	if err != nil {
		return nil, err
	}
	o.runErr = o.k.Run(limit)
	if o.sentinel.State() != kernel.TaskTerminated {
		o.sentinelHeap = snapshotHeap(o.m, o.sentinel)
	}
	return o, nil
}

// trialKinds is the rotation a campaign cycles through, so even a short
// campaign covers every fault model.
var trialKinds = []Kind{KindSRAMFlip, KindSRAMBurst, KindRegFlip, KindStackSmash, KindRetAddr, KindRadio}

// plan is one trial's pre-drawn randomness: all draws happen before the run
// so the stream never depends on simulation state.
type plan struct {
	kind     Kind
	at       uint64
	offBits  uint64 // region-relative site selector (sram kinds)
	bit      uint8
	burstLen uint8
	reg      uint8
	smashLen uint8
	value    byte
	target   uint16 // retaddr hijack destination (flash word address)
	payload  []byte
}

// drawPlan derives trial trialIdx's injection from the campaign seed.
func drawPlan(spec Spec, benchIdx, trialIdx int, goldenExit uint64) plan {
	r := newTrialRNG(spec.Seed, benchIdx, trialIdx)
	p := plan{kind: trialKinds[trialIdx%len(trialKinds)]}
	// Fire somewhere inside the victim's golden lifetime, past boot.
	window := goldenExit - kernel.CostSysInit
	if window == 0 {
		window = 1
	}
	p.at = kernel.CostSysInit + r.next()%window
	switch p.kind {
	case KindSRAMFlip:
		p.offBits, p.bit = r.next(), uint8(r.intn(8))
	case KindSRAMBurst:
		p.offBits, p.burstLen, p.bit = r.next(), uint8(2+r.intn(7)), uint8(r.intn(8))
	case KindRegFlip:
		p.reg, p.bit = uint8(r.intn(32)), uint8(r.intn(8))
	case KindStackSmash:
		p.smashLen, p.value = uint8(8+r.intn(33)), r.byteVal()
	case KindRetAddr:
		p.target = uint16(r.next())
	case KindRadio:
		// Always oversized relative to the radiosink's 8-byte buffer: a
		// length prefix of 8..39 followed by that many bytes.
		n := 9 + r.intn(31)
		p.payload = make([]byte, n)
		p.payload[0] = byte(n - 1)
		for i := 1; i < n; i++ {
			p.payload[i] = r.byteVal()
		}
	}
	return p
}

// armPlan schedules the planned injection on a booted system. Region- and
// SP-relative sites resolve at fire time (regions move under relocation; SP
// is a flight-recorder quantity), and victim-gated kinds re-arm until the
// victim actually holds the CPU. It returns a site report: "unfired" until
// the injection lands, then the resolved absolute site.
func armPlan(o *outcome, p plan) *string {
	site := "unfired"
	m, k, victim := o.m, o.k, o.victim
	record := func(in Injection) {
		in.Apply(m)
		in.At = m.Cycles() // stamp the actual fire cycle into the site report
		site = in.String()
		o.firedAt = in.At
	}
	switch p.kind {
	case KindSRAMFlip, KindSRAMBurst:
		m.SetInjector(p.at, func(m *mcu.Machine) {
			if victim.State() == kernel.TaskTerminated {
				return
			}
			n := uint16(1)
			if p.kind == KindSRAMBurst {
				n = uint16(p.burstLen)
			}
			pl, _, pu := victim.Region()
			if pu-pl < n { // degenerate region: nothing to hit safely
				return
			}
			// Keep the whole flip inside the victim's region: a burst
			// straddling a region boundary would corrupt the neighbour
			// physically, which no kernel could contain and which would
			// poison the breach verdict.
			addr := pl + uint16(p.offBits%uint64(pu-pl-n+1))
			record(Injection{Kind: p.kind, Addr: addr, Bit: p.bit, Len: p.burstLen})
		})
	case KindRegFlip, KindStackSmash, KindRetAddr:
		var fn func(m *mcu.Machine)
		fn = func(m *mcu.Machine) {
			if victim.State() == kernel.TaskTerminated {
				return
			}
			if k.Current() != victim {
				m.SetInjector(m.Cycles()+rearmDelay, fn)
				return
			}
			switch p.kind {
			case KindRegFlip:
				record(Injection{Kind: KindRegFlip, Reg: p.reg, Bit: p.bit})
			case KindStackSmash:
				// Smash only what fits inside the victim's own region
				// above the live SP (same boundary discipline as bursts).
				_, _, pu := victim.Region()
				sp := m.SP()
				n := p.smashLen
				if room := int(pu) - int(sp) - 1; room < int(n) {
					if room <= 0 {
						m.SetInjector(m.Cycles()+rearmDelay, fn)
						return
					}
					n = uint8(room)
				}
				record(Injection{Kind: KindStackSmash, Len: n, Value: p.value})
			case KindRetAddr:
				_, _, pu := victim.Region()
				if uint32(m.SP())+2 >= uint32(pu) { // no frame on the stack yet
					m.SetInjector(m.Cycles()+rearmDelay, fn)
					return
				}
				record(Injection{Kind: KindRetAddr, Addr: p.target})
			}
		}
		m.SetInjector(p.at, fn)
	case KindRadio:
		m.SetInjector(p.at, func(m *mcu.Machine) {
			record(Injection{Kind: KindRadio, Payload: p.payload})
		})
	}
	return &site
}

// classify compares a trial against the golden run, most severe verdict
// first.
func classify(golden, trial *outcome) (verdict, detail string) {
	if trial.runErr != nil {
		return VerdictKernelCompromise, "kernel error: " + trial.runErr.Error()
	}
	if trial.sentinel.State() == kernel.TaskTerminated {
		return VerdictCrossTaskBreach, "sentinel terminated: " + trial.sentinel.ExitReason
	}
	if !bytes.Equal(trial.sentinelHeap, golden.sentinelHeap) {
		detail := "sentinel heap diverged"
		if len(trial.sentinelHeap) >= sentinelPatLen+2 &&
			trial.sentinelHeap[sentinelPatLen] == 0xEF && trial.sentinelHeap[sentinelPatLen+1] == 0xBE {
			detail = "sentinel flagged pattern corruption"
		}
		return VerdictCrossTaskBreach, detail
	}
	if trial.victimDone && trial.victim.ExitReason != "exited" {
		detail := trial.victim.ExitReason
		if rec, ok := trial.k.LastFault(trial.victim.ID); ok {
			detail = fmt.Sprintf("%s in %s service: %s", rec.Kind, rec.ServiceName(), rec.Reason)
		}
		return VerdictContainedFault, detail
	}
	if !trial.victimDone {
		return VerdictContainedFault, "livelock: trial cycle budget exhausted"
	}
	switch {
	case !bytes.Equal(trial.victimHeap, golden.victimHeap):
		return VerdictSilentCorruption, "victim heap differs from golden run"
	case !bytes.Equal(trial.uart, golden.uart):
		return VerdictSilentCorruption, fmt.Sprintf("uart differs from golden run (%q vs %q)", trial.uart, golden.uart)
	case !bytes.Equal(trial.radio, golden.radio):
		return VerdictSilentCorruption, "radio output differs from golden run"
	}
	return VerdictContainedRecovered, ""
}

// RunBenchmark runs one benchmark's full trial set: one golden reference
// run, then Spec.Trials injected replays, each classified against the
// golden outputs. benchIdx keys the RNG, so a benchmark's trials do not
// depend on which other benchmarks the campaign includes.
func RunBenchmark(b Benchmark, spec Spec, benchIdx int) (Report, error) {
	victimNat, err := rewriter.Rewrite(b.Program.Clone(), rewriter.Config{})
	if err != nil {
		return Report{}, fmt.Errorf("faultinject: rewrite %s: %w", b.Name, err)
	}
	sentinelNat, err := rewriter.Rewrite(SentinelProgram(), rewriter.Config{})
	if err != nil {
		return Report{}, fmt.Errorf("faultinject: rewrite sentinel: %w", err)
	}
	golden, err := runOnce(b.Name, victimNat.Clone(), sentinelNat.Clone(), goldenLimit, nil)
	if err != nil {
		return Report{}, err
	}
	if golden.runErr != nil {
		return Report{}, fmt.Errorf("faultinject: golden run of %s failed: %w", b.Name, golden.runErr)
	}
	if !golden.victimDone || golden.victim.ExitReason != "exited" {
		return Report{}, fmt.Errorf("faultinject: golden run of %s did not exit cleanly (%q)",
			b.Name, golden.victim.ExitReason)
	}
	rep := Report{
		Benchmark:    b.Name,
		GoldenCycles: golden.exitCycle,
		Verdicts:     make(map[string]int),
	}
	limit := 2*golden.exitCycle + trialSlack
	for i := 0; i < spec.Trials; i++ {
		p := drawPlan(spec, benchIdx, i, golden.exitCycle)
		var site *string
		trial, err := runOnce(b.Name, victimNat.Clone(), sentinelNat.Clone(), limit,
			func(o *outcome) { site = armPlan(o, p) })
		if err != nil {
			return Report{}, err
		}
		verdict, detail := classify(golden, trial)
		rep.Verdicts[verdict]++
		var forensic *Forensic
		if NeedsForensic(verdict) && trial.firedAt > 0 {
			if forensic, err = forensicReplay(b.Name, victimNat, sentinelNat, limit, p, trial.firedAt); err != nil {
				return Report{}, err
			}
		}
		rep.Trials = append(rep.Trials, Trial{
			Trial: i, Kind: p.kind.String(), Site: *site,
			Verdict: verdict, Detail: detail, Forensic: forensic,
		})
	}
	return rep, nil
}

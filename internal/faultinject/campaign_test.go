package faultinject

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestGoldenRunsClean boots every campaign benchmark uninjected and demands
// a clean exit — the precondition differential replay stands on.
func TestGoldenRunsClean(t *testing.T) {
	for i, b := range Benchmarks() {
		b, i := b, i
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunBenchmark(b, Spec{Seed: 1, Trials: 0}, i)
			if err != nil {
				t.Fatal(err)
			}
			if rep.GoldenCycles == 0 {
				t.Fatal("golden run reported zero cycles")
			}
			t.Logf("%s: golden exit at %d cycles", b.Name, rep.GoldenCycles)
		})
	}
}

// TestCampaignSmoke runs a few trials on every benchmark and logs the
// verdict spread.
func TestCampaignSmoke(t *testing.T) {
	for i, b := range Benchmarks() {
		b, i := b, i
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunBenchmark(b, Spec{Seed: 1, Trials: 12}, i)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := json.Marshal(rep.Verdicts)
			t.Logf("%s: %s", b.Name, data)
			for _, tr := range rep.Trials {
				t.Logf("  #%d %s %s -> %s (%s)", tr.Trial, tr.Kind, tr.Site, tr.Verdict, tr.Detail)
			}
		})
	}
}

// TestCampaignDeterministic repeats one benchmark's trials and demands an
// identical report.
func TestCampaignDeterministic(t *testing.T) {
	b := Benchmarks()[7] // radiosink: the most injection-sensitive workload
	a, err := RunBenchmark(b, Spec{Seed: 42, Trials: 6}, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunBenchmark(b, Spec{Seed: 42, Trials: 6}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", a, c)
	}
}

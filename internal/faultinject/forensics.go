package faultinject

import (
	"fmt"

	"repro/internal/rewriter"
	"repro/internal/timetravel"
	"repro/internal/trace"
)

// ForensicSchemaVersion stamps every forensic report; bump it when the
// report's fields or rendering change meaning.
const ForensicSchemaVersion = 1

// forensicEvents is how many trailing trace events a report carries.
const forensicEvents = 32

// forensicStackMax bounds the symbolized stack scan in a report.
const forensicStackMax = 12

// Forensic explains how a payload escaped: where the trial's trajectory
// first diverged from the clean replay and what the machine looked like
// there. Every field is deterministic — a report is byte-identical across
// reruns and worker counts. It is produced automatically for every
// non-contained verdict (kernel-compromise, cross-task-breach,
// silent-corruption).
type Forensic struct {
	SchemaVersion int    `json:"schema_version"`
	InjectedAt    uint64 `json:"injected_at"`
	// Diverged is false for pure data corruption: the perturbed bytes never
	// reached the CPU, so the two replays ran the same instructions end to
	// end and only the memory deltas below betray the injection.
	Diverged        bool     `json:"trajectory_diverged"`
	DivergenceCycle uint64   `json:"divergence_cycle"`
	PC              uint32   `json:"pc"`
	PCSymbol        string   `json:"pc_symbol"`
	CleanPC         uint32   `json:"clean_pc"`
	CleanPCSymbol   string   `json:"clean_pc_symbol"`
	Stack           []string `json:"stack,omitempty"`
	RegDelta        []string `json:"reg_delta,omitempty"`
	MemDelta        []string `json:"mem_delta,omitempty"`
	MemDeltaBytes   int      `json:"mem_delta_bytes"`
	LastEvents      []string `json:"last_events,omitempty"`
	Note            string   `json:"note,omitempty"`
}

// forensicReplay reconstructs how an escaped trial went wrong, in two
// passes over fresh deterministic replays:
//
//  1. A clean and a re-injected replay run in lockstep from the recorded
//     fire cycle until their states first differ (timetravel.FirstDivergence);
//     the lockstep endpoints supply the PCs, symbolized stack, and
//     register/memory deltas at the divergence boundary.
//  2. One more injected replay, this time with a trace recorder attached,
//     runs straight to the divergence cycle to recover the last trace
//     events leading up to it.
func forensicReplay(victimName string, victimNat, sentinelNat *rewriter.Naturalized,
	limit uint64, p plan, firedAt uint64) (*Forensic, error) {
	clean, err := setupOnce(victimName, victimNat.Clone(), sentinelNat.Clone(), nil, nil)
	if err != nil {
		return nil, err
	}
	trial, err := setupOnce(victimName, victimNat.Clone(), sentinelNat.Clone(),
		func(o *outcome) { armPlan(o, p) }, nil)
	if err != nil {
		return nil, err
	}
	div, err := timetravel.FirstDivergence(clean.k, trial.k, firedAt, limit)
	if err != nil {
		return nil, fmt.Errorf("faultinject: forensic lockstep: %w", err)
	}

	sym := trial.k.Symbolizer()
	f := &Forensic{
		SchemaVersion:   ForensicSchemaVersion,
		InjectedAt:      firedAt,
		Diverged:        div.Diverged,
		DivergenceCycle: div.Cycle,
		PC:              div.TrialPC,
		PCSymbol:        sym.Name(div.TrialPC),
		CleanPC:         div.CleanPC,
		CleanPCSymbol:   clean.k.Symbolizer().Name(div.CleanPC),
		MemDeltaBytes:   div.MemBytes,
	}
	if !div.Diverged {
		f.Note = "no trajectory divergence: corrupted state never reached the CPU"
	}
	for _, rd := range div.Regs {
		f.RegDelta = append(f.RegDelta, fmt.Sprintf("r%d: %#02x -> %#02x", rd.Reg, rd.Clean, rd.Trial))
	}
	for _, md := range div.Mem {
		f.MemDelta = append(f.MemDelta, fmt.Sprintf("%#04x+%d", md.Addr, md.Len))
	}
	if t := trial.k.Current(); t != nil {
		_, _, pu := t.Region()
		for _, fr := range timetravel.StackFrames(trial.m, sym, trial.m.SP()+1, pu-1, forensicStackMax) {
			f.Stack = append(f.Stack, fmt.Sprintf("%#04x: -> %#05x %s", fr.Phys, fr.Target, sym.Name(fr.Target)))
		}
	}

	rec := trace.New()
	traced, err := setupOnce(victimName, victimNat.Clone(), sentinelNat.Clone(),
		func(o *outcome) { armPlan(o, p) }, rec)
	if err != nil {
		return nil, err
	}
	if err := traced.k.Run(div.Cycle); err != nil {
		return nil, fmt.Errorf("faultinject: forensic trace replay: %w", err)
	}
	evs := rec.Events()
	// Drop the budget stamp of the replay's own stop — it is an artifact of
	// halting at the divergence cycle, not part of the trial's history.
	if n := len(evs); n > 0 && evs[n-1].Kind == trace.KindBudget {
		evs = evs[:n-1]
	}
	if len(evs) > forensicEvents {
		evs = evs[len(evs)-forensicEvents:]
	}
	names := trace.TaskNames(rec.Events())
	name := func(id int32) string {
		if n, ok := names[id]; ok {
			return n
		}
		return fmt.Sprintf("task%d", id)
	}
	for _, e := range evs {
		f.LastEvents = append(f.LastEvents, e.Format(name))
	}
	return f, nil
}

// NeedsForensic reports whether a verdict is non-contained and therefore
// owes the report a forensic explanation.
func NeedsForensic(verdict string) bool {
	switch verdict {
	case VerdictKernelCompromise, VerdictCrossTaskBreach, VerdictSilentCorruption:
		return true
	}
	return false
}

package faultinject

import (
	"fmt"
	"strings"

	"repro/internal/image"

	"repro/internal/avr/asm"
)

// Witness-task parameters. The pattern lives in .data, so it is present
// from boot (no fill window) and time-invariant: snapshots taken at any
// cycle of any run compare equal unless something actually corrupted it.
const (
	sentinelPatLen  = 32
	sentinelPatSeed = 0xA5
	sentinelPatStep = 7
)

// sentinelPattern returns the witness pattern byte at index i.
func sentinelPattern(i int) byte {
	return byte(sentinelPatSeed + sentinelPatStep*i)
}

// SentinelProgram assembles the cross-task witness: a task whose heap holds
// a known pattern and whose only job is to re-verify it forever. It never
// exits; a campaign trial ends at the victim's exit or the cycle budget.
// If the pattern ever changes, the sentinel stamps 0xBEEF into its flag
// word — but detection does not depend on it getting scheduled: the
// campaign compares the raw pattern bytes against the golden run too.
func SentinelProgram() *image.Program {
	bytes := make([]string, sentinelPatLen)
	for i := range bytes {
		bytes[i] = fmt.Sprintf("0x%02X", sentinelPattern(i))
	}
	src := fmt.Sprintf(`
.data
pat:  .db %s
flag: .space 2
.text
main:
verify:
    ldi r26, lo8(pat)
    ldi r27, hi8(pat)
    ldi r16, %d
    ldi r17, 0x%02X
chk:
    ld r18, X+
    cp r18, r17
    brne corrupt
    subi r17, -%d
    dec r16
    brne chk
    rjmp verify
corrupt:
    ldi r16, 0xEF
    sts flag, r16
    ldi r16, 0xBE
    sts flag+1, r16
spin:
    rjmp spin
`, strings.Join(bytes, ", "), sentinelPatLen, sentinelPatSeed, sentinelPatStep)
	return asm.MustAssemble("sentinel", src)
}

// RadioSink assembles the campaign's deliberately vulnerable receiver: it
// polls the radio for up to `frames` frames, treats the first byte of each
// as a length prefix, and copies that many bytes into an 8-byte buffer with
// no bounds check — the canonical smashable parser. An uninjected run sees
// no frames, exhausts its poll budget, and exits with count 0; hostile
// payloads either stay inside the heap (count clobbered: a silent-
// corruption escape the golden table documents) or run off the region and
// meet the kernel's address check.
func RadioSink(frames int) *image.Program {
	src := fmt.Sprintf(`
.equ FRAMES, %d
.data
buf:   .space 8
count: .space 2
.text
main:
    ldi r22, FRAMES
again:
    ldi r20, 0xFF        ; poll budget ~0x02FF iterations
    ldi r21, 0x02
poll:
    in r16, RSR
    sbrc r16, 1          ; RxOK?
    rjmp recv
    subi r20, 1
    sbci r21, 0
    brne poll
    rjmp done            ; budget exhausted: no (more) frames
recv:
    in r17, RDR          ; attacker-controlled length prefix
    tst r17
    breq counted         ; empty frame
    ldi r26, lo8(buf)
    ldi r27, hi8(buf)
copy:
    in r16, RSR
    sbrs r16, 1
    rjmp copy            ; short frame wedges here: livelock by design
    in r16, RDR
    st X+, r16           ; unchecked: oversized frames overflow buf
    dec r17
    brne copy
counted:
    lds r18, count
    lds r19, count+1
    subi r18, 0xFF       ; count++
    sbci r19, 0xFF
    sts count, r18
    sts count+1, r19
    dec r22
    brne again
done:
    lds r24, count
    lds r25, count+1
    rcall report16
    break
%s`, frames, reportLibTail)
	return asm.MustAssemble(fmt.Sprintf("radiosink-%d", frames), src)
}

// reportLibTail is the same sense-and-send reporting tail the seven kernel
// benchmarks share (internal/progs); the radiosink reports its frame count
// through it so its UART output exercises the full comparison surface.
const reportLibTail = `
report16:
    push r16
    mov r16, r25
    rcall puthex8
    mov r16, r24
    rcall puthex8
    ldi r16, 10
    rcall putc
    pop r16
    ret
puthex8:
    push r16
    swap r16
    rcall puthexn
    pop r16
puthexn:
    andi r16, 0x0F
    cpi r16, 10
    brlo hexdigit
    subi r16, -7
hexdigit:
    subi r16, -48
putc:
    in r17, UCSR0A
    sbrs r17, 5
    rjmp putc
    out UDR0, r16
    ret
`

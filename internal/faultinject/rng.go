package faultinject

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand — stable
// across Go releases, which the golden containment table depends on. Each
// trial derives its own stream from (seed, benchmark, trial), so trials are
// independent of execution order: the pooled sweep draws the same sites as
// the serial one.
type rng struct{ s uint64 }

// newTrialRNG folds the campaign seed and the trial coordinates into one
// stream. The mixing constants are splitmix64's own; running each component
// through a full mix step keeps nearby (bench, trial) pairs uncorrelated.
func newTrialRNG(seed uint64, bench, trial int) *rng {
	r := &rng{s: seed}
	r.s = mix(r.s + 0x9E3779B97F4A7C15*uint64(bench+1))
	r.s = mix(r.s + 0x9E3779B97F4A7C15*uint64(trial+1))
	return r
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// next advances the stream and returns 64 fresh bits.
func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	return mix(r.s)
}

// intn returns a value in [0, n). n must be positive. The modulo bias is
// irrelevant at campaign scale (n is at most a few thousand against 2^64).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// byteVal returns one random byte.
func (r *rng) byteVal() byte { return byte(r.next()) }

package faultinject

import (
	"testing"

	"repro/internal/mcu"
)

// TestParseInjectRoundTrip checks every flag form parses and that String
// renders back something ParseInject accepts with identical meaning.
func TestParseInjectRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Injection
	}{
		{"sram:0x123@500", Injection{Kind: KindSRAMFlip, Addr: 0x123, At: 500}},
		{"sram:291:7@0x1f4", Injection{Kind: KindSRAMFlip, Addr: 291, Bit: 7, At: 500}},
		{"burst:0x200:4@9", Injection{Kind: KindSRAMBurst, Addr: 0x200, Len: 4, At: 9}},
		{"burst:0x200:4:3@9", Injection{Kind: KindSRAMBurst, Addr: 0x200, Len: 4, Bit: 3, At: 9}},
		{"reg:r17@77", Injection{Kind: KindRegFlip, Reg: 17, At: 77}},
		{"reg:r0:6@77", Injection{Kind: KindRegFlip, Reg: 0, Bit: 6, At: 77}},
		{"smash:12:0xAA@1000", Injection{Kind: KindStackSmash, Len: 12, Value: 0xAA, At: 1000}},
		{"retaddr:0xF00@42", Injection{Kind: KindRetAddr, Addr: 0xF00, At: 42}},
		{"radio:03a1b2c3@8", Injection{Kind: KindRadio, Payload: []byte{3, 0xA1, 0xB2, 0xC3}, At: 8}},
	}
	for _, c := range cases {
		got, err := ParseInject(c.in)
		if err != nil {
			t.Errorf("ParseInject(%q): %v", c.in, err)
			continue
		}
		if got.Kind != c.want.Kind || got.At != c.want.At || got.Addr != c.want.Addr ||
			got.Bit != c.want.Bit || got.Len != c.want.Len || got.Value != c.want.Value ||
			got.Reg != c.want.Reg || string(got.Payload) != string(c.want.Payload) {
			t.Errorf("ParseInject(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// Round-trip: re-parsing the rendered form must reproduce it.
		again, err := ParseInject(got.String())
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", got.String(), c.in, err)
			continue
		}
		if again.String() != got.String() {
			t.Errorf("round trip drifted: %q -> %q", got.String(), again.String())
		}
	}
}

func TestParseInjectErrors(t *testing.T) {
	bad := []string{
		"",                      // empty
		"sram:0x10",             // no cycle
		"sram@5",                // missing address
		"sram:0x10:1:2@5",       // too many fields
		"sram:zz@5",             // non-numeric address
		"burst:0x10@5",          // missing length
		"burst:0x10:0@5",        // zero length
		"reg:x5@5",              // bad register syntax
		"reg:r32@5",             // register out of range
		"reg:r1:9@5",            // bit out of range
		"smash:0:0x41@5",        // zero length
		"smash:4@5",             // missing value
		"retaddr@5",             // missing target
		"retaddr:0x10:0x20@5",   // extra field
		"radio:@5",              // empty payload
		"radio:abc@5",           // odd-length hex
		"laser:0x10@5",          // unknown kind
		"sram:0x10@not-a-cycle", // bad cycle
		// Strictness pins: no trailing garbage, signs, or lax field forms
		// may slip through anywhere in the spec or after @CYCLE.
		"sram:0x10:1@5@6",    // second @: trailing garbage after the cycle
		"sram:0x10:1@5 ",     // trailing whitespace after the cycle
		"sram:0x10:1@5junk",  // trailing letters fused to the cycle
		"sram:0x10:1@+5",     // signed cycle
		"sram:0x10:1@-5",     // negative cycle
		"sram:0x10:1@",       // empty cycle
		"sram:+0x10:1@5",     // signed address
		"sram:0x10:1:@5",     // trailing empty field in the spec
		"reg:5@5",            // register without the required r prefix
		"reg:r0x11@5",        // register index must be decimal
		"reg:rr4@5",          // doubled prefix
		"reg:r@5",            // prefix without an index
		"radio:a1b2@",        // empty cycle on the payload form
		"radio:a1 b2@5",      // whitespace inside the hex payload
		"smash:4:0x1FF@5",    // smash value wider than a byte
		"burst:0x10:300:1@5", // burst length wider than a byte
		"@5",                 // empty spec
		"sram:0x10:1",        // missing @CYCLE entirely
	}
	for _, s := range bad {
		if in, err := ParseInject(s); err == nil {
			t.Errorf("ParseInject(%q) accepted as %+v; want error", s, in)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, name := range kindNames {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(0).String() != "kind(0)" {
		t.Errorf("zero kind renders %q", Kind(0).String())
	}
	if (Injection{Kind: Kind(99), At: 7}).String() != "kind(99)@7" {
		t.Errorf("unknown-kind injection renders %q", Injection{Kind: Kind(99), At: 7}.String())
	}
}

// loopMachine builds a bare machine running a two-word infinite loop
// (rjmp .-0 twice is unreachable; one rjmp -1 self-loop) so injections can
// fire at chosen cycles without a kernel underneath.
func loopMachine(t *testing.T) *mcu.Machine {
	t.Helper()
	m := mcu.New()
	if err := m.LoadFlash(0, []uint16{0xCFFF}); err != nil { // rjmp .-2: spin at pc 0
		t.Fatal(err)
	}
	m.SetSP(0x10FF)
	return m
}

func TestApplyPerKind(t *testing.T) {
	m := loopMachine(t)

	Injection{Kind: KindSRAMFlip, Addr: 0x200, Bit: 3}.Apply(m)
	if m.Peek(0x200) != 1<<3 {
		t.Errorf("sram flip: byte is %#x, want %#x", m.Peek(0x200), 1<<3)
	}

	Injection{Kind: KindSRAMBurst, Addr: 0x300, Len: 4, Bit: 1}.Apply(m)
	for i := uint16(0); i < 4; i++ {
		if m.Peek(0x300+i) != 1<<1 {
			t.Errorf("burst flip byte %d: %#x, want %#x", i, m.Peek(0x300+i), 1<<1)
		}
	}
	if m.Peek(0x304) != 0 {
		t.Error("burst flipped past its length")
	}

	Injection{Kind: KindRegFlip, Reg: 20, Bit: 7}.Apply(m)
	if m.Reg(20) != 1<<7 {
		t.Errorf("reg flip: r20 is %#x, want %#x", m.Reg(20), 1<<7)
	}

	Injection{Kind: KindStackSmash, Len: 3, Value: 0xCC}.Apply(m)
	sp := m.SP()
	for i := uint16(1); i <= 3; i++ {
		if m.Peek(sp+i) != 0xCC {
			t.Errorf("smash byte at sp+%d: %#x, want 0xcc", i, m.Peek(sp+i))
		}
	}

	// pushWord leaves the low byte at the higher address; retaddr must
	// write hi at SP+1, lo at SP+2.
	Injection{Kind: KindRetAddr, Addr: 0x1234}.Apply(m)
	if m.Peek(sp+1) != 0x12 || m.Peek(sp+2) != 0x34 {
		t.Errorf("retaddr wrote %#x %#x at sp+1/sp+2, want 0x12 0x34", m.Peek(sp+1), m.Peek(sp+2))
	}

	Injection{Kind: KindRadio, Payload: []byte{1, 2, 3}}.Apply(m)
	// Delivery through the receive path is covered by the campaign tests;
	// here it must simply not fault the bare machine.
}

// TestArmFiresAtCycle checks the one-shot hook fires at the first step at
// or past the armed cycle.
func TestArmFiresAtCycle(t *testing.T) {
	m := loopMachine(t)
	in := Injection{Kind: KindSRAMFlip, Addr: 0x250, Bit: 0, At: 10}
	in.Arm(m)
	if err := m.Run(40); err != nil {
		t.Fatal(err)
	}
	if m.Peek(0x250) != 1 {
		t.Errorf("armed injection did not land: byte is %#x", m.Peek(0x250))
	}
}

// TestArmAllChains checks multiple injections on the single one-shot hook
// fire in cycle order, including two due at the same firing.
func TestArmAllChains(t *testing.T) {
	m := loopMachine(t)
	ins := []Injection{
		{Kind: KindSRAMFlip, Addr: 0x282, Bit: 2, At: 30},
		{Kind: KindSRAMFlip, Addr: 0x280, Bit: 0, At: 10},
		{Kind: KindSRAMFlip, Addr: 0x283, Bit: 3, At: 30}, // same cycle as 0x282
		{Kind: KindSRAMFlip, Addr: 0x281, Bit: 1, At: 20},
	}
	ArmAll(m, ins)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{1, 2, 4, 8} {
		a := uint16(0x280 + i)
		if m.Peek(a) != want {
			t.Errorf("chained injection %d: byte at %#x is %#x, want %#x", i, a, m.Peek(a), want)
		}
	}
}

func TestArmAllEmpty(t *testing.T) {
	m := loopMachine(t)
	ArmAll(m, nil) // must not arm anything
	if err := m.Run(20); err != nil {
		t.Fatal(err)
	}
}

// Package faultinject is the adversarial fault-injection campaign engine:
// it perturbs a running SenSmart system with seeded physical faults —
// SRAM and register bit-flips, stack smashes, return-address corruption,
// and hostile radio payloads — and classifies what the kernel made of each
// one by differential replay against an uninjected golden run.
//
// The taxonomy (DESIGN.md "Fault-injection verdicts") is:
//
//	contained-fault      the kernel terminated the offending task
//	contained-recovered  the run completed with outputs identical to golden
//	silent-corruption    the run completed but outputs differ from golden
//	cross-task-breach    a witness task's memory was corrupted or it died
//	kernel-compromise    the kernel itself errored or wedged
//
// Everything is deterministic: sites are drawn from a splitmix64 stream
// keyed by (seed, benchmark, trial), and the simulator is cycle-exact, so a
// campaign report is byte-identical at any worker count.
package faultinject

import (
	"cmp"
	"encoding/hex"
	"fmt"
	"slices"
	"strconv"
	"strings"

	"repro/internal/mcu"
)

// Kind selects the physical fault model of one injection.
type Kind uint8

const (
	// KindSRAMFlip flips one bit of one data-memory byte.
	KindSRAMFlip Kind = iota + 1
	// KindSRAMBurst flips the same bit in Len consecutive data-memory
	// bytes — the multi-cell upset model.
	KindSRAMBurst
	// KindRegFlip flips one bit of one CPU register.
	KindRegFlip
	// KindStackSmash overwrites Len bytes just above the live SP with
	// Value — a buffer-overrun footprint planted directly.
	KindStackSmash
	// KindRetAddr rewrites the return address at the live SP to Addr —
	// the classic control-flow hijack.
	KindRetAddr
	// KindRadio delivers Payload through the receive path — gadget-style
	// hostile input rather than a physical upset.
	KindRadio
)

var kindNames = map[Kind]string{
	KindSRAMFlip:   "sram",
	KindSRAMBurst:  "burst",
	KindRegFlip:    "reg",
	KindStackSmash: "smash",
	KindRetAddr:    "retaddr",
	KindRadio:      "radio",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Injection is one fully-resolved fault: what to mutate and when. The
// campaign resolves region-relative sites into absolute ones at fire time
// (regions move under relocation); the -inject flag of sensmart-sim builds
// absolute injections directly.
type Injection struct {
	Kind Kind
	// At is the cycle the injection fires at (first Step at or past it).
	At uint64
	// Addr is the data-memory target (sram kinds) or the flash word
	// address a hijacked return lands at (retaddr).
	Addr uint16
	// Bit is the bit index for the flip kinds.
	Bit uint8
	// Len is the burst width or smash depth in bytes.
	Len uint8
	// Value is the smash fill byte.
	Value byte
	// Reg is the register index for KindRegFlip.
	Reg uint8
	// Payload is the radio frame for KindRadio.
	Payload []byte
}

// Apply performs the mutation on the machine immediately. The stack kinds
// read the live SP, so Apply is meaningful only while the intended victim
// holds the CPU — the campaign gates on that before calling.
func (in Injection) Apply(m *mcu.Machine) {
	switch in.Kind {
	case KindSRAMFlip:
		m.Poke(in.Addr, m.Peek(in.Addr)^(1<<(in.Bit&7)))
	case KindSRAMBurst:
		for i := uint8(0); i < in.Len; i++ {
			a := in.Addr + uint16(i)
			m.Poke(a, m.Peek(a)^(1<<(in.Bit&7)))
		}
	case KindRegFlip:
		r := in.Reg & 31
		m.SetReg(r, m.Reg(r)^(1<<(in.Bit&7)))
	case KindStackSmash:
		sp := m.SP()
		for i := uint8(0); i < in.Len; i++ {
			m.Poke(sp+1+uint16(i), in.Value)
		}
	case KindRetAddr:
		// pushWord leaves the low byte at the higher address: the word at
		// SP+1 (hi) / SP+2 (lo) is what the next RET pops.
		sp := m.SP()
		m.Poke(sp+1, byte(in.Addr>>8))
		m.Poke(sp+2, byte(in.Addr))
	case KindRadio:
		m.InjectRadio(in.Payload)
	}
}

// Arm schedules the injection on the machine's one-shot injector hook.
func (in Injection) Arm(m *mcu.Machine) {
	m.SetInjector(in.At, in.Apply)
}

// ArmAll schedules any number of injections on one machine by chaining
// through the single one-shot injector hook in cycle order (the hook
// disarms before firing, so a firing injection may re-arm the next one).
func ArmAll(m *mcu.Machine, ins []Injection) {
	if len(ins) == 0 {
		return
	}
	sorted := slices.Clone(ins)
	slices.SortStableFunc(sorted, func(a, b Injection) int {
		return cmp.Compare(a.At, b.At)
	})
	var armFrom func(idx int)
	armFrom = func(idx int) {
		if idx >= len(sorted) {
			return
		}
		m.SetInjector(sorted[idx].At, func(m *mcu.Machine) {
			sorted[idx].Apply(m)
			// Anything else already due fires in the same step.
			j := idx + 1
			for j < len(sorted) && sorted[j].At <= m.Cycles() {
				sorted[j].Apply(m)
				j++
			}
			armFrom(j)
		})
	}
	armFrom(0)
}

// String renders the injection in the -inject flag syntax.
func (in Injection) String() string {
	switch in.Kind {
	case KindSRAMFlip:
		return fmt.Sprintf("sram:%#x:%d@%d", in.Addr, in.Bit, in.At)
	case KindSRAMBurst:
		return fmt.Sprintf("burst:%#x:%d:%d@%d", in.Addr, in.Len, in.Bit, in.At)
	case KindRegFlip:
		return fmt.Sprintf("reg:r%d:%d@%d", in.Reg, in.Bit, in.At)
	case KindStackSmash:
		return fmt.Sprintf("smash:%d:%#x@%d", in.Len, in.Value, in.At)
	case KindRetAddr:
		return fmt.Sprintf("retaddr:%#x@%d", in.Addr, in.At)
	case KindRadio:
		return fmt.Sprintf("radio:%s@%d", hex.EncodeToString(in.Payload), in.At)
	}
	return fmt.Sprintf("kind(%d)@%d", uint8(in.Kind), in.At)
}

// ParseInject parses the -inject flag syntax KIND:PARAMS@CYCLE:
//
//	sram:ADDR[:BIT]@CYCLE       flip BIT (default 0) of data byte ADDR
//	burst:ADDR:LEN[:BIT]@CYCLE  flip BIT in LEN consecutive bytes at ADDR
//	reg:rN[:BIT]@CYCLE          flip BIT of register N (r prefix required, N decimal)
//	smash:LEN:VALUE@CYCLE       write LEN copies of VALUE above the live SP
//	retaddr:TARGET@CYCLE        point the return address at flash word TARGET
//	radio:HEXBYTES@CYCLE        deliver the hex-decoded payload on the radio
//
// Numbers accept 0x-prefixed hex or decimal.
func ParseInject(s string) (Injection, error) {
	fail := func(why string) (Injection, error) {
		return Injection{}, fmt.Errorf("inject %q: %s", s, why)
	}
	spec, cycleStr, ok := strings.Cut(s, "@")
	if !ok {
		return fail("want KIND:PARAMS@CYCLE")
	}
	at, err := strconv.ParseUint(cycleStr, 0, 64)
	if err != nil {
		return fail("bad cycle: " + err.Error())
	}
	parts := strings.Split(spec, ":")
	num := func(i int, bits int) (uint64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("missing field %d", i)
		}
		return strconv.ParseUint(parts[i], 0, bits)
	}
	in := Injection{At: at}
	switch parts[0] {
	case "sram":
		if len(parts) < 2 || len(parts) > 3 {
			return fail("want sram:ADDR[:BIT]@CYCLE")
		}
		addr, err := num(1, 16)
		if err != nil {
			return fail("bad address: " + err.Error())
		}
		in.Kind, in.Addr = KindSRAMFlip, uint16(addr)
		if len(parts) == 3 {
			bit, err := num(2, 3)
			if err != nil {
				return fail("bad bit: " + err.Error())
			}
			in.Bit = uint8(bit)
		}
	case "burst":
		if len(parts) < 3 || len(parts) > 4 {
			return fail("want burst:ADDR:LEN[:BIT]@CYCLE")
		}
		addr, err := num(1, 16)
		if err != nil {
			return fail("bad address: " + err.Error())
		}
		n, err := num(2, 8)
		if err != nil || n == 0 {
			return fail("bad length")
		}
		in.Kind, in.Addr, in.Len = KindSRAMBurst, uint16(addr), uint8(n)
		if len(parts) == 4 {
			bit, err := num(3, 3)
			if err != nil {
				return fail("bad bit: " + err.Error())
			}
			in.Bit = uint8(bit)
		}
	case "reg":
		if len(parts) < 2 || len(parts) > 3 {
			return fail("want reg:rN[:BIT]@CYCLE")
		}
		rs, hasPrefix := strings.CutPrefix(parts[1], "r")
		r, err := strconv.ParseUint(rs, 10, 8)
		if !hasPrefix || err != nil || r > 31 {
			return fail("bad register (want r0..r31)")
		}
		in.Kind, in.Reg = KindRegFlip, uint8(r)
		if len(parts) == 3 {
			bit, err := num(2, 3)
			if err != nil {
				return fail("bad bit: " + err.Error())
			}
			in.Bit = uint8(bit)
		}
	case "smash":
		if len(parts) != 3 {
			return fail("want smash:LEN:VALUE@CYCLE")
		}
		n, err := num(1, 8)
		if err != nil || n == 0 {
			return fail("bad length")
		}
		v, err := num(2, 8)
		if err != nil {
			return fail("bad value: " + err.Error())
		}
		in.Kind, in.Len, in.Value = KindStackSmash, uint8(n), byte(v)
	case "retaddr":
		if len(parts) != 2 {
			return fail("want retaddr:TARGET@CYCLE")
		}
		tgt, err := num(1, 16)
		if err != nil {
			return fail("bad target: " + err.Error())
		}
		in.Kind, in.Addr = KindRetAddr, uint16(tgt)
	case "radio":
		if len(parts) != 2 {
			return fail("want radio:HEXBYTES@CYCLE")
		}
		payload, err := hex.DecodeString(parts[1])
		if err != nil || len(payload) == 0 {
			return fail("bad hex payload")
		}
		in.Kind, in.Payload = KindRadio, payload
	default:
		return fail("unknown kind " + parts[0])
	}
	return in, nil
}

// Package timetravel is a deterministic time-travel debug layer over the
// simulator: it records one run while arming a ring of periodic checkpoints
// (riding the machine's outer-loop checkpoint hook and the snapshot v2 wire
// format), then serves Seek(cycle) by restoring the nearest prior checkpoint
// into a fresh system and re-executing in checked mode to the exact cycle.
// The landed state is byte-identical to a straight checked run to that cycle
// — machine, kernel, and every attached observer — so an Inspector over it
// reads the truth, not an approximation. SeekFirst bisects the checkpoint
// ring and replays to find the first cycle a monotone predicate becomes
// true (watchpoint hit, sentinel tamper, invariant break).
//
// Everything rides existing determinism guarantees: checkpoints fire only at
// run-loop boundaries the run reaches anyway, so arming the ring never
// perturbs the recorded trajectory.
package timetravel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/snapshot"
)

// Sentinel errors callers can branch on.
var (
	// ErrNotRecorded: Seek/SeekFirst before Record.
	ErrNotRecorded = errors.New("timetravel: no run recorded yet")
	// ErrPastEnd: the requested cycle is beyond the recorded run.
	ErrPastEnd = errors.New("timetravel: seek past the end of the recording")
	// ErrPredicate: SeekFirst's predicate never became true in the recording.
	ErrPredicate = errors.New("timetravel: predicate never becomes true in the recording")
)

// Config sizes the checkpoint ring and hooks replay setup.
type Config struct {
	// Checkpoints is the ring capacity N: the newest N checkpoints are kept,
	// older ones are evicted (seeks before the oldest fall back to a replay
	// from boot). Default 8.
	Checkpoints int
	// Every is the nominal cycle spacing between checkpoints — the knob of
	// the seek cost model: expected checked-replay distance is Every/2.
	// Default 1<<20.
	Every uint64
	// Rearm, when non-nil, runs right after Boot on the recorded run and on
	// every boot-based replay. Use it to re-arm deterministic external
	// stimuli — fault injections — so replays retrace the recorded
	// trajectory. Checkpoint-based replays never need it: an armed injector
	// is unserializable, so the ring only holds post-injection states (the
	// ring skips refused captures and re-arms past them).
	Rearm func(*core.System)
}

// ringEntry is one retained checkpoint: the decoded state for in-process
// seeks plus its snapshot v2 wire bytes, kept so seeks can also start from
// the serialized form (and so the bytes path stays continuously exercised).
type ringEntry struct {
	cycle uint64 // boundary clock the capture actually fired at
	st    *snapshot.State
	blob  []byte
}

// Debugger records one run of a factory-built system and serves seeks into
// it. The factory must build identically-shaped systems on every call — same
// options, same observers, same programs in the same order — because seeks
// restore recorded state into fresh factory builds.
type Debugger struct {
	build func() (*core.System, error)
	cfg   Config

	sys      *core.System // the recorded primary (image parent for replays)
	ring     []ringEntry  // ascending capture cycles, len <= cfg.Checkpoints
	evicted  int
	skipped  int // captures refused (armed injector) and re-armed past
	end      uint64
	recorded bool
	fail     error // first checkpoint capture/encode failure
}

// New builds a Debugger over the factory. The factory is called once per
// Record/Seek/SeekFirst probe; it must be deterministic.
func New(build func() (*core.System, error), cfg Config) (*Debugger, error) {
	if build == nil {
		return nil, errors.New("timetravel: nil system factory")
	}
	if cfg.Checkpoints <= 0 {
		cfg.Checkpoints = 8
	}
	if cfg.Every == 0 {
		cfg.Every = 1 << 20
	}
	return &Debugger{build: build, cfg: cfg}, nil
}

// Record boots a factory system and runs it to completion (or the cycle
// limit; 0 = none), arming the checkpoint ring along the way. It must be
// called exactly once, before any seek.
func (d *Debugger) Record(limit uint64) error {
	if d.recorded {
		return errors.New("timetravel: run already recorded")
	}
	sys, err := d.build()
	if err != nil {
		return err
	}
	d.sys = sys
	if err := sys.Boot(); err != nil {
		return err
	}
	if d.cfg.Rearm != nil {
		d.cfg.Rearm(sys)
	}
	d.armNext(sys.Machine().Cycles() + d.cfg.Every)
	runErr := sys.Run(limit)
	sys.Machine().SetCheckpoint(0, nil) // drop a not-yet-fired hook
	d.end = sys.Machine().Cycles()
	d.recorded = true
	if runErr != nil {
		return runErr
	}
	return d.fail
}

// armNext chains the ring's one-shot checkpoint hook at nominal cycle at.
func (d *Debugger) armNext(at uint64) {
	d.sys.ArmCheckpoint(at, func(st *snapshot.State, err error) {
		next := at + d.cfg.Every
		if now := d.sys.Machine().Cycles(); next <= now {
			// The boundary overshot past the next nominal slot (a long
			// horizon or trap window); keep the spacing honest from here.
			next = now + 1
		}
		switch {
		case errors.Is(err, mcu.ErrArmedInjector):
			// A pending injection is an unserializable side effect: skip
			// this slot and try again once it has fired.
			d.skipped++
		case err != nil:
			d.fail = err
			return // stop arming: every later capture would fail the same way
		default:
			blob, eerr := snapshot.Encode(st)
			if eerr != nil {
				d.fail = eerr
				return
			}
			d.push(ringEntry{cycle: st.Machine.Cycle, st: st, blob: blob})
		}
		d.armNext(next)
	})
}

// push appends a checkpoint, evicting the oldest beyond the ring capacity.
func (d *Debugger) push(e ringEntry) {
	d.ring = append(d.ring, e)
	if len(d.ring) > d.cfg.Checkpoints {
		d.ring[0] = ringEntry{}
		d.ring = d.ring[1:]
		d.evicted++
	}
}

// End returns the recorded run's final cycle clock.
func (d *Debugger) End() uint64 { return d.end }

// Recorded returns the recorded primary system (nil before Record). Treat it
// as read-only: it is the image parent every replay adopts flash from, and
// its artifact streams — trace, metrics, telemetry, energy — are the
// recording's ground truth.
func (d *Debugger) Recorded() *core.System { return d.sys }

// Checkpoints returns the capture cycles currently held in the ring,
// ascending.
func (d *Debugger) Checkpoints() []uint64 {
	out := make([]uint64, len(d.ring))
	for i, e := range d.ring {
		out[i] = e.cycle
	}
	return out
}

// Evicted returns how many checkpoints aged out of the ring.
func (d *Debugger) Evicted() int { return d.evicted }

// Skipped returns how many checkpoint slots were refused (armed injector)
// and re-armed past.
func (d *Debugger) Skipped() int { return d.skipped }

// nearest returns the newest ring entry at or before cycle, or nil.
func (d *Debugger) nearest(cycle uint64) *ringEntry {
	for i := len(d.ring) - 1; i >= 0; i-- {
		if d.ring[i].cycle <= cycle {
			return &d.ring[i]
		}
	}
	return nil
}

// Seek lands a fresh system on the first instruction boundary at or past
// cycle and returns an Inspector over it. It restores the nearest prior ring
// checkpoint (falling back to a replay from boot) and re-executes in checked
// mode; the landed state — machine, kernel, and every observer stream — is
// byte-identical to a straight checked run to the same cycle.
func (d *Debugger) Seek(cycle uint64) (*Inspector, error) { return d.seek(cycle, false) }

// SeekBytes is Seek, but restores from the checkpoint's snapshot v2 wire
// bytes instead of the retained in-memory state — the path a disk- or
// network-backed ring would take.
func (d *Debugger) SeekBytes(cycle uint64) (*Inspector, error) { return d.seek(cycle, true) }

func (d *Debugger) seek(cycle uint64, fromBytes bool) (*Inspector, error) {
	if !d.recorded {
		return nil, ErrNotRecorded
	}
	if cycle > d.end {
		return nil, fmt.Errorf("%w: cycle %d, recording ends at %d", ErrPastEnd, cycle, d.end)
	}
	sys, base, fromRing, err := d.seekBase(cycle, fromBytes)
	if err != nil {
		return nil, err
	}
	// One Run call, exactly like the straight reference run: even when the
	// base already sits at (or past) the requested cycle the call is made,
	// because the reference run's kernel.Run stamps a budget event into an
	// attached trace on exit and byte-identity includes that stamp. The only
	// exception is cycle 0, where Run's limit of 0 would mean "no limit":
	// Seek(0) is defined as the boot state, unstamped.
	if cycle > 0 {
		if err := sys.Run(cycle); err != nil {
			return nil, err
		}
	}
	return &Inspector{sys: sys, seekTo: cycle, base: base, fromRing: fromRing}, nil
}

// seekBase builds a fresh system positioned at the best starting point for a
// replay to cycle: restored from the nearest prior checkpoint, or booted
// (with Rearm) when none is retained. The system is left in checked mode.
func (d *Debugger) seekBase(cycle uint64, fromBytes bool) (sys *core.System, base uint64, fromRing bool, err error) {
	sys, err = d.build()
	if err != nil {
		return nil, 0, false, err
	}
	sys.AdoptImage(d.sys)
	if e := d.nearest(cycle); e != nil {
		st := e.st
		if fromBytes {
			if st, err = snapshot.Decode(e.blob); err != nil {
				return nil, 0, false, err
			}
		}
		if err := sys.Restore(st); err != nil {
			return nil, 0, false, err
		}
		base, fromRing = e.cycle, true
	} else {
		if err := sys.Boot(); err != nil {
			return nil, 0, false, err
		}
		if d.cfg.Rearm != nil {
			d.cfg.Rearm(sys)
		}
		base = sys.Machine().Cycles()
	}
	sys.Machine().SetStepwise(true)
	return sys, base, fromRing, nil
}

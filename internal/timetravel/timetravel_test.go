package timetravel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// counterProg counts a heap byte up to target with a spin delay between
// increments, then parks in a sleep loop so its state stays inspectable for
// the rest of the run.
func counterProg(target int) string {
	return fmt.Sprintf(`
.data
n: .space 1
pad: .space 1
.text
main:
    clr r24
    sts n, r24
loop:
    lds r24, n
    inc r24
    sts n, r24
    rcall delay
    cpi r24, %d
    brne loop
park:
    sleep
    rjmp park
delay:
    ldi r20, 200
spin:
    dec r20
    brne spin
    ret
`, target)
}

// ttFactory builds the deterministic two-task system every test here records
// and replays: task a counts to 150, task b to 200, both with a trace
// recorder and an energy meter attached so seeks restore observer state too.
func ttFactory() (*core.System, error) {
	sys := core.NewSystem(
		core.WithKernelConfig(kernel.Config{InitialStack: 96}),
		core.WithTrace(trace.New()),
		core.WithEnergy(new(energy.Meter)),
	)
	for _, p := range []struct {
		name   string
		target int
	}{{"a", 150}, {"b", 200}} {
		prog, err := sys.CompileString(p.name, counterProg(p.target))
		if err != nil {
			return nil, err
		}
		if _, err := sys.Deploy(prog); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

const ttLimit = 400_000

// ttRecord records the standard run with the given ring config.
func ttRecord(t *testing.T, cfg Config) *Debugger {
	t.Helper()
	d, err := New(ttFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Record(ttLimit); err != nil {
		t.Fatal(err)
	}
	return d
}

// ttReference runs a fresh factory system straight to cycle in checked mode —
// the ground truth every seek must be byte-identical to.
func ttReference(t *testing.T, rearm func(*core.System), cycle uint64) *core.System {
	t.Helper()
	sys, err := ttFactory()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if rearm != nil {
		rearm(sys)
	}
	sys.Machine().SetStepwise(true)
	if cycle > 0 {
		if err := sys.Run(cycle); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func encodeState(t *testing.T, sys *core.System) []byte {
	t.Helper()
	st, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := snapshot.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestRingCapture(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 4, Every: 16_384})
	if d.End() < ttLimit {
		t.Errorf("End() = %d, want >= %d (parked tasks run to the budget)", d.End(), ttLimit)
	}
	cks := d.Checkpoints()
	if len(cks) != 4 {
		t.Fatalf("ring holds %d checkpoints, want capacity 4", len(cks))
	}
	for i := 1; i < len(cks); i++ {
		if cks[i] <= cks[i-1] {
			t.Fatalf("capture cycles not ascending: %v", cks)
		}
	}
	if d.Evicted() == 0 {
		t.Error("a 400k-cycle run at 16k spacing should evict past a 4-slot ring")
	}
	if d.Skipped() != 0 {
		t.Errorf("Skipped() = %d with no injector armed", d.Skipped())
	}
	if cks[0] < ttLimit-4*3*16_384 {
		t.Errorf("oldest retained checkpoint %d is too old for a 4-slot ring", cks[0])
	}
}

func TestSeekIdentity(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	cks := d.Checkpoints()
	probes := []uint64{
		0,                     // before the oldest checkpoint: boot fallback
		cks[0],                // exactly on a capture boundary
		cks[1] + 1,            // one past a capture boundary
		(cks[2] + cks[3]) / 2, // mid-window
		d.End(),               // the very end
	}
	for _, c := range probes {
		c := c
		t.Run(fmt.Sprintf("cycle%d", c), func(t *testing.T) {
			want := encodeState(t, ttReference(t, nil, c))
			for _, via := range []struct {
				name string
				seek func(uint64) (*Inspector, error)
			}{{"ring", d.Seek}, {"bytes", d.SeekBytes}} {
				insp, err := via.seek(c)
				if err != nil {
					t.Fatalf("%s seek: %v", via.name, err)
				}
				if got := encodeState(t, insp.System()); !bytes.Equal(got, want) {
					t.Errorf("%s seek to %d: landed state differs from straight run", via.name, c)
				}
				if insp.Requested() != c {
					t.Errorf("Requested() = %d, want %d", insp.Requested(), c)
				}
				if insp.Cycle() < c {
					t.Errorf("landed cycle %d before requested %d", insp.Cycle(), c)
				}
			}
		})
	}
}

func TestSeekBaseSelection(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	cks := d.Checkpoints()

	insp, err := d.Seek(cks[0] - 1)
	if err != nil {
		t.Fatal(err)
	}
	if base, fromRing := insp.Base(); fromRing {
		t.Errorf("seek before the oldest checkpoint used ring base %d", base)
	}

	insp, err = d.Seek(cks[2] + 5)
	if err != nil {
		t.Fatal(err)
	}
	if base, fromRing := insp.Base(); !fromRing || base != cks[2] {
		t.Errorf("Base() = (%d, %v), want (%d, true)", base, fromRing, cks[2])
	}
}

func TestSeekErrors(t *testing.T) {
	d, err := New(ttFactory, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seek(0); !errors.Is(err, ErrNotRecorded) {
		t.Errorf("Seek before Record: err = %v, want ErrNotRecorded", err)
	}
	if _, err := d.SeekFirst(func(*Inspector) bool { return true }); !errors.Is(err, ErrNotRecorded) {
		t.Errorf("SeekFirst before Record: err = %v, want ErrNotRecorded", err)
	}
	if err := d.Record(ttLimit); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seek(d.End() + 1); !errors.Is(err, ErrPastEnd) {
		t.Errorf("Seek past end: err = %v, want ErrPastEnd", err)
	}
	if err := d.Record(ttLimit); err == nil {
		t.Error("second Record did not fail")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New with nil factory did not fail")
	}
}

func TestRingSkipsArmedInjector(t *testing.T) {
	// The injection fires at cycle 60k; checkpoint slots before that find the
	// injector armed, get refused (mcu.ErrArmedInjector), and are re-armed
	// past it. Replays from boot re-arm the same injection via Rearm.
	const fireAt = 60_000
	rearm := func(sys *core.System) {
		sys.Machine().SetInjector(fireAt, func(m *mcu.Machine) {
			m.SetReg(13, m.Reg(13)^0x80)
		})
	}
	d, err := New(ttFactory, Config{Checkpoints: 4, Every: 16_384, Rearm: rearm})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Record(ttLimit); err != nil {
		t.Fatal(err)
	}
	if d.Skipped() == 0 {
		t.Fatal("no checkpoint slot was skipped while the injector was armed")
	}
	for _, e := range d.ring {
		if e.cycle < fireAt {
			t.Fatalf("ring retains a pre-injection checkpoint at %d", e.cycle)
		}
	}
	// Identity must still hold, both through a ring restore (post-injection
	// state, no rearm involved) and through the boot fallback (Rearm replays
	// the injection). At fireAt+10k the ring holds nothing old enough, so
	// that probe exercises the boot fallback re-firing the injection; the
	// end probe restores from the ring.
	for _, c := range []uint64{fireAt + 10_000, d.End()} {
		want := encodeState(t, ttReference(t, rearm, c))
		insp, err := d.Seek(c)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeState(t, insp.System()); !bytes.Equal(got, want) {
			t.Errorf("seek to %d with injection: landed state differs from straight run", c)
		}
	}
	// Before the injection fires a snapshot is refused (the armed injector is
	// unserializable), so compare the landed machine word by word instead.
	insp, err := d.Seek(fireAt / 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := ttReference(t, rearm, fireAt/2)
	mi, mr := insp.System().Machine(), ref.Machine()
	if mi.Cycles() != mr.Cycles() || mi.PC() != mr.PC() || mi.SP() != mr.SP() || mi.SREG() != mr.SREG() {
		t.Fatalf("pre-fire seek landed on (cycle %d, pc %#x), straight run on (cycle %d, pc %#x)",
			mi.Cycles(), mi.PC(), mr.Cycles(), mr.PC())
	}
	for a := uint16(0); a < mcu.DataSize; a++ {
		if mi.Peek(a) != mr.Peek(a) {
			t.Fatalf("pre-fire seek: data[%#04x] = %#02x, straight run has %#02x", a, mi.Peek(a), mr.Peek(a))
		}
	}
}

func TestRecordSurfacesCaptureFailure(t *testing.T) {
	// A factory whose telemetry/observer shape is fine but whose checkpoint
	// capture fails is simulated the simple way: arm an injector that never
	// fires, so every capture slot is refused. That exercises the skip path
	// to exhaustion without ever filling the ring.
	rearm := func(sys *core.System) {
		sys.Machine().SetInjector(ttLimit*2, func(*mcu.Machine) {})
	}
	d, err := New(ttFactory, Config{Checkpoints: 4, Every: 65_536, Rearm: rearm})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Record(ttLimit); err != nil {
		t.Fatal(err)
	}
	if len(d.Checkpoints()) != 0 {
		t.Errorf("ring holds %d checkpoints under a permanently-armed injector", len(d.Checkpoints()))
	}
	if d.Skipped() == 0 {
		t.Error("no slots recorded as skipped")
	}
	// Seeks still work — everything is a boot-fallback replay.
	if _, err := d.Seek(100_000); err != nil {
		t.Fatal(err)
	}
}

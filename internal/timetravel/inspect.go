package timetravel

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Inspector is a read-only view over a landed seek: the system underneath is
// byte-identical to a straight checked run to the seek cycle, so everything
// here — registers, stacks, metrics, energy — is ground truth for that
// cycle, not a reconstruction.
type Inspector struct {
	sys      *core.System
	seekTo   uint64
	base     uint64
	fromRing bool
}

// System exposes the landed system (read it, don't run it — running moves
// the Inspector off its cycle).
func (in *Inspector) System() *core.System { return in.sys }

// Cycle returns the landed cycle clock: the first instruction boundary at or
// past the requested seek cycle.
func (in *Inspector) Cycle() uint64 { return in.sys.Machine().Cycles() }

// Requested returns the cycle the seek asked for.
func (in *Inspector) Requested() uint64 { return in.seekTo }

// Base returns where the replay started: a ring checkpoint's capture cycle
// (fromRing true) or the boot clock of a replay from scratch.
func (in *Inspector) Base() (cycle uint64, fromRing bool) { return in.base, in.fromRing }

// PC returns the landed program counter (flash word address).
func (in *Inspector) PC() uint32 { return in.sys.Machine().PC() }

// PCSymbol renders the landed PC through the kernel's symbolizer.
func (in *Inspector) PCSymbol() string { return in.sys.Kernel().Symbolizer().Name(in.PC()) }

// Registers returns the 32 CPU registers.
func (in *Inspector) Registers() [32]byte {
	var r [32]byte
	for i := range r {
		r[i] = in.sys.Machine().Reg(uint8(i))
	}
	return r
}

// SREG returns the status register.
func (in *Inspector) SREG() byte { return in.sys.Machine().SREG() }

// SP returns the live (physical) stack pointer.
func (in *Inspector) SP() uint16 { return in.sys.Machine().SP() }

// Current returns the task holding the CPU at the landed cycle, or nil.
func (in *Inspector) Current() *kernel.Task { return in.sys.Kernel().Current() }

// Mem reads n bytes of physical data memory starting at addr.
func (in *Inspector) Mem(addr uint16, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = in.sys.Machine().Peek(addr + uint16(i))
	}
	return out
}

// Metrics snapshots the kernel's per-task and per-service cycle accounting
// at the landed cycle.
func (in *Inspector) Metrics() *trace.Metrics { return in.sys.Metrics() }

// Energy returns the energy ledger's breakdown up to the landed cycle; ok is
// false when the factory attached no meter.
func (in *Inspector) Energy() (energy.Breakdown, bool) {
	m := in.sys.Energy()
	if m == nil {
		return energy.Breakdown{}, false
	}
	return m.Report(in.Cycle()), true
}

// Events returns the last n trace events recorded up to the landed cycle
// (all of them when n <= 0); nil when the factory attached no recorder.
func (in *Inspector) Events(n int) []trace.Event {
	r := in.sys.Trace()
	if r == nil {
		return nil
	}
	evs := r.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// AddrInfo is a decoded physical data address: which task's region it lands
// in and the logical address that task sees there.
type AddrInfo struct {
	Phys    uint16
	Logical uint16
	Task    *kernel.Task // nil when no task's region covers the address
	Kind    string       // "heap", "stack", or "unmapped"
}

// DecodeAddr decodes a physical address through the kernel task table: the
// owning task (any task, not just the running one) and its logical view.
func (in *Inspector) DecodeAddr(phys uint16) AddrInfo {
	info := AddrInfo{Phys: phys, Logical: phys, Kind: "unmapped"}
	for _, t := range in.sys.Kernel().Tasks {
		if t.State() == kernel.TaskTerminated {
			// A terminated task's region is reclaimed and may be reused.
			continue
		}
		l, ok := t.LogicalAddr(phys)
		if !ok {
			continue
		}
		info.Logical, info.Task = l, t
		if pl, ph, _ := t.Region(); phys >= pl && phys < ph {
			info.Kind = "heap"
		} else {
			info.Kind = "stack"
		}
		return info
	}
	return info
}

// StackEntry is one plausible saved return address found on a stack.
type StackEntry struct {
	Phys    uint16 // physical address of the slot's high byte
	Logical uint16 // the owning task's logical address of that slot
	Target  uint32 // flash word address the saved return points at
	Frame   profile.Frame
}

// Stack walks the running task's live stack for saved return addresses,
// symbolized; max bounds the result (0 = no bound). Like any debugger's
// scan-based backtrace it is a heuristic: pushed register bytes that happen
// to resolve into code show up too, but every real return address is there.
func (in *Inspector) Stack(max int) []StackEntry {
	t := in.Current()
	if t == nil {
		return nil
	}
	_, _, pu := t.Region()
	frames := StackFrames(in.sys.Machine(), in.sys.Kernel().Symbolizer(), in.SP()+1, pu-1, max)
	for i := range frames {
		if l, ok := t.LogicalAddr(frames[i].Phys); ok {
			frames[i].Logical = l
		}
	}
	return frames
}

// StackFrames scans data memory [lo, hi) for plausible saved return
// addresses and symbolizes them. The machine's pushWord leaves the high byte
// at the lower address (hi at SP+1, lo at SP+2 after a call), so the word at
// address a is Peek(a)<<8 | Peek(a+1). A word counts as a frame when the
// symbolizer places it inside a loaded image and outside the shift-table
// data blob; zero words (the overwhelmingly common stack garbage) are
// skipped.
func StackFrames(m *mcu.Machine, sym *profile.Symbolizer, lo, hi uint16, max int) []StackEntry {
	var out []StackEntry
	for a := lo; a+1 <= hi && a >= lo; a++ {
		target := uint32(m.Peek(a))<<8 | uint32(m.Peek(a+1))
		if target == 0 {
			continue
		}
		f := sym.Resolve(target)
		if f.Image == "" || f.Symbol == "<shift-table>" {
			continue
		}
		out = append(out, StackEntry{Phys: a, Logical: a, Target: target, Frame: f})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

package timetravel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mcu"
)

// taskByName finds a task by its image name (task names carry a "#index"
// instance suffix).
func taskByName(sys *core.System, name string) *kernel.Task {
	for _, t := range sys.Kernel().Tasks {
		if t != nil && strings.HasPrefix(t.Name, name+"#") {
			return t
		}
	}
	return nil
}

func TestInspectorState(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	insp, err := d.Seek(100_000)
	if err != nil {
		t.Fatal(err)
	}
	m := insp.System().Machine()

	if insp.PC() != m.PC() || insp.SP() != m.SP() || insp.SREG() != m.SREG() {
		t.Error("Inspector PC/SP/SREG disagree with the landed machine")
	}
	if insp.PCSymbol() == "" {
		t.Error("PCSymbol() is empty")
	}
	regs := insp.Registers()
	for i := range regs {
		if regs[i] != m.Reg(uint8(i)) {
			t.Fatalf("Registers()[%d] = %#02x, machine has %#02x", i, regs[i], m.Reg(uint8(i)))
		}
	}
	got := insp.Mem(0x0100, 16)
	want := make([]byte, 16)
	for i := range want {
		want[i] = m.Peek(0x0100 + uint16(i))
	}
	if !bytes.Equal(got, want) {
		t.Error("Mem() disagrees with machine Peek")
	}
	if insp.Current() == nil {
		t.Error("Current() = nil mid-run")
	}
	if insp.Metrics() == nil {
		t.Error("Metrics() = nil with a kernel attached")
	}
	if br, ok := insp.Energy(); !ok || br.TotalPJ == 0 {
		t.Errorf("Energy() = (%+v, %v), want a live ledger", br, ok)
	}
	evs := insp.Events(0)
	if len(evs) == 0 {
		t.Fatal("Events(0) empty with a recorder attached")
	}
	if last5 := insp.Events(5); len(last5) != 5 || last5[4] != evs[len(evs)-1] {
		t.Error("Events(5) is not the 5-event tail")
	}
}

func TestInspectorDecodeAddr(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	insp, err := d.Seek(100_000)
	if err != nil {
		t.Fatal(err)
	}
	tb := taskByName(insp.System(), "b")
	if tb == nil {
		t.Fatal("task b missing from the landed kernel")
	}
	pl, ph, pu := tb.Region()

	if ai := insp.DecodeAddr(pl); ai.Task != tb || ai.Kind != "heap" || ai.Logical != 0x0100 {
		t.Errorf("DecodeAddr(heap base %#04x) = %+v", pl, ai)
	}
	if ai := insp.DecodeAddr(pu - 1); ai.Task != tb || ai.Kind != "stack" || ai.Logical != 0x10FF {
		t.Errorf("DecodeAddr(stack top %#04x) = %+v", pu-1, ai)
	}
	if ai := insp.DecodeAddr(ph); ai.Task != tb || ai.Kind != "stack" {
		t.Errorf("DecodeAddr(stack base %#04x) = %+v", ph, ai)
	}
	if ai := insp.DecodeAddr(0x0040); ai.Task != nil || ai.Kind != "unmapped" || ai.Logical != 0x0040 {
		t.Errorf("DecodeAddr(io space) = %+v", ai)
	}
}

func TestInspectorStack(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	// The counter tasks spend nearly all their cycles inside the delay
	// subroutine, so most boundaries see a saved return address on the live
	// stack; probe a few landed cycles and require the walk to find it.
	found := false
	for _, c := range []uint64{100_000, 100_500, 101_000, 101_500} {
		insp, err := d.Seek(c)
		if err != nil {
			t.Fatal(err)
		}
		cur := insp.Current()
		if cur == nil {
			continue
		}
		for _, fr := range insp.Stack(0) {
			if !strings.HasPrefix(cur.Name, fr.Frame.Image+"#") || fr.Target == 0 {
				t.Fatalf("stack frame %+v does not resolve into the running task's image", fr)
			}
			if l, ok := cur.LogicalAddr(fr.Phys); !ok || l != fr.Logical {
				t.Fatalf("frame at %#04x: Logical = %#04x, task maps it to %#04x (ok=%v)",
					fr.Phys, fr.Logical, l, ok)
			}
			found = true
		}
	}
	if !found {
		t.Error("no probed boundary yielded a symbolized stack frame")
	}
}

func TestStackFramesScan(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	insp, err := d.Seek(100_000)
	if err != nil {
		t.Fatal(err)
	}
	m := insp.System().Machine()
	sym := insp.System().Kernel().Symbolizer()
	pc := insp.PC()

	// Plant a known return address (the landed PC, guaranteed in-image) in
	// scratch memory framed by zero words and verify the scan finds exactly
	// it, honoring max.
	const base = 0x0060
	for a := uint16(base); a < base+8; a++ {
		m.Poke(a, 0)
	}
	m.Poke(base+2, byte(pc>>8))
	m.Poke(base+3, byte(pc))
	frames := StackFrames(m, sym, base, base+8, 0)
	if len(frames) != 1 || frames[0].Target != pc || frames[0].Phys != base+2 {
		t.Fatalf("StackFrames = %+v, want one frame at %#04x -> %#05x", frames, base+2, pc)
	}
	if frames[0].Frame.Image == "" {
		t.Error("planted frame did not symbolize")
	}
	m.Poke(base+5, byte(pc>>8))
	m.Poke(base+6, byte(pc))
	if frames = StackFrames(m, sym, base, base+8, 1); len(frames) != 1 {
		t.Errorf("StackFrames with max=1 returned %d frames", len(frames))
	}
}

func TestSeekFirstFindsWatchpoint(t *testing.T) {
	d := ttRecord(t, Config{Checkpoints: 6, Every: 32_768})
	counterAtLeast := func(n byte) func(*Inspector) bool {
		return func(in *Inspector) bool {
			tb := taskByName(in.System(), "b")
			if tb == nil {
				return false
			}
			v, err := in.System().TaskHeapByte(tb, "n")
			return err == nil && v >= n
		}
	}

	insp, err := d.SeekFirst(counterAtLeast(60))
	if err != nil {
		t.Fatal(err)
	}

	// Linear reference: a straight checked run, stepped one boundary at a
	// time from boot until the same predicate first holds.
	ref := ttReference(t, nil, 1)
	refPred := func() bool {
		tb := taskByName(ref, "b")
		v, err := ref.TaskHeapByte(tb, "n")
		return err == nil && v >= 60
	}
	rm := ref.Machine()
	for !refPred() {
		cur := rm.Cycles()
		if err := ref.Run(cur + 1); err != nil {
			t.Fatal(err)
		}
		if rm.Cycles() == cur {
			t.Fatal("reference scan stalled before the watchpoint")
		}
	}
	if insp.Cycle() != rm.Cycles() {
		t.Errorf("SeekFirst landed on %d, linear scan says first-true is %d", insp.Cycle(), rm.Cycles())
	}
	// The landed Inspector comes from a clean Seek: identical to a straight
	// run to that cycle. (The scan reference above is no baseline — its
	// per-boundary Run calls stamp budget noise into its trace.)
	if got, want := encodeState(t, insp.System()), encodeState(t, ttReference(t, nil, insp.Cycle())); !bytes.Equal(got, want) {
		t.Error("SeekFirst landed state differs from the straight run")
	}

	if _, err := d.SeekFirst(counterAtLeast(250)); !errors.Is(err, ErrPredicate) {
		t.Errorf("impossible predicate: err = %v, want ErrPredicate", err)
	}
}

func TestFirstDivergenceRegisterFlip(t *testing.T) {
	const fireAt = 30_000
	clean, err := ttFactory()
	if err != nil {
		t.Fatal(err)
	}
	trial, err := ttFactory()
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*core.System{clean, trial} {
		if err := sys.Boot(); err != nil {
			t.Fatal(err)
		}
		sys.Machine().SetStepwise(true)
	}
	trial.Machine().SetInjector(fireAt, func(m *mcu.Machine) {
		m.SetReg(24, m.Reg(24)^0x40)
	})
	div, err := FirstDivergence(clean.Kernel(), trial.Kernel(), 20_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if !div.Diverged {
		t.Fatal("register flip reported as no divergence")
	}
	if div.Cycle < fireAt || div.Cycle > fireAt+100 {
		t.Errorf("divergence at cycle %d, want within ~100 cycles of the injection at %d", div.Cycle, fireAt)
	}
	if len(div.Regs) == 0 && div.CleanPC == div.TrialPC {
		t.Errorf("divergence carries no register delta and no PC split: %+v", div)
	}
}

func TestFirstDivergenceSilentCorruption(t *testing.T) {
	const fireAt = 30_000
	clean, err := ttFactory()
	if err != nil {
		t.Fatal(err)
	}
	trial, err := ttFactory()
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*core.System{clean, trial} {
		if err := sys.Boot(); err != nil {
			t.Fatal(err)
		}
		sys.Machine().SetStepwise(true)
	}
	// Flip the never-read pad byte next to task b's counter: pure data
	// corruption the CPU never observes.
	tb := taskByName(trial, "b")
	pl, _, _ := tb.Region()
	trial.Machine().SetInjector(fireAt, func(m *mcu.Machine) {
		m.Poke(pl+1, m.Peek(pl+1)^0xFF)
	})
	div, err := FirstDivergence(clean.Kernel(), trial.Kernel(), 20_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if div.Diverged {
		t.Fatalf("pad-byte flip diverged the trajectory: %+v", div)
	}
	if div.MemBytes != 1 || len(div.Mem) != 1 || div.Mem[0].Addr != pl+1 || div.Mem[0].Len != 1 {
		t.Errorf("memory footprint = %+v (%d bytes), want exactly the pad byte at %#04x",
			div.Mem, div.MemBytes, pl+1)
	}
}

func TestInspectorWithoutObservers(t *testing.T) {
	bare := func() (*core.System, error) {
		sys := core.NewSystem(core.WithKernelConfig(kernel.Config{InitialStack: 96}))
		prog, err := sys.CompileString("a", counterProg(50))
		if err != nil {
			return nil, err
		}
		if _, err := sys.Deploy(prog); err != nil {
			return nil, err
		}
		return sys, nil
	}
	d, err := New(bare, Config{Checkpoints: 2, Every: 16_384})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Record(80_000); err != nil {
		t.Fatal(err)
	}
	insp, err := d.Seek(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := insp.Energy(); ok {
		t.Error("Energy() ok with no meter attached")
	}
	if evs := insp.Events(3); evs != nil {
		t.Errorf("Events() = %d events with no recorder attached", len(evs))
	}
}

package timetravel

// SeekFirst finds the first cycle at which pred becomes true and returns a
// clean Seek to it. pred must be monotone over the recording (false, then
// true forever — watchpoint-hit counts, sentinel tampering, broken
// invariants all qualify) and must only read the Inspector, never run it.
//
// The search binary-searches the checkpoint ring for the first checkpoint
// where pred already holds, then replays the preceding window boundary by
// boundary in a scratch system until pred flips. The scratch replay's trace
// stream carries per-boundary budget noise, so a pred that inspects trace
// events should look at state (memory, metrics, watch hits) instead; the
// Inspector returned at the end comes from a clean Seek and has no such
// noise.
func (d *Debugger) SeekFirst(pred func(*Inspector) bool) (*Inspector, error) {
	if !d.recorded {
		return nil, ErrNotRecorded
	}
	// Binary search: first ring index whose checkpoint state satisfies pred.
	lo, hi := 0, len(d.ring)
	for lo < hi {
		mid := (lo + hi) / 2
		truth, err := d.predAt(d.ring[mid].cycle, pred)
		if err != nil {
			return nil, err
		}
		if truth {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// The flip lies in (base just before ring[lo], ring[lo].cycle] — or, when
	// pred holds at no checkpoint, in (newest base, end of recording].
	stop := d.end
	if lo < len(d.ring) {
		stop = d.ring[lo].cycle
	}
	scanStart := stop
	if scanStart > 0 {
		scanStart-- // start strictly before the first-true checkpoint
	}
	sys, base, fromRing, err := d.seekBase(scanStart, false)
	if err != nil {
		return nil, err
	}
	insp := &Inspector{sys: sys, seekTo: base, base: base, fromRing: fromRing}
	m := sys.Machine()
	for !pred(insp) {
		cur := m.Cycles()
		if cur >= d.end {
			return nil, ErrPredicate
		}
		if err := sys.Run(cur + 1); err != nil {
			return nil, err
		}
		if m.Cycles() == cur {
			// The workload ended (all tasks done or machine halted) before
			// pred ever flipped.
			return nil, ErrPredicate
		}
	}
	return d.Seek(m.Cycles())
}

// predAt evaluates pred over the checkpoint state at cycle (a ring capture
// cycle) without replaying past it.
func (d *Debugger) predAt(cycle uint64, pred func(*Inspector) bool) (bool, error) {
	sys, base, fromRing, err := d.seekBase(cycle, false)
	if err != nil {
		return false, err
	}
	return pred(&Inspector{sys: sys, seekTo: cycle, base: base, fromRing: fromRing}), nil
}

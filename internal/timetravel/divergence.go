package timetravel

import (
	"repro/internal/kernel"
	"repro/internal/mcu"
)

// RegDelta is one CPU register that differs between a clean and a trial
// replay at the divergence boundary.
type RegDelta struct {
	Reg          uint8
	Clean, Trial byte
}

// MemDelta is one contiguous span of data memory that differs between the
// two replays at the divergence boundary.
type MemDelta struct {
	Addr uint16
	Len  uint16
}

// maxMemDeltas bounds how many differing spans a Divergence enumerates; the
// total differing byte count is always exact.
const maxMemDeltas = 16

// Divergence is the outcome of lockstep-comparing a clean replay against a
// perturbed one.
type Divergence struct {
	// Diverged reports whether the two trajectories ever differed within the
	// window. When false, the deltas below still describe the final states —
	// the footprint of a perturbation that never influenced execution.
	Diverged bool
	// Cycle is the boundary clock at which the first difference was seen
	// (the trial side's clock when the clocks themselves diverged).
	Cycle            uint64
	CleanPC, TrialPC uint32
	CleanSP, TrialSP uint16
	CleanSREG        byte
	TrialSREG        byte
	CleanEnded       bool
	TrialEnded       bool
	Regs             []RegDelta
	Mem              []MemDelta
	MemBytes         int // exact count of differing data-memory bytes
}

// FirstDivergence advances two deterministic replays in lockstep, one
// instruction boundary at a time starting from cycle from, and reports the
// first boundary where their states differ: clock, PC, SP, SREG, or any CPU
// register. Both kernels must be booted and identically positioned before
// from (the perturbation under study fires at or after it). limit bounds the
// trial side's clock (0 = none). Neither kernel should have a trace recorder
// attached — the per-boundary Run calls would flood it with budget events.
func FirstDivergence(clean, trial *kernel.Kernel, from, limit uint64) (Divergence, error) {
	mc, mt := clean.M, trial.M
	if err := clean.Run(from); err != nil {
		return Divergence{}, err
	}
	if err := trial.Run(from); err != nil {
		return Divergence{}, err
	}
	for {
		if statesDiffer(mc, mt) {
			return report(mc, mt, true), nil
		}
		if limit != 0 && mt.Cycles() >= limit {
			break
		}
		ca, err := stepBoundary(clean)
		if err != nil {
			return Divergence{}, err
		}
		cb, err := stepBoundary(trial)
		if err != nil {
			return Divergence{}, err
		}
		if !ca && !cb {
			break // both replays ended in agreement
		}
		if ca != cb {
			// One side ended while the other kept running: that is the
			// divergence, at the surviving side's clock.
			return report(mc, mt, true), nil
		}
	}
	return report(mc, mt, false), nil
}

// stepBoundary advances a kernel one instruction boundary; advanced is false
// once the workload is done or the machine has halted.
func stepBoundary(k *kernel.Kernel) (advanced bool, err error) {
	m := k.M
	if k.Done() {
		return false, nil
	}
	if halted, _ := m.Halted(); halted {
		return false, nil
	}
	c := m.Cycles()
	if err := k.Run(c + 1); err != nil {
		return false, err
	}
	return m.Cycles() > c, nil
}

func statesDiffer(mc, mt *mcu.Machine) bool {
	if mc.Cycles() != mt.Cycles() || mc.PC() != mt.PC() ||
		mc.SP() != mt.SP() || mc.SREG() != mt.SREG() {
		return true
	}
	for r := uint8(0); r < 32; r++ {
		if mc.Reg(r) != mt.Reg(r) {
			return true
		}
	}
	return false
}

func report(mc, mt *mcu.Machine, diverged bool) Divergence {
	d := Divergence{
		Diverged:  diverged,
		Cycle:     mt.Cycles(),
		CleanPC:   mc.PC(),
		TrialPC:   mt.PC(),
		CleanSP:   mc.SP(),
		TrialSP:   mt.SP(),
		CleanSREG: mc.SREG(),
		TrialSREG: mt.SREG(),
	}
	halted, _ := mc.Halted()
	d.CleanEnded = halted
	halted, _ = mt.Halted()
	d.TrialEnded = halted
	for r := uint8(0); r < 32; r++ {
		if a, b := mc.Reg(r), mt.Reg(r); a != b {
			d.Regs = append(d.Regs, RegDelta{Reg: r, Clean: a, Trial: b})
		}
	}
	// Coalesce differing data-memory bytes (above the register file) into
	// spans; the span list is capped, the byte count is exact.
	var open bool
	var start uint16
	flush := func(end uint16) {
		if open && len(d.Mem) < maxMemDeltas {
			d.Mem = append(d.Mem, MemDelta{Addr: start, Len: end - start})
		}
		open = false
	}
	for a := uint16(32); a < mcu.DataSize; a++ {
		if mc.Peek(a) != mt.Peek(a) {
			d.MemBytes++
			if !open {
				open, start = true, a
			}
		} else {
			flush(a)
		}
	}
	flush(mcu.DataSize)
	return d
}

package core

import (
	"fmt"

	"repro/internal/snapshot"
)

// Snapshot captures the system's complete execution state — machine, kernel,
// and whatever observers are attached — as a snapshot.State. Capturing is
// read-only: it never perturbs the run, so a checkpointed run's remaining
// trajectory (and its trace/telemetry/profile output) is byte-identical to
// an uncheckpointed one. The program image is not captured; its hash is, and
// Restore validates it.
func (s *System) Snapshot() (*snapshot.State, error) {
	ms, err := s.machine.CaptureState()
	if err != nil {
		return nil, err
	}
	st := &snapshot.State{
		Machine: ms,
		Kernel:  s.kernel.CaptureState(),
	}
	if r := s.Trace(); r != nil {
		st.Trace = r.CaptureState()
	}
	if t := s.Telemetry(); t != nil {
		st.Telemetry = t.CaptureState()
	}
	if p := s.Profile(); p != nil {
		st.Profile = p.CaptureState()
	}
	if m := s.Energy(); m != nil {
		st.Energy = m.CaptureState()
	}
	return st, nil
}

// Restore applies a snapshot to a freshly built system in place of Boot. The
// target must be constructed the same way as the snapshot's source: the same
// options, the same observers attached, and the same programs deployed in
// the same order (the flash-image hash and task table are cross-checked).
// After Restore, Run continues the computation exactly where the snapshot
// left it. To also share the source system's flash and micro-op arrays
// copy-on-write (skipping the per-restore image copy), call AdoptImage
// first.
func (s *System) Restore(st *snapshot.State) error {
	if st == nil || st.Machine == nil || st.Kernel == nil {
		return fmt.Errorf("core: restore: snapshot is missing machine or kernel state")
	}
	switch {
	case (st.Trace != nil) != (s.Trace() != nil):
		return fmt.Errorf("core: restore: snapshot %s a trace recorder, target %s",
			hasHave(st.Trace != nil), hasHave(s.Trace() != nil))
	case (st.Telemetry != nil) != (s.Telemetry() != nil):
		return fmt.Errorf("core: restore: snapshot %s a telemetry sampler, target %s",
			hasHave(st.Telemetry != nil), hasHave(s.Telemetry() != nil))
	case (st.Profile != nil) != (s.Profile() != nil):
		return fmt.Errorf("core: restore: snapshot %s a profiler, target %s",
			hasHave(st.Profile != nil), hasHave(s.Profile() != nil))
	case (st.Energy != nil) != (s.Energy() != nil):
		return fmt.Errorf("core: restore: snapshot %s an energy meter, target %s",
			hasHave(st.Energy != nil), hasHave(s.Energy() != nil))
	}
	if err := s.kernel.RestoreState(st.Kernel); err != nil {
		return err
	}
	if err := s.machine.RestoreState(st.Machine); err != nil {
		return err
	}
	if st.Trace != nil {
		s.Trace().RestoreState(st.Trace)
	}
	if st.Telemetry != nil {
		if err := s.Telemetry().RestoreState(st.Telemetry); err != nil {
			return err
		}
	}
	if st.Profile != nil {
		if err := s.Profile().RestoreState(st.Profile); err != nil {
			return err
		}
	}
	if st.Energy != nil {
		s.Energy().RestoreState(st.Energy)
	}
	return nil
}

func hasHave(has bool) string {
	if has {
		return "has"
	}
	return "does not have"
}

// AdoptImage shares parent's flash and predecoded micro-op cache with s,
// copy-on-write (see mcu.Machine.AdoptImage). Use it before Restore when
// fanning restored systems out of one warm parent in-process; both systems
// must be quiescent when it is called.
func (s *System) AdoptImage(parent *System) {
	s.machine.AdoptImage(parent.machine)
}

// ArmCheckpoint arms a one-shot checkpoint: at the first run-loop boundary
// whose cycle clock has reached at, the system captures a snapshot and hands
// it to fn (with the capture error, if any). Arming a checkpoint never
// perturbs the run — the hook fires only at boundaries the run would reach
// anyway. fn may call ArmCheckpoint again to chain a later checkpoint, and
// may call snapshot.Encode to persist the state; it must not call Run,
// Restore, or Boot on this system.
func (s *System) ArmCheckpoint(at uint64, fn func(st *snapshot.State, err error)) {
	s.machine.SetCheckpoint(at, func(uint64) {
		fn(s.Snapshot())
	})
}

package core

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/rewriter"
)

const asmSrc = `
.data
v: .space 2
.text
main:
    ldi r16, 5
    sts v, r16
    clr r16
    sts v+1, r16
park:
    sleep
    rjmp park
`

func TestSystemWorkflow(t *testing.T) {
	sys := NewSystem(
		WithKernelConfig(kernel.Config{InitialStack: 96}),
		WithRewriterConfig(rewriter.Config{NoGrouping: true}),
	)
	prog, err := sys.CompileString("wf", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Tasks()); got != 1 {
		t.Fatalf("Tasks() = %d entries", got)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if sys.Done() {
		t.Error("parked task should not be done")
	}
	v, err := sys.TaskHeapWord(task, "v")
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("v = %d, want 5", v)
	}
	b, err := sys.TaskHeapByte(task, "v")
	if err != nil {
		t.Fatal(err)
	}
	if b != 5 {
		t.Errorf("byte v = %d, want 5", b)
	}
	if _, err := sys.TaskHeapWord(task, "ghost"); !errors.Is(err, ErrNoSymbol) {
		t.Errorf("missing symbol err = %v", err)
	}
	if sys.Machine() == nil || sys.Kernel() == nil {
		t.Error("accessors returned nil")
	}
	if got := task.StackAlloc(); got != 96 {
		t.Errorf("initial stack = %d; kernel option not applied", got)
	}
}

func TestSystemCompileCString(t *testing.T) {
	sys := NewSystem()
	prog, err := sys.CompileCString("c", `
int out;
void main() { out = 3 * 7; exit(); }
`)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !sys.Done() {
		t.Fatal("C task did not finish")
	}
	_ = task // region reclaimed at exit; value checked in package minic tests
}

func TestSystemCompileErrorsPropagate(t *testing.T) {
	sys := NewSystem()
	if _, err := sys.CompileString("bad", "main:\n frob\n"); err == nil {
		t.Error("assembler error lost")
	}
	if _, err := sys.CompileCString("bad", "void main() { y = 1; }"); err == nil {
		t.Error("compiler error lost")
	}
}

func TestSymbolOutsideHeapRejected(t *testing.T) {
	sys := NewSystem()
	// A data symbol at the very end of the heap read as a 2-byte word would
	// cross the heap bound.
	prog, err := sys.CompileString("edge", `
.data
pad: .space 1
last: .space 1
.text
main:
park:
    sleep
    rjmp park
`)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sys.Deploy(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TaskHeapWord(task, "last"); err == nil {
		t.Error("word read crossing the heap end should fail")
	}
	if _, err := sys.TaskHeapByte(task, "last"); err != nil {
		t.Errorf("byte read of the final heap cell should work: %v", err)
	}
}

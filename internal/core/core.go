// Package core orchestrates the complete SenSmart workflow of Figure 1:
// compile applications, naturalize them with the base-station rewriter,
// link them with the kernel, load the target image onto a simulated node,
// and run the tasks. It is the high-level entry point the public sensmart
// package (repository root) re-exports.
package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/avr/asm"
	"repro/internal/energy"
	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/minic"
	"repro/internal/profile"
	"repro/internal/rewriter"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Option configures a System.
type Option interface {
	apply(*options)
}

type options struct {
	kernelCfg   kernel.Config
	rewriterCfg rewriter.Config
}

type kernelCfgOption kernel.Config

func (o kernelCfgOption) apply(opts *options) { opts.kernelCfg = kernel.Config(o) }

// WithKernelConfig overrides the kernel configuration (time slice, initial
// stack, memory reservations, relocation policy).
func WithKernelConfig(cfg kernel.Config) Option { return kernelCfgOption(cfg) }

type rewriterCfgOption rewriter.Config

func (o rewriterCfgOption) apply(opts *options) { opts.rewriterCfg = rewriter.Config(o) }

// WithRewriterConfig overrides the base-station rewriter configuration
// (grouping and trampoline-merge ablation switches).
func WithRewriterConfig(cfg rewriter.Config) Option { return rewriterCfgOption(cfg) }

type traceOption struct{ r *trace.Recorder }

func (o traceOption) apply(opts *options) { opts.kernelCfg.Trace = o.r }

// WithTrace attaches a trace recorder: the kernel and machine stamp typed
// cycle events into it as the system runs. Compose with WithKernelConfig by
// passing WithTrace after it (options apply in order).
func WithTrace(r *trace.Recorder) Option { return traceOption{r} }

type profileOption struct{ p *profile.Profiler }

func (o profileOption) apply(opts *options) { opts.kernelCfg.Profile = o.p }

// WithProfile attaches a cycle-exact profiler: every simulated cycle is
// attributed to (task, symbol, PC), kernel service overhead lands on
// synthetic kernel.<service> frames, and the profiler's stack flight
// recorder and watchpoints become active. With no profiler attached the
// per-instruction hook stays nil and costs one pointer compare. Compose
// with WithKernelConfig by passing WithProfile after it (options apply in
// order).
func WithProfile(p *profile.Profiler) Option { return profileOption{p} }

type telemetryOption struct{ s *telemetry.Sampler }

func (o telemetryOption) apply(opts *options) { opts.kernelCfg.Telemetry = o.s }

type energyOption struct{ m *energy.Meter }

func (o energyOption) apply(opts *options) { opts.kernelCfg.Energy = o.m }

// WithEnergy attaches a cycle-domain energy meter: the machine's device
// transition points charge the meter's per-device ledgers (radio/UART bytes,
// ADC conversions, timer spans, sleep cycles) and Metrics/telemetry samples
// gain joules attribution. With no meter attached every charge site stays a
// nil pointer compare, none of them on the interpreter's fast loop. Compose
// with WithKernelConfig by passing WithEnergy after it (options apply in
// order).
func WithEnergy(m *energy.Meter) Option { return energyOption{m} }

// WithTelemetry attaches a cycle-domain telemetry sampler: every
// sampler-interval simulated cycles the kernel snapshots its gauges —
// per-task CPU share, stack depth and high-water, trap/relocation/preemption
// counters, heap usage, idle fraction — into the sampler's ring buffer (and
// its NDJSON stream, if one is configured). With no sampler attached the
// machine's sampling hook stays nil and costs one pointer compare per
// run-loop horizon. Compose with WithKernelConfig by passing WithTelemetry
// after it (options apply in order).
func WithTelemetry(s *telemetry.Sampler) Option { return telemetryOption{s} }

// System is one node plus its build pipeline. Typical use:
//
//	sys := core.NewSystem()
//	prog, _ := sys.CompileString("blink", src)
//	task, _ := sys.Deploy(prog)
//	_ = sys.Boot()
//	_ = sys.Run(10_000_000)
type System struct {
	opts    options
	machine *mcu.Machine
	kernel  *kernel.Kernel
	nats    map[*image.Program]*rewriter.Naturalized
	tasks   []*kernel.Task
}

// NewSystem creates a fresh node with an attached SenSmart kernel.
func NewSystem(opts ...Option) *System {
	var o options
	for _, opt := range opts {
		opt.apply(&o)
	}
	m := mcu.New()
	return &System{
		opts:    o,
		machine: m,
		kernel:  kernel.New(m, o.kernelCfg),
		nats:    make(map[*image.Program]*rewriter.Naturalized),
	}
}

// CompileString assembles AVR source into a program image (the compiler
// stage of Figure 1).
func (s *System) CompileString(name, src string) (*image.Program, error) {
	return asm.Assemble(name, src)
}

// CompileCString compiles minic (C subset) source into a program image.
func (s *System) CompileCString(name, src string) (*image.Program, error) {
	return minic.Compile(name, src)
}

// Naturalize runs the base-station rewriter on prog (cached per program).
func (s *System) Naturalize(prog *image.Program) (*rewriter.Naturalized, error) {
	if nat, ok := s.nats[prog]; ok {
		return nat, nil
	}
	nat, err := rewriter.Rewrite(prog, s.opts.rewriterCfg)
	if err != nil {
		return nil, err
	}
	s.nats[prog] = nat
	return nat, nil
}

// Deploy naturalizes prog and admits one task instance. Before Boot it
// registers the task for startup; after Boot it spawns the task immediately
// (the paper's dynamic-reprogramming service).
func (s *System) Deploy(prog *image.Program) (*kernel.Task, error) {
	nat, err := s.Naturalize(prog)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s#%d", prog.Name, len(s.tasks))
	t, err := s.kernel.AddTask(name, nat)
	if err != nil {
		return nil, err
	}
	s.tasks = append(s.tasks, t)
	return t, nil
}

// Boot initializes the kernel and all deployed tasks.
func (s *System) Boot() error { return s.kernel.Boot() }

// Run executes until all tasks exit, the machine halts, or limit cycles
// elapse (0 = no limit).
func (s *System) Run(limit uint64) error { return s.kernel.Run(limit) }

// Done reports whether every task has terminated.
func (s *System) Done() bool { return s.kernel.Done() }

// Machine exposes the simulated node.
func (s *System) Machine() *mcu.Machine { return s.machine }

// Kernel exposes the running kernel (statistics, task table).
func (s *System) Kernel() *kernel.Kernel { return s.kernel }

// Tasks returns the deployed tasks in deployment order.
func (s *System) Tasks() []*kernel.Task { return append([]*kernel.Task(nil), s.tasks...) }

// Trace returns the attached trace recorder, or nil when tracing is off.
func (s *System) Trace() *trace.Recorder { return s.kernel.Cfg.Trace }

// Metrics snapshots the kernel's per-task and per-service cycle accounting.
// It works with or without an attached recorder.
func (s *System) Metrics() *trace.Metrics { return s.kernel.Metrics() }

// WriteTrace exports the recorded events as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto). It fails when no recorder is attached.
func (s *System) WriteTrace(w io.Writer) error {
	r := s.Trace()
	if r == nil {
		return errors.New("core: no trace recorder attached; use WithTrace")
	}
	return trace.WriteChrome(w, r.Events(), trace.ChromeOptions{
		ClockHz:     mcu.ClockHz,
		ServiceName: kernel.ServiceName,
	})
}

// Telemetry returns the attached telemetry sampler, or nil when sampling is
// off.
func (s *System) Telemetry() *telemetry.Sampler { return s.kernel.Cfg.Telemetry }

// SampleTelemetry records one final reconciled telemetry sample stamped at
// the current cycle — the snapshot harnesses take after Run returns so the
// stream's last line matches Metrics. It fails when no sampler is attached.
func (s *System) SampleTelemetry() (telemetry.Sample, error) {
	smp, ok := s.kernel.SampleTelemetryNow()
	if !ok {
		return telemetry.Sample{}, errors.New("core: no telemetry sampler attached; use WithTelemetry")
	}
	return smp, nil
}

// Energy returns the attached energy meter, or nil when metering is off.
func (s *System) Energy() *energy.Meter { return s.kernel.Cfg.Energy }

// Profile returns the attached profiler, or nil when profiling is off.
func (s *System) Profile() *profile.Profiler { return s.kernel.Cfg.Profile }

// WriteProfile exports the attached profiler in the named format: "pprof"
// (gzipped profile.proto for go tool pprof), "folded" (folded stacks for
// speedscope / flamegraph.pl), or "csv" (flat per-frame table). It fails
// when no profiler is attached.
func (s *System) WriteProfile(w io.Writer, format string) error {
	p := s.Profile()
	if p == nil {
		return errors.New("core: no profiler attached; use WithProfile")
	}
	switch format {
	case "pprof":
		return p.WritePprof(w)
	case "folded":
		return p.WriteFolded(w)
	case "csv":
		return p.WriteCSV(w)
	default:
		return fmt.Errorf("core: unknown profile format %q (want pprof, folded, or csv)", format)
	}
}

// ErrNoSymbol is returned when a heap symbol lookup fails.
var ErrNoSymbol = errors.New("core: no such heap symbol")

// TaskHeapByte reads one byte of a task's heap by data-symbol name, through
// the task's logical-to-physical mapping.
func (s *System) TaskHeapByte(t *kernel.Task, symbol string) (byte, error) {
	addr, err := s.taskHeapAddr(t, symbol, 1)
	if err != nil {
		return 0, err
	}
	return s.machine.Peek(addr), nil
}

// TaskHeapWord reads a little-endian 16-bit heap variable of a task.
func (s *System) TaskHeapWord(t *kernel.Task, symbol string) (uint16, error) {
	addr, err := s.taskHeapAddr(t, symbol, 2)
	if err != nil {
		return 0, err
	}
	return uint16(s.machine.Peek(addr)) | uint16(s.machine.Peek(addr+1))<<8, nil
}

func (s *System) taskHeapAddr(t *kernel.Task, symbol string, size uint16) (uint16, error) {
	sym, ok := t.Nat.Program.Lookup(symbol)
	if !ok || sym.Kind != image.SymData {
		return 0, fmt.Errorf("%w: %q in %s", ErrNoSymbol, symbol, t.Name)
	}
	pl, ph, _ := t.Region()
	logical := uint16(sym.Addr)
	off := logical - t.Nat.Program.HeapBase
	if off+size > ph-pl {
		return 0, fmt.Errorf("core: symbol %q outside task heap", symbol)
	}
	return pl + off, nil
}

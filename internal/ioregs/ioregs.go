// Package ioregs centralizes the I/O register map of the simulated
// ATmega128L-class MCU. Addresses below 0x40 are I/O-space addresses usable
// with IN/OUT/SBI/CBI; extended registers (Timer3) live in data space and are
// reached with LDS/STS. Data-space address = I/O address + 0x20.
package ioregs

// I/O-space register addresses (IN/OUT addressing).
const (
	// CPU core.
	SREG = 0x3F
	SPH  = 0x3E
	SPL  = 0x3D

	// Timer0 (8-bit, application-visible).
	TCCR0 = 0x33 // clock select in bits 2:0 (0 = stopped)
	TCNT0 = 0x32
	TIFR  = 0x36 // bit 0: TOV0 overflow flag (write 1 to clear)
	TIMSK = 0x37 // bit 0: TOIE0 overflow interrupt enable

	// ADC (sensor channel).
	ADCL   = 0x04
	ADCH   = 0x05
	ADCSRA = 0x06 // bit 7 ADEN, bit 6 ADSC (start conversion, cleared when done)
	ADMUX  = 0x07

	// UART0 (serial/debug channel).
	UCSR0A = 0x0B // bit 5 UDRE (data register empty), bit 7 RXC
	UDR0   = 0x0C

	// Synthetic radio front end (CC1000-like byte pipe).
	RSR = 0x0E // bit 0: TX ready; bit 1: RX available
	RDR = 0x0F // write: transmit byte; read: received byte

	// GPIO port B (LEDs on MICA2).
	PORTB = 0x18
	DDRB  = 0x17
	PINB  = 0x16
)

// Extended-I/O (data-space) addresses. Timer3 is reserved by the SenSmart
// kernel as the global clock (Section IV-A); application access to these is
// intercepted by the rewriter.
const (
	TCNT3L = 0x88
	TCNT3H = 0x89
	TCCR3B = 0x8A
	ETIFR  = 0x7C
	ETIMSK = 0x7D
)

// DataSpaceOffset converts an I/O-space address to its data-space alias.
const DataSpaceOffset = 0x20

// ADC behaviour constants.
const (
	ADEN = 1 << 7
	ADSC = 1 << 6
)

// Status bits.
const (
	UDRE      = 1 << 5
	RXC       = 1 << 7
	RadioTxOK = 1 << 0
	RadioRxOK = 1 << 1
	TOV0      = 1 << 0
	TOIE0     = 1 << 0
)

// Names maps I/O-space addresses to register names for the assembler's
// predefined constants and for diagnostics.
var Names = map[string]int64{
	"SREG": SREG, "SPH": SPH, "SPL": SPL,
	"TCCR0": TCCR0, "TCNT0": TCNT0, "TIFR": TIFR, "TIMSK": TIMSK,
	"ADCL": ADCL, "ADCH": ADCH, "ADCSRA": ADCSRA, "ADMUX": ADMUX,
	"UCSR0A": UCSR0A, "UDR0": UDR0,
	"RSR": RSR, "RDR": RDR,
	"PORTB": PORTB, "DDRB": DDRB, "PINB": PINB,
	"TCNT3L": TCNT3L, "TCNT3H": TCNT3H, "TCCR3B": TCCR3B,
	"ETIFR": ETIFR, "ETIMSK": ETIMSK,
}

package minic

import (
	"testing"

	"repro/internal/progs"
)

// runC compiles src and runs it natively; results are read back through the
// generated g_<name> heap symbols.
func runC(t *testing.T, src string) *progs.NativeResult {
	t.Helper()
	prog, err := Compile(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := progs.RunNative(prog, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return &res
}

func heapInt(t *testing.T, res *progs.NativeResult, src, name string) uint16 {
	t.Helper()
	prog, err := Compile(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := progs.HeapWord(res.Machine, prog, "g_"+name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompileArithmetic(t *testing.T) {
	src := `
int a;
int b;
int c;
void main() {
    a = 2 + 3 * 4;          // precedence
    b = (100 - 58) / 2;     // division
    c = 250 % 100;          // modulo
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "a"); got != 14 {
		t.Errorf("a = %d, want 14", got)
	}
	if got := heapInt(t, res, src, "b"); got != 21 {
		t.Errorf("b = %d, want 21", got)
	}
	if got := heapInt(t, res, src, "c"); got != 50 {
		t.Errorf("c = %d, want 50", got)
	}
}

func TestCompileControlFlow(t *testing.T) {
	src := `
int evens;
int sum;
void main() {
    int i;
    for (i = 0; i < 20; i++) {
        if (i % 2 == 0) {
            evens++;
        } else {
            sum += i;
        }
    }
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "evens"); got != 10 {
		t.Errorf("evens = %d, want 10", got)
	}
	if got := heapInt(t, res, src, "sum"); got != 100 {
		t.Errorf("sum = %d, want 100 (1+3+...+19)", got)
	}
}

func TestCompileWhileBreakContinue(t *testing.T) {
	src := `
int n;
void main() {
    int i = 0;
    while (1) {
        i++;
        if (i == 3) { continue; }
        if (i > 7) { break; }
        n += i;
    }
    exit();
}
`
	res := runC(t, src)
	// 1+2+4+5+6+7 = 25 (3 skipped, loop breaks at 8).
	if got := heapInt(t, res, src, "n"); got != 25 {
		t.Errorf("n = %d, want 25", got)
	}
}

func TestCompileFunctionsAndRecursion(t *testing.T) {
	src := `
int result;
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    result = fib(13);
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "result"); got != 233 {
		t.Errorf("fib(13) = %d, want 233", got)
	}
}

func TestCompileFourArguments(t *testing.T) {
	src := `
int out;
int mix(int a, int b, int c, int d) {
    return a * 1000 + b * 100 + c * 10 + d;
}
void main() {
    out = mix(1, 2, 3, 4);
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "out"); got != 1234 {
		t.Errorf("mix = %d, want 1234", got)
	}
}

func TestCompileArraysBubbleSort(t *testing.T) {
	src := `
char data[8];
int sorted;
void main() {
    int i;
    int j;
    for (i = 0; i < 8; i++) {
        data[i] = (i * 37 + 11) % 100;
    }
    for (i = 0; i < 8; i++) {
        for (j = 0; j + 1 < 8 - i; j++) {
            if (data[j] > data[j + 1]) {
                char tmp;
                tmp = data[j];
                data[j] = data[j + 1];
                data[j + 1] = tmp;
            }
        }
    }
    sorted = 1;
    for (i = 0; i + 1 < 8; i++) {
        if (data[i] > data[i + 1]) { sorted = 0; }
    }
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "sorted"); got != 1 {
		t.Error("bubble sort left the array unsorted")
	}
	prog, _ := Compile(t.Name(), src)
	sym, ok := prog.Lookup("g_data")
	if !ok {
		t.Fatal("no g_data symbol")
	}
	prev := -1
	for i := 0; i < 8; i++ {
		v := int(res.Machine.Peek(uint16(sym.Addr) + uint16(i)))
		if v < prev {
			t.Fatalf("data[%d]=%d out of order", i, v)
		}
		prev = v
	}
}

func TestCompileIntArrays(t *testing.T) {
	src := `
int table[5];
int sum;
void main() {
    int i;
    for (i = 0; i < 5; i++) {
        table[i] = 1000 + i * 500;   // exceeds a byte: exercises 2-byte cells
    }
    for (i = 0; i < 5; i++) {
        sum += table[i];
    }
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "sum"); got != 5*1000+500*(0+1+2+3+4) {
		t.Errorf("sum = %d, want %d", got, 5*1000+500*10)
	}
}

func TestCompileGlobalsWithInit(t *testing.T) {
	src := `
int base = 1234;
char step = 7;
int out;
void main() {
    out = base + step;
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "out"); got != 1241 {
		t.Errorf("out = %d, want 1241", got)
	}
}

func TestCompileLogicalAndShifts(t *testing.T) {
	src := `
int a;
int b;
int c;
int d;
int touched;
int touch() { touched++; return 1; }
void main() {
    a = (3 < 5) && (5 < 3);     // 0
    b = (3 < 5) || touch();     // 1, short-circuit: touch not called
    c = 1 << 10;
    d = 0x8000 >> 15;
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "a"); got != 0 {
		t.Errorf("a = %d, want 0", got)
	}
	if got := heapInt(t, res, src, "b"); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
	if got := heapInt(t, res, src, "touched"); got != 0 {
		t.Errorf("touched = %d; short-circuit failed", got)
	}
	if got := heapInt(t, res, src, "c"); got != 1024 {
		t.Errorf("c = %d, want 1024", got)
	}
	if got := heapInt(t, res, src, "d"); got != 1 {
		t.Errorf("d = %d, want 1", got)
	}
}

func TestCompileCharTruncation(t *testing.T) {
	src := `
char c;
int wide;
void main() {
    c = 300;        // truncates to 44
    wide = c + 0;   // zero-extends back
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "wide"); got != 44 {
		t.Errorf("wide = %d, want 44", got)
	}
}

func TestCompileDeviceBuiltins(t *testing.T) {
	src := `
int reading;
int t;
void main() {
    reading = adc_read();
    t = timer3();
    uart_putc('h');
    uart_putc('i');
    radio_send(0x42);
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "reading"); got == 0 || got > 0x3FF {
		t.Errorf("adc reading = %d, want 1..1023", got)
	}
	if got := heapInt(t, res, src, "t"); got == 0 {
		t.Error("timer3() returned 0")
	}
	res.Machine.AddCycles(20_000)
	res.Machine.FlushDevices()
	if got := string(res.Machine.UARTOutput()); got != "hi" {
		t.Errorf("uart = %q, want %q", got, "hi")
	}
	if frames := res.Machine.RadioOutput(); len(frames) != 1 || frames[0].Byte != 0x42 {
		t.Errorf("radio frames = %+v", frames)
	}
}

func TestCompileAsmEscape(t *testing.T) {
	src := `
int x;
void main() {
    asm("ldi r24, 99");
    asm("sts g_x, r24");
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "x"); got != 99 {
		t.Errorf("x = %d, want 99", got)
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"no main", "int x;"},
		{"undefined variable", "void main() { y = 1; }"},
		{"undefined function", "void main() { frob(); }"},
		{"duplicate global", "int x; int x; void main() {}"},
		{"duplicate local", "void main() { int a; int a; }"},
		{"array without index", "char b[4]; void main() { b = 1; }"},
		{"index on scalar", "int s; void main() { s[0] = 1; }"},
		{"too many params", "void f(int a,int b,int c,int d,int e) {} void main() {}"},
		{"assign to constant", "void main() { 3 = 4; }"},
		{"break outside loop", "void main() { break; }"},
		{"bad token", "void main() { $; }"},
		{"builtin arity", "void main() { uart_putc(); }"},
		{"main with params", "void main(int x) {}"},
		{"unterminated block", "void main() {"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Compile("bad", tt.src); err == nil {
				t.Fatalf("expected a compile error for %q", tt.src)
			}
		})
	}
}

func TestCompileErrorHasLine(t *testing.T) {
	_, err := Compile("lines", "int x;\nvoid main() {\n  y = 1;\n}\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.Line != 3 {
		t.Errorf("error line = %d, want 3", ce.Line)
	}
}

// TestCompileSieve is a bigger end-to-end program: a prime sieve.
func TestCompileSieve(t *testing.T) {
	src := `
char composite[50];
int primes;
void main() {
    int i;
    int j;
    for (i = 2; i < 50; i++) {
        if (!composite[i]) {
            primes++;
            for (j = i + i; j < 50; j += i) {
                composite[j] = 1;
            }
        }
    }
    exit();
}
`
	res := runC(t, src)
	// Primes below 50: 2,3,5,7,11,13,17,19,23,29,31,37,41,43,47 = 15.
	if got := heapInt(t, res, src, "primes"); got != 15 {
		t.Errorf("primes = %d, want 15", got)
	}
}

func TestCompiledProgramSizes(t *testing.T) {
	prog := MustCompile("sz", `
int x;
void main() { x = 1; exit(); }
`)
	if prog.SizeBytes() < 20 {
		t.Errorf("suspiciously small program: %d bytes", prog.SizeBytes())
	}
	if prog.Name != "sz" {
		t.Errorf("program name = %q", prog.Name)
	}
}

func TestCompileCompoundIndexAssign(t *testing.T) {
	src := `
int arr[4];
int total;
void main() {
    int i;
    for (i = 0; i < 4; i++) {
        arr[i] = i;
        arr[i] += 10;       // compound assignment through an index
        arr[i] <<= 1;
    }
    for (i = 0; i < 4; i++) {
        total += arr[i];
    }
    exit();
}
`
	res := runC(t, src)
	// arr[i] = (i+10)*2 -> 20+22+24+26 = 92.
	if got := heapInt(t, res, src, "total"); got != 92 {
		t.Errorf("total = %d, want 92", got)
	}
}

func TestCompileNestedCallsAsArguments(t *testing.T) {
	src := `
int out;
int add(int a, int b) { return a + b; }
int twice(int x) { return x + x; }
void main() {
    out = add(twice(3), add(twice(5), 1));
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "out"); got != 17 {
		t.Errorf("out = %d, want 17", got)
	}
}

func TestCompileUnaryOperators(t *testing.T) {
	src := `
int a;
int b;
int c;
void main() {
    a = -5 + 10;        // unary minus on a constant expression
    b = ~0 & 0xff;      // complement
    c = !0 + !7;        // logical not: 1 + 0
    exit();
}
`
	res := runC(t, src)
	if got := heapInt(t, res, src, "a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := heapInt(t, res, src, "b"); got != 0xFF {
		t.Errorf("b = %d, want 255", got)
	}
	if got := heapInt(t, res, src, "c"); got != 1 {
		t.Errorf("c = %d, want 1", got)
	}
}

package minic

import "fmt"

type parser struct {
	name string
	toks []token
	pos  int
}

func parse(name, src string) (*program, error) {
	toks, err := lex(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{name: name, toks: toks}
	prog := &program{}
	for !p.atEOF() {
		if err := p.topDecl(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Name: p.name, Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the given punctuation/keyword if present.
func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) typeName() (typeKind, bool) {
	switch {
	case p.accept("char"):
		return tChar, true
	case p.accept("int"):
		return tInt, true
	case p.accept("void"):
		return tVoid, true
	}
	return tVoid, false
}

// topDecl parses one global variable or function definition.
func (p *parser) topDecl(prog *program) error {
	line := p.cur().line
	typ, ok := p.typeName()
	if !ok {
		return p.errf("expected a declaration, found %q", p.cur().text)
	}
	nameTok := p.advance()
	if nameTok.kind != tokIdent {
		return p.errf("expected a name after the type")
	}
	name := nameTok.text

	if p.accept("(") {
		return p.funcDecl(prog, typ, name, line)
	}

	// Global variable.
	if typ == tVoid {
		return p.errf("global %q cannot have type void", name)
	}
	g := &global{name: name, typ: typ, line: line}
	if p.accept("[") {
		szTok := p.advance()
		if szTok.kind != tokNumber || szTok.num <= 0 || szTok.num > 1024 {
			return p.errf("bad array length for %q", name)
		}
		g.arrayLen = int(szTok.num)
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	if p.accept("=") {
		if g.arrayLen != 0 {
			return p.errf("array initializers are not supported")
		}
		vTok := p.advance()
		neg := false
		if vTok.kind == tokPunct && vTok.text == "-" {
			neg = true
			vTok = p.advance()
		}
		if vTok.kind != tokNumber {
			return p.errf("global initializer must be a constant")
		}
		g.init = vTok.num
		if neg {
			g.init = -g.init
		}
		g.hasInit = true
	}
	prog.globals = append(prog.globals, g)
	return p.expect(";")
}

func (p *parser) funcDecl(prog *program, ret typeKind, name string, line int) error {
	fn := &function{name: name, ret: ret, line: line}
	if !p.accept(")") {
		if p.accept("void") {
			if err := p.expect(")"); err != nil {
				return err
			}
		} else {
			for {
				typ, ok := p.typeName()
				if !ok || typ == tVoid {
					return p.errf("expected a parameter type")
				}
				nameTok := p.advance()
				if nameTok.kind != tokIdent {
					return p.errf("expected a parameter name")
				}
				fn.params = append(fn.params, param{name: nameTok.text, typ: typ})
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return err
				}
			}
		}
	}
	if len(fn.params) > 4 {
		return p.errf("function %q has %d parameters; at most 4 supported", name, len(fn.params))
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fn.body = body
	prog.funcs = append(prog.funcs, fn)
	return nil
}

func (p *parser) block() (*blockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	line := p.cur().line
	switch {
	case p.cur().text == "{" && p.cur().kind == tokPunct:
		return p.block()

	case p.accept(";"):
		return &blockStmt{}, nil

	case p.cur().kind == tokKeyword && (p.cur().text == "char" || p.cur().text == "int"):
		typ, _ := p.typeName()
		nameTok := p.advance()
		if nameTok.kind != tokIdent {
			return nil, p.errf("expected a local variable name")
		}
		d := &declStmt{name: nameTok.text, typ: typ, line: line}
		if p.accept("=") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expect(";")

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: line}
		if p.accept("else") {
			alt, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.alt = alt
		}
		return s, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &forStmt{}
		if !p.accept(";") {
			init, err := p.statement() // decl or expression statement
			if err != nil {
				return nil, err
			}
			s.init = init
		}
		if !p.accept(";") {
			cond, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			post, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.post = post
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil

	case p.accept("return"):
		s := &returnStmt{line: line}
		if !p.accept(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.e = e
			return s, p.expect(";")
		}
		return s, nil

	case p.accept("break"):
		return &breakStmt{line: line}, p.expect(";")

	case p.accept("continue"):
		return &continueStmt{line: line}, p.expect(";")

	case p.accept("asm"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		t := p.advance()
		if t.kind != tokString {
			return nil, p.errf("asm() takes a string literal")
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &asmStmt{text: t.text}, p.expect(";")
	}

	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &exprStmt{e: e}, p.expect(";")
}

// Expression parsing: precedence climbing over binary operators, with
// assignment handled right-associatively at the lowest level.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression() (expr, error) { return p.assignment() }

func (p *parser) assignment() (expr, error) {
	line := p.cur().line
	lhs, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokPunct {
		return lhs, nil
	}
	var op string
	switch t.text {
	case "=", "+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>=":
		op = t.text
	default:
		return lhs, nil
	}
	switch lhs.(type) {
	case *varExpr, *indexExpr:
	default:
		return nil, p.errf("left side of %q is not assignable", op)
	}
	p.advance()
	rhs, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if op != "=" {
		// Compound assignment desugars to lhs = lhs OP rhs. The index of an
		// array target is evaluated twice; keep index expressions pure.
		rhs = &binaryExpr{op: op[:len(op)-1], l: lhs, r: rhs, line: line}
	}
	return &assignExpr{lhs: lhs, rhs: rhs, line: line}, nil
}

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "~", "!":
			p.advance()
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{op: t.text, e: e}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return e, nil
		}
		switch t.text {
		case "++", "--":
			// Desugared to (lhs = lhs ± 1); the expression's value is the
			// updated one (pre-increment semantics), which the benchmark
			// code only ever uses in statement position anyway.
			switch e.(type) {
			case *varExpr, *indexExpr:
			default:
				return nil, p.errf("%q needs an assignable operand", t.text)
			}
			p.advance()
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			e = &assignExpr{
				lhs:  e,
				rhs:  &binaryExpr{op: op, l: e, r: &numExpr{v: 1}, line: t.line},
				line: t.line,
			}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &numExpr{v: t.num}, nil
	case tokIdent:
		p.advance()
		name := t.text
		if p.accept("(") {
			call := &callExpr{name: name, line: t.line}
			if !p.accept(")") {
				for {
					a, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			if len(call.args) > 4 {
				return nil, p.errf("call to %q passes %d arguments; at most 4 supported", name, len(call.args))
			}
			return call, nil
		}
		if p.accept("[") {
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &indexExpr{name: name, idx: idx, line: t.line}, nil
		}
		return &varExpr{name: name, line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}

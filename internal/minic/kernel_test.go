package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// runUnderKernel compiles, naturalizes and runs src as a SenSmart task,
// returning the kernel and the heap snapshot taken at task exit.
func runUnderKernel(t *testing.T, src string, cfg kernel.Config) (*kernel.Kernel, []byte) {
	t.Helper()
	prog, err := Compile(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	k := kernel.New(m, cfg)
	var heap []byte
	k.Cfg.OnTaskExit = func(kk *kernel.Kernel, task *kernel.Task) {
		pl, ph, _ := task.Region()
		heap = make([]byte, ph-pl)
		for i := range heap {
			heap[i] = kk.M.Peek(pl + uint16(i))
		}
	}
	task, err := k.AddTask("c", nat)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitReason != "exited" {
		t.Fatalf("task died: %s", task.ExitReason)
	}
	return k, heap
}

// heapWordAt reads a 16-bit value from the exit snapshot by symbol.
func heapWordAt(t *testing.T, src, name string, heap []byte) uint16 {
	t.Helper()
	prog, err := Compile(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := prog.Lookup("g_" + name)
	if !ok {
		t.Fatalf("no symbol g_%s", name)
	}
	off := sym.Addr - uint32(prog.HeapBase)
	return uint16(heap[off]) | uint16(heap[off+1])<<8
}

// TestCRecursionRelocatesUnderKernel: fib written in C recurses deeply with
// avr-gcc style frames; the kernel must grow its stack transparently and
// the result must match the native run.
func TestCRecursionRelocatesUnderKernel(t *testing.T) {
	src := `
int result;
int fib(int n) {
    int a;
    int b;
    if (n < 2) { return n; }
    a = fib(n - 1);
    b = fib(n - 2);
    return a + b;
}
void main() {
    result = fib(14);
    exit();
}
`
	k, heap := runUnderKernel(t, src, kernel.Config{InitialStack: 64})
	if got := heapWordAt(t, src, "result", heap); got != 377 {
		t.Errorf("fib(14) = %d, want 377", got)
	}
	if k.Stats.Relocations == 0 {
		t.Error("deep C recursion should have forced stack relocations")
	}
	// The SP services must have been used by the generated prologues.
	if k.Stats.ServiceCalls[rewriter.ClassSPWrite] == 0 {
		t.Error("no set-SP service calls: frames were not allocated through SP rewriting")
	}
	if k.Stats.ServiceCalls[rewriter.ClassSPRead] == 0 {
		t.Error("no get-SP service calls")
	}
}

// TestCDifferentialExpressions compiles random arithmetic expression chains
// and compares the compiled result (run natively) against a Go evaluator
// with C unsigned-16-bit semantics.
func TestCDifferentialExpressions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomCExpr(r, 0)
		src := fmt.Sprintf("int out;\nvoid main() {\n    out = %s;\n    exit();\n}\n", e.src)
		prog, err := Compile("diff", src)
		if err != nil {
			t.Logf("seed %d: compile %q: %v", seed, e.src, err)
			return false
		}
		res, err := progs.RunNative(prog, 50_000_000)
		if err != nil {
			t.Logf("seed %d: run %q: %v", seed, e.src, err)
			return false
		}
		got, err := progs.HeapWord(res.Machine, prog, "g_out")
		if err != nil {
			t.Fatal(err)
		}
		if got != e.val {
			t.Logf("seed %d: %s = %d, want %d", seed, e.src, got, e.val)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// cExpr carries a generated C expression and its expected uint16 value.
type cExpr struct {
	src string
	val uint16
}

// randomCExpr builds a random expression tree with safe operands (non-zero
// divisors, shift counts < 16).
func randomCExpr(r *rand.Rand, depth int) cExpr {
	if depth > 3 || r.Intn(3) == 0 {
		v := uint16(r.Intn(0x10000))
		return cExpr{src: fmt.Sprintf("%d", v), val: v}
	}
	l := randomCExpr(r, depth+1)
	rhs := randomCExpr(r, depth+1)
	switch r.Intn(10) {
	case 0:
		return cExpr{src: paren(l, "+", rhs), val: l.val + rhs.val}
	case 1:
		return cExpr{src: paren(l, "-", rhs), val: l.val - rhs.val}
	case 2:
		return cExpr{src: paren(l, "*", rhs), val: l.val * rhs.val}
	case 3:
		d := uint16(1 + r.Intn(1000))
		dd := cExpr{src: fmt.Sprintf("%d", d), val: d}
		return cExpr{src: paren(l, "/", dd), val: l.val / d}
	case 4:
		d := uint16(1 + r.Intn(1000))
		dd := cExpr{src: fmt.Sprintf("%d", d), val: d}
		return cExpr{src: paren(l, "%", dd), val: l.val % d}
	case 5:
		return cExpr{src: paren(l, "&", rhs), val: l.val & rhs.val}
	case 6:
		return cExpr{src: paren(l, "|", rhs), val: l.val | rhs.val}
	case 7:
		return cExpr{src: paren(l, "^", rhs), val: l.val ^ rhs.val}
	case 8:
		n := uint16(r.Intn(16))
		nn := cExpr{src: fmt.Sprintf("%d", n), val: n}
		return cExpr{src: paren(l, "<<", nn), val: l.val << n}
	default:
		n := uint16(r.Intn(16))
		nn := cExpr{src: fmt.Sprintf("%d", n), val: n}
		return cExpr{src: paren(l, ">>", nn), val: l.val >> n}
	}
}

func paren(l cExpr, op string, r cExpr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s %s %s)", l.src, op, r.src)
	return b.String()
}

// TestCSenseAndSendUnderKernel is an integration scenario: a C application
// samples the sensor, smooths, thresholds and reports over the radio, all
// as a SenSmart task.
func TestCSenseAndSendUnderKernel(t *testing.T) {
	src := `
int sent;
int smooth;
void main() {
    int i;
    for (i = 0; i < 40; i++) {
        int s;
        s = adc_read();
        smooth = smooth + (s - smooth) / 4;
        if (smooth > 0x180) {
            radio_send(smooth >> 4);
            sent++;
        }
    }
    exit();
}
`
	k, heap := runUnderKernel(t, src, kernel.Config{})
	sent := heapWordAt(t, src, "sent", heap)
	if sent == 0 {
		t.Fatal("no packets sent; thresholding never fired")
	}
	k.M.AddCycles(mcu.RadioByteCycles)
	k.M.FlushDevices()
	if got := len(k.M.RadioOutput()); got != int(sent) && got != int(sent)-1 {
		t.Errorf("radio frames = %d, want %d", got, sent)
	}
}

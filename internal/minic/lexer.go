// Package minic implements a small C-subset compiler targeting the SenSmart
// AVR assembler — the "compiler" stage of the paper's Figure 1. Sensornet
// applications in the paper are written in C/nesC and compiled before the
// base-station rewriter sees them; minic closes that gap so applications can
// be authored in C instead of assembly.
//
// The language: unsigned 8-bit (`char`) and 16-bit (`int`) scalars, global
// scalars and arrays, functions with up to four parameters and local
// variables, `if`/`else`, `while`, `for`, `return`, the usual expression
// operators (assignment, arithmetic, bitwise, shifts, comparisons, logical
// short-circuit), and a handful of builtins that map to the mote devices:
// `adc_read()`, `uart_putc(c)`, `radio_send(c)`, `timer3()`, `sleep_ms?` —
// see builtins in codegen.go. Generated functions use avr-gcc style frames
// (Y frame pointer, SP rewritten through IN/OUT), so compiled code exercises
// the kernel's get/set-SP services exactly like nesC binaries do.
package minic

import "fmt"

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // operators and punctuation, in tok.text
	tokKeyword
	tokString // string literal (asm escapes only)
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"char": true, "int": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "asm": true,
}

// Error is a positioned compile error.
type Error struct {
	Name string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.Name, e.Line, e.Msg) }

type lexer struct {
	name string
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole source up front.
func lex(name, src string) ([]token, error) {
	l := &lexer{name: name, src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Name: l.name, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) at(i int) byte {
	if l.pos+i < len(l.src) {
		return l.src[l.pos+i]
	}
	return 0
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.at(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	start := l.pos
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil

	case isDigit(c):
		base := int64(10)
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			base = 16
			l.pos += 2
			start = l.pos
		} else if c == '0' && (l.at(1) == 'b' || l.at(1) == 'B') {
			base = 2
			l.pos += 2
			start = l.pos
		}
		v := int64(0)
		for l.pos < len(l.src) {
			d := digitVal(l.src[l.pos])
			if d < 0 || int64(d) >= base {
				break
			}
			v = v*base + int64(d)
			l.pos++
		}
		if l.pos == start {
			return token{}, l.errf("malformed number")
		}
		return token{kind: tokNumber, num: v, line: l.line}, nil

	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated character literal")
		}
		var v int64
		if l.src[l.pos] == '\\' {
			l.pos++
			switch l.peekByte() {
			case 'n':
				v = '\n'
			case 'r':
				v = '\r'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\':
				v = '\\'
			case '\'':
				v = '\''
			default:
				return token{}, l.errf("bad escape '\\%c'", l.peekByte())
			}
			l.pos++
		} else {
			v = int64(l.src[l.pos])
			l.pos++
		}
		if l.peekByte() != '\'' {
			return token{}, l.errf("unterminated character literal")
		}
		l.pos++
		return token{kind: tokNumber, num: v, line: l.line}, nil

	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				l.line++
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	}

	// Multi-character operators, longest first.
	for _, op := range []string{
		"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
		"+=", "-=", "*=", "&=", "|=", "^=", "++", "--",
	} {
		if len(l.src)-l.pos >= len(op) && l.src[l.pos:l.pos+len(op)] == op {
			l.pos += len(op)
			return token{kind: tokPunct, text: op, line: l.line}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ';', ',':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

package minic

import (
	"fmt"
	"strings"

	"repro/internal/avr/asm"
	"repro/internal/image"
)

// Compile translates minic source into a program image, by way of the
// SenSmart assembler. Calling convention (avr-gcc flavoured): up to four
// 16-bit arguments in r24:r25, r22:r23, r20:r21, r18:r19; result in
// r24:r25; Y (r28:r29) is the callee-saved frame pointer; locals live in a
// stack frame addressed Y+1.. and allocated by rewriting SP through IN/OUT
// — so compiled code exercises the kernel's stack services the way real
// nesC binaries do.
func Compile(name, src string) (*image.Program, error) {
	prog, err := parse(name, src)
	if err != nil {
		return nil, err
	}
	g := &codegen{
		name:    name,
		prog:    prog,
		globals: make(map[string]*global),
		funcs:   make(map[string]*function),
		used:    make(map[string]bool),
	}
	text, err := g.generate()
	if err != nil {
		return nil, err
	}
	return asm.Assemble(name, text)
}

// MustCompile is Compile for statically known-good sources.
func MustCompile(name, src string) *image.Program {
	p, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// argRegs lists the low registers of the four argument pairs.
var argRegs = [4]int{24, 22, 20, 18}

// builtins maps builtin functions to their argument counts and whether they
// produce a value.
var builtins = map[string]struct {
	args     int
	hasValue bool
}{
	"adc_read":   {0, true},
	"timer3":     {0, true},
	"uart_putc":  {1, false},
	"radio_send": {1, false},
	"sleep":      {0, false},
	"exit":       {0, false},
}

type codegen struct {
	name    string
	prog    *program
	globals map[string]*global
	funcs   map[string]*function
	b       strings.Builder
	fn      *function
	label   int
	brk     []string // break targets
	cont    []string // continue targets
	used    map[string]bool
}

func (g *codegen) errf(line int, format string, args ...any) error {
	return &Error{Name: g.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *codegen) newLabel(hint string) string {
	g.label++
	return fmt.Sprintf(".L%s%d", hint, g.label)
}

func (g *codegen) generate() (string, error) {
	// Register symbols and check for duplicates.
	for _, gl := range g.prog.globals {
		if _, dup := g.globals[gl.name]; dup {
			return "", g.errf(gl.line, "duplicate global %q", gl.name)
		}
		g.globals[gl.name] = gl
	}
	for _, fn := range g.prog.funcs {
		if _, dup := g.funcs[fn.name]; dup {
			return "", g.errf(fn.line, "duplicate function %q", fn.name)
		}
		if _, isBuiltin := builtins[fn.name]; isBuiltin {
			return "", g.errf(fn.line, "%q is a builtin and cannot be redefined", fn.name)
		}
		if _, isGlobal := g.globals[fn.name]; isGlobal {
			return "", g.errf(fn.line, "%q is already a global variable", fn.name)
		}
		g.funcs[fn.name] = fn
	}
	main, ok := g.funcs["main"]
	if !ok {
		return "", g.errf(1, "no main function")
	}
	if len(main.params) != 0 {
		return "", g.errf(main.line, "main takes no parameters")
	}

	// Data section.
	g.emit(".data")
	for _, gl := range g.prog.globals {
		size := gl.typ.size()
		switch {
		case gl.arrayLen > 0:
			g.emit("g_%s: .space %d", gl.name, gl.arrayLen*size)
		case gl.hasInit && gl.typ == tChar:
			g.emit("g_%s: .db %d", gl.name, uint8(gl.init))
		case gl.hasInit:
			g.emit("g_%s: .dw %d", gl.name, uint16(gl.init))
		default:
			g.emit("g_%s: .space %d", gl.name, size)
		}
	}
	g.emit(".text")
	g.emit(".entry __start")
	g.emit("__start:")
	g.emit("    call main")
	g.emit("    break")

	for _, fn := range g.prog.funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.emitRuntime()
	return g.b.String(), nil
}

// collectLocals assigns frame offsets to parameters and every local
// declared anywhere in the function body.
func (g *codegen) collectLocals(fn *function) error {
	fn.locals = make(map[string]*local)
	offset := 1 // Y+0 is the byte the next push would hit; locals start at Y+1
	add := func(name string, typ typeKind, line int) error {
		if _, dup := fn.locals[name]; dup {
			return g.errf(line, "duplicate local %q in %s", name, fn.name)
		}
		fn.locals[name] = &local{typ: typ, offset: offset}
		offset += typ.size()
		return nil
	}
	for _, p := range fn.params {
		if err := add(p.name, p.typ, fn.line); err != nil {
			return err
		}
	}
	var walk func(s stmt) error
	walk = func(s stmt) error {
		switch st := s.(type) {
		case *declStmt:
			return add(st.name, st.typ, st.line)
		case *blockStmt:
			for _, inner := range st.stmts {
				if err := walk(inner); err != nil {
					return err
				}
			}
		case *ifStmt:
			if err := walk(st.then); err != nil {
				return err
			}
			if st.alt != nil {
				return walk(st.alt)
			}
		case *whileStmt:
			return walk(st.body)
		case *forStmt:
			if st.init != nil {
				if err := walk(st.init); err != nil {
					return err
				}
			}
			return walk(st.body)
		}
		return nil
	}
	if err := walk(fn.body); err != nil {
		return err
	}
	fn.frame = offset - 1
	if fn.frame > 62 {
		return g.errf(fn.line, "frame of %s is %d bytes; at most 62 supported", fn.name, fn.frame)
	}
	return nil
}

func (g *codegen) genFunc(fn *function) error {
	if err := g.collectLocals(fn); err != nil {
		return err
	}
	g.fn = fn
	g.emit("%s:", fn.name)
	g.emit("    push r28")
	g.emit("    push r29")
	g.emit("    in r28, SPL")
	g.emit("    in r29, SPH")
	if fn.frame > 0 {
		g.emit("    sbiw r28, %d", fn.frame)
		g.emit("    out SPH, r29")
		g.emit("    out SPL, r28")
	}
	// Spill incoming arguments into their frame slots.
	for i, p := range fn.params {
		lo := argRegs[i]
		l := fn.locals[p.name]
		g.emit("    std Y+%d, r%d", l.offset, lo)
		if p.typ == tInt {
			g.emit("    std Y+%d, r%d", l.offset+1, lo+1)
		}
	}
	ret := fmt.Sprintf(".Lret_%s", fn.name)
	if err := g.genStmt(fn.body, ret); err != nil {
		return err
	}
	g.emit("%s:", ret)
	if fn.frame > 0 {
		g.emit("    adiw r28, %d", fn.frame)
		g.emit("    out SPH, r29")
		g.emit("    out SPL, r28")
	}
	g.emit("    pop r29")
	g.emit("    pop r28")
	g.emit("    ret")
	return nil
}

func (g *codegen) genStmt(s stmt, ret string) error {
	switch st := s.(type) {
	case *blockStmt:
		for _, inner := range st.stmts {
			if err := g.genStmt(inner, ret); err != nil {
				return err
			}
		}
	case *declStmt:
		if st.init == nil {
			return nil
		}
		if err := g.genExpr(st.init); err != nil {
			return err
		}
		g.storeVar(st.name)
	case *exprStmt:
		return g.genExpr(st.e)
	case *ifStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if err := g.genCondBranch(st.cond, elseL); err != nil {
			return err
		}
		if err := g.genStmt(st.then, ret); err != nil {
			return err
		}
		if st.alt != nil {
			g.emit("    rjmp %s", endL)
		}
		g.emit("%s:", elseL)
		if st.alt != nil {
			if err := g.genStmt(st.alt, ret); err != nil {
				return err
			}
			g.emit("%s:", endL)
		}
	case *whileStmt:
		condL := g.newLabel("while")
		endL := g.newLabel("wend")
		g.brk = append(g.brk, endL)
		g.cont = append(g.cont, condL)
		g.emit("%s:", condL)
		if err := g.genCondBranch(st.cond, endL); err != nil {
			return err
		}
		if err := g.genStmt(st.body, ret); err != nil {
			return err
		}
		g.emit("    rjmp %s", condL)
		g.emit("%s:", endL)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
	case *forStmt:
		condL := g.newLabel("for")
		postL := g.newLabel("fpost")
		endL := g.newLabel("fend")
		if st.init != nil {
			if err := g.genStmt(st.init, ret); err != nil {
				return err
			}
		}
		g.brk = append(g.brk, endL)
		g.cont = append(g.cont, postL)
		g.emit("%s:", condL)
		if st.cond != nil {
			if err := g.genCondBranch(st.cond, endL); err != nil {
				return err
			}
		}
		if err := g.genStmt(st.body, ret); err != nil {
			return err
		}
		g.emit("%s:", postL)
		if st.post != nil {
			if err := g.genExpr(st.post); err != nil {
				return err
			}
		}
		g.emit("    rjmp %s", condL)
		g.emit("%s:", endL)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
	case *returnStmt:
		if st.e != nil {
			if err := g.genExpr(st.e); err != nil {
				return err
			}
		}
		g.emit("    rjmp %s", ret)
	case *breakStmt:
		if len(g.brk) == 0 {
			return g.errf(st.line, "break outside a loop")
		}
		g.emit("    rjmp %s", g.brk[len(g.brk)-1])
	case *continueStmt:
		if len(g.cont) == 0 {
			return g.errf(st.line, "continue outside a loop")
		}
		g.emit("    rjmp %s", g.cont[len(g.cont)-1])
	case *asmStmt:
		g.emit("    %s", st.text)
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
	return nil
}

// genCondBranch evaluates cond and branches to falseL when it is zero.
func (g *codegen) genCondBranch(cond expr, falseL string) error {
	if err := g.genExpr(cond); err != nil {
		return err
	}
	trueL := g.newLabel("t")
	g.emit("    or r24, r25")
	g.emit("    brne %s", trueL)
	g.emit("    rjmp %s", falseL)
	g.emit("%s:", trueL)
	return nil
}

// genExpr leaves the 16-bit value of e in r24:r25.
func (g *codegen) genExpr(e expr) error {
	switch ex := e.(type) {
	case *numExpr:
		g.emit("    ldi r24, %d", uint16(ex.v)&0xFF)
		g.emit("    ldi r25, %d", uint16(ex.v)>>8)
	case *varExpr:
		return g.loadVar(ex.name, ex.line)
	case *indexExpr:
		gl, err := g.arrayOf(ex.name, ex.line)
		if err != nil {
			return err
		}
		if err := g.genIndexAddr(gl, ex.idx); err != nil {
			return err
		}
		g.emit("    movw r26, r24")
		if gl.typ == tChar {
			g.emit("    ld r24, X")
			g.emit("    ldi r25, 0")
		} else {
			g.emit("    ld r24, X+")
			g.emit("    ld r25, X")
		}
	case *assignExpr:
		return g.genAssign(ex)
	case *binaryExpr:
		return g.genBinary(ex)
	case *unaryExpr:
		if err := g.genExpr(ex.e); err != nil {
			return err
		}
		switch ex.op {
		case "-":
			g.emit("    com r24")
			g.emit("    com r25")
			g.emit("    adiw r24, 1")
		case "~":
			g.emit("    com r24")
			g.emit("    com r25")
		case "!":
			zl := g.newLabel("nz")
			g.emit("    or r24, r25")
			g.emit("    ldi r24, 0")
			g.emit("    ldi r25, 0")
			g.emit("    brne %s", zl)
			g.emit("    ldi r24, 1")
			g.emit("%s:", zl)
		}
	case *callExpr:
		return g.genCall(ex)
	default:
		return fmt.Errorf("minic: unknown expression %T", e)
	}
	return nil
}

// genIndexAddr leaves the element's data address in r24:r25.
func (g *codegen) genIndexAddr(gl *global, idx expr) error {
	if err := g.genExpr(idx); err != nil {
		return err
	}
	if gl.typ == tInt {
		g.emit("    lsl r24")
		g.emit("    rol r25")
	}
	g.emit("    subi r24, lo8(-(g_%s))", gl.name)
	g.emit("    sbci r25, hi8(-(g_%s))", gl.name)
	return nil
}

func (g *codegen) arrayOf(name string, line int) (*global, error) {
	gl, ok := g.globals[name]
	if !ok {
		return nil, g.errf(line, "no array %q", name)
	}
	if gl.arrayLen == 0 {
		return nil, g.errf(line, "%q is not an array", name)
	}
	return gl, nil
}

func (g *codegen) genAssign(ex *assignExpr) error {
	switch lhs := ex.lhs.(type) {
	case *varExpr:
		if err := g.genExpr(ex.rhs); err != nil {
			return err
		}
		if !g.storeVar(lhs.name) {
			return g.errf(lhs.line, "no variable %q", lhs.name)
		}
	case *indexExpr:
		gl, err := g.arrayOf(lhs.name, lhs.line)
		if err != nil {
			return err
		}
		if err := g.genIndexAddr(gl, lhs.idx); err != nil {
			return err
		}
		g.emit("    push r24")
		g.emit("    push r25")
		if err := g.genExpr(ex.rhs); err != nil {
			return err
		}
		g.emit("    pop r27")
		g.emit("    pop r26")
		if gl.typ == tChar {
			g.emit("    st X, r24")
		} else {
			g.emit("    st X+, r24")
			g.emit("    st X, r25")
		}
	default:
		return g.errf(ex.line, "left side is not assignable")
	}
	return nil
}

// loadVar loads a local or global scalar, zero-extending char.
func (g *codegen) loadVar(name string, line int) error {
	if g.fn != nil {
		if l, ok := g.fn.locals[name]; ok {
			g.emit("    ldd r24, Y+%d", l.offset)
			if l.typ == tInt {
				g.emit("    ldd r25, Y+%d", l.offset+1)
			} else {
				g.emit("    ldi r25, 0")
			}
			return nil
		}
	}
	if gl, ok := g.globals[name]; ok {
		if gl.arrayLen != 0 {
			return g.errf(line, "array %q needs an index", name)
		}
		g.emit("    lds r24, g_%s", name)
		if gl.typ == tInt {
			g.emit("    lds r25, g_%s+1", name)
		} else {
			g.emit("    ldi r25, 0")
		}
		return nil
	}
	return g.errf(line, "no variable %q", name)
}

// storeVar stores r24(:r25) into a scalar; reports whether the name exists.
func (g *codegen) storeVar(name string) bool {
	if g.fn != nil {
		if l, ok := g.fn.locals[name]; ok {
			g.emit("    std Y+%d, r24", l.offset)
			if l.typ == tInt {
				g.emit("    std Y+%d, r25", l.offset+1)
			}
			return true
		}
	}
	if gl, ok := g.globals[name]; ok && gl.arrayLen == 0 {
		g.emit("    sts g_%s, r24", name)
		if gl.typ == tInt {
			g.emit("    sts g_%s+1, r25", name)
		}
		return true
	}
	return false
}

func (g *codegen) genBinary(ex *binaryExpr) error {
	// Short-circuit logical operators.
	if ex.op == "&&" || ex.op == "||" {
		falseL := g.newLabel("scf")
		trueL := g.newLabel("sct")
		endL := g.newLabel("sce")
		if err := g.genExpr(ex.l); err != nil {
			return err
		}
		g.emit("    or r24, r25")
		if ex.op == "&&" {
			g.emit("    breq %s", falseL)
		} else {
			g.emit("    brne %s", trueL)
		}
		if err := g.genExpr(ex.r); err != nil {
			return err
		}
		g.emit("    or r24, r25")
		g.emit("    breq %s", falseL)
		g.emit("%s:", trueL)
		g.emit("    ldi r24, 1")
		g.emit("    ldi r25, 0")
		g.emit("    rjmp %s", endL)
		g.emit("%s:", falseL)
		g.emit("    ldi r24, 0")
		g.emit("    ldi r25, 0")
		g.emit("%s:", endL)
		return nil
	}

	// Evaluate left, stash on the stack, evaluate right into r22:r23.
	if err := g.genExpr(ex.l); err != nil {
		return err
	}
	g.emit("    push r24")
	g.emit("    push r25")
	if err := g.genExpr(ex.r); err != nil {
		return err
	}
	g.emit("    movw r22, r24")
	g.emit("    pop r25")
	g.emit("    pop r24")

	switch ex.op {
	case "+":
		g.emit("    add r24, r22")
		g.emit("    adc r25, r23")
	case "-":
		g.emit("    sub r24, r22")
		g.emit("    sbc r25, r23")
	case "&":
		g.emit("    and r24, r22")
		g.emit("    and r25, r23")
	case "|":
		g.emit("    or r24, r22")
		g.emit("    or r25, r23")
	case "^":
		g.emit("    eor r24, r22")
		g.emit("    eor r25, r23")
	case "*":
		g.used["__mul16"] = true
		g.emit("    call __mul16")
	case "/":
		g.used["__udiv16"] = true
		g.emit("    call __udiv16")
	case "%":
		g.used["__udiv16"] = true
		g.emit("    call __udiv16")
		g.emit("    movw r24, r20")
	case "<<":
		g.used["__shl16"] = true
		g.emit("    call __shl16")
	case ">>":
		g.used["__shr16"] = true
		g.emit("    call __shr16")
	case "==", "!=", "<", "<=", ">", ">=":
		g.genCompare(ex.op)
	default:
		return g.errf(ex.line, "unsupported operator %q", ex.op)
	}
	return nil
}

// genCompare turns the comparison of r24:r25 (L) with r22:r23 (R) into a
// 0/1 value. All comparisons are unsigned.
func (g *codegen) genCompare(op string) {
	trueL := g.newLabel("cmpt")
	endL := g.newLabel("cmpe")
	switch op {
	case ">", "<=":
		// Compare R - L.
		g.emit("    cp r22, r24")
		g.emit("    cpc r23, r25")
	default:
		g.emit("    cp r24, r22")
		g.emit("    cpc r25, r23")
	}
	switch op {
	case "==":
		g.emit("    breq %s", trueL)
	case "!=":
		g.emit("    brne %s", trueL)
	case "<", ">":
		g.emit("    brlo %s", trueL)
	case ">=", "<=":
		g.emit("    brsh %s", trueL)
	}
	g.emit("    ldi r24, 0")
	g.emit("    ldi r25, 0")
	g.emit("    rjmp %s", endL)
	g.emit("%s:", trueL)
	g.emit("    ldi r24, 1")
	g.emit("    ldi r25, 0")
	g.emit("%s:", endL)
}

func (g *codegen) genCall(ex *callExpr) error {
	if b, ok := builtins[ex.name]; ok {
		if len(ex.args) != b.args {
			return g.errf(ex.line, "%s takes %d argument(s), got %d", ex.name, b.args, len(ex.args))
		}
		if b.args == 1 {
			if err := g.genExpr(ex.args[0]); err != nil {
				return err
			}
		}
		g.genBuiltin(ex.name)
		return nil
	}
	fn, ok := g.funcs[ex.name]
	if !ok {
		return g.errf(ex.line, "no function %q", ex.name)
	}
	if len(ex.args) != len(fn.params) {
		return g.errf(ex.line, "%s takes %d argument(s), got %d", ex.name, len(fn.params), len(ex.args))
	}
	// Evaluate arguments left to right onto the stack, then pop them into
	// the argument registers (right to left keeps the pop order simple).
	for _, a := range ex.args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.emit("    push r24")
		g.emit("    push r25")
	}
	for i := len(ex.args) - 1; i >= 0; i-- {
		lo := argRegs[i]
		g.emit("    pop r%d", lo+1)
		g.emit("    pop r%d", lo)
	}
	g.emit("    call %s", ex.name)
	return nil
}

// genBuiltin inlines the device builtins. r18 is free scratch here.
func (g *codegen) genBuiltin(name string) {
	switch name {
	case "adc_read":
		w := g.newLabel("adc")
		g.emit("    ldi r18, 0xC0")
		g.emit("    out ADCSRA, r18")
		g.emit("%s:", w)
		g.emit("    in r18, ADCSRA")
		g.emit("    sbrc r18, 6")
		g.emit("    rjmp %s", w)
		g.emit("    in r24, ADCL")
		g.emit("    in r25, ADCH")
	case "uart_putc":
		w := g.newLabel("uart")
		g.emit("%s:", w)
		g.emit("    in r18, UCSR0A")
		g.emit("    sbrs r18, 5")
		g.emit("    rjmp %s", w)
		g.emit("    out UDR0, r24")
	case "radio_send":
		w := g.newLabel("rad")
		g.emit("%s:", w)
		g.emit("    in r18, RSR")
		g.emit("    sbrs r18, 0")
		g.emit("    rjmp %s", w)
		g.emit("    out RDR, r24")
	case "timer3":
		g.emit("    lds r24, TCNT3L")
		g.emit("    lds r25, TCNT3H")
	case "sleep":
		g.emit("    sleep")
	case "exit":
		g.emit("    break")
	}
}

// emitRuntime appends the arithmetic helper routines the program used.
func (g *codegen) emitRuntime() {
	if g.used["__mul16"] {
		// r24:r25 x r22:r23 -> r24:r25 (low 16 bits), schoolbook via MUL.
		g.emit("__mul16:")
		g.emit("    mul r24, r22")
		g.emit("    movw r18, r0")
		g.emit("    mul r24, r23")
		g.emit("    add r19, r0")
		g.emit("    mul r25, r22")
		g.emit("    add r19, r0")
		g.emit("    movw r24, r18")
		g.emit("    ret")
	}
	if g.used["__udiv16"] {
		// r24:r25 / r22:r23 -> quotient r24:r25, remainder r20:r21
		// (16-step restoring division; division by zero yields 0xFFFF).
		g.emit("__udiv16:")
		g.emit("    clr r20")
		g.emit("    clr r21")
		g.emit("    ldi r18, 16")
		g.emit("__udl:")
		g.emit("    lsl r24")
		g.emit("    rol r25")
		g.emit("    rol r20")
		g.emit("    rol r21")
		g.emit("    cp r20, r22")
		g.emit("    cpc r21, r23")
		g.emit("    brlo __uds")
		g.emit("    sub r20, r22")
		g.emit("    sbc r21, r23")
		g.emit("    ori r24, 1")
		g.emit("__uds:")
		g.emit("    dec r18")
		g.emit("    brne __udl")
		g.emit("    ret")
	}
	if g.used["__shl16"] {
		g.emit("__shl16:")
		g.emit("__sll:")
		g.emit("    tst r22")
		g.emit("    breq __sle")
		g.emit("    lsl r24")
		g.emit("    rol r25")
		g.emit("    dec r22")
		g.emit("    rjmp __sll")
		g.emit("__sle:")
		g.emit("    ret")
	}
	if g.used["__shr16"] {
		g.emit("__shr16:")
		g.emit("__srl:")
		g.emit("    tst r22")
		g.emit("    breq __sre")
		g.emit("    lsr r25")
		g.emit("    ror r24")
		g.emit("    dec r22")
		g.emit("    rjmp __srl")
		g.emit("__sre:")
		g.emit("    ret")
	}
}

package minic

// typeKind is the (deliberately small) type system: unsigned 8- and 16-bit
// integers, plus void for functions.
type typeKind uint8

const (
	tVoid typeKind = iota
	tChar          // unsigned 8-bit
	tInt           // unsigned 16-bit
)

func (t typeKind) size() int {
	switch t {
	case tChar:
		return 1
	case tInt:
		return 2
	}
	return 0
}

func (t typeKind) String() string {
	switch t {
	case tChar:
		return "char"
	case tInt:
		return "int"
	}
	return "void"
}

// program is the parsed translation unit.
type program struct {
	globals []*global
	funcs   []*function
}

type global struct {
	name     string
	typ      typeKind
	arrayLen int // 0 = scalar
	init     int64
	hasInit  bool
	line     int
}

type function struct {
	name   string
	ret    typeKind
	params []param
	body   *blockStmt
	line   int

	// Resolved during codegen.
	locals map[string]*local
	frame  int
}

type param struct {
	name string
	typ  typeKind
}

type local struct {
	typ    typeKind
	offset int // Y+offset of the first byte
}

// Statements.
type stmt interface{ stmtNode() }

type declStmt struct {
	name string
	typ  typeKind
	init expr // may be nil
	line int
}

type exprStmt struct{ e expr }

type ifStmt struct {
	cond      expr
	then, alt stmt // alt may be nil
	line      int
}

type whileStmt struct {
	cond expr
	body stmt
}

type forStmt struct {
	init stmt // may be nil (declStmt or exprStmt)
	cond expr // may be nil (infinite)
	post expr // may be nil
	body stmt
}

type returnStmt struct {
	e    expr // may be nil
	line int
}

type blockStmt struct{ stmts []stmt }

type breakStmt struct{ line int }

type continueStmt struct{ line int }

type asmStmt struct{ text string }

func (*declStmt) stmtNode()     {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*blockStmt) stmtNode()    {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*asmStmt) stmtNode()      {}

// Expressions.
type expr interface{ exprNode() }

type numExpr struct{ v int64 }

type varExpr struct {
	name string
	line int
}

type indexExpr struct {
	name string
	idx  expr
	line int
}

type assignExpr struct {
	lhs  expr // *varExpr or *indexExpr
	rhs  expr
	line int
}

type binaryExpr struct {
	op   string
	l, r expr
	line int
}

type unaryExpr struct {
	op string
	e  expr
}

type callExpr struct {
	name string
	args []expr
	line int
}

func (*numExpr) exprNode()    {}
func (*varExpr) exprNode()    {}
func (*indexExpr) exprNode()  {}
func (*assignExpr) exprNode() {}
func (*binaryExpr) exprNode() {}
func (*unaryExpr) exprNode()  {}
func (*callExpr) exprNode()   {}

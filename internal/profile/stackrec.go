package profile

import (
	"fmt"
	"io"
)

// StackSample is one flight-recorder reading of a task's stack pointer.
type StackSample struct {
	// Cycle is the simulated cycle at the sample.
	Cycle uint64
	// SP is the physical stack pointer.
	SP uint16
	// Used is the stack depth in bytes relative to the task's region top.
	Used uint32
}

// RelocMark is one stack-relocation event on a task's timeline.
type RelocMark struct {
	// Cycle is the simulated cycle after the relocation charge.
	Cycle uint64
	// PC is the instruction site whose stack access triggered the growth.
	PC uint32
	// Granted is the bytes of new stack space granted.
	Granted uint64
	// Cycles is the relocation cost charged.
	Cycles uint64
}

// sampleStack records one SP reading into the task's ring buffer and tracks
// the high-water mark. An SP at or above the region top reads as depth 0.
func (p *Profiler) sampleStack(t *taskProf, sp uint16) {
	var used uint32
	if t.pu != 0 && sp < t.pu {
		used = uint32(t.pu) - 1 - uint32(sp)
	}
	if used > t.peak {
		t.peak = used
	}
	t.samples++
	s := StackSample{Cycle: p.now, SP: sp, Used: used}
	if len(t.ring) < p.o.StackRing {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.ringPos] = s
	t.ringPos = (t.ringPos + 1) % p.o.StackRing
	t.wrapped = true
}

// StackTimeline returns task id's retained samples in chronological order,
// its relocation marks, and the sampled high-water mark. The sample slice is
// freshly allocated; relocs is the profiler's backing store.
func (p *Profiler) StackTimeline(id int32) (samples []StackSample, relocs []RelocMark, peak uint32) {
	t, ok := p.tasks[id]
	if !ok {
		return nil, nil, 0
	}
	if t.wrapped {
		samples = make([]StackSample, 0, len(t.ring))
		samples = append(samples, t.ring[t.ringPos:]...)
		samples = append(samples, t.ring[:t.ringPos]...)
	} else {
		samples = append(samples, t.ring...)
	}
	return samples, t.relocs, t.peak
}

// WriteStackTimeline renders the flight recorder as CSV: one header, then
// per task (registration order) its relocation marks and retained samples.
// Depth readings reproduce the paper's stack-dynamics story — growth bursts,
// relocation points, and the high-water mark each benchmark reaches.
func (p *Profiler) WriteStackTimeline(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,task,cycle,sp,used,granted,cost"); err != nil {
		return err
	}
	for _, id := range p.order {
		t := p.tasks[id]
		if t.samples == 0 && len(t.relocs) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "peak,%s,0,0,%d,0,0\n", t.name, t.peak); err != nil {
			return err
		}
		for _, r := range t.relocs {
			if _, err := fmt.Fprintf(w, "reloc,%s,%d,0,0,%d,%d\n", t.name, r.Cycle, r.Granted, r.Cycles); err != nil {
				return err
			}
		}
		samples, _, _ := p.StackTimeline(id)
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "sample,%s,%d,%#x,%d,0,0\n", t.name, s.Cycle, s.SP, s.Used); err != nil {
				return err
			}
		}
	}
	return nil
}

package profile

import "testing"

func TestParseWatch(t *testing.T) {
	cases := []struct {
		in   string
		want Watchpoint
	}{
		{"0x100", Watchpoint{Addr: 0x100, Len: 1, Read: true, Write: true}},
		{"256", Watchpoint{Addr: 256, Len: 1, Read: true, Write: true}},
		{"0x100:2", Watchpoint{Addr: 0x100, Len: 2, Read: true, Write: true}},
		{"0x100:2:r", Watchpoint{Addr: 0x100, Len: 2, Read: true}},
		{"0x100:2:w", Watchpoint{Addr: 0x100, Len: 2, Write: true}},
		{"0x100:2:rw", Watchpoint{Addr: 0x100, Len: 2, Read: true, Write: true}},
		{"0x100:2:wr", Watchpoint{Addr: 0x100, Len: 2, Read: true, Write: true}},
		{"0x100:w", Watchpoint{Addr: 0x100, Len: 1, Write: true}}, // len omitted
		{"0xffff:1", Watchpoint{Addr: 0xffff, Len: 1, Read: true, Write: true}},
	}
	for _, c := range cases {
		got, err := ParseWatch(c.in)
		if err != nil {
			t.Errorf("ParseWatch(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseWatch(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	for _, bad := range []string{
		"", "zz", "0x10000", "0x100:0", "0xffff:2", "0x100:2:x", "0x100:2:rw:extra",
	} {
		if wp, err := ParseWatch(bad); err == nil {
			t.Errorf("ParseWatch(%q) = %+v, want error", bad, wp)
		}
	}
}

func TestWatchpointStringRoundTrip(t *testing.T) {
	for _, in := range []string{"0x100:2:rw", "0x100:1:r", "0x120:4:w"} {
		wp, err := ParseWatch(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseWatch(wp.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", wp.String(), err)
		}
		if back != wp {
			t.Errorf("%q -> %+v -> %q -> %+v", in, wp, wp.String(), back)
		}
	}
}

func TestWatching(t *testing.T) {
	p := New(Options{})
	p.AddWatch(Watchpoint{Addr: 0x100, Len: 2, Write: true})
	p.AddWatch(Watchpoint{Addr: 0x200, Read: true}) // Len 0 normalizes to 1

	if len(p.Watches()) != 2 {
		t.Fatalf("Watches() = %v", p.Watches())
	}
	cases := []struct {
		addr  uint16
		write bool
		want  bool
	}{
		{0x100, true, true},
		{0x101, true, true},
		{0x102, true, false},  // past the range
		{0x100, false, false}, // write-only watch ignores reads
		{0x200, false, true},
		{0x200, true, false},
		{0x0ff, true, false},
	}
	for _, c := range cases {
		if got := p.Watching(c.addr, c.write); got != c.want {
			t.Errorf("Watching(%#x, write=%v) = %v, want %v", c.addr, c.write, got, c.want)
		}
	}
}

// Package profile is the cycle-exact symbol profiler of the SenSmart
// reproduction. A per-instruction MCU hook attributes every simulated cycle
// to (task, symbol, PC) by resolving the program counter against each
// naturalized image's symbol table, while kernel call sites attribute the
// Table II service overheads to synthetic kernel.<service> frames. The
// resulting profile exports as pprof protobuf (go tool pprof), folded-stack
// text (speedscope / FlameGraph), and a CSV flat table.
//
// The package follows the trace.Recorder discipline: every emission site in
// the MCU and kernel is one nil pointer comparison when profiling is
// disabled, so the hooks cost nothing unless a Profiler is attached.
//
// On top of cycle attribution the Profiler carries a stack-depth flight
// recorder (periodic SP samples per task into a ring buffer, plus the
// relocation timeline) and a watchpoint engine that raises trace events when
// a watched logical data address is touched.
package profile

import (
	"sort"

	"repro/internal/rewriter"
	"repro/internal/trace"
)

// flashWords mirrors the MCU flash size (word-addressed); PC attribution
// masks into this range so a corrupt PC cannot index out of bounds.
const flashWords = 1 << 16

// MachineTask is the pseudo task id owning cycles spent outside any kernel
// task: native-mode execution, pre-boot code, and idle time.
const MachineTask int32 = -1

// Options tunes a Profiler.
type Options struct {
	// ClockHz converts cycles to wall time in the pprof export. 0 selects
	// the MICA2 clock (7.3728 MHz); the kernel overrides it at bind time.
	ClockHz uint64
	// StackInterval samples each task's SP every StackInterval cycles into
	// the flight-recorder ring. 0 disables stack sampling.
	StackInterval uint64
	// StackRing caps retained samples per task (ring buffer; oldest samples
	// are overwritten). 0 selects 4096.
	StackRing int
	// WatchLimit caps retained watchpoint hits. 0 selects 65536; further
	// hits are counted, not retained.
	WatchLimit int
}

// taskProf accumulates one task's cycle attribution and stack timeline.
type taskProf struct {
	id   int32
	name string
	// pl, ph, pu mirror the task's physical region so stack samples can
	// translate SP into a depth. pu == 0 means no region (machine task).
	pl, ph, pu uint16

	pcs   []uint64   // cycles per flash word address
	svc   [16]uint64 // kernel service overhead per rewriter.Class
	reloc uint64     // stack-relocation cycles charged in this task's window
	intr  uint64     // interrupt-delivery cycles landing in this task's window

	nextSample uint64
	ring       []StackSample
	ringPos    int
	wrapped    bool
	samples    uint64
	peak       uint32
	relocs     []RelocMark
}

// Profiler attributes simulated cycles to (task, symbol) buckets. It is not
// safe for concurrent use; each simulated system owns one.
type Profiler struct {
	o   Options
	sym *Symbolizer
	rec *trace.Recorder

	tasks map[int32]*taskProf
	order []int32 // registration order, machine task first
	cur   *taskProf
	now   uint64 // mirror of the machine cycle counter

	idle       uint64 // cycles outside any run window with no runnable task
	switches   uint64 // context-switch cycles (kernel-global)
	compaction uint64 // region-compaction cycles after task exits
	boot       uint64 // system-initialization cycles

	watches     []Watchpoint
	hits        []WatchHit
	droppedHits uint64
}

// New returns a Profiler ready to attach via kernel Config.Profile (or
// core.WithProfile). The machine pseudo task exists from the start so
// native-mode and pre-boot cycles are never lost.
func New(o Options) *Profiler {
	if o.StackRing == 0 {
		o.StackRing = 4096
	}
	if o.WatchLimit == 0 {
		o.WatchLimit = 65536
	}
	p := &Profiler{o: o, tasks: make(map[int32]*taskProf)}
	p.register(MachineTask, "machine", 0, 0, 0)
	p.cur = p.tasks[MachineTask]
	return p
}

// Bind attaches the symbolizer, trace recorder, and clock the kernel wires
// in. The symbolizer pointer is captured before images load; it may be
// populated afterwards.
func (p *Profiler) Bind(sym *Symbolizer, rec *trace.Recorder, clockHz uint64) {
	p.sym = sym
	p.rec = rec
	if p.o.ClockHz == 0 {
		p.o.ClockHz = clockHz
	}
}

// Symbolizer returns the bound symbolizer (nil-safe to resolve against).
func (p *Profiler) Symbolizer() *Symbolizer { return p.sym }

func (p *Profiler) register(id int32, name string, pl, ph, pu uint16) *taskProf {
	t := &taskProf{id: id, name: name, pl: pl, ph: ph, pu: pu, pcs: make([]uint64, flashWords)}
	if p.o.StackInterval != 0 {
		t.ring = make([]StackSample, 0, p.o.StackRing)
		t.nextSample = p.now
	}
	p.tasks[id] = t
	p.order = append(p.order, id)
	return t
}

// RegisterTask declares a kernel task and its physical region [pl,pu).
func (p *Profiler) RegisterTask(id int32, name string, pl, ph, pu uint16) {
	p.register(id, name, pl, ph, pu)
}

// SetContext switches cycle attribution to task id (the kernel calls it on
// every context restore). Unknown ids attribute to the machine task.
func (p *Profiler) SetContext(id int32, pl, ph, pu uint16) {
	t := p.task(id)
	if t.id == id && pu != 0 {
		t.pl, t.ph, t.pu = pl, ph, pu
	}
	p.cur = t
}

// UpdateRegion records a region move (stack relocation / compaction shuffle)
// so stack-depth samples keep translating correctly.
func (p *Profiler) UpdateRegion(id int32, pl, ph, pu uint16) {
	if t, ok := p.tasks[id]; ok {
		t.pl, t.ph, t.pu = pl, ph, pu
	}
}

func (p *Profiler) task(id int32) *taskProf {
	if t, ok := p.tasks[id]; ok {
		return t
	}
	return p.tasks[MachineTask]
}

// OnInstr attributes one executed instruction: pc is the flash word address
// fetched, sp the stack pointer after execution, cycles the clock delta the
// instruction consumed. This is the hot path — the MCU calls it once per
// instruction when profiling is enabled.
func (p *Profiler) OnInstr(pc uint32, sp uint16, cycles uint64) {
	p.now += cycles
	t := p.cur
	t.pcs[pc&(flashWords-1)] += cycles
	if p.o.StackInterval != 0 && p.now >= t.nextSample {
		p.sampleStack(t, sp)
		t.nextSample = p.now + p.o.StackInterval
	}
}

// OnService attributes one KTRAP service: overhead cycles go to the task's
// kernel.<class> frame, the remainder of charged (the emulated instruction's
// own base cost) to the application symbol at pc. charged is the cycle
// amount the kernel advanced the clock by — the 1-cycle KTRAP fetch is
// attributed separately by OnInstr.
func (p *Profiler) OnService(task int32, class rewriter.Class, pc uint32, overhead, charged uint64) {
	p.now += charged
	t := p.task(task)
	t.svc[uint8(class)&15] += overhead
	i := pc & (flashWords - 1)
	if charged >= overhead {
		t.pcs[i] += charged - overhead
	} else {
		// Overhead can exceed the in-window charge by exactly the KTRAP
		// fetch cycle (an indirect-mem run faulting before its first
		// access); OnInstr booked that cycle to the symbol at this pc, so
		// reclaim it to keep the per-class ledgers equal.
		t.pcs[i] -= overhead - charged
	}
}

// OnAppExtra attributes extra application-side cycles (e.g. the taken-branch
// penalty the branch service re-applies) to the symbol at pc.
func (p *Profiler) OnAppExtra(task int32, pc uint32, n uint64) {
	p.now += n
	p.task(task).pcs[pc&(flashWords-1)] += n
}

// OnReloc attributes a stack-relocation charge to the task whose access
// triggered the growth, and records it on the stack timeline.
func (p *Profiler) OnReloc(task int32, pc uint32, granted, cycles uint64) {
	p.now += cycles
	t := p.task(task)
	t.reloc += cycles
	t.relocs = append(t.relocs, RelocMark{Cycle: p.now, PC: pc, Granted: granted, Cycles: cycles})
}

// OnInterrupt attributes interrupt-delivery cycles to the task whose run
// window they land in.
func (p *Profiler) OnInterrupt(n uint64) {
	p.now += n
	p.cur.intr += n
}

// OnSwitch books context-switch cycles (kernel-global, outside run windows).
func (p *Profiler) OnSwitch(n uint64) { p.now += n; p.switches += n }

// OnCompact books region-compaction cycles after a task exit.
func (p *Profiler) OnCompact(n uint64) { p.now += n; p.compaction += n }

// OnBoot books the system-initialization charge.
func (p *Profiler) OnBoot(n uint64) { p.now += n; p.boot += n }

// OnIdle books idle cycles (no runnable task).
func (p *Profiler) OnIdle(n uint64) { p.now += n; p.idle += n }

// TotalCycles returns the cycles attributed so far — equal to the machine
// clock when every advance site is hooked.
func (p *Profiler) TotalCycles() uint64 { return p.now }

// TaskTotal returns every cycle attributed to task id: application symbols,
// kernel service overhead, relocation, and in-window interrupt delivery.
// This is the quantity the identity test compares against the kernel
// ledger's per-task RunCycles.
func (p *Profiler) TaskTotal(id int32) uint64 {
	t, ok := p.tasks[id]
	if !ok {
		return 0
	}
	total := t.reloc + t.intr
	for _, c := range t.pcs {
		total += c
	}
	for _, c := range t.svc {
		total += c
	}
	return total
}

// TaskServiceOverhead returns task id's kernel overhead per service class.
func (p *Profiler) TaskServiceOverhead(id int32) [16]uint64 {
	if t, ok := p.tasks[id]; ok {
		return t.svc
	}
	return [16]uint64{}
}

// ServiceOverhead sums a service class's overhead across all tasks — the
// quantity matching the kernel's Stats.ServiceOverhead ledger.
func (p *Profiler) ServiceOverhead(class rewriter.Class) uint64 {
	var total uint64
	for _, t := range p.tasks {
		total += t.svc[uint8(class)&15]
	}
	return total
}

// Global bucket accessors, matching the kernel ledger's aggregate rows.
func (p *Profiler) BootCycles() uint64       { return p.boot }
func (p *Profiler) SwitchCycles() uint64     { return p.switches }
func (p *Profiler) CompactionCycles() uint64 { return p.compaction }
func (p *Profiler) IdleCycles() uint64       { return p.idle }

// RelocCycles sums in-window relocation charges across tasks.
func (p *Profiler) RelocCycles() uint64 {
	var total uint64
	for _, t := range p.tasks {
		total += t.reloc
	}
	return total
}

// FlatSample is one (task, frame) row of the flattened profile.
type FlatSample struct {
	// Task is the owning task's display name ("machine" and "kernel" are
	// the pseudo roots for unattributed and kernel-global cycles).
	Task string
	// Frame is the leaf name: an "image.symbol" application frame, a
	// synthetic "kernel.<service>" / "kernel.reloc" / "kernel.switch" /
	// "kernel.boot" / "kernel.compact" frame, "machine.interrupt", or
	// "idle".
	Frame string
	// PC is a representative flash word address for application frames
	// (the lowest hot address inside the symbol), 0 for synthetic frames.
	PC uint32
	// Cycles is the total attributed to this (task, frame) pair.
	Cycles uint64
}

// Flatten renders the profile as a deterministic flat table: tasks in
// registration order (machine first), application frames by descending
// cycles (name-ordered on ties), then the synthetic kernel frames, then the
// kernel-global pseudo task. Zero rows are omitted.
func (p *Profiler) Flatten() []FlatSample {
	var out []FlatSample
	for _, id := range p.order {
		t := p.tasks[id]
		out = append(out, p.flattenTask(t)...)
	}
	kernelRows := []FlatSample{
		{Task: "kernel", Frame: "kernel.boot", Cycles: p.boot},
		{Task: "kernel", Frame: "kernel.switch", Cycles: p.switches},
		{Task: "kernel", Frame: "kernel.compact", Cycles: p.compaction},
		{Task: "machine", Frame: "idle", Cycles: p.idle},
	}
	for _, r := range kernelRows {
		if r.Cycles > 0 {
			out = append(out, r)
		}
	}
	return out
}

func (p *Profiler) flattenTask(t *taskProf) []FlatSample {
	type agg struct {
		cycles uint64
		pc     uint32
	}
	byFrame := make(map[string]*agg)
	var names []string
	for pc, c := range t.pcs {
		if c == 0 {
			continue
		}
		name := p.sym.Resolve(uint32(pc)).Name()
		a, ok := byFrame[name]
		if !ok {
			a = &agg{pc: uint32(pc)}
			byFrame[name] = a
			names = append(names, name)
		}
		a.cycles += c
	}
	rows := make([]FlatSample, 0, len(names)+4)
	for _, name := range names {
		a := byFrame[name]
		rows = append(rows, FlatSample{Task: t.name, Frame: name, PC: a.pc, Cycles: a.cycles})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Frame < rows[j].Frame
	})
	for class, c := range t.svc {
		if c > 0 {
			rows = append(rows, FlatSample{
				Task: t.name, Frame: "kernel." + rewriter.Class(class).String(), Cycles: c,
			})
		}
	}
	if t.reloc > 0 {
		rows = append(rows, FlatSample{Task: t.name, Frame: "kernel.reloc", Cycles: t.reloc})
	}
	if t.intr > 0 {
		rows = append(rows, FlatSample{Task: t.name, Frame: "machine.interrupt", Cycles: t.intr})
	}
	return rows
}

// TopEntry is one row of the cross-task hot-symbol ranking.
type TopEntry struct {
	Frame   string
	Cycles  uint64
	Percent float64
}

// Top aggregates the flat profile across tasks and returns the n hottest
// frames (all frames when n <= 0).
func (p *Profiler) Top(n int) []TopEntry {
	byFrame := make(map[string]uint64)
	var names []string
	for _, s := range p.Flatten() {
		if _, ok := byFrame[s.Frame]; !ok {
			names = append(names, s.Frame)
		}
		byFrame[s.Frame] += s.Cycles
	}
	sort.Slice(names, func(i, j int) bool {
		if byFrame[names[i]] != byFrame[names[j]] {
			return byFrame[names[i]] > byFrame[names[j]]
		}
		return names[i] < names[j]
	})
	if n > 0 && len(names) > n {
		names = names[:n]
	}
	total := p.now
	out := make([]TopEntry, 0, len(names))
	for _, name := range names {
		e := TopEntry{Frame: name, Cycles: byFrame[name]}
		if total > 0 {
			e.Percent = float64(e.Cycles) / float64(total) * 100
		}
		out = append(out, e)
	}
	return out
}

// taskIDs returns all registered task ids in registration order.
func (p *Profiler) taskIDs() []int32 {
	ids := make([]int32, len(p.order))
	copy(ids, p.order)
	return ids
}

// TaskName resolves a registered task id to its display name.
func (p *Profiler) TaskName(id int32) string {
	if t, ok := p.tasks[id]; ok {
		return t.name
	}
	return "machine"
}

package profile

import (
	"compress/gzip"
	"io"
)

// pbuf builds protobuf wire format: varints and length-delimited fields are
// the only wire types profile.proto uses.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// uintField emits a varint-typed field (wire type 0).
func (p *pbuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.varint(uint64(field)<<3 | 0)
	p.varint(v)
}

// bytesField emits a length-delimited field (wire type 2).
func (p *pbuf) bytesField(field int, b []byte) {
	p.varint(uint64(field)<<3 | 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packedField emits repeated varints as one packed length-delimited field.
func (p *pbuf) packedField(field int, vs []uint64) {
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// strtab interns strings into the profile string table (index 0 = "").
type strtab struct {
	idx  map[string]uint64
	list []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]uint64{"": 0}, list: []string{""}}
}

func (s *strtab) id(str string) uint64 {
	if i, ok := s.idx[str]; ok {
		return i
	}
	i := uint64(len(s.list))
	s.idx[str] = i
	s.list = append(s.list, str)
	return i
}

// profile.proto field numbers (github.com/google/pprof/proto/profile.proto).
const (
	profSampleType    = 1
	profSample        = 2
	profLocation      = 4
	profFunction      = 5
	profStringTable   = 6
	profDurationNanos = 10
	profPeriodType    = 11
	profPeriod        = 12

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	locID      = 1
	locAddress = 3
	locLine    = 4

	lineFunctionID = 1

	funcID   = 1
	funcName = 2
)

// WritePprof exports the profile as gzipped pprof protobuf, loadable by
// `go tool pprof <file>`. Each flat row becomes a two-frame stack — the
// symbol (or synthetic kernel frame) as the leaf under its task root — so
// `-top` ranks symbols while the flame-graph view groups by task. The
// encoding is hand-rolled against the profile.proto wire format (varints and
// length-delimited messages only) and is deterministic byte-for-byte: no
// timestamps, insertion-ordered tables, and a zeroed gzip header.
func (p *Profiler) WritePprof(w io.Writer) error {
	clock := p.o.ClockHz
	if clock == 0 {
		clock = 7372800
	}
	st := newStrtab()
	var out pbuf

	valueType := func(typ, unit string) []byte {
		var b pbuf
		b.uintField(vtType, st.id(typ))
		b.uintField(vtUnit, st.id(unit))
		return b.b
	}
	out.bytesField(profSampleType, valueType("cycles", "count"))

	// Functions and locations are interned in Flatten order, so ids are
	// deterministic. A frame name maps to one function; a (function,
	// address) pair maps to one location.
	type locKey struct {
		fn   uint64
		addr uint64
	}
	funcIDs := map[string]uint64{}
	var funcs []struct {
		id   uint64
		name uint64
	}
	locIDs := map[locKey]uint64{}
	var locs []struct {
		id   uint64
		addr uint64
		fn   uint64
	}
	intern := func(frame string, addr uint64) uint64 {
		fn, ok := funcIDs[frame]
		if !ok {
			fn = uint64(len(funcs) + 1)
			funcIDs[frame] = fn
			funcs = append(funcs, struct {
				id   uint64
				name uint64
			}{fn, st.id(frame)})
		}
		key := locKey{fn, addr}
		loc, ok := locIDs[key]
		if !ok {
			loc = uint64(len(locs) + 1)
			locIDs[key] = loc
			locs = append(locs, struct {
				id   uint64
				addr uint64
				fn   uint64
			}{loc, addr, fn})
		}
		return loc
	}

	for _, row := range p.Flatten() {
		// AVR flash is word-addressed; export byte addresses like a linker
		// map would.
		leaf := intern(row.Frame, uint64(row.PC)*2)
		root := intern(row.Task, 0)
		var sample pbuf
		sample.packedField(sampleLocationID, []uint64{leaf, root})
		sample.packedField(sampleValue, []uint64{row.Cycles})
		out.bytesField(profSample, sample.b)
	}
	for _, l := range locs {
		var lb pbuf
		lb.uintField(locID, l.id)
		lb.uintField(locAddress, l.addr)
		var line pbuf
		line.uintField(lineFunctionID, l.fn)
		lb.bytesField(locLine, line.b)
		out.bytesField(profLocation, lb.b)
	}
	for _, f := range funcs {
		var fb pbuf
		fb.uintField(funcID, f.id)
		fb.uintField(funcName, f.name)
		out.bytesField(profFunction, fb.b)
	}
	for _, s := range st.list {
		out.bytesField(profStringTable, []byte(s))
	}
	// duration = now/clock seconds; split the multiply so multi-billion
	// cycle runs cannot overflow uint64.
	durNanos := p.now/clock*1e9 + p.now%clock*1e9/clock
	out.uintField(profDurationNanos, durNanos)
	out.bytesField(profPeriodType, valueType("cycles", "count"))
	out.uintField(profPeriod, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}

package profile

import (
	"fmt"
	"io"
)

// WriteFolded exports the profile as folded-stack text — one
// "task;frame cycles" line per flat row — the format speedscope and
// Brendan Gregg's flamegraph.pl consume directly.
func (p *Profiler) WriteFolded(w io.Writer) error {
	for _, row := range p.Flatten() {
		if _, err := fmt.Fprintf(w, "%s;%s %d\n", row.Task, row.Frame, row.Cycles); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the flat profile as CSV with per-row cycle share.
func (p *Profiler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,frame,pc,cycles,percent"); err != nil {
		return err
	}
	total := p.now
	for _, row := range p.Flatten() {
		pct := 0.0
		if total > 0 {
			pct = float64(row.Cycles) / float64(total) * 100
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%#x,%d,%.4f\n", row.Task, row.Frame, row.PC, row.Cycles, pct); err != nil {
			return err
		}
	}
	return nil
}

package profile

import (
	"bytes"
	"strings"
	"testing"
)

func TestStackSamplingAndPeak(t *testing.T) {
	p := New(Options{StackInterval: 10, StackRing: 8})
	p.RegisterTask(1, "app#0", 0x100, 0x110, 0x150)
	p.SetContext(1, 0x100, 0x110, 0x150)

	// Each OnInstr advances 10 cycles, so every instruction samples.
	sps := []uint16{0x14f, 0x140, 0x130, 0x14f}
	for _, sp := range sps {
		p.OnInstr(0, sp, 10)
	}
	samples, relocs, peak := p.StackTimeline(1)
	if len(samples) != len(sps) {
		t.Fatalf("samples = %d, want %d", len(samples), len(sps))
	}
	// pu-1 - sp: 0x14f -> 0, 0x140 -> 15, 0x130 -> 31.
	if samples[0].Used != 0 || samples[1].Used != 15 || samples[2].Used != 31 {
		t.Errorf("depths = %d,%d,%d", samples[0].Used, samples[1].Used, samples[2].Used)
	}
	if peak != 31 {
		t.Errorf("peak = %d, want 31", peak)
	}
	if len(relocs) != 0 {
		t.Errorf("unexpected relocs: %v", relocs)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatalf("samples out of order at %d: %v", i, samples)
		}
	}
}

func TestStackRingWrapsChronologically(t *testing.T) {
	p := New(Options{StackInterval: 1, StackRing: 4})
	p.RegisterTask(1, "app#0", 0x100, 0x110, 0x150)
	p.SetContext(1, 0x100, 0x110, 0x150)

	for i := 0; i < 10; i++ {
		p.OnInstr(0, uint16(0x14f-i), 1)
	}
	samples, _, peak := p.StackTimeline(1)
	if len(samples) != 4 {
		t.Fatalf("retained = %d, want ring size 4", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatalf("wrapped ring out of order: %+v", samples)
		}
	}
	if samples[len(samples)-1].Cycle != p.TotalCycles() {
		t.Errorf("last sample at %d, clock at %d", samples[len(samples)-1].Cycle, p.TotalCycles())
	}
	// The peak survives even though early deep samples were overwritten.
	if peak != 9 {
		t.Errorf("peak = %d, want 9", peak)
	}
}

func TestSPAboveRegionReadsAsZeroDepth(t *testing.T) {
	p := New(Options{StackInterval: 1, StackRing: 4})
	p.RegisterTask(1, "app#0", 0x100, 0x110, 0x150)
	p.SetContext(1, 0x100, 0x110, 0x150)
	p.OnInstr(0, 0x150, 1) // SP at region top: empty stack
	samples, _, peak := p.StackTimeline(1)
	if len(samples) != 1 || samples[0].Used != 0 || peak != 0 {
		t.Errorf("samples = %+v, peak = %d", samples, peak)
	}
}

func TestStackTimelineUnknownTask(t *testing.T) {
	p := New(Options{})
	samples, relocs, peak := p.StackTimeline(42)
	if samples != nil || relocs != nil || peak != 0 {
		t.Errorf("unknown task: %v %v %d", samples, relocs, peak)
	}
}

func TestWriteStackTimeline(t *testing.T) {
	p := New(Options{StackInterval: 10, StackRing: 8})
	p.RegisterTask(1, "app#0", 0x100, 0x110, 0x150)
	p.RegisterTask(2, "quiet", 0x150, 0x160, 0x1a0) // never runs: no rows
	p.SetContext(1, 0x100, 0x110, 0x150)
	p.OnInstr(0, 0x140, 10)
	p.OnReloc(1, 4, 64, 30)

	var buf bytes.Buffer
	if err := p.WriteStackTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "kind,task,cycle,sp,used,granted,cost" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "peak,app#0,0,0,15,0,0") {
		t.Errorf("missing peak row:\n%s", out)
	}
	if !strings.Contains(out, "reloc,app#0,40,0,0,64,30") {
		t.Errorf("missing reloc row:\n%s", out)
	}
	if !strings.Contains(out, "sample,app#0,10,0x140,15,0,0") {
		t.Errorf("missing sample row:\n%s", out)
	}
	if strings.Contains(out, "quiet") {
		t.Errorf("idle task should be omitted:\n%s", out)
	}
}

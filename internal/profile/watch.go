package profile

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Watchpoint describes a watched logical data-address range.
type Watchpoint struct {
	// Addr is the first watched logical address.
	Addr uint16
	// Len is the range length in bytes (>= 1).
	Len uint16
	// Read / Write select which access kinds fire.
	Read, Write bool
}

// String renders the watchpoint in the -watch flag syntax.
func (w Watchpoint) String() string {
	mode := "rw"
	switch {
	case w.Read && !w.Write:
		mode = "r"
	case w.Write && !w.Read:
		mode = "w"
	}
	return fmt.Sprintf("%#x:%d:%s", w.Addr, w.Len, mode)
}

// ParseWatch parses the -watch flag syntax addr[:len][:r|w|rw]. addr and len
// accept 0x-prefixed hex or decimal; len defaults to 1 and mode to rw.
func ParseWatch(s string) (Watchpoint, error) {
	parts := strings.Split(s, ":")
	if len(parts) == 0 || len(parts) > 3 || parts[0] == "" {
		return Watchpoint{}, fmt.Errorf("watch %q: want addr[:len][:r|w|rw]", s)
	}
	addr, err := strconv.ParseUint(parts[0], 0, 16)
	if err != nil {
		return Watchpoint{}, fmt.Errorf("watch %q: bad address: %v", s, err)
	}
	wp := Watchpoint{Addr: uint16(addr), Len: 1, Read: true, Write: true}
	rest := parts[1:]
	if len(rest) > 0 {
		// The middle component is optional: "addr:w" is valid.
		if n, err := strconv.ParseUint(rest[0], 0, 16); err == nil {
			if n == 0 || n > 0x10000-addr {
				return Watchpoint{}, fmt.Errorf("watch %q: length %d out of range", s, n)
			}
			wp.Len = uint16(n)
			rest = rest[1:]
		}
	}
	if len(rest) > 1 {
		return Watchpoint{}, fmt.Errorf("watch %q: want addr[:len][:r|w|rw]", s)
	}
	if len(rest) == 1 {
		switch rest[0] {
		case "r":
			wp.Write = false
		case "w":
			wp.Read = false
		case "rw", "wr":
		default:
			return Watchpoint{}, fmt.Errorf("watch %q: bad mode %q (want r, w, or rw)", s, rest[0])
		}
	}
	return wp, nil
}

// WatchHit records one watched access.
type WatchHit struct {
	// Cycle is the simulated cycle of the access.
	Cycle uint64
	// Task is the accessing task, or -1.
	Task int32
	// PC is the flash word address of the accessing instruction.
	PC uint32
	// Addr is the logical address touched.
	Addr uint16
	// Write is true for a store, false for a load.
	Write bool
}

// AddWatch arms a watchpoint.
func (p *Profiler) AddWatch(wp Watchpoint) {
	if wp.Len == 0 {
		wp.Len = 1
	}
	p.watches = append(p.watches, wp)
}

// Watches returns the armed watchpoints.
func (p *Profiler) Watches() []Watchpoint { return p.watches }

// Watching reports whether any armed watchpoint covers (addr, access kind).
// Call sites gate on len(Watches()) != 0 or on the profiler pointer itself,
// so the common no-watchpoint path stays a nil compare.
func (p *Profiler) Watching(addr uint16, write bool) bool {
	for _, w := range p.watches {
		if addr >= w.Addr && uint32(addr) < uint32(w.Addr)+uint32(w.Len) {
			if (write && w.Write) || (!write && w.Read) {
				return true
			}
		}
	}
	return false
}

// Watch records a hit and raises a KindWatch trace event carrying the task,
// PC, and symbolized site. cycle is passed explicitly because kernel
// services report hits mid-charge, before the profiler's own clock mirror
// catches up.
func (p *Profiler) Watch(cycle uint64, task int32, pc uint32, addr uint16, write bool) {
	if len(p.hits) < p.o.WatchLimit {
		p.hits = append(p.hits, WatchHit{Cycle: cycle, Task: task, PC: pc, Addr: addr, Write: write})
	} else {
		p.droppedHits++
	}
	if p.rec != nil {
		var w uint64
		if write {
			w = 1
		}
		p.rec.Emit(trace.Event{
			Cycle: cycle, Kind: trace.KindWatch, Task: task,
			Arg: uint64(addr), Arg2: w, PC: pc, Detail: p.sym.Name(pc),
		})
	}
}

// WatchHits returns the retained hits in occurrence order.
func (p *Profiler) WatchHits() []WatchHit { return p.hits }

// DroppedWatchHits returns how many hits the WatchLimit discarded.
func (p *Profiler) DroppedWatchHits() uint64 { return p.droppedHits }

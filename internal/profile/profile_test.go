package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"repro/internal/rewriter"
	"repro/internal/trace"
)

// newTestProfiler builds a profiler bound to a two-symbol image and one
// registered task, mimicking the kernel's wiring.
func newTestProfiler(o Options) *Profiler {
	p := New(o)
	sym := NewSymbolizer()
	sym.AddImage("app", 0, fakeProgram("app"), 10, 4)
	p.Bind(sym, nil, 7_372_800)
	p.RegisterTask(1, "app#0", 0x100, 0x110, 0x150)
	p.SetContext(1, 0x100, 0x110, 0x150)
	return p
}

func TestAttributionBuckets(t *testing.T) {
	p := newTestProfiler(Options{})

	p.OnBoot(100)
	p.OnInstr(0, 0x14f, 2)                             // app.main
	p.OnInstr(4, 0x14f, 1)                             // app.helper: the KTRAP fetch
	p.OnService(1, rewriter.ClassDirectMem, 4, 10, 12) // 10 overhead + 2 app at pc 4
	p.OnAppExtra(1, 0, 1)                              // taken-branch extra on main
	p.OnReloc(1, 4, 64, 30)
	p.OnInterrupt(4)
	p.OnSwitch(50)
	p.OnCompact(20)
	p.OnIdle(5)

	if got, want := p.TotalCycles(), uint64(100+2+1+12+1+30+4+50+20+5); got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}
	// Task total: pcs (2 main + 1 fetch + 2 emulated + 1 extra) + svc 10 +
	// reloc 30 + intr 4.
	if got, want := p.TaskTotal(1), uint64(6+10+30+4); got != want {
		t.Errorf("TaskTotal = %d, want %d", got, want)
	}
	if got := p.ServiceOverhead(rewriter.ClassDirectMem); got != 10 {
		t.Errorf("ServiceOverhead = %d, want 10", got)
	}
	if svc := p.TaskServiceOverhead(1); svc[uint8(rewriter.ClassDirectMem)] != 10 {
		t.Errorf("TaskServiceOverhead = %v", svc)
	}
	if p.BootCycles() != 100 || p.SwitchCycles() != 50 ||
		p.CompactionCycles() != 20 || p.IdleCycles() != 5 || p.RelocCycles() != 30 {
		t.Errorf("global buckets: boot=%d switch=%d compact=%d idle=%d reloc=%d",
			p.BootCycles(), p.SwitchCycles(), p.CompactionCycles(), p.IdleCycles(), p.RelocCycles())
	}
	if p.TaskName(1) != "app#0" || p.TaskName(99) != "machine" {
		t.Errorf("TaskName: %q / %q", p.TaskName(1), p.TaskName(99))
	}
}

// TestServiceReclaimsFetchCycle pins the fault-before-first-access edge: the
// kernel reports overhead 1 with nothing charged in-window, because the
// already-spent KTRAP fetch cycle (booked by OnInstr to the app symbol)
// counts as service overhead. OnService must move that cycle, not duplicate
// it.
func TestServiceReclaimsFetchCycle(t *testing.T) {
	p := newTestProfiler(Options{})
	p.OnInstr(4, 0x14f, 1)                             // KTRAP fetch at app.helper
	p.OnService(1, rewriter.ClassIndirectMem, 4, 1, 0) // faulted before first access

	if got := p.TaskTotal(1); got != 1 {
		t.Fatalf("TaskTotal = %d, want 1 (the single fetch cycle)", got)
	}
	if got := p.ServiceOverhead(rewriter.ClassIndirectMem); got != 1 {
		t.Fatalf("overhead = %d, want 1", got)
	}
	// The app bucket must be empty: the cycle now lives in the service frame.
	for _, s := range p.Flatten() {
		if s.Task == "app#0" && !strings.HasPrefix(s.Frame, "kernel.") && s.Cycles != 0 {
			t.Errorf("app frame %q retains %d cycles", s.Frame, s.Cycles)
		}
	}
}

func TestUnknownTaskFallsBackToMachine(t *testing.T) {
	p := New(Options{})
	p.OnService(7, rewriter.ClassBranch, 0, 3, 3)
	p.OnAppExtra(7, 0, 2)
	if got := p.TaskTotal(MachineTask); got != 5 {
		t.Errorf("machine task total = %d, want 5", got)
	}
}

func TestFlattenOrderingAndTop(t *testing.T) {
	p := newTestProfiler(Options{})
	p.OnInstr(0, 0, 5) // app.main
	p.OnInstr(4, 0, 9) // app.helper — hotter, must sort first
	p.OnService(1, rewriter.ClassBranch, 0, 7, 7)
	p.OnBoot(11)
	p.OnIdle(3)

	rows := p.Flatten()
	var got []string
	for _, r := range rows {
		got = append(got, r.Task+";"+r.Frame)
	}
	want := []string{
		"app#0;app.helper",
		"app#0;app.main",
		"app#0;kernel.branch",
		"kernel;kernel.boot",
		"machine;idle",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Flatten order = %v, want %v", got, want)
	}

	top := p.Top(2)
	if len(top) != 2 || top[0].Frame != "kernel.boot" || top[1].Frame != "app.helper" {
		t.Fatalf("Top(2) = %+v", top)
	}
	if top[0].Percent <= 0 || top[0].Percent > 100 {
		t.Errorf("Percent = %v", top[0].Percent)
	}
	if all := p.Top(0); len(all) != 5 {
		t.Errorf("Top(0) returned %d frames, want 5", len(all))
	}
}

func TestWriteFoldedAndCSV(t *testing.T) {
	p := newTestProfiler(Options{})
	p.OnInstr(0, 0, 5)
	p.OnService(1, rewriter.ClassBranch, 0, 7, 7)

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	wantFolded := "app#0;app.main 5\napp#0;kernel.branch 7\n"
	if folded.String() != wantFolded {
		t.Errorf("folded = %q, want %q", folded.String(), wantFolded)
	}

	var csv bytes.Buffer
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "task,frame,pc,cycles,percent" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "app#0,app.main,0x0,5,") {
		t.Errorf("csv rows = %q", lines[1:])
	}
}

func TestWritePprofDeterministicAndDecodable(t *testing.T) {
	run := func() []byte {
		p := newTestProfiler(Options{})
		p.OnInstr(0, 0, 5)
		p.OnInstr(4, 0, 3)
		p.OnService(1, rewriter.ClassBranch, 0, 7, 7)
		p.OnBoot(11)
		var buf bytes.Buffer
		if err := p.WritePprof(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical profiles serialized differently")
	}
	zr, err := gzip.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gzip stream truncated: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile body")
	}
	// The uncompressed proto must carry the symbol names in its string table.
	for _, name := range []string{"app.main", "app.helper", "kernel.branch", "kernel.boot", "cycles"} {
		if !bytes.Contains(raw, []byte(name)) {
			t.Errorf("profile proto missing string %q", name)
		}
	}
}

// TestWatchEventEmission checks the trace coupling: a hit raises a KindWatch
// event carrying task, PC, logical address, and the symbolized site.
func TestWatchEventEmission(t *testing.T) {
	rec := trace.New()
	p := New(Options{WatchLimit: 2})
	sym := NewSymbolizer()
	sym.AddImage("app", 0, fakeProgram("app"), 10, 4)
	p.Bind(sym, rec, 7_372_800)
	p.AddWatch(Watchpoint{Addr: 0x100, Len: 2, Read: true, Write: true})

	p.Watch(1000, 1, 4, 0x100, true)
	p.Watch(2000, 1, 0, 0x101, false)
	p.Watch(3000, 1, 0, 0x100, false) // over the cap: counted, not retained

	if got := len(p.WatchHits()); got != 2 {
		t.Fatalf("retained hits = %d, want 2", got)
	}
	if got := p.DroppedWatchHits(); got != 1 {
		t.Fatalf("dropped hits = %d, want 1", got)
	}
	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("trace events = %d, want 3 (drops still trace)", len(events))
	}
	e := events[0]
	if e.Kind != trace.KindWatch || e.Task != 1 || e.Arg != 0x100 || e.Arg2 != 1 ||
		e.PC != 4 || e.Detail != "app.helper" {
		t.Errorf("watch event = %+v", e)
	}
	if events[1].Arg2 != 0 {
		t.Errorf("read hit encoded as write: %+v", events[1])
	}
}

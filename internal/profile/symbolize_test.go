package profile

import (
	"testing"

	"repro/internal/image"
)

// fakeProgram builds an image with a known symbol layout:
//
//	word 0..3   main
//	word 4..7   helper (words 5-6 form one 32-bit instruction)
//	word 8..9   last
//	word 10..13 trampoline filler
//	word 14..19 shift table
func fakeProgram(name string) *image.Program {
	return &image.Program{
		Name:  name,
		Words: make([]uint16, 20),
		Symbols: []image.Symbol{
			{Name: "main", Kind: image.SymCode, Addr: 0},
			{Name: "helper", Kind: image.SymCode, Addr: 4},
			{Name: "last", Kind: image.SymCode, Addr: 8},
			{Name: "buf", Kind: image.SymData, Addr: 0x100},
		},
	}
}

func TestResolveEdgeCases(t *testing.T) {
	s := NewSymbolizer()
	s.AddImage("app", 0x40, fakeProgram("app"), 10, 4)

	cases := []struct {
		name string
		pc   uint32
		want Frame
	}{
		{"symbol start", 0x40, Frame{Image: "app", Symbol: "main", Offset: 0}},
		{"mid symbol", 0x42, Frame{Image: "app", Symbol: "main", Offset: 2}},
		{"32-bit second word", 0x46, Frame{Image: "app", Symbol: "helper", Offset: 2}},
		{"past last symbol", 0x49, Frame{Image: "app", Symbol: "last", Offset: 1}},
		{"trampoline", 0x4a, Frame{Image: "app", Symbol: "<trampoline>", Offset: 0}},
		{"trampoline end", 0x4d, Frame{Image: "app", Symbol: "<trampoline>", Offset: 3}},
		{"shift table", 0x4e, Frame{Image: "app", Symbol: "<shift-table>", Offset: 0}},
		{"last image word", 0x53, Frame{Image: "app", Symbol: "<shift-table>", Offset: 5}},
		{"past image end", 0x54, Frame{Symbol: "<unknown>", Offset: 0x54}},
		{"below image base", 0x3f, Frame{Symbol: "<unknown>", Offset: 0x3f}},
	}
	for _, c := range cases {
		got := s.Resolve(c.pc)
		if got != c.want {
			t.Errorf("%s: Resolve(%#x) = %+v, want %+v", c.name, c.pc, got, c.want)
		}
		// Resolution must be deterministic: a second lookup is identical.
		if again := s.Resolve(c.pc); again != got {
			t.Errorf("%s: Resolve(%#x) unstable: %+v then %+v", c.name, c.pc, got, again)
		}
	}
}

// TestResolveRelocatedImage registers the same program at two flash bases —
// the multi-task case where the loader placed a second copy after the first —
// and checks each copy's addresses resolve against its own base.
func TestResolveRelocatedImage(t *testing.T) {
	s := NewSymbolizer()
	s.AddImage("app#0", 0x40, fakeProgram("app"), 10, 4)
	s.AddImage("app#1", 0x200, fakeProgram("app"), 10, 4)

	if got := s.Resolve(0x46); got.Image != "app#0" || got.Symbol != "helper" {
		t.Errorf("first copy: got %+v", got)
	}
	if got := s.Resolve(0x206); got.Image != "app#1" || got.Symbol != "helper" || got.Offset != 2 {
		t.Errorf("relocated copy: got %+v", got)
	}
	// The gap between the copies belongs to no image.
	if got := s.Resolve(0x100); got.Symbol != "<unknown>" {
		t.Errorf("gap: got %+v", got)
	}
}

// TestResolveBeforeFirstSymbol charges code before the first symbol to the
// image itself.
func TestResolveBeforeFirstSymbol(t *testing.T) {
	prog := fakeProgram("app")
	prog.Symbols = []image.Symbol{{Name: "late", Kind: image.SymCode, Addr: 6}}
	s := NewSymbolizer()
	s.AddImage("app", 0, prog, 10, 4)
	got := s.Resolve(3)
	if got.Symbol != "app" || got.Offset != 3 {
		t.Errorf("pre-symbol code: got %+v", got)
	}
	if got.Name() != "app" {
		t.Errorf("pre-symbol frame renders as %q, want plain image name", got.Name())
	}
}

func TestSymbolizerName(t *testing.T) {
	s := NewSymbolizer()
	s.AddImage("app", 0x40, fakeProgram("app"), 10, 4)
	for pc, want := range map[uint32]string{
		0x40: "app.main",
		0x43: "app.main+0x3",
		0x46: "app.helper+0x2",
		0x4a: "app.<trampoline>",
		0x99: "<unknown>+0x99",
	} {
		if got := s.Name(pc); got != want {
			t.Errorf("Name(%#x) = %q, want %q", pc, got, want)
		}
	}
}

func TestNilSymbolizerIsSafe(t *testing.T) {
	var s *Symbolizer
	if got := s.Resolve(0x1234); got.Symbol != "<unknown>" {
		t.Errorf("nil Resolve: got %+v", got)
	}
	if got := s.Name(0); got != "<unknown>" {
		t.Errorf("nil Name: got %q", got)
	}
}

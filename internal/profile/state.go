package profile

import "fmt"

// PCCount is one non-zero cell of a task's per-address cycle histogram,
// stored sparsely: benchmarks touch a few hundred flash words out of 64 Ki.
type PCCount struct {
	PC     uint32
	Cycles uint64
}

// TaskProfState is the serializable profile of one task.
type TaskProfState struct {
	ID         int32
	Name       string
	PL, PH, PU uint16

	PCs   []PCCount
	Svc   [16]uint64
	Reloc uint64
	Intr  uint64

	NextSample uint64
	Ring       []StackSample
	RingPos    int
	Wrapped    bool
	Samples    uint64
	Peak       uint32
	Relocs     []RelocMark
}

// ProfilerState is the serializable state of a Profiler: the global cycle
// ledgers, every task's attribution histogram and stack flight-recorder
// ring, and the watchpoint log, so a restored run's pprof/folded exports are
// byte-identical to an uninterrupted one.
type ProfilerState struct {
	ClockHz       uint64
	StackInterval uint64
	StackRing     int
	WatchLimit    int

	Now        uint64
	Idle       uint64
	Switches   uint64
	Compaction uint64
	Boot       uint64
	Cur        int32

	Tasks       []TaskProfState
	Watches     []Watchpoint
	Hits        []WatchHit
	DroppedHits uint64
}

// CaptureState snapshots the profiler. Histograms are stored sparsely and
// every slice is copied, so the state stays valid while the profiler keeps
// accumulating.
func (p *Profiler) CaptureState() *ProfilerState {
	st := &ProfilerState{
		ClockHz:       p.o.ClockHz,
		StackInterval: p.o.StackInterval,
		StackRing:     p.o.StackRing,
		WatchLimit:    p.o.WatchLimit,
		Now:           p.now,
		Idle:          p.idle,
		Switches:      p.switches,
		Compaction:    p.compaction,
		Boot:          p.boot,
		Cur:           MachineTask,
		Tasks:         make([]TaskProfState, 0, len(p.order)),
		Watches:       append([]Watchpoint(nil), p.watches...),
		Hits:          append([]WatchHit(nil), p.hits...),
		DroppedHits:   p.droppedHits,
	}
	if p.cur != nil {
		st.Cur = p.cur.id
	}
	for _, id := range p.order {
		t := p.tasks[id]
		ts := TaskProfState{
			ID:         t.id,
			Name:       t.name,
			PL:         t.pl,
			PH:         t.ph,
			PU:         t.pu,
			Svc:        t.svc,
			Reloc:      t.reloc,
			Intr:       t.intr,
			NextSample: t.nextSample,
			Ring:       append([]StackSample(nil), t.ring...),
			RingPos:    t.ringPos,
			Wrapped:    t.wrapped,
			Samples:    t.samples,
			Peak:       t.peak,
			Relocs:     append([]RelocMark(nil), t.relocs...),
		}
		for pc, cyc := range t.pcs {
			if cyc != 0 {
				ts.PCs = append(ts.PCs, PCCount{PC: uint32(pc), Cycles: cyc})
			}
		}
		st.Tasks = append(st.Tasks, ts)
	}
	return st
}

// RestoreState replaces the profiler's contents with a captured state. The
// target must have been constructed with the same options (intervals, ring
// and watch capacities); tasks present in the state but not yet registered
// are created, and registered tasks absent from the state are an error —
// both profilers must descend from the same admission sequence.
func (p *Profiler) RestoreState(st *ProfilerState) error {
	if p.o.StackInterval != st.StackInterval || p.o.StackRing != st.StackRing ||
		p.o.WatchLimit != st.WatchLimit || p.o.ClockHz != st.ClockHz {
		return fmt.Errorf("profile: options (clock %d, stack %d/%d, watch %d) differ from snapshot's (clock %d, stack %d/%d, watch %d)",
			p.o.ClockHz, p.o.StackInterval, p.o.StackRing, p.o.WatchLimit,
			st.ClockHz, st.StackInterval, st.StackRing, st.WatchLimit)
	}
	if len(st.Tasks) < len(p.order) {
		return fmt.Errorf("profile: snapshot has %d tasks, target already registered %d",
			len(st.Tasks), len(p.order))
	}
	seen := make(map[int32]bool, len(st.Tasks))
	for i := range st.Tasks {
		ts := &st.Tasks[i]
		if seen[ts.ID] {
			return fmt.Errorf("profile: snapshot repeats task id %d", ts.ID)
		}
		seen[ts.ID] = true
		if i < len(p.order) && p.order[i] != ts.ID {
			return fmt.Errorf("profile: snapshot task order %d is id %d, target registered id %d",
				i, ts.ID, p.order[i])
		}
		t, ok := p.tasks[ts.ID]
		if !ok {
			t = p.register(ts.ID, ts.Name, ts.PL, ts.PH, ts.PU)
		}
		t.name = ts.Name
		t.pl, t.ph, t.pu = ts.PL, ts.PH, ts.PU
		clear(t.pcs)
		for _, pcc := range ts.PCs {
			if pcc.PC >= flashWords {
				return fmt.Errorf("profile: snapshot pc %#x out of flash range", pcc.PC)
			}
			t.pcs[pcc.PC] = pcc.Cycles
		}
		t.svc = ts.Svc
		t.reloc = ts.Reloc
		t.intr = ts.Intr
		t.nextSample = ts.NextSample
		if p.o.StackInterval != 0 {
			ring := make([]StackSample, len(ts.Ring), p.o.StackRing)
			copy(ring, ts.Ring)
			t.ring = ring
		} else {
			t.ring = nil
		}
		t.ringPos = ts.RingPos
		t.wrapped = ts.Wrapped
		t.samples = ts.Samples
		t.peak = ts.Peak
		t.relocs = append([]RelocMark(nil), ts.Relocs...)
	}
	p.now = st.Now
	p.idle = st.Idle
	p.switches = st.Switches
	p.compaction = st.Compaction
	p.boot = st.Boot
	if t, ok := p.tasks[st.Cur]; ok {
		p.cur = t
	} else {
		return fmt.Errorf("profile: snapshot current task %d unknown", st.Cur)
	}
	p.watches = append([]Watchpoint(nil), st.Watches...)
	p.hits = append([]WatchHit(nil), st.Hits...)
	p.droppedHits = st.DroppedHits
	return nil
}

package profile

import (
	"fmt"
	"sort"

	"repro/internal/image"
)

// Frame is a resolved code location: which loaded image a flash word address
// belongs to and which symbol covers it.
type Frame struct {
	// Image is the program name of the covering image, or "" when the PC is
	// outside every registered image.
	Image string
	// Symbol is the covering code symbol. PCs inside the rewriter-emitted
	// trampoline filler resolve to "<trampoline>", PCs inside the shift-table
	// blob to "<shift-table>", PCs before the first symbol to the image name,
	// and PCs outside every image to "<unknown>".
	Symbol string
	// Offset is the word offset from the symbol (or region) start.
	Offset uint32
}

// Name renders the frame as "image.symbol" (or just the symbol when the
// image is unknown).
func (f Frame) Name() string {
	if f.Image == "" || f.Image == f.Symbol {
		return f.Symbol
	}
	return f.Image + "." + f.Symbol
}

// imageEntry is one naturalized program placed in flash.
type imageEntry struct {
	name     string
	base     uint32         // flash word address the image is loaded at
	codeEnd  uint32         // base + naturalized code words
	trampEnd uint32         // codeEnd + trampoline filler words
	end      uint32         // base + total image words (incl. shift table)
	syms     []image.Symbol // code symbols, sorted by naturalized address
}

// Symbolizer maps flash word addresses back to function symbols. Images are
// registered as the kernel loads them (flash base plus the naturalized
// program, whose code symbols the rewriter already remapped to naturalized
// addresses), so lookups handle relocated code, KTRAP escapes inside a
// function body, the second word of 32-bit instructions, and the
// trampoline/shift-table regions the rewriter appends after the code.
type Symbolizer struct {
	images []imageEntry // sorted by base
}

// NewSymbolizer returns an empty symbolizer.
func NewSymbolizer() *Symbolizer { return &Symbolizer{} }

// AddImage registers a naturalized program loaded at flash word address base.
// codeWords and trampolineWords are the rewriter's region sizes
// (Naturalized.CodeWords / Naturalized.TrampolineWords); everything beyond
// them up to len(prog.Words) is the shift table.
func (s *Symbolizer) AddImage(name string, base uint32, prog *image.Program, codeWords, trampolineWords int) {
	e := imageEntry{
		name:     name,
		base:     base,
		codeEnd:  base + uint32(codeWords),
		trampEnd: base + uint32(codeWords+trampolineWords),
		end:      base + uint32(len(prog.Words)),
	}
	for _, sym := range prog.Symbols {
		if sym.Kind == image.SymCode {
			e.syms = append(e.syms, sym)
		}
	}
	sort.Slice(e.syms, func(i, j int) bool {
		if e.syms[i].Addr != e.syms[j].Addr {
			return e.syms[i].Addr < e.syms[j].Addr
		}
		return e.syms[i].Name < e.syms[j].Name
	})
	s.images = append(s.images, e)
	sort.Slice(s.images, func(i, j int) bool { return s.images[i].base < s.images[j].base })
}

// Resolve maps a flash word address to its frame. Resolution is a floor
// lookup over the image's sorted code symbols, so a PC in the middle of a
// function — including the second word of a 32-bit instruction or a KTRAP id
// word — lands on the containing symbol deterministically.
func (s *Symbolizer) Resolve(pc uint32) Frame {
	if s == nil {
		return Frame{Symbol: "<unknown>", Offset: pc}
	}
	// Find the image with the greatest base <= pc.
	i := sort.Search(len(s.images), func(i int) bool { return s.images[i].base > pc }) - 1
	if i < 0 || pc >= s.images[i].end {
		return Frame{Symbol: "<unknown>", Offset: pc}
	}
	e := &s.images[i]
	switch {
	case pc >= e.trampEnd:
		return Frame{Image: e.name, Symbol: "<shift-table>", Offset: pc - e.trampEnd}
	case pc >= e.codeEnd:
		return Frame{Image: e.name, Symbol: "<trampoline>", Offset: pc - e.codeEnd}
	}
	off := pc - e.base
	j := sort.Search(len(e.syms), func(j int) bool { return e.syms[j].Addr > off }) - 1
	if j < 0 {
		// Code before the first symbol: charge it to the image itself.
		return Frame{Image: e.name, Symbol: e.name, Offset: off}
	}
	return Frame{Image: e.name, Symbol: e.syms[j].Name, Offset: off - e.syms[j].Addr}
}

// Name renders the symbol covering pc as "image.symbol+0xoff" — the form the
// kernel embeds in fault reasons and reconciliation errors. The offset is
// omitted when zero.
func (s *Symbolizer) Name(pc uint32) string {
	f := s.Resolve(pc)
	if f.Offset == 0 {
		return f.Name()
	}
	return fmt.Sprintf("%s+%#x", f.Name(), f.Offset)
}

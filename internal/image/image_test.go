package image

import (
	"strings"
	"testing"
)

func sample() *Program {
	return &Program{
		Name:     "sample",
		Words:    []uint16{0x0000, 0xCFFF},
		Entry:    0,
		HeapBase: 0x100,
		HeapSize: 4,
		DataInit: []byte{1, 2},
		Symbols: []Symbol{
			{Name: "main", Kind: SymCode, Addr: 0},
			{Name: "buf", Kind: SymData, Addr: 0x100, Size: 4},
			{Name: "K", Kind: SymConst, Addr: 42},
		},
		TextData: []Range{{Start: 1, End: 2}},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name must fail")
	}
	bad = sample()
	bad.Words = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty code must fail")
	}
	bad = sample()
	bad.Entry = 99
	if err := bad.Validate(); err == nil {
		t.Error("entry past code end must fail")
	}
	bad = sample()
	bad.HeapSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("data init larger than heap must fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sample()
	q := p.Clone()
	q.Words[0] = 0x9508
	q.Symbols[0].Name = "changed"
	q.DataInit[0] = 9
	q.TextData[0].Start = 99
	if p.Words[0] != 0x0000 || p.Symbols[0].Name != "main" || p.DataInit[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if p.TextData[0].Start != 1 {
		t.Error("Clone aliases the original's TextData ranges")
	}
}

func TestLookupAndSort(t *testing.T) {
	p := sample()
	if s, ok := p.Lookup("buf"); !ok || s.Kind != SymData || s.Size != 4 {
		t.Errorf("Lookup(buf) = %+v, %v", s, ok)
	}
	if _, ok := p.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
	p.Symbols = []Symbol{
		{Name: "b", Kind: SymData, Addr: 8},
		{Name: "a", Kind: SymCode, Addr: 4},
		{Name: "c", Kind: SymData, Addr: 8},
	}
	p.SortSymbols()
	if p.Symbols[0].Name != "a" || p.Symbols[1].Name != "b" || p.Symbols[2].Name != "c" {
		t.Errorf("sort order wrong: %+v", p.Symbols)
	}
}

func TestRangeAndTextData(t *testing.T) {
	r := Range{Start: 2, End: 5}
	for a, want := range map[uint32]bool{1: false, 2: true, 4: true, 5: false} {
		if r.Contains(a) != want {
			t.Errorf("Contains(%d) = %v, want %v", a, !want, want)
		}
	}
	p := sample()
	if !p.InTextData(1) || p.InTextData(0) {
		t.Error("InTextData wrong")
	}
}

func TestSymKindStrings(t *testing.T) {
	for k, want := range map[SymKind]string{SymCode: "code", SymData: "data", SymConst: "const"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(SymKind(99).String(), "99") {
		t.Error("unknown kind should show its number")
	}
}

func TestJSONRoundTripInPackage(t *testing.T) {
	p := sample()
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Words) != len(p.Words) ||
		len(q.Symbols) != len(p.Symbols) || len(q.TextData) != len(p.TextData) {
		t.Errorf("round trip mismatch: %+v", q)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := sample().SizeBytes(); got != 4 {
		t.Errorf("SizeBytes = %d, want 4", got)
	}
}

// Package image models the artifacts that flow through the SenSmart build
// pipeline of Figure 1 in the paper: the binary program produced by the
// compiler (here: the assembler), its symbol list, and the linked target
// image loaded onto a node.
package image

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// SymKind classifies a symbol-list entry.
type SymKind uint8

const (
	// SymCode labels a program-memory word address (function or jump target).
	SymCode SymKind = iota + 1
	// SymData labels a data-memory byte address inside the task's heap area.
	SymData
	// SymConst is an .equ constant with no storage.
	SymConst
)

func (k SymKind) String() string {
	switch k {
	case SymCode:
		return "code"
	case SymData:
		return "data"
	case SymConst:
		return "const"
	}
	return fmt.Sprintf("symkind(%d)", uint8(k))
}

// Symbol is one entry of the symbol list the compiler hands the rewriter.
type Symbol struct {
	Name string  `json:"name"`
	Kind SymKind `json:"kind"`
	// Addr is a word address for SymCode, a data-memory byte address for
	// SymData, and the value for SymConst.
	Addr uint32 `json:"addr"`
	// Size is the object size in bytes (SymData only).
	Size uint32 `json:"size,omitempty"`
}

// Program is one compiled application: a raw program-memory image plus the
// whole-program information (symbol list, heap usage) that the base-station
// rewriter exploits (Section IV-A).
type Program struct {
	// Name identifies the application (used in task naming and reports).
	Name string `json:"name"`
	// Words is the program-memory image, word-addressed from 0.
	Words []uint16 `json:"words"`
	// Entry is the word address execution starts at.
	Entry uint32 `json:"entry"`
	// Symbols is the compiler-generated symbol list.
	Symbols []Symbol `json:"symbols,omitempty"`
	// HeapBase is the lowest data-memory address the program's static data
	// occupies (the logical heap base, 0x0100 on the ATmega128L layout).
	HeapBase uint16 `json:"heapBase"`
	// HeapSize is the number of data-memory bytes of static data ("heap" in
	// the paper's terminology: everything that is not stack).
	HeapSize uint16 `json:"heapSize"`
	// DataInit holds initial values for the first len(DataInit) bytes of the
	// heap area (the .data section); the rest is zeroed (.bss).
	DataInit []byte `json:"dataInit,omitempty"`
	// StackReserve is the program's requested initial stack size in bytes;
	// zero means "use the kernel default" (SenSmart assigns a predefined
	// initial size and grows it by relocation, Section IV-C3).
	StackReserve uint16 `json:"stackReserve,omitempty"`
	// TextData lists word ranges inside Words that hold constant data
	// (LPM tables) rather than instructions. The rewriter copies these
	// verbatim instead of decoding them. Part of the whole-program
	// information the base station exploits (Section IV-A).
	TextData []Range `json:"textData,omitempty"`
}

// Range is a half-open [Start, End) word-address interval.
type Range struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
}

// Contains reports whether word address a falls inside the range.
func (r Range) Contains(a uint32) bool { return a >= r.Start && a < r.End }

// InTextData reports whether word address a lies in a data-in-text range.
func (p *Program) InTextData(a uint32) bool {
	for _, r := range p.TextData {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// SizeBytes returns the program-memory footprint in bytes.
func (p *Program) SizeBytes() int { return 2 * len(p.Words) }

// Lookup finds a symbol by name.
func (p *Program) Lookup(name string) (Symbol, bool) {
	for _, s := range p.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Clone returns a deep copy of the program, so that rewriting never aliases
// the caller's image.
func (p *Program) Clone() *Program {
	q := *p
	q.Words = append([]uint16(nil), p.Words...)
	q.Symbols = append([]Symbol(nil), p.Symbols...)
	q.DataInit = append([]byte(nil), p.DataInit...)
	q.TextData = append([]Range(nil), p.TextData...)
	return &q
}

// Validate performs basic consistency checks on the program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return errors.New("image: program has no name")
	}
	if len(p.Words) == 0 {
		return fmt.Errorf("image: program %s is empty", p.Name)
	}
	if p.Entry >= uint32(len(p.Words)) {
		return fmt.Errorf("image: program %s entry %#x beyond code end %#x",
			p.Name, p.Entry, len(p.Words))
	}
	if int(p.HeapSize) < len(p.DataInit) {
		return fmt.Errorf("image: program %s data init (%d bytes) exceeds heap size %d",
			p.Name, len(p.DataInit), p.HeapSize)
	}
	return nil
}

// SortSymbols orders the symbol list by (kind, address, name) for stable
// output.
func (p *Program) SortSymbols() {
	sort.Slice(p.Symbols, func(i, j int) bool {
		a, b := p.Symbols[i], p.Symbols[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Name < b.Name
	})
}

// EncodeJSON encodes the program as JSON (the on-disk exchange format the
// command-line tools use between the compile and rewrite stages). The method
// is deliberately not named MarshalText so that encoding/json still encodes
// the struct field-wise.
func (p *Program) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// DecodeJSON decodes a program written by EncodeJSON and validates it.
func (p *Program) DecodeJSON(data []byte) error {
	if err := json.Unmarshal(data, p); err != nil {
		return fmt.Errorf("image: decode program: %w", err)
	}
	return p.Validate()
}

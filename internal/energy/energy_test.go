package energy

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCoefficientProvenance re-derives every coefficient from the data-sheet
// current draws: pJ/cycle = uA x 3 V / 7.3728 MHz, rounded to nearest. A
// coefficient drifting from its documented draw breaks this test.
func TestCoefficientProvenance(t *testing.T) {
	derive := func(microAmps float64) uint64 {
		const volts, hz = 3.0, 7_372_800.0
		return uint64(microAmps*volts/hz*1e6 + 0.5) // uA * V / Hz = pW/Hz = pJ
	}
	cases := []struct {
		name      string
		microAmps float64
		got       uint64
	}{
		{"cpu-active", 8000, CPUActivePJ},
		{"cpu-sleep", 15, CPUSleepPJ},
		{"radio-tx", 27000, RadioTxPJ},
		{"adc", 1000, ADCPJ},
		{"uart", 500, UARTPJ},
		{"timer", 30, TimerPJ},
	}
	for _, tc := range cases {
		if want := derive(tc.microAmps); tc.got != want {
			t.Errorf("%s: coefficient %d pJ/cycle, but %.0f uA derives to %d", tc.name, tc.got, tc.microAmps, want)
		}
	}
}

func TestReportBreakdown(t *testing.T) {
	var m Meter
	m.SleepCycles(1000)
	m.RadioByte(3840)
	m.RadioByte(3840)
	m.UARTByte(1280)
	m.ADCConversion(1664)
	m.TimerOn(100)
	m.TimerOff(600)

	b := m.Report(10_000)
	if b.CPUActiveCycles != 9000 || b.CPUSleepCycles != 1000 {
		t.Fatalf("CPU split = %d/%d, want 9000/1000", b.CPUActiveCycles, b.CPUSleepCycles)
	}
	if b.CPUActivePJ != 9000*CPUActivePJ || b.CPUSleepPJ != 1000*CPUSleepPJ {
		t.Errorf("CPU pJ = %d/%d", b.CPUActivePJ, b.CPUSleepPJ)
	}
	if b.RadioBytes != 2 || b.RadioPJ != 2*3840*RadioTxPJ {
		t.Errorf("radio = %d bytes %d pJ", b.RadioBytes, b.RadioPJ)
	}
	if b.UARTBytes != 1 || b.UARTPJ != 1280*UARTPJ {
		t.Errorf("uart = %d bytes %d pJ", b.UARTBytes, b.UARTPJ)
	}
	if b.ADCConversions != 1 || b.ADCPJ != 1664*ADCPJ {
		t.Errorf("adc = %d convs %d pJ", b.ADCConversions, b.ADCPJ)
	}
	if b.TimerCycles != 500 || b.TimerPJ != 500*TimerPJ {
		t.Errorf("timer = %d cycles %d pJ", b.TimerCycles, b.TimerPJ)
	}
	want := b.CPUActivePJ + b.CPUSleepPJ + b.RadioPJ + b.UARTPJ + b.ADCPJ + b.TimerPJ
	if b.TotalPJ != want {
		t.Errorf("total %d != component sum %d", b.TotalPJ, want)
	}
}

// TestTimerSpans: double-open and double-close are no-ops, and an open span
// is reported lazily without being closed.
func TestTimerSpans(t *testing.T) {
	var m Meter
	m.TimerOff(50) // close with nothing open: no-op
	m.TimerOn(100)
	m.TimerOn(200) // already open: keeps the original start
	if b := m.Report(1100); b.TimerCycles != 1000 {
		t.Fatalf("open span reported %d cycles, want 1000", b.TimerCycles)
	}
	// Report must not have closed the span.
	if b := m.Report(2100); b.TimerCycles != 2000 {
		t.Fatalf("open span reported %d cycles after second report, want 2000", b.TimerCycles)
	}
	m.TimerOff(1100)
	m.TimerOff(9999) // already closed: no-op
	if b := m.Report(5000); b.TimerCycles != 1000 {
		t.Fatalf("closed span reported %d cycles, want 1000", b.TimerCycles)
	}
}

// TestReportPure: Report must not mutate the meter — two reports at the same
// cycle are identical, with and without an open timer span.
func TestReportPure(t *testing.T) {
	var m Meter
	m.SleepCycles(10)
	m.RadioByte(3840)
	m.TimerOn(5)
	a, b := m.Report(1000), m.Report(1000)
	if a != b {
		t.Fatalf("consecutive reports differ: %+v vs %+v", a, b)
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	var m Meter
	m.SleepCycles(123)
	m.RadioByte(3840)
	m.UARTByte(1280)
	m.UARTByte(1280)
	m.ADCConversion(1664)
	m.TimerOn(77)

	st := m.CaptureState()
	var m2 Meter
	m2.RestoreState(st)
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("restored meter differs: %+v vs %+v", m, m2)
	}
	if a, b := m.Report(9999), m2.Report(9999); a != b {
		t.Fatalf("restored report differs: %+v vs %+v", a, b)
	}

	// The captured state is a value copy: further accrual must not leak in.
	m.RadioByte(3840)
	var m3 Meter
	m3.RestoreState(st)
	if m3.Report(9999).RadioBytes != 1 {
		t.Fatal("captured state aliased the live meter")
	}
}

func TestCPUPJ(t *testing.T) {
	if got := CPUPJ(1000); got != 1000*CPUActivePJ {
		t.Fatalf("CPUPJ(1000) = %d", got)
	}
}

func TestFormatPJ(t *testing.T) {
	cases := []struct {
		pj   uint64
		want string
	}{
		{0, "0.000 mJ"},
		{999_999, "0.000 mJ"},
		{1_000_000, "0.001 mJ"},
		{1_234_567_890, "1.234 mJ"},
		{162_750_000_000, "162.750 mJ"},
	}
	for _, tc := range cases {
		if got := FormatPJ(tc.pj); got != tc.want {
			t.Errorf("FormatPJ(%d) = %q, want %q", tc.pj, got, tc.want)
		}
	}
}

// TestBreakdownJSONStable pins the JSON field names the bench payloads and
// telemetry samples build on.
func TestBreakdownJSONStable(t *testing.T) {
	var m Meter
	m.SleepCycles(1)
	data, err := json.Marshal(m.Report(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cpu_active_pj", "cpu_sleep_pj", "radio_pj", "uart_pj", "adc_pj", "timer_pj", "total_pj"} {
		if !json.Valid(data) || !containsKey(data, key) {
			t.Errorf("marshaled breakdown missing %q: %s", key, data)
		}
	}
}

func containsKey(data []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

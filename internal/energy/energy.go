// Package energy is a deterministic, cycle-domain charge ledger for the
// simulated MICA2 node. Each device is modeled as a power-state machine —
// the CPU is active or asleep, the radio is off or transmitting a byte, the
// ADC is idle or converting, Timer0 is stopped or counting — and every state
// carries an integer current-draw coefficient in picojoules per cycle.
// All accounting is integer math on uint64 counters, so a joules report is
// byte-identical across runs, hosts, and worker counts, and the full ledger
// serializes losslessly into a snapshot.
//
// The ledger is fed by nil-disabled hooks at the existing mcu device
// transition points (see Machine.SetEnergyMeter): a span is charged when it
// starts (a radio/UART byte write, an ADC conversion start) or accrued when
// it closes (a timer prescaler change, a sleep advance), so no per-cycle or
// per-instruction work happens anywhere. A detached meter costs one pointer
// comparison at each transition site; none of the sites is on the
// interpreter's fast loop.
package energy

import "fmt"

// Coefficients: picojoules per CPU cycle at the MICA2's 3 V supply and
// 7.3728 MHz clock. One milliamp of draw costs 3 V x 1 mA / 7.3728 MHz =
// 406.9 pJ per cycle; each constant below is that factor times the current
// draw of the component, rounded to the nearest integer picojoule.
//
// Draw figures (MICA2 / ATmega128L / CC1000 data-sheet class values):
//
//	CPU active  8 mA      CPU sleep  15 uA
//	radio TX    27 mA     ADC        1 mA
//	UART        0.5 mA    Timer0     30 uA
//
// Device coefficients are the draw of the device alone, additive on top of
// whatever the CPU state costs in the same cycles.
const (
	CPUActivePJ = 3255  // 8 mA: CPU executing instructions
	CPUSleepPJ  = 6     // 15 uA: CPU in sleep mode (idle cycles)
	RadioTxPJ   = 10986 // 27 mA: CC1000 transmitting, per busy cycle
	ADCPJ       = 407   // 1 mA: ADC mid-conversion, per busy cycle
	UARTPJ      = 203   // 0.5 mA: UART shifting a byte out, per busy cycle
	TimerPJ     = 12    // 30 uA: Timer0 counting, per cycle enabled
)

// Meter is the charge ledger of one node. The zero value is a valid, empty
// meter. A Meter is single-goroutine, like the Machine it attaches to: the
// worker pool gives every machine (and so every meter) a goroutine of its
// own, and results merge as values.
type Meter struct {
	// CPU sleep cycles accrued (active cycles are derived: now - sleep).
	sleepCycles uint64

	// Span devices: each started span is charged in full at its start
	// (the span length is fixed by the device timing constants, so the
	// energy is committed the moment the transmission/conversion begins).
	radioBytes  uint64
	radioCycles uint64
	uartBytes   uint64
	uartCycles  uint64
	adcConvs    uint64
	adcCycles   uint64

	// Timer0: an open-ended state, accrued when it closes (prescaler
	// stopped) or lazily at report time.
	timerCycles uint64 // closed-span cycles
	timerOn     bool
	timerSince  uint64 // cycle the open span started at
}

// SleepCycles accrues n cycles spent in CPU sleep mode.
func (m *Meter) SleepCycles(n uint64) { m.sleepCycles += n }

// RadioByte charges one transmitted radio byte occupying the radio for
// cycles cycles.
func (m *Meter) RadioByte(cycles uint64) {
	m.radioBytes++
	m.radioCycles += cycles
}

// UARTByte charges one transmitted UART byte occupying the UART for cycles
// cycles.
func (m *Meter) UARTByte(cycles uint64) {
	m.uartBytes++
	m.uartCycles += cycles
}

// ADCConversion charges one ADC conversion occupying the ADC for cycles
// cycles.
func (m *Meter) ADCConversion(cycles uint64) {
	m.adcConvs++
	m.adcCycles += cycles
}

// TimerOn opens a timer span at the given cycle. Opening an already-open
// span is a no-op (the prescaler changed value but stayed enabled).
func (m *Meter) TimerOn(cycle uint64) {
	if m.timerOn {
		return
	}
	m.timerOn = true
	m.timerSince = cycle
}

// TimerOff closes the open timer span at the given cycle. Closing a closed
// span is a no-op.
func (m *Meter) TimerOff(cycle uint64) {
	if !m.timerOn {
		return
	}
	m.timerCycles += cycle - m.timerSince
	m.timerOn = false
	m.timerSince = 0
}

// Breakdown is a point-in-time joules report: per-component picojoule
// totals plus the input counts they were computed from. All fields are
// integers, so a Breakdown marshals byte-identically everywhere.
type Breakdown struct {
	CPUActiveCycles uint64 `json:"cpu_active_cycles"`
	CPUSleepCycles  uint64 `json:"cpu_sleep_cycles"`
	CPUActivePJ     uint64 `json:"cpu_active_pj"`
	CPUSleepPJ      uint64 `json:"cpu_sleep_pj"`
	RadioBytes      uint64 `json:"radio_bytes"`
	RadioPJ         uint64 `json:"radio_pj"`
	UARTBytes       uint64 `json:"uart_bytes"`
	UARTPJ          uint64 `json:"uart_pj"`
	ADCConversions  uint64 `json:"adc_conversions"`
	ADCPJ           uint64 `json:"adc_pj"`
	TimerCycles     uint64 `json:"timer_cycles"`
	TimerPJ         uint64 `json:"timer_pj"`
	TotalPJ         uint64 `json:"total_pj"`
}

// Report computes the joules breakdown as of cycle now. The meter must have
// observed the whole run (attached before the first cycle), so CPU active
// cycles are now minus the accrued sleep cycles. Report does not mutate the
// meter; an open timer span is included up to now without being closed.
func (m *Meter) Report(now uint64) Breakdown {
	timerCyc := m.timerCycles
	if m.timerOn && now > m.timerSince {
		timerCyc += now - m.timerSince
	}
	b := Breakdown{
		CPUActiveCycles: now - m.sleepCycles,
		CPUSleepCycles:  m.sleepCycles,
		RadioBytes:      m.radioBytes,
		UARTBytes:       m.uartBytes,
		ADCConversions:  m.adcConvs,
		TimerCycles:     timerCyc,
	}
	b.CPUActivePJ = b.CPUActiveCycles * CPUActivePJ
	b.CPUSleepPJ = b.CPUSleepCycles * CPUSleepPJ
	b.RadioPJ = m.radioCycles * RadioTxPJ
	b.UARTPJ = m.uartCycles * UARTPJ
	b.ADCPJ = m.adcCycles * ADCPJ
	b.TimerPJ = timerCyc * TimerPJ
	b.TotalPJ = b.CPUActivePJ + b.CPUSleepPJ + b.RadioPJ + b.UARTPJ + b.ADCPJ + b.TimerPJ
	return b
}

// CPUPJ estimates the energy of a pure-CPU cycle ledger: cycles all spent
// active. The kernel uses it to attribute per-task and per-service joules
// from the cycle ledgers it already keeps.
func CPUPJ(cycles uint64) uint64 { return cycles * CPUActivePJ }

// FormatPJ renders a picojoule total as millijoules with microjoule
// precision, using integer math only ("12.345 mJ").
func FormatPJ(pj uint64) string {
	return fmt.Sprintf("%d.%03d mJ", pj/1_000_000_000, pj%1_000_000_000/1_000_000)
}

// MeterState is the serializable state of a Meter, so a restored run's
// joules report is byte-identical to an uninterrupted one.
type MeterState struct {
	SleepCycles uint64
	RadioBytes  uint64
	RadioCycles uint64
	UARTBytes   uint64
	UARTCycles  uint64
	ADCConvs    uint64
	ADCCycles   uint64
	TimerCycles uint64
	TimerOn     bool
	TimerSince  uint64
}

// CaptureState snapshots the meter. The state is a plain value copy, so it
// stays valid while the meter keeps accruing.
func (m *Meter) CaptureState() *MeterState {
	return &MeterState{
		SleepCycles: m.sleepCycles,
		RadioBytes:  m.radioBytes,
		RadioCycles: m.radioCycles,
		UARTBytes:   m.uartBytes,
		UARTCycles:  m.uartCycles,
		ADCConvs:    m.adcConvs,
		ADCCycles:   m.adcCycles,
		TimerCycles: m.timerCycles,
		TimerOn:     m.timerOn,
		TimerSince:  m.timerSince,
	}
}

// RestoreState replaces the meter's contents with a captured state.
func (m *Meter) RestoreState(st *MeterState) {
	m.sleepCycles = st.SleepCycles
	m.radioBytes = st.RadioBytes
	m.radioCycles = st.RadioCycles
	m.uartBytes = st.UARTBytes
	m.uartCycles = st.UARTCycles
	m.adcConvs = st.ADCConvs
	m.adcCycles = st.ADCCycles
	m.timerCycles = st.TimerCycles
	m.timerOn = st.TimerOn
	m.timerSince = st.TimerSince
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mkSample(i int) Sample {
	return Sample{
		At:                    uint64(i) * DefaultEvery,
		Cycle:                 uint64(i)*DefaultEvery + uint64(i%7),
		IdleCycles:            uint64(i * 10),
		ServiceOverheadCycles: uint64(i * 100),
		SwitchCycles:          uint64(i * 20),
		RelocCycles:           uint64(i * 3),
		BootCycles:            123,
		ContextSwitches:       i,
		BranchTraps:           uint64(i * 2),
		Running:               int32(i % 3),
		Tasks: []TaskSample{
			{ID: 1, Name: "lfsr", State: "running", RunCycles: uint64(i * 50), StackUsed: uint16(i % 64)},
			{ID: 2, Name: "timer", State: "ready", RunCycles: uint64(i * 30), StackPeak: 40},
		},
	}
}

func TestRingWraparound(t *testing.T) {
	s := New(Options{Every: 100, Ring: 4})
	if s.Every() != 100 {
		t.Fatalf("Every() = %d, want 100", s.Every())
	}
	// Golden walk: fill, then wrap twice over; the ring must always hold
	// the most recent 4 samples oldest-first, with Total counting all.
	for i := 0; i < 10; i++ {
		s.Record(mkSample(i))
		got := s.Samples()
		wantLen := i + 1
		if wantLen > 4 {
			wantLen = 4
		}
		if len(got) != wantLen {
			t.Fatalf("after %d records: %d samples, want %d", i+1, len(got), wantLen)
		}
		for j, smp := range got {
			wantIdx := i + 1 - wantLen + j
			if smp.At != uint64(wantIdx)*DefaultEvery {
				t.Fatalf("after %d records, sample %d has At=%d, want index %d", i+1, j, smp.At, wantIdx)
			}
		}
		last, ok := s.Last()
		if !ok || last.At != mkSample(i).At {
			t.Fatalf("Last() after %d records = %+v ok=%v", i+1, last.At, ok)
		}
	}
	if s.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", s.Total())
	}
	if s.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", s.Dropped())
	}
}

func TestDefaults(t *testing.T) {
	s := New(Options{})
	if s.Every() != DefaultEvery {
		t.Fatalf("default Every = %d", s.Every())
	}
	if s.ring != DefaultRing {
		t.Fatalf("default Ring = %d", s.ring)
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last() reported a sample on an empty ring")
	}
}

func TestStreamMatchesRingDump(t *testing.T) {
	var stream bytes.Buffer
	s := New(Options{Every: 100, Ring: 64, Stream: &stream})
	for i := 0; i < 5; i++ {
		s.Record(mkSample(i))
	}
	var dump bytes.Buffer
	if err := s.WriteNDJSON(&dump); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), dump.Bytes()) {
		t.Fatalf("live stream and ring dump differ:\nstream:\n%s\ndump:\n%s", stream.String(), dump.String())
	}
	if n := bytes.Count(dump.Bytes(), []byte("\n")); n != 5 {
		t.Fatalf("NDJSON dump has %d lines, want 5", n)
	}
	// Every line must round-trip as a Sample.
	for _, line := range bytes.Split(bytes.TrimSpace(dump.Bytes()), []byte("\n")) {
		var smp Sample
		if err := json.Unmarshal(line, &smp); err != nil {
			t.Fatalf("NDJSON line %q: %v", line, err)
		}
	}
	if err := s.StreamErr(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, fmt.Errorf("boom %d", f.n)
}

func TestStreamErrorSticky(t *testing.T) {
	fw := &failWriter{}
	s := New(Options{Stream: fw})
	s.Record(mkSample(0))
	s.Record(mkSample(1))
	if err := s.StreamErr(); err == nil || !strings.Contains(err.Error(), "boom 1") {
		t.Fatalf("StreamErr = %v, want the first failure", err)
	}
	if fw.n != 1 {
		t.Fatalf("stream written %d times after failure, want 1", fw.n)
	}
	if s.Total() != 2 {
		t.Fatal("ring recording must continue after a stream failure")
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	s := New(Options{Every: 100, Ring: 2})
	for i := 0; i < 3; i++ {
		s.Record(mkSample(i))
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var series Series
	if err := json.Unmarshal(buf.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	if series.Every != 100 || series.Total != 3 || series.Dropped != 1 || len(series.Samples) != 2 {
		t.Fatalf("series header = %+v with %d samples", series, len(series.Samples))
	}
	if series.Samples[0].At >= series.Samples[1].At {
		t.Fatal("snapshot samples not oldest-first")
	}
}

func TestPrometheusValid(t *testing.T) {
	s := New(Options{Every: 100, Ring: 8})
	s.RegisterTask(1, "lfsr")
	s.RegisterTask(2, `ti"mer\n`) // hostile label value
	var empty bytes.Buffer
	if err := s.WritePrometheus(&empty); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(empty.Bytes()); err != nil {
		t.Fatalf("empty exposition invalid: %v\n%s", err, empty.String())
	}
	smp := mkSample(3)
	smp.Tasks[1].Name = `ti"mer\n`
	s.Record(smp)
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE sensmart_cycles_total counter",
		"sensmart_telemetry_samples_total 1",
		`sensmart_kernel_cycles_total{component="switch"} 60`,
		`sensmart_task_run_cycles_total{task="lfsr",id="1"} 150`,
		`task="ti\"mer\\n"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []string{
		"1bad_name 3\n",
		"metric{label=unquoted} 3\n",
		"metric{l=\"v\" 3\n",
		"metric notanumber\n",
		"# TYPE metric flavour\n",
		"# HELP\n",
		"metric 3\n\nmetric 4\n",
		"# TYPE m counter\n# TYPE m counter\nm 1\n",
		"metric 3 notatimestamp\n",
	}
	for _, c := range cases {
		if err := ValidateExposition([]byte(c)); err == nil {
			t.Errorf("ValidateExposition accepted %q", c)
		}
	}
	good := "# HELP m help text here\n# TYPE m gauge\nm{a=\"b\",c=\"d\"} 1.5 1234567\nm2 NaN\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("ValidateExposition rejected %q: %v", good, err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(Options{Every: 100, Ring: 8})
	s.RegisterTask(1, "lfsr")
	s.Record(mkSample(1))
	p := NewProgress(nil)
	p.Point("fig6", 1, 7, 39_200_000, 24*time.Millisecond)
	srv := httptest.NewServer((&Server{Sampler: s, Progress: p, Title: "test run"}).Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/")
	if !strings.Contains(ctype, "text/html") || !strings.Contains(body, "test run") ||
		!strings.Contains(body, "<svg") && !strings.Contains(body, "svg") {
		t.Fatalf("dashboard: ctype=%q", ctype)
	}
	body, ctype = get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	body, _ = get("/api/series")
	var series Series
	if err := json.Unmarshal([]byte(body), &series); err != nil || len(series.Samples) != 1 {
		t.Fatalf("/api/series: %v (%d samples)", err, len(series.Samples))
	}
	body, _ = get("/api/progress")
	var pts []ProgressPoint
	if err := json.Unmarshal([]byte(body), &pts); err != nil || len(pts) != 1 || pts[0].Sweep != "fig6" {
		t.Fatalf("/api/progress: %v %+v", err, pts)
	}

	resp, err := srv.Client().Get(srv.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPNilBackends(t *testing.T) {
	srv := httptest.NewServer((&Server{}).Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/api/series", "/api/progress"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s with nil backends: status %d", path, resp.StatusCode)
		}
		if path == "/api/series" {
			var series Series
			if err := json.Unmarshal(buf.Bytes(), &series); err != nil {
				t.Fatalf("nil-sampler series: %v", err)
			}
		}
	}
}

func TestProgressLines(t *testing.T) {
	var lines []string
	p := NewProgress(func(l string) { lines = append(lines, l) })
	p.Point("fig5", 1, 7, 39_200_000, 24*time.Millisecond)
	p.Point("fig5", 2, 7, 0, 3*time.Millisecond)
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if want := "progress: fig5 [1/7] 39.2 Mcycles in 24.0 ms (1633 Mcyc/s)"; lines[0] != want {
		t.Fatalf("line = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "fig5 [2/7] done") {
		t.Fatalf("cycle-less line = %q", lines[1])
	}
	var nilP *Progress
	nilP.Point("x", 1, 1, 0, 0) // must not panic
	if nilP.Points() != nil {
		t.Fatal("nil Progress returned points")
	}
	if got := p.Points(); len(got) != 2 || got[0].McycPerSec == 0 {
		t.Fatalf("Points() = %+v", got)
	}
}

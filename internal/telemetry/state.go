package telemetry

import "fmt"

// SamplerState is the serializable state of a Sampler: the retained window
// (chronological), the lifetime counter, and the task registry, so a
// restored run's NDJSON export is byte-identical to an uninterrupted one.
type SamplerState struct {
	Every     uint64
	Ring      int
	Total     uint64
	Samples   []Sample
	TaskIDs   []int32
	TaskNames []string
}

func cloneSample(smp Sample) Sample {
	smp.Tasks = append([]TaskSample(nil), smp.Tasks...)
	return smp
}

// CaptureState snapshots the sampler. Samples are deep-copied (including the
// per-task slices) in chronological order, so the state stays valid while
// the sampler keeps recording.
func (s *Sampler) CaptureState() *SamplerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &SamplerState{
		Every:     s.every,
		Ring:      s.ring,
		Total:     s.total,
		Samples:   make([]Sample, 0, len(s.samples)),
		TaskIDs:   append([]int32(nil), s.order...),
		TaskNames: make([]string, 0, len(s.order)),
	}
	for _, smp := range s.samples[s.next:] {
		st.Samples = append(st.Samples, cloneSample(smp))
	}
	for _, smp := range s.samples[:s.next] {
		st.Samples = append(st.Samples, cloneSample(smp))
	}
	for _, id := range s.order {
		st.TaskNames = append(st.TaskNames, s.names[id])
	}
	return st
}

// RestoreState replaces the sampler's contents with a captured state. The
// target must have been constructed with the same interval and ring size.
// Samples are deep-copied, so sampler and state never alias; the restored
// window is stored chronologically with the write index at zero, which is
// indistinguishable from the source ring to every reader and writer.
func (s *Sampler) RestoreState(st *SamplerState) error {
	if len(st.TaskIDs) != len(st.TaskNames) {
		return fmt.Errorf("telemetry: snapshot task registry is malformed (%d ids, %d names)",
			len(st.TaskIDs), len(st.TaskNames))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.every != st.Every || s.ring != st.Ring {
		return fmt.Errorf("telemetry: sampler interval/ring %d/%d differ from snapshot's %d/%d",
			s.every, s.ring, st.Every, st.Ring)
	}
	if len(st.Samples) > s.ring {
		return fmt.Errorf("telemetry: snapshot retains %d samples, over the %d-sample ring",
			len(st.Samples), s.ring)
	}
	s.samples = make([]Sample, 0, len(st.Samples))
	for _, smp := range st.Samples {
		s.samples = append(s.samples, cloneSample(smp))
	}
	s.next = 0 // chronological storage: on a full ring, index 0 is oldest
	s.total = st.Total
	s.names = make(map[int32]string, len(st.TaskIDs))
	s.order = append([]int32(nil), st.TaskIDs...)
	for i, id := range st.TaskIDs {
		s.names[id] = st.TaskNames[i]
	}
	return nil
}

// Package telemetry is the live-monitoring layer of the SenSmart
// reproduction: a cycle-domain sampler that snapshots per-task and
// kernel-wide gauges into fixed-size ring buffers as the simulation runs,
// plus the exporters that make the rings observable mid-flight — Prometheus
// text exposition and a JSON time series over an embedded HTTP server, an
// inline HTML+SVG live dashboard, and deterministic NDJSON streaming to a
// file for offline tooling.
//
// Where trace (internal/trace) records *events* and profile
// (internal/profile) attributes *every cycle*, telemetry records *state at a
// cadence*: every Every simulated cycles the kernel snapshots its ledgers
// (the same counters System.Metrics aggregates) into one Sample. The sampler
// follows the same attachment discipline as the other two layers: a nil
// sampler costs the emitting code one pointer comparison, and an attached
// one is driven entirely by the deterministic simulated clock, so repeated
// runs — serial or under the parallel experiment pool — produce
// byte-identical sample streams.
package telemetry

import (
	"io"
	"sort"
	"sync"
)

// Options tunes a Sampler. The zero value selects the defaults.
type Options struct {
	// Every is the sampling interval in simulated cycles (default 65536,
	// ~8.9 ms of MICA2 time). The machine takes at most one sample per
	// interval, at the first execution point at or after each boundary.
	Every uint64
	// Ring caps the retained samples (default 1024). Older samples are
	// overwritten deterministically (plain modular wraparound); Total still
	// counts every sample ever recorded, and an attached Stream saw them all.
	Ring int
	// Stream, when set, receives one NDJSON line per sample as it is
	// recorded — the deterministic export for offline tooling. Write errors
	// are sticky and surfaced by StreamErr, not by the hot path.
	Stream io.Writer
}

// DefaultEvery is the default sampling interval in cycles.
const DefaultEvery = 65536

// DefaultRing is the default ring capacity in samples.
const DefaultRing = 1024

// TaskSample is one task's gauges inside a Sample.
type TaskSample struct {
	// ID is the kernel task id; Name its display name (registered once at
	// admission, carried on every sample so NDJSON lines are self-contained).
	ID   int32  `json:"id"`
	Name string `json:"name"`
	// State is the scheduling state at the sample point.
	State string `json:"state"`
	// RunCycles is the wall-clock cycles the task has held the CPU,
	// including the currently open run window; KernelCycles the kernel
	// overhead charged on the task's behalf.
	RunCycles    uint64 `json:"run_cycles"`
	KernelCycles uint64 `json:"kernel_cycles"`
	// StackUsed is the live stack depth in bytes; StackPeak the high-water
	// mark; StackAlloc the allocated stack bytes; HeapBytes the fixed heap.
	StackUsed  uint16 `json:"stack_used"`
	StackPeak  uint16 `json:"stack_peak"`
	StackAlloc uint16 `json:"stack_alloc"`
	HeapBytes  uint16 `json:"heap_bytes"`
	// Traps counts KTRAP services the task invoked so far; Relocations its
	// stack relocations; Switches how often it was scheduled in.
	Traps       uint64 `json:"traps"`
	Relocations int    `json:"relocations"`
	Switches    int    `json:"switches"`
	// EnergyPJ is the CPU energy attributed to the task so far (RunCycles at
	// the active-draw coefficient), in picojoules. Present only when an
	// energy meter is attached; omitted from NDJSON otherwise, so unmetered
	// streams stay byte-identical.
	EnergyPJ uint64 `json:"energy_pj,omitempty"`
}

// Sample is one cycle-stamped snapshot of the kernel-wide gauges plus every
// task's gauges. All counter fields are cumulative since boot; consumers
// derive rates (relocations/s, trap rate, CPU share) by differencing
// consecutive samples.
type Sample struct {
	// At is the nominal sample boundary (a multiple of Every); Cycle the
	// machine clock when the snapshot was actually taken (>= At: sampling
	// quantizes to instruction and kernel-service boundaries).
	At    uint64 `json:"at"`
	Cycle uint64 `json:"cycle"`
	// IdleCycles mirrors the machine's idle ledger.
	IdleCycles uint64 `json:"idle_cycles"`
	// Kernel-cycle breakdown, identical to the System.Metrics decomposition:
	// KernelCycles = ServiceOverhead + SwitchCycles + RelocCycles + BootCycles.
	ServiceOverheadCycles uint64 `json:"service_overhead_cycles"`
	SwitchCycles          uint64 `json:"switch_cycles"`
	RelocCycles           uint64 `json:"reloc_cycles"`
	BootCycles            uint64 `json:"boot_cycles"`
	// Scheduler counters (cumulative).
	ContextSwitches int    `json:"context_switches"`
	Preemptions     int    `json:"preemptions"`
	SliceChecks     uint64 `json:"slice_checks"`
	BranchTraps     uint64 `json:"branch_traps"`
	Relocations     int    `json:"relocations"`
	RelocatedBytes  uint64 `json:"relocated_bytes"`
	Terminations    int    `json:"terminations"`
	// Memory gauges: live task heap and stack allocation, and the free
	// trailing bytes of the application area.
	HeapBytes  uint32 `json:"heap_bytes"`
	StackBytes uint32 `json:"stack_bytes"`
	FreeBytes  uint32 `json:"free_bytes"`
	// Running is the task holding the CPU at the sample point, or -1.
	Running int32 `json:"running"`
	// Energy gauges (cumulative picojoules since boot), filled only when an
	// energy meter is attached and omitted from NDJSON otherwise, so
	// unmetered streams stay byte-identical. EnergyPJ is the system total;
	// the rest are the per-component split of the same ledger.
	EnergyPJ          uint64 `json:"energy_pj,omitempty"`
	EnergyCPUActivePJ uint64 `json:"energy_cpu_active_pj,omitempty"`
	EnergyCPUSleepPJ  uint64 `json:"energy_cpu_sleep_pj,omitempty"`
	EnergyRadioPJ     uint64 `json:"energy_radio_pj,omitempty"`
	EnergyUARTPJ      uint64 `json:"energy_uart_pj,omitempty"`
	EnergyADCPJ       uint64 `json:"energy_adc_pj,omitempty"`
	EnergyTimerPJ     uint64 `json:"energy_timer_pj,omitempty"`
	// Tasks carries one entry per admitted task, in task-id order.
	Tasks []TaskSample `json:"tasks"`
}

// KernelCycles returns the total kernel-attributed cycles of the snapshot —
// the same sum System.Metrics reports.
func (s *Sample) KernelCycles() uint64 {
	return s.ServiceOverheadCycles + s.SwitchCycles + s.RelocCycles + s.BootCycles
}

// AppCycles returns busy-minus-kernel cycles, clamped at zero like the
// Metrics aggregation.
func (s *Sample) AppCycles() uint64 {
	busy := s.Cycle - s.IdleCycles
	if k := s.KernelCycles(); busy > k {
		return busy - k
	}
	return 0
}

// IdleFraction returns the idle share of the snapshot's total cycles.
func (s *Sample) IdleFraction() float64 {
	if s.Cycle == 0 {
		return 0
	}
	return float64(s.IdleCycles) / float64(s.Cycle)
}

// Sampler collects cycle-domain samples into a fixed-size ring. The
// simulation goroutine records; the HTTP server (and any other reader)
// snapshots concurrently, so every access takes the mutex — at sampling
// cadence (default one lock per 65536 simulated cycles) the cost is
// unmeasurable next to the simulation itself.
type Sampler struct {
	every uint64
	ring  int

	mu      sync.Mutex
	samples []Sample // ring storage, capacity `ring`
	next    int      // ring write index once len(samples) == ring
	total   uint64   // samples ever recorded, including overwritten
	names   map[int32]string
	order   []int32 // registered task ids in admission order
	stream  io.Writer
	serr    error
}

// New returns a Sampler ready to attach (kernel.Config.Telemetry or
// core.WithTelemetry).
func New(o Options) *Sampler {
	if o.Every == 0 {
		o.Every = DefaultEvery
	}
	if o.Ring <= 0 {
		o.Ring = DefaultRing
	}
	return &Sampler{
		every:  o.Every,
		ring:   o.Ring,
		stream: o.Stream,
		names:  make(map[int32]string),
	}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() uint64 { return s.every }

// RegisterTask names a task id for the exporters. The kernel calls it at
// admission; late registrations apply to subsequent samples only.
func (s *Sampler) RegisterTask(id int32, name string) {
	s.mu.Lock()
	if _, ok := s.names[id]; !ok {
		s.order = append(s.order, id)
	}
	s.names[id] = name
	s.mu.Unlock()
}

// TaskName resolves a registered task id (empty string when unknown).
func (s *Sampler) TaskName(id int32) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.names[id]
}

// Record appends one sample, overwriting the oldest once the ring is full,
// and streams its NDJSON line when a Stream is attached. The caller (the
// kernel's sampling hook) passes a sample it will not touch again.
func (s *Sampler) Record(smp Sample) {
	s.mu.Lock()
	if len(s.samples) < s.ring {
		s.samples = append(s.samples, smp)
	} else {
		s.samples[s.next] = smp
		s.next = (s.next + 1) % s.ring
	}
	s.total++
	if s.stream != nil && s.serr == nil {
		line := appendNDJSON(nil, &smp)
		if _, err := s.stream.Write(line); err != nil {
			s.serr = err
		}
	}
	s.mu.Unlock()
}

// Samples returns the retained window, oldest first. The slice is a copy;
// mutate freely.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.samples))
	out = append(out, s.samples[s.next:]...)
	out = append(out, s.samples[:s.next]...)
	return out
}

// Last returns the most recent sample, if any.
func (s *Sampler) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	i := s.next - 1
	if i < 0 {
		i = len(s.samples) - 1
	}
	return s.samples[i], true
}

// Total returns how many samples were ever recorded (retained or not).
func (s *Sampler) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Dropped returns how many recorded samples the ring has overwritten.
func (s *Sampler) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - uint64(len(s.samples))
}

// StreamErr returns the first error the NDJSON stream writer reported, if
// any; recording continues (ring only) after a stream failure.
func (s *Sampler) StreamErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serr
}

// taskIDs returns the registered task ids sorted ascending — the
// deterministic iteration order the exporters use.
func (s *Sampler) taskIDs() []int32 {
	ids := append([]int32(nil), s.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

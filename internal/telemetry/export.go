package telemetry

import (
	"encoding/json"
	"io"
)

// appendNDJSON appends one sample's canonical NDJSON line (JSON object +
// '\n') to dst. Struct field order makes encoding/json deterministic, so
// identical samples always produce identical bytes — the property the
// determinism suite asserts across serial and pool runs.
func appendNDJSON(dst []byte, smp *Sample) []byte {
	b, err := json.Marshal(smp)
	if err != nil {
		// Sample contains only marshalable field types; unreachable.
		panic("telemetry: marshal sample: " + err.Error())
	}
	dst = append(dst, b...)
	return append(dst, '\n')
}

// WriteNDJSON dumps the retained ring, oldest first, one sample per line.
// This is the same encoding the live Stream uses, so a ring that never
// wrapped dumps byte-identically to its stream file.
func (s *Sampler) WriteNDJSON(w io.Writer) error {
	var buf []byte
	for _, smp := range s.Samples() {
		buf = appendNDJSON(buf[:0], &smp)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Series is the JSON time-series snapshot served at /api/series: the
// retained window plus enough header for a consumer to interpret it.
type Series struct {
	Every   uint64   `json:"every"`
	Total   uint64   `json:"total"`
	Dropped uint64   `json:"dropped"`
	Samples []Sample `json:"samples"`
}

// Snapshot captures the ring as a Series.
func (s *Sampler) Snapshot() Series {
	samples := s.Samples()
	s.mu.Lock()
	total := s.total
	s.mu.Unlock()
	return Series{
		Every:   s.every,
		Total:   total,
		Dropped: total - uint64(len(samples)),
		Samples: samples,
	}
}

// WriteJSON writes the Series snapshot as indented JSON. Deterministic for
// deterministic runs, like every exporter in this package.
func (s *Sampler) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

package telemetry

import (
	"encoding/json"
	"net/http"
)

// Server exposes a Sampler (and optionally a Progress) over HTTP:
//
//	/            live dashboard (inline HTML + SVG sparklines, no deps)
//	/metrics     Prometheus text exposition of the latest sample
//	/api/series  JSON Series snapshot of the sample ring
//	/api/progress JSON array of completed experiment sweep points
//
// Either field may be nil; the corresponding endpoints degrade to empty
// payloads rather than 404s, so dashboards work for both sim runs (sampler
// only) and bench sweeps (progress only).
type Server struct {
	Sampler  *Sampler
	Progress *Progress
	Title    string
}

// Handler returns the route mux. The caller owns the listener lifecycle;
// the simulator starts it before Run and shuts it down after the final
// snapshot so a last scrape observes the reconciled totals.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		title := srv.Title
		if title == "" {
			title = "sensmart"
		}
		// json.Marshal yields a script-safe JS string literal for the splice.
		quoted, _ := json.Marshal(title)
		page := dashboardHead + string(quoted) + dashboardTail
		_, _ = w.Write([]byte(page))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if srv.Sampler == nil {
			return
		}
		_ = srv.Sampler.WritePrometheus(w)
	})
	mux.HandleFunc("/api/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if srv.Sampler == nil {
			_, _ = w.Write([]byte(`{"every":0,"total":0,"dropped":0,"samples":[]}`))
			return
		}
		_ = srv.Sampler.WriteJSON(w)
	})
	mux.HandleFunc("/api/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		pts := srv.Progress.Points()
		if pts == nil {
			pts = []ProgressPoint{}
		}
		data, err := json.Marshal(pts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(data)
	})
	return mux
}

// The dashboard is a single self-contained page: no external scripts,
// stylesheets, or fonts. It polls /api/series and /api/progress once a
// second and draws SVG sparklines client-side. Split around the title so
// Handler can splice it in without a template engine.
const dashboardHead = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>sensmart telemetry</title>
<style>
body { font: 13px/1.5 monospace; margin: 1.5em; background: #111; color: #ddd; }
h1 { font-size: 16px; }  h2 { font-size: 14px; margin: 1.2em 0 .3em; }
.card { display: inline-block; vertical-align: top; margin: 0 1.2em .8em 0; }
.card .v { font-size: 15px; color: #fff; }
svg { background: #1a1a1a; border: 1px solid #333; }
polyline { fill: none; stroke: #6cf; stroke-width: 1; }
table { border-collapse: collapse; }
td, th { padding: .1em .8em .1em 0; text-align: right; }
th { color: #888; font-weight: normal; } td:first-child, th:first-child { text-align: left; }
#err { color: #f66; }
</style>
</head>
<body>
<h1 id="title"></h1><span id="err"></span>
<div id="cards"></div>
<h2>sparklines (retained sample window)</h2>
<div id="spark"></div>
<h2>tasks (latest sample)</h2>
<div id="tasks"></div>
<h2>experiment progress</h2>
<div id="progress"></div>
<script>
document.getElementById('title').textContent = `

const dashboardTail = `;
function esc(s) { const d = document.createElement('div'); d.textContent = s; return d.innerHTML; }
function spark(name, vals) {
  const w = 240, h = 48;
  if (!vals.length) return '';
  let mx = Math.max(...vals, 1e-9), mn = Math.min(...vals, 0);
  const pts = vals.map((v, i) =>
    (i * w / Math.max(vals.length - 1, 1)).toFixed(1) + ',' +
    (h - 2 - (v - mn) / (mx - mn || 1) * (h - 4)).toFixed(1)).join(' ');
  return '<div class="card"><div>' + esc(name) + ' <span class="v">' +
    vals[vals.length - 1].toPrecision(4) + '</span></div>' +
    '<svg width="' + w + '" height="' + h + '"><polyline points="' + pts + '"/></svg></div>';
}
function card(name, val) {
  return '<div class="card">' + esc(name) + '<div class="v">' + esc(String(val)) + '</div></div>';
}
function diff(samples, f) {
  const out = [];
  for (let i = 1; i < samples.length; i++) out.push(f(samples[i]) - f(samples[i - 1]));
  return out;
}
async function tick() {
  try {
    const series = await (await fetch('/api/series')).json();
    const prog = await (await fetch('/api/progress')).json();
    document.getElementById('err').textContent = '';
    const ss = series.samples;
    if (ss.length) {
      const last = ss[ss.length - 1];
      const kern = s => s.service_overhead_cycles + s.switch_cycles + s.reloc_cycles + s.boot_cycles;
      document.getElementById('cards').innerHTML =
        card('cycles', last.cycle.toLocaleString()) +
        card('samples', series.total + (series.dropped ? ' (' + series.dropped + ' dropped)' : '')) +
        card('idle %', (100 * last.idle_cycles / Math.max(last.cycle, 1)).toFixed(2)) +
        card('kernel %', (100 * kern(last) / Math.max(last.cycle, 1)).toFixed(2)) +
        card('switches', last.context_switches) + card('preemptions', last.preemptions) +
        card('relocations', last.relocations) + card('running', last.running) +
        (last.energy_pj ? card('energy mJ', (last.energy_pj / 1e9).toFixed(3)) : '');
      let sp =
        spark('idle fraction', ss.map(s => s.idle_cycles / Math.max(s.cycle, 1))) +
        spark('kernel cyc/sample', diff(ss, kern)) +
        spark('branch traps/sample', diff(ss, s => s.branch_traps)) +
        spark('relocs/sample', diff(ss, s => s.relocations)) +
        spark('stack bytes', ss.map(s => s.stack_bytes)) +
        spark('free bytes', ss.map(s => s.free_bytes));
      if (last.energy_pj) {
        // Power panel: per-interval draw (pJ/sample diffs) by component.
        sp += spark('power pJ/sample', diff(ss, s => s.energy_pj || 0)) +
          spark('cpu pJ/sample', diff(ss, s => (s.energy_cpu_active_pj || 0) + (s.energy_cpu_sleep_pj || 0))) +
          spark('radio pJ/sample', diff(ss, s => s.energy_radio_pj || 0)) +
          spark('uart+adc pJ/sample', diff(ss, s => (s.energy_uart_pj || 0) + (s.energy_adc_pj || 0)));
      }
      const ids = (last.tasks || []).map(t => t.id);
      for (const id of ids)
        sp += spark('task ' + id + ' SP depth', ss.map(s =>
          ((s.tasks || []).find(t => t.id === id) || {stack_used: 0}).stack_used));
      document.getElementById('spark').innerHTML = sp;
      let tt = '<table><tr><th>task</th><th>state</th><th>run cycles</th><th>kernel</th>' +
        '<th>SP</th><th>peak</th><th>alloc</th><th>traps</th><th>relocs</th><th>switches</th></tr>';
      for (const t of last.tasks || [])
        tt += '<tr><td>' + esc(t.name || String(t.id)) + '</td><td>' + esc(t.state) + '</td><td>' +
          t.run_cycles.toLocaleString() + '</td><td>' + t.kernel_cycles.toLocaleString() + '</td><td>' +
          t.stack_used + '</td><td>' + t.stack_peak + '</td><td>' + t.stack_alloc + '</td><td>' +
          t.traps + '</td><td>' + t.relocations + '</td><td>' + t.switches + '</td></tr>';
      document.getElementById('tasks').innerHTML = tt + '</table>';
    }
    if (prog.length) {
      let pt = '<table><tr><th>sweep</th><th>point</th><th>Mcycles</th><th>ms</th><th>Mcyc/s</th></tr>';
      for (const p of prog.slice(-40))
        pt += '<tr><td>' + esc(p.sweep) + '</td><td>' + p.index + '/' + p.total + '</td><td>' +
          (p.cycles / 1e6).toFixed(1) + '</td><td>' + p.wall_ms.toFixed(1) + '</td><td>' +
          p.mcyc_per_sec.toFixed(0) + '</td></tr>';
      document.getElementById('progress').innerHTML = pt + '</table>';
    }
  } catch (e) {
    document.getElementById('err').textContent = ' (poll failed: ' + e + ')';
  }
}
tick(); setInterval(tick, 1000);
</script>
</body>
</html>
`

package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// ProgressPoint is one completed sweep point of a running experiment.
type ProgressPoint struct {
	Sweep string `json:"sweep"`
	Index int    `json:"index"` // 1-based position within the sweep
	Total int    `json:"total"`
	// Cycles is the simulated-cycle count of the point (0 when the
	// experiment has no natural cycle measure, e.g. byte-count tables).
	Cycles uint64 `json:"cycles"`
	// WallMS is host wall-clock milliseconds the point took; McycPerSec the
	// resulting simulation rate (0 when Cycles is 0).
	WallMS     float64 `json:"wall_ms"`
	McycPerSec float64 `json:"mcyc_per_sec"`
}

// Progress fans completed sweep points out to a line sink (stderr, unless
// -quiet) and retains them for the HTTP /api/progress view. Experiment
// workers report concurrently, so it is mutex-guarded; it deliberately does
// NOT touch experiment results — pool merge order stays byte-deterministic,
// only the progress line order varies with scheduling.
type Progress struct {
	mu     sync.Mutex
	sink   func(line string)
	points []ProgressPoint
	done   map[string]int
}

// NewProgress returns a Progress whose lines go to sink (nil for retain-only,
// e.g. when -quiet is combined with -serve).
func NewProgress(sink func(line string)) *Progress {
	return &Progress{sink: sink, done: make(map[string]int)}
}

// Point records one completed sweep point and emits its progress line.
func (p *Progress) Point(sweep string, index, total int, cycles uint64, wall time.Duration) {
	if p == nil {
		return
	}
	pt := ProgressPoint{
		Sweep:  sweep,
		Index:  index,
		Total:  total,
		Cycles: cycles,
		WallMS: float64(wall) / float64(time.Millisecond),
	}
	if cycles > 0 && wall > 0 {
		pt.McycPerSec = float64(cycles) / 1e6 / wall.Seconds()
	}
	p.mu.Lock()
	p.points = append(p.points, pt)
	p.done[sweep]++
	n := p.done[sweep]
	sink := p.sink
	p.mu.Unlock()
	if sink == nil {
		return
	}
	var line string
	switch {
	case pt.Cycles > 0:
		line = fmt.Sprintf("progress: %s [%d/%d] %.1f Mcycles in %.1f ms (%.0f Mcyc/s)",
			sweep, n, total, float64(cycles)/1e6, pt.WallMS, pt.McycPerSec)
	default:
		line = fmt.Sprintf("progress: %s [%d/%d] done in %.1f ms", sweep, n, total, pt.WallMS)
	}
	_ = index // position within the sweep is in the retained point; lines count completions
	sink(line)
}

// Points returns all recorded points in completion order.
func (p *Progress) Points() []ProgressPoint {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ProgressPoint(nil), p.points...)
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and newline.
func promEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

type promMetric struct {
	name string
	help string
	typ  string // "gauge" or "counter"
	rows []promRow
}

type promRow struct {
	labels string // rendered `{...}` block, or ""
	value  string
}

func (m *promMetric) add(labels, value string) {
	m.rows = append(m.rows, promRow{labels: labels, value: value})
}

// WritePrometheus renders the latest sample in Prometheus text exposition
// format (version 0.0.4). Cumulative cycle/event tallies are exported as
// counters, instantaneous state as gauges. With no samples yet it emits only
// sensmart_telemetry_samples_total, so a scrape during boot still parses.
func (s *Sampler) WritePrometheus(w io.Writer) error {
	last, ok := s.Last()
	s.mu.Lock()
	total := s.total
	names := make(map[int32]string, len(s.names))
	for id, n := range s.names {
		names[id] = n
	}
	s.mu.Unlock()

	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	i := func(v int) string { return strconv.Itoa(v) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	metrics := []*promMetric{
		{name: "sensmart_telemetry_samples_total", typ: "counter",
			help: "Samples recorded since boot (including any the ring has overwritten)."},
	}
	metrics[0].add("", u(total))
	if ok {
		add := func(name, help, typ, labels, value string) {
			for _, m := range metrics {
				if m.name == name {
					m.add(labels, value)
					return
				}
			}
			m := &promMetric{name: name, help: help, typ: typ}
			m.add(labels, value)
			metrics = append(metrics, m)
		}
		add("sensmart_cycles_total", "Simulated cycles elapsed.", "counter", "", u(last.Cycle))
		add("sensmart_idle_cycles_total", "Cycles spent in the idle loop.", "counter", "", u(last.IdleCycles))
		add("sensmart_kernel_cycles_total", "Kernel-attributed cycles by component.", "counter",
			`{component="service"}`, u(last.ServiceOverheadCycles))
		add("sensmart_kernel_cycles_total", "", "", `{component="switch"}`, u(last.SwitchCycles))
		add("sensmart_kernel_cycles_total", "", "", `{component="reloc"}`, u(last.RelocCycles))
		add("sensmart_kernel_cycles_total", "", "", `{component="boot"}`, u(last.BootCycles))
		add("sensmart_app_cycles_total", "Application-attributed cycles.", "counter", "", u(last.AppCycles()))
		add("sensmart_context_switches_total", "Context switches.", "counter", "", i(last.ContextSwitches))
		add("sensmart_preemptions_total", "Slice-expiry preemptions.", "counter", "", i(last.Preemptions))
		add("sensmart_branch_traps_total", "Service-branch traps taken.", "counter", "", u(last.BranchTraps))
		add("sensmart_relocations_total", "Stack relocations performed.", "counter", "", i(last.Relocations))
		add("sensmart_relocated_bytes_total", "Bytes moved by stack relocation.", "counter", "", u(last.RelocatedBytes))
		add("sensmart_terminations_total", "Tasks terminated.", "counter", "", i(last.Terminations))
		add("sensmart_idle_fraction", "Idle share of elapsed cycles.", "gauge", "", f(last.IdleFraction()))
		add("sensmart_heap_bytes", "Live task heap bytes.", "gauge", "", u(uint64(last.HeapBytes)))
		add("sensmart_stack_bytes", "Allocated task stack bytes.", "gauge", "", u(uint64(last.StackBytes)))
		add("sensmart_free_bytes", "Free application-area bytes.", "gauge", "", u(uint64(last.FreeBytes)))
		add("sensmart_running_task", "Task id currently holding the CPU (-1 when idle).", "gauge",
			"", strconv.FormatInt(int64(last.Running), 10))
		if last.EnergyPJ > 0 {
			// Energy metrics appear only on metered runs, like every other
			// energy surface: an unmetered scrape is byte-identical to before.
			add("sensmart_energy_picojoules_total", "Energy consumed since boot, by component.", "counter",
				`{component="cpu_active"}`, u(last.EnergyCPUActivePJ))
			add("sensmart_energy_picojoules_total", "", "", `{component="cpu_sleep"}`, u(last.EnergyCPUSleepPJ))
			add("sensmart_energy_picojoules_total", "", "", `{component="radio"}`, u(last.EnergyRadioPJ))
			add("sensmart_energy_picojoules_total", "", "", `{component="uart"}`, u(last.EnergyUARTPJ))
			add("sensmart_energy_picojoules_total", "", "", `{component="adc"}`, u(last.EnergyADCPJ))
			add("sensmart_energy_picojoules_total", "", "", `{component="timer"}`, u(last.EnergyTimerPJ))
			add("sensmart_energy_total_picojoules", "Total energy consumed since boot.", "counter", "", u(last.EnergyPJ))
		}

		tasks := append([]TaskSample(nil), last.Tasks...)
		sort.Slice(tasks, func(a, b int) bool { return tasks[a].ID < tasks[b].ID })
		for _, t := range tasks {
			name := t.Name
			if name == "" {
				name = names[t.ID]
			}
			lb := fmt.Sprintf(`{task="%s",id="%d"}`, promEscape(name), t.ID)
			add("sensmart_task_run_cycles_total", "Cycles each task held the CPU.", "counter", lb, u(t.RunCycles))
			add("sensmart_task_kernel_cycles_total", "Kernel cycles charged to each task.", "counter", lb, u(t.KernelCycles))
			add("sensmart_task_traps_total", "KTRAP services each task invoked.", "counter", lb, u(t.Traps))
			add("sensmart_task_relocations_total", "Stack relocations per task.", "counter", lb, i(t.Relocations))
			add("sensmart_task_switches_total", "Times each task was scheduled in.", "counter", lb, i(t.Switches))
			add("sensmart_task_stack_used_bytes", "Live stack depth per task.", "gauge", lb, u(uint64(t.StackUsed)))
			add("sensmart_task_stack_peak_bytes", "Stack high-water mark per task.", "gauge", lb, u(uint64(t.StackPeak)))
			add("sensmart_task_stack_alloc_bytes", "Allocated stack per task.", "gauge", lb, u(uint64(t.StackAlloc)))
			add("sensmart_task_heap_bytes", "Heap bytes per task.", "gauge", lb, u(uint64(t.HeapBytes)))
			if t.EnergyPJ > 0 {
				add("sensmart_task_energy_picojoules_total", "CPU energy attributed to each task.", "counter", lb, u(t.EnergyPJ))
			}
		}
	}

	var b strings.Builder
	for _, m := range metrics {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		if m.typ != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		}
		for _, r := range m.rows {
			fmt.Fprintf(&b, "%s%s %s\n", m.name, r.labels, r.value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition (version 0.0.4): every non-comment line is
// `name{labels} value`, label values are properly quoted, values parse as
// floats, TYPE comments name a known type, and samples of a metric follow
// its TYPE line without another metric interleaving. The acceptance tests
// run every /metrics response through this.
func ValidateExposition(data []byte) error {
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i, r := range s {
			ok := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(i > 0 && r >= '0' && r <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
	typed := make(map[string]string)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			if ln != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside exposition", ln+1)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if !validName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", ln+1, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing type", ln+1)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", ln+1, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := -1
			inQuote := false
			for i := 1; i < len(rest); i++ {
				switch {
				case inQuote && rest[i] == '\\':
					i++
				case rest[i] == '"':
					inQuote = !inQuote
				case !inQuote && rest[i] == '}':
					end = i
				}
				if end >= 0 {
					break
				}
			}
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label block", ln+1)
			}
			labels := rest[1:end]
			rest = rest[end+1:]
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					eq := strings.Index(pair, "=")
					if eq <= 0 {
						return fmt.Errorf("line %d: malformed label %q", ln+1, pair)
					}
					lname, lval := pair[:eq], pair[eq+1:]
					if !validName(lname) {
						return fmt.Errorf("line %d: invalid label name %q", ln+1, lname)
					}
					if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
						return fmt.Errorf("line %d: unquoted label value %q", ln+1, lval)
					}
				}
			}
		}
		rest = strings.TrimSpace(rest)
		value := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			value = rest[:i] // optional trailing timestamp
			if _, err := strconv.ParseInt(strings.TrimSpace(rest[i+1:]), 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp in %q", ln+1, line)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			switch value {
			case "NaN", "+Inf", "-Inf":
			default:
				return fmt.Errorf("line %d: bad value %q", ln+1, value)
			}
		}
	}
	return nil
}

// splitLabels splits a label block body on commas that sit outside quoted
// values.
func splitLabels(s string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeOptions tunes the Chrome trace_event export.
type ChromeOptions struct {
	// ClockHz converts cycle stamps to microseconds (ts = cycle/ClockHz*1e6).
	// 0 selects the MICA2 clock, 7.3728 MHz.
	ClockHz float64
	// ServiceName renders a KTRAP service class id (Event.Arg of the trap
	// kinds) as a slice name. nil prints the numeric class.
	ServiceName func(class uint64) string
	// ProcessName labels the emitted process. Empty selects "sensmart node".
	ProcessName string
}

// chromeEvent is one entry of the trace_event JSON array. Field order and
// json marshalling are deterministic, so identical streams export to
// identical bytes.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the containing JSON object Perfetto and chrome://tracing
// both accept.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// kernelTID is the synthetic thread the exporter books machine- and
// kernel-global events (interrupts, idle, boot) onto; task i maps to
// thread i+1.
const kernelTID = 0

// WriteChrome exports the event stream as Chrome trace_event JSON: context
// switches become per-task "running" slices, KTRAP enter/exit pairs become
// nested service slices, and the remaining kinds become instant events.
// Load the output in chrome://tracing or https://ui.perfetto.dev.
func WriteChrome(w io.Writer, events []Event, opt ChromeOptions) error {
	if opt.ClockHz == 0 {
		opt.ClockHz = 7372800
	}
	if opt.ProcessName == "" {
		opt.ProcessName = "sensmart node"
	}
	svcName := func(class uint64) string {
		if opt.ServiceName != nil {
			return opt.ServiceName(class)
		}
		return fmt.Sprintf("class%d", class)
	}
	us := func(cycle uint64) float64 { return float64(cycle) / opt.ClockHz * 1e6 }
	tid := func(task int32) int {
		if task < 0 {
			return kernelTID
		}
		return int(task) + 1
	}

	out := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: 0, TID: kernelTID,
		Args: map[string]any{"name": opt.ProcessName},
	}, {
		Name: "thread_name", Phase: "M", PID: 0, TID: kernelTID,
		Args: map[string]any{"name": "kernel"},
	}}
	names := TaskNames(events)
	ids := make([]int32, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: tid(id),
			Args: map[string]any{"name": names[id]},
		})
	}

	slice := func(name string, task int32, from, to uint64, args map[string]any) {
		d := us(to) - us(from)
		out = append(out, chromeEvent{
			Name: name, Phase: "X", TS: us(from), Dur: &d, PID: 0, TID: tid(task), Args: args,
		})
	}
	instant := func(name string, e Event, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Phase: "i", TS: us(e.Cycle), PID: 0, TID: tid(e.Task), Scope: "t", Args: args,
		})
	}

	// Pair running intervals and trap windows while walking the stream.
	var (
		curTask  int32 = -1
		curStart uint64
		trapOpen = map[int32]Event{}
		lastC    uint64
	)
	endRun := func(to uint64) {
		if curTask >= 0 {
			slice("running", curTask, curStart, to, nil)
			curTask = -1
		}
	}
	for _, e := range events {
		lastC = e.Cycle
		switch e.Kind {
		case KindSwitch:
			endRun(e.Cycle)
			curTask, curStart = e.Task, e.Cycle
		case KindTaskExit:
			if e.Task == curTask {
				endRun(e.Cycle)
			}
			instant("task-exit: "+e.Detail, e, map[string]any{"stack_peak": e.Arg})
		case KindTrapEnter:
			trapOpen[e.Task] = e
		case KindTrapExit:
			if enter, ok := trapOpen[e.Task]; ok {
				delete(trapOpen, e.Task)
				slice("ktrap:"+svcName(e.Arg), e.Task, enter.Cycle, e.Cycle,
					map[string]any{"charged_cycles": e.Arg2})
			}
		case KindIdle:
			slice("idle", -1, e.Cycle-e.Arg, e.Cycle, nil)
		case KindBoot:
			instant("boot", e, map[string]any{"init_cycles": e.Arg})
		case KindProgLoad:
			instant("load: "+e.Detail, e, map[string]any{"flash_base": e.Arg, "words": e.Arg2})
		case KindTaskSpawn:
			instant("spawn: "+e.Detail, e, map[string]any{"region_base": e.Arg, "region_size": e.Arg2})
		case KindPreempt:
			instant("preempt", e, nil)
		case KindReloc:
			instant("stack-reloc", e, map[string]any{"bytes": e.Arg, "cycles": e.Arg2})
		case KindRelease:
			instant("region-release", e, map[string]any{"bytes": e.Arg, "cycles": e.Arg2})
		case KindMemFault:
			instant("mem-fault", e, map[string]any{"addr": e.Arg, "pc": e.PC})
		case KindWatch:
			rw := "read"
			if e.Arg2 != 0 {
				rw = "write"
			}
			instant("watch-"+rw, e, map[string]any{"addr": e.Arg, "pc": e.PC})
		case KindSleep:
			instant("sleep", e, map[string]any{"wake_at": e.Arg})
		case KindWake:
			instant("wake", e, nil)
		case KindInterrupt:
			instant("interrupt", e, map[string]any{"vector": e.Arg})
		case KindHalt:
			endRun(e.Cycle)
			instant("halt: "+e.Detail, e, nil)
		case KindBudget:
			instant("budget-exhausted", e, map[string]any{"limit": e.Arg})
		}
	}
	endRun(lastC)
	open := make([]int32, 0, len(trapOpen))
	for task := range trapOpen {
		open = append(open, task)
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
	for _, task := range open {
		// An unpaired enter at stream end (budget expired mid-service).
		enter := trapOpen[task]
		slice("ktrap:"+svcName(enter.Arg), task, enter.Cycle, lastC, nil)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

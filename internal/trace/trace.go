// Package trace is the cycle-stamped event subsystem of the SenSmart
// reproduction. The MCU simulator and the kernel emit typed events into a
// Recorder — interrupts, KTRAP entry/exit per service, context switches,
// stack relocations, memory faults, task lifecycle — each stamped with the
// simulated cycle counter, so every timeline claim of the paper (10 ms
// slices, 1-in-256 branch traps, Table II service costs) can be asserted
// against the recorded stream instead of eyeballed from log lines.
//
// The recorder is attached through a nil-checked pointer: with no recorder
// the emitting code performs a single pointer comparison and allocates
// nothing, so tracing costs nothing when disabled. Events are plain values;
// recording allocates only the backing slice.
//
// On top of the raw stream the package provides a Chrome trace_event JSON
// exporter (chrome.go; load the file in chrome://tracing or Perfetto) and
// the Metrics snapshot types the kernel aggregates into (metrics.go).
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The Arg/Arg2 columns are kind-specific; Task is the task id
// the event concerns, or -1 for machine- or kernel-global events.
const (
	// KindBoot marks kernel boot; Arg is the system-initialization cycle
	// cost charged (Table II).
	KindBoot Kind = iota + 1
	// KindProgLoad records a naturalized program placed in flash; Arg is
	// the flash base word address, Arg2 the image size in words, Detail the
	// program name.
	KindProgLoad
	// KindTaskSpawn records task admission; Arg is the region base address,
	// Arg2 the region size in bytes, Detail the task name.
	KindTaskSpawn
	// KindTaskExit records task termination; Arg is the stack high-water
	// mark, Detail the exit reason.
	KindTaskExit
	// KindSwitch records a context switch (stamped after the switch cost is
	// charged); Task is the task switched in, Arg the previous task id + 1
	// (0 = none), Arg2 the cycles charged for the switch.
	KindSwitch
	// KindPreempt records a time-slice preemption decision for Task.
	KindPreempt
	// KindSliceCheck records a branch-interval counter expiry: one out of
	// BranchInterval backward branches reaches the scheduler check.
	KindSliceCheck
	// KindTrapEnter records KTRAP service entry; Arg is the service class,
	// Arg2 is 1 for a backward branch (preemption-counted), else 0.
	KindTrapEnter
	// KindTrapExit records KTRAP service exit; Arg is the service class,
	// Arg2 the cycles the service charged (the clock delta to the matching
	// KindTrapEnter decomposes into this plus any relocation / switch /
	// idle events recorded in between).
	KindTrapExit
	// KindReloc records a stack relocation growing Task's stack; Arg is the
	// bytes granted, Arg2 the cycles charged (fixed cost plus copies).
	KindReloc
	// KindRelease records region compaction after a task exit; Arg is the
	// region bytes freed, Arg2 the compaction cycles charged.
	KindRelease
	// KindMemFault records a memory-isolation violation; Arg is the
	// offending address.
	KindMemFault
	// KindSleep records a task entering the sleep state; Arg is the wake
	// cycle.
	KindSleep
	// KindWake records a sleeping task becoming ready again.
	KindWake
	// KindIdle records the CPU idling (no runnable task); Arg is the idle
	// cycles advanced, and the stamp is the cycle after the advance.
	KindIdle
	// KindInterrupt records hardware interrupt delivery; Arg is the vector
	// word address.
	KindInterrupt
	// KindHalt records the machine halting; Detail is the halt note.
	KindHalt
	// KindBudget records an execution budget expiring: Run returned because
	// the instruction/cycle budget (Arg) was exhausted, not because the
	// workload finished.
	KindBudget
	// KindWatch records a watchpoint hit: a watched logical data address was
	// touched. Arg is the logical address, Arg2 is 1 for a write and 0 for a
	// read, PC is the instruction site, and Detail carries the symbolized
	// site when a symbolizer is attached.
	KindWatch
	// KindPower records a device power-state transition observed by the
	// energy meter: Arg is the device (see the Power* constants), Arg2 is 1
	// when the device becomes busy and 0 when it goes idle. Emitted only
	// when a recorder AND an energy meter are both attached, so untraced and
	// unmetered runs keep byte-identical streams.
	KindPower
)

// Power* identify the device of a KindPower event (its Arg field).
const (
	PowerRadio uint64 = iota + 1
	PowerUART
	PowerADC
	PowerTimer
)

// powerDevice renders a KindPower Arg.
func powerDevice(arg uint64) string {
	switch arg {
	case PowerRadio:
		return "radio"
	case PowerUART:
		return "uart"
	case PowerADC:
		return "adc"
	case PowerTimer:
		return "timer"
	}
	return fmt.Sprintf("device(%d)", arg)
}

func (k Kind) String() string {
	switch k {
	case KindBoot:
		return "boot"
	case KindProgLoad:
		return "prog-load"
	case KindTaskSpawn:
		return "task-spawn"
	case KindTaskExit:
		return "task-exit"
	case KindSwitch:
		return "switch"
	case KindPreempt:
		return "preempt"
	case KindSliceCheck:
		return "slice-check"
	case KindTrapEnter:
		return "trap-enter"
	case KindTrapExit:
		return "trap-exit"
	case KindReloc:
		return "reloc"
	case KindRelease:
		return "release"
	case KindMemFault:
		return "mem-fault"
	case KindSleep:
		return "sleep"
	case KindWake:
		return "wake"
	case KindIdle:
		return "idle"
	case KindInterrupt:
		return "interrupt"
	case KindHalt:
		return "halt"
	case KindBudget:
		return "budget"
	case KindWatch:
		return "watch"
	case KindPower:
		return "power"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one cycle-stamped occurrence on the simulated timeline.
type Event struct {
	// Cycle is the simulated cycle counter at the stamp point.
	Cycle uint64
	// Kind classifies the event; see the Kind constants for the meaning of
	// the remaining fields per kind.
	Kind Kind
	// Task is the task id the event concerns, or -1.
	Task int32
	// Arg and Arg2 are kind-specific payloads.
	Arg, Arg2 uint64
	// PC is the flash word address of the instruction the event concerns
	// (trap enter, memory fault, watchpoint hit), or 0 when not applicable.
	// A symbolizer (internal/profile) maps it back to a function name.
	PC uint32
	// Detail is a kind-specific human string (task name, exit reason, halt
	// note). Only lifecycle events carry one, so the hot kinds stay
	// allocation-free.
	Detail string
}

// Format renders the event as one human-readable line. name resolves a task
// id to its display name; pass nil to print raw ids.
func (e Event) Format(name func(int32) string) string {
	who := ""
	if e.Task >= 0 {
		if name != nil {
			who = name(e.Task)
		} else {
			who = fmt.Sprintf("task%d", e.Task)
		}
	}
	switch e.Kind {
	case KindBoot:
		return fmt.Sprintf("[%d] boot (%d init cycles)", e.Cycle, e.Arg)
	case KindProgLoad:
		return fmt.Sprintf("[%d] loaded %s at %#x (%d words)", e.Cycle, e.Detail, e.Arg, e.Arg2)
	case KindTaskSpawn:
		return fmt.Sprintf("[%d] admitted task %s: region [%#x,%#x)", e.Cycle, e.Detail, e.Arg, e.Arg+e.Arg2)
	case KindTaskExit:
		return fmt.Sprintf("[%d] task %s terminated: %s (stack peak %dB)", e.Cycle, who, e.Detail, e.Arg)
	case KindSwitch:
		from := "idle"
		if e.Arg > 0 {
			if name != nil {
				from = name(int32(e.Arg - 1))
			} else {
				from = fmt.Sprintf("task%d", e.Arg-1)
			}
		}
		return fmt.Sprintf("[%d] switch %s -> %s (%d cycles)", e.Cycle, from, who, e.Arg2)
	case KindPreempt:
		return fmt.Sprintf("[%d] preempt %s", e.Cycle, who)
	case KindSliceCheck:
		return fmt.Sprintf("[%d] slice check %s", e.Cycle, who)
	case KindTrapEnter:
		return fmt.Sprintf("[%d] ktrap enter %s class=%d", e.Cycle, who, e.Arg)
	case KindTrapExit:
		return fmt.Sprintf("[%d] ktrap exit %s class=%d charged=%d", e.Cycle, who, e.Arg, e.Arg2)
	case KindReloc:
		s := fmt.Sprintf("[%d] reloc %s +%d bytes (%d cycles)", e.Cycle, who, e.Arg, e.Arg2)
		if e.Detail != "" {
			s += " " + e.Detail
		}
		return s
	case KindRelease:
		return fmt.Sprintf("[%d] release %s region %dB (%d compaction cycles)", e.Cycle, who, e.Arg, e.Arg2)
	case KindMemFault:
		s := fmt.Sprintf("[%d] memory fault %s addr=%#x pc=%#x", e.Cycle, who, e.Arg, e.PC)
		if e.Detail != "" {
			s += " in " + e.Detail
		}
		return s
	case KindSleep:
		return fmt.Sprintf("[%d] sleep %s until %d", e.Cycle, who, e.Arg)
	case KindWake:
		return fmt.Sprintf("[%d] wake %s", e.Cycle, who)
	case KindIdle:
		return fmt.Sprintf("[%d] idle %d cycles", e.Cycle, e.Arg)
	case KindInterrupt:
		return fmt.Sprintf("[%d] interrupt vector %#x", e.Cycle, e.Arg)
	case KindHalt:
		return fmt.Sprintf("[%d] halt: %s", e.Cycle, e.Detail)
	case KindBudget:
		return fmt.Sprintf("[%d] budget %d exhausted", e.Cycle, e.Arg)
	case KindWatch:
		rw := "read"
		if e.Arg2 != 0 {
			rw = "write"
		}
		s := fmt.Sprintf("[%d] watch %s %s addr=%#x pc=%#x", e.Cycle, who, rw, e.Arg, e.PC)
		if e.Detail != "" {
			s += " in " + e.Detail
		}
		return s
	case KindPower:
		state := "idle"
		if e.Arg2 != 0 {
			state = "busy"
		}
		return fmt.Sprintf("[%d] power %s -> %s", e.Cycle, powerDevice(e.Arg), state)
	}
	return fmt.Sprintf("[%d] %s task=%d arg=%d arg2=%d %s", e.Cycle, e.Kind, e.Task, e.Arg, e.Arg2, e.Detail)
}

// Recorder collects events in emission order. The zero value records with
// no bound; New returns one ready to use. A nil *Recorder is the disabled
// state: emitters must nil-check before calling Emit (the kernel and MCU
// do), which keeps the hot path to one pointer comparison.
type Recorder struct {
	// Limit caps retained events (0 = unbounded). Once full, further events
	// are counted in Dropped instead of retained, so a runaway trace
	// degrades to a truncated one instead of exhausting memory.
	Limit int

	events  []Event
	dropped uint64
}

// New returns an empty unbounded recorder.
func New() *Recorder { return &Recorder{} }

// NewLimited returns a recorder retaining at most limit events.
func NewLimited(limit int) *Recorder { return &Recorder{Limit: limit} }

// Emit appends one event.
func (r *Recorder) Emit(ev Event) {
	if r.Limit > 0 && len(r.events) >= r.Limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded stream in emission order. The slice is the
// recorder's backing store; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events the Limit discarded.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Reset discards all recorded events (the Limit is kept).
func (r *Recorder) Reset() { r.events = r.events[:0]; r.dropped = 0 }

// Encode renders the stream as a canonical text dump, one event per line —
// the byte-identical form the determinism tests compare.
func (r *Recorder) Encode() []byte {
	var b strings.Builder
	for _, e := range r.events {
		fmt.Fprintf(&b, "%d %d %d %d %d %d %q\n", e.Cycle, uint8(e.Kind), e.Task, e.Arg, e.Arg2, e.PC, e.Detail)
	}
	return []byte(b.String())
}

// TaskNames derives the id-to-name table from the spawn events in the
// stream — the exporter and Logf adapter use it so no side-channel name
// registry is needed.
func TaskNames(events []Event) map[int32]string {
	names := make(map[int32]string)
	for _, e := range events {
		if e.Kind == KindTaskSpawn && e.Task >= 0 {
			names[e.Task] = e.Detail
		}
	}
	return names
}

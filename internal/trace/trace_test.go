package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderEmitAndEncode(t *testing.T) {
	r := New()
	r.Emit(Event{Cycle: 10, Kind: KindBoot, Task: -1, Arg: 5738})
	r.Emit(Event{Cycle: 20, Kind: KindTaskSpawn, Task: 0, Arg: 0x200, Arg2: 512, Detail: "blink"})
	r.Emit(Event{Cycle: 30, Kind: KindSwitch, Task: 0, Arg: 0, Arg2: 2298})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	enc := r.Encode()
	want := "10 1 -1 5738 0 0 \"\"\n20 3 0 512 512 0 \"blink\"\n30 5 0 0 2298 0 \"\"\n"
	// Arg of the spawn line is 0x200 = 512.
	if string(enc) != want {
		t.Fatalf("Encode:\n%s\nwant:\n%s", enc, want)
	}
	r2 := New()
	for _, e := range r.Events() {
		r2.Emit(e)
	}
	if !bytes.Equal(r.Encode(), r2.Encode()) {
		t.Fatal("replayed stream encodes differently")
	}
	r.Reset()
	if r.Len() != 0 || len(r.Encode()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewLimited(2)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: uint64(i), Kind: KindSliceCheck})
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	// The disabled state is a nil pointer; emitters nil-check. This test
	// pins the idiom used across mcu/kernel.
	var r *Recorder
	if r != nil {
		t.Fatal("nil recorder must compare nil")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if r != nil {
			r.Emit(Event{})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %v times", allocs)
	}
}

func TestTaskNames(t *testing.T) {
	events := []Event{
		{Kind: KindTaskSpawn, Task: 0, Detail: "alpha"},
		{Kind: KindTaskSpawn, Task: 1, Detail: "beta"},
		{Kind: KindTaskExit, Task: 0, Detail: "exit"},
	}
	names := TaskNames(events)
	if names[0] != "alpha" || names[1] != "beta" || len(names) != 2 {
		t.Fatalf("TaskNames = %v", names)
	}
}

func TestEventFormat(t *testing.T) {
	name := func(id int32) string { return map[int32]string{0: "alpha", 1: "beta"}[id] }
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Cycle: 1, Kind: KindBoot, Task: -1, Arg: 5738}, "[1] boot (5738 init cycles)"},
		{Event{Cycle: 2, Kind: KindSwitch, Task: 1, Arg: 1, Arg2: 2298}, "[2] switch alpha -> beta (2298 cycles)"},
		{Event{Cycle: 3, Kind: KindSwitch, Task: 0, Arg: 0, Arg2: 2298}, "[3] switch idle -> alpha (2298 cycles)"},
		{Event{Cycle: 4, Kind: KindTrapExit, Task: 0, Arg: 5, Arg2: 30}, "[4] ktrap exit alpha class=5 charged=30"},
		{Event{Cycle: 5, Kind: KindIdle, Task: -1, Arg: 100}, "[5] idle 100 cycles"},
		{Event{Cycle: 6, Kind: KindHalt, Task: -1, Detail: "all tasks exited"}, "[6] halt: all tasks exited"},
	}
	for _, c := range cases {
		if got := c.e.Format(name); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.e.Kind, got, c.want)
		}
	}
	// nil resolver prints raw ids and must not panic.
	got := Event{Cycle: 7, Kind: KindPreempt, Task: 2}.Format(nil)
	if got != "[7] preempt task2" {
		t.Errorf("Format(nil) = %q", got)
	}
}

func TestKindString(t *testing.T) {
	for k := KindBoot; k <= KindWatch; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has no name", uint8(k))
		}
	}
	if s := Kind(200).String(); s != "kind(200)" {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: KindBoot, Task: -1, Arg: 5738},
		{Cycle: 10, Kind: KindTaskSpawn, Task: 0, Arg: 0x200, Arg2: 512, Detail: "alpha"},
		{Cycle: 20, Kind: KindTaskSpawn, Task: 1, Arg: 0x400, Arg2: 512, Detail: "beta"},
		{Cycle: 100, Kind: KindSwitch, Task: 0, Arg: 0, Arg2: 2298},
		{Cycle: 200, Kind: KindTrapEnter, Task: 0, Arg: 1},
		{Cycle: 230, Kind: KindTrapExit, Task: 0, Arg: 1, Arg2: 29},
		{Cycle: 300, Kind: KindSwitch, Task: 1, Arg: 1, Arg2: 2298},
		{Cycle: 350, Kind: KindReloc, Task: 1, Arg: 64, Arg2: 2710},
		{Cycle: 400, Kind: KindTaskExit, Task: 1, Arg: 77, Detail: "exit syscall"},
		{Cycle: 420, Kind: KindIdle, Task: -1, Arg: 20},
		{Cycle: 500, Kind: KindHalt, Task: -1, Detail: "done"},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, ChromeOptions{ClockHz: 1e6, ServiceName: func(c uint64) string { return "branch" }}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var gotRunning, gotKtrap, gotIdle, gotThreadNames int
	for _, e := range file.TraceEvents {
		switch {
		case e.Name == "running" && e.Phase == "X":
			gotRunning++
			if e.TID == 0 {
				t.Error("running slice on kernel tid")
			}
		case e.Name == "ktrap:branch" && e.Phase == "X":
			gotKtrap++
			// 30 cycles at 1 MHz = 30 us.
			if e.TS != 200 || e.Dur != 30 {
				t.Errorf("ktrap slice ts=%v dur=%v, want 200/30", e.TS, e.Dur)
			}
		case e.Name == "idle" && e.Phase == "X":
			gotIdle++
			if e.TS != 400 || e.Dur != 20 {
				t.Errorf("idle slice ts=%v dur=%v, want 400/20", e.TS, e.Dur)
			}
		case e.Name == "thread_name":
			gotThreadNames++
		}
	}
	// alpha runs 100->300, beta 300->400 (closed by its exit).
	if gotRunning != 2 {
		t.Errorf("running slices = %d, want 2", gotRunning)
	}
	if gotKtrap != 1 {
		t.Errorf("ktrap slices = %d, want 1", gotKtrap)
	}
	if gotIdle != 1 {
		t.Errorf("idle slices = %d, want 1", gotIdle)
	}
	if gotThreadNames != 3 { // kernel + 2 tasks
		t.Errorf("thread_name metadata = %d, want 3", gotThreadNames)
	}

	// Export is deterministic byte-for-byte.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, events, ChromeOptions{ClockHz: 1e6, ServiceName: func(c uint64) string { return "branch" }}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteChrome output is not deterministic")
	}
}

func TestWriteChromeUnpairedTrap(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: KindTaskSpawn, Task: 0, Detail: "alpha"},
		{Cycle: 100, Kind: KindSwitch, Task: 0},
		{Cycle: 200, Kind: KindTrapEnter, Task: 0, Arg: 4},
		{Cycle: 250, Kind: KindBudget, Task: -1, Arg: 250},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, ChromeOptions{ClockHz: 1e6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ktrap:class4") {
		t.Error("unpaired trap enter not closed at stream end")
	}
}

func TestMetricsRender(t *testing.T) {
	m := &Metrics{
		TotalCycles: 1000, IdleCycles: 100, KernelCycles: 300, AppCycles: 600,
		ServiceOverheadCycles: 150, SwitchCycles: 100, RelocCycles: 30, BootCycles: 20,
		ContextSwitches: 4, Preemptions: 2, SliceChecks: 8, BranchTraps: 2048,
		Relocations: 1, RelocatedBytes: 64, Terminations: 2,
		Services: []ServiceMetrics{{Class: 1, Name: "branch", Calls: 2048, Cycles: 6144, Overhead: 4096}},
		Tasks: []TaskMetrics{{
			ID: 0, Name: "alpha", State: "terminated", ExitReason: "exit syscall",
			RunCycles: 500, KernelCycles: 120, AppCycles: 380, Utilization: 0.55,
			Traps: 1024, StackPeak: 77, StackAlloc: 128, Relocations: 1,
		}},
		Events: 42,
	}
	if got := m.OverheadRatio(); got < 0.333 || got > 0.334 {
		t.Errorf("OverheadRatio = %v", got)
	}
	out := m.Render()
	for _, want := range []string{"1000 cycles total", "branch", "alpha", "terminated: exit syscall", "42 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	empty := &Metrics{}
	if empty.OverheadRatio() != 0 {
		t.Error("zero-cycle OverheadRatio should be 0")
	}
}

func TestSortServices(t *testing.T) {
	s := []ServiceMetrics{{Class: 9}, {Class: 1}, {Class: 4}}
	SortServices(s)
	if s[0].Class != 1 || s[1].Class != 4 || s[2].Class != 9 {
		t.Fatalf("SortServices = %v", s)
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCaptureRestoreState(t *testing.T) {
	r := NewLimited(3)
	r.Emit(Event{Cycle: 1, Kind: KindBoot, Task: -1, Arg: 5738})
	r.Emit(Event{Cycle: 2, Kind: KindPower, Task: -1, Arg: PowerRadio, Arg2: 1})
	r.Emit(Event{Cycle: 3, Kind: KindIdle, Task: -1, Arg: 100})
	r.Emit(Event{Cycle: 4, Kind: KindHalt, Task: -1, Detail: "over limit"})

	st := r.CaptureState()
	if st.Limit != 3 || len(st.Events) != 3 || st.Dropped != 1 {
		t.Fatalf("captured state = limit %d, %d events, %d dropped", st.Limit, len(st.Events), st.Dropped)
	}

	r2 := New()
	r2.RestoreState(st)
	if !bytes.Equal(r.Encode(), r2.Encode()) {
		t.Fatal("restored recorder encodes differently")
	}
	if r2.Limit != 3 || r2.Dropped() != 1 {
		t.Fatalf("restored recorder = limit %d, dropped %d", r2.Limit, r2.Dropped())
	}

	// No aliasing in either direction: scribbling the state must not change
	// the restored recorder, and continued emission must not change the state.
	st.Events[0].Detail = "scribbled"
	if strings.Contains(string(r2.Encode()), "scribbled") {
		t.Fatal("restored recorder aliases the state slice")
	}
	r.Emit(Event{Cycle: 5, Kind: KindBudget})
	if st2 := r.CaptureState(); len(st2.Events) != 3 {
		t.Fatalf("limited recorder retained %d events", len(st2.Events))
	}
}

// TestFormatAllKinds drives Format over one event of every kind, with and
// without a name resolver, pinning that no kind falls through to the raw
// fallback line.
func TestFormatAllKinds(t *testing.T) {
	name := func(id int32) string { return "taskname" }
	events := []Event{
		{Kind: KindBoot, Task: -1, Arg: 5738},
		{Kind: KindProgLoad, Task: -1, Arg: 0x100, Arg2: 64, Detail: "blink"},
		{Kind: KindTaskSpawn, Task: 0, Arg: 0x200, Arg2: 512, Detail: "blink#0"},
		{Kind: KindTaskExit, Task: 0, Arg: 96, Detail: "done"},
		{Kind: KindSwitch, Task: 1, Arg: 1, Arg2: 2298},
		{Kind: KindSwitch, Task: 1, Arg: 0, Arg2: 2298}, // from idle
		{Kind: KindPreempt, Task: 1},
		{Kind: KindSliceCheck, Task: 1},
		{Kind: KindTrapEnter, Task: 0, Arg: 3},
		{Kind: KindTrapExit, Task: 0, Arg: 3, Arg2: 80},
		{Kind: KindReloc, Task: 0, Arg: 64, Arg2: 2326, Detail: "grow"},
		{Kind: KindRelease, Task: 0, Arg: 512, Arg2: 100},
		{Kind: KindMemFault, Task: 0, Arg: 0x10FE, PC: 0x44, Detail: "main"},
		{Kind: KindSleep, Task: 0, Arg: 9000},
		{Kind: KindWake, Task: 0},
		{Kind: KindIdle, Task: -1, Arg: 4096},
		{Kind: KindInterrupt, Task: -1, Arg: 2},
		{Kind: KindHalt, Task: -1, Detail: "workload complete"},
		{Kind: KindBudget, Task: -1, Arg: 1 << 30},
		{Kind: KindWatch, Task: 0, Arg: 0x310, Arg2: 1, PC: 0x20, Detail: "main"},
		{Kind: KindWatch, Task: 0, Arg: 0x310, Arg2: 0, PC: 0x20},
		{Kind: KindPower, Task: -1, Arg: PowerRadio, Arg2: 1},
		{Kind: KindPower, Task: -1, Arg: PowerUART, Arg2: 0},
		{Kind: KindPower, Task: -1, Arg: PowerADC, Arg2: 1},
		{Kind: KindPower, Task: -1, Arg: PowerTimer, Arg2: 0},
	}
	for _, e := range events {
		for _, resolver := range []func(int32) string{name, nil} {
			line := e.Format(resolver)
			if line == "" {
				t.Errorf("%s: empty format", e.Kind)
			}
			if strings.Contains(line, "arg2=") {
				t.Errorf("%s fell through to the raw fallback: %s", e.Kind, line)
			}
		}
	}
	// The fallback line still renders for an unknown kind.
	raw := Event{Kind: Kind(200), Task: 3, Arg: 1, Arg2: 2}.Format(nil)
	if !strings.Contains(raw, "kind(200)") {
		t.Errorf("unknown kind fallback = %q", raw)
	}
}

func TestPowerFormatNames(t *testing.T) {
	cases := []struct {
		arg  uint64
		want string
	}{
		{PowerRadio, "radio"},
		{PowerUART, "uart"},
		{PowerADC, "adc"},
		{PowerTimer, "timer"},
		{99, "device(99)"},
	}
	for _, tc := range cases {
		line := Event{Kind: KindPower, Arg: tc.arg, Arg2: 1}.Format(nil)
		if !strings.Contains(line, tc.want) {
			t.Errorf("power arg %d formats to %q, want it to contain %q", tc.arg, line, tc.want)
		}
	}
	if KindPower.String() != "power" {
		t.Errorf("KindPower.String() = %q", KindPower.String())
	}
}

// TestMetricsRenderEnergy: the energy section renders only when the
// breakdown is present, so unmetered runs keep byte-identical output.
func TestMetricsRenderEnergy(t *testing.T) {
	m := &Metrics{
		TotalCycles: 1000, IdleCycles: 100, KernelCycles: 200, AppCycles: 700,
		Services: []ServiceMetrics{{Class: 1, Name: "direct-io", Calls: 4, Cycles: 8, Overhead: 8, EnergyPJ: 26040}},
		Tasks:    []TaskMetrics{{ID: 0, Name: "blink#0", State: "ready", RunCycles: 900, EnergyPJ: 2929500}},
	}
	plain := m.Render()
	if strings.Contains(plain, "energy") {
		t.Fatalf("unmetered render mentions energy:\n%s", plain)
	}
	m.Energy = &EnergyMetrics{
		TotalPJ: 3000000, CPUActivePJ: 2929500, CPUSleepPJ: 600,
		RadioPJ: 42186240, RadioBytes: 1, UARTBytes: 2, ADCConversions: 3,
	}
	metered := m.Render()
	for _, want := range []string{"energy: 3000000 pJ total", "radio 42186240", "energy=2929500 pJ", "26040 pJ", "1 radio bytes, 2 uart bytes, 3 adc conversions"} {
		if !strings.Contains(metered, want) {
			t.Errorf("metered render missing %q:\n%s", want, metered)
		}
	}
}

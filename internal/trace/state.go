package trace

// RecorderState is the serializable state of a Recorder: the retained event
// stream plus the drop ledger, so a restored run's final trace is
// byte-identical to an uninterrupted one.
type RecorderState struct {
	Limit   int
	Events  []Event
	Dropped uint64
}

// CaptureState snapshots the recorder. The event slice is copied, so the
// state stays valid while the recorder keeps appending.
func (r *Recorder) CaptureState() *RecorderState {
	return &RecorderState{
		Limit:   r.Limit,
		Events:  append([]Event(nil), r.events...),
		Dropped: r.dropped,
	}
}

// RestoreState replaces the recorder's contents with a captured state,
// copying the event slice so recorder and state never alias.
func (r *Recorder) RestoreState(st *RecorderState) {
	r.Limit = st.Limit
	r.events = append([]Event(nil), st.Events...)
	r.dropped = st.Dropped
}

package trace

import (
	"fmt"
	"sort"
	"strings"
)

// ServiceMetrics aggregates one KTRAP service class.
type ServiceMetrics struct {
	// Class is the rewriter service class id; Name its display name.
	Class int
	Name  string
	// Calls is how many traps dispatched to the service.
	Calls uint64
	// Cycles is the total cycles charged inside the service (the sum of
	// the trap-window clock deltas, net of relocation/switch/idle charges).
	Cycles uint64
	// Overhead is the kernel-overhead portion of Cycles: what the service
	// cost beyond the patched instructions' native execution.
	Overhead uint64
	// EnergyPJ is the CPU energy the service's cycles cost, in picojoules.
	// Zero unless an energy meter was attached.
	EnergyPJ uint64
}

// EnergyMetrics is the per-device joules breakdown included in a Metrics
// snapshot when an energy meter was attached (nil otherwise, so unmetered
// renders stay byte-identical). All values are integer picojoules.
type EnergyMetrics struct {
	TotalPJ         uint64
	CPUActivePJ     uint64
	CPUSleepPJ      uint64
	RadioPJ         uint64
	UARTPJ          uint64
	ADCPJ           uint64
	TimerPJ         uint64
	RadioBytes      uint64
	UARTBytes       uint64
	ADCConversions  uint64
	CPUActiveCycles uint64
	CPUSleepCycles  uint64
}

// TaskMetrics aggregates one task's timeline.
type TaskMetrics struct {
	ID    int
	Name  string
	State string
	// ExitReason is set for terminated tasks.
	ExitReason string
	// Switches counts times the task was scheduled in.
	Switches int
	// RunCycles is the wall-clock cycles the task held the CPU (including
	// kernel service time spent on its behalf).
	RunCycles uint64
	// KernelCycles is the kernel-overhead portion of RunCycles.
	KernelCycles uint64
	// AppCycles is RunCycles minus KernelCycles: cycles doing the task's
	// own work (native-equivalent instruction execution).
	AppCycles uint64
	// Utilization is RunCycles over the system's busy (non-idle) cycles.
	Utilization float64
	// Traps counts KTRAP services the task invoked, total and by service.
	Traps     uint64
	ByService []ServiceMetrics
	// EnergyPJ is the CPU energy attributed to the task (RunCycles at the
	// active-draw coefficient), in picojoules. Zero unless an energy meter
	// was attached.
	EnergyPJ uint64
	// StackPeak is the stack high-water mark; StackAlloc the allocated
	// stack bytes at snapshot time.
	StackPeak  uint16
	StackAlloc uint16
	// Relocations counts stack relocations the task triggered.
	Relocations int
}

// Metrics is the aggregation snapshot the kernel exports: per-task slice
// utilization and overhead attribution, per-service trap counts and cycle
// costs, and the system-wide kernel-vs-application cycle split.
type Metrics struct {
	// TotalCycles and IdleCycles mirror the machine clock.
	TotalCycles uint64
	IdleCycles  uint64
	// KernelCycles is every cycle attributed to the kernel: service
	// overheads, context switches, stack relocations/compaction, and boot.
	KernelCycles uint64
	// AppCycles is TotalCycles - IdleCycles - KernelCycles.
	AppCycles uint64
	// Component breakdown of KernelCycles.
	ServiceOverheadCycles uint64
	SwitchCycles          uint64
	RelocCycles           uint64
	BootCycles            uint64
	// Scheduler counters.
	ContextSwitches int
	Preemptions     int
	SliceChecks     uint64
	BranchTraps     uint64
	Relocations     int
	RelocatedBytes  uint64
	Terminations    int
	// Services aggregates trap activity by service class, sorted by class.
	Services []ServiceMetrics
	// Tasks aggregates per-task metrics, sorted by task id.
	Tasks []TaskMetrics
	// Events/DroppedEvents describe the attached recorder, when tracing was
	// enabled (both zero otherwise).
	Events        int
	DroppedEvents uint64
	// Energy is the per-device joules breakdown, non-nil only when an energy
	// meter was attached (internal/energy).
	Energy *EnergyMetrics
}

// OverheadRatio returns KernelCycles over busy (non-idle) cycles.
func (m *Metrics) OverheadRatio() float64 {
	busy := m.TotalCycles - m.IdleCycles
	if busy == 0 {
		return 0
	}
	return float64(m.KernelCycles) / float64(busy)
}

// Render formats the snapshot as aligned human-readable text.
func (m *Metrics) Render() string {
	var b strings.Builder
	busy := m.TotalCycles - m.IdleCycles
	fmt.Fprintf(&b, "metrics: %d cycles total, %d idle, %d busy\n", m.TotalCycles, m.IdleCycles, busy)
	fmt.Fprintf(&b, "  kernel %d cycles (%.1f%% of busy): services %d, switches %d, relocation %d, boot %d\n",
		m.KernelCycles, 100*m.OverheadRatio(),
		m.ServiceOverheadCycles, m.SwitchCycles, m.RelocCycles, m.BootCycles)
	fmt.Fprintf(&b, "  app %d cycles; switches=%d preemptions=%d slice-checks=%d branch-traps=%d relocations=%d (%dB) terminations=%d\n",
		m.AppCycles, m.ContextSwitches, m.Preemptions, m.SliceChecks,
		m.BranchTraps, m.Relocations, m.RelocatedBytes, m.Terminations)
	if m.Events > 0 || m.DroppedEvents > 0 {
		fmt.Fprintf(&b, "  trace: %d events recorded, %d dropped\n", m.Events, m.DroppedEvents)
	}
	if e := m.Energy; e != nil {
		fmt.Fprintf(&b, "  energy: %d pJ total (cpu-active %d, cpu-sleep %d, radio %d, uart %d, adc %d, timer %d)\n",
			e.TotalPJ, e.CPUActivePJ, e.CPUSleepPJ, e.RadioPJ, e.UARTPJ, e.ADCPJ, e.TimerPJ)
		fmt.Fprintf(&b, "  energy devices: %d radio bytes, %d uart bytes, %d adc conversions\n",
			e.RadioBytes, e.UARTBytes, e.ADCConversions)
	}
	if len(m.Services) > 0 {
		fmt.Fprintf(&b, "  %-14s %10s %12s %12s\n", "service", "calls", "cycles", "overhead")
		for _, s := range m.Services {
			fmt.Fprintf(&b, "  %-14s %10d %12d %12d\n", s.Name, s.Calls, s.Cycles, s.Overhead)
			if m.Energy != nil {
				fmt.Fprintf(&b, "  %-14s %10s %12s %12d pJ\n", "", "", "", s.EnergyPJ)
			}
		}
	}
	for _, t := range m.Tasks {
		status := t.State
		if t.ExitReason != "" {
			status += ": " + t.ExitReason
		}
		fmt.Fprintf(&b, "  task %-16s %-28s run=%d app=%d kernel=%d util=%.1f%% traps=%d stack peak=%dB alloc=%dB relocs=%d\n",
			t.Name, status, t.RunCycles, t.AppCycles, t.KernelCycles,
			100*t.Utilization, t.Traps, t.StackPeak, t.StackAlloc, t.Relocations)
		if m.Energy != nil {
			fmt.Fprintf(&b, "  task %-16s energy=%d pJ\n", t.Name, t.EnergyPJ)
		}
	}
	return b.String()
}

// SortServices orders a service slice by class id (stable, deterministic
// output for any map-built input).
func SortServices(s []ServiceMetrics) {
	sort.Slice(s, func(i, j int) bool { return s[i].Class < s[j].Class })
}

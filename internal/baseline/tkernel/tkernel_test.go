package tkernel

import (
	"testing"

	"repro/internal/mcu"
	"repro/internal/minic"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

func TestTKernelRunsKernelBenchmarksCorrectly(t *testing.T) {
	// Cross-validate against the native run: the t-kernel-naturalized
	// program must compute the same results.
	prog := progs.LFSR(2000)
	native, err := progs.RunNative(prog.Clone(), 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, _ := progs.HeapWord(native.Machine, prog, "out")

	img, err := Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	rt, err := NewRuntime(m, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if !rt.Exited() {
		t.Fatal("did not exit")
	}
	sym, _ := img.Nat.Program.Lookup("out")
	got := uint16(m.Peek(uint16(sym.Addr))) | uint16(m.Peek(uint16(sym.Addr)+1))<<8
	if got != wantOut {
		t.Errorf("t-kernel lfsr result = %#x, native %#x", got, wantOut)
	}
	// Steady-state overhead exists but is moderate.
	if m.Cycles() <= native.Cycles {
		t.Errorf("t-kernel (%d cycles) should be slower than native (%d)", m.Cycles(), native.Cycles)
	}
	if m.Cycles() > native.Cycles*4 {
		t.Errorf("t-kernel overhead too high: %d vs native %d", m.Cycles(), native.Cycles)
	}
}

func TestTKernelInflationExceedsSenSmart(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		sens, err := rewriter.Rewrite(kb.Program, rewriter.Config{})
		if err != nil {
			t.Fatal(err)
		}
		tk, err := Naturalize(kb.Program)
		if err != nil {
			t.Fatal(err)
		}
		if tk.CodeBytes() <= sens.Program.SizeBytes() {
			t.Errorf("%s: t-kernel %d bytes should exceed SenSmart %d",
				kb.Name, tk.CodeBytes(), sens.Program.SizeBytes())
		}
	}
}

func TestTKernelWarmupAboutOneSecond(t *testing.T) {
	prog := progs.PeriodicTaskNative(progs.PeriodicParams{Instructions: 10_000, Activations: 1})
	img, err := Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	warm := img.WarmupCycles()
	// The paper reports "about one second"; accept 0.8..1.5 s.
	if warm < 6_000_000 || warm > 11_000_000 {
		t.Errorf("warmup = %d cycles (%.2f s), want ~1 s", warm, float64(warm)/mcu.ClockHz)
	}
}

func TestTKernelPeriodicWithSleep(t *testing.T) {
	p := progs.PeriodicParams{Instructions: 10_000, Activations: 5, PeriodTicks: 4096}
	prog := progs.PeriodicTaskNative(p)
	img, err := Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	rt, err := NewRuntime(m, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if !rt.Exited() {
		t.Fatal("periodic task did not finish")
	}
	sym, _ := img.Nat.Program.Lookup("done")
	done := uint16(m.Peek(uint16(sym.Addr))) | uint16(m.Peek(uint16(sym.Addr)+1))<<8
	if done != 5 {
		t.Errorf("done = %d, want 5", done)
	}
	if m.IdleCycles() == 0 {
		t.Error("sleep should idle the CPU under t-kernel")
	}
}

func TestTKernelAllBenchmarksRun(t *testing.T) {
	// Exercise every service class of the t-kernel trap handler: the seven
	// kernel benchmarks cover icall/ijmp (eventchain), lpm, SP access,
	// direct and indirect memory, branches, calls and sleep.
	for _, kb := range progs.KernelBenchmarks() {
		kb := kb
		t.Run(kb.Name, func(t *testing.T) {
			img, err := Naturalize(kb.Program)
			if err != nil {
				t.Fatal(err)
			}
			m := mcu.New()
			rt, err := NewRuntime(m, img)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Run(10_000_000_000); err != nil {
				t.Fatal(err)
			}
			if !rt.Exited() {
				t.Fatal("benchmark did not exit")
			}
			if len(rt.ServiceCalls) == 0 {
				t.Error("no service calls recorded")
			}
		})
	}
}

func TestTKernelFrameProgram(t *testing.T) {
	// avr-gcc style frames exercise the SP read/write services.
	prog, err := minic.Compile("frames", `
int out;
int helper(int a, int b) {
    int t;
    t = a * b;
    return t + 1;
}
void main() {
    out = helper(6, 7);
    exit();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Naturalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	rt, err := NewRuntime(m, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !rt.Exited() {
		t.Fatal("did not exit")
	}
	sym, _ := img.Nat.Program.Lookup("g_out")
	got := uint16(m.Peek(uint16(sym.Addr))) | uint16(m.Peek(uint16(sym.Addr)+1))<<8
	if got != 43 {
		t.Errorf("out = %d, want 43", got)
	}
	if rt.ServiceCalls[rewriter.ClassSPWrite] == 0 || rt.ServiceCalls[rewriter.ClassSPRead] == 0 {
		t.Error("SP services unused; frame setup did not go through the t-kernel")
	}
}

// Package tkernel implements the t-kernel comparison baseline (Gu &
// Stankovic, SenSys'06) at the fidelity the paper's evaluation requires:
//
//   - On-node, page-at-a-time binary rewriting with inline patch expansion:
//     no cross-site trampoline merging and no grouped-access optimization,
//     so code inflation is considerably higher than SenSmart's (Figure 4).
//   - A one-time warm-up naturalization cost of roughly one second
//     (Figure 6a); steady-state execution is cheaper than SenSmart because
//     t-kernel protects only the kernel and keeps a single shared stack
//     (Figure 5, Table I).
//   - No multi-task memory regions, no logical data addressing, and no
//     stack relocation: one application owns data memory.
//
// The baseline reuses the SenSmart rewriter's instruction classification
// (both systems patch the same instruction classes) but applies t-kernel's
// size and cycle models, documented in EXPERIMENTS.md.
package tkernel

import (
	"errors"
	"fmt"

	"repro/internal/avr"
	"repro/internal/image"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// Steady-state service overheads (cycles). t-kernel performs no data-memory
// translation, so its per-access costs are far below SenSmart's Table II
// rows; indirect program-memory translation still pays a lookup.
const (
	costBranch    = 4
	costCall      = 6
	costDirectIO  = 2
	costDirectMem = 6
	costIndMem    = 8
	costSPAccess  = 2
	costProgMem   = 200
	costSleep     = 8
	costReserved  = 2
)

// Warm-up model: the on-node rewriter naturalizes 128-instruction pages at
// boot. FixedBootCycles reflects the paper's observed ~1 s initialization
// delay (their image includes the full TinyOS runtime); PageRewriteCycles
// adds the per-page cost for the program itself.
const (
	PageInstructions  = 128
	PageRewriteCycles = 448_000
	FixedBootCycles   = 6_600_000
)

// Image is a t-kernel-naturalized program.
type Image struct {
	Nat *rewriter.Naturalized
	// InlineWords is the extra code the on-node rewriter expands inline at
	// every patch site (instead of SenSmart's merged trampolines).
	InlineWords int
	// Pages is the number of 128-instruction rewriting pages.
	Pages int
}

// Naturalize rewrites prog under the t-kernel model.
func Naturalize(prog *image.Program) (*Image, error) {
	// The on-node rewriter works one page at a time, which forecloses both
	// whole-program trampoline merging and basic-block access grouping.
	nat, err := rewriter.Rewrite(prog, rewriter.Config{
		NoGrouping:        true,
		NoTrampolineMerge: true,
	})
	if err != nil {
		return nil, err
	}
	img := &Image{Nat: nat}
	insts := 0
	for pc := uint32(0); pc < uint32(len(prog.Words)); {
		if prog.InTextData(pc) {
			pc++
			continue
		}
		in, err := avr.Decode(prog.Words[pc:])
		if err != nil {
			return nil, err
		}
		insts++
		pc += uint32(in.Words())
	}
	img.Pages = (insts + PageInstructions - 1) / PageInstructions
	// Inline expansion: every site carries its own patch body, about half
	// again the size of SenSmart's shared body (the modest page-sized
	// rewriting unit limits optimization, Section IV-A), plus dispatch glue.
	// With merging disabled, nat.Trampolines has one entry per site.
	for _, tr := range nat.Trampolines {
		img.InlineWords += tr.Words*3/2 + 3
	}
	return img, nil
}

// CodeBytes returns the naturalized code size under the t-kernel layout:
// patched code plus per-site inline expansions (t-kernel keeps no separate
// shift table; its swapping tables are folded into the inline glue).
func (img *Image) CodeBytes() int {
	return 2 * (img.Nat.CodeWords + img.InlineWords)
}

// WarmupCycles is the one-time on-node rewriting cost.
func (img *Image) WarmupCycles() uint64 {
	return FixedBootCycles + uint64(img.Pages)*PageRewriteCycles
}

// Runtime executes one t-kernel-naturalized application on a machine.
type Runtime struct {
	M   *mcu.Machine
	img *Image

	// ServiceCalls counts service invocations by class.
	ServiceCalls map[rewriter.Class]uint64
	exited       bool
}

// NewRuntime loads img at flash base 0 (t-kernel keeps the application's
// vector table in place) and attaches the runtime.
func NewRuntime(m *mcu.Machine, img *Image) (*Runtime, error) {
	r := &Runtime{M: m, img: img, ServiceCalls: make(map[rewriter.Class]uint64)}
	words := append([]uint16(nil), img.Nat.Program.Words...)
	// Base 0: relocations are identity; KTRAP ids are already local.
	if err := m.LoadFlash(0, words); err != nil {
		return nil, err
	}
	for i, b := range img.Nat.Program.DataInit {
		m.Poke(img.Nat.Program.HeapBase+uint16(i), b)
	}
	m.SetTrapHandler(r.handleTrap)
	m.SetPC(img.Nat.Program.Entry)
	return r, nil
}

// Boot charges the warm-up rewriting cost.
func (r *Runtime) Boot() {
	r.M.AddCycles(r.img.WarmupCycles())
}

// Run executes until the application exits or the cycle limit is reached.
func (r *Runtime) Run(limit uint64) error {
	err := r.M.Run(limit)
	var f *mcu.Fault
	if errors.As(err, &f) && f.Kind == mcu.FaultHalt {
		return nil
	}
	return err
}

// Exited reports whether the application reached its exit service.
func (r *Runtime) Exited() bool { return r.exited }

func (r *Runtime) handleTrap(m *mcu.Machine, id uint16) error {
	if int(id) >= len(r.img.Nat.Patches) {
		return fmt.Errorf("tkernel: unknown trap id %d at pc=%#x", id, m.PC())
	}
	p := r.img.Nat.Patches[id]
	r.ServiceCalls[p.Class]++
	charge := func(overhead int) {
		total := p.Orig.Op.BaseCycles() + overhead - 1
		if total > 0 {
			m.AddCycles(uint64(total))
		}
	}
	switch p.Class {
	case rewriter.ClassBranch:
		charge(costBranch)
		taken := true
		switch p.Orig.Op {
		case avr.OpBrbs:
			taken = m.SREG()&(1<<p.Orig.Src) != 0
		case avr.OpBrbc:
			taken = m.SREG()&(1<<p.Orig.Src) == 0
		}
		if taken {
			m.AddCycles(1)
			m.SetPC(p.NatTarget)
		} else {
			m.SetPC(p.NatNext)
		}
	case rewriter.ClassCall:
		charge(costCall)
		m.PushWord(uint16(p.NatNext))
		m.SetPC(p.NatTarget)
	case rewriter.ClassIndirectCall:
		charge(costProgMem + costCall)
		z := m.RegPair(avr.RegZ)
		m.PushWord(uint16(p.NatNext))
		m.SetPC(r.img.Nat.Shift.Map(uint32(z)))
	case rewriter.ClassIndirectJump:
		charge(costProgMem)
		m.SetPC(r.img.Nat.Shift.Map(uint32(m.RegPair(avr.RegZ))))
	case rewriter.ClassDirectIO:
		charge(costDirectIO)
		r.execDirect(p.Orig)
		m.SetPC(p.NatNext)
	case rewriter.ClassDirectMem:
		charge(costDirectMem)
		r.execDirect(p.Orig)
		m.SetPC(p.NatNext)
	case rewriter.ClassReservedIO:
		charge(costReserved)
		r.execDirect(p.Orig)
		m.SetPC(p.NatNext)
	case rewriter.ClassIndirectMem:
		r.execIndirect(p)
		m.SetPC(p.NatNext)
	case rewriter.ClassSPRead:
		charge(costSPAccess)
		sp := m.SP()
		v := byte(sp)
		if p.Orig.Imm == 0x3E { // SPH
			v = byte(sp >> 8)
		}
		m.SetReg(p.Orig.Dst, v)
		m.SetPC(p.NatNext)
	case rewriter.ClassSPWrite:
		charge(costSPAccess)
		sp := m.SP()
		v := m.Reg(p.Orig.Dst)
		if p.Orig.Imm == 0x3E {
			sp = sp&0x00FF | uint16(v)<<8
		} else {
			sp = sp&0xFF00 | uint16(v)
		}
		m.SetSP(sp)
		m.SetPC(p.NatNext)
	case rewriter.ClassSleep:
		charge(costSleep)
		m.SetPC(p.NatNext)
		m.Sleep()
	case rewriter.ClassLpm:
		charge(costProgMem)
		z := m.RegPair(avr.RegZ)
		v := m.FlashByte(r.img.Nat.Shift.MapByte(z))
		m.SetReg(p.Orig.Dst, v)
		if p.Orig.Op == avr.OpLpmZInc {
			m.SetRegPair(avr.RegZ, z+1)
		}
		m.SetPC(p.NatNext)
	case rewriter.ClassExit:
		r.exited = true
		m.Halt("application exited")
	default:
		return fmt.Errorf("tkernel: unhandled class %v", p.Class)
	}
	return nil
}

// execDirect runs an LDS/STS at its untranslated address (t-kernel keeps
// the application's addresses physical).
func (r *Runtime) execDirect(in avr.Inst) {
	if in.Op == avr.OpLds {
		r.M.SetReg(in.Dst, r.M.ReadBus(uint16(in.Imm)))
	} else {
		r.M.WriteBus(uint16(in.Imm), r.M.Reg(in.Dst))
	}
}

// execIndirect runs an indirect access run (ungrouped under t-kernel, so
// each patch holds exactly one access) at untranslated addresses.
func (r *Runtime) execIndirect(p *rewriter.Patch) {
	m := r.M
	cycles := -1
	for _, in := range p.Group {
		ptr, _ := in.PointerReg()
		v := m.RegPair(ptr)
		var (
			addr  uint16
			wb    bool
			wbVal uint16
		)
		switch in.Op {
		case avr.OpLdXInc, avr.OpLdYInc, avr.OpLdZInc,
			avr.OpStXInc, avr.OpStYInc, avr.OpStZInc:
			addr, wb, wbVal = v, true, v+1
		case avr.OpLdXDec, avr.OpLdYDec, avr.OpLdZDec,
			avr.OpStXDec, avr.OpStYDec, avr.OpStZDec:
			addr, wb, wbVal = v-1, true, v-1
		case avr.OpLddY, avr.OpLddZ, avr.OpStdY, avr.OpStdZ:
			addr = v + uint16(in.Imm)
		default:
			addr = v
		}
		if in.IsLoad() {
			m.SetReg(in.Dst, m.ReadBus(addr))
		} else {
			m.WriteBus(addr, m.Reg(in.Dst))
		}
		if wb {
			m.SetRegPair(ptr, wbVal)
		}
		cycles += in.Op.BaseCycles() + costIndMem
	}
	if cycles > 0 {
		m.AddCycles(uint64(cycles))
	}
}

// Package mate implements the Maté comparison baseline (Levis & Culler,
// ASPLOS'02): a stack-based bytecode virtual machine whose interpretation
// loop costs tens of AVR cycles per bytecode instruction. The paper's
// Figure 6(c) uses an equivalent PeriodicTask bytecode program to show the
// interpretation penalty of fully virtualized execution.
package mate

import (
	"errors"
	"fmt"
)

// Op is a bytecode opcode.
type Op byte

// The instruction set: a small operand-stack machine in Maté's style.
const (
	OpHalt  Op = iota
	OpPushc    // push the next code byte
	OpPushw    // push the next two code bytes (little endian)
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShr
	OpDup
	OpDrop
	OpLoad  // pop addr, push heap[addr]
	OpStore // pop addr, pop value, heap[addr] = value
	OpJump  // pop target
	OpBrnz  // pop target, pop cond; jump if cond != 0
	OpRand  // push a 16-bit pseudo-random value
	OpTime  // push the current clock (cycles/8, 16 bit)
	OpSleep // pop ticks; idle that many clock ticks
	OpSend  // pop a byte, transmit on the radio (timing only)
	OpDecw  // pop addr; decrement the 16-bit counter at heap[addr]; push it
)

// InterpCycles is the average interpretation cost per bytecode instruction:
// fetch, decode, bounds checks, and dispatch take roughly 33 AVR
// instructions in Maté's inner loop (~100 cycles on the ATmega128L).
const InterpCycles = 100

// HeapBytes is the VM's application heap ("shared variables" in Maté).
const HeapBytes = 256

// VM is one Maté-style interpreter instance with its own virtual clock.
type VM struct {
	Code []byte
	Heap [HeapBytes]byte

	stack []uint16
	pc    int

	// Cycles and IdleCycles mirror the mcu accounting so results are
	// comparable across systems.
	Cycles     uint64
	IdleCycles uint64
	Executed   uint64
	RadioBytes int

	seed uint16
}

// New creates a VM for the given bytecode.
func New(code []byte) *VM {
	return &VM{Code: code, seed: 0xACE1, stack: make([]uint16, 0, 32)}
}

// ErrStack reports operand-stack misuse by the bytecode program.
var ErrStack = errors.New("mate: operand stack error")

// Run interprets until OpHalt or the cycle limit; it returns nil on a clean
// halt.
func (v *VM) Run(limit uint64) error {
	for limit == 0 || v.Cycles < limit {
		if v.pc < 0 || v.pc >= len(v.Code) {
			return fmt.Errorf("mate: pc %d out of code (len %d)", v.pc, len(v.Code))
		}
		op := Op(v.Code[v.pc])
		v.pc++
		v.Cycles += InterpCycles
		v.Executed++
		switch op {
		case OpHalt:
			return nil
		case OpPushc:
			v.push(uint16(v.Code[v.pc]))
			v.pc++
		case OpPushw:
			v.push(uint16(v.Code[v.pc]) | uint16(v.Code[v.pc+1])<<8)
			v.pc += 2
		case OpAdd, OpSub, OpAnd, OpOr, OpXor:
			b, err := v.pop()
			if err != nil {
				return err
			}
			a, err := v.pop()
			if err != nil {
				return err
			}
			switch op {
			case OpAdd:
				v.push(a + b)
			case OpSub:
				v.push(a - b)
			case OpAnd:
				v.push(a & b)
			case OpOr:
				v.push(a | b)
			case OpXor:
				v.push(a ^ b)
			}
		case OpShr:
			a, err := v.pop()
			if err != nil {
				return err
			}
			v.push(a >> 1)
		case OpDup:
			a, err := v.pop()
			if err != nil {
				return err
			}
			v.push(a)
			v.push(a)
		case OpDrop:
			if _, err := v.pop(); err != nil {
				return err
			}
		case OpLoad:
			addr, err := v.pop()
			if err != nil {
				return err
			}
			v.push(uint16(v.Heap[addr%HeapBytes]))
		case OpStore:
			addr, err := v.pop()
			if err != nil {
				return err
			}
			val, err := v.pop()
			if err != nil {
				return err
			}
			v.Heap[addr%HeapBytes] = byte(val)
		case OpJump:
			t, err := v.pop()
			if err != nil {
				return err
			}
			v.pc = int(t)
		case OpBrnz:
			t, err := v.pop()
			if err != nil {
				return err
			}
			cond, err := v.pop()
			if err != nil {
				return err
			}
			if cond != 0 {
				v.pc = int(t)
			}
		case OpRand:
			bit := v.seed & 1
			v.seed >>= 1
			if bit != 0 {
				v.seed ^= 0xB400
			}
			v.push(v.seed)
		case OpTime:
			v.push(uint16(v.Cycles / 8))
		case OpSleep:
			ticks, err := v.pop()
			if err != nil {
				return err
			}
			v.Cycles += uint64(ticks) * 8
			v.IdleCycles += uint64(ticks) * 8
		case OpSend:
			b, err := v.pop()
			if err != nil {
				return err
			}
			_ = b
			v.RadioBytes++
			v.Cycles += 3840 // one radio byte at 19.2 kbaud
		case OpDecw:
			addr, err := v.pop()
			if err != nil {
				return err
			}
			lo, hi := addr%HeapBytes, (addr+1)%HeapBytes
			val := uint16(v.Heap[lo]) | uint16(v.Heap[hi])<<8
			val--
			v.Heap[lo] = byte(val)
			v.Heap[hi] = byte(val >> 8)
			v.push(val)
		default:
			return fmt.Errorf("mate: bad opcode %d at pc %d", op, v.pc-1)
		}
	}
	return fmt.Errorf("mate: cycle limit reached at pc %d", v.pc)
}

func (v *VM) push(x uint16) { v.stack = append(v.stack, x) }

func (v *VM) pop() (uint16, error) {
	if len(v.stack) == 0 {
		return 0, ErrStack
	}
	x := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return x, nil
}

// Builder assembles bytecode with labels, mirroring the role of Maté's
// TinyScript compiler.
type Builder struct {
	code   []byte
	labels map[string]int
	refs   map[int]string // pushw placeholder position -> label
}

// NewBuilder returns an empty bytecode builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int), refs: make(map[int]string)}
}

// Emit appends raw opcodes/operands.
func (b *Builder) Emit(bytes ...byte) *Builder { b.code = append(b.code, bytes...); return b }

// Op appends one opcode.
func (b *Builder) Op(op Op) *Builder { return b.Emit(byte(op)) }

// Pushc appends "push constant byte".
func (b *Builder) Pushc(v byte) *Builder { return b.Emit(byte(OpPushc), v) }

// Pushw appends "push constant word".
func (b *Builder) Pushw(v uint16) *Builder {
	return b.Emit(byte(OpPushw), byte(v), byte(v>>8))
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.code)
	return b
}

// PushLabel pushes a label's address (resolved at Build time).
func (b *Builder) PushLabel(name string) *Builder {
	b.refs[len(b.code)+1] = name
	return b.Emit(byte(OpPushw), 0, 0)
}

// Build resolves labels and returns the bytecode.
func (b *Builder) Build() ([]byte, error) {
	out := append([]byte(nil), b.code...)
	for pos, name := range b.refs {
		target, ok := b.labels[name]
		if !ok {
			return nil, fmt.Errorf("mate: undefined label %q", name)
		}
		out[pos] = byte(target)
		out[pos+1] = byte(target >> 8)
	}
	return out, nil
}

// PeriodicProgram builds the Maté equivalent of the PeriodicTask program:
// `activations` periods, each running a computation of `instructions`
// bytecode-equivalent operations, paced at `periodTicks` clock ticks.
func PeriodicProgram(instructions, activations, periodTicks int) ([]byte, error) {
	b := NewBuilder()
	// heap[0:2] = remaining activations (16-bit, little endian).
	b.Pushc(byte(activations)).Pushc(0).Op(OpStore)
	b.Pushc(byte(activations >> 8)).Pushc(1).Op(OpStore)
	b.Label("activation")
	// Computation: counter = instructions/4 iterations of a 4-op loop, to
	// mirror the native 4-instruction loop body.
	iters := instructions / 4
	b.Pushw(uint16(iters))
	b.Label("compute")
	// stack: [count] ; body: count-1, dup, brnz compute
	b.Pushc(1).Op(OpSub)
	b.Op(OpDup)
	b.PushLabel("compute").Op(OpBrnz)
	b.Op(OpDrop)
	// Sleep out the rest of the period (approximate pacing: the VM is so
	// slow that precise deadline arithmetic adds nothing to the comparison).
	b.Pushw(uint16(periodTicks)).Op(OpSleep)
	// Decrement the 16-bit activation counter and loop while non-zero.
	b.Pushc(0).Op(OpDecw)
	b.PushLabel("activation").Op(OpBrnz)
	b.Op(OpHalt)
	return b.Build()
}

package mate

import (
	"errors"
	"testing"
)

func TestVMArithmetic(t *testing.T) {
	code, err := NewBuilder().
		Pushc(40).Pushc(2).Op(OpAdd).
		Pushc(10).Op(OpStore). // heap[10] = 42
		Pushw(0x1234).Pushc(0x34).Op(OpXor).
		Pushc(11).Op(OpStore). // heap[11] = 0x00 (byte of 0x1200)
		Op(OpHalt).Build()
	if err != nil {
		t.Fatal(err)
	}
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.Heap[10] != 42 {
		t.Errorf("heap[10] = %d, want 42", v.Heap[10])
	}
	if v.Heap[11] != 0 {
		t.Errorf("heap[11] = %d, want 0", v.Heap[11])
	}
}

func TestVMLoopAndBranch(t *testing.T) {
	// Count 5 down to 0, bumping heap[0] each iteration.
	code, err := NewBuilder().
		Pushw(5).
		Label("loop").
		Pushc(0).Op(OpLoad).Pushc(1).Op(OpAdd).Pushc(0).Op(OpStore).
		Pushc(1).Op(OpSub).
		Op(OpDup).
		PushLabel("loop").Op(OpBrnz).
		Op(OpHalt).Build()
	if err != nil {
		t.Fatal(err)
	}
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.Heap[0] != 5 {
		t.Errorf("heap[0] = %d, want 5", v.Heap[0])
	}
}

func TestVMChargesInterpretationCost(t *testing.T) {
	code, _ := NewBuilder().Pushc(1).Op(OpDrop).Op(OpHalt).Build()
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.Executed != 3 {
		t.Errorf("executed = %d, want 3", v.Executed)
	}
	if v.Cycles != 3*InterpCycles {
		t.Errorf("cycles = %d, want %d", v.Cycles, 3*InterpCycles)
	}
}

func TestVMSleepIdles(t *testing.T) {
	code, _ := NewBuilder().Pushw(1000).Op(OpSleep).Op(OpHalt).Build()
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.IdleCycles != 8000 {
		t.Errorf("idle = %d, want 8000", v.IdleCycles)
	}
}

func TestVMStackUnderflow(t *testing.T) {
	code, _ := NewBuilder().Op(OpAdd).Op(OpHalt).Build()
	v := New(code)
	if err := v.Run(0); !errors.Is(err, ErrStack) {
		t.Errorf("err = %v, want stack error", err)
	}
}

func TestVMUndefinedLabel(t *testing.T) {
	if _, err := NewBuilder().PushLabel("nope").Op(OpJump).Build(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestPeriodicProgramCompletes(t *testing.T) {
	code, err := PeriodicProgram(1_000, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	// 4 activations x (computation + 2048-tick sleep).
	if v.IdleCycles != 4*2048*8 {
		t.Errorf("idle = %d, want %d", v.IdleCycles, 4*2048*8)
	}
	// The interpretation penalty dominates: the busy part must cost around
	// 100x the native equivalent (1000 instructions ~ 1250 native cycles).
	busy := v.Cycles - v.IdleCycles
	if busy < 4*1_000*25 {
		t.Errorf("busy cycles = %d, suspiciously fast for an interpreter", busy)
	}
}

func TestPeriodicProgramCounterWidth(t *testing.T) {
	// More than 255 activations exercises the 16-bit counter.
	code, err := PeriodicProgram(100, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	v := New(code)
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.IdleCycles != 300*16*8 {
		t.Errorf("idle = %d, want %d (300 activations)", v.IdleCycles, 300*16*8)
	}
}

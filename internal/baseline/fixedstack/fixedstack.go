// Package fixedstack implements the fixed-worst-case-stack multithreading
// baseline of Figure 8 (LiteOS/MANTIS-style, Section II): every task gets a
// statically allocated stack sized to the programmer-declared worst case,
// the kernel's static data takes over 2000 bytes, and stacks never move. A
// task that outgrows its allocation is killed.
//
// The baseline deliberately reuses the SenSmart loader and scheduler with
// relocation disabled, so that the Figure 8 comparison isolates exactly the
// stack-management policy: versatile relocation versus static worst-case
// allocation. (LiteOS itself performs no memory protection at all; its
// tasks would corrupt each other instead of being killed. Admission counts —
// the figure's metric — are unaffected by that difference.)
package fixedstack

import (
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// KernelStaticData is LiteOS's static data-memory footprint ("more than
// 2000 bytes of static data", Section V-D).
const KernelStaticData = 2048

// Config tunes the baseline.
type Config struct {
	// WorstCaseStack is the programmer-declared per-task stack size.
	// LiteOS requires this estimate up front; tasks exceeding it die.
	WorstCaseStack uint16
	// AppLimit optionally caps the application area (bytes).
	AppLimit uint16
	// SliceCycles is the clock-interrupt scheduling quantum.
	SliceCycles uint64
}

// System is a booted fixed-stack kernel.
type System struct {
	K *kernel.Kernel
}

// New builds the baseline kernel on m.
func New(m *mcu.Machine, cfg Config) *System {
	if cfg.WorstCaseStack == 0 {
		cfg.WorstCaseStack = 192
	}
	k := kernel.New(m, kernel.Config{
		KernelData:        KernelStaticData,
		AppLimit:          cfg.AppLimit,
		InitialStack:      cfg.WorstCaseStack,
		SliceCycles:       cfg.SliceCycles,
		DisableRelocation: true,
	})
	return &System{K: k}
}

// AddTask admits a task with its fixed worst-case stack. It fails once the
// static allocation no longer fits — the admission limit Figure 8 measures.
func (s *System) AddTask(name string, nat *rewriter.Naturalized) (*kernel.Task, error) {
	return s.K.AddTask(name, nat)
}

// MaxSchedulable reports how many instances of nat the system could admit
// into the remaining memory, without mutating the system.
func MaxSchedulable(cfg Config, nat *rewriter.Naturalized) int {
	m := mcu.New()
	s := New(m, cfg)
	n := 0
	for {
		if _, err := s.AddTask("probe", nat); err != nil {
			return n
		}
		n++
		if n > 1024 { // safety net
			return n
		}
	}
}

package fixedstack

import (
	"strings"
	"testing"

	"repro/internal/avr/asm"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

func TestAdmissionLimitedByWorstCaseStack(t *testing.T) {
	prog := progs.MustTreeSearch(progs.TreeSearchParams{Trees: 2, NodesPerTree: 20})
	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	small := MaxSchedulable(Config{WorstCaseStack: 96}, nat)
	big := MaxSchedulable(Config{WorstCaseStack: 224}, nat)
	if small <= big {
		t.Errorf("smaller worst-case stacks must admit more tasks: %d vs %d", small, big)
	}
	if big == 0 {
		t.Error("no tasks admitted at all")
	}
}

func TestOvergrownTaskIsKilledNotRelocated(t *testing.T) {
	deep, err := asm.Assemble("deep", `
main:
    ldi r24, 80
    rcall eat
hang:
    rjmp hang
eat:
    push r24
    push r24
    dec r24
    brne eat
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rewriter.Rewrite(deep, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	s := New(m, Config{WorstCaseStack: 64})
	task, err := s.AddTask("deep", nat)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.K.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := s.K.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.State() != kernel.TaskTerminated {
		t.Fatal("task exceeding its fixed stack must be killed")
	}
	if !strings.Contains(task.ExitReason, "stack") {
		t.Errorf("exit reason = %q", task.ExitReason)
	}
	if s.K.Stats.Relocations != 0 {
		t.Errorf("fixed-stack baseline must never relocate (%d)", s.K.Stats.Relocations)
	}
}

func TestKernelStaticDataShrinksAppArea(t *testing.T) {
	m := mcu.New()
	s := New(m, Config{})
	base, end := s.K.AppMemory()
	area := int(end) - int(base)
	full := mcu.DataSize - mcu.SRAMBase
	if area > full-KernelStaticData {
		t.Errorf("app area %d should reflect the %d-byte kernel", area, KernelStaticData)
	}
}

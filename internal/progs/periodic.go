package progs

import (
	"fmt"

	"repro/internal/avr/asm"
	"repro/internal/image"
)

// PeriodicParams configures the PeriodicTask program of Section V-C: a
// periodic event triggers a computational task of configurable size, the
// common operating pattern of sensornet applications.
type PeriodicParams struct {
	// Instructions is the computation size per activation (the paper sweeps
	// 10,000..100,000).
	Instructions int
	// Activations is how many periodic activations to run (the paper uses
	// 300).
	Activations int
	// PeriodTicks is the activation period in Timer3 ticks (clk/8);
	// default 24576 ticks = 196,608 cycles ≈ 26.7 ms.
	PeriodTicks int
}

func (p *PeriodicParams) setDefaults() {
	if p.Activations == 0 {
		p.Activations = 300
	}
	if p.PeriodTicks == 0 {
		p.PeriodTicks = 24576
	}
}

// computeBody is the calibrated computation kernel: each inner-loop
// iteration executes 4 instructions (add, eor, dec, brne), so the iteration
// count is Instructions/4. The iteration count is split into a 16-bit value.
const periodicTemplate = `
.equ ITER, %d
.equ ACTS, %d
.equ PERIOD, %d
.data
done:  .space 2          ; completed activations
late:  .space 2          ; activations that started past their deadline
.text
main:
%s
    ; next = now + PERIOD
    lds r10, TCNT3L
    lds r11, TCNT3H
    ldi r16, lo8(PERIOD)
    add r10, r16
    ldi r16, hi8(PERIOD)
    adc r11, r16
    ldi r20, lo8(ACTS)
    ldi r21, hi8(ACTS)
activation:
    ; ---- computational task: ITER iterations x 4 instructions ----
    ldi r24, lo8(ITER)
    ldi r25, hi8(ITER)
    clr r2
    clr r3
compute:
    add r2, r3
    eor r3, r2
    subi r24, 1
    sbci r25, 0
    brne compute
    ; ---- bookkeeping ----
    lds r16, done
    lds r17, done+1
    subi r16, 0xFF
    sbci r17, 0xFF
    sts done, r16
    sts done+1, r17
    ; lateness check: now - next >= 0 means we missed the deadline
    lds r24, TCNT3L
    lds r25, TCNT3H
    movw r12, r24        ; keep "now" for deadline resync
    sub r24, r10
    sbc r25, r11
    brmi ontime
    lds r16, late
    lds r17, late+1
    subi r16, 0xFF
    sbci r17, 0xFF
    sts late, r16
    sts late+1, r17
    movw r10, r12        ; overrun: resynchronize the schedule to now
ontime:
    ; ---- wait for the next period ----
waitloop:
    lds r24, TCNT3L
    lds r25, TCNT3H
    sub r24, r10
    sbc r25, r11
    brpl periodup
    sleep
    rjmp waitloop
periodup:
    ; next += PERIOD
    ldi r16, lo8(PERIOD)
    add r10, r16
    ldi r16, hi8(PERIOD)
    adc r11, r16
    subi r20, 1
    sbci r21, 0
    brne activation
    break
%s
`

// PeriodicTask builds the SenSmart/t-kernel variant of the PeriodicTask
// program: it paces itself on the (virtualized) Timer3 clock and yields with
// SLEEP, which the kernel turns into a scheduling quantum.
func PeriodicTask(p PeriodicParams) *image.Program {
	p.setDefaults()
	src := fmt.Sprintf(periodicTemplate, p.Instructions/4, p.Activations, p.PeriodTicks, "", "")
	return asm.MustAssemble(fmt.Sprintf("periodic-%dk", p.Instructions/1000), src)
}

// PeriodicTaskNative builds the bare-metal variant: identical pacing and
// computation, but SLEEP wake-ups come from a real Timer0 overflow interrupt
// (the kernel-less machine needs a hardware wake source).
func PeriodicTaskNative(p PeriodicParams) *image.Program {
	p.setDefaults()
	prologue := `
    ; Arm Timer0 as the sleep wake-up source: clk/32 -> overflow every 8192
    ; cycles.
    ldi r16, 3
    out TCCR0, r16
    ldi r16, 1
    out TIMSK, r16
    sei
`
	src := fmt.Sprintf(periodicTemplate,
		p.Instructions/4, p.Activations, p.PeriodTicks, prologue, "")
	// Prepend the vector table: reset jumps to main; the Timer0 overflow
	// vector holds a bare RETI (the interrupt only wakes the sleeper).
	src = `
    jmp main
.org 2
    reti                 ; timer0 overflow: wake only
.org 4
` + src[1:]
	return asm.MustAssemble(fmt.Sprintf("periodic-native-%dk", p.Instructions/1000), src)
}

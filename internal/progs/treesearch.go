package progs

import (
	"fmt"

	"repro/internal/avr/asm"
	"repro/internal/image"
)

// TreeSearchParams configures the sense-and-send binary-tree workload of
// Section V-D. Each task owns a node arena in its heap (SenSmart gives every
// task an isolated region, so the paper's shared data-feeding step is folded
// into each task: a feed phase builds the trees, then searches recurse over
// them). Every recursion level consumes exactly 15 stack bytes, matching the
// paper's workload description.
type TreeSearchParams struct {
	// Trees is the number of binary trees (6 in Figure 7, 2 in Figure 8).
	Trees int
	// NodesPerTree is swept along the x-axis of Figures 7/8. Trees*NodesPerTree
	// must stay below 255 (byte node indices).
	NodesPerTree int
	// Seed differentiates the pseudo-random insert/search streams between
	// task instances.
	Seed uint16
	// Searches bounds the number of searches before the task exits; 0 runs
	// forever (the harness stops the clock instead).
	Searches int
}

func (p *TreeSearchParams) setDefaults() {
	if p.Trees == 0 {
		p.Trees = 6
	}
	if p.NodesPerTree == 0 {
		p.NodesPerTree = 24
	}
	if p.Seed == 0 {
		p.Seed = 0xACE1
	}
}

// TreeSearch builds one sense-and-send task.
func TreeSearch(p TreeSearchParams) (*image.Program, error) {
	p.setDefaults()
	maxNodes := p.Trees * p.NodesPerTree
	if maxNodes > 254 {
		return nil, fmt.Errorf("progs: %d nodes exceed the byte-index arena", maxNodes)
	}
	stopCheck := ""
	if p.Searches > 0 {
		stopCheck = fmt.Sprintf(`
    lds r16, searches
    lds r17, searches+1
    cpi r16, lo8(%d)
    ldi r18, hi8(%d)
    cpc r17, r18
    brlo keepgoing
    break
keepgoing:`, p.Searches, p.Searches)
	}
	src := fmt.Sprintf(`
.equ TREES, %d
.equ MAXNODES, %d
.equ SEED, %d
.data
seed:      .space 2
nodecount: .space 1
searches:  .space 2
found:     .space 2
roots:     .space TREES
arena:     .space %d        ; MAXNODES nodes x 3 bytes {key, left, right}
.text
main:
    ; seed the PRNG and clear the roots
    ldi r16, lo8(SEED)
    sts seed, r16
    ldi r16, hi8(SEED)
    sts seed+1, r16
    ldi r16, 0xFF
    ldi r26, lo8(roots)
    ldi r27, hi8(roots)
    ldi r17, TREES
clearroots:
    st X+, r16
    dec r17
    brne clearroots

mloop:
    ; ---- feed phase: insert one random key while the arena has room ----
    rcall rand16             ; r24:r25 random
    lds r16, nodecount
    cpi r16, MAXNODES
    brsh dosearch
    rcall modtrees           ; r25 -> tree index 0..TREES-1
    rcall insert             ; key r24 into tree r25
dosearch:
    ; ---- search phase: recursive lookup of a random key ----
    rcall rand16
    mov r20, r24             ; key
    rcall modtrees
    ; r24 = root index of tree r25
    ldi r26, lo8(roots)
    ldi r27, hi8(roots)
    add r26, r25
    clr r16
    adc r27, r16
    ld r24, X
    clr r14                  ; result flag
    rcall search
    ; account the search (and the hit, for sanity checking)
    lds r16, searches
    lds r17, searches+1
    subi r16, 0xFF
    sbci r17, 0xFF
    sts searches, r16
    sts searches+1, r17
    tst r14
    breq nothit
    lds r16, found
    lds r17, found+1
    subi r16, 0xFF
    sbci r17, 0xFF
    sts found, r16
    sts found+1, r17
nothit:%s
    rjmp mloop

; ---- rand16: one Galois LFSR step on the heap seed; result in r24:r25 ----
rand16:
    lds r24, seed
    lds r25, seed+1
    lsr r25
    ror r24
    brcc randnoxor
    ldi r18, 0xB4
    eor r25, r18
randnoxor:
    sts seed, r24
    sts seed+1, r25
    ret

; ---- modtrees: r25 %%= TREES ----
modtrees:
    cpi r25, TREES
    brlo moddone
    subi r25, TREES
    rjmp modtrees
moddone:
    ret

; ---- insert(key=r24, tree=r25): allocate a node and attach it ----
insert:
    lds r16, nodecount       ; new node index
    mov r17, r16
    inc r17
    sts nodecount, r17
    ; node address = arena + idx*3 -> X
    mov r26, r16
    clr r27
    lsl r26
    rol r27
    add r26, r16
    clr r18
    adc r27, r18
    subi r26, lo8(-(arena))
    sbci r27, hi8(-(arena))
    st X+, r24               ; key
    ldi r18, 0xFF
    st X+, r18               ; left = nil
    st X, r18                ; right = nil
    ; root pointer cell -> X
    ldi r26, lo8(roots)
    ldi r27, hi8(roots)
    add r26, r25
    clr r18
    adc r27, r18
    ld r17, X
    cpi r17, 0xFF
    brne walk
    st X, r16                ; empty tree: new node becomes root
    ret
walk:
    ; Z = arena + cur*3
    mov r30, r17
    clr r31
    lsl r30
    rol r31
    add r30, r17
    clr r18
    adc r31, r18
    subi r30, lo8(-(arena))
    sbci r31, hi8(-(arena))
    ldd r19, Z+0             ; node key
    cp r24, r19
    brlo goleft
    ldd r22, Z+2             ; right child
    cpi r22, 0xFF
    brne rdesc
    std Z+2, r16             ; attach right
    ret
rdesc:
    mov r17, r22
    rjmp walk
goleft:
    ldd r21, Z+1             ; left child
    cpi r21, 0xFF
    brne ldesc
    std Z+1, r16             ; attach left
    ret
ldesc:
    mov r17, r21
    rjmp walk

; ---- search(node=r24, key=r20): recursive descent, 15 B per level ----
; Sets r14 when the key is found. Clobbers nothing else for the caller.
search:
    push r24
    push r25
    push r26
    push r27
    push r28
    push r29
    push r30
    push r31
    push r16
    push r17
    push r18
    push r19
    push r15                 ; 13 pushes + 2 return bytes = 15 per level
    cpi r24, 0xFF
    breq srchdone
    ; Z = arena + node*3
    mov r30, r24
    clr r31
    lsl r30
    rol r31
    add r30, r24
    clr r18
    adc r31, r18
    subi r30, lo8(-(arena))
    sbci r31, hi8(-(arena))
    ldd r19, Z+0
    cp r20, r19
    breq srchfound
    brlo srchleft
    ldd r24, Z+2             ; descend right
    rcall search
    rjmp srchdone
srchleft:
    ldd r24, Z+1             ; descend left
    rcall search
    rjmp srchdone
srchfound:
    ldi r16, 1
    mov r14, r16
srchdone:
    pop r15
    pop r19
    pop r18
    pop r17
    pop r16
    pop r31
    pop r30
    pop r29
    pop r28
    pop r27
    pop r26
    pop r25
    pop r24
    ret
`, p.Trees, maxNodes, p.Seed, 3*maxNodes, stopCheck)
	name := fmt.Sprintf("treesearch-t%d-n%d-s%04x", p.Trees, p.NodesPerTree, p.Seed)
	return asm.Assemble(name, src)
}

// MustTreeSearch is TreeSearch for known-good parameters.
func MustTreeSearch(p TreeSearchParams) *image.Program {
	prog, err := TreeSearch(p)
	if err != nil {
		panic(err)
	}
	return prog
}

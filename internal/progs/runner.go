package progs

import (
	"errors"
	"fmt"

	"repro/internal/image"
	"repro/internal/mcu"
)

// NativeResult is the outcome of a bare-metal run.
type NativeResult struct {
	Cycles     uint64
	IdleCycles uint64
	Machine    *mcu.Machine
}

// Seconds converts the cycle count to wall time on the 7.3728 MHz mote.
func (r NativeResult) Seconds() float64 {
	return float64(r.Cycles) / float64(mcu.ClockHz)
}

// RunNative executes prog on a bare machine (no OS) until its final BREAK,
// as the "native" series of Figures 5 and 6. It initializes the program's
// .data section the way a real runtime's startup code would.
func RunNative(prog *image.Program, limit uint64) (NativeResult, error) {
	m := mcu.New()
	if err := m.LoadFlash(0, prog.Words); err != nil {
		return NativeResult{}, err
	}
	LoadData(m, prog)
	m.SetPC(prog.Entry)
	err := m.Run(limit)
	var f *mcu.Fault
	if errors.As(err, &f) && f.Kind == mcu.FaultBreak {
		return NativeResult{Cycles: m.Cycles(), IdleCycles: m.IdleCycles(), Machine: m}, nil
	}
	if err == nil {
		return NativeResult{}, fmt.Errorf("progs: %s hit the %d-cycle limit", prog.Name, limit)
	}
	return NativeResult{}, fmt.Errorf("progs: %s: %w", prog.Name, err)
}

// LoadData copies the program's initialised data into the heap area, as the
// C runtime startup would on a real mote.
func LoadData(m *mcu.Machine, prog *image.Program) {
	for i, b := range prog.DataInit {
		m.Poke(prog.HeapBase+uint16(i), b)
	}
}

// HeapWord reads a little-endian 16-bit heap variable by symbol name after a
// native run.
func HeapWord(m *mcu.Machine, prog *image.Program, symbol string) (uint16, error) {
	s, ok := prog.Lookup(symbol)
	if !ok {
		return 0, fmt.Errorf("progs: %s has no symbol %q", prog.Name, symbol)
	}
	return uint16(m.Peek(uint16(s.Addr))) | uint16(m.Peek(uint16(s.Addr)+1))<<8, nil
}

// HeapByte reads an 8-bit heap variable by symbol name.
func HeapByte(m *mcu.Machine, prog *image.Program, symbol string) (byte, error) {
	s, ok := prog.Lookup(symbol)
	if !ok {
		return 0, fmt.Errorf("progs: %s has no symbol %q", prog.Name, symbol)
	}
	return m.Peek(uint16(s.Addr)), nil
}

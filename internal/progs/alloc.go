package progs

import (
	"fmt"

	"repro/internal/avr/asm"
	"repro/internal/image"
)

// AllocDemo builds a program that exercises the dynamic-memory allocation
// module the paper's Section III-A prescribes for applications that need
// malloc-style allocation: "it is not difficult to add a specific
// allocation module, which claims a chunk of memory and re-allocates parts
// of it upon requests". The module here is a bump allocator with a reset
// operation (the common TinyOS pattern); the demo builds a linked list of
// `nodes` dynamically allocated 4-byte cells, traverses it to sum the
// payloads, then resets the pool and repeats, leaving the final sum at
// "sum" and the completed iterations at "iters".
func AllocDemo(nodes int) (*image.Program, error) {
	if nodes < 1 || nodes > 40 {
		return nil, fmt.Errorf("progs: alloc demo supports 1..40 nodes, got %d", nodes)
	}
	src := fmt.Sprintf(`
.equ NODES, %d
.data
sum:   .space 2
iters: .space 1
brk:   .space 2          ; allocator break pointer
pool:  .space 168        ; 40 x 4-byte cells + slack
.text
main:
    ldi r20, 3           ; repeat the build/traverse/reset cycle
cycle:
    rcall alloc_reset
    ; ---- build: head in r14:r15, nodes carry payload i*3 ----
    ldi r16, 0xFF        ; head = nil (0xFFFF)
    mov r14, r16
    mov r15, r16
    ldi r21, NODES
    clr r22              ; payload counter
build:
    ldi r24, 4
    rcall alloc          ; r24:r25 = cell address
    ; cell layout: [payload, pad, next_lo, next_hi]
    movw r26, r24        ; X = cell
    st X+, r22           ; payload
    clr r17
    st X+, r17
    st X+, r14           ; next = old head
    st X, r15
    movw r14, r24        ; head = cell
    subi r22, -3
    dec r21
    brne build
    ; ---- traverse: sum payloads ----
    clr r24              ; sum
    clr r25
    movw r26, r14        ; X = head
walk:
    cpi r27, 0xFF        ; nil pointer has high byte 0xFF
    breq walked
    ld r16, X+           ; payload
    add r24, r16
    clr r17
    adc r25, r17
    ld r17, X+           ; skip pad
    ld r16, X+           ; next_lo
    ld r17, X            ; next_hi
    mov r26, r16
    mov r27, r17
    rjmp walk
walked:
    sts sum, r24
    sts sum+1, r25
    lds r16, iters
    inc r16
    sts iters, r16
    dec r20
    brne cycle
    break

; ---- alloc_reset: brk = pool ----
alloc_reset:
    ldi r16, lo8(pool)
    sts brk, r16
    ldi r16, hi8(pool)
    sts brk+1, r16
    ret

; ---- alloc(size=r24) -> r24:r25 = address; halts the task on exhaustion
; ---- (an allocation failure is a programming error in this model) ----
alloc:
    lds r18, brk
    lds r19, brk+1
    ; new break = brk + size
    add r18, r24
    clr r17
    adc r19, r17
    ; bounds: new break must stay within the pool
    cpi r18, lo8(pool+168)
    ldi r17, hi8(pool+168)
    cpc r19, r17
    brlo allocok
    brne allocfail
allocok:
    lds r24, brk
    lds r25, brk+1
    sts brk, r18
    sts brk+1, r19
    ret
allocfail:
    break                ; out of pool: treated as fatal
`, nodes)
	return asm.Assemble(fmt.Sprintf("allocdemo-%d", nodes), src)
}

// Package progs contains the benchmark applications of the paper's
// evaluation: the seven kernel benchmark programs used by the t-kernel and
// SenSmart (Section V-C), the PeriodicTask program with configurable
// computation size, and the sense-and-send binary-tree workload of the
// stack-versatility experiments (Section V-D).
//
// Every program is written in AVR assembly and runs both natively on the
// bare simulator and naturalized under the SenSmart kernel: the end of the
// workload is marked with BREAK, which stops a native run and exits the
// task under the kernel.
package progs

import (
	"fmt"
	"sync"

	"repro/internal/avr/asm"
	"repro/internal/image"
)

// reportLib is the shared sense-and-send postprocessing tail every kernel
// benchmark ends with: an EWMA smoother, range clamping, and hex-formatted
// UART reporting — the register-heavy glue code that dominates real mote
// applications (and that the rewriter leaves untouched).
const reportLib = `
; ---- report16: smooth, clamp and transmit the 16-bit result in r25:r24 ----
report16:
    push r16
    push r17
    push r24
    push r25
    ; EWMA smoothing: s += (x - s) / 4, with s in r8:r9
    mov r16, r24
    mov r17, r25
    sub r16, r8
    sbc r17, r9
    asr r17
    ror r16
    asr r17
    ror r16
    add r8, r16
    adc r9, r17
    ; clamp the sample to 12 bits (sensor range postcondition)
    ldi r16, 0x0F
    cpi r25, 0x10
    brlo clamped
    mov r25, r16
    ser r16
    mov r24, r16
clamped:
    ; scale by 3/4: y = x - x/4 (pure register arithmetic)
    mov r16, r24
    mov r17, r25
    asr r17
    ror r16
    asr r17
    ror r16
    sub r24, r16
    sbc r25, r17
    ; transmit "R" hhhh "\n"
    ldi r16, 'R'
    rcall putc
    mov r16, r25
    rcall puthex8
    mov r16, r24
    rcall puthex8
    ldi r16, 10
    rcall putc
    pop r25
    pop r24
    pop r17
    pop r16
    ret

; ---- puthex8: transmit r16 as two hex digits ----
puthex8:
    push r16
    swap r16
    rcall puthexn
    pop r16
puthexn:
    andi r16, 0x0F
    cpi r16, 10
    brlo hexdigit
    subi r16, -7         ; 'A' - '9' - 1
hexdigit:
    subi r16, -48        ; + '0'
; ---- putc: poll UDRE and transmit r16 ----
putc:
    in r17, UCSR0A
    sbrs r17, 5
    rjmp putc
    out UDR0, r16
    ret
`

// LFSR generates `rounds` steps of a 16-bit Galois LFSR — the "lfsr" kernel
// benchmark. The final state is stored at the heap symbol "out".
func LFSR(rounds int) *image.Program {
	src := fmt.Sprintf(`
.equ ROUNDS, %d
.data
out: .space 2
.text
main:
    ldi r24, 0xE1        ; state = 0xACE1
    ldi r25, 0xAC
    ldi r16, lo8(ROUNDS)
    ldi r17, hi8(ROUNDS)
loop:
    lsr r25
    ror r24
    brcc noxor
    ldi r18, 0xB4        ; Galois taps 0xB400
    eor r25, r18
noxor:
    subi r16, 1
    sbci r17, 0
    brne loop
    sts out, r24
    sts out+1, r25
    rcall report16
    break
`+reportLib, rounds)
	return asm.MustAssemble(fmt.Sprintf("lfsr-%d", rounds), src)
}

// CRC computes CRC16-CCITT over a 64-byte message `repeat` times — the
// "crc" kernel benchmark. The final CRC is stored at "crc".
func CRC(repeat int) *image.Program {
	src := fmt.Sprintf(`
.equ REPEAT, %d
.data
msg: .space 64
crc: .space 2
.text
main:
    ldi r26, lo8(msg)    ; fill the message deterministically
    ldi r27, hi8(msg)
    ldi r16, 64
    ldi r17, 1
fill:
    st X+, r17
    subi r17, -7
    dec r16
    brne fill
    ldi r20, lo8(REPEAT)
    ldi r21, hi8(REPEAT)
outer:
    ldi r24, 0xFF        ; crc = 0xFFFF
    ldi r25, 0xFF
    ldi r26, lo8(msg)
    ldi r27, hi8(msg)
    ldi r16, 64
byteloop:
    ld r18, X+
    eor r25, r18
    ldi r17, 8
bitloop:
    lsl r24
    rol r25
    brcc nopoly
    ldi r18, 0x21        ; polynomial 0x1021
    eor r24, r18
    ldi r18, 0x10
    eor r25, r18
nopoly:
    dec r17
    brne bitloop
    dec r16
    brne byteloop
    subi r20, 1
    sbci r21, 0
    brne outer
    sts crc, r24
    sts crc+1, r25
    rcall report16
    break
`+reportLib, repeat)
	return asm.MustAssemble(fmt.Sprintf("crc-%d", repeat), src)
}

// Amplitude samples the ADC `samples` times and tracks min/max — the
// "amplitude" kernel benchmark. Results land at "minv"/"maxv"/"amp".
func Amplitude(samples int) *image.Program {
	src := fmt.Sprintf(`
.equ SAMPLES, %d
.data
minv: .space 2
maxv: .space 2
amp:  .space 2
.text
main:
    ldi r20, lo8(SAMPLES)
    ldi r21, hi8(SAMPLES)
    ldi r24, 0xFF        ; min = 0x03FF
    ldi r25, 0x03
    clr r22              ; max = 0
    clr r23
sample:
    ldi r16, 0xC0        ; ADEN|ADSC
    out ADCSRA, r16
wait:
    in r16, ADCSRA
    sbrc r16, 6
    rjmp wait
    in r18, ADCL
    in r19, ADCH
    cp r18, r24          ; sample < min?
    cpc r19, r25
    brsh notmin
    mov r24, r18
    mov r25, r19
notmin:
    cp r22, r18          ; max < sample?
    cpc r23, r19
    brsh notmax
    mov r22, r18
    mov r23, r19
notmax:
    subi r20, 1
    sbci r21, 0
    brne sample
    sts minv, r24
    sts minv+1, r25
    sts maxv, r22
    sts maxv+1, r23
    sub r22, r24         ; amplitude = max - min
    sbc r23, r25
    sts amp, r22
    sts amp+1, r23
    movw r24, r22
    rcall report16
    break
`+reportLib, samples)
	return asm.MustAssemble(fmt.Sprintf("amplitude-%d", samples), src)
}

// ReadADC accumulates `samples` ADC conversions into a 16-bit sum — the
// "readadc" kernel benchmark. The sum is stored at "sum".
func ReadADC(samples int) *image.Program {
	src := fmt.Sprintf(`
.equ SAMPLES, %d
.data
sum: .space 2
.text
main:
    ldi r20, lo8(SAMPLES)
    ldi r21, hi8(SAMPLES)
    clr r24              ; sum = 0
    clr r25
sample:
    ldi r16, 0xC0
    out ADCSRA, r16
wait:
    in r16, ADCSRA
    sbrc r16, 6
    rjmp wait
    in r18, ADCL
    in r19, ADCH
    add r24, r18
    adc r25, r19
    subi r20, 1
    sbci r21, 0
    brne sample
    sts sum, r24
    sts sum+1, r25
    rcall report16
    break
`+reportLib, samples)
	return asm.MustAssemble(fmt.Sprintf("readadc-%d", samples), src)
}

// AM builds and transmits `packets` 29-byte active-message packets over the
// radio — the "am" kernel benchmark. The packet counter ends at "sent".
func AM(packets int) *image.Program {
	src := fmt.Sprintf(`
.equ PACKETS, %d
.data
pkt:  .space 29          ; dest(2) type(1) group(1) len(1) payload(22) crc(2)
sent: .space 2
.text
main:
    ldi r20, lo8(PACKETS)
    ldi r21, hi8(PACKETS)
    ldi r22, 0x11        ; payload seed
nextpkt:
    ; Build the packet header and payload.
    ldi r26, lo8(pkt)
    ldi r27, hi8(pkt)
    ldi r16, 0xFF        ; broadcast dest
    st X+, r16
    st X+, r16
    ldi r16, 0x05        ; AM type
    st X+, r16
    ldi r16, 0x7D        ; group
    st X+, r16
    ldi r16, 22          ; payload length
    st X+, r16
    ldi r17, 22
    clr r24              ; checksum
payload:
    st X+, r22
    add r24, r22
    subi r22, -13
    dec r17
    brne payload
    st X+, r24           ; 2-byte additive checksum
    clr r16
    st X+, r16
    ; Transmit the packet byte-by-byte.
    ldi r26, lo8(pkt)
    ldi r27, hi8(pkt)
    ldi r17, 29
txloop:
    in r16, RSR
    sbrs r16, 0          ; TX ready?
    rjmp txloop
    ld r16, X+
    out RDR, r16
    dec r17
    brne txloop
    lds r18, sent
    lds r19, sent+1
    subi r18, 0xFF       ; 16-bit increment
    sbci r19, 0xFF
    sts sent, r18
    sts sent+1, r19
    subi r20, 1
    sbci r21, 0
    brne nextpkt
    lds r24, sent
    lds r25, sent+1
    rcall report16
    break
`+reportLib, packets)
	return asm.MustAssemble(fmt.Sprintf("am-%d", packets), src)
}

// EventChain dispatches `rounds` rounds through a four-handler event table
// via indirect calls — the "eventchain" kernel benchmark, modelling the
// split-transaction event processing of TinyOS-style systems. The handler
// table lives in the heap (as nesC task queues do) and every handler runs a
// small signal-processing loop. Handler invocation counts land at "counts".
func EventChain(rounds int) *image.Program {
	src := fmt.Sprintf(`
.equ ROUNDS, %d
.data
counts: .space 4
htab:   .space 8         ; four 16-bit handler addresses
.text
main:
    ; Initialize the in-RAM dispatch table, as an event system's init does.
    ldi r16, lo8(h0)
    sts htab+0, r16
    ldi r16, hi8(h0)
    sts htab+1, r16
    ldi r16, lo8(h1)
    sts htab+2, r16
    ldi r16, hi8(h1)
    sts htab+3, r16
    ldi r16, lo8(h2)
    sts htab+4, r16
    ldi r16, hi8(h2)
    sts htab+5, r16
    ldi r16, lo8(h3)
    sts htab+6, r16
    ldi r16, hi8(h3)
    sts htab+7, r16
    ldi r20, lo8(ROUNDS)
    ldi r21, hi8(ROUNDS)
round:
    clr r19              ; event index
dispatch:
    ; Fetch the handler address from the RAM table.
    ldi r26, lo8(htab)
    ldi r27, hi8(htab)
    mov r16, r19
    lsl r16              ; 2 bytes per entry
    add r26, r16
    clr r16
    adc r27, r16
    ld r30, X+
    ld r31, X
    icall
    inc r19
    cpi r19, 4
    brne dispatch
    subi r20, 1
    sbci r21, 0
    brne round
    lds r24, counts+0
    clr r25
    rcall report16
    break

; Each handler bumps its counter and runs a short signal-processing loop
; (the computational body a real event handler carries).
h0:
    lds r16, counts+0
    inc r16
    sts counts+0, r16
    rjmp hwork
h1:
    lds r16, counts+1
    inc r16
    sts counts+1, r16
    rjmp hwork
h2:
    lds r16, counts+2
    inc r16
    sts counts+2, r16
    rjmp hwork
h3:
    lds r16, counts+3
    inc r16
    sts counts+3, r16
; hwork: a 60-iteration smoothing loop over the handler scratch registers.
hwork:
    ldi r17, 60
    clr r2
    clr r3
hloop:
    add r2, r16
    adc r3, r2
    lsr r3
    dec r17
    brne hloop
    ret
`+reportLib, rounds)
	return asm.MustAssemble(fmt.Sprintf("eventchain-%d", rounds), src)
}

// Timer waits for `overflows` Timer0 overflows at clk/64, toggling the LED
// port each time — the "timer" kernel benchmark.
func Timer(overflows int) *image.Program {
	src := fmt.Sprintf(`
.equ OVERFLOWS, %d
.data
ticks: .space 2
.text
main:
    ldi r16, 4           ; clk/64
    out TCCR0, r16
    ldi r20, lo8(OVERFLOWS)
    ldi r21, hi8(OVERFLOWS)
wait:
    in r17, TIFR
    sbrs r17, 0          ; TOV0
    rjmp wait
    ldi r17, 1
    out TIFR, r17
    in r18, PINB         ; toggle the LED
    ldi r19, 1
    eor r18, r19
    out PORTB, r18
    lds r18, ticks
    lds r19, ticks+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts ticks, r18
    sts ticks+1, r19
    subi r20, 1
    sbci r21, 0
    brne wait
    lds r24, ticks
    lds r25, ticks+1
    rcall report16
    break
`+reportLib, overflows)
	return asm.MustAssemble(fmt.Sprintf("timer-%d", overflows), src)
}

// KernelBenchmark names one of the seven kernel benchmark programs with its
// default parameters (sized so native runs take a few hundred ms of
// simulated time, like the t-kernel study).
type KernelBenchmark struct {
	Name    string
	Program *image.Program
}

// kernelBench memoizes the assembled benchmark suite: the sources are
// constant, so the assembler runs once per process instead of once per sweep
// point. KernelBenchmarks hands out clones so callers can keep mutating
// their copies.
var kernelBench = struct {
	once sync.Once
	list []KernelBenchmark
}{}

// KernelBenchmarks returns the seven kernel benchmark programs of Figure 4
// and Figure 5 with their default workload sizes. Each call returns fresh
// program clones backed by a one-time assembly.
func KernelBenchmarks() []KernelBenchmark {
	kernelBench.once.Do(func() {
		kernelBench.list = []KernelBenchmark{
			{"am", AM(40)},
			{"amplitude", Amplitude(400)},
			{"crc", CRC(120)},
			{"eventchain", EventChain(600)},
			{"lfsr", LFSR(30000)},
			{"readadc", ReadADC(400)},
			{"timer", Timer(40)},
		}
	})
	out := make([]KernelBenchmark, len(kernelBench.list))
	for i, kb := range kernelBench.list {
		out[i] = KernelBenchmark{Name: kb.Name, Program: kb.Program.Clone()}
	}
	return out
}

package progs

import (
	"testing"

	"repro/internal/mcu"
)

// lfsrModel is the reference Galois LFSR implementation.
func lfsrModel(state uint16, rounds int) uint16 {
	for i := 0; i < rounds; i++ {
		bit := state & 1
		state >>= 1
		if bit != 0 {
			state ^= 0xB400
		}
	}
	return state
}

func TestLFSRMatchesModel(t *testing.T) {
	for _, rounds := range []int{1, 100, 5000} {
		prog := LFSR(rounds)
		res, err := RunNative(prog, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HeapWord(res.Machine, prog, "out")
		if err != nil {
			t.Fatal(err)
		}
		want := lfsrModel(0xACE1, rounds)
		if got != want {
			t.Errorf("lfsr(%d) = %#x, want %#x", rounds, got, want)
		}
	}
}

// crcModel is the reference CRC16-CCITT (MSB-first) implementation.
func crcModel(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

func TestCRCMatchesModel(t *testing.T) {
	prog := CRC(3)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := HeapWord(res.Machine, prog, "crc")
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64)
	v := byte(1)
	for i := range msg {
		msg[i] = v
		v += 7
	}
	if want := crcModel(msg); got != want {
		t.Errorf("crc = %#x, want %#x", got, want)
	}
}

func TestAmplitudeMinMax(t *testing.T) {
	prog := Amplitude(50)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	minv, _ := HeapWord(res.Machine, prog, "minv")
	maxv, _ := HeapWord(res.Machine, prog, "maxv")
	amp, _ := HeapWord(res.Machine, prog, "amp")
	if minv > maxv {
		t.Errorf("min %d > max %d", minv, maxv)
	}
	if maxv > 0x3FF {
		t.Errorf("max %d beyond 10-bit ADC", maxv)
	}
	if amp != maxv-minv {
		t.Errorf("amp = %d, want %d", amp, maxv-minv)
	}
}

func TestReadADCAccumulates(t *testing.T) {
	prog := ReadADC(20)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := HeapWord(res.Machine, prog, "sum")
	if sum == 0 {
		t.Error("adc sum is zero")
	}
	// 20 conversions at ~1664 cycles each dominate the runtime.
	if res.Cycles < 20*mcu.ADCCycles {
		t.Errorf("cycles = %d, want >= %d", res.Cycles, 20*mcu.ADCCycles)
	}
}

func TestAMTransmitsPackets(t *testing.T) {
	prog := AM(3)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sent, _ := HeapWord(res.Machine, prog, "sent")
	if sent != 3 {
		t.Errorf("sent = %d, want 3", sent)
	}
	frames := res.Machine.RadioOutput()
	// 3 packets x 29 bytes; the final byte may still be in flight.
	if len(frames) < 3*29-1 {
		t.Errorf("radio frames = %d, want >= %d", len(frames), 3*29-1)
	}
	// Header of the first packet: dest 0xFFFF, type 5, group 0x7D, len 22.
	if frames[0].Byte != 0xFF || frames[2].Byte != 0x05 || frames[3].Byte != 0x7D || frames[4].Byte != 22 {
		t.Errorf("packet header wrong: % x", [5]byte{frames[0].Byte, frames[1].Byte, frames[2].Byte, frames[3].Byte, frames[4].Byte})
	}
}

func TestEventChainHandlersBalanced(t *testing.T) {
	prog := EventChain(10)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	counts, ok := prog.Lookup("counts")
	if !ok {
		t.Fatal("no counts symbol")
	}
	for i := 0; i < 4; i++ {
		if got := res.Machine.Peek(uint16(counts.Addr) + uint16(i)); got != 10 {
			t.Errorf("handler %d count = %d, want 10", i, got)
		}
	}
}

func TestTimerCountsOverflows(t *testing.T) {
	prog := Timer(5)
	res, err := RunNative(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ticks, _ := HeapWord(res.Machine, prog, "ticks")
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	// 5 overflows at 256*64 cycles each.
	want := uint64(5 * 256 * 64)
	if res.Cycles < want || res.Cycles > want+20_000 {
		t.Errorf("cycles = %d, want ~%d", res.Cycles, want)
	}
}

func TestPeriodicNativePacing(t *testing.T) {
	p := PeriodicParams{Instructions: 10_000, Activations: 10, PeriodTicks: 4096}
	prog := PeriodicTaskNative(p)
	res, err := RunNative(prog, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := HeapWord(res.Machine, prog, "done")
	late, _ := HeapWord(res.Machine, prog, "late")
	if done != 10 {
		t.Errorf("done = %d, want 10", done)
	}
	if late != 0 {
		t.Errorf("late = %d, want 0 (10k instructions fit a 4096-tick period)", late)
	}
	// Total time ~ activations * period = 10 * 4096*8 cycles.
	want := uint64(10 * 4096 * 8)
	if res.Cycles < want-40_000 || res.Cycles > want+80_000 {
		t.Errorf("cycles = %d, want ~%d", res.Cycles, want)
	}
	// Light load must be mostly idle.
	if res.IdleCycles < res.Cycles/2 {
		t.Errorf("idle = %d of %d cycles; expected a mostly idle run", res.IdleCycles, res.Cycles)
	}
}

func TestPeriodicSaturates(t *testing.T) {
	// A computation far bigger than the period must mark activations late.
	p := PeriodicParams{Instructions: 60_000, Activations: 5, PeriodTicks: 2048}
	prog := PeriodicTaskNative(p)
	res, err := RunNative(prog, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	late, _ := HeapWord(res.Machine, prog, "late")
	if late == 0 {
		t.Error("expected late activations under saturation")
	}
}

func TestTreeSearchNative(t *testing.T) {
	prog, err := TreeSearch(TreeSearchParams{Trees: 2, NodesPerTree: 20, Searches: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(prog, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	searches, _ := HeapWord(res.Machine, prog, "searches")
	found, _ := HeapWord(res.Machine, prog, "found")
	nodes, _ := HeapByte(res.Machine, prog, "nodecount")
	if searches < 200 {
		t.Errorf("searches = %d, want >= 200", searches)
	}
	if nodes != 40 {
		t.Errorf("nodecount = %d, want 40 (arena filled)", nodes)
	}
	if found == 0 {
		t.Error("no search ever hit; tree routing is broken")
	}
	if found >= searches {
		t.Errorf("found %d >= searches %d", found, searches)
	}
}

func TestTreeSearchRejectsOversizedArena(t *testing.T) {
	if _, err := TreeSearch(TreeSearchParams{Trees: 6, NodesPerTree: 60}); err == nil {
		t.Error("expected arena-size error")
	}
}

func TestKernelBenchmarksAssemble(t *testing.T) {
	for _, kb := range KernelBenchmarks() {
		if err := kb.Program.Validate(); err != nil {
			t.Errorf("%s: %v", kb.Name, err)
		}
		if kb.Program.SizeBytes() < 30 {
			t.Errorf("%s: suspiciously small (%d bytes)", kb.Name, kb.Program.SizeBytes())
		}
	}
}

func TestAllocDemoNativeAndLimits(t *testing.T) {
	prog, err := AllocDemo(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNative(prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := HeapWord(res.Machine, prog, "sum")
	want := uint16(3 * 10 * 9 / 2) // payloads 0,3,6,...,27
	if sum != want {
		t.Errorf("alloc demo sum = %d, want %d", sum, want)
	}
	iters, _ := HeapByte(res.Machine, prog, "iters")
	if iters != 3 {
		t.Errorf("iterations = %d, want 3 (pool reset between cycles)", iters)
	}
	if _, err := AllocDemo(0); err == nil {
		t.Error("expected node-count validation error")
	}
	if _, err := AllocDemo(100); err == nil {
		t.Error("expected node-count validation error")
	}
}

package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot blob")

// testState builds a synthetic checkpoint exercising every field and every
// optional branch of the codec: a parked fault, populated device buffers,
// two kernel tasks with a fault log, trace events, a telemetry sample with
// per-task rows, and a profiler with histograms, stack ring, relocation
// marks, watchpoints and hits. Fully hand-built, so its encoding is stable
// enough to pin as the golden format blob.
func testState() *State {
	m := &mcu.MachineState{
		Data:        make([]byte, mcu.DataSize),
		PC:          0x1234,
		Cycle:       987_654_321,
		Idle:        1024,
		Insts:       400_000,
		Sleeping:    true,
		FaultKind:   3,
		FaultPC:     0x42,
		FaultAddr:   0x10FE,
		FaultNote:   "guard violation",
		Pending:     0b101,
		Stepwise:    true,
		GuardLo:     0x200,
		GuardHi:     0x4FF,
		GuardOn:     true,
		SampleEvery: 65536,
		SampleNext:  1_048_576,
		CodeEnd:     0x800,
		Dev: mcu.DeviceState{
			NextEvent:   987_700_000,
			T0BaseCycle: 12, T0BaseCount: 34, T0Prescale: 64,
			ADCBusyUntil: 56, ADCPending: true, ADCLFSR: 0xBEEF,
			UARTBusyUntil: 78, UARTPendingB: 'x', UARTPending: true,
			UARTOut:        []byte("hello, node"),
			RadioBusyUntil: 90, RadioPendingB: 0x55, RadioPending: true,
			RadioOut: []mcu.RadioFrame{{Byte: 0xAA, Cycle: 101}, {Byte: 0xBB, Cycle: 202}},
			RadioIn:  []byte{1, 2, 3},
		},
	}
	for i := range m.Data {
		m.Data[i] = byte(i * 7)
	}
	for i := range m.FlashHash {
		m.FlashHash[i] = byte(0xF0 + i)
	}

	k := &kernel.KernelState{
		Cur:      1,
		Booted:   true,
		Service:  2,
		FlashTop: 0x1F000,
		AppBase:  0x300,
		AppEnd:   0x1000,
		Regions:  []int{1, 0},
		FaultLog: []kernel.FaultRecord{{
			Cycle: 777, Task: 0, Name: "blink#0", Service: 1,
			Kind: "stack-overflow", PC: 0x99, Sym: "main", Reason: "sp below guard",
		}},
	}
	k.Stats.ContextSwitches = 12
	k.Stats.Preemptions = 5
	k.Stats.BranchTraps = 9000
	k.Stats.SliceChecks = 10_000
	k.Stats.Relocations = 3
	k.Stats.RelocatedBytes = 640
	k.Stats.Terminations = 1
	k.Stats.ServiceCalls[1] = 42
	k.Stats.ServiceCycles[1] = 4200
	k.Stats.ServiceOverhead[1] = 420
	k.Stats.BootCycles = 1111
	k.Stats.SwitchCycles = 2222
	k.Stats.RelocCycles = 3333
	for ti := 0; ti < 2; ti++ {
		t := kernel.TaskRecord{
			ID: ti, Name: []string{"blink#0", "sense#1"}[ti], Base: uint32(0x1000 * (ti + 1)),
			PL: 0x300, PH: 0x500, PU: 0x480, State: uint8(ti + 1), WakeAt: uint64(ti) * 500,
			SREG: 0x80, SPPhys: 0x47F, PC: uint32(0x111 * (ti + 1)), SPShad: 0x1FF,
			BrLeft: 17, SliceAt: 100, RunAt: 200, RunCyc: 300, T3Latch: 7,
			Relocations: ti, MaxStackUsed: 96, ExitReason: "", Switches: 6, KernelCycles: 5050,
		}
		for i := range t.Regs {
			t.Regs[i] = byte(ti*32 + i)
		}
		t.ServiceCalls[3] = 8
		k.Tasks = append(k.Tasks, t)
	}

	return &State{
		Machine: m,
		Kernel:  k,
		Trace: &trace.RecorderState{
			Limit:   0,
			Dropped: 2,
			Events: []trace.Event{
				{Cycle: 1, Kind: trace.KindBoot, Task: -1, Arg: 0, Arg2: 0, PC: 0, Detail: "boot"},
				{Cycle: 50, Kind: trace.KindTrapEnter, Task: 0, Arg: 3, Arg2: 4, PC: 0x77, Detail: ""},
			},
		},
		Telemetry: &telemetry.SamplerState{
			Every: 65536,
			Ring:  1024,
			Total: 3,
			Samples: []telemetry.Sample{{
				At: 65536, Cycle: 65600, IdleCycles: 12,
				ServiceOverheadCycles: 34, SwitchCycles: 56, RelocCycles: 78, BootCycles: 90,
				ContextSwitches: 2, Preemptions: 1, SliceChecks: 400, BranchTraps: 300,
				Relocations: 1, RelocatedBytes: 128, Terminations: 0,
				HeapBytes: 64, StackBytes: 256, FreeBytes: 2048, Running: 1,
				EnergyPJ: 213_500_000, EnergyCPUActivePJ: 213_000_000, EnergyCPUSleepPJ: 72,
				EnergyRadioPJ: 420_000, EnergyUARTPJ: 60_000, EnergyADCPJ: 16_000, EnergyTimerPJ: 3_928,
				Tasks: []telemetry.TaskSample{{
					ID: 0, Name: "blink#0", State: "ready", RunCycles: 30_000, KernelCycles: 900,
					StackUsed: 40, StackPeak: 96, StackAlloc: 128, HeapBytes: 16,
					Traps: 12, Relocations: 1, Switches: 3, EnergyPJ: 97_650_000,
				}},
			}},
			TaskIDs:   []int32{0, 1},
			TaskNames: []string{"blink#0", "sense#1"},
		},
		Profile: &profile.ProfilerState{
			ClockHz: 7_372_800, StackInterval: 8192, StackRing: 4096, WatchLimit: 65536,
			Now: 987_654_321, Idle: 1024, Switches: 4000, Compaction: 5000, Boot: 1111, Cur: 1,
			Tasks: []profile.TaskProfState{{
				ID: 0, Name: "blink#0", PL: 0x300, PH: 0x500, PU: 0x480,
				PCs:   []profile.PCCount{{PC: 0x10, Cycles: 99}, {PC: 0x11, Cycles: 101}},
				Reloc: 640, Intr: 50, NextSample: 991_000,
				Ring:    []profile.StackSample{{Cycle: 7, SP: 0x47E, Used: 2}},
				RingPos: 0, Wrapped: false, Samples: 1, Peak: 96,
				Relocs: []profile.RelocMark{{Cycle: 600, PC: 0x33, Granted: 64, Cycles: 888}},
			}},
			Watches:     []profile.Watchpoint{{Addr: 0x310, Len: 2, Read: true, Write: true}},
			Hits:        []profile.WatchHit{{Cycle: 123, Task: 0, PC: 0x34, Addr: 0x311, Write: true}},
			DroppedHits: 1,
		},
		Energy: &energy.MeterState{
			SleepCycles: 1024,
			RadioBytes:  2, RadioCycles: 7680,
			UARTBytes: 11, UARTCycles: 14_080,
			ADCConvs: 5, ADCCycles: 8320,
			TimerCycles: 50_000, TimerOn: true, TimerSince: 987_000_000,
		},
	}
}

// TestRoundTrip: decode(encode(state)) reproduces the state exactly, and
// re-encoding the decoded state reproduces the bytes exactly — the encoding
// is canonical.
func TestRoundTrip(t *testing.T) {
	st := testState()
	blob, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Error("decoded state differs from the original")
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, blob) {
		t.Error("re-encoding the decoded state produced different bytes")
	}
}

// TestRoundTripNoObservers: a snapshot from an unobserved system (no trace,
// telemetry, or profile state) round-trips with the absences preserved.
func TestRoundTripNoObservers(t *testing.T) {
	st := testState()
	st.Trace, st.Telemetry, st.Profile, st.Energy = nil, nil, nil, nil
	blob, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil || got.Telemetry != nil || got.Profile != nil || got.Energy != nil {
		t.Error("absent observers decoded as present")
	}
	if !reflect.DeepEqual(got, st) {
		t.Error("decoded state differs from the original")
	}
}

func TestEncodeRequiresMachineAndKernel(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
	if _, err := Encode(&State{Kernel: testState().Kernel}); err == nil {
		t.Error("Encode without machine state succeeded")
	}
	if _, err := Encode(&State{Machine: testState().Machine}); err == nil {
		t.Error("Encode without kernel state succeeded")
	}
}

// reblob reconstructs a blob around a (possibly doctored) payload with a
// correct length and hash, so tests can reach the payload decoder behind the
// integrity check.
func reblob(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = le32(out, SchemaVersion)
	out = le64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// TestDecodeRejects walks every failure class: each doctored blob must fail
// with its distinct typed error and never panic.
func TestDecodeRejects(t *testing.T) {
	good, err := Encode(testState())
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0x01

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'

	shortPayload := append([]byte(nil), good[:len(good)-5]...)

	trailing := append(append([]byte(nil), good...), 0xEE)

	// A payload that hashes correctly but lies internally: flip the machine
	// Sleeping bool byte to 2 (offset: 4-byte Data length prefix + Data +
	// PC u32 + Cycle/Idle/Insts u64s).
	badBool := append([]byte(nil), good[headerSize:]...)
	badBool[4+mcu.DataSize+4+24] = 2

	// An impossible slice length: truncate the payload mid-struct and
	// re-wrap, so a nested count overruns what remains.
	shortStruct := reblob(good[headerSize : headerSize+40])

	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short with magic", []byte("SSNP\x01"), ErrTruncated},
		{"short without magic", []byte("GIF89a"), ErrBadMagic},
		{"bad magic", badMagic, ErrBadMagic},
		{"header only", good[:20], ErrTruncated},
		{"payload cut short", shortPayload, ErrTruncated},
		{"trailing garbage", trailing, ErrMalformed},
		{"flipped payload bit", corrupt, ErrCorrupt},
		{"malformed bool", reblob(badBool), ErrMalformed},
		{"overrunning field", shortStruct, ErrMalformed},
	}
	for _, tc := range cases {
		st, err := Decode(tc.blob)
		if st != nil || !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode = (%v, %v), want error %v", tc.name, st, err, tc.want)
		}
	}
}

// TestVersionBumpRejected: a blob declaring a future schema version is
// refused up front with an error naming both versions, before any payload
// parsing.
func TestVersionBumpRejected(t *testing.T) {
	blob, err := Encode(testState())
	if err != nil {
		t.Fatal(err)
	}
	bumped := append([]byte(nil), blob...)
	bumped[4] = SchemaVersion + 1

	st, err := Decode(bumped)
	if st != nil || !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode of bumped version = (%v, %v), want ErrVersion", st, err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != SchemaVersion+1 {
		t.Fatalf("error %v does not carry the declared version", err)
	}
	for _, part := range []string{"unsupported schema version 3", "supported: 2"} {
		if !strings.Contains(err.Error(), part) {
			t.Errorf("error %q does not mention %q", err, part)
		}
	}
}

// TestV1BlobRejected: a real schema-v1 blob (the retired golden, pinned in
// testdata) fails with a typed VersionError carrying version 1 — there is no
// cross-version migration, per the schema-evolution policy in DESIGN.md.
func TestV1BlobRejected(t *testing.T) {
	hexBlob, err := os.ReadFile(filepath.Join("testdata", "snapshot_v1.hex"))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := hex.DecodeString(strings.TrimSpace(string(hexBlob)))
	if err != nil {
		t.Fatal(err)
	}
	st, decErr := Decode(blob)
	if st != nil || !errors.Is(decErr, ErrVersion) {
		t.Fatalf("Decode of v1 blob = (%v, %v), want ErrVersion", st, decErr)
	}
	var ve *VersionError
	if !errors.As(decErr, &ve) || ve.Got != 1 {
		t.Fatalf("error %v does not carry version 1", decErr)
	}
}

// TestGoldenFormat pins the exact wire bytes of the synthetic state. Any
// codec change that redefines the format breaks this test and must come with
// a SchemaVersion bump and a regenerated golden (go test -run Golden
// -update).
func TestGoldenFormat(t *testing.T) {
	blob, err := Encode(testState())
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(blob)

	path := filepath.Join("testdata", "snapshot_v2.hex")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Error("encoding differs from the golden blob: the wire format changed; bump SchemaVersion and regenerate with -update")
	}

	// The golden must also still decode to the same state — guards against
	// a same-bytes-different-meaning decoder change.
	decoded, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, testState()) {
		t.Error("golden blob no longer decodes to the reference state")
	}
}

// FuzzSnapshotRoundTrip: whatever the input, Decode never panics; when it
// accepts a blob the decoded state must re-encode to the identical bytes
// (serialize -> deserialize -> re-serialize identity), and wrapping the raw
// input as a correctly-hashed payload must drive the payload parser to a
// typed verdict, never a panic.
func FuzzSnapshotRoundTrip(f *testing.F) {
	good, err := Encode(testState())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("SSNP"))
	f.Add([]byte{})
	mut := append([]byte(nil), good...)
	mut[headerSize+100] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := Decode(data); err == nil {
			again, err := Encode(st)
			if err != nil {
				t.Fatalf("re-encoding an accepted blob failed: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatal("accepted blob is not canonical: re-encoding produced different bytes")
			}
		}
		// Exercise the payload parser past the integrity check.
		if st, err := Decode(reblob(data)); err == nil {
			if _, err := Encode(st); err != nil {
				t.Fatalf("re-encoding an accepted payload failed: %v", err)
			}
		}
	})
}

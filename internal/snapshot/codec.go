package snapshot

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/rewriter"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// le32/le64 append little-endian integers; rd32/rd64 read them. The codec is
// hand-rolled rather than gob/encoding-based so the byte stream is fully
// deterministic (canonical: encode(decode(b)) == b), diffable against the
// golden, and rejects malformed input with typed errors instead of panics.
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func rd64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// enc appends primitives to a growing payload.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *enc) u32(v uint32) { e.b = le32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = le64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) optional(present bool) { e.bool(present) }

func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

func (e *enc) str(v string) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

func (e *enc) count(n int) { e.u32(uint32(n)) }

// dec consumes a payload with a sticky error: after the first failure every
// read returns zero values, so decoders can run straight through and check
// d.err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
	}
}

// need reserves n bytes, failing with ErrTruncated-flavored ErrMalformed
// when the payload is too short. (The payload length is authenticated by the
// header hash, so running out of bytes here means the contents lie about
// their own sizes — malformed, not truncated.)
func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("field of %d bytes overruns payload (%d left)", n, len(d.b)-d.off)
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := uint16(d.b[d.off]) | uint16(d.b[d.off+1])<<8
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := rd32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := rd64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bool() bool {
	switch v := d.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte is %#x, want 0 or 1", v)
		return false
	}
}

func (d *dec) optional() bool { return d.bool() }

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	v := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

// sliceCount reads a slice length and sanity-checks it against the remaining
// payload at minSize bytes per element, so a bit-flipped count cannot drive
// a multi-gigabyte allocation before the shortfall is noticed.
func (d *dec) sliceCount(minSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.b)-d.off)/minSize {
		d.fail("slice count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (e *enc) u64x16(a [16]uint64) {
	for _, v := range a {
		e.u64(v)
	}
}

func (d *dec) u64x16() (a [16]uint64) {
	for i := range a {
		a[i] = d.u64()
	}
	return a
}

// --- mcu ---

func (e *enc) machineState(st *mcu.MachineState) {
	e.bytes(st.Data)
	e.u32(st.PC)
	e.u64(st.Cycle)
	e.u64(st.Idle)
	e.u64(st.Insts)
	e.bool(st.Sleeping)
	e.u8(st.FaultKind)
	e.u32(st.FaultPC)
	e.u16(st.FaultAddr)
	e.str(st.FaultNote)
	e.u8(st.Pending)
	e.bool(st.Stepwise)
	e.u16(st.GuardLo)
	e.u16(st.GuardHi)
	e.bool(st.GuardOn)
	e.u64(st.SampleEvery)
	e.u64(st.SampleNext)
	e.u32(st.CodeEnd)
	e.b = append(e.b, st.FlashHash[:]...)

	dv := &st.Dev
	e.u64(dv.NextEvent)
	e.u64(dv.T0BaseCycle)
	e.u16(dv.T0BaseCount)
	e.u32(dv.T0Prescale)
	e.u64(dv.ADCBusyUntil)
	e.bool(dv.ADCPending)
	e.u16(dv.ADCLFSR)
	e.u64(dv.UARTBusyUntil)
	e.u8(dv.UARTPendingB)
	e.bool(dv.UARTPending)
	e.bytes(dv.UARTOut)
	e.u64(dv.RadioBusyUntil)
	e.u8(dv.RadioPendingB)
	e.bool(dv.RadioPending)
	e.count(len(dv.RadioOut))
	for _, f := range dv.RadioOut {
		e.u8(f.Byte)
		e.u64(f.Cycle)
	}
	e.bytes(dv.RadioIn)
}

func (d *dec) machineState() *mcu.MachineState {
	st := &mcu.MachineState{}
	st.Data = d.bytes()
	st.PC = d.u32()
	st.Cycle = d.u64()
	st.Idle = d.u64()
	st.Insts = d.u64()
	st.Sleeping = d.bool()
	st.FaultKind = d.u8()
	st.FaultPC = d.u32()
	st.FaultAddr = d.u16()
	st.FaultNote = d.str()
	st.Pending = d.u8()
	st.Stepwise = d.bool()
	st.GuardLo = d.u16()
	st.GuardHi = d.u16()
	st.GuardOn = d.bool()
	st.SampleEvery = d.u64()
	st.SampleNext = d.u64()
	st.CodeEnd = d.u32()
	if d.need(32) {
		copy(st.FlashHash[:], d.b[d.off:d.off+32])
		d.off += 32
	}

	dv := &st.Dev
	dv.NextEvent = d.u64()
	dv.T0BaseCycle = d.u64()
	dv.T0BaseCount = d.u16()
	dv.T0Prescale = d.u32()
	dv.ADCBusyUntil = d.u64()
	dv.ADCPending = d.bool()
	dv.ADCLFSR = d.u16()
	dv.UARTBusyUntil = d.u64()
	dv.UARTPendingB = d.u8()
	dv.UARTPending = d.bool()
	dv.UARTOut = d.bytes()
	dv.RadioBusyUntil = d.u64()
	dv.RadioPendingB = d.u8()
	dv.RadioPending = d.bool()
	n := d.sliceCount(9)
	if n > 0 {
		dv.RadioOut = make([]mcu.RadioFrame, n)
		for i := range dv.RadioOut {
			dv.RadioOut[i].Byte = d.u8()
			dv.RadioOut[i].Cycle = d.u64()
		}
	}
	dv.RadioIn = d.bytes()
	return st
}

// --- kernel ---

func (e *enc) kernelState(st *kernel.KernelState) {
	s := &st.Stats
	e.i64(int64(s.ContextSwitches))
	e.i64(int64(s.Preemptions))
	e.u64(s.BranchTraps)
	e.u64(s.SliceChecks)
	e.i64(int64(s.Relocations))
	e.u64(s.RelocatedBytes)
	e.i64(int64(s.Terminations))
	e.u64x16(s.ServiceCalls)
	e.u64x16(s.ServiceCycles)
	e.u64x16(s.ServiceOverhead)
	e.u64(s.BootCycles)
	e.u64(s.SwitchCycles)
	e.u64(s.RelocCycles)

	e.i64(int64(st.Cur))
	e.bool(st.Booted)
	e.u8(st.Service)
	e.u32(st.FlashTop)
	e.u16(st.AppBase)
	e.u16(st.AppEnd)

	e.count(len(st.Tasks))
	for i := range st.Tasks {
		t := &st.Tasks[i]
		e.i64(int64(t.ID))
		e.str(t.Name)
		e.u32(t.Base)
		e.u16(t.PL)
		e.u16(t.PH)
		e.u16(t.PU)
		e.u8(t.State)
		e.u64(t.WakeAt)
		e.b = append(e.b, t.Regs[:]...)
		e.u8(t.SREG)
		e.u16(t.SPPhys)
		e.u32(t.PC)
		e.u16(t.SPShad)
		e.u32(t.BrLeft)
		e.u64(t.SliceAt)
		e.u64(t.RunAt)
		e.u64(t.RunCyc)
		e.u8(t.T3Latch)
		e.i64(int64(t.Relocations))
		e.u16(t.MaxStackUsed)
		e.str(t.ExitReason)
		e.i64(int64(t.Switches))
		e.u64x16(t.ServiceCalls)
		e.u64(t.KernelCycles)
	}
	e.count(len(st.Regions))
	for _, id := range st.Regions {
		e.i64(int64(id))
	}
	e.count(len(st.FaultLog))
	for i := range st.FaultLog {
		f := &st.FaultLog[i]
		e.u64(f.Cycle)
		e.i64(int64(f.Task))
		e.str(f.Name)
		e.u8(uint8(f.Service))
		e.str(f.Kind)
		e.u32(f.PC)
		e.str(f.Sym)
		e.str(f.Reason)
	}
}

func (d *dec) kernelState() *kernel.KernelState {
	st := &kernel.KernelState{}
	s := &st.Stats
	s.ContextSwitches = int(d.i64())
	s.Preemptions = int(d.i64())
	s.BranchTraps = d.u64()
	s.SliceChecks = d.u64()
	s.Relocations = int(d.i64())
	s.RelocatedBytes = d.u64()
	s.Terminations = int(d.i64())
	s.ServiceCalls = d.u64x16()
	s.ServiceCycles = d.u64x16()
	s.ServiceOverhead = d.u64x16()
	s.BootCycles = d.u64()
	s.SwitchCycles = d.u64()
	s.RelocCycles = d.u64()

	st.Cur = int(d.i64())
	st.Booted = d.bool()
	st.Service = d.u8()
	st.FlashTop = d.u32()
	st.AppBase = d.u16()
	st.AppEnd = d.u16()

	n := d.sliceCount(64)
	if n > 0 {
		st.Tasks = make([]kernel.TaskRecord, n)
	}
	for i := range st.Tasks {
		t := &st.Tasks[i]
		t.ID = int(d.i64())
		t.Name = d.str()
		t.Base = d.u32()
		t.PL = d.u16()
		t.PH = d.u16()
		t.PU = d.u16()
		t.State = d.u8()
		t.WakeAt = d.u64()
		if d.need(32) {
			copy(t.Regs[:], d.b[d.off:d.off+32])
			d.off += 32
		}
		t.SREG = d.u8()
		t.SPPhys = d.u16()
		t.PC = d.u32()
		t.SPShad = d.u16()
		t.BrLeft = d.u32()
		t.SliceAt = d.u64()
		t.RunAt = d.u64()
		t.RunCyc = d.u64()
		t.T3Latch = d.u8()
		t.Relocations = int(d.i64())
		t.MaxStackUsed = d.u16()
		t.ExitReason = d.str()
		t.Switches = int(d.i64())
		t.ServiceCalls = d.u64x16()
		t.KernelCycles = d.u64()
	}
	n = d.sliceCount(8)
	if n > 0 {
		st.Regions = make([]int, n)
		for i := range st.Regions {
			st.Regions[i] = int(d.i64())
		}
	}
	n = d.sliceCount(8)
	if n > 0 {
		st.FaultLog = make([]kernel.FaultRecord, n)
	}
	for i := range st.FaultLog {
		f := &st.FaultLog[i]
		f.Cycle = d.u64()
		f.Task = int(d.i64())
		f.Name = d.str()
		f.Service = rewriter.Class(d.u8())
		f.Kind = d.str()
		f.PC = d.u32()
		f.Sym = d.str()
		f.Reason = d.str()
	}
	return st
}

// --- trace ---

func (e *enc) recorderState(st *trace.RecorderState) {
	e.i64(int64(st.Limit))
	e.u64(st.Dropped)
	e.count(len(st.Events))
	for i := range st.Events {
		ev := &st.Events[i]
		e.u64(ev.Cycle)
		e.u8(uint8(ev.Kind))
		e.u32(uint32(ev.Task))
		e.u64(ev.Arg)
		e.u64(ev.Arg2)
		e.u32(ev.PC)
		e.str(ev.Detail)
	}
}

func (d *dec) recorderState() *trace.RecorderState {
	st := &trace.RecorderState{}
	st.Limit = int(d.i64())
	st.Dropped = d.u64()
	n := d.sliceCount(33)
	if n > 0 {
		st.Events = make([]trace.Event, n)
	}
	for i := range st.Events {
		ev := &st.Events[i]
		ev.Cycle = d.u64()
		ev.Kind = trace.Kind(d.u8())
		ev.Task = int32(d.u32())
		ev.Arg = d.u64()
		ev.Arg2 = d.u64()
		ev.PC = d.u32()
		ev.Detail = d.str()
	}
	return st
}

// --- telemetry ---

func (e *enc) samplerState(st *telemetry.SamplerState) {
	e.u64(st.Every)
	e.i64(int64(st.Ring))
	e.u64(st.Total)
	e.count(len(st.Samples))
	for i := range st.Samples {
		e.sample(&st.Samples[i])
	}
	e.count(len(st.TaskIDs))
	for _, id := range st.TaskIDs {
		e.u32(uint32(id))
	}
	e.count(len(st.TaskNames))
	for _, name := range st.TaskNames {
		e.str(name)
	}
}

func (e *enc) sample(s *telemetry.Sample) {
	e.u64(s.At)
	e.u64(s.Cycle)
	e.u64(s.IdleCycles)
	e.u64(s.ServiceOverheadCycles)
	e.u64(s.SwitchCycles)
	e.u64(s.RelocCycles)
	e.u64(s.BootCycles)
	e.i64(int64(s.ContextSwitches))
	e.i64(int64(s.Preemptions))
	e.u64(s.SliceChecks)
	e.u64(s.BranchTraps)
	e.i64(int64(s.Relocations))
	e.u64(s.RelocatedBytes)
	e.i64(int64(s.Terminations))
	e.u32(s.HeapBytes)
	e.u32(s.StackBytes)
	e.u32(s.FreeBytes)
	e.u32(uint32(s.Running))
	e.count(len(s.Tasks))
	for j := range s.Tasks {
		t := &s.Tasks[j]
		e.u32(uint32(t.ID))
		e.str(t.Name)
		e.str(t.State)
		e.u64(t.RunCycles)
		e.u64(t.KernelCycles)
		e.u16(t.StackUsed)
		e.u16(t.StackPeak)
		e.u16(t.StackAlloc)
		e.u16(t.HeapBytes)
		e.u64(t.Traps)
		e.i64(int64(t.Relocations))
		e.i64(int64(t.Switches))
		e.u64(t.EnergyPJ)
	}
	// Schema v2: cumulative energy gauges (all zero on unmetered runs).
	e.u64(s.EnergyPJ)
	e.u64(s.EnergyCPUActivePJ)
	e.u64(s.EnergyCPUSleepPJ)
	e.u64(s.EnergyRadioPJ)
	e.u64(s.EnergyUARTPJ)
	e.u64(s.EnergyADCPJ)
	e.u64(s.EnergyTimerPJ)
}

func (d *dec) samplerState() *telemetry.SamplerState {
	st := &telemetry.SamplerState{}
	st.Every = d.u64()
	st.Ring = int(d.i64())
	st.Total = d.u64()
	n := d.sliceCount(64)
	if n > 0 {
		st.Samples = make([]telemetry.Sample, n)
	}
	for i := range st.Samples {
		d.sample(&st.Samples[i])
	}
	n = d.sliceCount(4)
	if n > 0 {
		st.TaskIDs = make([]int32, n)
		for i := range st.TaskIDs {
			st.TaskIDs[i] = int32(d.u32())
		}
	}
	n = d.sliceCount(4)
	if n > 0 {
		st.TaskNames = make([]string, n)
		for i := range st.TaskNames {
			st.TaskNames[i] = d.str()
		}
	}
	return st
}

func (d *dec) sample(s *telemetry.Sample) {
	s.At = d.u64()
	s.Cycle = d.u64()
	s.IdleCycles = d.u64()
	s.ServiceOverheadCycles = d.u64()
	s.SwitchCycles = d.u64()
	s.RelocCycles = d.u64()
	s.BootCycles = d.u64()
	s.ContextSwitches = int(d.i64())
	s.Preemptions = int(d.i64())
	s.SliceChecks = d.u64()
	s.BranchTraps = d.u64()
	s.Relocations = int(d.i64())
	s.RelocatedBytes = d.u64()
	s.Terminations = int(d.i64())
	s.HeapBytes = d.u32()
	s.StackBytes = d.u32()
	s.FreeBytes = d.u32()
	s.Running = int32(d.u32())
	n := d.sliceCount(50)
	if n > 0 {
		s.Tasks = make([]telemetry.TaskSample, n)
	}
	for j := range s.Tasks {
		t := &s.Tasks[j]
		t.ID = int32(d.u32())
		t.Name = d.str()
		t.State = d.str()
		t.RunCycles = d.u64()
		t.KernelCycles = d.u64()
		t.StackUsed = d.u16()
		t.StackPeak = d.u16()
		t.StackAlloc = d.u16()
		t.HeapBytes = d.u16()
		t.Traps = d.u64()
		t.Relocations = int(d.i64())
		t.Switches = int(d.i64())
		t.EnergyPJ = d.u64()
	}
	s.EnergyPJ = d.u64()
	s.EnergyCPUActivePJ = d.u64()
	s.EnergyCPUSleepPJ = d.u64()
	s.EnergyRadioPJ = d.u64()
	s.EnergyUARTPJ = d.u64()
	s.EnergyADCPJ = d.u64()
	s.EnergyTimerPJ = d.u64()
}

// --- energy ---

func (e *enc) energyState(st *energy.MeterState) {
	e.u64(st.SleepCycles)
	e.u64(st.RadioBytes)
	e.u64(st.RadioCycles)
	e.u64(st.UARTBytes)
	e.u64(st.UARTCycles)
	e.u64(st.ADCConvs)
	e.u64(st.ADCCycles)
	e.u64(st.TimerCycles)
	e.bool(st.TimerOn)
	e.u64(st.TimerSince)
}

func (d *dec) energyState() *energy.MeterState {
	st := &energy.MeterState{}
	st.SleepCycles = d.u64()
	st.RadioBytes = d.u64()
	st.RadioCycles = d.u64()
	st.UARTBytes = d.u64()
	st.UARTCycles = d.u64()
	st.ADCConvs = d.u64()
	st.ADCCycles = d.u64()
	st.TimerCycles = d.u64()
	st.TimerOn = d.bool()
	st.TimerSince = d.u64()
	return st
}

// --- profile ---

func (e *enc) profilerState(st *profile.ProfilerState) {
	e.u64(st.ClockHz)
	e.u64(st.StackInterval)
	e.i64(int64(st.StackRing))
	e.i64(int64(st.WatchLimit))
	e.u64(st.Now)
	e.u64(st.Idle)
	e.u64(st.Switches)
	e.u64(st.Compaction)
	e.u64(st.Boot)
	e.u32(uint32(st.Cur))
	e.count(len(st.Tasks))
	for i := range st.Tasks {
		t := &st.Tasks[i]
		e.u32(uint32(t.ID))
		e.str(t.Name)
		e.u16(t.PL)
		e.u16(t.PH)
		e.u16(t.PU)
		e.count(len(t.PCs))
		for _, pcc := range t.PCs {
			e.u32(pcc.PC)
			e.u64(pcc.Cycles)
		}
		e.u64x16(t.Svc)
		e.u64(t.Reloc)
		e.u64(t.Intr)
		e.u64(t.NextSample)
		e.count(len(t.Ring))
		for _, smp := range t.Ring {
			e.u64(smp.Cycle)
			e.u16(smp.SP)
			e.u32(smp.Used)
		}
		e.i64(int64(t.RingPos))
		e.bool(t.Wrapped)
		e.u64(t.Samples)
		e.u32(t.Peak)
		e.count(len(t.Relocs))
		for _, r := range t.Relocs {
			e.u64(r.Cycle)
			e.u32(r.PC)
			e.u64(r.Granted)
			e.u64(r.Cycles)
		}
	}
	e.count(len(st.Watches))
	for _, w := range st.Watches {
		e.u16(w.Addr)
		e.u16(w.Len)
		e.bool(w.Read)
		e.bool(w.Write)
	}
	e.count(len(st.Hits))
	for _, h := range st.Hits {
		e.u64(h.Cycle)
		e.u32(uint32(h.Task))
		e.u32(h.PC)
		e.u16(h.Addr)
		e.bool(h.Write)
	}
	e.u64(st.DroppedHits)
}

func (d *dec) profilerState() *profile.ProfilerState {
	st := &profile.ProfilerState{}
	st.ClockHz = d.u64()
	st.StackInterval = d.u64()
	st.StackRing = int(d.i64())
	st.WatchLimit = int(d.i64())
	st.Now = d.u64()
	st.Idle = d.u64()
	st.Switches = d.u64()
	st.Compaction = d.u64()
	st.Boot = d.u64()
	st.Cur = int32(d.u32())
	n := d.sliceCount(64)
	if n > 0 {
		st.Tasks = make([]profile.TaskProfState, n)
	}
	for i := range st.Tasks {
		t := &st.Tasks[i]
		t.ID = int32(d.u32())
		t.Name = d.str()
		t.PL = d.u16()
		t.PH = d.u16()
		t.PU = d.u16()
		m := d.sliceCount(12)
		if m > 0 {
			t.PCs = make([]profile.PCCount, m)
			for j := range t.PCs {
				t.PCs[j].PC = d.u32()
				t.PCs[j].Cycles = d.u64()
			}
		}
		t.Svc = d.u64x16()
		t.Reloc = d.u64()
		t.Intr = d.u64()
		t.NextSample = d.u64()
		m = d.sliceCount(14)
		if m > 0 {
			t.Ring = make([]profile.StackSample, m)
			for j := range t.Ring {
				t.Ring[j].Cycle = d.u64()
				t.Ring[j].SP = d.u16()
				t.Ring[j].Used = d.u32()
			}
		}
		t.RingPos = int(d.i64())
		t.Wrapped = d.bool()
		t.Samples = d.u64()
		t.Peak = d.u32()
		m = d.sliceCount(28)
		if m > 0 {
			t.Relocs = make([]profile.RelocMark, m)
			for j := range t.Relocs {
				t.Relocs[j].Cycle = d.u64()
				t.Relocs[j].PC = d.u32()
				t.Relocs[j].Granted = d.u64()
				t.Relocs[j].Cycles = d.u64()
			}
		}
	}
	n = d.sliceCount(6)
	if n > 0 {
		st.Watches = make([]profile.Watchpoint, n)
		for i := range st.Watches {
			st.Watches[i].Addr = d.u16()
			st.Watches[i].Len = d.u16()
			st.Watches[i].Read = d.bool()
			st.Watches[i].Write = d.bool()
		}
	}
	n = d.sliceCount(19)
	if n > 0 {
		st.Hits = make([]profile.WatchHit, n)
		for i := range st.Hits {
			st.Hits[i].Cycle = d.u64()
			st.Hits[i].Task = int32(d.u32())
			st.Hits[i].PC = d.u32()
			st.Hits[i].Addr = d.u16()
			st.Hits[i].Write = d.bool()
		}
	}
	st.DroppedHits = d.u64()
	return st
}

// Package snapshot defines the versioned, integrity-hashed binary encoding
// of a complete simulated-node checkpoint: machine state (SRAM, registers,
// devices, pending interrupts, RNG streams), kernel state (task table,
// region geometry, cycle ledgers, fault log), and the attached observers'
// accumulated output (trace events, telemetry ring, profiler histograms).
//
// The program image is deliberately not part of a snapshot. Flash and the
// predecoded micro-op cache are immutable while running, so a snapshot
// carries only their SHA-256; a restore target deploys the same programs and
// the hash check proves the images match. In-process, mcu.Machine.AdoptImage
// lets a restored machine share the parent's arrays copy-on-write, so
// fanning N variants out of one warm checkpoint does not copy flash N times.
//
// Wire format:
//
//	offset  size  field
//	0       4     magic "SSNP"
//	4       4     schema version (little-endian u32)
//	8       8     payload length (little-endian u64)
//	16      32    SHA-256 of payload
//	48      n     payload (see codec.go)
//
// All integers are little-endian. Decoding is strict: a wrong magic, an
// unknown version, a truncated buffer, a hash mismatch, or malformed payload
// contents each fail with a distinct typed error, and decode never panics on
// adversarial input (FuzzSnapshotRoundTrip enforces this).
package snapshot

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SchemaVersion is the wire-format version this package reads and writes.
// Version history:
//
//	1  initial format: machine + kernel + optional trace/telemetry/profile
//	2  adds the optional energy-meter ledger after the profile section, and
//	   energy gauges to every telemetry sample (see codec.go)
//
// Each version is read and written by exactly one release line; there is no
// cross-version migration (DESIGN.md documents the schema-evolution policy).
const SchemaVersion = 2

// magic identifies a snapshot blob.
const magic = "SSNP"

// headerSize is the fixed prefix before the payload.
const headerSize = 4 + 4 + 8 + 32

// Decode errors, distinguishable with errors.Is.
var (
	// ErrBadMagic: the blob does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrVersion: the blob's schema version is not supported.
	ErrVersion = errors.New("snapshot: unsupported schema version")
	// ErrTruncated: the blob ends before the declared payload does.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt: the payload does not match its integrity hash.
	ErrCorrupt = errors.New("snapshot: integrity hash mismatch")
	// ErrMalformed: the payload hashes correctly but its contents do not
	// decode (impossible lengths, bad enum values, trailing garbage).
	ErrMalformed = errors.New("snapshot: malformed payload")
)

// VersionError reports the unsupported version a blob declared. It unwraps
// to ErrVersion.
type VersionError struct {
	Got uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported schema version %d (supported: %d)", e.Got, SchemaVersion)
}

func (e *VersionError) Unwrap() error { return ErrVersion }

// State is one decoded checkpoint. Machine and Kernel are always present;
// the observer states are present exactly when the source system had that
// observer attached, and a restore target's attachments must match.
type State struct {
	Machine   *mcu.MachineState
	Kernel    *kernel.KernelState
	Trace     *trace.RecorderState
	Telemetry *telemetry.SamplerState
	Profile   *profile.ProfilerState
	Energy    *energy.MeterState
}

// Encode serializes st into a self-validating blob.
func Encode(st *State) ([]byte, error) {
	if st == nil || st.Machine == nil || st.Kernel == nil {
		return nil, fmt.Errorf("snapshot: encode: machine and kernel state are required")
	}
	var e enc
	e.machineState(st.Machine)
	e.kernelState(st.Kernel)
	e.optional(st.Trace != nil)
	if st.Trace != nil {
		e.recorderState(st.Trace)
	}
	e.optional(st.Telemetry != nil)
	if st.Telemetry != nil {
		e.samplerState(st.Telemetry)
	}
	e.optional(st.Profile != nil)
	if st.Profile != nil {
		e.profilerState(st.Profile)
	}
	e.optional(st.Energy != nil)
	if st.Energy != nil {
		e.energyState(st.Energy)
	}
	payload := e.b
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = le32(out, SchemaVersion)
	out = le64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...), nil
}

// Decode parses and validates a blob produced by Encode. It returns a typed
// error (ErrBadMagic, ErrVersion/VersionError, ErrTruncated, ErrCorrupt,
// ErrMalformed) and never panics, whatever the input.
func Decode(data []byte) (*State, error) {
	if len(data) < 8 {
		if len(data) >= 4 && string(data[:4]) != magic {
			return nil, ErrBadMagic
		}
		return nil, fmt.Errorf("%w: %d-byte blob is shorter than the header", ErrTruncated, len(data))
	}
	if string(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := rd32(data[4:]); v != SchemaVersion {
		return nil, &VersionError{Got: v}
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte blob is shorter than the header", ErrTruncated, len(data))
	}
	n := rd64(data[8:])
	if n > uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: header declares a %d-byte payload, %d present",
			ErrTruncated, n, len(data)-headerSize)
	}
	if n < uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: %d bytes of trailing garbage after the payload",
			ErrMalformed, uint64(len(data)-headerSize)-n)
	}
	payload := data[headerSize:]
	if sum := sha256.Sum256(payload); string(sum[:]) != string(data[16:48]) {
		return nil, ErrCorrupt
	}
	d := &dec{b: payload}
	st := &State{
		Machine: d.machineState(),
		Kernel:  d.kernelState(),
	}
	if d.optional() {
		st.Trace = d.recorderState()
	}
	if d.optional() {
		st.Telemetry = d.samplerState()
	}
	if d.optional() {
		st.Profile = d.profilerState()
	}
	if d.optional() {
		st.Energy = d.energyState()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d undecoded bytes at end of payload", ErrMalformed, len(payload)-d.off)
	}
	return st, nil
}

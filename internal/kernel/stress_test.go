package kernel

import (
	"fmt"
	"testing"

	"repro/internal/avr/asm"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// stressSrc is a self-verifying task: it fills its heap with a seeded
// pattern, then loops forever — recursing to pseudo-random depths (each
// level pushes its depth value and verifies it on unwind) and re-verifying
// the heap pattern after every recursion. Any corruption introduced by
// stack relocation or region compaction flips the flag to 2.
func stressSrc(seed int) string {
	return fmt.Sprintf(`
.equ SEED, %d
.data
flag:   .space 1       ; 1 = verified ok, 2 = corruption detected
rounds: .space 2
fillv:  .space 32
prng:   .space 2
.text
main:
    ; Seed the PRNG.
    ldi r16, lo8(SEED)
    sts prng, r16
    ldi r16, hi8(SEED)
    sts prng+1, r16
    ; Fill the heap pattern: fillv[i] = SEED + 7*i.
    ldi r26, lo8(fillv)
    ldi r27, hi8(fillv)
    ldi r16, lo8(SEED)
    ldi r17, 32
fill:
    st X+, r16
    subi r16, -7
    dec r17
    brne fill

loop:
    ; Draw a random depth 1..32.
    rcall rand
    andi r24, 0x1F
    subi r24, -1       ; +1
    rcall recurse
    ; Verify the heap pattern.
    ldi r26, lo8(fillv)
    ldi r27, hi8(fillv)
    ldi r16, lo8(SEED)
    ldi r17, 32
verify:
    ld r18, X+
    cp r18, r16
    brne corrupt
    subi r16, -7
    dec r17
    brne verify
    ldi r18, 1
    sts flag, r18
    ; Count the round.
    lds r18, rounds
    lds r19, rounds+1
    subi r18, 0xFF
    sbci r19, 0xFF
    sts rounds, r18
    sts rounds+1, r19
    rjmp loop
corrupt:
    ldi r18, 2
    sts flag, r18
    break

; rand: Galois LFSR step; result low byte in r24.
rand:
    lds r24, prng
    lds r25, prng+1
    lsr r25
    ror r24
    brcc randok
    ldi r18, 0xB4
    eor r25, r18
randok:
    sts prng, r24
    sts prng+1, r25
    ret

; recurse(depth=r24): push the depth at every level and verify it while
; unwinding; any stack-byte corruption trips the flag.
recurse:
    push r24
    tst r24
    breq runwind
    dec r24
    rcall recurse
    inc r24            ; restore this level's expected value
runwind:
    pop r25
    cp r25, r24
    breq rok
    ldi r18, 2
    sts flag, r18
rok:
    ret
`, seed)
}

// TestRelocationStressPreservesMemory runs eight self-verifying tasks in
// tight memory for several simulated seconds: relocations and terminations
// happen continuously, and no surviving task may ever observe corrupted
// heap or stack contents.
func TestRelocationStressPreservesMemory(t *testing.T) {
	m := mcu.New()
	k := New(m, Config{InitialStack: 48, SliceCycles: 9_000, AppLimit: 880})
	var tasks []*Task
	for i := 0; i < 8; i++ {
		prog, err := asm.Assemble(fmt.Sprintf("stress%d", i), stressSrc(0x1111+37*i))
		if err != nil {
			t.Fatal(err)
		}
		nat, err := rewriter.Rewrite(prog, rewriter.Config{})
		if err != nil {
			t.Fatal(err)
		}
		task, err := k.AddTask(fmt.Sprintf("stress%d", i), nat)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	budget := uint64(30_000_000)
	if testing.Short() {
		budget = 5_000_000
	}
	if err := k.Run(budget); err != nil {
		t.Fatal(err)
	}

	survivors := 0
	var roundsTotal uint32
	for _, task := range tasks {
		if task.State() == TaskTerminated {
			// A termination for lack of memory is legitimate under stress;
			// a self-detected corruption is not.
			if task.ExitReason == "exited" {
				t.Errorf("%s exited by itself: corruption detected in-program", task.Name)
			}
			continue
		}
		survivors++
		pl, _, _ := task.Region()
		flag := m.Peek(pl) // "flag" is the first heap byte
		if flag == 2 {
			t.Errorf("%s flagged corruption", task.Name)
		}
		if flag != 1 {
			t.Errorf("%s never completed a verification round (flag=%d)", task.Name, flag)
		}
		rounds := uint32(m.Peek(pl+1)) | uint32(m.Peek(pl+2))<<8
		roundsTotal += rounds
	}
	if survivors < 2 {
		t.Fatalf("only %d survivors; stress setup degenerated", survivors)
	}
	if k.Stats.Relocations < 10 {
		t.Errorf("relocations = %d; stress should relocate continuously", k.Stats.Relocations)
	}
	if roundsTotal == 0 {
		t.Error("no verification rounds completed")
	}
	t.Logf("survivors=%d relocations=%d relocated=%dB verification rounds=%d",
		survivors, k.Stats.Relocations, k.Stats.RelocatedBytes, roundsTotal)
}

// TestRelocationStressWithTerminations mixes the self-verifying tasks with
// a runaway task that exhausts memory and dies; the survivors must keep
// verifying cleanly on the memory its termination releases.
func TestRelocationStressWithTerminations(t *testing.T) {
	m := mcu.New()
	k := New(m, Config{InitialStack: 48, SliceCycles: 9_000, AppLimit: 900})
	runaway, err := asm.Assemble("runaway", `
main:
    call main
    break
`)
	if err != nil {
		t.Fatal(err)
	}
	natRunaway, err := rewriter.Rewrite(runaway, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var stress []*Task
	for i := 0; i < 4; i++ {
		prog, err := asm.Assemble(fmt.Sprintf("s%d", i), stressSrc(0x2222+53*i))
		if err != nil {
			t.Fatal(err)
		}
		nat, err := rewriter.Rewrite(prog, rewriter.Config{})
		if err != nil {
			t.Fatal(err)
		}
		task, err := k.AddTask(fmt.Sprintf("s%d", i), nat)
		if err != nil {
			t.Fatal(err)
		}
		stress = append(stress, task)
	}
	bad, err := k.AddTask("runaway", natRunaway)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if bad.State() != TaskTerminated {
		t.Error("runaway task should have been terminated")
	}
	for _, task := range stress {
		if task.State() == TaskTerminated {
			continue
		}
		pl, _, _ := task.Region()
		if flag := m.Peek(pl); flag == 2 {
			t.Errorf("%s flagged corruption after the runaway task's release", task.Name)
		}
	}
}

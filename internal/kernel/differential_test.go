package kernel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/avr/asm"
	"repro/internal/baseline/tkernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// TestDifferentialRandomPrograms is the semantic-preservation property at
// the heart of binary rewriting: a naturalized program must compute exactly
// what the original computes. For random generated programs we compare the
// full register file and heap contents after a native run against a run
// under the SenSmart kernel.
func TestDifferentialRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomProgram(r)
		prog, err := asm.Assemble(fmt.Sprintf("diff-%d", seed), src)
		if err != nil {
			t.Logf("seed %d: assemble: %v\n%s", seed, err, src)
			return false
		}

		// Native run.
		native, err := progs.RunNative(prog.Clone(), 10_000_000)
		if err != nil {
			t.Logf("seed %d: native: %v\n%s", seed, err, src)
			return false
		}

		// Kernel run.
		nat, err := rewriter.Rewrite(prog, rewriter.Config{})
		if err != nil {
			t.Logf("seed %d: rewrite: %v", seed, err)
			return false
		}
		m := mcu.New()
		k := New(m, Config{})
		task, err := k.AddTask("diff", nat)
		if err != nil {
			t.Logf("seed %d: add task: %v", seed, err)
			return false
		}
		if err := k.Boot(); err != nil {
			t.Logf("seed %d: boot: %v", seed, err)
			return false
		}
		if err := k.Run(50_000_000); err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		if task.ExitReason != "exited" {
			t.Logf("seed %d: task died: %s\n%s", seed, task.ExitReason, src)
			return false
		}

		// Compare the register file (r0..r25; pointer registers X/Y/Z may
		// legitimately differ because the kernel's grouped-access service
		// leaves them equal anyway — include them too).
		for i := uint8(0); i < 32; i++ {
			if native.Machine.Reg(i) != m.Reg(i) {
				t.Logf("seed %d: r%d native=%#x kernel=%#x\n%s",
					seed, i, native.Machine.Reg(i), m.Reg(i), src)
				return false
			}
		}
		// Compare the heap: native at HeapBase, kernel at the task region.
		pl, _, _ := task.Region()
		for off := uint16(0); off < prog.HeapSize; off++ {
			nv := native.Machine.Peek(prog.HeapBase + off)
			kv := m.Peek(pl + off)
			if nv != kv {
				t.Logf("seed %d: heap+%d native=%#x kernel=%#x\n%s", seed, off, nv, kv, src)
				return false
			}
		}

		// The t-kernel baseline must agree too (it executes untranslated).
		tkImg, err := tkernel.Naturalize(prog)
		if err != nil {
			t.Logf("seed %d: tkernel naturalize: %v", seed, err)
			return false
		}
		tm := mcu.New()
		rt, err := tkernel.NewRuntime(tm, tkImg)
		if err != nil {
			t.Logf("seed %d: tkernel runtime: %v", seed, err)
			return false
		}
		if err := rt.Run(50_000_000); err != nil {
			t.Logf("seed %d: tkernel run: %v", seed, err)
			return false
		}
		if !rt.Exited() {
			t.Logf("seed %d: tkernel did not exit", seed)
			return false
		}
		for i := uint8(0); i < 32; i++ {
			if native.Machine.Reg(i) != tm.Reg(i) {
				t.Logf("seed %d: tkernel r%d native=%#x tk=%#x\n%s",
					seed, i, native.Machine.Reg(i), tm.Reg(i), src)
				return false
			}
		}
		for off := uint16(0); off < prog.HeapSize; off++ {
			if native.Machine.Peek(prog.HeapBase+off) != tm.Peek(prog.HeapBase+off) {
				t.Logf("seed %d: tkernel heap+%d differs\n%s", seed, off, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// randomProgram emits a random but well-defined program: register setup,
// a random mix of ALU work, direct and indirect heap accesses, pointer
// walks, program-memory table reads, small calls and forward branches, and
// a bounded loop — every instruction class the rewriter patches.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(".data\nbuf: .space 48\n.text\nmain:\n")
	// Deterministic register init.
	for i := 16; i <= 25; i++ {
		fmt.Fprintf(&b, "    ldi r%d, %d\n", i, r.Intn(256))
	}
	b.WriteString("    ldi r26, lo8(buf)\n    ldi r27, hi8(buf)\n")
	b.WriteString("    ldi r28, lo8(buf+16)\n    ldi r29, hi8(buf+16)\n")

	label := 0
	n := 12 + r.Intn(24)
	for i := 0; i < n; i++ {
		switch r.Intn(12) {
		case 0:
			fmt.Fprintf(&b, "    add r%d, r%d\n", 16+r.Intn(10), 16+r.Intn(10))
		case 1:
			fmt.Fprintf(&b, "    eor r%d, r%d\n", 16+r.Intn(10), 16+r.Intn(10))
		case 2:
			fmt.Fprintf(&b, "    subi r%d, %d\n", 16+r.Intn(10), r.Intn(256))
		case 3:
			fmt.Fprintf(&b, "    sts buf+%d, r%d\n", r.Intn(48), 16+r.Intn(10))
		case 4:
			fmt.Fprintf(&b, "    lds r%d, buf+%d\n", 16+r.Intn(10), r.Intn(48))
		case 5:
			// Indirect store then reload through X, staying inside buf by
			// resetting the pointer first.
			off := r.Intn(40)
			fmt.Fprintf(&b, "    ldi r26, lo8(buf+%d)\n    ldi r27, hi8(buf+%d)\n", off, off)
			fmt.Fprintf(&b, "    st X+, r%d\n    ld r%d, -X\n", 16+r.Intn(10), 16+r.Intn(10))
		case 6:
			// Displacement access through Y (points at buf+16).
			fmt.Fprintf(&b, "    std Y+%d, r%d\n    ldd r%d, Y+%d\n",
				r.Intn(16), 16+r.Intn(10), 16+r.Intn(10), r.Intn(16))
		case 7:
			// Forward branch over one instruction.
			fmt.Fprintf(&b, "    tst r%d\n    breq L%d\n    inc r%d\nL%d:\n",
				16+r.Intn(10), label, 16+r.Intn(10), label)
			label++
		case 8:
			// A short call.
			fmt.Fprintf(&b, "    rcall fn%d\n", r.Intn(2))
		case 9:
			// Bounded backward loop (3..9 iterations).
			fmt.Fprintf(&b, "    ldi r%d, %d\nL%d:\n    dec r%d\n    brne L%d\n",
				16+r.Intn(4), 3+r.Intn(7), label, 16+r.Intn(4), label)
			label++
		case 10:
			// Program-memory table read.
			fmt.Fprintf(&b, "    ldi r30, lo8(pmbyte(tab))\n    ldi r31, hi8(pmbyte(tab))\n")
			fmt.Fprintf(&b, "    lpm r%d, Z+\n    lpm r%d, Z\n", 16+r.Intn(10), 16+r.Intn(10))
		case 11:
			// Push/pop pair (native stack ops).
			reg := 16 + r.Intn(10)
			fmt.Fprintf(&b, "    push r%d\n    pop r%d\n", reg, reg)
		}
	}
	// Clear X/Y/Z so pointer values are deterministic at comparison time.
	b.WriteString("    clr r26\n    clr r27\n    clr r30\n    clr r31\n")
	b.WriteString("    break\n")
	// Helper functions and the LPM table.
	b.WriteString("fn0:\n    inc r24\n    ret\nfn1:\n    lsr r25\n    ret\n")
	fmt.Fprintf(&b, "tab:\n    .dw 0x%04x, 0x%04x\n", r.Intn(0x10000), r.Intn(0x10000))
	return b.String()
}

package kernel

import (
	"testing"

	"repro/internal/mcu"
)

// TestSpawnTaskAtRuntime exercises the dynamic-reprogramming path the paper
// sketches ("reprogramming can be performed as an OS service"): a task
// admitted while the system runs gets a fresh region and is scheduled in.
func TestSpawnTaskAtRuntime(t *testing.T) {
	spin := naturalize(t, "spin", spinSrc)
	sum := naturalize(t, "sum", sumSrc)
	k, _ := bootKernel(t, Config{SliceCycles: 5_000}, spin)

	// Let the first task run a while.
	if err := k.Run(k.M.Cycles() + 100_000); err != nil {
		t.Fatal(err)
	}

	var got byte
	cfg := k.Cfg
	cfg.OnTaskExit = func(kk *Kernel, task *Task) {
		if task.Name == "late" {
			pl, _, _ := task.Region()
			got = kk.M.Peek(pl)
		}
	}
	k.Cfg = cfg

	late, err := k.SpawnTask("late", sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(k.M.Cycles() + 3_000_000); err != nil {
		t.Fatal(err)
	}
	if late.State() != TaskTerminated || late.ExitReason != "exited" {
		t.Fatalf("spawned task state %v (%s)", late.State(), late.ExitReason)
	}
	if got != 55 {
		t.Errorf("spawned task result = %d, want 55", got)
	}
}

// TestSpawnTaskBeforeBootRejected keeps the API honest.
func TestSpawnTaskBeforeBootRejected(t *testing.T) {
	spin := naturalize(t, "spin", spinSrc)
	k := New(mcu.New(), Config{})
	if _, err := k.SpawnTask("early", spin); err == nil {
		t.Error("SpawnTask before Boot should fail")
	}
}

// TestSpawnTaskRespectsMemoryLimit verifies runtime admission still honours
// the application-area bound.
func TestSpawnTaskRespectsMemoryLimit(t *testing.T) {
	spin := naturalize(t, "spin", spinSrc)
	k, _ := bootKernel(t, Config{AppLimit: 200, InitialStack: 80}, spin)
	if err := k.Run(k.M.Cycles() + 50_000); err != nil {
		t.Fatal(err)
	}
	var spawned int
	for i := 0; i < 8; i++ {
		if _, err := k.SpawnTask("x", spin); err != nil {
			break
		}
		spawned++
	}
	if spawned >= 8 {
		t.Error("runtime admission ignored the memory limit")
	}
}

// TestDoubleBootRejected covers the ErrBooted path.
func TestDoubleBootRejected(t *testing.T) {
	spin := naturalize(t, "spin", spinSrc)
	k, _ := bootKernel(t, Config{}, spin)
	if err := k.Boot(); err != ErrBooted {
		t.Errorf("second Boot = %v, want ErrBooted", err)
	}
}

package kernel

import (
	"testing"

	"repro/internal/rewriter"
	"repro/internal/trace"
)

// busySrc never exits: every inner brne and the outer rjmp are backward
// branches, so the software-trap preemption machinery fires continuously.
const busySrc = `
main:
outer:
    ldi r16, 60
inner:
    dec r16
    brne inner
    rjmp outer
`

// runTraced boots cfg with the given programs, attaches a fresh recorder,
// runs for limit cycles, and returns kernel + events.
func runTraced(t *testing.T, cfg Config, limit uint64, srcs ...string) (*Kernel, []trace.Event) {
	t.Helper()
	rec := trace.New()
	cfg.Trace = rec
	var nats []*rewriter.Naturalized
	for i, src := range srcs {
		nats = append(nats, naturalize(t, "spin"+suffix(i), src))
	}
	k, _ := bootKernel(t, cfg, nats...)
	if err := k.Run(limit); err != nil {
		t.Fatal(err)
	}
	return k, rec.Events()
}

// TestRoundRobinPreemptsWithinSlice drives two CPU-bound tasks and checks,
// from the trace alone, that every preemption lands after SliceCycles but
// within one branch-trap window of the slice boundary — the paper's
// Section IV-B guarantee. The window is self-calibrated from the observed
// spacing of KindSliceCheck events, so the test does not hard-code the
// workload's cycles-per-branch.
func TestRoundRobinPreemptsWithinSlice(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults()
	k, events := runTraced(t, Config{}, 12*cfg.SliceCycles, busySrc, busySrc)

	// Calibrate: the widest gap between consecutive slice checks of one
	// task with no intervening context switch.
	var maxGap uint64
	lastCheck := map[int32]uint64{}
	sliceStart := map[int32]uint64{}
	var preempts, switches int
	var lastSwitchTask int32 = -1
	for _, e := range events {
		switch e.Kind {
		case trace.KindSwitch:
			delete(lastCheck, e.Task)
			sliceStart[e.Task] = e.Cycle
			if switches > 0 && e.Task == lastSwitchTask {
				t.Errorf("switch %d handed the CPU back to task %d (not round-robin)", switches, e.Task)
			}
			lastSwitchTask = e.Task
			switches++
		case trace.KindSliceCheck:
			if prev, ok := lastCheck[e.Task]; ok && e.Cycle-prev > maxGap {
				maxGap = e.Cycle - prev
			}
			lastCheck[e.Task] = e.Cycle
		case trace.KindPreempt:
			preempts++
			start, ok := sliceStart[e.Task]
			if !ok {
				t.Fatalf("preemption of task %d with no preceding switch", e.Task)
			}
			elapsed := e.Cycle - start
			if elapsed < cfg.SliceCycles {
				t.Errorf("preempt at cycle %d: slice ran only %d cycles, want >= %d",
					e.Cycle, elapsed, cfg.SliceCycles)
			}
			if maxGap > 0 && elapsed > cfg.SliceCycles+maxGap {
				t.Errorf("preempt at cycle %d: slice ran %d cycles, want <= SliceCycles+%d",
					e.Cycle, elapsed, maxGap)
			}
		}
	}
	if preempts < 8 {
		t.Errorf("only %d preemptions in 12 slices, want >= 8", preempts)
	}
	if maxGap == 0 {
		t.Error("never saw two consecutive slice checks; calibration failed")
	}
	if k.Stats.Preemptions != preempts {
		t.Errorf("Stats.Preemptions = %d, trace has %d", k.Stats.Preemptions, preempts)
	}
	if k.Stats.ContextSwitches != switches-1 { // boot's first dispatch is not a switch
		t.Errorf("Stats.ContextSwitches = %d, trace has %d switch events (incl. boot)",
			k.Stats.ContextSwitches, switches)
	}
}

// TestBranchTrapRateIsOneIn256 checks the 1-in-BranchInterval software-trap
// divisor: the trace's backward-branch trap count (TrapEnter with the
// backward marker) must step the slice-check counter exactly once every
// BranchInterval traps.
func TestBranchTrapRateIsOneIn256(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults()
	k, events := runTraced(t, Config{}, 6*cfg.SliceCycles, busySrc)

	var backward, checks uint64
	for _, e := range events {
		switch e.Kind {
		case trace.KindTrapEnter:
			if e.Arg == uint64(rewriter.ClassBranch) && e.Arg2 == 1 {
				backward++
			}
		case trace.KindSliceCheck:
			checks++
		}
	}
	if backward == 0 {
		t.Fatal("no backward-branch traps recorded")
	}
	if backward != k.Stats.BranchTraps {
		t.Errorf("trace backward traps = %d, Stats.BranchTraps = %d", backward, k.Stats.BranchTraps)
	}
	if checks != k.Stats.SliceChecks {
		t.Errorf("trace slice checks = %d, Stats.SliceChecks = %d", checks, k.Stats.SliceChecks)
	}
	if want := backward / uint64(cfg.BranchInterval); checks != want {
		t.Errorf("%d backward traps produced %d slice checks, want %d (1 in %d)",
			backward, checks, want, cfg.BranchInterval)
	}
	// The single busy task never yields, so no preemption should switch it out.
	if k.Stats.ContextSwitches != 0 {
		t.Errorf("single-task run context-switched %d times", k.Stats.ContextSwitches)
	}
}

package kernel

import (
	"strings"
	"testing"

	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// TestBadInstructionContained checks that execution running off the rails
// (an undecodable opcode) terminates only the offending task: the companion
// keeps running to completion and the fault log names the culprit.
func TestBadInstructionContained(t *testing.T) {
	// The victim jumps through a corrupted function pointer into its own
	// heap-address space; the indirect jump lands on unmapped flash that the
	// injector-style corruption below has poisoned with an undecodable word.
	victim := naturalize(t, "victim", `
.data
scratch: .space 2
.text
main:
    clr r20
    ldi r16, 4
loop:
    add r20, r16
    dec r16
    brne loop
    sts scratch, r20
    break
`)
	companion := naturalize(t, "companion", sumSrc)
	k, tasks := bootKernel(t, Config{}, victim, companion)

	// Poison the victim's PC mid-run with an injected jump into flash that
	// holds an undecodable word.
	m := k.M
	const badPC = 0xF000
	if err := m.LoadFlash(badPC, []uint16{0xFFFF}); err != nil {
		t.Fatal(err)
	}
	m.SetInjector(CostSysInit+4, func(m *mcu.Machine) {
		if cur := k.Current(); cur != tasks[0] {
			return // only corrupt the victim
		}
		m.SetPC(badPC)
	})

	if err := k.Run(50_000_000); err != nil {
		t.Fatalf("kernel.Run must contain the bad instruction, got %v", err)
	}
	if tasks[0].State() != TaskTerminated {
		t.Fatalf("victim state = %v, want terminated", tasks[0].State())
	}
	if !strings.Contains(tasks[0].ExitReason, "bad instruction") &&
		!strings.Contains(tasks[0].ExitReason, "invalid trap id") &&
		!strings.Contains(tasks[0].ExitReason, "foreign program") {
		t.Errorf("victim exit reason %q does not name a contained fault", tasks[0].ExitReason)
	}
	if tasks[1].ExitReason != "exited" {
		t.Errorf("companion exit reason = %q, want clean exit", tasks[1].ExitReason)
	}
	rec, ok := k.LastFault(tasks[0].ID)
	if !ok {
		t.Fatal("no FaultRecord for the victim")
	}
	if rec.Name != tasks[0].Name || rec.Task != tasks[0].ID {
		t.Errorf("fault record names %q (task %d), want %q (task %d)",
			rec.Name, rec.Task, tasks[0].Name, tasks[0].ID)
	}
	if rec.ServiceName() != "native" {
		t.Errorf("fault record service = %q, want native (fault fired outside a service)",
			rec.ServiceName())
	}
	if _, companionFaulted := k.LastFault(tasks[1].ID); companionFaulted {
		t.Error("companion must not appear in the fault log")
	}
}

// TestServiceAttribution checks a fault raised inside a kernel service is
// attributed to that service class: an indirect store through a wild pointer
// faults inside the indirect-memory service.
func TestServiceAttribution(t *testing.T) {
	wild := naturalize(t, "wild", `
.data
buf: .space 4
.text
main:
    ldi r26, 0xF0        ; X = 0x30F0: far outside the logical region
    ldi r27, 0x30
    ldi r16, 0x55
    st X+, r16
    break
`)
	k, tasks := bootKernel(t, Config{}, wild)
	if err := k.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if tasks[0].State() != TaskTerminated {
		t.Fatal("wild task not terminated")
	}
	rec, ok := k.LastFault(tasks[0].ID)
	if !ok {
		t.Fatal("no FaultRecord for the wild store")
	}
	if rec.Service != rewriter.ClassIndirectMem {
		t.Errorf("fault attributed to service %v, want %v (got %q)",
			rec.Service, rewriter.ClassIndirectMem, rec.ServiceName())
	}
	if rec.Kind != "invalid logical address" {
		t.Errorf("fault kind = %q, want invalid logical address", rec.Kind)
	}
}

// TestUnknownTrapIDContained checks a stray BREAK whose operand word is not
// an assigned trap id terminates the task instead of erroring the system.
func TestUnknownTrapIDContained(t *testing.T) {
	victim := naturalize(t, "straybreak", sumSrc)
	companion := naturalize(t, "companion2", sumSrc)
	k, tasks := bootKernel(t, Config{}, victim, companion)

	// Plant a BREAK + garbage-id pair in unused flash and steer the victim
	// into it: the machine decodes it as a KTRAP with an unassigned id.
	m := k.M
	const strayPC = 0xF100
	if err := m.LoadFlash(strayPC, []uint16{0x9598, 0xFFF0}); err != nil {
		t.Fatal(err)
	}
	m.SetInjector(CostSysInit+2, func(m *mcu.Machine) {
		if k.Current() != tasks[0] {
			return
		}
		m.SetPC(strayPC)
	})
	if err := k.Run(50_000_000); err != nil {
		t.Fatalf("unknown trap id must be contained, got %v", err)
	}
	if tasks[0].State() != TaskTerminated || !strings.Contains(tasks[0].ExitReason, "invalid trap id") {
		t.Errorf("victim exit = %v %q, want invalid-trap-id termination",
			tasks[0].State(), tasks[0].ExitReason)
	}
	if tasks[1].ExitReason != "exited" {
		t.Errorf("companion exit reason = %q, want clean exit", tasks[1].ExitReason)
	}
}

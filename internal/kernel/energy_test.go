package kernel

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/telemetry"
)

// With a meter attached, Metrics carries the system-wide joules breakdown
// and per-task/per-service CPU attributions, and telemetry samples report
// the same ledger read-only; without one, the energy surfaces stay absent.
func TestMetricsAndTelemetryCarryEnergy(t *testing.T) {
	smp := telemetry.New(telemetry.Options{Every: 50_000})
	meter := new(energy.Meter)
	cfg := Config{SliceCycles: 10_000, Telemetry: smp, Energy: meter}
	k, _ := bootKernel(t, cfg,
		naturalize(t, "spinA", spinSrc),
		naturalize(t, "spinB", spinSrc))
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	m := k.Metrics()
	if m.Energy == nil {
		t.Fatal("metered run reported no Energy breakdown")
	}
	sum := m.Energy.CPUActivePJ + m.Energy.CPUSleepPJ + m.Energy.RadioPJ +
		m.Energy.UARTPJ + m.Energy.ADCPJ + m.Energy.TimerPJ
	if sum != m.Energy.TotalPJ || m.Energy.TotalPJ == 0 {
		t.Fatalf("energy components sum to %d pJ, total says %d", sum, m.Energy.TotalPJ)
	}
	for _, tm := range m.Tasks {
		if want := energy.CPUPJ(tm.RunCycles); tm.EnergyPJ != want {
			t.Fatalf("task %s attributed %d pJ for %d run cycles, want %d",
				tm.Name, tm.EnergyPJ, tm.RunCycles, want)
		}
	}
	for _, sm := range m.Services {
		if want := energy.CPUPJ(sm.Cycles); sm.EnergyPJ != want {
			t.Fatalf("service %s attributed %d pJ for %d cycles, want %d",
				sm.Name, sm.EnergyPJ, sm.Cycles, want)
		}
	}

	// The sampler reads the same ledger at the same clock, so the on-demand
	// sample's total must match the Metrics reduction exactly.
	s, ok := k.SampleTelemetryNow()
	if !ok {
		t.Fatal("SampleTelemetryNow with an attached sampler returned false")
	}
	if s.EnergyPJ != m.Energy.TotalPJ {
		t.Fatalf("sample total %d pJ, metrics total %d pJ", s.EnergyPJ, m.Energy.TotalPJ)
	}
	comp := s.EnergyCPUActivePJ + s.EnergyCPUSleepPJ + s.EnergyRadioPJ +
		s.EnergyUARTPJ + s.EnergyADCPJ + s.EnergyTimerPJ
	if comp != s.EnergyPJ {
		t.Fatalf("sample components sum to %d pJ, total says %d", comp, s.EnergyPJ)
	}
	// Interval samples recorded during the run carry energy too, and the
	// running total never decreases.
	var prev uint64
	for i, is := range smp.Samples() {
		if is.EnergyPJ < prev {
			t.Fatalf("sample %d energy %d pJ below previous %d", i, is.EnergyPJ, prev)
		}
		prev = is.EnergyPJ
	}

	// Unmetered runs keep every energy surface absent.
	bare, _ := bootKernel(t, Config{SliceCycles: 10_000},
		naturalize(t, "spinA", spinSrc))
	if err := bare.Run(200_000); err != nil {
		t.Fatal(err)
	}
	bm := bare.Metrics()
	if bm.Energy != nil {
		t.Fatal("unmetered run reported an Energy breakdown")
	}
	for _, tm := range bm.Tasks {
		if tm.EnergyPJ != 0 {
			t.Fatalf("unmetered task %s carries %d pJ", tm.Name, tm.EnergyPJ)
		}
	}
}

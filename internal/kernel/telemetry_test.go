package kernel

import (
	"testing"

	"repro/internal/rewriter"
	"repro/internal/telemetry"
)

// bootSampled boots two preempting spin tasks with a sampler attached.
func bootSampled(t *testing.T, every uint64, opts telemetry.Options) (*Kernel, *telemetry.Sampler) {
	t.Helper()
	opts.Every = every
	smp := telemetry.New(opts)
	cfg := Config{SliceCycles: 10_000, Telemetry: smp}
	k, _ := bootKernel(t, cfg,
		naturalize(t, "spinA", spinSrc),
		naturalize(t, "spinB", spinSrc))
	return k, smp
}

func TestTelemetrySamplesDuringRun(t *testing.T) {
	k, smp := bootSampled(t, 50_000, telemetry.Options{})
	if err := k.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	samples := smp.Samples()
	if len(samples) < 10 {
		t.Fatalf("only %d samples over 2M cycles at 50k interval", len(samples))
	}
	var prevAt, prevCycle uint64
	for i, s := range samples {
		if s.At%50_000 != 0 {
			t.Fatalf("sample %d At=%d is not an interval boundary", i, s.At)
		}
		if s.Cycle < s.At {
			t.Fatalf("sample %d taken at cycle %d before its boundary %d", i, s.Cycle, s.At)
		}
		if i > 0 && (s.At <= prevAt || s.Cycle < prevCycle) {
			t.Fatalf("samples not monotonic: At %d->%d Cycle %d->%d", prevAt, s.At, prevCycle, s.Cycle)
		}
		prevAt, prevCycle = s.At, s.Cycle
		if len(s.Tasks) != 2 {
			t.Fatalf("sample %d carries %d tasks, want 2", i, len(s.Tasks))
		}
		if s.Running < 0 {
			t.Fatalf("sample %d has no running task in a busy workload", i)
		}
		if ledger := s.ServiceOverheadCycles + s.SwitchCycles + s.RelocCycles + s.BootCycles; ledger != s.KernelCycles() {
			t.Fatalf("sample %d kernel-cycle sum mismatch", i)
		}
		if s.Cycle > 0 && s.AppCycles()+s.KernelCycles()+s.IdleCycles > s.Cycle {
			t.Fatalf("sample %d cycle split exceeds the clock", i)
		}
	}
	// Task names were registered at admission (bootKernel suffixes A/B).
	if smp.TaskName(0) != "spinAA" || smp.TaskName(1) != "spinBB" {
		t.Fatalf("task names = %q, %q", smp.TaskName(0), smp.TaskName(1))
	}
}

// The final snapshot must reconcile field-for-field with Metrics — the
// sampler reads the same ledgers the aggregation does.
func TestTelemetryFinalSnapshotMatchesMetrics(t *testing.T) {
	k, _ := bootSampled(t, 50_000, telemetry.Options{})
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	smp, ok := k.SampleTelemetryNow()
	if !ok {
		t.Fatal("SampleTelemetryNow with an attached sampler returned false")
	}
	m := k.Metrics()
	if smp.Cycle != m.TotalCycles || smp.IdleCycles != m.IdleCycles ||
		smp.KernelCycles() != m.KernelCycles || smp.AppCycles() != m.AppCycles ||
		smp.ServiceOverheadCycles != m.ServiceOverheadCycles {
		t.Fatalf("kernel split diverged: sample %+v vs metrics %+v", smp, m)
	}
	if smp.ContextSwitches != m.ContextSwitches || smp.Preemptions != m.Preemptions ||
		smp.BranchTraps != m.BranchTraps || smp.SliceChecks != m.SliceChecks ||
		smp.Relocations != m.Relocations || smp.Terminations != m.Terminations {
		t.Fatal("counters diverged from Metrics")
	}
	if len(smp.Tasks) != len(m.Tasks) {
		t.Fatalf("%d task samples vs %d task metrics", len(smp.Tasks), len(m.Tasks))
	}
	for i, ts := range smp.Tasks {
		tm := m.Tasks[i]
		if int(ts.ID) != tm.ID || ts.Name != tm.Name || ts.State != tm.State ||
			ts.RunCycles != tm.RunCycles || ts.KernelCycles != tm.KernelCycles ||
			ts.StackAlloc != tm.StackAlloc || ts.Relocations != tm.Relocations ||
			ts.Traps != tm.Traps || ts.Switches != tm.Switches {
			t.Fatalf("task %d diverged: sample %+v vs metrics %+v", i, ts, tm)
		}
		if ts.StackPeak < tm.StackPeak {
			t.Fatalf("task %d sample peak %d below metrics peak %d", i, ts.StackPeak, tm.StackPeak)
		}
	}
}

// A sampled run must be cycle-identical to an unsampled one: the hook reads
// state but never perturbs execution.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	run := func(sampled bool) (*Kernel, uint64) {
		cfg := Config{SliceCycles: 10_000}
		if sampled {
			cfg.Telemetry = telemetry.New(telemetry.Options{Every: 10_000})
		}
		k, _ := bootKernel(t, cfg,
			naturalize(t, "spinA", spinSrc),
			naturalize(t, "recurse", recurseSrc))
		if err := k.Run(1_500_000); err != nil {
			t.Fatal(err)
		}
		return k, k.M.Cycles()
	}
	plainK, plainCycles := run(false)
	sampledK, sampledCycles := run(true)
	if plainCycles != sampledCycles {
		t.Fatalf("sampling perturbed the clock: %d vs %d", plainCycles, sampledCycles)
	}
	pm, sm := plainK.Metrics(), sampledK.Metrics()
	if pm.KernelCycles != sm.KernelCycles || pm.BranchTraps != sm.BranchTraps ||
		pm.ContextSwitches != sm.ContextSwitches || pm.IdleCycles != sm.IdleCycles {
		t.Fatal("sampling perturbed kernel accounting")
	}
}

// Stack gauges: the recursive benchmark's sampled SP depth must move and
// its peak must match the task ledger; the running task's live SP comes
// from the hardware register, not the stale saved context.
func TestTelemetryStackGauges(t *testing.T) {
	smp := telemetry.New(telemetry.Options{Every: 2_000})
	cfg := Config{SliceCycles: 10_000, Telemetry: smp}
	k, tasks := bootKernel(t, cfg, naturalize(t, "recurse", recurseSrc))
	if err := k.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	var maxSeen uint16
	depths := make(map[uint16]bool)
	for _, s := range smp.Samples() {
		ts := s.Tasks[0]
		if ts.StackUsed > ts.StackPeak {
			t.Fatalf("live depth %d above reported peak %d", ts.StackUsed, ts.StackPeak)
		}
		if ts.StackUsed > maxSeen {
			maxSeen = ts.StackUsed
		}
		depths[ts.StackUsed] = true
	}
	if len(depths) < 3 {
		t.Fatalf("sampled SP depth never moved: %v", depths)
	}
	if maxSeen == 0 {
		t.Fatal("no sample caught the stack in use")
	}
	if maxSeen > tasks[0].MaxStackUsed {
		t.Fatalf("sampled depth %d exceeds ledger high-water %d", maxSeen, tasks[0].MaxStackUsed)
	}
}

func TestSampleTelemetryNowWithoutSampler(t *testing.T) {
	k, _ := bootKernel(t, Config{}, naturalize(t, "sum", sumSrc))
	if _, ok := k.SampleTelemetryNow(); ok {
		t.Fatal("SampleTelemetryNow without a sampler returned true")
	}
}

// Tasks spawned at runtime (the dynamic-reprogramming path) register with
// the sampler too, and show up in subsequent samples.
func TestTelemetryRuntimeSpawn(t *testing.T) {
	smp := telemetry.New(telemetry.Options{Every: 20_000})
	cfg := Config{SliceCycles: 10_000, Telemetry: smp}
	k, _ := bootKernel(t, cfg, naturalize(t, "spinA", spinSrc))
	if err := k.Run(200_000); err != nil {
		t.Fatal(err)
	}
	var nat *rewriter.Naturalized = naturalize(t, "spinB", spinSrc)
	if _, err := k.SpawnTask("late", nat); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(600_000); err != nil {
		t.Fatal(err)
	}
	if smp.TaskName(1) != "late" {
		t.Fatalf("spawned task not registered: %q", smp.TaskName(1))
	}
	last, ok := smp.Last()
	if !ok || len(last.Tasks) != 2 {
		t.Fatalf("last sample carries %d tasks, want 2", len(last.Tasks))
	}
}

package kernel

import (
	"fmt"

	"repro/internal/avr"
	"repro/internal/ioregs"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// handleTrap is the kernel entry point: it dispatches a KTRAP escape to the
// service the rewriter selected and charges the Table II cycle cost. On
// return the machine PC points at the continuation the service chose.
func (k *Kernel) handleTrap(m *mcu.Machine, id uint16) error {
	if int(id) >= len(k.traps) {
		return fmt.Errorf("kernel: unknown trap id %d at pc=%#x", id, m.PC())
	}
	t := k.Current()
	if t == nil {
		return fmt.Errorf("kernel: trap %d with no current task", id)
	}
	ref := k.traps[id]
	if ref.prog.base != t.Base {
		// The task jumped into another program's code: isolation violation.
		k.terminate(t, "control transfer into foreign program")
		return nil
	}
	p := ref.patch
	base := ref.prog.base
	k.Stats.ServiceCalls[p.Class]++

	// The hardware SP is authoritative while the task runs natively.
	t.spPhys = m.SP()
	t.noteStackUse()

	switch p.Class {
	case rewriter.ClassBranch:
		k.serviceBranch(t, p, base)
	case rewriter.ClassCall:
		k.charge(CostStackCheck, p.Orig)
		if !k.ensureStack(t, k.Cfg.RedZone+2) {
			return nil
		}
		m.PushWord(uint16(base + p.NatNext))
		t.spPhys = m.SP()
		m.SetPC(base + p.NatTarget)
	case rewriter.ClassIndirectCall:
		k.charge(CostProgMem+CostStackCheck, p.Orig)
		if !k.ensureStack(t, k.Cfg.RedZone+2) {
			return nil
		}
		z := m.RegPair(avr.RegZ)
		m.PushWord(uint16(base + p.NatNext))
		t.spPhys = m.SP()
		m.SetPC(base + t.Nat.Shift.Map(uint32(z)))
	case rewriter.ClassIndirectJump:
		k.charge(CostProgMem, p.Orig)
		z := m.RegPair(avr.RegZ)
		m.SetPC(base + t.Nat.Shift.Map(uint32(z)))
	case rewriter.ClassDirectIO:
		k.charge(CostDirectIO, p.Orig)
		addr := uint16(p.Orig.Imm)
		if p.Orig.Op == avr.OpLds {
			m.SetReg(p.Orig.Dst, m.ReadBus(addr))
		} else {
			m.WriteBus(addr, m.Reg(p.Orig.Dst))
		}
		m.SetPC(base + p.NatNext)
	case rewriter.ClassReservedIO:
		k.charge(CostReservedIO, p.Orig)
		k.serviceReservedIO(t, p.Orig)
		m.SetPC(base + p.NatNext)
	case rewriter.ClassDirectMem:
		k.charge(CostDirectMem, p.Orig)
		if !k.serviceDirectMem(t, p.Orig) {
			return nil
		}
		m.SetPC(base + p.NatNext)
	case rewriter.ClassIndirectMem:
		if !k.serviceIndirectMem(t, p) {
			return nil
		}
		m.SetPC(base + p.NatNext)
	case rewriter.ClassSPRead:
		k.charge(CostGetSP, p.Orig)
		logical := t.logicalSP()
		v := byte(logical)
		if p.Orig.Imm == int32(ioregs.SPH) {
			v = byte(logical >> 8)
		}
		m.SetReg(p.Orig.Dst, v)
		m.SetPC(base + p.NatNext)
	case rewriter.ClassSPWrite:
		k.charge(CostSetSP, p.Orig)
		if !k.serviceSPWrite(t, p.Orig) {
			return nil
		}
		m.SetPC(base + p.NatNext)
	case rewriter.ClassSleep:
		k.charge(CostSleep, p.Orig)
		t.state = TaskSleeping
		t.wakeAt = m.Cycles() + k.Cfg.SleepQuantum
		k.schedule(base + p.NatNext)
	case rewriter.ClassLpm:
		k.charge(CostProgMem, p.Orig)
		k.serviceLpm(t, p.Orig, base)
		m.SetPC(base + p.NatNext)
	case rewriter.ClassExit:
		k.terminate(t, "exited")
	default:
		return fmt.Errorf("kernel: unhandled service class %v", p.Class)
	}
	return nil
}

// charge accounts a service: the original instruction's own cycles plus the
// kernel overhead, minus the one cycle the KTRAP fetch already cost.
func (k *Kernel) charge(overhead int, orig avr.Inst) {
	total := orig.Op.BaseCycles() + overhead - 1
	if total > 0 {
		k.M.AddCycles(uint64(total))
	}
}

// serviceBranch implements the patched-branch service: evaluate the branch
// against live flags, count backward branches toward the 1-of-256 software
// trap, and preempt when the time slice has expired (Section IV-B).
func (k *Kernel) serviceBranch(t *Task, p *rewriter.Patch, base uint32) {
	m := k.M
	k.charge(CostBranchTrap, p.Orig)
	taken := true
	switch p.Orig.Op {
	case avr.OpBrbs:
		taken = m.SREG()&(1<<p.Orig.Src) != 0
	case avr.OpBrbc:
		taken = m.SREG()&(1<<p.Orig.Src) == 0
	}
	next := base + p.NatNext
	if taken {
		next = base + p.NatTarget
		m.AddCycles(1) // branch-taken penalty, as on hardware
	}
	if p.Backward {
		k.Stats.BranchTraps++
		if t.branchLeft--; t.branchLeft == 0 {
			t.branchLeft = k.Cfg.BranchInterval
			if m.Cycles()-t.sliceStart >= k.Cfg.SliceCycles {
				k.Stats.Preemptions++
				k.schedule(next)
				return
			}
		}
	}
	m.SetPC(next)
}

// ensureStack guarantees need bytes of stack headroom, relocating regions or
// terminating the task. It returns false when the task was terminated.
func (k *Kernel) ensureStack(t *Task, need uint16) bool {
	if t.spPhys >= t.ph && t.spPhys-t.ph >= need {
		return true
	}
	grow := need
	if t.spPhys < t.ph {
		grow += t.ph - t.spPhys
	}
	if k.growStack(t, grow) {
		return true
	}
	k.terminate(t, "stack exhausted: no donor with sufficient surplus")
	return false
}

// serviceDirectMem executes a translated LDS/STS to the heap (or stack) and
// reports whether the task survived.
func (k *Kernel) serviceDirectMem(t *Task, in avr.Inst) bool {
	phys, kind := t.translate(uint16(in.Imm))
	if kind != accessHeap && kind != accessStack {
		k.faultTask(t, uint16(in.Imm))
		return false
	}
	if in.Op == avr.OpLds {
		k.M.SetReg(in.Dst, k.M.Peek(phys))
	} else {
		k.M.Poke(phys, k.M.Reg(in.Dst))
	}
	return true
}

// serviceIndirectMem executes a (possibly grouped) run of indirect memory
// accesses with one shared translation (Section IV-C2). Returns false when
// the task was terminated by an invalid access.
func (k *Kernel) serviceIndirectMem(t *Task, p *rewriter.Patch) bool {
	m := k.M
	cycles := -1 // the KTRAP fetch already charged one
	for idx, in := range p.Group {
		ptr, _ := in.PointerReg()
		v := m.RegPair(ptr)
		var (
			logical uint16
			wb      bool
			wbVal   uint16
		)
		switch in.Op {
		case avr.OpLdXInc, avr.OpLdYInc, avr.OpLdZInc,
			avr.OpStXInc, avr.OpStYInc, avr.OpStZInc:
			logical, wb, wbVal = v, true, v+1
		case avr.OpLdXDec, avr.OpLdYDec, avr.OpLdZDec,
			avr.OpStXDec, avr.OpStYDec, avr.OpStZDec:
			logical, wb, wbVal = v-1, true, v-1
		case avr.OpLddY, avr.OpLddZ, avr.OpStdY, avr.OpStdZ:
			logical = v + uint16(in.Imm)
		default:
			logical = v
		}
		phys, kind := t.translate(logical)
		if kind == accessInvalid {
			m.AddCycles(uint64(cycles + 1))
			k.faultTask(t, logical)
			return false
		}
		if in.IsLoad() {
			var b byte
			switch {
			case kind == accessIO && rewriter.ReservedDataAddr(logical):
				b = k.virtualTimer3Read(t, logical)
			case kind == accessIO:
				b = m.ReadBus(phys)
			default:
				b = m.Peek(phys)
			}
			m.SetReg(in.Dst, b)
		} else {
			b := m.Reg(in.Dst)
			switch {
			case kind == accessIO && rewriter.ReservedDataAddr(logical):
				// Writes to the kernel-reserved clock are ignored.
			case kind == accessIO:
				m.WriteBus(phys, b)
			default:
				m.Poke(phys, b)
			}
		}
		if wb {
			m.SetRegPair(ptr, wbVal)
		}
		cycles += in.Op.BaseCycles()
		if idx == 0 {
			switch kind {
			case accessIO:
				cycles += CostIndIO
			case accessHeap:
				cycles += CostIndHeap
			default:
				cycles += CostIndStack
			}
		} else {
			cycles += CostGroupExtra
		}
	}
	if cycles > 0 {
		m.AddCycles(uint64(cycles))
	}
	return true
}

// serviceSPWrite assembles the task's logical SP byte-wise and commits the
// translated physical SP, growing the stack when the new frame would breach
// the red zone (Section IV-C2/C3).
func (k *Kernel) serviceSPWrite(t *Task, in avr.Inst) bool {
	v := k.M.Reg(in.Dst)
	if in.Imm == int32(ioregs.SPL) {
		t.spShadow = t.spShadow&0xFF00 | uint16(v)
	} else {
		t.spShadow = t.spShadow&0x00FF | uint16(v)<<8
	}
	newPhys := t.physSPFromLogical(t.spShadow)
	t.spPhys = newPhys
	k.M.SetSP(newPhys)
	t.noteStackUse()
	return k.ensureStack(t, k.Cfg.RedZone)
}

// serviceReservedIO virtualizes the kernel-reserved Timer3 registers: reads
// return the global clock (with hardware-style high-byte latching); writes
// are discarded (Section IV-A).
func (k *Kernel) serviceReservedIO(t *Task, in avr.Inst) {
	if in.Op != avr.OpLds {
		return
	}
	k.M.SetReg(in.Dst, k.virtualTimer3Read(t, uint16(in.Imm)))
}

func (k *Kernel) virtualTimer3Read(t *Task, addr uint16) byte {
	switch addr {
	case ioregs.TCNT3L:
		v := k.M.Timer3Count()
		t.timer3Latch = byte(v >> 8)
		return byte(v)
	case ioregs.TCNT3H:
		return t.timer3Latch
	}
	return 0
}

// serviceLpm performs a program-memory data access with address translation
// through the shift table.
func (k *Kernel) serviceLpm(t *Task, in avr.Inst, base uint32) {
	m := k.M
	z := m.RegPair(avr.RegZ)
	natByte := t.Nat.Shift.MapByte(z) + base*2
	v := m.FlashByte(natByte)
	dst := in.Dst // OpLpm has Dst 0, which is the implied r0
	m.SetReg(dst, v)
	if in.Op == avr.OpLpmZInc {
		m.SetRegPair(avr.RegZ, z+1)
	}
}

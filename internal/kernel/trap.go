package kernel

import (
	"fmt"

	"repro/internal/avr"
	"repro/internal/ioregs"
	"repro/internal/mcu"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// handleTrap is the kernel entry point: it validates the KTRAP escape,
// brackets the dispatch with trap enter/exit trace events, and accounts the
// cycles the service charged.
func (k *Kernel) handleTrap(m *mcu.Machine, id uint16) error {
	t := k.Current()
	if int(id) >= len(k.traps) {
		if t == nil {
			return fmt.Errorf("kernel: unknown trap id %d at pc=%#x", id, m.PC())
		}
		// Corrupted control flow decoded a stray BREAK whose operand word is
		// no assigned trap id: treat it like any other invalid instruction
		// and terminate only the offending task.
		reason := fmt.Sprintf("invalid trap id %d at pc %#x in %s", id, m.PC(), k.sym.Name(m.PC()))
		k.recordFault(t, "invalid trap id", m.PC(), reason)
		k.terminate(t, reason)
		return nil
	}
	if t == nil {
		return fmt.Errorf("kernel: trap %d with no current task", id)
	}
	ref := &k.traps[id]
	if ref.base != t.Base {
		// The task jumped into another program's code: isolation violation.
		reason := "control transfer into foreign program"
		k.recordFault(t, "foreign program", m.PC(), reason)
		k.terminate(t, reason)
		return nil
	}
	k.Stats.ServiceCalls[ref.class]++
	t.ServiceCalls[ref.class]++

	// The hardware SP is authoritative while the task runs natively.
	t.spPhys = m.SP()
	t.noteStackUse()

	k.curService = ref.class
	r := k.Cfg.Trace
	if r == nil {
		err := k.dispatch(t, ref)
		k.curService = 0
		return err
	}
	site := m.PC()
	back := uint64(0)
	if ref.class == rewriter.ClassBranch && ref.backward {
		back = 1
	}
	r.Emit(trace.Event{Cycle: m.Cycles(), Kind: trace.KindTrapEnter,
		Task: int32(t.ID), Arg: uint64(ref.class), Arg2: back, PC: site})
	before := k.Stats.ServiceCycles[ref.class]
	err := k.dispatch(t, ref)
	k.curService = 0
	// Arg2 is the cycles the service proper charged; relocation, switch
	// and idle cycles inside the window carry their own events, so the
	// enter-to-exit clock delta decomposes exactly (see trace_cost_test).
	r.Emit(trace.Event{Cycle: m.Cycles(), Kind: trace.KindTrapExit,
		Task: int32(t.ID), Arg: uint64(ref.class),
		Arg2: k.Stats.ServiceCycles[ref.class] - before, PC: site})
	return err
}

// dispatch routes one validated trap to its service and charges the Table II
// cycle cost. On return the machine PC points at the continuation the
// service chose. Hot operands (class, continuation PCs, base cycles) come
// pre-flattened in ref; the cold services read the patch itself.
func (k *Kernel) dispatch(t *Task, ref *trapRef) error {
	m := k.M
	p := ref.patch
	base := ref.base
	switch ref.class {
	case rewriter.ClassBranch:
		k.serviceBranch(t, ref)
	case rewriter.ClassCall:
		k.charge(t, ref.class, CostStackCheck, int(ref.baseCyc))
		if !k.ensureStack(t, k.Cfg.RedZone+2) {
			return nil
		}
		m.PushWord(uint16(ref.absNext))
		t.spPhys = m.SP()
		m.SetPC(ref.absTarget)
	case rewriter.ClassIndirectCall:
		k.charge(t, ref.class, CostProgMem+CostStackCheck, int(ref.baseCyc))
		if !k.ensureStack(t, k.Cfg.RedZone+2) {
			return nil
		}
		z := m.RegPair(avr.RegZ)
		m.PushWord(uint16(ref.absNext))
		t.spPhys = m.SP()
		m.SetPC(base + t.Nat.Shift.Map(uint32(z)))
	case rewriter.ClassIndirectJump:
		k.charge(t, ref.class, CostProgMem, int(ref.baseCyc))
		z := m.RegPair(avr.RegZ)
		m.SetPC(base + t.Nat.Shift.Map(uint32(z)))
	case rewriter.ClassDirectIO:
		k.charge(t, ref.class, CostDirectIO, int(ref.baseCyc))
		addr := uint16(p.Orig.Imm)
		k.watchCheck(t, addr, p.Orig.Op != avr.OpLds)
		if p.Orig.Op == avr.OpLds {
			m.SetReg(p.Orig.Dst, m.ReadBus(addr))
		} else {
			m.WriteBus(addr, m.Reg(p.Orig.Dst))
		}
		m.SetPC(ref.absNext)
	case rewriter.ClassReservedIO:
		k.charge(t, ref.class, CostReservedIO, int(ref.baseCyc))
		k.watchCheck(t, uint16(p.Orig.Imm), p.Orig.Op != avr.OpLds)
		k.serviceReservedIO(t, p.Orig)
		m.SetPC(ref.absNext)
	case rewriter.ClassDirectMem:
		k.charge(t, ref.class, CostDirectMem, int(ref.baseCyc))
		if !k.serviceDirectMem(t, p.Orig) {
			return nil
		}
		m.SetPC(ref.absNext)
	case rewriter.ClassIndirectMem:
		if !k.serviceIndirectMem(t, p) {
			return nil
		}
		m.SetPC(ref.absNext)
	case rewriter.ClassSPRead:
		k.charge(t, ref.class, CostGetSP, int(ref.baseCyc))
		logical := t.logicalSP()
		v := byte(logical)
		if p.Orig.Imm == int32(ioregs.SPH) {
			v = byte(logical >> 8)
		}
		m.SetReg(p.Orig.Dst, v)
		m.SetPC(ref.absNext)
	case rewriter.ClassSPWrite:
		k.charge(t, ref.class, CostSetSP, int(ref.baseCyc))
		if !k.serviceSPWrite(t, p.Orig) {
			return nil
		}
		m.SetPC(ref.absNext)
	case rewriter.ClassSleep:
		k.charge(t, ref.class, CostSleep, int(ref.baseCyc))
		t.state = TaskSleeping
		t.wakeAt = m.Cycles() + k.Cfg.SleepQuantum
		if k.Cfg.Trace != nil {
			k.Cfg.Trace.Emit(trace.Event{Cycle: m.Cycles(), Kind: trace.KindSleep,
				Task: int32(t.ID), Arg: t.wakeAt})
		}
		k.schedule(ref.absNext)
	case rewriter.ClassLpm:
		k.charge(t, ref.class, CostProgMem, int(ref.baseCyc))
		k.serviceLpm(t, p.Orig, base)
		m.SetPC(ref.absNext)
	case rewriter.ClassExit:
		k.terminate(t, "exited")
	default:
		return fmt.Errorf("kernel: unhandled service class %v", ref.class)
	}
	return nil
}

// charge accounts a service: the original instruction's own cycles
// (baseCycles, precomputed into the trap ref) plus the kernel overhead,
// minus the one cycle the KTRAP fetch already cost. The per-class ledgers
// record the in-window charge (ServiceCycles) and the Table II overhead
// alone (ServiceOverhead); the latter also accrues on the task, attributing
// kernel time to who caused it.
func (k *Kernel) charge(t *Task, class rewriter.Class, overhead, baseCycles int) {
	total := baseCycles + overhead - 1
	charged := uint64(0)
	if total > 0 {
		charged = uint64(total)
		k.M.AddCycles(charged)
		k.Stats.ServiceCycles[class] += charged
	}
	k.Stats.ServiceOverhead[class] += uint64(overhead)
	t.KernelCycles += uint64(overhead)
	if k.prof != nil {
		// Charges happen before the service sets the continuation PC, so
		// the machine PC is still the trap site.
		k.prof.OnService(int32(t.ID), class, k.M.PC(), uint64(overhead), charged)
	}
}

// chargeExtra accounts additional native cycles inside a service (e.g. the
// branch-taken penalty) that are not kernel overhead.
func (k *Kernel) chargeExtra(class rewriter.Class, n uint64) {
	k.M.AddCycles(n)
	k.Stats.ServiceCycles[class] += n
}

// serviceBranch implements the patched-branch service: evaluate the branch
// against live flags, count backward branches toward the 1-of-256 software
// trap, and preempt when the time slice has expired (Section IV-B). It is
// the hottest service by far — every patched branch traps — so it runs
// entirely off the flattened trap ref.
func (k *Kernel) serviceBranch(t *Task, ref *trapRef) {
	m := k.M
	k.charge(t, rewriter.ClassBranch, CostBranchTrap, int(ref.baseCyc))
	taken := true
	switch ref.brKind {
	case brSet:
		taken = m.SREG()&ref.brMask != 0
	case brClr:
		taken = m.SREG()&ref.brMask == 0
	}
	next := ref.absNext
	if taken {
		next = ref.absTarget
		k.chargeExtra(rewriter.ClassBranch, 1) // branch-taken penalty, as on hardware
		if k.prof != nil {
			k.prof.OnAppExtra(int32(t.ID), m.PC(), 1)
		}
	}
	if ref.backward {
		k.Stats.BranchTraps++
		if t.branchLeft--; t.branchLeft == 0 {
			t.branchLeft = k.Cfg.BranchInterval
			k.Stats.SliceChecks++
			if k.Cfg.Trace != nil {
				k.Cfg.Trace.Emit(trace.Event{Cycle: m.Cycles(),
					Kind: trace.KindSliceCheck, Task: int32(t.ID)})
			}
			if m.Cycles()-t.sliceStart >= k.Cfg.SliceCycles {
				k.Stats.Preemptions++
				if k.Cfg.Trace != nil {
					k.Cfg.Trace.Emit(trace.Event{Cycle: m.Cycles(),
						Kind: trace.KindPreempt, Task: int32(t.ID)})
				}
				k.schedule(next)
				return
			}
		}
	}
	m.SetPC(next)
}

// ensureStack guarantees need bytes of stack headroom, relocating regions or
// terminating the task. It returns false when the task was terminated.
func (k *Kernel) ensureStack(t *Task, need uint16) bool {
	if t.spPhys >= t.ph && t.spPhys-t.ph >= need {
		return true
	}
	grow := need
	if t.spPhys < t.ph {
		grow += t.ph - t.spPhys
	}
	if k.growStack(t, grow) {
		return true
	}
	reason := "stack exhausted: no donor with sufficient surplus"
	k.recordFault(t, "stack exhausted", k.M.PC(), reason)
	k.terminate(t, reason)
	return false
}

// watchCheck reports a kernel-mediated data access against the armed
// watchpoints (logical addressing). With no profiler — or no watchpoints —
// the cost is one pointer comparison plus an empty-slice check.
func (k *Kernel) watchCheck(t *Task, logical uint16, write bool) {
	if k.prof == nil || !k.prof.Watching(logical, write) {
		return
	}
	k.prof.Watch(k.M.Cycles(), int32(t.ID), k.M.PC(), logical, write)
}

// serviceDirectMem executes a translated LDS/STS to the heap (or stack) and
// reports whether the task survived.
func (k *Kernel) serviceDirectMem(t *Task, in avr.Inst) bool {
	k.watchCheck(t, uint16(in.Imm), in.Op != avr.OpLds)
	phys, kind := t.translate(uint16(in.Imm))
	if kind != accessHeap && kind != accessStack {
		k.faultTask(t, uint16(in.Imm))
		return false
	}
	if in.Op == avr.OpLds {
		k.M.SetReg(in.Dst, k.M.Peek(phys))
	} else {
		k.M.Poke(phys, k.M.Reg(in.Dst))
	}
	return true
}

// serviceIndirectMem executes a (possibly grouped) run of indirect memory
// accesses with one shared translation (Section IV-C2). Returns false when
// the task was terminated by an invalid access.
func (k *Kernel) serviceIndirectMem(t *Task, p *rewriter.Patch) bool {
	m := k.M
	cycles := -1 // the KTRAP fetch already charged one
	sumBase := 0 // what the unpatched accesses would have cost natively
	for idx, in := range p.Group {
		ptr, _ := in.PointerReg()
		v := m.RegPair(ptr)
		var (
			logical uint16
			wb      bool
			wbVal   uint16
		)
		switch in.Op {
		case avr.OpLdXInc, avr.OpLdYInc, avr.OpLdZInc,
			avr.OpStXInc, avr.OpStYInc, avr.OpStZInc:
			logical, wb, wbVal = v, true, v+1
		case avr.OpLdXDec, avr.OpLdYDec, avr.OpLdZDec,
			avr.OpStXDec, avr.OpStYDec, avr.OpStZDec:
			logical, wb, wbVal = v-1, true, v-1
		case avr.OpLddY, avr.OpLddZ, avr.OpStdY, avr.OpStdZ:
			logical = v + uint16(in.Imm)
		default:
			logical = v
		}
		k.watchCheck(t, logical, !in.IsLoad())
		phys, kind := t.translate(logical)
		if kind == accessInvalid {
			k.accountIndirect(t, cycles+1, sumBase)
			k.faultTask(t, logical)
			return false
		}
		if in.IsLoad() {
			var b byte
			switch {
			case kind == accessIO && rewriter.ReservedDataAddr(logical):
				b = k.virtualTimer3Read(t, logical)
			case kind == accessIO:
				b = m.ReadBus(phys)
			default:
				b = m.Peek(phys)
			}
			m.SetReg(in.Dst, b)
		} else {
			b := m.Reg(in.Dst)
			switch {
			case kind == accessIO && rewriter.ReservedDataAddr(logical):
				// Writes to the kernel-reserved clock are ignored.
			case kind == accessIO:
				m.WriteBus(phys, b)
			default:
				m.Poke(phys, b)
			}
		}
		if wb {
			m.SetRegPair(ptr, wbVal)
		}
		cycles += in.Op.BaseCycles()
		sumBase += in.Op.BaseCycles()
		if idx == 0 {
			switch kind {
			case accessIO:
				cycles += CostIndIO
			case accessHeap:
				cycles += CostIndHeap
			default:
				cycles += CostIndStack
			}
		} else {
			cycles += CostGroupExtra
		}
	}
	k.accountIndirect(t, cycles, sumBase)
	return true
}

// accountIndirect charges the accumulated indirect-memory service cycles and
// books the overhead: the in-window charge plus the already-spent KTRAP fetch
// cycle, minus what the unpatched accesses would have cost natively.
func (k *Kernel) accountIndirect(t *Task, total, sumBase int) {
	charged := uint64(0)
	if total > 0 {
		charged = uint64(total)
		k.M.AddCycles(charged)
		k.Stats.ServiceCycles[rewriter.ClassIndirectMem] += charged
	}
	overhead := uint64(0)
	if over := total + 1 - sumBase; over > 0 {
		overhead = uint64(over)
		k.Stats.ServiceOverhead[rewriter.ClassIndirectMem] += overhead
		t.KernelCycles += overhead
	}
	if k.prof != nil {
		k.prof.OnService(int32(t.ID), rewriter.ClassIndirectMem, k.M.PC(), overhead, charged)
	}
}

// serviceSPWrite assembles the task's logical SP byte-wise and commits the
// translated physical SP, growing the stack when the new frame would breach
// the red zone (Section IV-C2/C3).
func (k *Kernel) serviceSPWrite(t *Task, in avr.Inst) bool {
	v := k.M.Reg(in.Dst)
	if in.Imm == int32(ioregs.SPL) {
		t.spShadow = t.spShadow&0xFF00 | uint16(v)
	} else {
		t.spShadow = t.spShadow&0x00FF | uint16(v)<<8
	}
	newPhys := t.physSPFromLogical(t.spShadow)
	t.spPhys = newPhys
	k.M.SetSP(newPhys)
	t.noteStackUse()
	return k.ensureStack(t, k.Cfg.RedZone)
}

// serviceReservedIO virtualizes the kernel-reserved Timer3 registers: reads
// return the global clock (with hardware-style high-byte latching); writes
// are discarded (Section IV-A).
func (k *Kernel) serviceReservedIO(t *Task, in avr.Inst) {
	if in.Op != avr.OpLds {
		return
	}
	k.M.SetReg(in.Dst, k.virtualTimer3Read(t, uint16(in.Imm)))
}

func (k *Kernel) virtualTimer3Read(t *Task, addr uint16) byte {
	switch addr {
	case ioregs.TCNT3L:
		v := k.M.Timer3Count()
		t.timer3Latch = byte(v >> 8)
		return byte(v)
	case ioregs.TCNT3H:
		return t.timer3Latch
	}
	return 0
}

// serviceLpm performs a program-memory data access with address translation
// through the shift table.
func (k *Kernel) serviceLpm(t *Task, in avr.Inst, base uint32) {
	m := k.M
	z := m.RegPair(avr.RegZ)
	natByte := t.Nat.Shift.MapByte(z) + base*2
	v := m.FlashByte(natByte)
	dst := in.Dst // OpLpm has Dst 0, which is the implied r0
	m.SetReg(dst, v)
	if in.Op == avr.OpLpmZInc {
		m.SetRegPair(avr.RegZ, z+1)
	}
}

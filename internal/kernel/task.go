package kernel

import (
	"fmt"

	"repro/internal/rewriter"
)

// TaskState is the scheduling state of a task.
type TaskState uint8

const (
	// TaskReady is runnable (including the currently running task).
	TaskReady TaskState = iota + 1
	// TaskSleeping waits until its wake cycle.
	TaskSleeping
	// TaskTerminated has been stopped (voluntarily, by fault, or by the
	// memory manager when the system could no longer accommodate it).
	TaskTerminated
)

func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskSleeping:
		return "sleeping"
	case TaskTerminated:
		return "terminated"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Task is one application instance: a naturalized program plus its memory
// region and saved CPU context ("a task running in SenSmart is analogous to
// a process", Section IV-C1).
type Task struct {
	ID   int
	Name string
	Nat  *rewriter.Naturalized

	// Base is the flash word address the naturalized program is loaded at.
	Base uint32

	// Memory region bounds (physical): heap [pl, ph), stack (ph, pu).
	pl, ph, pu uint16

	state  TaskState
	wakeAt uint64 // cycle to wake a sleeping task

	// Saved CPU context.
	regs   [32]byte
	sreg   byte
	spPhys uint16
	pc     uint32 // absolute flash word address

	// spShadow is the task's logical SP as assembled byte-wise by the
	// set-stack-pointer service (Section IV-C2).
	spShadow uint16

	// branchLeft counts down backward-branch software traps; at zero the
	// scheduler runs (1-of-256 preemption, Section IV-B).
	branchLeft uint32

	// sliceStart is the cycle at which the task's current time slice began.
	sliceStart uint64

	// runStart marks where the task's current run window began; runCycles
	// accrues completed windows (see Kernel.accrueRun).
	runStart  uint64
	runCycles uint64

	// timer3Latch holds the latched high byte for virtualized TCNT3 reads.
	timer3Latch byte

	// Statistics.
	Relocations  int    // relocations this task triggered
	MaxStackUsed uint16 // high-water mark of stack bytes in use
	ExitReason   string // why the task terminated, if it did
	Switches     int    // times this task was scheduled in
	// ServiceCalls counts KTRAP dispatches by service class; KernelCycles
	// accrues the kernel overhead charged on this task's behalf (service
	// overheads plus relocations it triggered).
	ServiceCalls [16]uint64
	KernelCycles uint64
}

// RunCycles returns the wall-clock cycles the task has held the CPU so far
// (completed run windows only; Kernel.Metrics accrues the open window).
func (t *Task) RunCycles() uint64 { return t.runCycles }

// State returns the task's scheduling state.
func (t *Task) State() TaskState { return t.state }

// Region returns the physical bounds of the task's memory region and heap
// top: heap is [pl, ph), stack space is [ph, pu).
func (t *Task) Region() (pl, ph, pu uint16) { return t.pl, t.ph, t.pu }

// StackAlloc returns the bytes of stack space currently allocated to the
// task (pu - ph).
func (t *Task) StackAlloc() uint16 { return t.pu - t.ph }

// StackUsed returns the bytes of stack currently in use.
func (t *Task) StackUsed() uint16 {
	if t.spPhys >= t.pu {
		return 0
	}
	return t.pu - 1 - t.spPhys
}

// HeapSize returns the fixed heap bytes of the task's region.
func (t *Task) HeapSize() uint16 { return t.ph - t.pl }

// noteStackUse updates the stack high-water mark.
func (t *Task) noteStackUse() {
	if used := t.StackUsed(); used > t.MaxStackUsed {
		t.MaxStackUsed = used
	}
}

// logicalSPBase is one past the highest logical data address (M in the
// paper's translation formulas).
const logicalSPBase = 0x1100

// logicalSP converts the task's physical SP to the logical SP the
// application sees.
func (t *Task) logicalSP() uint16 {
	return uint16(int(t.spPhys) + logicalSPBase - int(t.pu))
}

// LogicalSP returns the task's logical stack pointer — the SP value the
// application itself sees, per the paper's translation formulas.
func (t *Task) LogicalSP() uint16 { return t.logicalSP() }

// LogicalAddr translates a physical SRAM address inside the task's region to
// the logical address the application sees; ok is false for addresses outside
// the region (kernel-owned, I/O space, or another task's memory), which pass
// through unchanged. This is the per-task form of the kernel's watchpoint
// translation, exported so debuggers can decode any task's memory, not just
// the running one's.
func (t *Task) LogicalAddr(phys uint16) (logical uint16, ok bool) {
	switch {
	case phys >= t.pl && phys < t.ph:
		return 0x100 + (phys - t.pl), true
	case phys >= t.ph && phys < t.pu:
		return phys - t.ph + (logicalSPBase - (t.pu - t.ph)), true
	}
	return phys, false
}

// physSPFromLogical converts a logical SP back to physical.
func (t *Task) physSPFromLogical(l uint16) uint16 {
	return uint16(int(l) - logicalSPBase + int(t.pu))
}

package kernel

import (
	"testing"

	"repro/internal/image"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// probeSrc exercises the service classes the standard benchmarks never hit:
// direct I/O, SP read/write, program-memory loads, and kernel-mediated sleep.
const probeSrc = `
main:
    ldi r16, 7
    sts 0x3E, r16
    lds r17, 0x3E
    in r18, SPL
    out SPL, r18
    in r19, SPH
    out SPH, r19
    ldi r30, lo8(pmbyte(tab))
    ldi r31, hi8(pmbyte(tab))
    lpm r20, Z
    sleep
    break
tab:
    .dw 0x1234
`

// fixedServiceCost is the Table II kernel overhead charged per dispatch for
// every service whose cost does not depend on the serviced instruction
// (indirect memory is excluded: its overhead varies with the access target
// and group size).
var fixedServiceCost = map[rewriter.Class]uint64{
	rewriter.ClassBranch:       CostBranchTrap,
	rewriter.ClassCall:         CostStackCheck,
	rewriter.ClassIndirectCall: CostProgMem + CostStackCheck,
	rewriter.ClassIndirectJump: CostProgMem,
	rewriter.ClassDirectIO:     CostDirectIO,
	rewriter.ClassReservedIO:   CostReservedIO,
	rewriter.ClassDirectMem:    CostDirectMem,
	rewriter.ClassSPRead:       CostGetSP,
	rewriter.ClassSPWrite:      CostSetSP,
	rewriter.ClassSleep:        CostSleep,
	rewriter.ClassLpm:          CostProgMem,
	rewriter.ClassExit:         0,
}

// costWorkload boots one kernel running the seven Section V-B benchmarks,
// the class probe, and a relocating tree search, with tracing attached.
func costWorkload(t *testing.T) (*Kernel, []trace.Event) {
	t.Helper()
	var nats []*rewriter.Naturalized
	for _, b := range progs.KernelBenchmarks() {
		nat, err := rewriter.Rewrite(b.Program, rewriter.Config{})
		if err != nil {
			t.Fatal(err)
		}
		nats = append(nats, nat)
	}
	nats = append(nats, naturalize(t, "probe", probeSrc))
	ts, err := progs.TreeSearch(progs.TreeSearchParams{Trees: 4, NodesPerTree: 20, Searches: 120})
	if err != nil {
		t.Fatal(err)
	}
	nats = append(nats, natProg(t, ts))
	rec := trace.New()
	k, _ := bootKernel(t, Config{Trace: rec}, nats...)
	if err := k.Run(4_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("cost workload did not run to completion")
	}
	return k, rec.Events()
}

// TestServiceOverheadMatchesTableII verifies the kernel's per-class overhead
// ledger against the cost model: for every fixed-cost service, the booked
// overhead must be exactly calls x the Table II constant — no charge may be
// dropped, doubled, or misclassified, however the services interleave.
func TestServiceOverheadMatchesTableII(t *testing.T) {
	k, _ := costWorkload(t)
	exercised := 0
	for class, cost := range fixedServiceCost {
		calls := k.Stats.ServiceCalls[class]
		if calls == 0 {
			continue
		}
		exercised++
		if got, want := k.Stats.ServiceOverhead[class], calls*cost; got != want {
			t.Errorf("%v: overhead = %d for %d calls, want %d (%d per call)",
				class, got, calls, want, cost)
		}
	}
	// The workload must actually cover the service surface, or the loop
	// above verifies nothing.
	if exercised < 9 {
		t.Errorf("only %d fixed-cost service classes exercised, want >= 9", exercised)
	}
	if k.Stats.ServiceCalls[rewriter.ClassIndirectMem] == 0 {
		t.Error("indirect-memory service not exercised")
	}
}

// TestTrapWindowsDecomposeExactly replays the trace and checks, for every
// single KTRAP, that the wall-clock window between enter and exit equals the
// service's own charge (TrapExit carries it) plus the relocation, region
// release, context-switch, and idle cycles recorded inside the window; and
// that per class the windows sum to the kernel's ServiceCycles ledger. This
// is the cycle-decomposition invariant the -trace exports rely on.
func TestTrapWindowsDecomposeExactly(t *testing.T) {
	k, events := costWorkload(t)
	var perClass [16]uint64
	open := map[int32]trace.Event{}
	nested := map[int32]uint64{}
	checked := 0
	for _, e := range events {
		switch e.Kind {
		case trace.KindTrapEnter:
			open[e.Task] = e
			nested[e.Task] = 0
		case trace.KindTrapExit:
			enter, ok := open[e.Task]
			if !ok {
				t.Fatalf("trap exit without enter: task %d cycle %d", e.Task, e.Cycle)
			}
			delete(open, e.Task)
			if window := e.Cycle - enter.Cycle; window != e.Arg2+nested[e.Task] {
				t.Fatalf("task %d %v trap at cycle %d: window %d cycles != charge %d + nested %d",
					e.Task, rewriter.Class(e.Arg), enter.Cycle, window, e.Arg2, nested[e.Task])
			}
			perClass[e.Arg&15] += e.Arg2
			checked++
		case trace.KindReloc, trace.KindRelease, trace.KindSwitch:
			for task := range open {
				nested[task] += e.Arg2
			}
		case trace.KindIdle:
			for task := range open {
				nested[task] += e.Arg
			}
		}
	}
	if len(open) != 0 {
		t.Errorf("%d trap windows never closed", len(open))
	}
	if checked < 1000 {
		t.Errorf("only %d trap windows checked; workload too small", checked)
	}
	for class := 1; class < 16; class++ {
		if got, want := perClass[class], k.Stats.ServiceCycles[class]; got != want {
			t.Errorf("%v: trap windows sum to %d cycles, ledger charged %d",
				rewriter.Class(class), got, want)
		}
	}
}

// benchmarkKernelRun measures a full lfsr benchmark run, optionally traced,
// to expose any slowdown the instrumentation adds when disabled (the
// emission sites are a single nil check when Config.Trace is unset).
func benchmarkKernelRun(b *testing.B, traced bool) {
	var prog *image.Program
	for _, kb := range progs.KernelBenchmarks() {
		if kb.Name == "lfsr" {
			prog = kb.Program
		}
	}
	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{}
		if traced {
			cfg.Trace = trace.New()
		}
		m := mcu.New()
		k := New(m, cfg)
		if _, err := k.AddTask("lfsr", nat); err != nil {
			b.Fatal(err)
		}
		if err := k.Boot(); err != nil {
			b.Fatal(err)
		}
		if err := k.Run(4_000_000_000); err != nil {
			b.Fatal(err)
		}
		if !k.Done() {
			b.Fatal("benchmark task did not finish")
		}
	}
}

func BenchmarkKernelRunUntraced(b *testing.B) { benchmarkKernelRun(b, false) }
func BenchmarkKernelRunTraced(b *testing.B)   { benchmarkKernelRun(b, true) }

package kernel

import (
	"repro/internal/energy"
	"repro/internal/rewriter"
	"repro/internal/telemetry"
)

// telemetrySample is the machine's sampling hook: it snapshots the kernel
// ledgers into one telemetry.Sample. Unlike Metrics it must not mutate
// kernel state (no accrueRun) — a sample fires mid-run, and sampled runs
// must stay cycle- and trace-identical to unsampled ones — so the running
// task's open window and live SP are folded in read-only.
func (k *Kernel) telemetrySample(at uint64) {
	k.Cfg.Telemetry.Record(k.buildTelemetrySample(at))
}

// buildTelemetrySample assembles the snapshot for the nominal boundary
// cycle at. Its aggregation mirrors Metrics exactly — same service-overhead
// sum, same kernel/app split, same per-task accessors — so the final
// sample reconciles field-for-field with the Metrics the harnesses report
// (asserted on every kernel benchmark by the experiment suite).
func (k *Kernel) buildTelemetrySample(at uint64) telemetry.Sample {
	m := k.M
	now := m.Cycles()
	s := &k.Stats
	smp := telemetry.Sample{
		At:              at,
		Cycle:           now,
		IdleCycles:      m.IdleCycles(),
		SwitchCycles:    s.SwitchCycles,
		RelocCycles:     s.RelocCycles,
		BootCycles:      s.BootCycles,
		ContextSwitches: s.ContextSwitches,
		Preemptions:     s.Preemptions,
		SliceChecks:     s.SliceChecks,
		BranchTraps:     s.BranchTraps,
		Relocations:     s.Relocations,
		RelocatedBytes:  s.RelocatedBytes,
		Terminations:    s.Terminations,
		Running:         -1,
	}
	for class := rewriter.Class(1); class < numClasses; class++ {
		smp.ServiceOverheadCycles += s.ServiceOverhead[class]
	}
	cur := k.Current()
	if cur != nil {
		smp.Running = int32(cur.ID)
	}
	metered := k.Cfg.Energy != nil
	if metered {
		// Report is read-only, so sampling keeps the no-mutation contract.
		b := k.Cfg.Energy.Report(now)
		smp.EnergyPJ = b.TotalPJ
		smp.EnergyCPUActivePJ = b.CPUActivePJ
		smp.EnergyCPUSleepPJ = b.CPUSleepPJ
		smp.EnergyRadioPJ = b.RadioPJ
		smp.EnergyUARTPJ = b.UARTPJ
		smp.EnergyADCPJ = b.ADCPJ
		smp.EnergyTimerPJ = b.TimerPJ
	}
	for _, t := range k.regions {
		smp.HeapBytes += uint32(t.HeapSize())
		smp.StackBytes += uint32(t.StackAlloc())
	}
	smp.FreeBytes = uint32(k.FreeMemory())
	smp.Tasks = make([]telemetry.TaskSample, 0, len(k.Tasks))
	for _, t := range k.Tasks {
		ts := telemetry.TaskSample{
			ID:           int32(t.ID),
			Name:         t.Name,
			State:        t.state.String(),
			RunCycles:    t.runCycles,
			KernelCycles: t.KernelCycles,
			StackUsed:    t.StackUsed(),
			StackPeak:    t.MaxStackUsed,
			StackAlloc:   t.StackAlloc(),
			HeapBytes:    t.HeapSize(),
			Relocations:  t.Relocations,
			Switches:     t.Switches,
		}
		if t == cur {
			// The running task's ledgers lag the machine: its run window is
			// open and its saved SP is stale, so read both live.
			if now > t.runStart {
				ts.RunCycles += now - t.runStart
			}
			if sp := m.SP(); sp < t.pu {
				ts.StackUsed = t.pu - 1 - sp
			} else {
				ts.StackUsed = 0
			}
			if ts.StackUsed > ts.StackPeak {
				ts.StackPeak = ts.StackUsed
			}
		}
		for class := rewriter.Class(1); class < numClasses; class++ {
			ts.Traps += t.ServiceCalls[class]
		}
		if metered {
			ts.EnergyPJ = energy.CPUPJ(ts.RunCycles)
		}
		smp.Tasks = append(smp.Tasks, ts)
	}
	return smp
}

// SampleTelemetryNow records one sample stamped at the current cycle —
// the final reconciled snapshot a harness takes after Run returns, so the
// stream's last line and a /metrics scrape between runs reflect the same
// totals Metrics reports. It returns false when no sampler is attached.
func (k *Kernel) SampleTelemetryNow() (telemetry.Sample, bool) {
	if k.Cfg.Telemetry == nil {
		return telemetry.Sample{}, false
	}
	smp := k.buildTelemetrySample(k.M.Cycles())
	k.Cfg.Telemetry.Record(smp)
	return smp, true
}

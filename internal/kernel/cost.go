package kernel

// Kernel-service cycle costs. The named constants reproduce Table II of the
// paper ("Overhead of key operations"); entries marked "estimated" were
// garbled in the available copy of the paper and are set to values
// consistent with the surrounding rows (see EXPERIMENTS.md).
const (
	// CostSysInit is the one-time system initialization cost.
	CostSysInit = 5738
	// CostDirectIO is a statically resolved LDS/STS to the I/O area.
	CostDirectIO = 2
	// CostDirectMem is a statically resolved LDS/STS to the heap
	// ("Direct / Others" row).
	CostDirectMem = 28
	// CostIndIO is an indirect access that lands in the I/O area.
	CostIndIO = 54
	// CostIndHeap is an indirect access to the heap (estimated).
	CostIndHeap = 80
	// CostIndStack is an indirect access to the current stack frame
	// (estimated).
	CostIndStack = 82
	// CostGroupExtra is the per-additional-access cost inside a grouped
	// memory access, once the shared translation is done (Section IV-C2).
	CostGroupExtra = 6
	// CostProgMem is a program-memory address translation (shift-table
	// lookup for indirect branches and LPM).
	CostProgMem = 376
	// CostGetSP and CostSetSP translate the stack pointer between logical
	// and physical form.
	CostGetSP = 45
	CostSetSP = 94
	// CostStackCheck is the stack-depth check at call sites (estimated;
	// folded into the call patch).
	CostStackCheck = 12
	// CostStackReloc is the fixed cost of one stack relocation, plus
	// CostRelocPerByte per byte moved (the paper reports 300–1000 µs total
	// at 7.37 MHz for representative moves).
	CostStackReloc   = 2326
	CostRelocPerByte = 6
	// CostCtxSave, CostCtxRestore and CostFullSwitch are the context-switch
	// rows of Table II.
	CostCtxSave    = 932
	CostCtxRestore = 976
	CostFullSwitch = 2298
	// CostBranchTrap is the amortized software-trap branch overhead
	// (counter update in the trampoline; estimated).
	CostBranchTrap = 7
	// CostSleep is the kernel-mediated SLEEP service (estimated).
	CostSleep = 20
	// CostReservedIO is the virtualized access to the kernel-reserved
	// Timer3 registers (estimated).
	CostReservedIO = 30
)

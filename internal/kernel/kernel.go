// Package kernel implements the SenSmart kernel runtime (Section IV of the
// paper): preemptive multi-task scheduling through software branch traps and
// Timer3 time slices, logical addressing with per-task memory isolation, and
// versatile stack management with transparent stack relocation.
//
// The kernel runs host-side (in Go) and is entered through the KTRAP escapes
// the base-station rewriter placed in the naturalized images. Every service
// charges the simulated clock the cycle costs of Table II, so measured
// execution times reflect the paper's overhead model.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/avr"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/rewriter"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config tunes the kernel. The zero value selects the defaults below.
type Config struct {
	// KernelData is the data-memory reservation for the kernel itself
	// (the paper reports ~10% of data memory; default 416 bytes).
	KernelData uint16
	// AppLimit caps the application area in bytes (0 = all remaining
	// memory). Figure 8 uses this to grant SenSmart exactly the stack
	// budget LiteOS has.
	AppLimit uint16
	// InitialStack is the predefined initial stack size per task
	// (Section IV-C3; default 64 bytes).
	InitialStack uint16
	// RedZone is the stack headroom the call-site check requires
	// (default 32 bytes).
	RedZone uint16
	// SliceCycles is the round-robin time slice (default 73728 cycles,
	// 10 ms at 7.3728 MHz).
	SliceCycles uint64
	// BranchInterval is the software-trap divisor: one out of this many
	// backward branches enters the scheduler (default 256).
	BranchInterval uint32
	// SleepQuantum is how long a SLEEP blocks the task (default 2048
	// cycles); tasks poll the virtual clock between sleeps.
	SleepQuantum uint64
	// DisableRelocation turns off stack relocation (Section IV-C3): any
	// stack growth beyond the initial allocation terminates the task. Used
	// by the fixed-stack baseline and the ablation benchmarks.
	DisableRelocation bool
	// Logf, when set, receives kernel trace lines (rendered from the same
	// typed events the Trace recorder captures).
	Logf func(format string, args ...any)
	// Trace, when set, receives typed cycle-stamped events from the kernel
	// and (wired by New) the machine. nil disables tracing at the cost of a
	// single pointer comparison per emission site.
	Trace *trace.Recorder
	// OnTaskExit, when set, runs as a task terminates, before its memory
	// region is released — the harness's chance to snapshot task heap state.
	OnTaskExit func(k *Kernel, t *Task)
	// Profile, when set, receives cycle-exact attribution of every simulated
	// cycle to (task, symbol) buckets, plus stack-depth samples and
	// watchpoint hits. nil disables profiling: every MCU and kernel hook
	// site is a single pointer comparison, like Trace.
	Profile *profile.Profiler
	// Telemetry, when set, receives a gauge snapshot of the kernel ledgers
	// every Telemetry.Every() simulated cycles (see internal/telemetry). nil
	// disables sampling at the cost of one pointer comparison per machine
	// run-loop horizon — the same discipline as Trace and Profile.
	Telemetry *telemetry.Sampler
	// Energy, when set, is the charge ledger the machine accrues device
	// power-state spans into (see internal/energy); Metrics and telemetry
	// samples then carry joules attribution. nil disables metering: every
	// hook site is a single pointer comparison, and none of the sites is on
	// the interpreter's fast loop — the same discipline as Trace/Profile/
	// Telemetry.
	Energy *energy.Meter
}

func (c *Config) setDefaults() {
	if c.KernelData == 0 {
		c.KernelData = 416
	}
	if c.InitialStack == 0 {
		c.InitialStack = 64
	}
	if c.RedZone == 0 {
		c.RedZone = 32
	}
	if c.SliceCycles == 0 {
		c.SliceCycles = 73728
	}
	if c.BranchInterval == 0 {
		c.BranchInterval = 256
	}
	if c.SleepQuantum == 0 {
		c.SleepQuantum = 2048
	}
}

// numClasses bounds the per-service accounting arrays (rewriter.Class is
// 1-based and tops out at ClassExit).
const numClasses = 16

// Stats aggregates kernel-level counters for the evaluation harnesses.
type Stats struct {
	ContextSwitches int
	Preemptions     int
	BranchTraps     uint64
	SliceChecks     uint64
	Relocations     int
	RelocatedBytes  uint64
	Terminations    int
	// ServiceCalls counts KTRAP dispatches by service class. A flat array
	// (indexed by rewriter.Class) rather than a map: the increment sits on
	// the per-trap hot path, and kernel benchmarks trap every few
	// instructions.
	ServiceCalls [numClasses]uint64
	// ServiceCycles is the total cycles charged while servicing each class
	// (native instruction cycles plus kernel overhead, net of the one-cycle
	// KTRAP fetch and of relocation/switch/idle costs, which are accounted
	// separately below). ServiceOverhead is the kernel-overhead portion
	// alone — the Table II cost per call.
	ServiceCycles   [numClasses]uint64
	ServiceOverhead [numClasses]uint64
	// BootCycles, SwitchCycles and RelocCycles attribute the remaining
	// kernel-charged cycles: system init, context switches, and stack
	// relocation/region compaction (fixed cost plus per-byte copies).
	BootCycles   uint64
	SwitchCycles uint64
	RelocCycles  uint64
}

// Sentinel errors.
var (
	// ErrNoMemory is returned when task admission cannot fit the new region.
	ErrNoMemory = errors.New("kernel: insufficient application memory")
	// ErrBooted is returned by a second Boot.
	ErrBooted = errors.New("kernel: already booted")
)

// loadedProg tracks one naturalized program placed in flash.
type loadedProg struct {
	nat  *rewriter.Naturalized
	base uint32
}

// Kernel is one SenSmart instance bound to a machine.
type Kernel struct {
	M   *mcu.Machine
	Cfg Config

	Tasks   []*Task
	regions []*Task // live tasks ordered by region address

	cur    int // index into Tasks of the running task; -1 = none
	progs  []*loadedProg
	traps  []trapRef // global KTRAP id -> (program, patch)
	booted bool

	flashTop uint32
	appBase  uint16
	appEnd   uint16

	// sym maps flash addresses back to function symbols; it is always
	// built (loadProgram registers every image) so fault diagnostics and
	// trap-cycle reconciliation stay symbolized even without a profiler.
	sym *profile.Symbolizer
	// prof mirrors Cfg.Profile; nil disables every attribution site.
	prof *profile.Profiler

	// curService tracks the service class a trap dispatch is executing (0 =
	// none), so fault records can attribute a mid-service fault to the
	// service acting on the task's behalf.
	curService rewriter.Class

	// FaultLog accumulates one attribution record per abnormal task
	// termination (see faultlog.go).
	FaultLog []FaultRecord

	Stats Stats
}

type trapRef struct {
	prog  *loadedProg
	patch *rewriter.Patch

	// Hot fields flattened from prog/patch at load time: a trap dispatch is
	// one KTRAP per few application instructions under naturalized code, so
	// the common services (branches above all) must not chase pointers for
	// values that are fixed once the program is linked.
	class     rewriter.Class
	backward  bool
	brKind    uint8 // branch evaluation: brAlways, brSet (BRBS), brClr (BRBC)
	brMask    byte  // SREG mask for brSet/brClr
	baseCyc   uint8 // the original instruction's base cycles (charge input)
	base      uint32
	absNext   uint32 // base + patch.NatNext
	absTarget uint32 // base + patch.NatTarget
}

// Branch-evaluation kinds for trapRef.brKind.
const (
	brAlways = iota
	brSet
	brClr
)

// New creates a kernel on m.
func New(m *mcu.Machine, cfg Config) *Kernel {
	cfg.setDefaults()
	appBase := uint16(mcu.SRAMBase)
	appEnd := uint16(mcu.DataSize) - cfg.KernelData
	if cfg.AppLimit != 0 && appBase+cfg.AppLimit < appEnd {
		appEnd = appBase + cfg.AppLimit
	}
	k := &Kernel{
		M:        m,
		Cfg:      cfg,
		cur:      -1,
		flashTop: 16, // leave the vector area clear
		appBase:  appBase,
		appEnd:   appEnd,
		sym:      profile.NewSymbolizer(),
		prof:     cfg.Profile,
	}
	m.SetTrapHandler(k.handleTrap)
	if cfg.Trace != nil {
		// Share the recorder with the machine so interrupt/idle/halt stamps
		// interleave with kernel events in global cycle order.
		m.SetRecorder(cfg.Trace)
	}
	if cfg.Telemetry != nil {
		m.SetSampler(cfg.Telemetry.Every(), k.telemetrySample)
	}
	if cfg.Energy != nil {
		m.SetEnergyMeter(cfg.Energy)
	}
	if k.prof != nil {
		k.prof.Bind(k.sym, cfg.Trace, mcu.ClockHz)
		m.SetProfileHooks(mcu.ProfileHooks{
			Instr:     k.prof.OnInstr,
			Idle:      k.prof.OnIdle,
			Interrupt: k.prof.OnInterrupt,
		})
		// Native accesses (push/pop and unpatched loads/stores) carry
		// physical addresses; translate through the running task's region
		// before matching watchpoints, which are logical.
		m.SetMemWatch(func(pc uint32, addr uint16, write bool) {
			if len(k.prof.Watches()) == 0 {
				return
			}
			logical := k.physToLogical(addr)
			if k.prof.Watching(logical, write) {
				task := int32(-1)
				if t := k.Current(); t != nil {
					task = int32(t.ID)
				}
				k.prof.Watch(k.M.Cycles(), task, pc, logical, write)
			}
		})
	}
	return k
}

// Symbolizer exposes the kernel's flash-address symbolizer so harnesses can
// render PCs as function names (fault reports, reconciliation errors).
func (k *Kernel) Symbolizer() *profile.Symbolizer { return k.sym }

// physToLogical inverts the running task's address translation for a
// physical SRAM address; addresses outside the task's region (or with no
// running task) pass through unchanged.
func (k *Kernel) physToLogical(phys uint16) uint16 {
	if t := k.Current(); t != nil {
		if l, ok := t.LogicalAddr(phys); ok {
			return l
		}
	}
	return phys
}

func (k *Kernel) logf(format string, args ...any) {
	if k.Cfg.Logf != nil {
		k.Cfg.Logf(format, args...)
	}
}

// taskName resolves a task id for event rendering.
func (k *Kernel) taskName(id int32) string {
	if int(id) < len(k.Tasks) && id >= 0 {
		return k.Tasks[id].Name
	}
	return fmt.Sprintf("task%d", id)
}

// ev stamps and emits one lifecycle event, and renders it to Logf — the
// human-log adapter that replaces the old free-form trace lines. Hot-path
// kinds (trap enter/exit, slice checks) bypass this and emit straight into
// the recorder behind their own nil check.
func (k *Kernel) ev(e trace.Event) {
	e.Cycle = k.M.Cycles()
	if k.Cfg.Trace != nil {
		k.Cfg.Trace.Emit(e)
	}
	if k.Cfg.Logf != nil {
		switch e.Kind {
		case trace.KindProgLoad, trace.KindTaskSpawn, trace.KindTaskExit,
			trace.KindReloc, trace.KindBoot:
			k.Cfg.Logf("%s", e.Format(k.taskName))
		}
	}
}

// AppMemory returns the application area bounds [base, end).
func (k *Kernel) AppMemory() (base, end uint16) { return k.appBase, k.appEnd }

// FreeMemory returns the unallocated trailing bytes of the application area.
func (k *Kernel) FreeMemory() uint16 {
	if len(k.regions) == 0 {
		return k.appEnd - k.appBase
	}
	return k.appEnd - k.regions[len(k.regions)-1].pu
}

// loadProgram places a naturalized program in flash (once per program),
// assigning global trap ids and applying link-time relocations.
func (k *Kernel) loadProgram(nat *rewriter.Naturalized) (*loadedProg, error) {
	for _, lp := range k.progs {
		if lp.nat == nat {
			return lp, nil
		}
	}
	base := k.flashTop
	words := append([]uint16(nil), nat.Program.Words...)
	// Relocate absolute JMP/CALL targets to the flash base.
	for _, r := range nat.Relocs {
		words[r] += uint16(base)
	}
	// Install global trap ids into the KTRAP id words.
	idBase := len(k.traps)
	if idBase+len(nat.Patches) > 0x10000 {
		return nil, fmt.Errorf("kernel: trap id space exhausted loading %s", nat.Program.Name)
	}
	lp := &loadedProg{nat: nat, base: base}
	k.progs = append(k.progs, lp)
	for _, p := range nat.Patches {
		words[p.NatPC+1] = uint16(idBase)
		ref := trapRef{
			prog: lp, patch: p,
			class: p.Class, backward: p.Backward,
			baseCyc:   uint8(p.Orig.Op.BaseCycles()),
			base:      base,
			absNext:   base + p.NatNext,
			absTarget: base + p.NatTarget,
		}
		switch p.Orig.Op {
		case avr.OpBrbs:
			ref.brKind, ref.brMask = brSet, 1<<(p.Orig.Src&7)
		case avr.OpBrbc:
			ref.brKind, ref.brMask = brClr, 1<<(p.Orig.Src&7)
		}
		k.traps = append(k.traps, ref)
		idBase++
	}
	if err := k.M.LoadFlash(base, words); err != nil {
		k.progs = k.progs[:len(k.progs)-1]
		k.traps = k.traps[:len(k.traps)-len(nat.Patches)]
		return nil, err
	}
	k.flashTop = base + uint32(len(words))
	k.sym.AddImage(nat.Program.Name, base, nat.Program, nat.CodeWords, nat.TrampolineWords)
	k.ev(trace.Event{Kind: trace.KindProgLoad, Task: -1, Arg: uint64(base),
		Arg2: uint64(len(words)), Detail: nat.Program.Name})
	return lp, nil
}

// AddTask admits one instance of the naturalized program as a task,
// allocating its memory region (fixed heap + initial stack). It fails with
// ErrNoMemory when the region does not fit. Before Boot it only registers
// the task; after Boot it behaves like SpawnTask.
func (k *Kernel) AddTask(name string, nat *rewriter.Naturalized) (*Task, error) {
	lp, err := k.loadProgram(nat)
	if err != nil {
		return nil, err
	}
	stack := k.Cfg.InitialStack
	if nat.Program.StackReserve > stack {
		stack = nat.Program.StackReserve
	}
	heap := nat.Program.HeapSize
	size := heap + stack
	start := k.appBase
	if n := len(k.regions); n > 0 {
		start = k.regions[n-1].pu
	}
	if int(start)+int(size) > int(k.appEnd) {
		return nil, fmt.Errorf("%w: task %s needs %d bytes, %d free",
			ErrNoMemory, name, size, k.appEnd-start)
	}
	t := &Task{
		ID:     len(k.Tasks),
		Name:   name,
		Nat:    nat,
		Base:   lp.base,
		pl:     start,
		ph:     start + heap,
		pu:     start + size,
		state:  TaskReady,
		pc:     lp.base + nat.Program.Entry,
		spPhys: start + size - 1,
	}
	t.spShadow = t.logicalSP()
	t.branchLeft = k.Cfg.BranchInterval
	k.Tasks = append(k.Tasks, t)
	k.regions = append(k.regions, t)
	if k.booted {
		// Runtime admission ("reprogramming as an OS service",
		// Section III-A): initialize the heap immediately; the scheduler
		// will pick the task up at the next scheduling point.
		k.initTaskHeap(t)
	}
	if k.prof != nil {
		k.prof.RegisterTask(int32(t.ID), name, t.pl, t.ph, t.pu)
	}
	if k.Cfg.Telemetry != nil {
		k.Cfg.Telemetry.RegisterTask(int32(t.ID), name)
	}
	k.ev(trace.Event{Kind: trace.KindTaskSpawn, Task: int32(t.ID), Arg: uint64(t.pl),
		Arg2: uint64(size), Detail: name})
	return t, nil
}

// SpawnTask admits and starts one task instance while the system is
// running — the dynamic-reprogramming path. It is AddTask plus the
// requirement that the kernel has booted.
func (k *Kernel) SpawnTask(name string, nat *rewriter.Naturalized) (*Task, error) {
	if !k.booted {
		return nil, errors.New("kernel: SpawnTask before Boot; use AddTask")
	}
	return k.AddTask(name, nat)
}

// initTaskHeap copies the program's .data image into the task's heap and
// zeroes the rest.
func (k *Kernel) initTaskHeap(t *Task) {
	for i := 0; i < int(t.HeapSize()); i++ {
		var v byte
		if i < len(t.Nat.Program.DataInit) {
			v = t.Nat.Program.DataInit[i]
		}
		k.M.Poke(t.pl+uint16(i), v)
	}
}

// Boot initializes all admitted tasks and starts the first one. It charges
// the system-initialization cost of Table II.
func (k *Kernel) Boot() error {
	if k.booted {
		return ErrBooted
	}
	if len(k.Tasks) == 0 {
		return errors.New("kernel: no tasks admitted")
	}
	k.booted = true
	k.M.AddCycles(CostSysInit)
	k.Stats.BootCycles += CostSysInit
	if k.prof != nil {
		k.prof.OnBoot(CostSysInit)
	}
	for _, t := range k.Tasks {
		k.initTaskHeap(t)
	}
	k.ev(trace.Event{Kind: trace.KindBoot, Task: -1, Arg: CostSysInit})
	k.restore(k.Tasks[0], 0)
	k.ev(trace.Event{Kind: trace.KindSwitch, Task: int32(k.Tasks[0].ID)})
	return nil
}

// Done reports whether every task has terminated.
func (k *Kernel) Done() bool {
	for _, t := range k.Tasks {
		if t.state != TaskTerminated {
			return false
		}
	}
	return true
}

// Current returns the running task, or nil.
func (k *Kernel) Current() *Task {
	if k.cur < 0 {
		return nil
	}
	return k.Tasks[k.cur]
}

// Run executes until every task terminates, the machine halts, or the cycle
// limit is reached (0 = no limit). Guard trips are recovered into stack
// growth or task termination, mirroring the paper's stack checking and
// memory isolation semantics.
func (k *Kernel) Run(limit uint64) error {
	m := k.M
	for limit == 0 || m.Cycles() < limit {
		// RunUntil batches execution through the machine's event-horizon
		// fast loop (KTRAPs re-enter the kernel through the trap handler as
		// before); it returns nil only once the limit is reached, and
		// surfaces faults for the recovery paths below. The instruction that
		// faulted has not advanced PC, so growth-and-retry still works.
		err := m.RunUntil(limit)
		if err == nil {
			continue
		}
		var f *mcu.Fault
		if !errors.As(err, &f) {
			return err
		}
		switch f.Kind {
		case mcu.FaultHalt:
			return nil
		case mcu.FaultStackOverflow:
			// A native push ran out of stack: grow and retry the
			// instruction (PC still points at it).
			t := k.Current()
			if t == nil {
				return err
			}
			m.ClearFault()
			t.spPhys = m.SP()
			if !k.growStack(t, k.Cfg.RedZone) {
				reason := "stack overflow: no memory to grow"
				k.recordFault(t, f.Kind.String(), f.PC, reason)
				k.terminate(t, reason)
				if k.Done() {
					return nil
				}
			}
		case mcu.FaultMemGuard:
			t := k.Current()
			if t == nil {
				return err
			}
			m.ClearFault()
			if k.Cfg.Trace != nil {
				k.Cfg.Trace.Emit(trace.Event{Cycle: m.Cycles(), Kind: trace.KindMemFault,
					Task: int32(t.ID), Arg: uint64(f.Addr), PC: f.PC, Detail: k.sym.Name(f.PC)})
			}
			reason := fmt.Sprintf("memory isolation violation at %#x (pc %#x in %s)",
				f.Addr, f.PC, k.sym.Name(f.PC))
			k.recordFault(t, f.Kind.String(), f.PC, reason)
			k.terminate(t, reason)
			if k.Done() {
				return nil
			}
		case mcu.FaultBadInst, mcu.FaultBreak, mcu.FaultTrap, mcu.FaultDeadSleep:
			// "Accesses beyond a task's memory region are intercepted and
			// treated as invalid instructions" (Section IV-C2) — and an
			// invalid instruction terminates the offending task, not the
			// system. These kinds reach here only when execution has gone
			// off the rails (corrupted code or control flow): contain the
			// blast radius to the current task and keep the others running.
			t := k.Current()
			if t == nil {
				return err
			}
			m.ClearFault()
			m.Wake() // a corrupted native SLEEP must not outlive its task
			reason := fmt.Sprintf("%s at pc %#x in %s", f.Kind, f.PC, k.sym.Name(f.PC))
			if f.Note != "" {
				reason += " (" + f.Note + ")"
			}
			k.recordFault(t, f.Kind.String(), f.PC, reason)
			k.terminate(t, reason)
			if k.Done() {
				return nil
			}
		default:
			return err
		}
	}
	// The cycle budget stopped the run, not the workload.
	if k.Cfg.Trace != nil {
		k.Cfg.Trace.Emit(trace.Event{Cycle: m.Cycles(), Kind: trace.KindBudget, Task: -1, Arg: limit})
	}
	return nil
}

// save captures the machine context into t; contPC is where the task will
// resume.
func (k *Kernel) save(t *Task, contPC uint32) {
	m := k.M
	for i := uint8(0); i < 32; i++ {
		t.regs[i] = m.Reg(i)
	}
	t.sreg = m.SREG()
	t.spPhys = m.SP()
	t.pc = contPC
	t.noteStackUse()
}

// restore loads t's context into the machine and makes it current. A
// contPC of 0 means "use the task's saved pc".
func (k *Kernel) restore(t *Task, contPC uint32) {
	m := k.M
	for i := uint8(0); i < 32; i++ {
		m.SetReg(i, t.regs[i])
	}
	m.SetSREG(t.sreg)
	m.SetSP(t.spPhys)
	m.SetGuard(t.pl, t.pu)
	if contPC == 0 {
		contPC = t.pc
	}
	m.SetPC(contPC)
	t.spShadow = t.logicalSP()
	t.Switches++
	for i, task := range k.Tasks {
		if task == t {
			k.cur = i
		}
	}
	t.sliceStart = m.Cycles()
	t.runStart = t.sliceStart
	if k.prof != nil {
		k.prof.SetContext(int32(t.ID), t.pl, t.ph, t.pu)
	}
}

// accrueRun credits the running task's wall-clock cycles up to now. Called
// whenever the task may stop holding the CPU (scheduling, termination) and
// when a metrics snapshot is taken, so idle and context-switch cycles never
// land inside any task's run window.
func (k *Kernel) accrueRun(t *Task) {
	now := k.M.Cycles()
	if now > t.runStart {
		t.runCycles += now - t.runStart
	}
	t.runStart = now
}

// schedule picks the next ready task after the current one and switches to
// it; contPC is where the current task (if still live) resumes. When no task
// is ready the kernel idles the CPU until the earliest sleeper wakes; when
// all tasks are terminated it halts the machine.
func (k *Kernel) schedule(contPC uint32) {
	// Ready any sleeper whose wake time has passed, so busy tasks cannot
	// starve them of scheduling.
	k.wakeSleepers()
	cur := k.Current()
	if cur != nil {
		k.accrueRun(cur)
	}
	next := k.pickNext()
	for next == nil {
		// Idle: advance to the earliest wake-up.
		wake, ok := k.earliestWake()
		if !ok {
			k.M.Halt("all tasks terminated")
			return
		}
		if wake > k.M.Cycles() {
			k.M.AddIdleCycles(wake - k.M.Cycles())
		}
		k.wakeSleepers()
		next = k.pickNext()
	}
	if next == cur {
		// Only one runnable task: keep running without a switch.
		k.M.SetPC(contPC)
		return
	}
	if cur != nil && cur.state != TaskTerminated {
		k.save(cur, contPC)
	}
	k.M.AddCycles(CostFullSwitch)
	k.Stats.ContextSwitches++
	k.Stats.SwitchCycles += CostFullSwitch
	if k.prof != nil {
		k.prof.OnSwitch(CostFullSwitch)
	}
	k.restore(next, 0)
	if k.Cfg.Trace != nil {
		prev := uint64(0)
		if cur != nil {
			prev = uint64(cur.ID) + 1
		}
		k.Cfg.Trace.Emit(trace.Event{Cycle: k.M.Cycles(), Kind: trace.KindSwitch,
			Task: int32(next.ID), Arg: prev, Arg2: CostFullSwitch})
	}
}

// pickNext returns the next ready task in round-robin order (starting after
// the current task), or nil.
func (k *Kernel) pickNext() *Task {
	n := len(k.Tasks)
	for off := 1; off <= n; off++ {
		t := k.Tasks[(k.cur+off+n)%n]
		if t.state == TaskReady {
			return t
		}
	}
	return nil
}

// earliestWake returns the soonest wake cycle among sleeping tasks.
func (k *Kernel) earliestWake() (uint64, bool) {
	var (
		best  uint64
		found bool
	)
	for _, t := range k.Tasks {
		if t.state != TaskSleeping {
			continue
		}
		if !found || t.wakeAt < best {
			best = t.wakeAt
			found = true
		}
	}
	return best, found
}

// wakeSleepers readies every sleeping task whose wake time has come.
func (k *Kernel) wakeSleepers() {
	now := k.M.Cycles()
	for _, t := range k.Tasks {
		if t.state == TaskSleeping && t.wakeAt <= now {
			t.state = TaskReady
			if k.Cfg.Trace != nil {
				k.Cfg.Trace.Emit(trace.Event{Cycle: now, Kind: trace.KindWake, Task: int32(t.ID)})
			}
		}
	}
}

// terminate stops t and releases its memory region.
func (k *Kernel) terminate(t *Task, reason string) {
	if t.state == TaskTerminated {
		return
	}
	if k.Current() == t {
		k.accrueRun(t)
	}
	t.state = TaskTerminated
	t.ExitReason = reason
	k.Stats.Terminations++
	k.ev(trace.Event{Kind: trace.KindTaskExit, Task: int32(t.ID),
		Arg: uint64(t.MaxStackUsed), Detail: reason})
	if k.Cfg.OnTaskExit != nil {
		k.Cfg.OnTaskExit(k, t)
	}
	size := t.pu - t.pl
	relocBefore := k.Stats.RelocCycles
	k.releaseRegion(t)
	if k.prof != nil {
		k.prof.OnCompact(k.Stats.RelocCycles - relocBefore)
	}
	if k.Cfg.Trace != nil && size > 0 {
		k.Cfg.Trace.Emit(trace.Event{Cycle: k.M.Cycles(), Kind: trace.KindRelease,
			Task: int32(t.ID), Arg: uint64(size), Arg2: k.Stats.RelocCycles - relocBefore})
	}
	if k.Current() == t {
		k.cur = -1
		k.schedule(0)
	}
}

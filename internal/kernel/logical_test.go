package kernel

import "testing"

// TestTaskLogicalAddr pins the exported per-task address translation against
// the paper's formulas: heap bytes map to 0x100+offset, stack bytes map so
// that the region's top lands at logicalSPBase, and everything outside the
// region passes through untranslated.
func TestTaskLogicalAddr(t *testing.T) {
	// Region: heap [0x0200, 0x0300), stack (0x0300, 0x0400); stack size 0x100.
	tk := &Task{pl: 0x0200, ph: 0x0300, pu: 0x0400, spPhys: 0x03F0}

	cases := []struct {
		name string
		phys uint16
		want uint16
		ok   bool
	}{
		{"heap base", 0x0200, 0x0100, true},
		{"heap mid", 0x0280, 0x0180, true},
		{"heap last", 0x02FF, 0x01FF, true},
		{"stack base", 0x0300, logicalSPBase - 0x100, true},
		{"stack top", 0x03FF, logicalSPBase - 1, true},
		{"below region", 0x01FF, 0x01FF, false},
		{"above region", 0x0400, 0x0400, false},
		{"io space", 0x005F, 0x005F, false},
	}
	for _, c := range cases {
		got, ok := tk.LogicalAddr(c.phys)
		if got != c.want || ok != c.ok {
			t.Errorf("%s: LogicalAddr(%#04x) = (%#04x, %v), want (%#04x, %v)",
				c.name, c.phys, got, ok, c.want, c.ok)
		}
	}

	// LogicalSP must agree with the stack translation applied to spPhys.
	if got, want := tk.LogicalSP(), uint16(int(tk.spPhys)+logicalSPBase-int(tk.pu)); got != want {
		t.Errorf("LogicalSP() = %#04x, want %#04x", got, want)
	}
}

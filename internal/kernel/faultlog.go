package kernel

import "repro/internal/rewriter"

// FaultRecord attributes one contained fault to the task that caused it and,
// when the fault fired inside a kernel service, to the service class that was
// executing on the task's behalf. The fault-injection harness reads the log
// to name the offending task and service in its containment verdicts; the
// kernel appends to it on every abnormal termination and never trims it.
type FaultRecord struct {
	// Cycle is the simulated cycle at which the fault was attributed.
	Cycle uint64 `json:"cycle"`
	// Task / Name identify the offending task.
	Task int    `json:"task"`
	Name string `json:"name"`
	// Service is the kernel service class in flight when the fault fired
	// (0 = the task was executing natively, outside any service).
	Service rewriter.Class `json:"service,omitempty"`
	// Kind is the fault classification (mcu fault kind string or a
	// kernel-level class like "invalid logical address").
	Kind string `json:"kind"`
	// PC is the flash word address the fault is attributed to; Sym is its
	// symbolized form.
	PC  uint32 `json:"pc"`
	Sym string `json:"sym"`
	// Reason is the full human-readable termination reason.
	Reason string `json:"reason"`
}

// ServiceName renders the in-flight service of a record ("native" when the
// fault fired outside any kernel service).
func (r FaultRecord) ServiceName() string {
	if r.Service == 0 {
		return "native"
	}
	return ServiceName(uint64(r.Service))
}

// recordFault appends one attribution record for t. Call it at the fault
// site, before terminate, so the record carries the in-flight service class
// and the pre-reschedule cycle stamp.
func (k *Kernel) recordFault(t *Task, kind string, pc uint32, reason string) {
	k.FaultLog = append(k.FaultLog, FaultRecord{
		Cycle: k.M.Cycles(), Task: t.ID, Name: t.Name,
		Service: k.curService, Kind: kind,
		PC: pc, Sym: k.sym.Name(pc), Reason: reason,
	})
}

// LastFault returns the most recent fault record for task id, if any.
func (k *Kernel) LastFault(id int) (FaultRecord, bool) {
	for i := len(k.FaultLog) - 1; i >= 0; i-- {
		if k.FaultLog[i].Task == id {
			return k.FaultLog[i], true
		}
	}
	return FaultRecord{}, false
}

package kernel

import (
	"repro/internal/energy"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// Metrics builds the aggregation snapshot: the kernel-vs-application cycle
// split, per-service trap counts and costs, and per-task utilization and
// stack statistics. It works from the always-on counters, so it needs no
// recorder — but when Cfg.Trace is attached, the snapshot also reports the
// recorded event count.
func (k *Kernel) Metrics() *trace.Metrics {
	if cur := k.Current(); cur != nil {
		// Close the running task's open window so RunCycles is current.
		k.accrueRun(cur)
	}
	s := &k.Stats
	m := &trace.Metrics{
		TotalCycles:     k.M.Cycles(),
		IdleCycles:      k.M.IdleCycles(),
		SwitchCycles:    s.SwitchCycles,
		RelocCycles:     s.RelocCycles,
		BootCycles:      s.BootCycles,
		ContextSwitches: s.ContextSwitches,
		Preemptions:     s.Preemptions,
		SliceChecks:     s.SliceChecks,
		BranchTraps:     s.BranchTraps,
		Relocations:     s.Relocations,
		RelocatedBytes:  s.RelocatedBytes,
		Terminations:    s.Terminations,
	}
	metered := k.Cfg.Energy != nil
	for class := rewriter.Class(1); class < numClasses; class++ {
		calls := s.ServiceCalls[class]
		if calls == 0 && s.ServiceCycles[class] == 0 {
			continue
		}
		m.ServiceOverheadCycles += s.ServiceOverhead[class]
		sm := trace.ServiceMetrics{
			Class:    int(class),
			Name:     class.String(),
			Calls:    calls,
			Cycles:   s.ServiceCycles[class],
			Overhead: s.ServiceOverhead[class],
		}
		if metered {
			sm.EnergyPJ = energy.CPUPJ(sm.Cycles)
		}
		m.Services = append(m.Services, sm)
	}
	m.KernelCycles = m.ServiceOverheadCycles + m.SwitchCycles + m.RelocCycles + m.BootCycles
	if busy := m.TotalCycles - m.IdleCycles; busy > m.KernelCycles {
		m.AppCycles = busy - m.KernelCycles
	}

	busy := float64(m.TotalCycles - m.IdleCycles)
	for _, t := range k.Tasks {
		tm := trace.TaskMetrics{
			ID:           t.ID,
			Name:         t.Name,
			State:        t.state.String(),
			ExitReason:   t.ExitReason,
			Switches:     t.Switches,
			RunCycles:    t.runCycles,
			KernelCycles: t.KernelCycles,
			StackPeak:    t.MaxStackUsed,
			StackAlloc:   t.StackAlloc(),
			Relocations:  t.Relocations,
		}
		if metered {
			tm.EnergyPJ = energy.CPUPJ(tm.RunCycles)
		}
		if tm.RunCycles > tm.KernelCycles {
			tm.AppCycles = tm.RunCycles - tm.KernelCycles
		}
		if busy > 0 {
			tm.Utilization = float64(tm.RunCycles) / busy
		}
		for class := rewriter.Class(1); class < numClasses; class++ {
			calls := t.ServiceCalls[class]
			if calls == 0 {
				continue
			}
			tm.Traps += calls
			tm.ByService = append(tm.ByService, trace.ServiceMetrics{
				Class: int(class), Name: class.String(), Calls: calls,
			})
		}
		m.Tasks = append(m.Tasks, tm)
	}

	if r := k.Cfg.Trace; r != nil {
		m.Events = r.Len()
		m.DroppedEvents = r.Dropped()
	}
	if metered {
		// The system-wide joules breakdown comes from the meter's own ledger;
		// per-task/per-service EnergyPJ above are CPU-only attributions of the
		// cycle ledgers the kernel already keeps.
		b := k.Cfg.Energy.Report(m.TotalCycles)
		m.Energy = &trace.EnergyMetrics{
			TotalPJ:         b.TotalPJ,
			CPUActivePJ:     b.CPUActivePJ,
			CPUSleepPJ:      b.CPUSleepPJ,
			RadioPJ:         b.RadioPJ,
			UARTPJ:          b.UARTPJ,
			ADCPJ:           b.ADCPJ,
			TimerPJ:         b.TimerPJ,
			RadioBytes:      b.RadioBytes,
			UARTBytes:       b.UARTBytes,
			ADCConversions:  b.ADCConversions,
			CPUActiveCycles: b.CPUActiveCycles,
			CPUSleepCycles:  b.CPUSleepCycles,
		}
	}
	return m
}

// ServiceName renders a service class id for the Chrome exporter.
func ServiceName(class uint64) string { return rewriter.Class(class).String() }

package kernel

import (
	"strings"
	"testing"

	"repro/internal/avr/asm"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// naturalize assembles and rewrites a program.
func naturalize(t *testing.T, name, src string) *rewriter.Naturalized {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := rewriter.Rewrite(p, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nat
}

// bootKernel builds a kernel with the given programs as tasks and boots it.
func bootKernel(t *testing.T, cfg Config, progs ...*rewriter.Naturalized) (*Kernel, []*Task) {
	t.Helper()
	m := mcu.New()
	k := New(m, cfg)
	var tasks []*Task
	for i, nat := range progs {
		task, err := k.AddTask(nat.Program.Name+suffix(i), nat)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k, tasks
}

func suffix(i int) string { return string(rune('A' + i)) }

const sumSrc = `
.data
result: .space 1
.text
main:
    clr r20
    ldi r16, 10
loop:
    add r20, r16
    dec r16
    brne loop
    sts result, r20
    break
`

func TestSingleTaskRunsToCompletion(t *testing.T) {
	nat := naturalize(t, "sum", sumSrc)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("kernel not done")
	}
	task := tasks[0]
	if task.ExitReason != "exited" {
		t.Errorf("exit reason = %q", task.ExitReason)
	}
	// result lives at logical 0x100 -> physical pl.
	pl, _, _ := task.Region()
	if got := k.M.Peek(pl); got != 55 {
		t.Errorf("result = %d, want 55", got)
	}
}

func TestBootChargesSysInit(t *testing.T) {
	nat := naturalize(t, "sum", sumSrc)
	k, _ := bootKernel(t, Config{}, nat)
	if k.M.Cycles() < CostSysInit {
		t.Errorf("boot cycles = %d, want >= %d", k.M.Cycles(), CostSysInit)
	}
}

func TestTwoTasksAreIsolated(t *testing.T) {
	// Both programs write a distinct value to the same logical heap
	// address; isolation means each lands in its own region.
	// Tasks spin after writing (instead of exiting) so neither region is
	// reclaimed before we inspect it.
	mk := func(v int) string {
		return strings.ReplaceAll(`
.data
cell: .space 1
.text
main:
    ldi r16, VAL
    sts cell, r16
    ldi r26, lo8(cell)
    ldi r27, hi8(cell)
    ld r17, X
    sts cell+0, r17
spin:
    rjmp spin
`, "VAL", itoa(v))
	}
	natA := naturalize(t, "taskA", mk(111))
	natB := naturalize(t, "taskB", mk(222))
	k, tasks := bootKernel(t, Config{SliceCycles: 5_000}, natA, natB)
	if err := k.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	plA, _, _ := tasks[0].Region()
	plB, _, _ := tasks[1].Region()
	if got := k.M.Peek(plA); got != 111 {
		t.Errorf("task A cell = %d, want 111", got)
	}
	if got := k.M.Peek(plB); got != 222 {
		t.Errorf("task B cell = %d, want 222", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// spinSrc counts loop iterations into a 16-bit heap counter forever.
const spinSrc = `
.data
count: .space 2
.text
main:
loop:
    lds r24, count
    lds r25, count+1
    adiw r24, 1
    sts count, r24
    sts count+1, r25
    rjmp loop
`

func TestPreemptiveRoundRobin(t *testing.T) {
	natA := naturalize(t, "spinA", spinSrc)
	natB := naturalize(t, "spinB", spinSrc)
	k, tasks := bootKernel(t, Config{SliceCycles: 10_000}, natA, natB)
	if err := k.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	counts := make([]uint16, 2)
	for i, task := range tasks {
		pl, _, _ := task.Region()
		counts[i] = uint16(k.M.Peek(pl)) | uint16(k.M.Peek(pl+1))<<8
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("both tasks should progress: %v", counts)
	}
	if k.Stats.Preemptions == 0 {
		t.Error("expected preemptions")
	}
	if k.Stats.ContextSwitches == 0 {
		t.Error("expected context switches")
	}
	// Round-robin fairness: neither task should dominate.
	lo, hi := counts[0], counts[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if uint32(hi) > 3*uint32(lo) {
		t.Errorf("unfair progress: %v", counts)
	}
}

// recurseSrc computes sum(1..N) by recursion, 3 stack bytes per level.
const recurseSrc = `
.equ N, 100
.data
result: .space 2
.text
main:
    ldi r24, N
    clr r25
    clr r26
    call sum
    sts result, r25
    sts result+1, r26
    break

; r24 = n; accumulates n + ... + 1 into r26:r25
sum:
    push r24
    tst r24
    breq sumbase
    add r25, r24
    clr r0
    adc r26, r0
    dec r24
    call sum
sumbase:
    pop r24
    ret
`

func TestDeepRecursionTriggersStackRelocation(t *testing.T) {
	nat := naturalize(t, "recurse", recurseSrc)
	k, tasks := bootKernel(t, Config{InitialStack: 64}, nat)
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("not done")
	}
	task := tasks[0]
	if task.ExitReason != "exited" {
		t.Fatalf("task died: %s", task.ExitReason)
	}
	pl, _, _ := task.Region()
	got := uint16(k.M.Peek(pl)) | uint16(k.M.Peek(pl+1))<<8
	if got != 5050 {
		t.Errorf("sum(1..100) = %d, want 5050", got)
	}
	if k.Stats.Relocations == 0 {
		t.Error("expected stack relocations (depth 100 * 3B > 64B initial)")
	}
	if task.MaxStackUsed < 300 {
		t.Errorf("max stack used = %d, want >= 300", task.MaxStackUsed)
	}
}

func TestRecursionStealsFromIdleNeighborStacks(t *testing.T) {
	// Fill memory with several tasks so the recursing task must take stack
	// from its neighbours' surplus, not just trailing free memory.
	nat := naturalize(t, "recurse", recurseSrc)
	spin := naturalize(t, "spin", spinSrc)
	// Large initial stacks eat the free memory; the spinners never use
	// theirs, so they are the donors. The recurser's heap must be
	// snapshotted at exit, before its region is reclaimed.
	var got uint16
	cfg := Config{InitialStack: 120, AppLimit: 560}
	cfg.OnTaskExit = func(k *Kernel, task *Task) {
		if task.Name == "recurseA" {
			pl, _, _ := task.Region()
			got = uint16(k.M.Peek(pl)) | uint16(k.M.Peek(pl+1))<<8
		}
	}
	k, tasks := bootKernel(t, cfg, nat, spin, spin, spin)
	if k.FreeMemory() > 200 {
		t.Fatalf("setup: too much trailing free memory (%d)", k.FreeMemory())
	}
	if err := k.Run(80_000_000); err != nil {
		t.Fatal(err)
	}
	task := tasks[0]
	if task.State() != TaskTerminated || task.ExitReason != "exited" {
		t.Fatalf("recursing task: state %v reason %q", task.State(), task.ExitReason)
	}
	if got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	if k.Stats.Relocations == 0 {
		t.Error("expected relocations")
	}
	// The spinners must be unharmed: still running.
	for _, task := range tasks[1:] {
		if task.State() == TaskTerminated {
			t.Errorf("donor task %s terminated: %s", task.Name, task.ExitReason)
		}
	}
}

func TestRunawayRecursionIsTerminated(t *testing.T) {
	runaway := naturalize(t, "runaway", `
main:
    call main      ; unbounded recursion
    break
`)
	spin := naturalize(t, "spin", spinSrc)
	k, tasks := bootKernel(t, Config{AppLimit: 512}, runaway, spin)
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].State() != TaskTerminated {
		t.Fatal("runaway task should be terminated")
	}
	if !strings.Contains(tasks[0].ExitReason, "stack") {
		t.Errorf("exit reason = %q, want stack exhaustion", tasks[0].ExitReason)
	}
	if tasks[1].State() == TaskTerminated {
		t.Errorf("innocent task terminated: %s", tasks[1].ExitReason)
	}
}

func TestFramePointerPrologue(t *testing.T) {
	// The avr-gcc style prologue: read SP, allocate an 8-byte frame, write
	// SP back, address locals via Y displacement, then unwind.
	nat := naturalize(t, "frame", `
.data
out: .space 1
.text
main:
    in r28, SPL
    in r29, SPH
    sbiw r28, 8
    out SPH, r29
    out SPL, r28
    std Y+1, r16      ; locals
    ldi r16, 77
    std Y+2, r16
    ldd r17, Y+2
    sts out, r17
    adiw r28, 8
    out SPH, r29
    out SPL, r28
    break
`)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].ExitReason != "exited" {
		t.Fatalf("task died: %s", tasks[0].ExitReason)
	}
	pl, _, _ := tasks[0].Region()
	if got := k.M.Peek(pl); got != 77 {
		t.Errorf("local via frame pointer = %d, want 77", got)
	}
}

func TestWildAccessTerminatesOnlyOffender(t *testing.T) {
	wild := naturalize(t, "wild", `
main:
    ldi r26, 0x00
    ldi r27, 0x09      ; logical 0x0900: far outside heap and stack windows
    ldi r16, 0xEE
    st X, r16
    break
`)
	spin := naturalize(t, "spin", spinSrc)
	k, tasks := bootKernel(t, Config{}, wild, spin)
	if err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].State() != TaskTerminated || !strings.Contains(tasks[0].ExitReason, "invalid") {
		t.Errorf("wild task: %v %q", tasks[0].State(), tasks[0].ExitReason)
	}
	if tasks[1].State() == TaskTerminated {
		t.Errorf("spin task terminated: %s", tasks[1].ExitReason)
	}
}

func TestSleepAccumulatesIdleCycles(t *testing.T) {
	sleeper := naturalize(t, "sleeper", `
.data
n: .space 1
.text
main:
loop:
    sleep
    lds r16, n
    inc r16
    sts n, r16
    cpi r16, 5
    brne loop
    break
`)
	k, tasks := bootKernel(t, Config{SleepQuantum: 10_000}, sleeper)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("not done")
	}
	pl, _, _ := tasks[0].Region()
	if got := k.M.Peek(pl); got != 5 {
		t.Errorf("n = %d, want 5", got)
	}
	if k.M.IdleCycles() < 4*10_000 {
		t.Errorf("idle cycles = %d, want >= 40000", k.M.IdleCycles())
	}
}

func TestVirtualTimer3Read(t *testing.T) {
	nat := naturalize(t, "clock", `
.data
t0: .space 2
.text
main:
    lds r24, TCNT3L
    lds r25, TCNT3H
    sts t0, r24
    sts t0+1, r25
    break
`)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := tasks[0].Region()
	got := uint16(k.M.Peek(pl)) | uint16(k.M.Peek(pl+1))<<8
	// The clock runs at cycles/8 and boot charged 5738 cycles, so the read
	// must be non-zero and roughly cycles/8.
	if got == 0 {
		t.Error("virtual timer read zero")
	}
	if uint64(got) > k.M.Cycles()/8 {
		t.Errorf("timer = %d beyond cycles/8 = %d", got, k.M.Cycles()/8)
	}
}

func TestIndirectCallThroughTable(t *testing.T) {
	nat := naturalize(t, "icall", `
.data
res: .space 1
.text
main:
    ldi r30, lo8(fn7)
    ldi r31, hi8(fn7)
    icall
    sts res, r24
    ldi r30, lo8(fn9)
    ldi r31, hi8(fn9)
    ijmp
fn7:
    ldi r24, 7
    ret
fn9:
    lds r24, res
    subi r24, -2       ; +2
    sts res, r24
    break
`)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].ExitReason != "exited" {
		t.Fatalf("task died: %s", tasks[0].ExitReason)
	}
	pl, _, _ := tasks[0].Region()
	if got := k.M.Peek(pl); got != 9 {
		t.Errorf("res = %d, want 9", got)
	}
}

func TestLpmTableUnderKernel(t *testing.T) {
	nat := naturalize(t, "lpmk", `
.data
out: .space 2
.text
main:
    ldi r30, lo8(pmbyte(tab))
    ldi r31, hi8(pmbyte(tab))
    lpm r24, Z+
    lpm r25, Z
    sts out, r24
    sts out+1, r25
    break
tab:
    .dw 0xBBAA
`)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := tasks[0].Region()
	if k.M.Peek(pl) != 0xAA || k.M.Peek(pl+1) != 0xBB {
		t.Errorf("lpm = %#x %#x, want AA BB", k.M.Peek(pl), k.M.Peek(pl+1))
	}
}

func TestGroupedAccessSemantics(t *testing.T) {
	nat := naturalize(t, "group", `
.data
a: .space 2
b: .space 2
.text
main:
    ldi r26, lo8(a)
    ldi r27, hi8(a)
    ldi r16, 0x34
    ldi r17, 0x12
    st X+, r16        ; grouped pair
    st X+, r17
    ldi r26, lo8(a)
    ldi r27, hi8(a)
    ld r20, X+        ; grouped pair
    ld r21, X+
    st X+, r20        ; store into b, grouped
    st X+, r21
    break
`)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].ExitReason != "exited" {
		t.Fatalf("task died: %s", tasks[0].ExitReason)
	}
	pl, _, _ := tasks[0].Region()
	if k.M.Peek(pl+2) != 0x34 || k.M.Peek(pl+3) != 0x12 {
		t.Errorf("b = %#x %#x, want 34 12", k.M.Peek(pl+2), k.M.Peek(pl+3))
	}
	// The grouped service must have been exercised.
	if k.Stats.ServiceCalls[rewriter.ClassIndirectMem] == 0 {
		t.Error("no indirect-mem service calls recorded")
	}
}

func TestAdmissionFailsWhenMemoryFull(t *testing.T) {
	nat := naturalize(t, "sum", sumSrc)
	m := mcu.New()
	k := New(m, Config{AppLimit: 256, InitialStack: 100})
	var admitted int
	for i := 0; i < 10; i++ {
		if _, err := k.AddTask("t", nat); err != nil {
			break
		}
		admitted++
	}
	if admitted == 0 || admitted >= 10 {
		t.Fatalf("admitted = %d, want a small positive count", admitted)
	}
}

func TestTaskStatsTracked(t *testing.T) {
	nat := naturalize(t, "sum", sumSrc)
	k, tasks := bootKernel(t, Config{}, nat)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].Switches == 0 {
		t.Error("task never scheduled?")
	}
	if k.Stats.ServiceCalls[rewriter.ClassBranch] == 0 {
		t.Error("branch service never called")
	}
	if k.Stats.ServiceCalls[rewriter.ClassExit] != 1 {
		t.Errorf("exit service calls = %d, want 1", k.Stats.ServiceCalls[rewriter.ClassExit])
	}
}

func TestAllocModuleUnderKernel(t *testing.T) {
	// The dynamic-allocation module of Section III-A must behave
	// identically under logical addressing.
	prog, err := progs.AllocDemo(12)
	if err != nil {
		t.Fatal(err)
	}
	native, err := progs.RunNative(prog.Clone(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, _ := progs.HeapWord(native.Machine, prog, "sum")

	nat, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.New()
	k := New(m, Config{})
	task, err := k.AddTask("alloc", nat)
	if err != nil {
		t.Fatal(err)
	}
	var got uint16
	k.Cfg.OnTaskExit = func(kk *Kernel, tt *Task) {
		pl, _, _ := tt.Region()
		got = uint16(kk.M.Peek(pl)) | uint16(kk.M.Peek(pl+1))<<8
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitReason != "exited" {
		t.Fatalf("task died: %s", task.ExitReason)
	}
	if got != wantSum {
		t.Errorf("kernel alloc sum = %d, native %d", got, wantSum)
	}
}

func TestThreeTaskFairness(t *testing.T) {
	nats := []*rewriter.Naturalized{
		naturalize(t, "spinA", spinSrc),
		naturalize(t, "spinB", spinSrc),
		naturalize(t, "spinC", spinSrc),
	}
	k, tasks := bootKernel(t, Config{SliceCycles: 8_000}, nats...)
	if err := k.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	var counts [3]uint32
	for i, task := range tasks {
		pl, _, _ := task.Region()
		counts[i] = uint32(k.M.Peek(pl)) | uint32(k.M.Peek(pl+1))<<8
		if counts[i] == 0 {
			t.Fatalf("task %d starved", i)
		}
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	// Round robin over identical tasks: spread within 25%.
	if float64(hi-lo) > 0.25*float64(hi) {
		t.Errorf("unfair spread: %v", counts)
	}
}

func TestSleepingTasksWakeInOrder(t *testing.T) {
	// One task sleeps in short quanta, the other spins; the sleeper must
	// still make steady progress (the kernel wakes it at its wake cycle
	// rather than whenever the spinner yields, which it never does).
	sleeper := naturalize(t, "sleeper", `
.data
n: .space 2
.text
main:
loop:
    sleep
    lds r24, n
    lds r25, n+1
    adiw r24, 1
    sts n, r24
    sts n+1, r25
    rjmp loop
`)
	spin := naturalize(t, "spin", spinSrc)
	k, tasks := bootKernel(t, Config{SliceCycles: 10_000, SleepQuantum: 4_000}, sleeper, spin)
	if err := k.Run(4_000_000); err != nil {
		t.Fatal(err)
	}
	pl, _, _ := tasks[0].Region()
	wakes := uint32(k.M.Peek(pl)) | uint32(k.M.Peek(pl+1))<<8
	if wakes < 100 {
		t.Errorf("sleeper woke only %d times in 4M cycles (quantum 4k)", wakes)
	}
}

func TestTaskUsesDevicesThroughIdentityIO(t *testing.T) {
	// A task drives the ADC and radio through the identity-mapped I/O
	// window: conversions and transmissions behave exactly as bare metal.
	nat := naturalize(t, "devio", `
.data
reading: .space 2
.text
main:
    ldi r16, 0xC0        ; start an ADC conversion
    out ADCSRA, r16
wait:
    in r16, ADCSRA
    sbrc r16, 6
    rjmp wait
    in r24, ADCL
    in r25, ADCH
    sts reading, r24
    sts reading+1, r25
txw:
    in r16, RSR
    sbrs r16, 0
    rjmp txw
    out RDR, r24         ; transmit the low byte
rxw:
    in r16, RSR
    sbrs r16, 1          ; wait for injected RX data
    rjmp rxw
    in r20, RDR
    sts reading, r20     ; overwrite with the received byte
    break
`)
	k, tasks := bootKernel(t, Config{}, nat)
	k.M.InjectRadio([]byte{0x77})
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if tasks[0].ExitReason != "exited" {
		t.Fatalf("task died: %s", tasks[0].ExitReason)
	}
	// Flush the radio byte in flight.
	k.M.AddCycles(mcu.RadioByteCycles)
	k.M.FlushDevices()
	frames := k.M.RadioOutput()
	if len(frames) == 0 {
		t.Fatal("no radio transmission from the task")
	}
}

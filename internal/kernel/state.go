package kernel

import (
	"fmt"

	"repro/internal/rewriter"
)

// TaskRecord is the serializable state of one Task. Identity fields (ID,
// Name, Base) double as validation: a restore target must have admitted the
// same programs in the same order, so records are matched positionally and
// cross-checked.
type TaskRecord struct {
	ID   int
	Name string
	Base uint32

	PL, PH, PU uint16
	State      uint8
	WakeAt     uint64

	Regs    [32]byte
	SREG    byte
	SPPhys  uint16
	PC      uint32
	SPShad  uint16
	BrLeft  uint32
	SliceAt uint64
	RunAt   uint64
	RunCyc  uint64
	T3Latch byte

	Relocations  int
	MaxStackUsed uint16
	ExitReason   string
	Switches     int
	ServiceCalls [numClasses]uint64
	KernelCycles uint64
}

// KernelState is the complete serializable state of a Kernel: scheduler
// position, the task table with per-task contexts and region geometry, the
// cycle ledgers, and the fault log. Static structure (admitted programs,
// trap table, symbolizer) is not carried — it is rebuilt by deploying the
// same programs before restoring, and cross-checked here.
type KernelState struct {
	Stats   Stats
	Cur     int
	Booted  bool
	Service uint8

	FlashTop uint32
	AppBase  uint16
	AppEnd   uint16

	Tasks    []TaskRecord
	Regions  []int // task IDs in region-address order
	FaultLog []FaultRecord
}

// CaptureState snapshots the kernel's state. It is read-only: in particular
// it serializes the open run-window (runStart/runCycles) raw rather than
// folding it the way Metrics() does, so capturing mid-run never perturbs the
// ledgers.
func (k *Kernel) CaptureState() *KernelState {
	st := &KernelState{
		Stats:    k.Stats,
		Cur:      k.cur,
		Booted:   k.booted,
		Service:  uint8(k.curService),
		FlashTop: k.flashTop,
		AppBase:  k.appBase,
		AppEnd:   k.appEnd,
		Tasks:    make([]TaskRecord, len(k.Tasks)),
		Regions:  make([]int, len(k.regions)),
		FaultLog: append([]FaultRecord(nil), k.FaultLog...),
	}
	for i, t := range k.Tasks {
		st.Tasks[i] = TaskRecord{
			ID:           t.ID,
			Name:         t.Name,
			Base:         t.Base,
			PL:           t.pl,
			PH:           t.ph,
			PU:           t.pu,
			State:        uint8(t.state),
			WakeAt:       t.wakeAt,
			Regs:         t.regs,
			SREG:         t.sreg,
			SPPhys:       t.spPhys,
			PC:           t.pc,
			SPShad:       t.spShadow,
			BrLeft:       t.branchLeft,
			SliceAt:      t.sliceStart,
			RunAt:        t.runStart,
			RunCyc:       t.runCycles,
			T3Latch:      t.timer3Latch,
			Relocations:  t.Relocations,
			MaxStackUsed: t.MaxStackUsed,
			ExitReason:   t.ExitReason,
			Switches:     t.Switches,
			ServiceCalls: t.ServiceCalls,
			KernelCycles: t.KernelCycles,
		}
	}
	for i, r := range k.regions {
		st.Regions[i] = r.ID
	}
	return st
}

// RestoreState applies a captured state to k, which must have admitted the
// same programs in the same order as the snapshot's source (same task names
// and load addresses) but must not have booted: restore replaces Boot, and
// the caller resumes with Run as usual. Machine state (registers, SRAM,
// guard) is restored separately via mcu.Machine.RestoreState.
func (k *Kernel) RestoreState(st *KernelState) error {
	if k.booted {
		return fmt.Errorf("kernel: cannot restore onto a booted kernel")
	}
	if !st.Booted {
		return fmt.Errorf("kernel: snapshot predates boot")
	}
	if len(st.Tasks) != len(k.Tasks) {
		return fmt.Errorf("kernel: snapshot has %d tasks, target admitted %d",
			len(st.Tasks), len(k.Tasks))
	}
	if st.FlashTop != k.flashTop || st.AppBase != k.appBase || st.AppEnd != k.appEnd {
		return fmt.Errorf("kernel: snapshot memory layout (flash %#x app %#x..%#x) differs from target (flash %#x app %#x..%#x)",
			st.FlashTop, st.AppBase, st.AppEnd, k.flashTop, k.appBase, k.appEnd)
	}
	if st.Cur < -1 || st.Cur >= len(k.Tasks) {
		return fmt.Errorf("kernel: snapshot current-task index %d out of range", st.Cur)
	}
	byID := make(map[int]*Task, len(k.Tasks))
	for i, t := range k.Tasks {
		r := &st.Tasks[i]
		if r.ID != t.ID || r.Name != t.Name || r.Base != t.Base {
			return fmt.Errorf("kernel: snapshot task %d is %q@%#x, target admitted %q@%#x",
				i, r.Name, r.Base, t.Name, t.Base)
		}
		byID[t.ID] = t
	}
	regions := make([]*Task, len(st.Regions))
	for i, id := range st.Regions {
		t, ok := byID[id]
		if !ok {
			return fmt.Errorf("kernel: snapshot region list names unknown task %d", id)
		}
		regions[i] = t
	}
	for i, t := range k.Tasks {
		r := &st.Tasks[i]
		t.pl, t.ph, t.pu = r.PL, r.PH, r.PU
		t.state = TaskState(r.State)
		t.wakeAt = r.WakeAt
		t.regs = r.Regs
		t.sreg = r.SREG
		t.spPhys = r.SPPhys
		t.pc = r.PC
		t.spShadow = r.SPShad
		t.branchLeft = r.BrLeft
		t.sliceStart = r.SliceAt
		t.runStart = r.RunAt
		t.runCycles = r.RunCyc
		t.timer3Latch = r.T3Latch
		t.Relocations = r.Relocations
		t.MaxStackUsed = r.MaxStackUsed
		t.ExitReason = r.ExitReason
		t.Switches = r.Switches
		t.ServiceCalls = r.ServiceCalls
		t.KernelCycles = r.KernelCycles
		if k.prof != nil {
			k.prof.UpdateRegion(int32(t.ID), t.pl, t.ph, t.pu)
		}
	}
	k.regions = regions
	k.cur = st.Cur
	k.Stats = st.Stats
	k.curService = rewriter.Class(st.Service)
	k.FaultLog = append([]FaultRecord(nil), st.FaultLog...)
	k.booted = true
	return nil
}

package kernel

import (
	"fmt"

	"repro/internal/trace"
)

// accessKind classifies where a translated logical address landed, which
// selects the Table II overhead row.
type accessKind uint8

const (
	accessIO accessKind = iota + 1
	accessHeap
	accessStack
	accessInvalid
)

// translate maps a task-logical data address to a physical one
// (Section IV-C2, Figure 2): the I/O area is identity-mapped, the heap adds
// the displacement p_l, and the stack adds p_u - M.
func (t *Task) translate(logical uint16) (phys uint16, kind accessKind) {
	if logical < 0x100 {
		return logical, accessIO
	}
	heapSize := t.ph - t.pl
	if logical >= 0x100 && logical < 0x100+heapSize {
		return logical - 0x100 + t.pl, accessHeap
	}
	// The logical stack grows down from M = logicalSPBase; the topmost
	// stack byte lives at M-1. Addresses at or above M would land past
	// p_u — another task's region — so they fault like any other
	// out-of-region access.
	if logical >= logicalSPBase {
		return 0, accessInvalid
	}
	stackSize := t.pu - t.ph
	if logical >= logicalSPBase-stackSize {
		return logical - (logicalSPBase - stackSize) + t.ph, accessStack
	}
	return 0, accessInvalid
}

// regionIndex locates t in the address-ordered region list.
func (k *Kernel) regionIndex(t *Task) int {
	for i, r := range k.regions {
		if r == t {
			return i
		}
	}
	return -1
}

// moveBlock relocates n bytes of task memory and accounts for the copy.
func (k *Kernel) moveBlock(dst, src, n uint16) {
	if n == 0 || dst == src {
		return
	}
	k.M.CopyData(dst, src, n)
	k.Stats.RelocatedBytes += uint64(n)
	k.M.AddCycles(uint64(n) * CostRelocPerByte)
	k.Stats.RelocCycles += uint64(n) * CostRelocPerByte
}

// growStack enlarges t's stack area by at least need bytes by relocating
// neighbouring regions (Section IV-C3, Figure 3). It returns false when no
// donor — neither a task with surplus stack nor trailing free memory — can
// supply the space.
func (k *Kernel) growStack(t *Task, need uint16) bool {
	if k.Cfg.DisableRelocation {
		return false
	}
	m := k.regionIndex(t)
	if m < 0 {
		return false
	}
	// Tasks with a history of deep stacks prefer grants of half their peak
	// at once — fewer relocation events for the same space — but fall back
	// to the hard minimum when donors are tight.
	want := max(need, t.MaxStackUsed/2)
	// Donor selection: the task with the most surplus stack provides half
	// of it; trailing free memory acts as an additional donor. SenSmart is
	// "conservative on memory relocations": a donor never gives up space
	// below its own stack high-water mark (plus a small margin), which
	// stops tasks with alternating deep phases from thrashing stack space
	// back and forth.
	bestIdx, bestDelta := -1, uint16(0)
	for i, r := range k.regions {
		if i == m || r.state == TaskTerminated {
			continue
		}
		avail := r.freeStack()
		// The floor keeps half the donor's historical peak (plus margin):
		// enough hysteresis to avoid thrashing, while still letting tasks
		// time-share stack space their deep phases need only transiently.
		floor := max(r.StackUsed(), r.MaxStackUsed/2) + 16
		if r.StackAlloc() > floor {
			if headroom := r.StackAlloc() - floor; avail > headroom {
				avail = headroom
			}
		} else {
			avail = 0
		}
		if avail/2 > bestDelta {
			bestIdx, bestDelta = i, avail/2
		}
	}
	trailing := k.FreeMemory()
	trailingDelta := trailing
	if trailingDelta > 4*want && trailingDelta > 64 {
		// Don't hand a single task all remaining memory at once.
		trailingDelta = max(4*want, 64)
	}
	// Prefer a donor that covers the comfortable grant; accept one that
	// covers the hard minimum; otherwise give up.
	useTrailing := false
	switch {
	case trailingDelta >= want && (bestDelta < want || trailingDelta >= bestDelta):
		useTrailing = true
	case bestDelta >= want:
		// use bestIdx
	case trailingDelta >= need && (bestDelta < need || trailingDelta >= bestDelta):
		useTrailing = true
	case bestDelta >= need:
		// use bestIdx
	default:
		return false
	}

	k.M.AddCycles(CostStackReloc)
	k.Stats.Relocations++
	k.Stats.RelocCycles += CostStackReloc
	t.Relocations++
	relocBefore := k.Stats.RelocCycles - CostStackReloc

	var granted uint16
	var donor string
	if useTrailing {
		k.shiftUpInto(m, len(k.regions), trailingDelta)
		granted, donor = trailingDelta, "from free memory"
	} else if bestIdx > m {
		k.shiftUpInto(m, bestIdx, bestDelta)
		granted, donor = bestDelta, "from "+k.regions[bestIdx].Name+" (above)"
	} else {
		k.shiftDownInto(m, bestIdx, bestDelta)
		granted, donor = bestDelta, "from "+k.regions[bestIdx].Name+" (below)"
	}
	k.syncAfterMove()
	relocCost := k.Stats.RelocCycles - relocBefore
	t.KernelCycles += relocCost
	if k.prof != nil {
		// The machine PC still points at the access that triggered the
		// growth (trap site or faulted push).
		k.prof.OnReloc(int32(t.ID), k.M.PC(), uint64(granted), relocCost)
	}
	k.ev(trace.Event{Kind: trace.KindReloc, Task: int32(t.ID),
		Arg: uint64(granted), Arg2: relocCost, Detail: donor})
	return true
}

// freeStack returns the task's unused stack bytes (between heap top and the
// current stack top).
func (t *Task) freeStack() uint16 {
	sp := t.spPhys
	if sp >= t.pu { // empty stack
		return t.pu - t.ph
	}
	if sp < t.ph {
		return 0
	}
	return sp + 1 - t.ph
}

// shiftUpInto grows region m's stack by delta, taking the space from donor
// region dn above it (dn == len(regions) means the trailing free space).
// Blocks move upward, processed top-down so sources are never clobbered.
func (k *Kernel) shiftUpInto(m, dn int, delta uint16) {
	if dn < len(k.regions) {
		n := k.regions[dn]
		// Donor keeps its stack contents in place; only its heap slides up,
		// shrinking its free stack gap.
		k.moveBlock(n.pl+delta, n.pl, n.ph-n.pl)
		n.pl += delta
		n.ph += delta
	}
	for i := dn - 1; i > m; i-- {
		r := k.regions[i]
		k.moveBlock(r.pl+delta, r.pl, r.pu-r.pl)
		r.pl += delta
		r.ph += delta
		r.pu += delta
		r.spPhys += delta
	}
	t := k.regions[m]
	used := t.StackUsed()
	k.moveBlock(t.spPhys+1+delta, t.spPhys+1, used)
	t.pu += delta
	t.spPhys += delta
}

// shiftDownInto grows region m's stack by delta, taking the space from donor
// region dn below it. Blocks move downward, processed bottom-up.
func (k *Kernel) shiftDownInto(m, dn int, delta uint16) {
	n := k.regions[dn]
	used := n.StackUsed()
	k.moveBlock(n.spPhys+1-delta, n.spPhys+1, used)
	n.pu -= delta
	n.spPhys -= delta
	for i := dn + 1; i < m; i++ {
		r := k.regions[i]
		k.moveBlock(r.pl-delta, r.pl, r.pu-r.pl)
		r.pl -= delta
		r.ph -= delta
		r.pu -= delta
		r.spPhys -= delta
	}
	t := k.regions[m]
	k.moveBlock(t.pl-delta, t.pl, t.ph-t.pl)
	t.pl -= delta
	t.ph -= delta
}

// syncAfterMove refreshes machine state and SP shadows after regions moved.
func (k *Kernel) syncAfterMove() {
	for _, r := range k.regions {
		r.spShadow = r.logicalSP()
		if k.prof != nil {
			k.prof.UpdateRegion(int32(r.ID), r.pl, r.ph, r.pu)
		}
	}
	if cur := k.Current(); cur != nil {
		k.M.SetSP(cur.spPhys)
		k.M.SetGuard(cur.pl, cur.pu)
	}
}

// releaseRegion removes a terminated task's region, sliding the regions
// above it down so that all free memory pools at the top of the application
// area (keeping the region list contiguous).
func (k *Kernel) releaseRegion(t *Task) {
	idx := k.regionIndex(t)
	if idx < 0 {
		return
	}
	size := t.pu - t.pl
	for i := idx + 1; i < len(k.regions); i++ {
		r := k.regions[i]
		k.moveBlock(r.pl-size, r.pl, r.pu-r.pl)
		r.pl -= size
		r.ph -= size
		r.pu -= size
		r.spPhys -= size
	}
	k.regions = append(k.regions[:idx], k.regions[idx+1:]...)
	k.syncAfterMove()
}

// faultTask terminates a task for an invalid memory access ("accesses beyond
// a task's memory region are intercepted and treated as invalid
// instructions", Section IV-C2).
func (k *Kernel) faultTask(t *Task, logical uint16) {
	pc := k.M.PC() // services fault before setting the continuation PC
	if k.Cfg.Trace != nil {
		k.Cfg.Trace.Emit(trace.Event{Cycle: k.M.Cycles(), Kind: trace.KindMemFault,
			Task: int32(t.ID), Arg: uint64(logical), PC: pc, Detail: k.sym.Name(pc)})
	}
	reason := fmt.Sprintf("invalid logical address %#x at pc %#x in %s",
		logical, pc, k.sym.Name(pc))
	k.recordFault(t, "invalid logical address", pc, reason)
	k.terminate(t, reason)
}

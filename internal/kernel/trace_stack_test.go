package kernel

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/progs"
	"repro/internal/rewriter"
	"repro/internal/trace"
)

// natProg rewrites a generated workload program for the kernel.
func natProg(t *testing.T, p *image.Program) *rewriter.Naturalized {
	t.Helper()
	nat, err := rewriter.Rewrite(p, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nat
}

// TestTreeSearchRelocationGoldens pins the stack-management behaviour of the
// Section V-D tree-search workload: two tasks recursing 8 levels deep (15
// stack bytes per level) each outgrow the 64-byte initial stack once, and
// the kernel's relocation ledger, the per-task counters, and the trace
// stream must all agree on the result. The literals are goldens from the
// deterministic simulation; a change here means stack management changed.
func TestTreeSearchRelocationGoldens(t *testing.T) {
	prog, err := progs.TreeSearch(progs.TreeSearchParams{Trees: 4, NodesPerTree: 20, Searches: 120})
	if err != nil {
		t.Fatal(err)
	}
	nat := natProg(t, prog)
	rec := trace.New()
	k, tasks := bootKernel(t, Config{Trace: rec}, nat, nat)
	if err := k.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("treesearch tasks did not terminate")
	}
	for _, task := range tasks {
		if task.ExitReason != "exited" {
			t.Errorf("%s exit = %q, want exited", task.Name, task.ExitReason)
		}
		if task.MaxStackUsed != 120 {
			t.Errorf("%s stack peak = %d, want 120", task.Name, task.MaxStackUsed)
		}
		if task.StackAlloc() != 200 {
			t.Errorf("%s stack alloc = %d, want 200", task.Name, task.StackAlloc())
		}
		if task.Relocations != 1 {
			t.Errorf("%s relocations = %d, want 1", task.Name, task.Relocations)
		}
	}
	if k.Stats.Relocations != 2 {
		t.Errorf("Stats.Relocations = %d, want 2", k.Stats.Relocations)
	}
	if k.Stats.RelocatedBytes != 826 {
		t.Errorf("Stats.RelocatedBytes = %d, want 826", k.Stats.RelocatedBytes)
	}
	// Every relocation charges the fixed Table II cost plus the per-byte
	// copy; compaction moves charge per-byte only but also count their
	// bytes, so the ledger decomposes exactly.
	if want := uint64(k.Stats.Relocations)*CostStackReloc + k.Stats.RelocatedBytes*CostRelocPerByte; k.Stats.RelocCycles != want {
		t.Errorf("Stats.RelocCycles = %d, want %d (relocs*%d + bytes*%d)",
			k.Stats.RelocCycles, want, CostStackReloc, CostRelocPerByte)
	}

	// The trace must carry one KindReloc per relocation, and the granted
	// bytes must add up to each task's growth beyond the initial stack.
	granted := map[int32]uint64{}
	relocEvents := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindReloc {
			relocEvents++
			granted[e.Task] += e.Arg
		}
	}
	if relocEvents != k.Stats.Relocations {
		t.Errorf("trace has %d KindReloc events, Stats.Relocations = %d", relocEvents, k.Stats.Relocations)
	}
	for _, task := range tasks {
		if want := uint64(task.StackAlloc() - 64); granted[int32(task.ID)] != want {
			t.Errorf("%s: trace grants sum to %d bytes, alloc grew by %d", task.Name, granted[int32(task.ID)], want)
		}
	}
}

// TestAllocDemoGoldens pins the dynamic-allocation workload: a shallow task
// that never outgrows its initial stack must finish without relocations.
func TestAllocDemoGoldens(t *testing.T) {
	prog, err := progs.AllocDemo(20)
	if err != nil {
		t.Fatal(err)
	}
	k, tasks := bootKernel(t, Config{}, natProg(t, prog))
	if err := k.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("alloc demo did not terminate")
	}
	task := tasks[0]
	if task.ExitReason != "exited" {
		t.Errorf("exit = %q, want exited", task.ExitReason)
	}
	if task.MaxStackUsed != 2 {
		t.Errorf("stack peak = %d, want 2", task.MaxStackUsed)
	}
	if task.Relocations != 0 || k.Stats.Relocations != 0 {
		t.Errorf("relocations = %d/%d, want 0", task.Relocations, k.Stats.Relocations)
	}
}

// TestDisableRelocationAblationTerminates checks the Section IV-C3 ablation:
// with relocation off, the deep-recursion workload must not hang or corrupt
// memory — every task dies cleanly on its first stack overflow and the run
// terminates.
func TestDisableRelocationAblationTerminates(t *testing.T) {
	prog, err := progs.TreeSearch(progs.TreeSearchParams{Trees: 4, NodesPerTree: 20, Searches: 120})
	if err != nil {
		t.Fatal(err)
	}
	nat := natProg(t, prog)
	rec := trace.New()
	k, tasks := bootKernel(t, Config{DisableRelocation: true, Trace: rec}, nat, nat)
	if err := k.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !k.Done() {
		t.Fatal("ablation run did not terminate")
	}
	for _, task := range tasks {
		if !strings.HasPrefix(task.ExitReason, "stack exhausted") {
			t.Errorf("%s exit = %q, want stack exhausted", task.Name, task.ExitReason)
		}
	}
	exits := 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindReloc:
			t.Errorf("relocation event at cycle %d despite DisableRelocation", e.Cycle)
		case trace.KindTaskExit:
			exits++
			if !strings.HasPrefix(e.Detail, "stack exhausted") {
				t.Errorf("exit event detail = %q, want stack exhausted", e.Detail)
			}
		}
	}
	if exits != len(tasks) {
		t.Errorf("trace has %d KindTaskExit events, want %d", exits, len(tasks))
	}
}

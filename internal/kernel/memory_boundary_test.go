package kernel

import (
	"testing"

	"repro/internal/mcu"
)

// TestTranslateBoundaries pins the logical→physical translation of
// Section IV-C2 at every region edge: the I/O window, both sides of the
// heap boundaries p_l and p_h, both sides of the stack window, and the
// logical SP base M (one past the highest valid stack address).
func TestTranslateBoundaries(t *testing.T) {
	// Heap [0x200, 0x240): 0x40 bytes. Stack (0x240, 0x2C0): 0x80 bytes.
	task := &Task{pl: 0x200, ph: 0x240, pu: 0x2C0}
	const stackLow = logicalSPBase - 0x80 // first logical stack address

	cases := []struct {
		name    string
		logical uint16
		phys    uint16
		kind    accessKind
	}{
		{"io low", 0x0000, 0x0000, accessIO},
		{"io high (last identity-mapped byte)", 0x00FF, 0x00FF, accessIO},
		{"heap base -> p_l", 0x0100, 0x0200, accessHeap},
		{"heap top -> p_h-1", 0x013F, 0x023F, accessHeap},
		{"one past heap faults", 0x0140, 0, accessInvalid},
		{"one below stack window faults", stackLow - 1, 0, accessInvalid},
		{"stack window base -> p_h", stackLow, 0x240, accessStack},
		{"stack top -> p_u-1", logicalSPBase - 1, 0x2BF, accessStack},
		{"logical SP base M faults", logicalSPBase, 0, accessInvalid},
		{"beyond M faults (no wrap into neighbours)", 0xFFFF, 0, accessInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			phys, kind := task.translate(tc.logical)
			if kind != tc.kind {
				t.Fatalf("translate(%#x): kind = %d, want %d", tc.logical, kind, tc.kind)
			}
			if kind != accessInvalid && phys != tc.phys {
				t.Fatalf("translate(%#x): phys = %#x, want %#x", tc.logical, phys, tc.phys)
			}
		})
	}
}

// TestTranslateDegenerateRegions covers zero-size heap and stack areas: the
// empty window must fault rather than alias its neighbour.
func TestTranslateDegenerateRegions(t *testing.T) {
	noHeap := &Task{pl: 0x200, ph: 0x200, pu: 0x280}
	if _, kind := noHeap.translate(0x100); kind != accessInvalid {
		t.Errorf("zero heap: translate(0x100) kind = %d, want invalid", kind)
	}
	if phys, kind := noHeap.translate(logicalSPBase - 0x80); kind != accessStack || phys != 0x200 {
		t.Errorf("zero heap: stack base = (%#x, %d), want (0x200, stack)", phys, kind)
	}

	noStack := &Task{pl: 0x200, ph: 0x280, pu: 0x280}
	if _, kind := noStack.translate(logicalSPBase - 1); kind != accessInvalid {
		t.Errorf("zero stack: translate(M-1) kind = %d, want invalid", kind)
	}
	if phys, kind := noStack.translate(0x17F); kind != accessHeap || phys != 0x27F {
		t.Errorf("zero stack: heap top = (%#x, %d), want (0x27F, heap)", phys, kind)
	}
}

// redZoneKernel builds a kernel with one hand-placed region so ensureStack
// can be probed at exact headroom boundaries without running any code.
func redZoneKernel(t *testing.T) (*Kernel, *Task) {
	t.Helper()
	m := mcu.New()
	k := New(m, Config{DisableRelocation: true})
	task := &Task{Name: "probe", state: TaskReady, pl: 0x200, ph: 0x240, pu: 0x2C0}
	k.Tasks = append(k.Tasks, task)
	k.regions = append(k.regions, task)
	return k, task
}

// TestEnsureStackRedZoneEdge pins the 32-byte red-zone check of the
// call-site stack guard: exactly RedZone bytes of headroom pass without
// relocation; one byte less must grow the stack or kill the task.
func TestEnsureStackRedZoneEdge(t *testing.T) {
	k, task := redZoneKernel(t)
	red := k.Cfg.RedZone // defaulted to 32

	task.spPhys = task.ph + red // exactly RedZone bytes free
	if !k.ensureStack(task, red) {
		t.Fatalf("ensureStack with exactly %d bytes headroom failed", red)
	}
	if task.state == TaskTerminated || k.Stats.Relocations != 0 {
		t.Fatalf("exact headroom should pass untouched (state %v, relocations %d)",
			task.state, k.Stats.Relocations)
	}

	task.spPhys = task.ph + red - 1 // one byte short of the red zone
	if k.ensureStack(task, red) {
		t.Fatal("ensureStack passed with one byte less than the red zone and relocation disabled")
	}
	if task.state != TaskTerminated {
		t.Fatalf("task state = %v, want terminated", task.state)
	}
}

// TestEnsureStackGrowsAcrossRedZone verifies the positive side of the same
// edge: with relocation enabled and trailing free memory available, a task
// one byte short of the red zone is grown instead of killed.
func TestEnsureStackGrowsAcrossRedZone(t *testing.T) {
	m := mcu.New()
	k := New(m, Config{})
	task := &Task{Name: "probe", state: TaskReady, pl: 0x200, ph: 0x240, pu: 0x2C0}
	k.Tasks = append(k.Tasks, task)
	k.regions = append(k.regions, task)
	red := k.Cfg.RedZone

	task.spPhys = task.ph + red - 1
	if !k.ensureStack(task, red) {
		t.Fatal("ensureStack failed despite trailing free memory")
	}
	if task.state == TaskTerminated {
		t.Fatal("task terminated despite trailing free memory")
	}
	if k.Stats.Relocations != 1 {
		t.Fatalf("relocations = %d, want 1", k.Stats.Relocations)
	}
	if task.spPhys-task.ph < red {
		t.Fatalf("headroom after growth = %d, want >= %d", task.spPhys-task.ph, red)
	}
}

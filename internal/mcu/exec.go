package mcu

// shiftFlags computes SREG for ASR/LSR/ROR, branch-free like the helpers in
// flags.go: C is the shifted-out bit, V = N ^ C, and S = N ^ V = C.
func shiftFlags(a, r byte, sreg byte) byte {
	sreg &^= flagS | flagV | flagN | flagZ | flagC
	c := a & 1
	n := r >> 7
	var z byte
	if r == 0 {
		z = flagZ
	}
	return sreg | c | z | n<<2 | (n^c)<<3 | c<<4
}

// skip advances past the next instruction (CPSE/SBRC/SBRS/SBIC/SBIS taken).
// The length of the skipped instruction is looked up dynamically through the
// micro-op cache — never precomputed into the skipping uop — so a LoadFlash
// that rewrites the following word is always honoured.
func (m *Machine) skip(next uint32) uint32 {
	u, err := m.fetchUop(next)
	if err != nil {
		// Undecodable skipped word: treat as one word, as hardware would.
		m.cycle++
		return next + 1
	}
	w := uint32(u.in.Op.Words())
	m.cycle += uint64(w)
	return next + w
}

// loadByte reads data memory with device dispatch and guard checking.
func (m *Machine) loadByte(addr uint16) (byte, error) {
	addr %= DataSize
	if addr < SRAMBase {
		return m.readIO(addr), nil
	}
	if m.guardOn && (addr < m.guardLo || addr >= m.guardHi) {
		return 0, m.faultf(FaultMemGuard, addr, "native load outside task region")
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, addr, false)
	}
	return m.data[addr], nil
}

// storeByte writes data memory with device dispatch and guard checking.
func (m *Machine) storeByte(addr uint16, v byte) error {
	addr %= DataSize
	if addr < SRAMBase {
		m.writeIO(addr, v)
		return nil
	}
	if m.guardOn && (addr < m.guardLo || addr >= m.guardHi) {
		return m.faultf(FaultMemGuard, addr, "native store outside task region")
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, addr, true)
	}
	m.data[addr] = v
	return nil
}

// pushByte writes through SP and post-decrements it, enforcing the guard.
func (m *Machine) pushByte(b byte) {
	sp := m.SP()
	if m.guardOn && (sp < m.guardLo || sp >= m.guardHi) {
		m.faultf(FaultStackOverflow, sp, "push outside task region")
		return
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, sp, true)
	}
	m.data[sp%DataSize] = b
	m.SetSP(sp - 1)
}

// popByte pre-increments SP and reads through it. The guard is checked
// before SP is committed, so a faulting pop leaves SP where it was and the
// kernel's retry-after-recovery re-executes the pop exactly.
func (m *Machine) popByte() byte {
	sp := m.SP() + 1
	if m.guardOn && (sp < m.guardLo || sp >= m.guardHi) {
		m.faultf(FaultStackOverflow, sp, "pop outside task region")
		return 0
	}
	m.SetSP(sp)
	if m.memWatch != nil {
		m.memWatch(m.pc, sp, false)
	}
	return m.data[sp%DataSize]
}

// pushWord pushes low byte first (so memory holds little-endian order). Both
// bytes are guard-checked up front: a word push that cannot complete is
// transactional — no byte is written and SP does not move — so the kernel's
// grow-and-retry recovery replays the instruction from pristine state instead
// of landing the return address one byte low and leaking the partial write.
func (m *Machine) pushWord(w uint16) {
	if m.guardOn {
		sp := m.SP()
		if sp < m.guardLo+1 || sp >= m.guardHi {
			m.faultf(FaultStackOverflow, sp, "push outside task region")
			return
		}
	}
	m.pushByte(byte(w))
	m.pushByte(byte(w >> 8))
}

// popWord is the inverse of pushWord, with the same transactional guard
// discipline: both byte addresses are checked before either read or the SP
// update happens.
func (m *Machine) popWord() uint16 {
	if m.guardOn {
		sp := m.SP()
		if sp+1 < m.guardLo || sp+2 >= m.guardHi {
			m.faultf(FaultStackOverflow, sp+1, "pop outside task region")
			return 0
		}
	}
	hi := m.popByte()
	lo := m.popByte()
	return uint16(hi)<<8 | uint16(lo)
}

// PushWord exposes return-address pushing for the kernel (context save and
// trampoline-emulated CALLs).
func (m *Machine) PushWord(w uint16) { m.pushWord(w) }

// PopWord exposes return-address popping for the kernel.
func (m *Machine) PopWord() uint16 { return m.popWord() }

// flashByte reads a byte from program memory (LPM semantics: the address is
// a byte address; bit 0 selects low/high byte of the word).
func (m *Machine) flashByte(z uint32) byte {
	w := m.flash[(z>>1)&(FlashWords-1)]
	if z&1 != 0 {
		return byte(w >> 8)
	}
	return byte(w)
}

// FlashByte is the exported flashByte for kernel-mediated LPM translation;
// it takes a full-width byte address because naturalized programs may sit
// above the 64 KB byte boundary.
func (m *Machine) FlashByte(z uint32) byte { return m.flashByte(z) }

// ReadBus reads a data-space address with device side effects but without
// guard checks (kernel-mediated access on behalf of a task).
func (m *Machine) ReadBus(addr uint16) byte {
	addr %= DataSize
	if addr < SRAMBase {
		return m.readIO(addr)
	}
	return m.data[addr]
}

// WriteBus writes a data-space address with device side effects but without
// guard checks.
func (m *Machine) WriteBus(addr uint16, v byte) {
	addr %= DataSize
	if addr < SRAMBase {
		m.writeIO(addr, v)
		return
	}
	m.data[addr] = v
}

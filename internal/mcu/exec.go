package mcu

import "repro/internal/avr"

// exec executes one decoded instruction and advances PC and the cycle count.
func (m *Machine) exec(in avr.Inst) error {
	d := in.Dst
	words := uint32(in.Op.Words())
	next := m.pc + words
	m.cycle += uint64(in.Op.BaseCycles())

	switch in.Op {
	case avr.OpNop, avr.OpWdr:
		// nothing

	case avr.OpSleep:
		m.sleeping = true

	case avr.OpBreak:
		return m.faultf(FaultBreak, 0, "bare break")

	case avr.OpKtrap:
		if m.trap == nil {
			return m.faultf(FaultTrap, 0, "no kernel attached")
		}
		// The handler sets PC and charges kernel cycles itself.
		if err := m.trap(m, uint16(in.Imm)); err != nil {
			if m.fault == nil {
				m.faultf(FaultTrap, 0, err.Error())
			}
			return m.fault
		}
		return nil

	case avr.OpAdd, avr.OpAdc:
		a, b := m.data[d], m.data[in.Src]
		r := a + b
		if in.Op == avr.OpAdc && m.data[addrSREG]&flagC != 0 {
			r++
		}
		m.data[d] = r
		m.data[addrSREG] = addFlags(a, b, r, m.data[addrSREG])

	case avr.OpSub, avr.OpCp:
		a, b := m.data[d], m.data[in.Src]
		r := a - b
		if in.Op == avr.OpSub {
			m.data[d] = r
		}
		m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)

	case avr.OpSbc, avr.OpCpc:
		a, b := m.data[d], m.data[in.Src]
		r := a - b
		if m.data[addrSREG]&flagC != 0 {
			r--
		}
		if in.Op == avr.OpSbc {
			m.data[d] = r
		}
		m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], true)

	case avr.OpSubi, avr.OpCpi:
		a, b := m.data[d], byte(in.Imm)
		r := a - b
		if in.Op == avr.OpSubi {
			m.data[d] = r
		}
		m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)

	case avr.OpSbci:
		a, b := m.data[d], byte(in.Imm)
		r := a - b
		if m.data[addrSREG]&flagC != 0 {
			r--
		}
		m.data[d] = r
		m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], true)

	case avr.OpAnd:
		r := m.data[d] & m.data[in.Src]
		m.data[d] = r
		m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	case avr.OpAndi:
		r := m.data[d] & byte(in.Imm)
		m.data[d] = r
		m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	case avr.OpOr:
		r := m.data[d] | m.data[in.Src]
		m.data[d] = r
		m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	case avr.OpOri:
		r := m.data[d] | byte(in.Imm)
		m.data[d] = r
		m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	case avr.OpEor:
		r := m.data[d] ^ m.data[in.Src]
		m.data[d] = r
		m.data[addrSREG] = logicFlags(r, m.data[addrSREG])

	case avr.OpMov:
		m.data[d] = m.data[in.Src]
	case avr.OpMovw:
		m.data[d] = m.data[in.Src]
		m.data[d+1] = m.data[in.Src+1]
	case avr.OpLdi:
		m.data[d] = byte(in.Imm)

	case avr.OpCom:
		r := ^m.data[d]
		m.data[d] = r
		s := logicFlags(r, m.data[addrSREG]) | flagC
		m.data[addrSREG] = nzs(s, r)
	case avr.OpNeg:
		a := m.data[d]
		r := -a
		m.data[d] = r
		s := m.data[addrSREG] &^ (flagH | flagS | flagV | flagN | flagZ | flagC)
		if r != 0 {
			s |= flagC
		}
		if r == 0x80 {
			s |= flagV
		}
		if (r|a)&0x08 != 0 {
			s |= flagH
		}
		m.data[addrSREG] = nzs(s, r)
	case avr.OpSwap:
		m.data[d] = m.data[d]<<4 | m.data[d]>>4
	case avr.OpInc:
		r := m.data[d] + 1
		m.data[d] = r
		s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ)
		if r == 0x80 {
			s |= flagV
		}
		m.data[addrSREG] = nzs(s, r)
	case avr.OpDec:
		r := m.data[d] - 1
		m.data[d] = r
		s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ)
		if r == 0x7F {
			s |= flagV
		}
		m.data[addrSREG] = nzs(s, r)
	case avr.OpAsr:
		a := m.data[d]
		r := a>>1 | a&0x80
		m.data[d] = r
		m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])
	case avr.OpLsr:
		a := m.data[d]
		r := a >> 1
		m.data[d] = r
		m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])
	case avr.OpRor:
		a := m.data[d]
		r := a >> 1
		if m.data[addrSREG]&flagC != 0 {
			r |= 0x80
		}
		m.data[d] = r
		m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])

	case avr.OpMul:
		p := uint16(m.data[d]) * uint16(m.data[in.Src])
		m.data[0] = byte(p)
		m.data[1] = byte(p >> 8)
		s := m.data[addrSREG] &^ (flagC | flagZ)
		if p&0x8000 != 0 {
			s |= flagC
		}
		if p == 0 {
			s |= flagZ
		}
		m.data[addrSREG] = s

	case avr.OpAdiw, avr.OpSbiw:
		v := m.RegPair(d)
		var r uint16
		s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ | flagC)
		if in.Op == avr.OpAdiw {
			r = v + uint16(in.Imm)
			if r&0x8000 != 0 && v&0x8000 == 0 {
				s |= flagV
			}
			if r&0x8000 == 0 && v&0x8000 != 0 {
				s |= flagC
			}
		} else {
			r = v - uint16(in.Imm)
			if r&0x8000 == 0 && v&0x8000 != 0 {
				s |= flagV
			}
			if r&0x8000 != 0 && v&0x8000 == 0 {
				s |= flagC
			}
		}
		m.SetRegPair(d, r)
		if r == 0 {
			s |= flagZ
		}
		if r&0x8000 != 0 {
			s |= flagN
		}
		n, vf := s&flagN != 0, s&flagV != 0
		if n != vf {
			s |= flagS
		}
		m.data[addrSREG] = s

	case avr.OpBset:
		m.data[addrSREG] |= 1 << d
	case avr.OpBclr:
		m.data[addrSREG] &^= 1 << d

	case avr.OpRjmp:
		next = uint32(int64(m.pc) + 1 + int64(in.Imm))
	case avr.OpRcall:
		m.pushWord(uint16(next))
		next = uint32(int64(m.pc) + 1 + int64(in.Imm))
	case avr.OpJmp:
		next = uint32(in.Imm)
	case avr.OpCall:
		m.pushWord(uint16(next))
		next = uint32(in.Imm)
	case avr.OpIjmp:
		next = uint32(m.RegPair(avr.RegZ))
	case avr.OpIcall:
		m.pushWord(uint16(next))
		next = uint32(m.RegPair(avr.RegZ))
	case avr.OpRet:
		next = uint32(m.popWord())
	case avr.OpReti:
		next = uint32(m.popWord())
		m.data[addrSREG] |= flagI

	case avr.OpBrbs:
		if m.data[addrSREG]&(1<<in.Src) != 0 {
			next = uint32(int64(m.pc) + 1 + int64(in.Imm))
			m.cycle++
		}
	case avr.OpBrbc:
		if m.data[addrSREG]&(1<<in.Src) == 0 {
			next = uint32(int64(m.pc) + 1 + int64(in.Imm))
			m.cycle++
		}

	case avr.OpCpse:
		if m.data[d] == m.data[in.Src] {
			next = m.skip(next)
		}
	case avr.OpSbrc:
		if m.data[d]&(1<<uint(in.Imm)) == 0 {
			next = m.skip(next)
		}
	case avr.OpSbrs:
		if m.data[d]&(1<<uint(in.Imm)) != 0 {
			next = m.skip(next)
		}
	case avr.OpSbic:
		if m.readIO(uint16(d)+IOBase)&(1<<uint(in.Imm)) == 0 {
			next = m.skip(next)
		}
	case avr.OpSbis:
		if m.readIO(uint16(d)+IOBase)&(1<<uint(in.Imm)) != 0 {
			next = m.skip(next)
		}

	case avr.OpIn:
		m.data[d] = m.readIO(uint16(in.Imm) + IOBase)
	case avr.OpOut:
		m.writeIO(uint16(in.Imm)+IOBase, m.data[d])
	case avr.OpSbi:
		a := uint16(d) + IOBase
		m.writeIO(a, m.readIO(a)|1<<uint(in.Imm))
	case avr.OpCbi:
		a := uint16(d) + IOBase
		m.writeIO(a, m.readIO(a)&^(1<<uint(in.Imm)))

	case avr.OpLds:
		v, err := m.loadByte(uint16(in.Imm))
		if err != nil {
			return err
		}
		m.data[d] = v
	case avr.OpSts:
		if err := m.storeByte(uint16(in.Imm), m.data[d]); err != nil {
			return err
		}

	case avr.OpLdX, avr.OpLdXInc, avr.OpLdXDec, avr.OpLdYInc, avr.OpLdYDec,
		avr.OpLddY, avr.OpLdZInc, avr.OpLdZDec, avr.OpLddZ:
		addr, ptr, wb := m.indirectAddr(in)
		v, err := m.loadByte(addr)
		if err != nil {
			return err
		}
		m.data[d] = v
		if wb {
			m.SetRegPair(ptr, m.wbVal)
		}

	case avr.OpStX, avr.OpStXInc, avr.OpStXDec, avr.OpStYInc, avr.OpStYDec,
		avr.OpStdY, avr.OpStZInc, avr.OpStZDec, avr.OpStdZ:
		addr, ptr, wb := m.indirectAddr(in)
		if err := m.storeByte(addr, m.data[d]); err != nil {
			return err
		}
		if wb {
			m.SetRegPair(ptr, m.wbVal)
		}

	case avr.OpPush:
		m.pushByte(m.data[d])
	case avr.OpPop:
		m.data[d] = m.popByte()

	case avr.OpLpm:
		m.data[0] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
	case avr.OpLpmZ:
		m.data[d] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
	case avr.OpLpmZInc:
		z := m.RegPair(avr.RegZ)
		m.data[d] = m.flashByte(uint32(z))
		m.SetRegPair(avr.RegZ, z+1)

	default:
		return m.faultf(FaultBadInst, 0, "unimplemented op "+in.Op.String())
	}

	if m.fault != nil {
		return m.fault
	}
	m.pc = next & (FlashWords - 1)
	return nil
}

// shiftFlags computes SREG for ASR/LSR/ROR.
func shiftFlags(a, r byte, sreg byte) byte {
	sreg &^= flagS | flagV | flagN | flagZ | flagC
	if a&1 != 0 {
		sreg |= flagC
	}
	sreg = nzs(sreg, r)
	// V = N ^ C after the shift.
	n := sreg&flagN != 0
	c := sreg&flagC != 0
	if n != c {
		sreg |= flagV
	} else {
		sreg &^= flagV
	}
	// S = N ^ V must be refreshed after V changed.
	v := sreg&flagV != 0
	if n != v {
		sreg |= flagS
	} else {
		sreg &^= flagS
	}
	return sreg
}

// wbVal carries the pointer write-back value from indirectAddr to exec.
// (kept on the machine to avoid returning three values plus a bool).

// indirectAddr computes the effective address for an indirect load/store and
// the pointer write-back, if any.
func (m *Machine) indirectAddr(in avr.Inst) (addr uint16, ptr uint8, writeback bool) {
	ptr, _ = in.PointerReg()
	v := m.RegPair(ptr)
	switch in.Op {
	case avr.OpLdXInc, avr.OpLdYInc, avr.OpLdZInc,
		avr.OpStXInc, avr.OpStYInc, avr.OpStZInc:
		m.wbVal = v + 1
		return v, ptr, true
	case avr.OpLdXDec, avr.OpLdYDec, avr.OpLdZDec,
		avr.OpStXDec, avr.OpStYDec, avr.OpStZDec:
		v--
		m.wbVal = v
		return v, ptr, true
	case avr.OpLddY, avr.OpLddZ, avr.OpStdY, avr.OpStdZ:
		return v + uint16(in.Imm), ptr, false
	default: // plain LD/ST X
		return v, ptr, false
	}
}

// skip advances past the next instruction (CPSE/SBRC/SBRS/SBIC/SBIS taken).
func (m *Machine) skip(next uint32) uint32 {
	in, err := m.fetch(next)
	if err != nil {
		// Undecodable skipped word: treat as one word, as hardware would.
		m.cycle++
		return next + 1
	}
	m.cycle += uint64(in.Op.Words())
	return next + uint32(in.Op.Words())
}

// loadByte reads data memory with device dispatch and guard checking.
func (m *Machine) loadByte(addr uint16) (byte, error) {
	addr %= DataSize
	if addr < SRAMBase {
		return m.readIO(addr), nil
	}
	if m.guardOn && (addr < m.guardLo || addr >= m.guardHi) {
		return 0, m.faultf(FaultMemGuard, addr, "native load outside task region")
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, addr, false)
	}
	return m.data[addr], nil
}

// storeByte writes data memory with device dispatch and guard checking.
func (m *Machine) storeByte(addr uint16, v byte) error {
	addr %= DataSize
	if addr < SRAMBase {
		m.writeIO(addr, v)
		return nil
	}
	if m.guardOn && (addr < m.guardLo || addr >= m.guardHi) {
		return m.faultf(FaultMemGuard, addr, "native store outside task region")
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, addr, true)
	}
	m.data[addr] = v
	return nil
}

// pushByte writes through SP and post-decrements it, enforcing the guard.
func (m *Machine) pushByte(b byte) {
	sp := m.SP()
	if m.guardOn && (sp < m.guardLo || sp >= m.guardHi) {
		m.faultf(FaultStackOverflow, sp, "push outside task region")
		return
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, sp, true)
	}
	m.data[sp%DataSize] = b
	m.SetSP(sp - 1)
}

// popByte pre-increments SP and reads through it.
func (m *Machine) popByte() byte {
	sp := m.SP() + 1
	m.SetSP(sp)
	if m.guardOn && (sp < m.guardLo || sp >= m.guardHi) {
		m.faultf(FaultStackOverflow, sp, "pop outside task region")
		return 0
	}
	if m.memWatch != nil {
		m.memWatch(m.pc, sp, false)
	}
	return m.data[sp%DataSize]
}

// pushWord pushes low byte first (so memory holds little-endian order).
func (m *Machine) pushWord(w uint16) {
	m.pushByte(byte(w))
	m.pushByte(byte(w >> 8))
}

// popWord is the inverse of pushWord.
func (m *Machine) popWord() uint16 {
	hi := m.popByte()
	lo := m.popByte()
	return uint16(hi)<<8 | uint16(lo)
}

// PushWord exposes return-address pushing for the kernel (context save and
// trampoline-emulated CALLs).
func (m *Machine) PushWord(w uint16) { m.pushWord(w) }

// PopWord exposes return-address popping for the kernel.
func (m *Machine) PopWord() uint16 { return m.popWord() }

// flashByte reads a byte from program memory (LPM semantics: the address is
// a byte address; bit 0 selects low/high byte of the word).
func (m *Machine) flashByte(z uint32) byte {
	w := m.flash[(z>>1)&(FlashWords-1)]
	if z&1 != 0 {
		return byte(w >> 8)
	}
	return byte(w)
}

// FlashByte is the exported flashByte for kernel-mediated LPM translation;
// it takes a full-width byte address because naturalized programs may sit
// above the 64 KB byte boundary.
func (m *Machine) FlashByte(z uint32) byte { return m.flashByte(z) }

// ReadBus reads a data-space address with device side effects but without
// guard checks (kernel-mediated access on behalf of a task).
func (m *Machine) ReadBus(addr uint16) byte {
	addr %= DataSize
	if addr < SRAMBase {
		return m.readIO(addr)
	}
	return m.data[addr]
}

// WriteBus writes a data-space address with device side effects but without
// guard checks.
func (m *Machine) WriteBus(addr uint16, v byte) {
	addr %= DataSize
	if addr < SRAMBase {
		m.writeIO(addr, v)
		return
	}
	m.data[addr] = v
}

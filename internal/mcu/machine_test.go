package mcu

import (
	"errors"
	"testing"

	"repro/internal/avr"
	"repro/internal/avr/asm"
)

// load assembles src and loads it at flash address 0.
func load(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	if err := m.LoadFlash(0, p.Words); err != nil {
		t.Fatal(err)
	}
	return m
}

// runUntilBreak steps until the program hits BREAK (the test convention for
// "done") or the cycle limit.
func runUntilBreak(t *testing.T, m *Machine, limit uint64) {
	t.Helper()
	err := m.Run(limit)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultBreak {
		t.Fatalf("expected clean BREAK stop, got %v (pc=%#x)", err, m.PC())
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into r20, store to SRAM 0x0200.
	m := load(t, `
main:
    clr r20
    ldi r16, 10
loop:
    add r20, r16
    dec r16
    brne loop
    sts 0x0200, r20
    break
`)
	runUntilBreak(t, m, 1_000)
	if got := m.Peek(0x0200); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestCallRetAndStack(t *testing.T) {
	m := load(t, `
main:
    ldi r16, lo8(0x10FF)
    out SPL, r16
    ldi r16, hi8(0x10FF)
    out SPH, r16
    ldi r24, 5
    call double
    sts 0x0200, r24
    break
double:
    lsl r24
    ret
`)
	runUntilBreak(t, m, 1_000)
	if got := m.Peek(0x0200); got != 10 {
		t.Errorf("double(5) = %d, want 10", got)
	}
	if sp := m.SP(); sp != 0x10FF {
		t.Errorf("SP = %#x, want 0x10FF (balanced)", sp)
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	m := load(t, `
main:
    ldi r16, lo8(0x10FF)
    out SPL, r16
    ldi r16, hi8(0x10FF)
    out SPH, r16
    ldi r24, 0xAB
    ldi r25, 0xCD
    push r24
    push r25
    pop r0
    pop r1
    break
`)
	runUntilBreak(t, m, 1_000)
	if m.Reg(0) != 0xCD || m.Reg(1) != 0xAB {
		t.Errorf("pop order wrong: r0=%#x r1=%#x", m.Reg(0), m.Reg(1))
	}
}

func TestSregFlagVectors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want byte // expected SREG & (C|Z|N|V|S|H)
	}{
		{"add overflow", `
main:
    ldi r16, 0x80
    ldi r17, 0x80
    add r16, r17
    break
`, flagC | flagZ | flagV | flagS},
		{"add half carry", `
main:
    ldi r16, 0x0F
    ldi r17, 0x01
    add r16, r17
    break
`, flagH},
		{"sub borrow", `
main:
    ldi r16, 0x00
    ldi r17, 0x01
    sub r16, r17
    break
`, flagC | flagN | flagS | flagH},
		{"cp equal", `
main:
    ldi r16, 42
    ldi r17, 42
    cp r16, r17
    break
`, flagZ},
		{"inc to 0x80", `
main:
    ldi r16, 0x7F
    inc r16
    break
`, flagN | flagV},
		{"dec from 0x80", `
main:
    ldi r16, 0x80
    dec r16
    break
`, flagV | flagS},
		{"lsr to zero", `
main:
    ldi r16, 0x01
    lsr r16
    break
`, flagC | flagZ | flagV | flagS},
	}
	const mask = flagC | flagZ | flagN | flagV | flagS | flagH
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := load(t, tt.src)
			runUntilBreak(t, m, 100)
			if got := m.SREG() & mask; got != tt.want {
				t.Errorf("SREG = %08b, want %08b", got, tt.want)
			}
		})
	}
}

func TestCpcSbcZPropagation(t *testing.T) {
	// 16-bit compare of equal values must leave Z set through CPC.
	m := load(t, `
main:
    ldi r24, 0x34
    ldi r25, 0x12
    ldi r26, 0x34
    ldi r27, 0x12
    cp  r24, r26
    cpc r25, r27
    break
`)
	runUntilBreak(t, m, 100)
	if m.SREG()&flagZ == 0 {
		t.Error("16-bit equal compare should leave Z set")
	}
}

func TestAdiwSbiwPair(t *testing.T) {
	m := load(t, `
main:
    ldi r26, 0xFF
    ldi r27, 0x00
    adiw r26, 2
    break
`)
	runUntilBreak(t, m, 100)
	if got := m.RegPair(26); got != 0x0101 {
		t.Errorf("X = %#x, want 0x0101", got)
	}
}

func TestMul(t *testing.T) {
	m := load(t, `
main:
    ldi r16, 200
    ldi r17, 123
    mul r16, r17
    break
`)
	runUntilBreak(t, m, 100)
	got := uint16(m.Reg(0)) | uint16(m.Reg(1))<<8
	if got != 200*123 {
		t.Errorf("mul = %d, want %d", got, 200*123)
	}
}

func TestLpmTable(t *testing.T) {
	m := load(t, `
main:
    ldi r30, lo8(pmbyte(tab))
    ldi r31, hi8(pmbyte(tab))
    lpm r24, Z+
    lpm r25, Z+
    lpm r26, Z
    break
tab:
    .dw 0xBBAA, 0x00CC
`)
	runUntilBreak(t, m, 100)
	if m.Reg(24) != 0xAA || m.Reg(25) != 0xBB || m.Reg(26) != 0xCC {
		t.Errorf("lpm read %#x %#x %#x, want AA BB CC", m.Reg(24), m.Reg(25), m.Reg(26))
	}
}

func TestSkipInstructions(t *testing.T) {
	m := load(t, `
main:
    ldi r16, 0x02
    sbrc r16, 1      ; bit set -> no skip... bit 1 of 0x02 is 1 -> SBRC skips only if clear
    ldi r24, 1       ; executed
    sbrs r16, 1      ; bit set -> skip next
    ldi r24, 99      ; skipped
    ldi r25, 7
    cpse r25, r25    ; equal -> skip next (2-word inst)
    jmp bad
    break
bad:
    ldi r24, 99
    break
`)
	runUntilBreak(t, m, 100)
	if m.Reg(24) != 1 {
		t.Errorf("r24 = %d, want 1 (skips mis-executed)", m.Reg(24))
	}
}

func TestCycleAccounting(t *testing.T) {
	// ldi(1) + nop(1) + rjmp(2) + break(1): total 5 cycles at break.
	m := load(t, `
main:
    ldi r16, 1
    nop
    rjmp next
next:
    break
`)
	runUntilBreak(t, m, 100)
	if got := m.Cycles(); got != 5 {
		t.Errorf("cycles = %d, want 5", got)
	}
}

func TestBranchTakenCostsExtraCycle(t *testing.T) {
	mTaken := load(t, `
main:
    ldi r16, 0
    tst r16
    breq t
t:  break
`)
	runUntilBreak(t, mTaken, 100)
	mNot := load(t, `
main:
    ldi r16, 1
    tst r16
    breq t
t:  break
`)
	runUntilBreak(t, mNot, 100)
	if mTaken.Cycles() != mNot.Cycles()+1 {
		t.Errorf("taken=%d not-taken=%d, want +1", mTaken.Cycles(), mNot.Cycles())
	}
}

func TestTimer0PollingOverflow(t *testing.T) {
	// Start timer0 at clk/8; poll TOV0; count overflows in r20.
	m := load(t, `
main:
    ldi r16, 2        ; clk/8
    out TCCR0, r16
    clr r20
wait:
    in r17, TIFR
    sbrs r17, 0
    rjmp wait
    ldi r17, 1
    out TIFR, r17     ; clear TOV0
    inc r20
    cpi r20, 3
    brne wait
    break
`)
	runUntilBreak(t, m, 100_000)
	if m.Reg(20) != 3 {
		t.Errorf("overflows = %d, want 3", m.Reg(20))
	}
	// Three overflows at 256*8 cycles each.
	if m.Cycles() < 3*256*8 || m.Cycles() > 3*256*8+2048 {
		t.Errorf("cycles = %d, want ~%d", m.Cycles(), 3*256*8)
	}
}

func TestTimer0InterruptWakesSleep(t *testing.T) {
	m := load(t, `
    jmp main
.org 2
    jmp t0_isr        ; timer0 overflow vector
main:
    ldi r16, lo8(RAMEND)
    out SPL, r16
    ldi r16, hi8(RAMEND)
    out SPH, r16
    ldi r16, 1
    out TIMSK, r16    ; enable TOV0 interrupt
    ldi r16, 2        ; clk/8
    out TCCR0, r16
    sei
    clr r20
idle:
    sleep
    cpi r20, 2
    brne idle
    break
t0_isr:
    inc r20
    ldi r17, 1
    out TIFR, r17
    reti
`)
	runUntilBreak(t, m, 100_000)
	if m.Reg(20) != 2 {
		t.Errorf("isr count = %d, want 2", m.Reg(20))
	}
	if m.IdleCycles() == 0 {
		t.Error("sleep should accumulate idle cycles")
	}
	if m.IdleCycles() >= m.Cycles() {
		t.Error("idle cycles must be less than total cycles")
	}
}

func TestADCConversion(t *testing.T) {
	m := load(t, `
main:
    ldi r16, 3
    out ADMUX, r16
    ldi r16, 0xC0     ; ADEN|ADSC
    out ADCSRA, r16
wait:
    in r17, ADCSRA
    sbrc r17, 6       ; ADSC still set -> keep waiting
    rjmp wait
    in r24, ADCL
    in r25, ADCH
    break
`)
	m.SetADCSource(func(ch uint8) uint16 {
		if ch != 3 {
			t.Errorf("channel = %d, want 3", ch)
		}
		return 0x2A5
	})
	runUntilBreak(t, m, 100_000)
	got := uint16(m.Reg(24)) | uint16(m.Reg(25))<<8
	if got != 0x2A5 {
		t.Errorf("adc = %#x, want 0x2A5", got)
	}
	if m.Cycles() < ADCCycles {
		t.Errorf("conversion finished too fast: %d cycles", m.Cycles())
	}
}

func TestUARTTransmit(t *testing.T) {
	m := load(t, `
main:
    ldi r24, 'h'
    rcall putc
    ldi r24, 'i'
    rcall putc
    break
putc:
    in r17, UCSR0A
    sbrs r17, 5       ; UDRE
    rjmp putc
    out UDR0, r24
    ret
`)
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
	// Flush: the last byte completes after the program breaks.
	m.fault = nil
	m.AddCycles(UARTByteCycles)
	m.FlushDevices()
	if got := string(m.UARTOutput()); got != "hi" {
		t.Errorf("uart = %q, want %q", got, "hi")
	}
}

func TestRadioTransmitTiming(t *testing.T) {
	m := load(t, `
main:
    ldi r24, 0x55
    rcall txb
    ldi r24, 0xAA
    rcall txb
    break
txb:
    in r17, RSR
    sbrs r17, 0
    rjmp txb
    out RDR, r24
    ret
`)
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
	m.fault = nil
	m.AddCycles(RadioByteCycles)
	m.FlushDevices()
	frames := m.RadioOutput()
	if len(frames) != 2 || frames[0].Byte != 0x55 || frames[1].Byte != 0xAA {
		t.Fatalf("radio frames = %+v", frames)
	}
	if frames[1].Cycle-frames[0].Cycle < RadioByteCycles {
		t.Errorf("byte spacing %d < %d", frames[1].Cycle-frames[0].Cycle, RadioByteCycles)
	}
}

func TestRadioReceive(t *testing.T) {
	m := load(t, `
main:
    in r17, RSR
    sbrs r17, 1       ; RX available?
    rjmp main
    in r24, RDR
    break
`)
	m.InjectRadio([]byte{0x7E})
	runUntilBreak(t, m, 10_000)
	if m.Reg(24) != 0x7E {
		t.Errorf("rx byte = %#x, want 0x7E", m.Reg(24))
	}
}

func TestMemoryGuardFaults(t *testing.T) {
	m := load(t, `
main:
    ldi r26, 0x00
    ldi r27, 0x02     ; X = 0x0200, inside guard
    ldi r16, 1
    st X, r16
    ldi r27, 0x08     ; X = 0x0800, outside guard
    st X, r16
    break
`)
	m.SetGuard(0x0180, 0x0400)
	err := m.Run(1_000)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultMemGuard {
		t.Fatalf("err = %v, want memory guard fault", err)
	}
	if f.Addr != 0x0800 {
		t.Errorf("fault addr = %#x, want 0x0800", f.Addr)
	}
	if m.Peek(0x0200) != 1 {
		t.Error("in-guard store should have succeeded")
	}
}

func TestStackGuardFaultsOnPush(t *testing.T) {
	m := load(t, `
main:
    ldi r16, lo8(0x0182)
    out SPL, r16
    ldi r16, hi8(0x0182)
    out SPH, r16
    push r0
    push r0
    push r0
    push r0
    break
`)
	m.SetGuard(0x0180, 0x0400)
	err := m.Run(1_000)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStackOverflow {
		t.Fatalf("err = %v, want stack overflow fault", err)
	}
}

func TestTrapHandlerDispatch(t *testing.T) {
	m := load(t, `
main:
    ktrap 42
    ktrap 1
`)
	var got uint16
	m.SetTrapHandler(func(mm *Machine, id uint16) error {
		if id == 1 {
			mm.Halt("done")
			return nil
		}
		got = id
		mm.SetPC(mm.PC() + 2) // skip the 2-word KTRAP
		return nil
	})
	err := m.Run(100)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultHalt {
		t.Fatalf("err = %v, want halt", err)
	}
	if got != 42 {
		t.Errorf("trap id = %d, want 42", got)
	}
}

func TestHaltStopsMachine(t *testing.T) {
	m := load(t, `
main:
    rjmp main
`)
	go func() {}() // no concurrency needed; halt before running far
	m.Halt("test stop")
	err := m.Step()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultHalt {
		t.Fatalf("err = %v, want halt", err)
	}
}

func TestSleepWithNoWakeSourceFaults(t *testing.T) {
	m := load(t, `
main:
    sleep
`)
	err := m.Run(1_000)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultDeadSleep {
		t.Fatalf("err = %v, want dead sleep fault", err)
	}
}

func TestIndirectAddressingWritesBack(t *testing.T) {
	m := load(t, `
main:
    ldi r26, 0x00
    ldi r27, 0x02
    ldi r16, 0x11
    ldi r17, 0x22
    st X+, r16
    st X+, r17
    ldi r26, 0x00
    ldi r27, 0x02
    ld r20, X+
    ld r21, X
    ldi r28, 0x10
    ldi r29, 0x02
    ldd r22, Y+2
    break
`)
	m.Poke(0x0212, 0x77)
	runUntilBreak(t, m, 1_000)
	if m.Reg(20) != 0x11 || m.Reg(21) != 0x22 {
		t.Errorf("ld X+ = %#x,%#x want 0x11,0x22", m.Reg(20), m.Reg(21))
	}
	if m.Reg(22) != 0x77 {
		t.Errorf("ldd Y+2 = %#x, want 0x77", m.Reg(22))
	}
}

func TestIjmpIcall(t *testing.T) {
	m := load(t, `
main:
    ldi r16, lo8(RAMEND)
    out SPL, r16
    ldi r16, hi8(RAMEND)
    out SPH, r16
    ldi r30, lo8(fn)
    ldi r31, hi8(fn)
    icall
    ldi r30, lo8(done)
    ldi r31, hi8(done)
    ijmp
    break             ; unreachable
fn:
    ldi r24, 9
    ret
done:
    inc r24
    break
`)
	runUntilBreak(t, m, 1_000)
	if m.Reg(24) != 10 {
		t.Errorf("r24 = %d, want 10", m.Reg(24))
	}
}

func TestTimer3Count(t *testing.T) {
	m := load(t, `
main:
    lds r24, TCNT3L
    lds r25, TCNT3H
    break
`)
	runUntilBreak(t, m, 100)
	got := uint16(m.Reg(24)) | uint16(m.Reg(25))<<8
	want := avr.Inst{Op: avr.OpLds}.Op // silence unused import if edited later
	_ = want
	if got > 4 { // a few instructions at clk/8
		t.Errorf("timer3 = %d, want small", got)
	}
}

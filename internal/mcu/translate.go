package mcu

import (
	"repro/internal/avr"
	"repro/internal/ioregs"
)

// Basic-block superinstruction translation. The event-horizon fast loop pays
// a fixed per-instruction toll even with predecoded micro-ops: a cache fetch,
// a dispatch branch, an SREG read-modify-write through memory, and the
// horizon/limit ladder. Hot straight-line runs can amortize all of it: once a
// control-transfer landing point (a leader) has been reached often enough,
// the block from that leader to its next terminator is translated into a
// fused superinstruction — a flat []fop executed straight-line with SREG held
// in a local, cycles charged from a precomputed running sum, PC and the
// instruction counter flushed once per block, dead flag computations folded
// away, and a single worst-case cycle/horizon check per block instead of one
// per instruction.
//
// Safety rules, in order of importance:
//
//   - Only the fast loop dispatches blocks. The checked Step path (stepwise,
//     trace, profile, injector, interrupt delivery) never sees a fused block,
//     so observers keep their per-instruction byte-identical streams.
//   - A block never contains a checked op (KTRAP, SLEEP), a BREAK, or an op
//     whose I/O side effects can reschedule device events (OUT/SBI/CBI/STS to
//     a device register, and every indirect store, whose target is dynamic).
//     Control transfers and device-writing ops may only appear as the block's
//     terminator, executed through the ordinary dispatch table with all
//     machine state flushed — so mid-block, dev.nextEvent is a constant.
//   - A block is dispatched only when its worst-case cycle count fits
//     strictly inside the current horizon and cycle budget. Every boundary
//     the outer run loop could observe (sampler, checkpoint, horizon sync)
//     therefore lands on exactly the same cycle as per-instruction execution,
//     because the per-op fallback finishes every horizon.
//   - Faultable ops (SRAM loads/stores, push/pop) flush cycle, PC, and SREG
//     before calling the shared guarded helpers, so a mid-block fault leaves
//     precisely the architectural state the per-op path would have left.
//   - The block cache is derived state, like the micro-op cache: flash writes
//     kill every overlapping block (LoadFlash), SetTrapHandler and
//     AdoptImage/RestoreState flush it, and snapshots never carry it.

// DefaultTranslationThreshold is the number of control-transfer landings at
// a PC before the block starting there is translated. Low enough that hot
// loops translate within their first few hundred iterations, high enough
// that straight-line startup code never pays for translation.
const DefaultTranslationThreshold = 32

const (
	// maxBlockOps caps the fused ops per block; with the worst 3-cycle op
	// that bounds a block's wcet far below the shortest device span (1280
	// cycles for a UART byte), keeping the one-check-per-block precheck
	// meaningful.
	maxBlockOps = 64
	// pageWords is the flash-page granule; blocks never span a page
	// boundary, which keeps invalidation reasoning local (mirrors the
	// ATmega128's 128-word SPM page, rounded up to a power of two that
	// also bounds block discovery walks).
	pageWords = 256
	// xlDead marks a leader whose block is untranslatable (starts at a
	// checked/undecodable op, or contains no fusible body).
	xlDead = int32(-1) << 30
)

// Fused-op codes. Each is one straight-line micro-op specialized at
// translation time: I/O operands are pre-classified (plain data byte,
// SREG-local, cycle-sensitive device register), so runBlock's switch does no
// address dispatch of its own.
const (
	fNop uint8 = iota
	fAdd
	fAdc
	fSub
	fSbc
	fCp
	fCpc
	fSubi
	fCpi
	fSbci
	fAnd
	fAndi
	fOr
	fOri
	fEor
	fCom
	fNeg
	fMov
	fMovw
	fLdi
	fSwap
	fInc
	fDec
	fAsr
	fLsr
	fRor
	fMul
	fAdiw
	fSbiw
	fBset
	fBclr
	fInData  // IN from a plain register/IO byte
	fInSreg  // IN from SREG: reads the block-local flags
	fInDev   // IN from a cycle-sensitive device register (flush cycle first)
	fOutData // OUT to a plain register/IO byte
	fOutSreg // OUT to SREG: writes the block-local flags
	fOutDev  // OUT to a device register: flush, write, re-check the horizon
	fSbiData // SBI/CBI on a plain IO byte (direct RMW)
	fCbiData
	fLdsData // LDS from a plain register/IO byte
	fLdsSreg
	fLdsDev
	fLdsRAM // LDS from SRAM (guard + watchpoints via loadByte)
	fStsData
	fStsSreg
	fStsRAM
	fLdInd // LD through X/Y/Z (+variants): dynamic address via loadByte
	fLdIndInc
	fLdIndDec
	fLdd
	fPush
	fPop
	fLpm
	fLpmZ
	fLpmZInc
)

// fop is one fused micro-op. Like uop it is pointer-free, so translated
// blocks add nothing to garbage-collector scans.
type fop struct {
	code uint8
	d, s uint8  // destination / source or pointer register
	k    byte   // immediate or bit mask
	fold bool   // flag result proven dead: skip the SREG computation
	a    uint16 // absolute data address / IO address / LDD displacement
	cum  uint16 // running cycle total through this op (flush value)
	pc   uint32 // fetch PC (flushed before faultable helpers)
}

// Terminator kinds. Direct jumps, conditional branches, and skips fuse into
// the block itself — their targets (and, for skips, the length of the
// skipped instruction) are derived only from words inside the block's
// [leader, end) invalidation span, so a stale fused target or skip distance
// cannot survive a flash patch. A skip whose successor is a direct jump
// fuses the pair (the `sbrs/rjmp` device-poll idiom becomes one conditional
// jump). Everything else (calls, returns, device writes, IJMP) executes
// through the dispatch table with flushed state.
const (
	tkNone     uint8 = iota // no terminator: fall through to fallPC
	tkDispatch              // run the terminator uop via the dispatch table
	tkJmp                   // RJMP/JMP: fused unconditional jump
	tkBr                    // BRBS/BRBC: fused conditional branch on termK
	tkSkip                  // CPSE/SBRC/SBRS/SBIC/SBIS: fused skip
	tkSkipJmp               // fused skip over RJMP/JMP: conditional jump pair
	tkTrap                  // KTRAP: kernel trap, then re-run the outer ladder
	tkSkipTrap              // fused skip over a KTRAP: the device-poll idiom
)

// Skip-condition operand sources for tkSkip/tkSkipJmp.
const (
	scReg   uint8 = iota // data[termD] & termK (SBRS/SBRC)
	scIO                 // data[termA] & termK, plain IO byte (SBIS/SBIC)
	scIODev              // readIO(termA) & termK, device reg: flush cycle
	scRegEq              // data[termD] == data[termS] (CPSE)
)

// block is one translated basic block.
type block struct {
	leader   uint32 // first word of the block
	end      uint32 // first word past the block (terminator + skipped inst)
	termPC   uint32 // terminator fetch PC, valid when termKind != tkNone
	fallPC   uint32 // resume PC (fall-through / branch or skip not taken)
	skipTo   uint32 // tkSkip/tkSkipJmp: resume PC when the skip is taken
	termTo   uint32 // tkJmp/tkBr: branch target; tkSkipJmp: the jump's target
	termKind uint8
	termCond uint8 // tkSkip/tkSkipJmp: scReg/scIO/scIODev/scRegEq
	termNeg  bool  // tkSkip/tkSkipJmp: skip when the tested bit is CLEAR
	termSet  bool  // tkBr: branch when the masked bit is set (BRBS)
	termK    byte  // tkBr: SREG mask; tkSkip*: operand bit mask
	termD    uint8 // tkSkip* register operand(s)
	termS    uint8
	termA    uint16 // tkSkip IO operand address; tkTrap/tkSkipTrap: trap index
	termCyc  uint8  // fused terminator base cycle cost
	termSkpW uint8  // tkSkip*: words skipped (cycle surcharge)
	termJCyc uint8  // tkSkipJmp: the fused jump's cycle cost; tkSkipTrap: the trap's
	// bodyCycles is the cycle cost of the fused body; wcet adds the
	// terminator's worst case (branch taken, longest skip), bounding how
	// far a whole-block dispatch can advance the clock.
	bodyCycles uint16
	wcet       uint16
	ops        []fop
}

// translator is the per-machine block cache. idx maps each flash word to its
// translation state: 0 = never landed on, negative = landing countdown
// toward the threshold, xlDead = untranslatable, positive = 1-based index
// into blocks. The array is private to its machine (never shared by
// AdoptImage), so block dispatch needs no ownership checks.
type translator struct {
	idx       *[FlashWords]int32
	blocks    []*block
	free      []int32 // reusable nil slots in blocks (indices stay stable)
	threshold int32

	built       uint64
	invalidated uint64
	dispatches  uint64
	fusedInsts  uint64
}

func newTranslator(threshold int32) *translator {
	return &translator{idx: new([FlashWords]int32), threshold: threshold}
}

// reset drops every block and landing counter (image swap, trap-handler
// change, snapshot restore). Cumulative stats survive; live blocks count as
// invalidated.
func (x *translator) reset() {
	for _, b := range x.blocks {
		if b != nil {
			x.invalidated++
		}
	}
	x.blocks = x.blocks[:0]
	x.free = x.free[:0]
	*x.idx = [FlashWords]int32{}
}

// invalidate kills every block overlapping the flash words [base, end).
// A block's [leader, end) range covers both words of a two-word instruction,
// so patching only the second word (the base-1 case LoadFlash handles for
// uops) overlaps and kills the block that fused it. Landing counters inside
// the rewritten range (and the base-1 word) reset too: rewritten code may be
// translatable where the old code was not.
func (x *translator) invalidate(base, end uint32) {
	for i, b := range x.blocks {
		if b != nil && b.leader < end && b.end > base {
			x.idx[b.leader] = 0
			x.blocks[i] = nil
			x.free = append(x.free, int32(i))
			x.invalidated++
		}
	}
	lo := base
	if lo > 0 {
		lo--
	}
	for p := lo; p < end && p < FlashWords; p++ {
		if x.idx[p] < 0 {
			x.idx[p] = 0
		}
	}
}

// SetTranslation configures basic-block translation: a negative threshold
// disables it, zero selects DefaultTranslationThreshold, and a positive
// value translates a block once its leader has been landed on that many
// times (1 = translate on first landing). Reconfiguring drops any existing
// blocks. Translation is enabled by default on a new machine.
func (m *Machine) SetTranslation(threshold int) {
	if threshold < 0 {
		m.xl = nil
		return
	}
	if threshold == 0 {
		threshold = DefaultTranslationThreshold
	}
	m.xl = newTranslator(int32(threshold))
}

// TranslationStats reports block-cache activity since the machine was
// created (counters survive cache flushes).
type TranslationStats struct {
	// Blocks is the live translated-block count.
	Blocks int
	// Built counts blocks ever translated; Invalidations counts blocks
	// killed by flash writes, image swaps, or snapshot restores.
	Built         uint64
	Invalidations uint64
	// FusedDispatches counts whole-block executions; FusedInsts counts the
	// instructions retired inside them (the numerator of the fused-dispatch
	// fraction against Instructions()).
	FusedDispatches uint64
	FusedInsts      uint64
}

// TranslationStats returns the block-cache counters (zero value when
// translation is disabled).
func (m *Machine) TranslationStats() TranslationStats {
	if m.xl == nil {
		return TranslationStats{}
	}
	live := 0
	for _, b := range m.xl.blocks {
		if b != nil {
			live++
		}
	}
	return TranslationStats{
		Blocks:          live,
		Built:           m.xl.built,
		Invalidations:   m.xl.invalidated,
		FusedDispatches: m.xl.dispatches,
		FusedInsts:      m.xl.fusedInsts,
	}
}

// devReadReg reports whether reading data-space address a consults the cycle
// clock or mutates device state (the readIO special cases), so a fused read
// must flush the clock and go through readIO.
func devReadReg(a uint16) bool {
	switch a {
	case IOBase + ioregs.TCNT0, IOBase + ioregs.ADCSRA, IOBase + ioregs.UCSR0A,
		IOBase + ioregs.RSR, IOBase + ioregs.RDR, ioregs.TCNT3L, ioregs.TCNT3H:
		return true
	}
	return false
}

// devWriteReg reports whether writing data-space address a has device side
// effects (the writeIO special cases, which can reschedule dev.nextEvent) —
// such writes terminate a block.
func devWriteReg(a uint16) bool {
	switch a {
	case IOBase + ioregs.TCCR0, IOBase + ioregs.TCNT0, IOBase + ioregs.TIFR,
		IOBase + ioregs.ADCSRA, IOBase + ioregs.UDR0, IOBase + ioregs.RDR:
		return true
	}
	return false
}

// isHazardTerm reports whether u must end its block as the terminator: its
// store side effects may hit a device register (rescheduling events), which
// is only safe with all machine state flushed and the block precheck re-run.
// Indirect stores are conservatively hazardous — their target is dynamic.
// OUT to a device register is NOT a terminator: it fuses as fOutDev, which
// flushes, writes, and re-checks the (possibly rescheduled) horizon inline.
func isHazardTerm(u *uop) bool {
	switch u.in.Op {
	case avr.OpSbi, avr.OpCbi:
		return devWriteReg(u.a) || devReadReg(u.a)
	case avr.OpSts:
		return u.a < SRAMBase && devWriteReg(u.a)
	case avr.OpStX, avr.OpStXInc, avr.OpStXDec, avr.OpStYInc, avr.OpStYDec,
		avr.OpStdY, avr.OpStZInc, avr.OpStZDec, avr.OpStdZ:
		return true
	}
	return false
}

// termWorstCycles is the terminator's worst-case cycle cost: base plus the
// branch-taken extra or the longest (two-word) skip.
func termWorstCycles(u *uop) uint16 {
	c := uint16(u.cycles)
	switch u.in.Op {
	case avr.OpBrbs, avr.OpBrbc:
		return c + 1
	case avr.OpCpse, avr.OpSbrc, avr.OpSbrs, avr.OpSbic, avr.OpSbis:
		return c + 2
	}
	return c
}

// emitFop specializes one micro-op into its fused form. ok=false means the
// op cannot appear in a block body (the block ends before it).
func emitFop(u *uop) (f fop, ok bool) {
	f = fop{d: u.d, s: u.s, a: u.a, k: u.k}
	ok = true
	switch u.in.Op {
	case avr.OpNop, avr.OpWdr:
		f.code = fNop
	case avr.OpAdd:
		f.code = fAdd
	case avr.OpAdc:
		f.code = fAdc
	case avr.OpSub:
		f.code = fSub
	case avr.OpSbc:
		f.code = fSbc
	case avr.OpCp:
		f.code = fCp
	case avr.OpCpc:
		f.code = fCpc
	case avr.OpSubi:
		f.code = fSubi
	case avr.OpCpi:
		f.code = fCpi
	case avr.OpSbci:
		f.code = fSbci
	case avr.OpAnd:
		f.code = fAnd
	case avr.OpAndi:
		f.code = fAndi
	case avr.OpOr:
		f.code = fOr
	case avr.OpOri:
		f.code = fOri
	case avr.OpEor:
		f.code = fEor
	case avr.OpCom:
		f.code = fCom
	case avr.OpNeg:
		f.code = fNeg
	case avr.OpMov:
		f.code = fMov
	case avr.OpMovw:
		f.code = fMovw
	case avr.OpLdi:
		f.code = fLdi
	case avr.OpSwap:
		f.code = fSwap
	case avr.OpInc:
		f.code = fInc
	case avr.OpDec:
		f.code = fDec
	case avr.OpAsr:
		f.code = fAsr
	case avr.OpLsr:
		f.code = fLsr
	case avr.OpRor:
		f.code = fRor
	case avr.OpMul:
		f.code = fMul
	case avr.OpAdiw:
		f.code = fAdiw
	case avr.OpSbiw:
		f.code = fSbiw
	case avr.OpBset:
		f.code = fBset
	case avr.OpBclr:
		f.code = fBclr
	case avr.OpIn:
		switch {
		case u.a == addrSREG:
			f.code = fInSreg
		case devReadReg(u.a):
			f.code = fInDev
		default:
			f.code = fInData
		}
	case avr.OpOut:
		switch {
		case u.a == addrSREG:
			f.code = fOutSreg
		case devWriteReg(u.a):
			f.code = fOutDev
		default:
			f.code = fOutData
		}
	case avr.OpSbi:
		f.code = fSbiData
	case avr.OpCbi:
		f.code = fCbiData
	case avr.OpLds:
		switch {
		case u.a == addrSREG:
			f.code = fLdsSreg
		case u.a >= SRAMBase:
			f.code = fLdsRAM
		case devReadReg(u.a):
			f.code = fLdsDev
		default:
			f.code = fLdsData
		}
	case avr.OpSts:
		switch {
		case u.a == addrSREG:
			f.code = fStsSreg
		case u.a >= SRAMBase:
			f.code = fStsRAM
		default:
			f.code = fStsData
		}
	case avr.OpLdX, avr.OpLddY, avr.OpLddZ:
		if u.in.Op == avr.OpLdX {
			f.a = 0 // plain LD has no displacement; share the fLdd shape
		}
		f.code = fLdd
	case avr.OpLdXInc, avr.OpLdYInc, avr.OpLdZInc:
		f.code = fLdIndInc
	case avr.OpLdXDec, avr.OpLdYDec, avr.OpLdZDec:
		f.code = fLdIndDec
	case avr.OpPush:
		f.code = fPush
	case avr.OpPop:
		f.code = fPop
	case avr.OpLpm:
		f.code = fLpm
	case avr.OpLpmZ:
		f.code = fLpmZ
	case avr.OpLpmZInc:
		f.code = fLpmZInc
	default:
		ok = false
	}
	return f, ok
}

// Flag-mask groups for the liveness pass.
const (
	arithFlags = flagC | flagZ | flagN | flagV | flagS | flagH
	logicFlagM = flagZ | flagN | flagV | flagS
	shiftFlagM = logicFlagM | flagC
	allFlags   = byte(0xFF)
)

// fopFlags returns the SREG bits a fused op reads and writes, for dead-flag
// folding. Ops that flush SREG to memory (faultable helpers) are handled as
// barriers by foldFlags itself.
func fopFlags(code uint8, k byte) (r, w byte) {
	switch code {
	case fAdd, fSub, fCp, fSubi, fCpi, fNeg:
		w = arithFlags
	case fAdc:
		r, w = flagC, arithFlags
	case fSbc, fSbci, fCpc:
		r, w = flagC|flagZ, arithFlags
	case fAnd, fAndi, fOr, fOri, fEor, fInc, fDec:
		w = logicFlagM
	case fCom, fAsr, fLsr, fAdiw, fSbiw:
		w = shiftFlagM
	case fRor:
		r, w = flagC, shiftFlagM
	case fMul:
		w = flagC | flagZ
	case fBset, fBclr:
		w = k
	case fInSreg, fLdsSreg:
		r = allFlags
	case fOutSreg, fStsSreg:
		w = allFlags
	}
	return r, w
}

// fopFaultable reports whether the fused op calls a guarded helper that can
// fault (and therefore flushes and reloads SREG around the call), or can
// leave the block early (fOutDev's horizon re-check) — every point where the
// architectural SREG must be exact.
func fopFaultable(code uint8) bool {
	switch code {
	case fLdsRAM, fStsRAM, fLdInd, fLdIndInc, fLdIndDec, fLdd, fPush, fPop,
		fOutDev:
		return true
	}
	return false
}

// fopFoldable reports whether skipping the op's flag computation is the only
// effect of folding (pure ALU flag writers; compares become full no-ops).
func fopFoldable(code uint8) bool {
	switch code {
	case fAdd, fAdc, fSub, fSbc, fCp, fCpc, fSubi, fCpi, fSbci,
		fAnd, fAndi, fOr, fOri, fEor, fCom, fNeg, fInc, fDec,
		fAsr, fLsr, fRor, fMul, fAdiw, fSbiw, fBset, fBclr:
		return true
	}
	return false
}

// foldFlags runs a backward dead-flag pass over the block body: an op whose
// entire flag result is overwritten before any read (within the block, with
// all flags live at block exit and at every fault point) skips its SREG
// computation at run time.
func foldFlags(b *block) {
	var dead byte
	for i := len(b.ops) - 1; i >= 0; i-- {
		f := &b.ops[i]
		r, w := fopFlags(f.code, f.k)
		if w != 0 && w&^dead == 0 && fopFoldable(f.code) {
			f.fold = true
		}
		dead = (dead | w) &^ r
		if fopFaultable(f.code) {
			// A fault mid-block must leave SREG architecturally exact, so
			// every flag is live at this point.
			dead = 0
		}
	}
}

// translateBlock builds the basic block whose leader is at pc, or nil when
// no fusible body exists there. Discovery walks the predecoded micro-ops
// (building them as needed), stops before checked/BREAK/undecodable words
// and at page boundaries, and absorbs the first control transfer or
// device-writing store as the terminator.
func (m *Machine) translateBlock(leader uint32) *block {
	b := &block{leader: leader}
	pageEnd := (leader/pageWords + 1) * pageWords
	pc := leader
	var cum uint16
	for {
		if pc >= pageEnd || len(b.ops) == maxBlockOps {
			b.fallPC = pc & (FlashWords - 1)
			b.end = pc
			break
		}
		u, err := m.fetchUop(pc)
		if err != nil || u.checked || u.in.Op == avr.OpBreak {
			if err == nil && u.in.Op == avr.OpKtrap {
				// A kernel trap terminates the block. The trap index and
				// base cycle cost are captured here so dispatch can call
				// the handler directly — exactly execKtrap with flushed
				// state — and re-run the outer ladder's checks afterwards.
				// The trap service's own cycle charges land after the
				// horizon precheck, as they do per-op, so wcet stays the
				// body cost alone.
				b.termPC = pc
				b.end = pc + uint32(u.in.Op.Words())
				b.termKind = tkTrap
				b.termCyc = u.cycles
				b.termA = uint16(u.in.Imm)
				b.wcet = cum
				break
			}
			// The per-op path must reach this word itself (fault, sleep,
			// undecodable): end the block before it.
			b.fallPC = pc
			b.end = pc
			break
		}
		words := uint32(u.in.Op.Words())
		if u.ctl || isHazardTerm(u) {
			b.termPC = pc
			b.end = pc + words
			b.wcet = cum + termWorstCycles(u)
			switch u.in.Op {
			case avr.OpRjmp, avr.OpJmp:
				b.termKind = tkJmp
				b.termTo = u.target
				b.termCyc = u.cycles
			case avr.OpBrbs, avr.OpBrbc:
				b.termKind = tkBr
				b.termTo = u.target
				b.fallPC = u.next
				b.termK = u.k
				b.termSet = u.in.Op == avr.OpBrbs
				b.termCyc = u.cycles
			case avr.OpCpse, avr.OpSbrc, avr.OpSbrs, avr.OpSbic, avr.OpSbis:
				// The skip distance is the length of the next instruction, so
				// fusing it bakes in a decode of that word: extend end over it
				// so a patch there kills the block (exactly mirroring the
				// dynamic m.skip). An undecodable successor stays dynamic —
				// the per-op skip handles it.
				nu, nerr := m.fetchUop(u.next)
				if nerr != nil {
					b.termKind = tkDispatch
					break
				}
				skipW := uint32(nu.in.Op.Words())
				b.termKind = tkSkip
				b.fallPC = u.next
				b.skipTo = (u.next + skipW) & (FlashWords - 1)
				b.end = pc + words + skipW
				b.termCyc = u.cycles
				b.termSkpW = uint8(skipW)
				switch u.in.Op {
				case avr.OpCpse:
					b.termCond = scRegEq
					b.termD, b.termS = u.d, u.s
				case avr.OpSbrc, avr.OpSbrs:
					b.termCond = scReg
					b.termD, b.termK = u.d, u.k
					b.termNeg = u.in.Op == avr.OpSbrc
				default:
					b.termCond = scIO
					if devReadReg(u.a) {
						b.termCond = scIODev
					}
					b.termA, b.termK = u.a, u.k
					b.termNeg = u.in.Op == avr.OpSbic
				}
				if nu.in.Op == avr.OpRjmp || nu.in.Op == avr.OpJmp {
					// Skip over a direct jump — the `sbrs; rjmp back`
					// device-poll idiom. Fuse the pair: the not-skipped path
					// executes the jump too, so the block's successors are
					// two fixed PCs and a spin loop becomes a self-loop.
					b.termKind = tkSkipJmp
					b.termTo = nu.target
					b.termJCyc = nu.cycles
				} else if nu.in.Op == avr.OpKtrap &&
					(b.termCond == scReg || b.termCond == scRegEq) {
					// Skip over a kernel trap — the same poll idiom after
					// the rewriter has virtualized the backward jump. Fuse
					// the pair: the not-skipped path services the trap
					// inline, exactly as tkTrap does, instead of bouncing
					// through a separate one-trap block. Register
					// conditions only: the IO conditions need termA for
					// their operand address, the trap for its index.
					b.termKind = tkSkipTrap
					b.termA = uint16(nu.in.Imm)
					b.termJCyc = nu.cycles
				}
				wc := uint16(b.termSkpW)
				if b.termKind == tkSkipJmp && uint16(b.termJCyc) > wc {
					wc = uint16(b.termJCyc)
				}
				b.wcet = cum + uint16(u.cycles) + wc
			default:
				b.termKind = tkDispatch
			}
			break
		}
		f, ok := emitFop(u)
		if !ok {
			b.fallPC = pc
			b.end = pc
			break
		}
		cum += uint16(u.cycles)
		f.cum = cum
		f.pc = pc
		b.ops = append(b.ops, f)
		pc += words
	}
	if len(b.ops) == 0 && b.termKind != tkTrap {
		// A lone non-trap terminator (or an immediate stop) fuses nothing.
		// A lone KTRAP is worth keeping: virtualized branches land on trap
		// after trap, and a pure-trap block lets runTranslated chain them
		// without bouncing through the outer run loop.
		return nil
	}
	b.bodyCycles = cum
	if b.termKind == tkNone {
		b.wcet = cum
	}
	foldFlags(b)
	return b
}

// ladderDue reports whether the outer run loop has per-iteration work to do
// right now — a fault, sleep, or pending interrupt to examine, a sampler or
// checkpoint hook due, or an observer mode the fast path must not run under.
// Block chaining across kernel traps re-checks exactly this set, because a
// trap service can leave any of it behind.
func (m *Machine) ladderDue() bool {
	return m.fault != nil || m.sleeping || m.pending != 0 ||
		m.stepwise || m.profInstr != nil || m.rec != nil || m.injectFn != nil ||
		(m.sampleFn != nil && m.cycle >= m.sampleNext) ||
		(m.ckptFn != nil && m.cycle >= m.ckptAt)
}

// nextPC is the architectural PC after the op at index i — where the per-op
// path would resume if the block stopped right after it.
func (b *block) nextPC(i int) uint32 {
	if i+1 < len(b.ops) {
		return b.ops[i+1].pc
	}
	if b.termKind != tkNone {
		return b.termPC
	}
	return b.fallPC
}

// runTranslated dispatches translated blocks for as long as the PC keeps
// landing on leaders whose worst-case cycle cost fits strictly inside the
// horizon and cycle budget. It also carries the landing counters: it is
// called from the fast loop at horizon entry and after every control
// transfer, which is exactly the leader definition. It is one flat chaining
// loop: SREG, the instruction count, and the dispatch stats live in locals
// across consecutive blocks, and are flushed only at kernel traps (whose
// services observe machine state), at dispatch-table terminators, and on
// exit. Fault paths flush before their guarded helpers exactly as the per-op
// path would. A trap terminator calls the handler directly with everything
// flushed — exactly execKtrap — then re-checks the outer run loop's ladder
// conditions (halt=true: the caller must hand control back to the outer
// ladder, not the fast loop). Returns on the first non-leader PC, cold
// leader, or tight horizon — the per-op fast loop finishes the horizon with
// unchanged per-instruction semantics.
func (m *Machine) runTranslated(limit uint64) (halt bool, err error) {
	x := m.xl
	sreg := m.data[addrSREG]
	var done, fused, iters uint64
	var b *block
	// The first cycle a block body must not reach: the device horizon,
	// tightened by the run's cycle budget. Fused ops cannot move
	// dev.nextEvent, so the bound stays valid across chained dispatches and
	// is refreshed only where it can move: kernel traps, dispatch-table
	// terminators, and fOutDev (which re-checks inline).
	stop := m.dev.nextEvent
	if limit != 0 && limit < stop {
		stop = limit
	}
loop:
	for {
		pc := m.pc & (FlashWords - 1)
		e := x.idx[pc]
		if e <= 0 {
			if e == xlDead {
				m.data[addrSREG] = sreg
				break
			}
			e--
			if -e < x.threshold {
				x.idx[pc] = e
				m.data[addrSREG] = sreg
				break
			}
			nb := m.translateBlock(pc)
			if nb == nil {
				x.idx[pc] = xlDead
				m.data[addrSREG] = sreg
				break
			}
			x.built++
			if n := len(x.free); n > 0 {
				slot := x.free[n-1]
				x.free = x.free[:n-1]
				x.blocks[slot] = nb
				e = slot + 1
			} else {
				x.blocks = append(x.blocks, nb)
				e = int32(len(x.blocks))
			}
			x.idx[pc] = e
		}
		b = x.blocks[e-1]
		if m.cycle+uint64(b.wcet) >= stop {
			m.data[addrSREG] = sreg
			break
		}
		iters++
		start := m.cycle
		ops := b.ops
		for i := range ops {
			f := &ops[i]
			switch f.code {
			case fNop:
			case fAdd:
				a, v := m.data[f.d], m.data[f.s]
				r := a + v
				m.data[f.d] = r
				if !f.fold {
					sreg = addFlags(a, v, r, sreg)
				}
			case fAdc:
				a, v := m.data[f.d], m.data[f.s]
				r := a + v
				if sreg&flagC != 0 {
					r++
				}
				m.data[f.d] = r
				if !f.fold {
					sreg = addFlags(a, v, r, sreg)
				}
			case fSub:
				a, v := m.data[f.d], m.data[f.s]
				r := a - v
				m.data[f.d] = r
				if !f.fold {
					sreg = subFlags(a, v, r, sreg, false)
				}
			case fSbc:
				a, v := m.data[f.d], m.data[f.s]
				r := a - v
				if sreg&flagC != 0 {
					r--
				}
				m.data[f.d] = r
				if !f.fold {
					sreg = subFlags(a, v, r, sreg, true)
				}
			case fCp:
				if !f.fold {
					a, v := m.data[f.d], m.data[f.s]
					sreg = subFlags(a, v, a-v, sreg, false)
				}
			case fCpc:
				if !f.fold {
					a, v := m.data[f.d], m.data[f.s]
					r := a - v
					if sreg&flagC != 0 {
						r--
					}
					sreg = subFlags(a, v, r, sreg, true)
				}
			case fSubi:
				a := m.data[f.d]
				r := a - f.k
				m.data[f.d] = r
				if !f.fold {
					sreg = subFlags(a, f.k, r, sreg, false)
				}
			case fCpi:
				if !f.fold {
					a := m.data[f.d]
					sreg = subFlags(a, f.k, a-f.k, sreg, false)
				}
			case fSbci:
				a := m.data[f.d]
				r := a - f.k
				if sreg&flagC != 0 {
					r--
				}
				m.data[f.d] = r
				if !f.fold {
					sreg = subFlags(a, f.k, r, sreg, true)
				}
			case fAnd:
				r := m.data[f.d] & m.data[f.s]
				m.data[f.d] = r
				if !f.fold {
					sreg = logicFlags(r, sreg)
				}
			case fAndi:
				r := m.data[f.d] & f.k
				m.data[f.d] = r
				if !f.fold {
					sreg = logicFlags(r, sreg)
				}
			case fOr:
				r := m.data[f.d] | m.data[f.s]
				m.data[f.d] = r
				if !f.fold {
					sreg = logicFlags(r, sreg)
				}
			case fOri:
				r := m.data[f.d] | f.k
				m.data[f.d] = r
				if !f.fold {
					sreg = logicFlags(r, sreg)
				}
			case fEor:
				r := m.data[f.d] ^ m.data[f.s]
				m.data[f.d] = r
				if !f.fold {
					sreg = logicFlags(r, sreg)
				}
			case fCom:
				r := ^m.data[f.d]
				m.data[f.d] = r
				if !f.fold {
					sreg = nzs(logicFlags(r, sreg)|flagC, r)
				}
			case fNeg:
				a := m.data[f.d]
				r := -a
				m.data[f.d] = r
				if !f.fold {
					s := sreg &^ (flagH | flagS | flagV | flagN | flagZ | flagC)
					if r != 0 {
						s |= flagC
					}
					if r == 0x80 {
						s |= flagV
					}
					if (r|a)&0x08 != 0 {
						s |= flagH
					}
					sreg = nzs(s, r)
				}
			case fMov:
				m.data[f.d] = m.data[f.s]
			case fMovw:
				m.data[f.d] = m.data[f.s]
				m.data[f.d+1] = m.data[f.s+1]
			case fLdi:
				m.data[f.d] = f.k
			case fSwap:
				m.data[f.d] = m.data[f.d]<<4 | m.data[f.d]>>4
			case fInc:
				r := m.data[f.d] + 1
				m.data[f.d] = r
				if !f.fold {
					s := sreg &^ (flagS | flagV | flagN | flagZ)
					if r == 0x80 {
						s |= flagV
					}
					sreg = nzs(s, r)
				}
			case fDec:
				r := m.data[f.d] - 1
				m.data[f.d] = r
				if !f.fold {
					s := sreg &^ (flagS | flagV | flagN | flagZ)
					if r == 0x7F {
						s |= flagV
					}
					sreg = nzs(s, r)
				}
			case fAsr:
				a := m.data[f.d]
				r := a>>1 | a&0x80
				m.data[f.d] = r
				if !f.fold {
					sreg = shiftFlags(a, r, sreg)
				}
			case fLsr:
				a := m.data[f.d]
				r := a >> 1
				m.data[f.d] = r
				if !f.fold {
					sreg = shiftFlags(a, r, sreg)
				}
			case fRor:
				a := m.data[f.d]
				r := a >> 1
				if sreg&flagC != 0 {
					r |= 0x80
				}
				m.data[f.d] = r
				if !f.fold {
					sreg = shiftFlags(a, r, sreg)
				}
			case fMul:
				p := uint16(m.data[f.d]) * uint16(m.data[f.s])
				m.data[0] = byte(p)
				m.data[1] = byte(p >> 8)
				if !f.fold {
					s := sreg &^ (flagC | flagZ)
					if p&0x8000 != 0 {
						s |= flagC
					}
					if p == 0 {
						s |= flagZ
					}
					sreg = s
				}
			case fAdiw:
				v := m.RegPair(f.d)
				r := v + uint16(f.k)
				m.SetRegPair(f.d, r)
				if !f.fold {
					s := sreg &^ (flagS | flagV | flagN | flagZ | flagC)
					if r&0x8000 != 0 && v&0x8000 == 0 {
						s |= flagV
					}
					if r&0x8000 == 0 && v&0x8000 != 0 {
						s |= flagC
					}
					sreg = adiwTail(s, r)
				}
			case fSbiw:
				v := m.RegPair(f.d)
				r := v - uint16(f.k)
				m.SetRegPair(f.d, r)
				if !f.fold {
					s := sreg &^ (flagS | flagV | flagN | flagZ | flagC)
					if r&0x8000 == 0 && v&0x8000 != 0 {
						s |= flagV
					}
					if r&0x8000 != 0 && v&0x8000 == 0 {
						s |= flagC
					}
					sreg = adiwTail(s, r)
				}
			case fBset:
				if !f.fold {
					sreg |= f.k
				}
			case fBclr:
				if !f.fold {
					sreg &^= f.k
				}
			case fInData:
				m.data[f.d] = m.data[f.a]
			case fInSreg:
				m.data[f.d] = sreg
			case fInDev:
				m.cycle = start + uint64(f.cum)
				m.data[f.d] = m.readIO(f.a)
			case fOutData:
				m.data[f.a] = m.data[f.d]
			case fOutSreg:
				sreg = m.data[f.d]
			case fOutDev:
				// Exactly execOut: charge, then write. The write may
				// reschedule device events, so re-check the remaining worst
				// case against the new horizon; on a miss, leave the block
				// with the per-op path's exact post-OUT state and let the
				// outer loop sync.
				m.cycle = start + uint64(f.cum)
				m.writeIO(f.a, m.data[f.d])
				stop = m.dev.nextEvent
				if limit != 0 && limit < stop {
					stop = limit
				}
				if m.cycle+uint64(b.wcet-f.cum) >= stop {
					m.pc = b.nextPC(i)
					m.data[addrSREG] = sreg
					done += uint64(i) + 1
					halt = true
					break loop
				}
			case fSbiData:
				m.data[f.a] |= f.k
			case fCbiData:
				m.data[f.a] &^= f.k
			case fLdsData:
				m.data[f.d] = m.data[f.a]
			case fLdsSreg:
				m.data[f.d] = sreg
			case fLdsDev:
				m.cycle = start + uint64(f.cum)
				m.data[f.d] = m.readIO(f.a)
			case fLdsRAM:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				v, lerr := m.loadByte(f.a)
				if lerr != nil {
					done += uint64(i) + 1
					err = lerr
					break loop
				}
				m.data[f.d] = v
				sreg = m.data[addrSREG]
			case fStsData:
				m.data[f.a] = m.data[f.d]
			case fStsSreg:
				sreg = m.data[f.d]
			case fStsRAM:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				if serr := m.storeByte(f.a, m.data[f.d]); serr != nil {
					done += uint64(i) + 1
					err = serr
					break loop
				}
				sreg = m.data[addrSREG]
			case fLdd:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				v, lerr := m.loadByte(m.RegPair(f.s) + f.a)
				if lerr != nil {
					done += uint64(i) + 1
					err = lerr
					break loop
				}
				m.data[f.d] = v
				sreg = m.data[addrSREG]
			case fLdIndInc:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				p := m.RegPair(f.s)
				v, lerr := m.loadByte(p)
				if lerr != nil {
					done += uint64(i) + 1
					err = lerr
					break loop
				}
				m.data[f.d] = v
				m.SetRegPair(f.s, p+1)
				sreg = m.data[addrSREG]
			case fLdIndDec:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				p := m.RegPair(f.s) - 1
				v, lerr := m.loadByte(p)
				if lerr != nil {
					done += uint64(i) + 1
					err = lerr
					break loop
				}
				m.data[f.d] = v
				m.SetRegPair(f.s, p)
				sreg = m.data[addrSREG]
			case fPush:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				m.pushByte(m.data[f.d])
				if m.fault != nil {
					done += uint64(i) + 1
					err = m.fault
					break loop
				}
				sreg = m.data[addrSREG]
			case fPop:
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				m.data[f.d] = m.popByte()
				if m.fault != nil {
					done += uint64(i) + 1
					err = m.fault
					break loop
				}
				sreg = m.data[addrSREG]
			case fLpm:
				m.data[0] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
			case fLpmZ:
				m.data[f.d] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
			case fLpmZInc:
				z := m.RegPair(avr.RegZ)
				m.data[f.d] = m.flashByte(uint32(z))
				m.SetRegPair(avr.RegZ, z+1)
			default:
				done += uint64(i) + 1
				m.cycle = start + uint64(f.cum)
				m.pc = f.pc
				m.data[addrSREG] = sreg
				err = m.faultf(FaultBadInst, 0, "unfusable op in translated block")
				break loop
			}
		}
		done += uint64(len(ops))
		switch b.termKind {
		case tkNone:
			m.cycle = start + uint64(b.bodyCycles)
			m.pc = b.fallPC
		case tkJmp:
			done++
			m.cycle = start + uint64(b.bodyCycles) + uint64(b.termCyc)
			m.pc = b.termTo
		case tkBr:
			// Exactly execBrbs/execBrbc, with the flags still in the local.
			done++
			c := start + uint64(b.bodyCycles) + uint64(b.termCyc)
			if (sreg&b.termK != 0) == b.termSet {
				c++
				m.pc = b.termTo
			} else {
				m.pc = b.fallPC
			}
			m.cycle = c
		case tkSkip, tkSkipJmp, tkSkipTrap:
			// Exactly execCpse/execSbrc/execSbrs/execSbic/execSbis: base cycles
			// first (a device-register read sees the flushed clock), plus the
			// skipped instruction's words when the skip is taken.
			done++
			c := start + uint64(b.bodyCycles) + uint64(b.termCyc)
			var hit bool
			switch b.termCond {
			case scReg:
				hit = m.data[b.termD]&b.termK != 0
			case scIO:
				hit = m.data[b.termA]&b.termK != 0
			case scIODev:
				m.cycle = c
				hit = m.readIO(b.termA)&b.termK != 0
			default: // scRegEq
				hit = m.data[b.termD] == m.data[b.termS]
			}
			switch {
			case hit != b.termNeg: // skip taken
				m.cycle = c + uint64(b.termSkpW)
				m.pc = b.skipTo
			case b.termKind == tkSkipJmp: // not taken: the fused jump executes
				done++
				m.cycle = c + uint64(b.termJCyc)
				m.pc = b.termTo
			case b.termKind == tkSkipTrap: // not taken: the fused trap executes
				done++
				m.cycle = c + uint64(b.termJCyc)
				m.pc = b.fallPC
				m.data[addrSREG] = sreg
				m.insts += done
				fused += done
				done = 0
				if m.trap == nil {
					err = m.faultf(FaultTrap, 0, "no kernel attached")
					break loop
				}
				if terr := m.trap(m, b.termA); terr != nil {
					if m.fault == nil {
						m.faultf(FaultTrap, 0, terr.Error())
					}
					err = m.fault
					break loop
				}
				if m.ladderDue() {
					halt = true
					break loop
				}
				sreg = m.data[addrSREG]
				stop = m.dev.nextEvent
				if limit != 0 && limit < stop {
					stop = limit
				}
			default:
				m.cycle = c
				m.pc = b.fallPC
			}
		case tkTrap:
			// The kernel trap runs with everything flushed, exactly as
			// execKtrap after the fast loop's checked-op step. The service
			// may fault, sleep, switch tasks, move the horizon, or bring an
			// observer hook due — re-check the outer ladder, and only keep
			// dispatching when none of it fired.
			done++
			m.cycle = start + uint64(b.bodyCycles) + uint64(b.termCyc)
			m.pc = b.termPC
			m.data[addrSREG] = sreg
			m.insts += done
			fused += done
			done = 0
			if m.trap == nil {
				err = m.faultf(FaultTrap, 0, "no kernel attached")
				break loop
			}
			if terr := m.trap(m, b.termA); terr != nil {
				if m.fault == nil {
					m.faultf(FaultTrap, 0, terr.Error())
				}
				err = m.fault
				break loop
			}
			if m.ladderDue() {
				halt = true
				break loop
			}
			sreg = m.data[addrSREG]
			stop = m.dev.nextEvent
			if limit != 0 && limit < stop {
				stop = limit
			}
		default: // tkDispatch
			done++
			m.cycle = start + uint64(b.bodyCycles)
			m.pc = b.termPC
			m.data[addrSREG] = sreg
			m.insts += done
			fused += done
			done = 0
			tu := &m.uops[b.termPC]
			if tu.in.Op == avr.OpInvalid {
				if berr := m.buildUop(b.termPC); berr != nil {
					err = m.faultf(FaultBadInst, 0, berr.Error())
					break loop
				}
				tu = &m.uops[b.termPC]
			}
			if terr := dispatch[byte(tu.in.Op)](m, tu); terr != nil {
				err = terr
				break loop
			}
			sreg = m.data[addrSREG]
			stop = m.dev.nextEvent
			if limit != 0 && limit < stop {
				stop = limit
			}
		}
	}
	m.insts += done
	x.dispatches += iters
	x.fusedInsts += fused + done
	return halt, err
}

package mcu

// SREG flag masks (bit positions match internal/avr flag constants).
const (
	flagC byte = 1 << 0
	flagZ byte = 1 << 1
	flagN byte = 1 << 2
	flagV byte = 1 << 3
	flagS byte = 1 << 4
	flagH byte = 1 << 5
	flagT byte = 1 << 6
	flagI byte = 1 << 7
)

// The flag helpers are branch-free: every flag is computed as a 0/1 byte and
// shifted into place, so the hot ALU handlers stay within the inlining budget
// and carry no data-dependent branches. The formulas are the data-sheet ones.

// addFlags computes SREG for R = a + b + carryIn per the AVR data sheet.
func addFlags(a, b, r byte, sreg byte) byte {
	sreg &^= flagH | flagS | flagV | flagN | flagZ | flagC
	carries := a&b | b&^r | a&^r // bit 3 = H, bit 7 = C
	v := (a&b&^r | ^a&^b&r) >> 7 // two's-complement overflow
	sreg |= carries>>7 | carries&0x08<<2 | v<<3
	return nzs(sreg, r)
}

// subFlags computes SREG for R = a - b - carryIn. keepZ implements the
// CPC/SBC rule where Z is only cleared, never set.
func subFlags(a, b, r byte, sreg byte, keepZ bool) byte {
	old := sreg
	sreg &^= flagH | flagS | flagV | flagN | flagZ | flagC
	borrows := ^a&b | b&r | r&^a // bit 3 = H, bit 7 = C
	v := (a&^b&^r | ^a&b&r) >> 7
	sreg |= borrows>>7 | borrows&0x08<<2 | v<<3
	sreg = nzs(sreg, r)
	if keepZ && r == 0 {
		// Z = Z_old & (R == 0): propagate the previous Z instead of setting.
		sreg = sreg&^flagZ | old&flagZ
	}
	return sreg
}

// logicFlags computes SREG for AND/OR/EOR/COM-style results (V cleared).
func logicFlags(r byte, sreg byte) byte {
	sreg &^= flagS | flagV | flagN | flagZ
	return nzs(sreg, r)
}

// nzs fills in N, Z and S=N^V from the result byte and the V already in
// sreg. Callers have cleared N and Z; S is set or cleared here.
func nzs(sreg byte, r byte) byte {
	var z byte
	if r == 0 {
		z = flagZ
	}
	n := r >> 7
	v := sreg >> 3 & 1
	return sreg&^flagS | z | n<<2 | (n^v)<<4
}

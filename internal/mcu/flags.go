package mcu

// SREG flag masks (bit positions match internal/avr flag constants).
const (
	flagC byte = 1 << 0
	flagZ byte = 1 << 1
	flagN byte = 1 << 2
	flagV byte = 1 << 3
	flagS byte = 1 << 4
	flagH byte = 1 << 5
	flagT byte = 1 << 6
	flagI byte = 1 << 7
)

// addFlags computes SREG for R = a + b + carryIn per the AVR data sheet.
func addFlags(a, b, r byte, sreg byte) byte {
	sreg &^= flagH | flagS | flagV | flagN | flagZ | flagC
	h := (a&b | b&^r | a&^r) & 0x08
	if h != 0 {
		sreg |= flagH
	}
	c := (a&b | b&^r | a&^r) & 0x80
	if c != 0 {
		sreg |= flagC
	}
	v := (a & b &^ r) | (^a & ^b & r)
	if v&0x80 != 0 {
		sreg |= flagV
	}
	return nzs(sreg, r)
}

// subFlags computes SREG for R = a - b - carryIn. keepZ implements the
// CPC/SBC rule where Z is only cleared, never set.
func subFlags(a, b, r byte, sreg byte, keepZ bool) byte {
	old := sreg
	sreg &^= flagH | flagS | flagV | flagN | flagZ | flagC
	h := (^a&b | b&r | r&^a) & 0x08
	if h != 0 {
		sreg |= flagH
	}
	c := (^a&b | b&r | r&^a) & 0x80
	if c != 0 {
		sreg |= flagC
	}
	v := (a &^ b &^ r) | (^a & b & r)
	if v&0x80 != 0 {
		sreg |= flagV
	}
	sreg = nzs(sreg, r)
	if keepZ && r == 0 {
		// Z = Z_old & (R == 0): propagate the previous Z instead of setting.
		sreg = sreg&^flagZ | old&flagZ
	}
	return sreg
}

// logicFlags computes SREG for AND/OR/EOR/COM-style results (V cleared).
func logicFlags(r byte, sreg byte) byte {
	sreg &^= flagS | flagV | flagN | flagZ
	return nzs(sreg, r)
}

// nzs fills in N, Z and S=N^V from the result byte and the V already in sreg.
func nzs(sreg byte, r byte) byte {
	if r == 0 {
		sreg |= flagZ
	}
	if r&0x80 != 0 {
		sreg |= flagN
	}
	n := sreg&flagN != 0
	v := sreg&flagV != 0
	if n != v {
		sreg |= flagS
	} else {
		sreg &^= flagS
	}
	return sreg
}

package mcu

import (
	"repro/internal/ioregs"
	"repro/internal/trace"
)

// noEvent means no device event is scheduled.
const noEvent = ^uint64(0)

// Device timing constants.
const (
	// ADCCycles is one conversion at the /128 ADC prescaler (13 ADC clocks).
	ADCCycles = 13 * 128
	// UARTByteCycles is one byte at 57.6 kbaud (10 bits/byte).
	UARTByteCycles = 1280
	// RadioByteCycles is one byte on a CC1000-class 19.2 kbaud radio link.
	RadioByteCycles = 3840
	// Timer3Prescale is the /8 prescaler of the kernel's global clock.
	Timer3Prescale = 8
)

// timer0Prescale maps TCCR0 clock-select bits to the prescaler divisor
// (0 = stopped), following the ATmega128 Timer0 table.
var timer0Prescale = [8]uint32{0, 1, 8, 32, 64, 128, 256, 1024}

// RadioFrame is one byte transmitted on the synthetic radio, with the cycle
// at which its transmission completed.
type RadioFrame struct {
	Byte  byte
	Cycle uint64
}

// devices bundles the peripheral state of a Machine.
type devices struct {
	nextEvent uint64

	// Timer0.
	t0BaseCycle uint64 // cycle at which TCNT0 held t0BaseCount
	t0BaseCount uint16
	t0Prescale  uint32 // 0 = stopped

	// ADC. adcSource, when non-nil, overrides the built-in LFSR sensor;
	// adcLFSR is the built-in generator's register, held as plain data so a
	// checkpoint can serialize the stream position (a closure could not be).
	adcBusyUntil uint64
	adcPending   bool
	adcSource    func(channel uint8) uint16
	adcLFSR      uint16

	// UART.
	uartBusyUntil uint64
	uartPendingB  byte
	uartPending   bool
	uartOut       []byte

	// Radio.
	radioBusyUntil uint64
	radioPendingB  byte
	radioPending   bool
	radioOut       []RadioFrame
	radioIn        []byte
}

func (d *devices) reset() {
	*d = devices{nextEvent: noEvent, adcSource: d.adcSource, adcLFSR: adcLFSRSeed}
}

// adcLFSRSeed is the reset state of the built-in ADC noise generator.
const adcLFSRSeed = 0xACE1

// adcSample produces the next synthetic sensor reading: the custom source if
// one is installed, otherwise a 16-bit LFSR producing deterministic
// pseudo-random 10-bit values.
func (d *devices) adcSample(channel uint8) uint16 {
	if d.adcSource != nil {
		return d.adcSource(channel)
	}
	bit := (d.adcLFSR ^ d.adcLFSR>>2 ^ d.adcLFSR>>3 ^ d.adcLFSR>>5) & 1
	d.adcLFSR = d.adcLFSR>>1 | bit<<15
	return (d.adcLFSR + uint16(channel)*37) & 0x3FF
}

// SetADCSource installs a synthetic sensor: the function is called once per
// completed conversion with the selected channel.
func (m *Machine) SetADCSource(f func(channel uint8) uint16) { m.dev.adcSource = f }

// UARTOutput returns a copy of all bytes transmitted on UART0 so far. A
// copy, not the live buffer: the machine keeps appending to its own slice,
// and handing out the backing array would let a later transmission overwrite
// a snapshot the caller already holds (or race with a reader when machines
// run on different goroutines).
func (m *Machine) UARTOutput() []byte { return append([]byte(nil), m.dev.uartOut...) }

// RadioOutput returns a copy of all bytes transmitted on the radio so far
// (see UARTOutput for why a copy).
func (m *Machine) RadioOutput() []RadioFrame { return append([]RadioFrame(nil), m.dev.radioOut...) }

// InjectRadio queues bytes for the application to read from RDR.
func (m *Machine) InjectRadio(b []byte) {
	m.dev.radioIn = append(m.dev.radioIn, b...)
	if len(m.dev.radioIn) > 0 {
		m.pending |= intRadioRx
	}
}

// syncDevices fires every device event whose time has come and recomputes
// the next event cycle.
func (m *Machine) syncDevices() {
	d := &m.dev
	now := m.cycle

	// Timer0 overflow.
	if d.t0Prescale != 0 {
		for {
			of := m.timer0OverflowCycle()
			if of > now {
				break
			}
			// Overflow: set TOV0, maybe raise the interrupt, rebase.
			m.data[IOBase+ioregs.TIFR] |= ioregs.TOV0
			if m.data[IOBase+ioregs.TIMSK]&ioregs.TOIE0 != 0 {
				m.pending |= intTimer0
			}
			d.t0BaseCycle = of
			d.t0BaseCount = 0
		}
	}

	// ADC completion.
	if d.adcPending && now >= d.adcBusyUntil {
		v := d.adcSample(m.data[IOBase+ioregs.ADMUX] & 7)
		m.data[IOBase+ioregs.ADCL] = byte(v)
		m.data[IOBase+ioregs.ADCH] = byte(v >> 8)
		m.data[IOBase+ioregs.ADCSRA] &^= ioregs.ADSC
		d.adcPending = false
		m.powerEvent(trace.PowerADC, false)
	}

	// UART byte done.
	if d.uartPending && now >= d.uartBusyUntil {
		d.uartOut = append(d.uartOut, d.uartPendingB)
		d.uartPending = false
		m.powerEvent(trace.PowerUART, false)
	}

	// Radio byte done.
	if d.radioPending && now >= d.radioBusyUntil {
		d.radioOut = append(d.radioOut, RadioFrame{Byte: d.radioPendingB, Cycle: d.radioBusyUntil})
		d.radioPending = false
		m.powerEvent(trace.PowerRadio, false)
	}

	m.recomputeNextEvent()
}

// timer0OverflowCycle returns the cycle at which TCNT0 next wraps.
func (m *Machine) timer0OverflowCycle() uint64 {
	d := &m.dev
	remaining := uint64(256-d.t0BaseCount) * uint64(d.t0Prescale)
	return d.t0BaseCycle + remaining
}

func (m *Machine) recomputeNextEvent() {
	d := &m.dev
	next := uint64(noEvent)
	if d.t0Prescale != 0 {
		if of := m.timer0OverflowCycle(); of < next {
			next = of
		}
	}
	if d.adcPending && d.adcBusyUntil < next {
		next = d.adcBusyUntil
	}
	if d.uartPending && d.uartBusyUntil < next {
		next = d.uartBusyUntil
	}
	if d.radioPending && d.radioBusyUntil < next {
		next = d.radioBusyUntil
	}
	d.nextEvent = next
}

// timer0Count returns the live TCNT0 value.
func (m *Machine) timer0Count() byte {
	d := &m.dev
	if d.t0Prescale == 0 {
		return byte(d.t0BaseCount)
	}
	ticks := (m.cycle - d.t0BaseCycle) / uint64(d.t0Prescale)
	return byte(uint64(d.t0BaseCount) + ticks)
}

// timer3Count returns the live 16-bit kernel-clock value (clk/8).
func (m *Machine) timer3Count() uint16 {
	return uint16(m.cycle / Timer3Prescale)
}

// Timer3Count exposes the kernel clock (the kernel virtualizes application
// access to it, Section IV-A).
func (m *Machine) Timer3Count() uint16 { return m.timer3Count() }

// readIO reads a data-space address below SRAMBase (registers and I/O) with
// device side effects.
func (m *Machine) readIO(addr uint16) byte {
	switch addr {
	case IOBase + ioregs.TCNT0:
		return m.timer0Count()
	case IOBase + ioregs.ADCSRA:
		if m.dev.adcPending && m.cycle >= m.dev.adcBusyUntil {
			m.syncDevices()
		}
		return m.data[addr]
	case IOBase + ioregs.UCSR0A:
		v := m.data[addr] &^ byte(ioregs.UDRE)
		if !m.dev.uartPending || m.cycle >= m.dev.uartBusyUntil {
			v |= ioregs.UDRE
		}
		return v
	case IOBase + ioregs.RSR:
		var v byte
		if !m.dev.radioPending || m.cycle >= m.dev.radioBusyUntil {
			v |= ioregs.RadioTxOK
		}
		if len(m.dev.radioIn) > 0 {
			v |= ioregs.RadioRxOK
		}
		return v
	case IOBase + ioregs.RDR:
		if len(m.dev.radioIn) == 0 {
			return 0
		}
		b := m.dev.radioIn[0]
		m.dev.radioIn = m.dev.radioIn[1:]
		return b
	case ioregs.TCNT3L:
		// Reading the low byte latches the high byte, as on real hardware.
		t := m.timer3Count()
		m.data[ioregs.TCNT3H] = byte(t >> 8)
		return byte(t)
	case ioregs.TCNT3H:
		return m.data[ioregs.TCNT3H]
	}
	return m.data[addr]
}

// writeIO writes a data-space address below SRAMBase with device side
// effects.
func (m *Machine) writeIO(addr uint16, v byte) {
	switch addr {
	case IOBase + ioregs.TCCR0:
		// Rebase the counter at the moment the prescaler changes.
		wasOn := m.dev.t0Prescale != 0
		m.dev.t0BaseCount = uint16(m.timer0Count())
		m.dev.t0BaseCycle = m.cycle
		m.dev.t0Prescale = timer0Prescale[v&7]
		m.data[addr] = v
		m.recomputeNextEvent()
		if isOn := m.dev.t0Prescale != 0; m.meter != nil && isOn != wasOn {
			if isOn {
				m.meter.TimerOn(m.cycle)
			} else {
				m.meter.TimerOff(m.cycle)
			}
			m.powerEvent(trace.PowerTimer, isOn)
		}
	case IOBase + ioregs.TCNT0:
		m.dev.t0BaseCount = uint16(v)
		m.dev.t0BaseCycle = m.cycle
		m.data[addr] = v
		m.recomputeNextEvent()
	case IOBase + ioregs.TIFR:
		// Flags clear by writing 1 to them.
		m.data[addr] &^= v
	case IOBase + ioregs.ADCSRA:
		m.data[addr] = v
		if v&ioregs.ADEN != 0 && v&ioregs.ADSC != 0 && !m.dev.adcPending {
			m.dev.adcPending = true
			m.dev.adcBusyUntil = m.cycle + ADCCycles
			m.recomputeNextEvent()
			if m.meter != nil {
				m.meter.ADCConversion(ADCCycles)
				m.powerEvent(trace.PowerADC, true)
			}
		}
	case IOBase + ioregs.UDR0:
		// Transmit; software is expected to poll UDRE first.
		if m.dev.uartPending && m.cycle < m.dev.uartBusyUntil {
			// Overrun: previous byte is lost, as on hardware.
			m.dev.uartPendingB = v
			return
		}
		if m.dev.uartPending {
			m.syncDevices()
		}
		m.dev.uartPending = true
		m.dev.uartPendingB = v
		m.dev.uartBusyUntil = m.cycle + UARTByteCycles
		m.recomputeNextEvent()
		if m.meter != nil {
			// Charged at span start: the byte's busy window is fixed, so
			// its energy is committed the moment transmission begins. The
			// overrun path above starts no new window and charges nothing.
			m.meter.UARTByte(UARTByteCycles)
			m.powerEvent(trace.PowerUART, true)
		}
	case IOBase + ioregs.RDR:
		if m.dev.radioPending && m.cycle < m.dev.radioBusyUntil {
			m.dev.radioPendingB = v
			return
		}
		if m.dev.radioPending {
			m.syncDevices()
		}
		m.dev.radioPending = true
		m.dev.radioPendingB = v
		m.dev.radioBusyUntil = m.cycle + RadioByteCycles
		m.recomputeNextEvent()
		if m.meter != nil {
			m.meter.RadioByte(RadioByteCycles)
			m.powerEvent(trace.PowerRadio, true)
		}
	default:
		m.data[addr] = v
	}
}

// FlushDevices fires any device events whose time has come (after a manual
// AddCycles) — harness helper to collect in-flight UART/radio bytes.
func (m *Machine) FlushDevices() { m.syncDevices() }

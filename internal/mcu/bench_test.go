package mcu

import (
	"testing"

	"repro/internal/avr/asm"
)

// benchMachine assembles src, loads it at 0, and points SP at top of SRAM.
func benchMachine(b *testing.B, src string) *Machine {
	b.Helper()
	p, err := asm.Assemble(b.Name(), src)
	if err != nil {
		b.Fatal(err)
	}
	m := New()
	if err := m.LoadFlash(0, p.Words); err != nil {
		b.Fatal(err)
	}
	m.SetSP(0x10FF)
	return m
}

// hotLoopSrc is an infinite all-ALU loop: no I/O, no device events, no traps.
// It isolates the cost of the run loop itself (uop fetch, dispatch, horizon
// check) from device and kernel overhead.
const hotLoopSrc = `
main:
    ldi r16, 1
    ldi r17, 3
loop:
    add r18, r16
    adc r19, r17
    eor r20, r18
    lsr r21
    dec r22
    mov r23, r20
    subi r24, 1
    rjmp loop
`

// dispatchSrc cycles through a wide spread of dispatch families (ALU, skip,
// branch, stack, flash read, I/O) so the dispatch path sees a realistic
// opcode mix rather than one predictable target.
const dispatchSrc = `
main:
    ldi r30, lo8(tbl)
    ldi r31, hi8(tbl)
    lsl r30
loop:
    add r18, r16
    sbrs r18, 0
    inc r19
    push r18
    pop r20
    lpm r21, Z
    in r22, PINB
    out PORTB, r22
    cpi r18, 0
    brne loop
    rjmp loop
tbl:
    .dw 0x1234
`

// reportMIPS attaches simulated instructions per host-second to the
// benchmark output.
func reportMIPS(b *testing.B, m *Machine, start uint64) {
	b.ReportMetric(float64(m.Instructions()-start)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkStep measures the fully-checked per-instruction path (the one
// stepwise mode, tracing, and profiling use).
func BenchmarkStep(b *testing.B) {
	m := benchMachine(b, hotLoopSrc)
	start := m.Instructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	reportMIPS(b, m, start)
}

// BenchmarkRunHotLoop measures the event-horizon fast loop on a pure ALU
// loop with block translation disabled: the best case for the predecoded
// per-op interpreter, and the before-side of BenchmarkRunTranslatedLoop.
func BenchmarkRunHotLoop(b *testing.B) {
	m := benchMachine(b, hotLoopSrc)
	m.SetTranslation(-1)
	start := m.Instructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~1000 cycles per RunUntil horizon slice.
		if err := m.RunUntil(m.Cycles() + 1000); err != nil {
			b.Fatal(err)
		}
	}
	reportMIPS(b, m, start)
}

// BenchmarkRunTranslatedLoop measures the same ALU loop with basic-block
// translation forced on (threshold 1): the loop body executes as one fused
// superinstruction per iteration, with SREG in a local, folded dead flags,
// and one horizon check per block.
func BenchmarkRunTranslatedLoop(b *testing.B) {
	m := benchMachine(b, hotLoopSrc)
	m.SetTranslation(1)
	start := m.Instructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunUntil(m.Cycles() + 1000); err != nil {
			b.Fatal(err)
		}
	}
	reportMIPS(b, m, start)
	st := m.TranslationStats()
	if st.FusedDispatches == 0 {
		b.Fatal("no fused blocks dispatched")
	}
	b.ReportMetric(float64(st.FusedInsts)/float64(m.Instructions()-start), "fused-frac")
}

// BenchmarkDispatch measures the fast loop over a mixed opcode stream that
// defeats branch-target caching of any single handler (translation off, so
// every instruction takes the dispatch path).
func BenchmarkDispatch(b *testing.B) {
	m := benchMachine(b, dispatchSrc)
	m.SetTranslation(-1)
	start := m.Instructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RunUntil(m.Cycles() + 1000); err != nil {
			b.Fatal(err)
		}
	}
	reportMIPS(b, m, start)
}

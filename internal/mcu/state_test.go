package mcu

import (
	"bytes"
	"errors"
	"testing"
)

// stateWorkSrc exercises every peripheral a snapshot must carry: ADC
// conversions off the deterministic LFSR noise source, UART transmits, and
// radio frames, all inside one loop.
const stateWorkSrc = `
main:
    ldi r16, lo8(RAMEND)
    out SPL, r16
    ldi r16, hi8(RAMEND)
    out SPH, r16
    ldi r20, 12
loop:
    mov r16, r20
    andi r16, 7
    out ADMUX, r16
    ldi r16, 0xC0     ; ADEN|ADSC
    out ADCSRA, r16
adcw:
    in r17, ADCSRA
    sbrc r17, 6
    rjmp adcw
    in r24, ADCL
    rcall putc
    rcall txb
    dec r20
    brne loop
    break
putc:
    in r17, UCSR0A
    sbrs r17, 5
    rjmp putc
    out UDR0, r24
    ret
txb:
    in r17, RSR
    sbrs r17, 0
    rjmp txb
    out RDR, r24
    ret
`

// finishWork drains the workload to BREAK plus the last in-flight device
// bytes, returning the machine's observable end state.
func finishWork(t *testing.T, m *Machine) (uart []byte, radio []RadioFrame, cycles, insts uint64) {
	t.Helper()
	runUntilBreak(t, m, 10_000_000)
	m.fault = nil
	m.AddCycles(UARTByteCycles + RadioByteCycles)
	m.FlushDevices()
	return m.UARTOutput(), m.RadioOutput(), m.cycle, m.insts
}

// TestRestoreResumeIdentity pins machine-level resume identity: a machine
// restored from a mid-run snapshot must finish with the same cycle count,
// instruction count, device output, and CPU state as the uninterrupted run —
// including the ADC noise stream, whose LFSR is part of the snapshot.
func TestRestoreResumeIdentity(t *testing.T) {
	ref := load(t, stateWorkSrc)
	wantUART, wantRadio, wantCycles, wantInsts := finishWork(t, ref)
	if len(wantUART) != 12 || len(wantRadio) != 12 {
		t.Fatalf("workload emitted %d uart / %d radio bytes, want 12/12", len(wantUART), len(wantRadio))
	}

	src := load(t, stateWorkSrc)
	if err := src.Run(wantCycles / 2); err != nil {
		t.Fatalf("mid-run stop: %v", err)
	}
	st, err := src.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	dst := load(t, stateWorkSrc)
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	gotUART, gotRadio, gotCycles, gotInsts := finishWork(t, dst)
	if !bytes.Equal(gotUART, wantUART) {
		t.Errorf("uart = %q, want %q", gotUART, wantUART)
	}
	if len(gotRadio) != len(wantRadio) {
		t.Fatalf("radio frames = %d, want %d", len(gotRadio), len(wantRadio))
	}
	for i := range gotRadio {
		if gotRadio[i] != wantRadio[i] {
			t.Errorf("radio[%d] = %+v, want %+v", i, gotRadio[i], wantRadio[i])
		}
	}
	if gotCycles != wantCycles || gotInsts != wantInsts {
		t.Errorf("cycles/insts = %d/%d, want %d/%d", gotCycles, gotInsts, wantCycles, wantInsts)
	}
	if dst.pc != ref.pc || dst.data != ref.data {
		t.Error("restored machine's CPU state diverged from the uninterrupted run")
	}

	// The source machine must be unperturbed by the capture: it finishes
	// identically too.
	srcUART, _, srcCycles, _ := finishWork(t, src)
	if !bytes.Equal(srcUART, wantUART) || srcCycles != wantCycles {
		t.Error("capturing state perturbed the running machine")
	}
}

// TestRestoreDoesNotAliasState pins the aliasing contract from both sides:
// after restore, writes through the snapshot must not reach the machine, and
// the machine's continued execution must not mutate the snapshot.
func TestRestoreDoesNotAliasState(t *testing.T) {
	src := load(t, stateWorkSrc)
	if err := src.Run(20_000); err != nil {
		t.Fatal(err)
	}
	st, err := src.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Dev.UARTOut) == 0 || len(st.Dev.RadioOut) == 0 {
		t.Fatalf("workload state at 20k cycles has no device output (uart=%d radio=%d)",
			len(st.Dev.UARTOut), len(st.Dev.RadioOut))
	}

	dst := load(t, stateWorkSrc)
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// Scribble through the snapshot; the machine must not see it.
	uart0, radio0 := st.Dev.UARTOut[0], st.Dev.RadioOut[0]
	st.Dev.UARTOut[0] ^= 0xFF
	st.Dev.RadioOut[0].Byte ^= 0xFF
	st.Data[SRAMBase] ^= 0xFF
	if dst.dev.uartOut[0] != uart0 {
		t.Error("restored UART buffer aliases the snapshot slice")
	}
	if dst.dev.radioOut[0] != radio0 {
		t.Error("restored radio buffer aliases the snapshot slice")
	}
	if dst.data[SRAMBase] == st.Data[SRAMBase] {
		t.Error("restored SRAM aliases the snapshot slice")
	}
	st.Dev.UARTOut[0], st.Dev.RadioOut[0] = uart0, radio0
	st.Data[SRAMBase] ^= 0xFF

	// Run the machine on; the snapshot must stay frozen.
	wantUART := append([]byte(nil), st.Dev.UARTOut...)
	finishWork(t, dst)
	if !bytes.Equal(st.Dev.UARTOut, wantUART) {
		t.Error("machine execution mutated the snapshot's UART buffer")
	}
}

// TestCaptureRefusesOpaqueHooks: a custom ADC source closure and an armed
// fault injector are unserializable pending effects — capture must fail with
// the typed errors, not silently drop them.
func TestCaptureRefusesOpaqueHooks(t *testing.T) {
	m := load(t, stateWorkSrc)
	m.SetADCSource(func(uint8) uint16 { return 7 })
	if _, err := m.CaptureState(); !errors.Is(err, ErrCustomADCSource) {
		t.Errorf("capture with ADC source: %v, want ErrCustomADCSource", err)
	}
	m.SetADCSource(nil)
	if _, err := m.CaptureState(); err != nil {
		t.Fatalf("capture after clearing source: %v", err)
	}

	m.SetInjector(1_000, func(*Machine) {})
	if _, err := m.CaptureState(); !errors.Is(err, ErrArmedInjector) {
		t.Errorf("capture with armed injector: %v, want ErrArmedInjector", err)
	}
}

// TestRestoreRejectsImageMismatch: restoring onto a machine whose flash
// differs from the snapshot's image hash must fail — the snapshot carries no
// flash, so the target's image is load-bearing.
func TestRestoreRejectsImageMismatch(t *testing.T) {
	src := load(t, stateWorkSrc)
	if err := src.Run(10_000); err != nil {
		t.Fatal(err)
	}
	st, err := src.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	other := load(t, uartEmitSrc)
	if err := other.RestoreState(st); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("restore onto different image: %v, want ErrImageMismatch", err)
	}
}

// TestRestoreRejectsBadGeometry: a snapshot with a truncated data segment or
// a mismatched sampler interval must be refused.
func TestRestoreRejectsBadGeometry(t *testing.T) {
	src := load(t, stateWorkSrc)
	st, err := src.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	trunc := *st
	trunc.Data = st.Data[:100]
	if err := load(t, stateWorkSrc).RestoreState(&trunc); !errors.Is(err, ErrSnapshotDataSize) {
		t.Errorf("restore of truncated data segment: %v, want ErrSnapshotDataSize", err)
	}

	sampled := load(t, stateWorkSrc)
	sampled.SetSampler(4096, func(uint64) {})
	if err := sampled.RestoreState(st); !errors.Is(err, ErrSamplerMismatch) {
		t.Errorf("restore with different sampler interval: %v, want ErrSamplerMismatch", err)
	}
}

// TestAdoptImageCopyOnWrite: after AdoptImage the two machines share flash
// and micro-op arrays; a SetTrapHandler or LoadFlash on either side must
// split the sharing without corrupting the other machine.
func TestAdoptImageCopyOnWrite(t *testing.T) {
	parent := load(t, stateWorkSrc)
	wantUART, _, wantCycles, _ := finishWork(t, parent)

	child := New()
	child.AdoptImage(parent)
	if child.flash != parent.flash || child.uops != parent.uops {
		t.Fatal("AdoptImage did not share the arrays")
	}
	// A flash write on the child must split the image and leave the parent's
	// contents untouched.
	word0 := parent.flash[0]
	if err := child.LoadFlash(0, []uint16{0x1234}); err != nil {
		t.Fatal(err)
	}
	if child.flash == parent.flash {
		t.Error("LoadFlash on an adopted image did not copy-on-write")
	}
	if parent.flash[0] != word0 {
		t.Error("LoadFlash on the child leaked into the parent's flash")
	}

	// A fresh child that keeps the shared image must run identically.
	sib := load(t, stateWorkSrc)
	sib.AdoptImage(parent)
	gotUART, _, gotCycles, _ := finishWork(t, sib)
	if !bytes.Equal(gotUART, wantUART) || gotCycles != wantCycles {
		t.Errorf("adopted child run = %q/%d cycles, want %q/%d", gotUART, gotCycles, wantUART, wantCycles)
	}
}

// TestCheckpointHookFiresOnceAtBoundary: the checkpoint hook fires exactly
// once, at a run-loop boundary at or after the armed cycle, and arming it
// does not change the machine's trajectory.
func TestCheckpointHookFiresOnceAtBoundary(t *testing.T) {
	ref := load(t, stateWorkSrc)
	wantUART, _, wantCycles, wantInsts := finishWork(t, ref)

	m := load(t, stateWorkSrc)
	var fired []uint64
	var atCycle uint64
	m.SetCheckpoint(wantCycles/2, func(at uint64) {
		fired = append(fired, at)
		atCycle = m.cycle
	})
	gotUART, _, gotCycles, gotInsts := finishWork(t, m)
	if len(fired) != 1 || fired[0] != wantCycles/2 {
		t.Fatalf("hook fired %v, want exactly once with the nominal cycle %d", fired, wantCycles/2)
	}
	if atCycle < wantCycles/2 || atCycle >= wantCycles {
		t.Errorf("hook fired at cycle %d, want within [%d, %d)", atCycle, wantCycles/2, wantCycles)
	}
	if !bytes.Equal(gotUART, wantUART) || gotCycles != wantCycles || gotInsts != wantInsts {
		t.Error("arming a checkpoint perturbed the run")
	}
}

package mcu

import "repro/internal/avr"

// The predecoded micro-op interpreter. Each flash word decodes once into a
// uop: the handler function for its op class, the operands it needs already
// extracted (register indices, absolute/IO addresses, bit masks, immediate
// bytes), the pre-masked fall-through and static branch-target PCs, and the
// base cycle count. The cache is built lazily on first execution, exactly
// like the old decoded/decodedB arrays, and invalidated on the same paths
// (LoadFlash, SetTrapHandler).
//
// Handler semantics replicate the retired exec() switch instruction for
// instruction, in particular its ordering rules:
//
//   - base cycles are charged before the op body runs;
//   - PC does not advance when the op faults;
//   - load/store errors return before the register writeback and before the
//     PC advance;
//   - RETI sets the I flag even when its pop faulted;
//   - POP writes the (zero) popped value before returning the fault;
//   - calls push the return address, then fault-check, then set PC;
//   - skip lengths (CPSE/SBRC/SBRS/SBIC/SBIS) stay dynamic — they fetch the
//     following word through the uop cache, so a LoadFlash that rewrites the
//     skipped instruction is always honoured.

// execFn executes one predecoded micro-op.
type execFn func(m *Machine, u *uop) error

// uop is one executable micro-op cache entry. It is deliberately pointer-free
// — the handler lives in the global dispatch table, indexed by in.Op — so the
// garbage collector never scans the per-machine caches (64 Ki entries each).
// An entry with in.Op == OpInvalid (the zero value) has not been built yet.
type uop struct {
	in     avr.Inst // original decoded instruction (InstAt, skip, diagnostics)
	next   uint32   // pre-masked fall-through PC
	target uint32   // pre-masked static branch/jump/call target
	a      uint16   // absolute data address, or IO data-space address
	d, s   uint8    // destination register / source or pointer register
	k      byte     // immediate byte, or precomputed bit mask
	cycles uint8    // base cycle count
	// checked marks ops whose handlers may change global execution state
	// (KTRAP can halt, sleep, or switch tasks; SLEEP sets m.sleeping): the
	// fast loop breaks after one so the run-loop preconditions are
	// re-examined before the next fetch.
	checked bool
	// ctl marks control transfers: the PC after one may be a basic-block
	// leader, so the fast loop gives the block translator a chance to
	// dispatch there (see translate.go).
	ctl bool
}

// dispatch maps each op to its handler. It is sized for a full byte index so
// dispatch[byte(op)] needs no bounds check; init fills every unused slot with
// execUnimpl, so no entry is ever nil.
var dispatch [256]execFn

func init() {
	dispatch[avr.OpNop] = execNop
	dispatch[avr.OpWdr] = execNop
	dispatch[avr.OpSleep] = execSleep
	dispatch[avr.OpBreak] = execBreak
	dispatch[avr.OpKtrap] = execKtrap

	dispatch[avr.OpAdd] = execAdd
	dispatch[avr.OpAdc] = execAdc
	dispatch[avr.OpSub] = execSub
	dispatch[avr.OpCp] = execCp
	dispatch[avr.OpSbc] = execSbc
	dispatch[avr.OpCpc] = execCpc
	dispatch[avr.OpSubi] = execSubi
	dispatch[avr.OpCpi] = execCpi
	dispatch[avr.OpSbci] = execSbci
	dispatch[avr.OpAnd] = execAnd
	dispatch[avr.OpAndi] = execAndi
	dispatch[avr.OpOr] = execOr
	dispatch[avr.OpOri] = execOri
	dispatch[avr.OpEor] = execEor
	dispatch[avr.OpMov] = execMov
	dispatch[avr.OpMovw] = execMovw
	dispatch[avr.OpLdi] = execLdi
	dispatch[avr.OpCom] = execCom
	dispatch[avr.OpNeg] = execNeg
	dispatch[avr.OpSwap] = execSwap
	dispatch[avr.OpInc] = execInc
	dispatch[avr.OpDec] = execDec
	dispatch[avr.OpAsr] = execAsr
	dispatch[avr.OpLsr] = execLsr
	dispatch[avr.OpRor] = execRor
	dispatch[avr.OpMul] = execMul
	dispatch[avr.OpAdiw] = execAdiw
	dispatch[avr.OpSbiw] = execSbiw
	dispatch[avr.OpBset] = execBset
	dispatch[avr.OpBclr] = execBclr

	dispatch[avr.OpRjmp] = execRjmp
	dispatch[avr.OpRcall] = execRcall
	dispatch[avr.OpJmp] = execJmp
	dispatch[avr.OpCall] = execCall
	dispatch[avr.OpIjmp] = execIjmp
	dispatch[avr.OpIcall] = execIcall
	dispatch[avr.OpRet] = execRet
	dispatch[avr.OpReti] = execReti
	dispatch[avr.OpBrbs] = execBrbs
	dispatch[avr.OpBrbc] = execBrbc
	dispatch[avr.OpCpse] = execCpse
	dispatch[avr.OpSbrc] = execSbrc
	dispatch[avr.OpSbrs] = execSbrs
	dispatch[avr.OpSbic] = execSbic
	dispatch[avr.OpSbis] = execSbis

	dispatch[avr.OpIn] = execIn
	dispatch[avr.OpOut] = execOut
	dispatch[avr.OpSbi] = execSbi
	dispatch[avr.OpCbi] = execCbi

	dispatch[avr.OpLds] = execLds
	dispatch[avr.OpSts] = execSts
	dispatch[avr.OpLdX] = execLdInd
	dispatch[avr.OpLdXInc] = execLdIndInc
	dispatch[avr.OpLdXDec] = execLdIndDec
	dispatch[avr.OpLdYInc] = execLdIndInc
	dispatch[avr.OpLdYDec] = execLdIndDec
	dispatch[avr.OpLddY] = execLdd
	dispatch[avr.OpLdZInc] = execLdIndInc
	dispatch[avr.OpLdZDec] = execLdIndDec
	dispatch[avr.OpLddZ] = execLdd
	dispatch[avr.OpStX] = execStInd
	dispatch[avr.OpStXInc] = execStIndInc
	dispatch[avr.OpStXDec] = execStIndDec
	dispatch[avr.OpStYInc] = execStIndInc
	dispatch[avr.OpStYDec] = execStIndDec
	dispatch[avr.OpStdY] = execStd
	dispatch[avr.OpStZInc] = execStIndInc
	dispatch[avr.OpStZDec] = execStIndDec
	dispatch[avr.OpStdZ] = execStd
	dispatch[avr.OpPush] = execPush
	dispatch[avr.OpPop] = execPop

	dispatch[avr.OpLpm] = execLpm
	dispatch[avr.OpLpmZ] = execLpmZ
	dispatch[avr.OpLpmZInc] = execLpmZInc

	for i, fn := range dispatch {
		if fn == nil {
			dispatch[i] = execUnimpl
		}
	}
}

// buildUop decodes the flash word at (masked) pc into its micro-op cache
// slot. Decode errors are not cached, matching the old fetch.
func (m *Machine) buildUop(pc uint32) error {
	in, err := avr.Decode(m.flash[pc:min(int(pc)+2, FlashWords)])
	if err != nil {
		return err
	}
	if in.Op == avr.OpKtrap && m.trap == nil {
		// Without a kernel, BREAK is BREAK; the next word is unrelated.
		in = avr.Inst{Op: avr.OpBreak}
	}
	m.ownUops()
	u := &m.uops[pc]
	words, cycles := in.Op.Meta()
	*u = uop{in: in, d: in.Dst, s: in.Src, cycles: uint8(cycles)}
	u.next = (pc + uint32(words)) & (FlashWords - 1)
	u.ctl = in.IsControlTransfer()

	switch in.Op {
	case avr.OpKtrap, avr.OpSleep:
		u.checked = true
	case avr.OpRjmp, avr.OpRcall, avr.OpBrbs, avr.OpBrbc:
		u.target = uint32(int64(pc)+1+int64(in.Imm)) & (FlashWords - 1)
		if in.Op == avr.OpBrbs || in.Op == avr.OpBrbc {
			u.k = 1 << (in.Src & 7)
		}
	case avr.OpJmp, avr.OpCall:
		u.target = uint32(in.Imm) & (FlashWords - 1)
	case avr.OpLdi, avr.OpSubi, avr.OpSbci, avr.OpAndi, avr.OpOri, avr.OpCpi,
		avr.OpAdiw, avr.OpSbiw:
		u.k = byte(in.Imm)
	case avr.OpBset, avr.OpBclr:
		u.k = 1 << (in.Dst & 7)
	case avr.OpSbrc, avr.OpSbrs:
		u.k = 1 << (uint(in.Imm) & 7)
	case avr.OpSbic, avr.OpSbis, avr.OpSbi, avr.OpCbi:
		u.a = uint16(in.Dst) + IOBase
		u.k = 1 << (uint(in.Imm) & 7)
	case avr.OpIn, avr.OpOut:
		u.a = uint16(in.Imm) + IOBase
	case avr.OpLds, avr.OpSts:
		u.a = uint16(in.Imm)
	case avr.OpLddY, avr.OpStdY:
		u.s, u.a = avr.RegY, uint16(in.Imm)
	case avr.OpLddZ, avr.OpStdZ:
		u.s, u.a = avr.RegZ, uint16(in.Imm)
	case avr.OpLdX, avr.OpLdXInc, avr.OpLdXDec, avr.OpStX, avr.OpStXInc, avr.OpStXDec:
		u.s = avr.RegX
	case avr.OpLdYInc, avr.OpLdYDec, avr.OpStYInc, avr.OpStYDec:
		u.s = avr.RegY
	case avr.OpLdZInc, avr.OpLdZDec, avr.OpStZInc, avr.OpStZDec:
		u.s = avr.RegZ
	}
	return nil
}

// ---- CPU control ----

func execNop(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pc = u.next
	return nil
}

func execSleep(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.sleeping = true
	m.pc = u.next
	return nil
}

func execBreak(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	return m.faultf(FaultBreak, 0, "bare break")
}

func execKtrap(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if m.trap == nil {
		return m.faultf(FaultTrap, 0, "no kernel attached")
	}
	// The handler sets PC and charges kernel cycles itself.
	if err := m.trap(m, uint16(u.in.Imm)); err != nil {
		if m.fault == nil {
			m.faultf(FaultTrap, 0, err.Error())
		}
		return m.fault
	}
	return nil
}

func execUnimpl(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	return m.faultf(FaultBadInst, 0, "unimplemented op "+u.in.Op.String())
}

// ---- register-register and register-immediate ALU ----

func execAdd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a + b
	m.data[u.d] = r
	m.data[addrSREG] = addFlags(a, b, r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execAdc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a + b
	if m.data[addrSREG]&flagC != 0 {
		r++
	}
	m.data[u.d] = r
	m.data[addrSREG] = addFlags(a, b, r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execSub(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a - b
	m.data[u.d] = r
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)
	m.pc = u.next
	return nil
}

func execCp(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a - b
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)
	m.pc = u.next
	return nil
}

func execSbc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a - b
	if m.data[addrSREG]&flagC != 0 {
		r--
	}
	m.data[u.d] = r
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], true)
	m.pc = u.next
	return nil
}

func execCpc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], m.data[u.s]
	r := a - b
	if m.data[addrSREG]&flagC != 0 {
		r--
	}
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], true)
	m.pc = u.next
	return nil
}

func execSubi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], u.k
	r := a - b
	m.data[u.d] = r
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)
	m.pc = u.next
	return nil
}

func execCpi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], u.k
	r := a - b
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], false)
	m.pc = u.next
	return nil
}

func execSbci(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a, b := m.data[u.d], u.k
	r := a - b
	if m.data[addrSREG]&flagC != 0 {
		r--
	}
	m.data[u.d] = r
	m.data[addrSREG] = subFlags(a, b, r, m.data[addrSREG], true)
	m.pc = u.next
	return nil
}

func execAnd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] & m.data[u.s]
	m.data[u.d] = r
	m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execAndi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] & u.k
	m.data[u.d] = r
	m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execOr(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] | m.data[u.s]
	m.data[u.d] = r
	m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execOri(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] | u.k
	m.data[u.d] = r
	m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execEor(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] ^ m.data[u.s]
	m.data[u.d] = r
	m.data[addrSREG] = logicFlags(r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execMov(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.data[u.s]
	m.pc = u.next
	return nil
}

func execMovw(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.data[u.s]
	m.data[u.d+1] = m.data[u.s+1]
	m.pc = u.next
	return nil
}

func execLdi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = u.k
	m.pc = u.next
	return nil
}

// ---- single-register ALU ----

func execCom(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := ^m.data[u.d]
	m.data[u.d] = r
	s := logicFlags(r, m.data[addrSREG]) | flagC
	m.data[addrSREG] = nzs(s, r)
	m.pc = u.next
	return nil
}

func execNeg(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a := m.data[u.d]
	r := -a
	m.data[u.d] = r
	s := m.data[addrSREG] &^ (flagH | flagS | flagV | flagN | flagZ | flagC)
	if r != 0 {
		s |= flagC
	}
	if r == 0x80 {
		s |= flagV
	}
	if (r|a)&0x08 != 0 {
		s |= flagH
	}
	m.data[addrSREG] = nzs(s, r)
	m.pc = u.next
	return nil
}

func execSwap(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.data[u.d]<<4 | m.data[u.d]>>4
	m.pc = u.next
	return nil
}

func execInc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] + 1
	m.data[u.d] = r
	s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ)
	if r == 0x80 {
		s |= flagV
	}
	m.data[addrSREG] = nzs(s, r)
	m.pc = u.next
	return nil
}

func execDec(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	r := m.data[u.d] - 1
	m.data[u.d] = r
	s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ)
	if r == 0x7F {
		s |= flagV
	}
	m.data[addrSREG] = nzs(s, r)
	m.pc = u.next
	return nil
}

func execAsr(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a := m.data[u.d]
	r := a>>1 | a&0x80
	m.data[u.d] = r
	m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execLsr(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a := m.data[u.d]
	r := a >> 1
	m.data[u.d] = r
	m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execRor(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	a := m.data[u.d]
	r := a >> 1
	if m.data[addrSREG]&flagC != 0 {
		r |= 0x80
	}
	m.data[u.d] = r
	m.data[addrSREG] = shiftFlags(a, r, m.data[addrSREG])
	m.pc = u.next
	return nil
}

func execMul(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	p := uint16(m.data[u.d]) * uint16(m.data[u.s])
	m.data[0] = byte(p)
	m.data[1] = byte(p >> 8)
	s := m.data[addrSREG] &^ (flagC | flagZ)
	if p&0x8000 != 0 {
		s |= flagC
	}
	if p == 0 {
		s |= flagZ
	}
	m.data[addrSREG] = s
	m.pc = u.next
	return nil
}

func execAdiw(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	v := m.RegPair(u.d)
	s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ | flagC)
	r := v + uint16(u.k)
	if r&0x8000 != 0 && v&0x8000 == 0 {
		s |= flagV
	}
	if r&0x8000 == 0 && v&0x8000 != 0 {
		s |= flagC
	}
	m.SetRegPair(u.d, r)
	m.data[addrSREG] = adiwTail(s, r)
	m.pc = u.next
	return nil
}

func execSbiw(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	v := m.RegPair(u.d)
	s := m.data[addrSREG] &^ (flagS | flagV | flagN | flagZ | flagC)
	r := v - uint16(u.k)
	if r&0x8000 == 0 && v&0x8000 != 0 {
		s |= flagV
	}
	if r&0x8000 != 0 && v&0x8000 == 0 {
		s |= flagC
	}
	m.SetRegPair(u.d, r)
	m.data[addrSREG] = adiwTail(s, r)
	m.pc = u.next
	return nil
}

// adiwTail finishes the shared Z/N/S computation of ADIW and SBIW.
func adiwTail(s byte, r uint16) byte {
	if r == 0 {
		s |= flagZ
	}
	if r&0x8000 != 0 {
		s |= flagN
	}
	n, vf := s&flagN != 0, s&flagV != 0
	if n != vf {
		s |= flagS
	}
	return s
}

func execBset(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[addrSREG] |= u.k
	m.pc = u.next
	return nil
}

func execBclr(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[addrSREG] &^= u.k
	m.pc = u.next
	return nil
}

// ---- control flow ----

func execRjmp(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pc = u.target
	return nil
}

func execRcall(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pushWord(uint16(u.next))
	if m.fault != nil {
		return m.fault
	}
	m.pc = u.target
	return nil
}

func execJmp(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pc = u.target
	return nil
}

func execCall(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pushWord(uint16(u.next))
	if m.fault != nil {
		return m.fault
	}
	m.pc = u.target
	return nil
}

func execIjmp(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pc = uint32(m.RegPair(avr.RegZ))
	return nil
}

func execIcall(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pushWord(uint16(u.next))
	if m.fault != nil {
		return m.fault
	}
	m.pc = uint32(m.RegPair(avr.RegZ))
	return nil
}

func execRet(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	w := m.popWord()
	if m.fault != nil {
		return m.fault
	}
	m.pc = uint32(w)
	return nil
}

func execReti(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	w := m.popWord()
	m.data[addrSREG] |= flagI
	if m.fault != nil {
		return m.fault
	}
	m.pc = uint32(w)
	return nil
}

func execBrbs(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if m.data[addrSREG]&u.k != 0 {
		m.cycle++
		m.pc = u.target
	} else {
		m.pc = u.next
	}
	return nil
}

func execBrbc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if m.data[addrSREG]&u.k == 0 {
		m.cycle++
		m.pc = u.target
	} else {
		m.pc = u.next
	}
	return nil
}

func execCpse(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	next := u.next
	if m.data[u.d] == m.data[u.s] {
		next = m.skip(next) & (FlashWords - 1)
	}
	m.pc = next
	return nil
}

func execSbrc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	next := u.next
	if m.data[u.d]&u.k == 0 {
		next = m.skip(next) & (FlashWords - 1)
	}
	m.pc = next
	return nil
}

func execSbrs(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	next := u.next
	if m.data[u.d]&u.k != 0 {
		next = m.skip(next) & (FlashWords - 1)
	}
	m.pc = next
	return nil
}

func execSbic(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	next := u.next
	if m.readIO(u.a)&u.k == 0 {
		next = m.skip(next) & (FlashWords - 1)
	}
	m.pc = next
	return nil
}

func execSbis(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	next := u.next
	if m.readIO(u.a)&u.k != 0 {
		next = m.skip(next) & (FlashWords - 1)
	}
	m.pc = next
	return nil
}

// ---- I/O space ----

func execIn(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.readIO(u.a)
	m.pc = u.next
	return nil
}

func execOut(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.writeIO(u.a, m.data[u.d])
	m.pc = u.next
	return nil
}

func execSbi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.writeIO(u.a, m.readIO(u.a)|u.k)
	m.pc = u.next
	return nil
}

func execCbi(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.writeIO(u.a, m.readIO(u.a)&^u.k)
	m.pc = u.next
	return nil
}

// ---- data-memory loads and stores ----

func execLds(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	v, err := m.loadByte(u.a)
	if err != nil {
		return err
	}
	m.data[u.d] = v
	m.pc = u.next
	return nil
}

func execSts(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if err := m.storeByte(u.a, m.data[u.d]); err != nil {
		return err
	}
	m.pc = u.next
	return nil
}

func execLdInd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	v, err := m.loadByte(m.RegPair(u.s))
	if err != nil {
		return err
	}
	m.data[u.d] = v
	m.pc = u.next
	return nil
}

func execLdIndInc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	p := m.RegPair(u.s)
	v, err := m.loadByte(p)
	if err != nil {
		return err
	}
	m.data[u.d] = v
	m.SetRegPair(u.s, p+1)
	m.pc = u.next
	return nil
}

func execLdIndDec(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	p := m.RegPair(u.s) - 1
	v, err := m.loadByte(p)
	if err != nil {
		return err
	}
	m.data[u.d] = v
	m.SetRegPair(u.s, p)
	m.pc = u.next
	return nil
}

func execLdd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	v, err := m.loadByte(m.RegPair(u.s) + u.a)
	if err != nil {
		return err
	}
	m.data[u.d] = v
	m.pc = u.next
	return nil
}

func execStInd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if err := m.storeByte(m.RegPair(u.s), m.data[u.d]); err != nil {
		return err
	}
	m.pc = u.next
	return nil
}

func execStIndInc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	p := m.RegPair(u.s)
	if err := m.storeByte(p, m.data[u.d]); err != nil {
		return err
	}
	m.SetRegPair(u.s, p+1)
	m.pc = u.next
	return nil
}

func execStIndDec(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	p := m.RegPair(u.s) - 1
	if err := m.storeByte(p, m.data[u.d]); err != nil {
		return err
	}
	m.SetRegPair(u.s, p)
	m.pc = u.next
	return nil
}

func execStd(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	if err := m.storeByte(m.RegPair(u.s)+u.a, m.data[u.d]); err != nil {
		return err
	}
	m.pc = u.next
	return nil
}

func execPush(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.pushByte(m.data[u.d])
	if m.fault != nil {
		return m.fault
	}
	m.pc = u.next
	return nil
}

func execPop(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.popByte()
	if m.fault != nil {
		return m.fault
	}
	m.pc = u.next
	return nil
}

// ---- program-memory loads ----

func execLpm(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[0] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
	m.pc = u.next
	return nil
}

func execLpmZ(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	m.data[u.d] = m.flashByte(uint32(m.RegPair(avr.RegZ)))
	m.pc = u.next
	return nil
}

func execLpmZInc(m *Machine, u *uop) error {
	m.cycle += uint64(u.cycles)
	z := m.RegPair(avr.RegZ)
	m.data[u.d] = m.flashByte(uint32(z))
	m.SetRegPair(avr.RegZ, z+1)
	m.pc = u.next
	return nil
}

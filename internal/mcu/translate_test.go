package mcu

import (
	"bytes"
	"testing"

	"repro/internal/avr/asm"
)

// runMode runs identitySrc with the given translation threshold (-1 = off,
// 1 = every block fuses on first landing) or fully stepwise, and returns the
// finished machine.
func runIdentityMode(t *testing.T, stepwise bool, threshold int) *Machine {
	t.Helper()
	m := load(t, identitySrc)
	m.SetStepwise(stepwise)
	m.SetTranslation(threshold)
	runUntilBreak(t, m, 1_000_000)
	return m
}

// requireSameState asserts full architectural-state identity between two
// finished machines: cycles, retired instructions, PC, SP, SREG, and every
// byte of data memory.
func requireSameState(t *testing.T, name string, got, want *Machine) {
	t.Helper()
	if got.Cycles() != want.Cycles() {
		t.Errorf("%s: cycles %d, want %d", name, got.Cycles(), want.Cycles())
	}
	if got.Instructions() != want.Instructions() {
		t.Errorf("%s: instructions %d, want %d", name, got.Instructions(), want.Instructions())
	}
	if got.PC() != want.PC() {
		t.Errorf("%s: pc %#x, want %#x", name, got.PC(), want.PC())
	}
	if got.SP() != want.SP() {
		t.Errorf("%s: sp %#x, want %#x", name, got.SP(), want.SP())
	}
	if got.SREG() != want.SREG() {
		t.Errorf("%s: sreg %08b, want %08b", name, got.SREG(), want.SREG())
	}
	if got.data != want.data {
		for i := range got.data {
			if got.data[i] != want.data[i] {
				t.Errorf("%s: data[%#04x] = %#02x, want %#02x", name, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestTranslatedIdentity runs the identity program through the checked Step
// path, the per-op fast loop (translation off), and the fused block path
// (threshold 1), and requires bit-identical architectural state from all
// three — and that the fused run actually dispatched blocks.
func TestTranslatedIdentity(t *testing.T) {
	slow := runIdentityMode(t, true, -1)
	fast := runIdentityMode(t, false, -1)
	fused := runIdentityMode(t, false, 1)
	requireSameState(t, "fast-vs-stepwise", fast, slow)
	requireSameState(t, "fused-vs-stepwise", fused, slow)
	st := fused.TranslationStats()
	if st.Built == 0 || st.FusedDispatches == 0 || st.FusedInsts == 0 {
		t.Fatalf("fused run dispatched no blocks: %+v", st)
	}
	if off := fast.TranslationStats(); off != (TranslationStats{}) {
		t.Errorf("translation-off run reported stats %+v, want zero", off)
	}
}

// TestBlockInvalidationSecondWord pins the block-cache analogue of the
// micro-op base-1 invalidation rule: a translated block fuses a two-word
// LDS/STS with its operand address baked in, so patching only the operand
// word (which overlaps the block's [leader, end) span, not its leader) must
// kill the block. Without overlap invalidation the stale fused address would
// survive the patch — the uop cache is rebuilt, but the block would never
// consult it.
func TestBlockInvalidationSecondWord(t *testing.T) {
	t.Run("lds", func(t *testing.T) {
		m := load(t, `
main:
    lds r16, 0x0200
    break
`)
		m.SetTranslation(1)
		m.Poke(0x0200, 11)
		m.Poke(0x0204, 22)
		m.SetSP(0x10FF)
		runUntilBreak(t, m, 100_000)
		if got := m.Reg(16); got != 11 {
			t.Fatalf("first run: r16 = %d, want 11", got)
		}
		if st := m.TranslationStats(); st.FusedDispatches == 0 {
			t.Fatalf("first run executed no fused blocks: %+v", st)
		}
		// Patch only the operand word (flash word 1) to point at 0x0204.
		if err := m.LoadFlash(1, []uint16{0x0204}); err != nil {
			t.Fatal(err)
		}
		if st := m.TranslationStats(); st.Invalidations == 0 {
			t.Fatalf("second-word patch invalidated no blocks: %+v", st)
		}
		reRun(t, m)
		if got := m.Reg(16); got != 22 {
			t.Fatalf("after second-word patch: r16 = %d, want 22 (stale fused operand)", got)
		}
	})

	t.Run("sts", func(t *testing.T) {
		m := load(t, `
main:
    ldi r16, 77
    sts 0x0200, r16
    break
`)
		m.SetTranslation(1)
		m.SetSP(0x10FF)
		runUntilBreak(t, m, 100_000)
		if got := m.Peek(0x0200); got != 77 {
			t.Fatalf("first run: [0x0200] = %d, want 77", got)
		}
		// ldi is one word, so the STS operand is flash word 2.
		if err := m.LoadFlash(2, []uint16{0x0204}); err != nil {
			t.Fatal(err)
		}
		reRun(t, m)
		if got := m.Peek(0x0204); got != 77 {
			t.Fatalf("after second-word patch: [0x0204] = %d, want 77 (stale fused operand)", got)
		}
	})
}

// TestAdoptImageDropsTranslatedBlocks extends the stale-pointer regression
// coverage to the block cache: a machine that translated blocks against its
// own image and then adopts another machine's image must not execute the old
// image's fused blocks. (The shared uop cache is swapped by AdoptImage; the
// private block cache must be flushed.)
func TestAdoptImageDropsTranslatedBlocks(t *testing.T) {
	child := load(t, `
main:
    ldi r16, 111
    ldi r17, 1
    break
`)
	child.SetTranslation(1)
	child.SetSP(0x10FF)
	runUntilBreak(t, child, 100_000)
	if got := child.Reg(16); got != 111 {
		t.Fatalf("first run: r16 = %d, want 111", got)
	}
	if st := child.TranslationStats(); st.Blocks == 0 {
		t.Fatalf("first run translated no blocks: %+v", st)
	}

	parent := load(t, `
main:
    ldi r16, 222
    ldi r17, 1
    break
`)
	child.AdoptImage(parent)
	if st := child.TranslationStats(); st.Blocks != 0 {
		t.Fatalf("AdoptImage left %d stale blocks live", st.Blocks)
	}
	child.Reset()
	child.SetTranslation(1)
	child.SetSP(0x10FF)
	runUntilBreak(t, child, 100_000)
	if got := child.Reg(16); got != 222 {
		t.Fatalf("after AdoptImage: r16 = %d, want 222 (stale fused block)", got)
	}
}

// TestRestoreStateDropsTranslatedBlocks: the block cache is derived state. A
// restore target that already translated blocks (against a hash-identical
// image, so they would even be usable) must still drop and rebuild them —
// and the restored continuation must match the source machine's, fused
// against per-op.
func TestRestoreStateDropsTranslatedBlocks(t *testing.T) {
	src := load(t, stateWorkSrc)
	src.SetTranslation(1)
	if err := src.Run(5_000); err != nil {
		t.Fatal(err)
	}
	st, err := src.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	wantUART, _, wantCycles, wantInsts := finishWork(t, src)

	target := load(t, stateWorkSrc)
	target.SetTranslation(1)
	finishWork(t, target) // populate the block cache with a full prior run
	if ts := target.TranslationStats(); ts.Blocks == 0 {
		t.Fatalf("prior run translated no blocks: %+v", ts)
	}
	if err := target.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if ts := target.TranslationStats(); ts.Blocks != 0 {
		t.Fatalf("RestoreState left %d blocks live", ts.Blocks)
	}
	target.ClearFault()
	gotUART, _, gotCycles, gotInsts := finishWork(t, target)
	if !bytes.Equal(gotUART, wantUART) || gotCycles != wantCycles || gotInsts != wantInsts {
		t.Errorf("restored continuation = %q/%d cycles/%d insts, want %q/%d/%d",
			gotUART, gotCycles, gotInsts, wantUART, wantCycles, wantInsts)
	}
}

// fuzzPatchSrc is the self-invalidation workload: a hot ALU/memory loop long
// enough that threshold-1 translation fuses it, with stack and store traffic
// so patched words can land inside fused bodies, on operand words, and on
// terminators alike.
const fuzzPatchSrc = `
main:
    ldi r16, lo8(0x10FF)
    out SPL, r16
    ldi r16, hi8(0x10FF)
    out SPH, r16
    ldi r24, 150
    clr r20
    clr r21
loop:
    mov r18, r24
    lsr r18
    add r20, r18
    adc r21, r1
    eor r18, r20
    push r18
    pop r19
    sts 0x0200, r20
    lds r23, 0x0200
    sbrs r24, 0
    inc r22
    dec r24
    brne loop
    break
`

// FuzzBlockInvalidation writes a random flash word mid-run and requires that
// fused execution (threshold 1) never diverges from the checked interpreter:
// both see the patch at the same cycle boundary, both re-decode it, and both
// finish in bit-identical state (or fail with the same fault at the same
// point, when the patch corrupts the program).
func FuzzBlockInvalidation(f *testing.F) {
	p, err := asm.Assemble("fuzz-patch", fuzzPatchSrc)
	if err != nil {
		f.Fatal(err)
	}
	codeLen := uint32(len(p.Words))

	f.Add(uint32(8), uint16(0x0000), uint32(500))  // NOP over a body op
	f.Add(uint32(15), uint16(0x0204), uint32(800)) // LDS operand word
	f.Add(uint32(18), uint16(0xF7F1), uint32(300)) // rewrite the loop branch
	f.Add(uint32(9), uint16(0x9508), uint32(1000)) // RET into the loop body

	f.Fuzz(func(t *testing.T, word uint32, val uint16, patchAt uint32) {
		word %= codeLen
		// Stop both machines at the same mid-run cycle boundary, patch the
		// same word, and run to completion.
		patchCycle := 100 + uint64(patchAt%5000)
		run := func(fused bool) (*Machine, error) {
			m := New()
			if err := m.LoadFlash(0, p.Words); err != nil {
				t.Fatal(err)
			}
			if fused {
				m.SetTranslation(1)
			} else {
				m.SetTranslation(-1)
				m.SetStepwise(true)
			}
			m.SetSP(0x10FF)
			if err := m.Run(patchCycle); err != nil {
				return m, err
			}
			if err := m.LoadFlash(word, []uint16{val}); err != nil {
				t.Fatal(err)
			}
			return m, m.Run(100_000)
		}
		checked, errC := run(false)
		fused, errF := run(true)
		if (errC == nil) != (errF == nil) {
			t.Fatalf("divergent outcome: checked err=%v, fused err=%v", errC, errF)
		}
		if errC != nil && errC.Error() != errF.Error() {
			t.Fatalf("divergent fault: checked %v, fused %v", errC, errF)
		}
		requireSameState(t, "fused-vs-checked", fused, checked)
	})
}

package mcu

import (
	"testing"

	"repro/internal/avr/asm"
)

func samplerMachine(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	if err := m.LoadFlash(0, p.Words); err != nil {
		t.Fatal(err)
	}
	m.SetSP(0x10FF)
	return m
}

// trapLoopSrc is an ALU loop punctuated by a KTRAP, like kernel-rewritten
// code: each trap is a checked uop, so the fast loop breaks there and the
// outer RunUntil loop — where the sampler check lives — runs regularly.
const trapLoopSrc = `
main:
    ldi r16, 1
loop:
    add r18, r16
    adc r19, r16
    eor r20, r18
    dec r22
    ktrap 7
    rjmp loop
`

// The fast loop runs uninterrupted between checked uops (KTRAPs here, as in
// kernel-rewritten code), so sampling quantizes to those boundaries; with
// the checked Step path (stepwise) it fires at instruction granularity.
// Both must see boundaries exactly once, stamped with the boundary cycle.
func TestSamplerCadence(t *testing.T) {
	for _, stepwise := range []bool{false, true} {
		m := samplerMachine(t, trapLoopSrc)
		m.SetTrapHandler(func(mm *Machine, id uint16) error {
			mm.SetPC(mm.PC() + 2)
			mm.AddCycles(3)
			return nil
		})
		m.SetStepwise(stepwise)
		var got []uint64
		var fired []uint64
		m.SetSampler(1000, func(at uint64) {
			got = append(got, at)
			fired = append(fired, m.Cycles())
		})
		if err := m.RunUntil(10_500); err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("stepwise=%v: sampler never fired", stepwise)
		}
		for i, at := range got {
			if at%1000 != 0 {
				t.Fatalf("stepwise=%v: sample %d at %d is not a boundary", stepwise, i, at)
			}
			if i > 0 && at <= got[i-1] {
				t.Fatalf("stepwise=%v: boundaries not strictly increasing: %v", stepwise, got)
			}
			if fired[i] < at {
				t.Fatalf("stepwise=%v: fired at cycle %d before boundary %d", stepwise, fired[i], at)
			}
		}
	}
}

// Stepwise execution checks every instruction, so with a small interval it
// must fire on every boundary in order: 1000, 2000, 3000, ...
func TestSamplerStepwiseHitsEveryBoundary(t *testing.T) {
	m := samplerMachine(t, hotLoopSrc)
	m.SetStepwise(true)
	var got []uint64
	m.SetSampler(1000, func(at uint64) { got = append(got, at) })
	if err := m.RunUntil(5_100); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1000, 2000, 3000, 4000, 5000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// After a long idle stretch (sleep fast-forwards the clock) only the latest
// crossed boundary fires — no catch-up flood.
func TestSamplerCollapsesAfterSleep(t *testing.T) {
	m := samplerMachine(t, hotLoopSrc)
	var got []uint64
	m.SetSampler(1000, func(at uint64) { got = append(got, at) })
	m.AddIdleCycles(10_400) // clock jumps over ten boundaries at once
	if err := m.RunUntil(10_500); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("sampler never fired")
	}
	if got[0] != 10_000 {
		t.Fatalf("first sample at %d, want the latest crossed boundary 10000 (got %v)", got[0], got)
	}
	if len(got) != 1 {
		t.Fatalf("catch-up flood: %v", got)
	}
}

func TestSamplerDetach(t *testing.T) {
	m := samplerMachine(t, hotLoopSrc)
	fired := 0
	m.SetSampler(1000, func(uint64) { fired++ })
	m.SetSampler(0, nil)
	if err := m.RunUntil(5_000); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("detached sampler fired %d times", fired)
	}
	if m.sampleFn != nil || m.sampleEvery != 0 || m.sampleNext != 0 {
		t.Fatal("detach left sampler state armed")
	}
}

// A sampler must not perturb execution: cycles, instructions, and full
// machine state stay identical with and without one attached.
func TestSamplerDoesNotPerturbExecution(t *testing.T) {
	plain := samplerMachine(t, dispatchSrc)
	sampled := samplerMachine(t, dispatchSrc)
	sampled.SetSampler(512, func(uint64) {})
	const limit = 200_000
	if err := plain.RunUntil(limit); err != nil {
		t.Fatal(err)
	}
	if err := sampled.RunUntil(limit); err != nil {
		t.Fatal(err)
	}
	if plain.Cycles() != sampled.Cycles() || plain.Instructions() != sampled.Instructions() {
		t.Fatalf("sampler perturbed execution: %d/%d cycles, %d/%d insts",
			plain.Cycles(), sampled.Cycles(), plain.Instructions(), sampled.Instructions())
	}
	if plain.PC() != sampled.PC() || plain.SP() != sampled.SP() || plain.SREG() != sampled.SREG() {
		t.Fatal("sampler perturbed CPU state")
	}
	for a := 0; a < DataSize; a++ {
		if plain.data[a] != sampled.data[a] {
			t.Fatalf("sampler perturbed data memory at %#x", a)
		}
	}
}

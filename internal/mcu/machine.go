// Package mcu simulates an ATmega128L-class microcontroller — the MICA2
// mote's CPU — with cycle accounting faithful to the data sheet. It executes
// the AVR subset defined in internal/avr, models the mote devices the
// SenSmart evaluation needs (Timer0, the kernel-reserved Timer3, ADC, UART,
// a byte-timed radio), and exposes the hooks the SenSmart kernel runtime
// attaches to: a KTRAP handler and a per-task memory guard.
package mcu

import (
	"fmt"
	"sync"

	"repro/internal/avr"
	"repro/internal/energy"
	"repro/internal/trace"
)

// Memory geometry and clock rate of the simulated MICA2 node.
const (
	// FlashWords is the program memory size in 16-bit words (128 KB).
	FlashWords = 1 << 16
	// DataSize is the data address space: 32 registers + 224 I/O bytes +
	// 4 KB SRAM, addresses 0x0000..0x10FF.
	DataSize = 0x1100
	// SRAMBase is the first general-purpose SRAM address.
	SRAMBase = 0x0100
	// IOBase is the data-space address of I/O register 0.
	IOBase = 0x20
	// ClockHz is the MICA2 CPU clock (7.3728 MHz).
	ClockHz = 7372800
)

// Data-space addresses of the core registers.
const (
	addrSPL  = 0x5D
	addrSPH  = 0x5E
	addrSREG = 0x5F
)

// Interrupt vector word addresses (our simulated part's layout; 2 words per
// vector so a JMP fits).
const (
	VecReset    = 0
	VecTimer0   = 2
	VecADC      = 4
	VecUART     = 6
	VecRadioRx  = 8
	VecTableEnd = 10
)

// Interrupt source bits for the pending mask.
const (
	intTimer0 = 1 << iota
	intADC
	intUART
	intRadioRx
)

// TrapHandler is invoked when execution reaches a KTRAP instruction. The
// handler owns the machine during the call: it must set the next PC and
// charge any kernel cycles. Returning an error halts the machine.
type TrapHandler func(m *Machine, id uint16) error

// Machine is one simulated node. The zero value is not usable; call New.
type Machine struct {
	// flash is held behind a pointer so machines restored from a snapshot
	// can share the parent's immutable program image (AdoptImage).
	// flashShared marks a shared array: any writer copies it first.
	// adoptMu serializes AdoptImage calls against this machine as the
	// parent, so many children can fan out of one warm parent concurrently.
	flash       *[FlashWords]uint16
	flashShared bool
	adoptMu     sync.Mutex

	data  [DataSize]byte
	pc    uint32
	cycle uint64
	idle  uint64 // cycles spent sleeping, for CPU-utilization accounting

	sleeping bool
	fault    *Fault
	pending  uint8  // pending interrupt sources
	insts    uint64 // instructions executed since reset (host-MIPS metric)

	// stepwise forces Run/RunUntil onto the fully-checked per-instruction
	// Step path, disabling the event-horizon fast loop (bench comparator).
	stepwise bool

	trap TrapHandler

	// rec, when non-nil, receives cycle-stamped machine events (interrupt
	// delivery, idle advances, halts, budget expiry). The nil state is the
	// disabled state: every emission site is a single pointer comparison.
	rec *trace.Recorder

	// Profiler hooks (internal/profile), nil-disabled like rec: with no
	// profiler attached every site is one pointer comparison. profInstr
	// receives each executed instruction's fetch PC, the post-execution SP,
	// and the cycle delta; profIdle and profIntr receive idle advances and
	// interrupt-delivery charges.
	profInstr func(pc uint32, sp uint16, cycles uint64)
	profIdle  func(n uint64)
	profIntr  func(n uint64)

	// sampleFn, when non-nil, fires at sampling boundaries of the telemetry
	// layer: the first execution point at or after each multiple of
	// sampleEvery. Nil-disabled like rec and the profiler hooks, and checked
	// only in RunUntil's outer loop — never inside the fast loop — so an
	// attached sampler still quantizes to trap/horizon granularity and a
	// detached one costs one pointer comparison per horizon.
	sampleFn    func(at uint64)
	sampleEvery uint64
	sampleNext  uint64

	// injectFn, when non-nil, is an armed fault-injection hook: it fires at
	// the first checked Step whose clock has reached injectAt, then disarms
	// itself (the hook may re-arm from inside the callback to chain
	// injections). Nil-disabled like rec and the profiler hooks, and checked
	// only on the Step path — an armed injector forces Run/RunUntil off the
	// event-horizon fast loop until it fires, and a disarmed one costs one
	// pointer comparison per horizon.
	injectFn func(*Machine)
	injectAt uint64

	// memWatch, when non-nil, observes successful native SRAM accesses
	// (loads, stores, pushes, pops) with the physical address; the kernel's
	// watchpoint adapter translates to logical addresses. Kernel-mediated
	// accesses (ReadBus/WriteBus) are reported by the kernel itself.
	memWatch func(pc uint32, addr uint16, write bool)

	// Native-access memory guard (the kernel's isolation backstop for
	// unpatched SP-relative accesses). Zero values disable it.
	guardLo, guardHi uint16
	guardOn          bool

	dev devices

	// Micro-op cache: code is immutable while running (the paper's
	// no-self-modification assumption), so each flash word predecodes once
	// into an executable uop (see dispatch.go). An entry whose in.Op is
	// OpInvalid (the zero value) has not been built or was invalidated —
	// the validity check rides on the same cache line as the entry itself.
	// The fixed-size array lets a pc & (FlashWords-1) index elide its
	// bounds check, and the pointer-free uop keeps the 64 Ki entries out
	// of garbage-collector scans.
	uops *[FlashWords]uop
	// uopsShared marks a micro-op cache shared with another machine via
	// AdoptImage: a machine that needs to fill or flush entries copies (or
	// reallocates) the array first, so concurrently running machines never
	// write a shared array.
	uopsShared bool
	codeEnd    uint32 // highest loaded word + 1, for diagnostics

	// xl, when non-nil, is the basic-block superinstruction translator
	// (translate.go): hot straight-line runs between control transfers
	// execute as fused blocks with one horizon check per block. Only the
	// event-horizon fast loop dispatches blocks — the checked Step path
	// never does — and the block cache is derived state, invalidated on
	// the same paths as the micro-op cache. Nil disables translation.
	xl *translator

	// meter, when non-nil, is the energy charge ledger (internal/energy).
	// Nil-disabled like rec and the profiler hooks, and fed only at device
	// power-state transitions (writeIO span starts, prescaler changes,
	// sleep advances) — never on the per-instruction path — so an attached
	// meter adds no work to the fast loop and a detached one costs one
	// pointer comparison per transition.
	meter *energy.Meter

	// ckptFn, when non-nil, is an armed checkpoint hook: it fires at the
	// first RunUntil outer-loop boundary whose clock has reached ckptAt,
	// then disarms itself (the hook may re-arm from inside the callback to
	// chain checkpoints). Unlike the injector it is never checked on the
	// Step path and never forces execution off the event-horizon fast loop,
	// so arming it cannot perturb the run's trajectory — the firing point
	// quantizes to the same loop boundaries an attached sampler sees.
	ckptFn func(at uint64)
	ckptAt uint64
}

// New returns a reset machine with empty flash.
func New() *Machine {
	m := &Machine{
		flash: new([FlashWords]uint16),
		uops:  new([FlashWords]uop),
		xl:    newTranslator(DefaultTranslationThreshold),
	}
	m.Reset()
	return m
}

// ownFlash copies a shared flash array before the first write to it.
func (m *Machine) ownFlash() {
	if m.flashShared {
		f := new([FlashWords]uint16)
		*f = *m.flash
		m.flash = f
		m.flashShared = false
	}
}

// ownUops copies a shared micro-op cache before the first write to it.
func (m *Machine) ownUops() {
	if m.uopsShared {
		u := new([FlashWords]uop)
		*u = *m.uops
		m.uops = u
		m.uopsShared = false
	}
}

// AdoptImage shares parent's flash and predecoded micro-op cache with m,
// copy-on-write: both machines keep executing from the same arrays until one
// of them writes (LoadFlash, a cache fill, SetTrapHandler), at which point
// the writer copies its own private array first. The parent must be
// quiescent (not inside Run/Step), but many children may adopt the same
// parent from different goroutines — adopters serialize on the parent's
// mutex, and after adoption the shared arrays are only ever read. The caller
// is responsible for m's flash contents matching parent's — RestoreState's
// image hash enforces this on the snapshot path.
func (m *Machine) AdoptImage(parent *Machine) {
	parent.adoptMu.Lock()
	defer parent.adoptMu.Unlock()
	m.flash = parent.flash
	m.uops = parent.uops
	m.codeEnd = parent.codeEnd
	m.flashShared, m.uopsShared = true, true
	parent.flashShared, parent.uopsShared = true, true
	// Translated blocks fuse decoded flash contents; any the adopter built
	// against its previous image are stale now. The parent's blocks stay:
	// its image is unchanged (and the translator is never shared).
	if m.xl != nil {
		m.xl.reset()
	}
}

// SetCheckpoint arms (or, with nil fn, disarms) the checkpoint hook: fn runs
// once, with the nominal arming cycle, at the first RunUntil outer-loop
// iteration whose clock has reached at. The hook disarms itself before
// firing, so fn may call SetCheckpoint again to chain a later checkpoint.
// The hook is deliberately not a per-Step check: it fires only at run-loop
// boundaries (after device horizons, traps, or checked ops), so arming it
// never changes which execution path the machine takes.
func (m *Machine) SetCheckpoint(at uint64, fn func(at uint64)) {
	m.ckptFn = fn
	m.ckptAt = at
	if fn == nil {
		m.ckptAt = 0
	}
}

// Reset clears CPU and device state but leaves flash contents alone.
func (m *Machine) Reset() {
	m.data = [DataSize]byte{}
	m.pc = 0
	m.cycle = 0
	m.idle = 0
	m.insts = 0
	m.sleeping = false
	m.fault = nil
	m.pending = 0
	m.guardOn = false
	m.injectFn = nil
	m.injectAt = 0
	m.dev.reset()
	m.SetSP(DataSize - 1)
}

// LoadFlash copies words into program memory starting at word address base.
func (m *Machine) LoadFlash(base uint32, words []uint16) error {
	if int(base)+len(words) > FlashWords {
		return fmt.Errorf("mcu: flash overflow: base %#x + %d words", base, len(words))
	}
	m.ownFlash()
	m.ownUops()
	copy(m.flash[base:], words)
	clear(m.uops[base : int(base)+len(words)])
	// A cached 32-bit instruction starting at base-1 holds the old word at
	// base as its operand word; invalidate it so the patched word is seen.
	if base > 0 {
		m.uops[base-1] = uop{}
	}
	// Translated blocks fuse decoded words the same way; kill every block
	// overlapping the patched range (a block's [leader, end) span covers
	// operand words, so the base-1 case above is covered by overlap).
	if m.xl != nil {
		m.xl.invalidate(base, base+uint32(len(words)))
	}
	if end := base + uint32(len(words)); end > m.codeEnd {
		m.codeEnd = end
	}
	return nil
}

// FlashWord returns the program-memory word at addr.
func (m *Machine) FlashWord(addr uint32) uint16 { return m.flash[addr&(FlashWords-1)] }

// SetTrapHandler installs the kernel's KTRAP entry point. Without a handler
// BREAK decodes as plain BREAK; with one, BREAK plus its following id word
// decodes as KTRAP (the micro-op cache is flushed to apply the change).
func (m *Machine) SetTrapHandler(h TrapHandler) {
	m.trap = h
	if m.xl != nil {
		// Blocks fused under the old KTRAP decode rule are stale.
		m.xl.reset()
	}
	if m.uopsShared {
		// The flush would clobber the other sharer's cache; allocate a
		// fresh zeroed array instead of copying one we are about to clear.
		m.uops = new([FlashWords]uop)
		m.uopsShared = false
		return
	}
	clear(m.uops[:])
}

// SetRecorder attaches (or, with nil, detaches) the trace recorder the
// machine stamps events into. The kernel shares one recorder between the
// machine and itself so the merged stream is globally cycle-ordered.
func (m *Machine) SetRecorder(r *trace.Recorder) { m.rec = r }

// SetEnergyMeter attaches (or, with nil, detaches) the energy charge
// ledger. Attach before the first cycle: the meter derives CPU-active
// cycles from the clock minus its accrued sleep cycles, so a meter that
// missed part of the run would over-attribute active energy.
func (m *Machine) SetEnergyMeter(e *energy.Meter) { m.meter = e }

// EnergyMeter returns the attached energy meter, or nil.
func (m *Machine) EnergyMeter() *energy.Meter { return m.meter }

// powerEvent emits a KindPower transition when both a recorder and a meter
// are attached (unmetered traced runs keep byte-identical streams).
func (m *Machine) powerEvent(device uint64, busy bool) {
	if m.rec == nil || m.meter == nil {
		return
	}
	var b uint64
	if busy {
		b = 1
	}
	m.rec.Emit(trace.Event{Cycle: m.cycle, Kind: trace.KindPower, Task: -1, Arg: device, Arg2: b})
}

// Recorder returns the attached trace recorder, or nil.
func (m *Machine) Recorder() *trace.Recorder { return m.rec }

// ProfileHooks bundles the profiler callbacks SetProfileHooks installs. Any
// field may be nil; nil fields cost one pointer comparison at their site.
type ProfileHooks struct {
	// Instr is called once per executed instruction with the fetch PC, the
	// stack pointer after execution, and the cycles the instruction
	// consumed. For a KTRAP it is called before dispatch with the 1-cycle
	// fetch charge, so the charge lands on the task that reached the trap
	// even when the handler switches tasks.
	Instr func(pc uint32, sp uint16, cycles uint64)
	// Idle is called for each idle advance (AddIdleCycles / sleep).
	Idle func(n uint64)
	// Interrupt is called for each interrupt delivery's cycle charge.
	Interrupt func(n uint64)
}

// SetProfileHooks installs (or, with zero-value hooks, removes) the profiler
// callbacks.
func (m *Machine) SetProfileHooks(h ProfileHooks) {
	m.profInstr = h.Instr
	m.profIdle = h.Idle
	m.profIntr = h.Interrupt
}

// SetSampler installs (or, with nil fn or zero interval, removes) the
// telemetry sampling hook. fn fires with the nominal boundary cycle `at`
// (a multiple of every) at the first RunUntil outer-loop iteration whose
// clock has reached it; after a long uninterrupted stretch (sleep, a wide
// device horizon) only the latest crossed boundary fires, so samplers see
// at most one sample per interval and never a catch-up flood. The clock is
// simulated, so firing points are deterministic across runs and hosts.
func (m *Machine) SetSampler(every uint64, fn func(at uint64)) {
	if fn == nil || every == 0 {
		m.sampleFn, m.sampleEvery, m.sampleNext = nil, 0, 0
		return
	}
	m.sampleFn = fn
	m.sampleEvery = every
	m.sampleNext = (m.cycle/every + 1) * every
}

// fireSample invokes the sampling hook for the latest boundary the clock has
// crossed and schedules the next one.
func (m *Machine) fireSample() {
	next := (m.cycle/m.sampleEvery + 1) * m.sampleEvery
	m.sampleNext = next
	m.sampleFn(next - m.sampleEvery)
}

// SetInjector arms (or, with nil fn, disarms) the fault-injection hook: fn
// runs once, at the first checked Step whose cycle clock has reached at,
// with the machine stopped on an instruction boundary (after device sync,
// before interrupt delivery and dispatch). The hook disarms itself before
// firing, so fn may call SetInjector again to chain a later injection.
// While armed, Run/RunUntil take the fully-checked Step path; disarmed, the
// hook costs one pointer comparison per run-loop horizon.
func (m *Machine) SetInjector(at uint64, fn func(*Machine)) {
	m.injectFn = fn
	m.injectAt = at
	if fn == nil {
		m.injectAt = 0
	}
}

// SetMemWatch installs (or, with nil, removes) the native-access watchpoint
// observer. It fires after a successful SRAM load/store/push/pop with the
// physical address and the instruction's fetch PC.
func (m *Machine) SetMemWatch(f func(pc uint32, addr uint16, write bool)) { m.memWatch = f }

// SetGuard arms the native-store guard: SP-relative and other unpatched SRAM
// accesses outside [lo, hi) fault. The kernel re-arms this per context
// switch.
func (m *Machine) SetGuard(lo, hi uint16) { m.guardLo, m.guardHi, m.guardOn = lo, hi, true }

// ClearGuard disables the native-store guard.
func (m *Machine) ClearGuard() { m.guardOn = false }

// PC returns the current program counter (word address).
func (m *Machine) PC() uint32 { return m.pc }

// SetPC sets the program counter (word address).
func (m *Machine) SetPC(pc uint32) { m.pc = pc & (FlashWords - 1) }

// Cycles returns the simulated cycle count since reset.
func (m *Machine) Cycles() uint64 { return m.cycle }

// IdleCycles returns cycles spent asleep, for CPU-utilization accounting.
func (m *Machine) IdleCycles() uint64 { return m.idle }

// AddCycles charges n extra cycles (kernel service overhead).
func (m *Machine) AddCycles(n uint64) { m.cycle += n }

// AddIdleCycles advances time by n cycles marked as idle (kernel idle loop).
func (m *Machine) AddIdleCycles(n uint64) {
	m.cycle += n
	m.idle += n
	if m.rec != nil && n > 0 {
		m.rec.Emit(trace.Event{Cycle: m.cycle, Kind: trace.KindIdle, Task: -1, Arg: n})
	}
	if m.profIdle != nil && n > 0 {
		m.profIdle(n)
	}
	if m.meter != nil {
		m.meter.SleepCycles(n)
	}
}

// Reg returns register r0..r31.
func (m *Machine) Reg(i uint8) byte { return m.data[i&31] }

// SetReg writes register r0..r31.
func (m *Machine) SetReg(i uint8, v byte) { m.data[i&31] = v }

// RegPair returns the 16-bit pair starting at even register i (X/Y/Z).
func (m *Machine) RegPair(i uint8) uint16 {
	return uint16(m.data[i]) | uint16(m.data[i+1])<<8
}

// SetRegPair writes the 16-bit pair starting at even register i.
func (m *Machine) SetRegPair(i uint8, v uint16) {
	m.data[i] = byte(v)
	m.data[i+1] = byte(v >> 8)
}

// SP returns the hardware stack pointer.
func (m *Machine) SP() uint16 {
	return uint16(m.data[addrSPL]) | uint16(m.data[addrSPH])<<8
}

// SetSP writes the hardware stack pointer.
func (m *Machine) SetSP(sp uint16) {
	m.data[addrSPL] = byte(sp)
	m.data[addrSPH] = byte(sp >> 8)
}

// SREG returns the status register.
func (m *Machine) SREG() byte { return m.data[addrSREG] }

// SetSREG writes the status register.
func (m *Machine) SetSREG(v byte) { m.data[addrSREG] = v }

// Peek reads data memory without device side effects or guard checks
// (kernel/test access).
func (m *Machine) Peek(addr uint16) byte { return m.data[addr%DataSize] }

// Poke writes data memory without device side effects or guard checks
// (kernel/test access).
func (m *Machine) Poke(addr uint16, v byte) { m.data[addr%DataSize] = v }

// CopyData moves n bytes of data memory from src to dst, handling overlap
// (the kernel's stack-relocation memmove).
func (m *Machine) CopyData(dst, src, n uint16) {
	copy(m.data[dst:int(dst)+int(n)], m.data[src:int(src)+int(n)])
}

// Halt stops the machine with FaultHalt and the given note (e.g. "workload
// complete"). Step returns the fault from then on.
func (m *Machine) Halt(note string) {
	if m.fault == nil {
		m.fault = &Fault{Kind: FaultHalt, PC: m.pc, Note: note}
		if m.rec != nil {
			m.rec.Emit(trace.Event{Cycle: m.cycle, Kind: trace.KindHalt, Task: -1, Detail: note})
		}
	}
}

// Halted reports whether the machine has stopped, and why.
func (m *Machine) Halted() (bool, *Fault) { return m.fault != nil, m.fault }

// faultf records and returns a fault.
func (m *Machine) faultf(kind FaultKind, addr uint16, note string) error {
	m.fault = &Fault{Kind: kind, PC: m.pc, Addr: addr, Note: note}
	return m.fault
}

// fetchUop returns the micro-op cache entry at word address pc, predecoding
// the flash word on first execution.
func (m *Machine) fetchUop(pc uint32) (*uop, error) {
	pc &= FlashWords - 1
	if m.uops[pc].in.Op == avr.OpInvalid {
		if err := m.buildUop(pc); err != nil {
			return nil, err
		}
	}
	return &m.uops[pc], nil
}

// fetch returns the decoded instruction at word address pc.
func (m *Machine) fetch(pc uint32) (avr.Inst, error) {
	u, err := m.fetchUop(pc)
	if err != nil {
		return avr.Inst{}, err
	}
	return u.in, nil
}

// InstAt decodes (with caching) the instruction at word address pc. It is
// the public variant of fetch for the kernel's branch-trampoline logic.
func (m *Machine) InstAt(pc uint32) (avr.Inst, error) { return m.fetch(pc) }

// Run executes until the machine faults/halts or until the cycle count
// reaches limit (0 = no limit). It returns nil when the limit stopped it.
func (m *Machine) Run(limit uint64) error {
	if err := m.RunUntil(limit); err != nil {
		return err
	}
	if m.rec != nil {
		m.rec.Emit(trace.Event{Cycle: m.cycle, Kind: trace.KindBudget, Task: -1, Arg: limit})
	}
	return nil
}

// RunUntil is Run without the budget-expiry trace event (the kernel's run
// loop emits its own). It executes the event-horizon fast loop whenever no
// per-step check could fire: no fault, not sleeping, no pending interrupt,
// and no profiler or recorder hook attached. Inside a horizon — up to the
// next device event or the cycle limit — instructions dispatch straight
// through the micro-op cache with no per-step checks at all; KTRAP and SLEEP
// entries are marked checked and run through one Step so trap handlers and
// the sleep path see exactly the per-Step machine state they always did.
// Everything else (traced, profiled, stepwise, or interrupt-laden execution)
// falls back to the fully-checked Step, whose semantics are untouched.
func (m *Machine) RunUntil(limit uint64) error {
	for limit == 0 || m.cycle < limit {
		if m.sampleFn != nil && m.cycle >= m.sampleNext {
			m.fireSample()
		}
		if m.ckptFn != nil && m.cycle >= m.ckptAt {
			// Disarm before firing so the hook can chain checkpoints by
			// re-arming from inside the callback.
			fn, at := m.ckptFn, m.ckptAt
			m.ckptFn = nil
			fn(at)
		}
		if m.fault != nil || m.sleeping || m.pending != 0 ||
			m.stepwise || m.profInstr != nil || m.rec != nil || m.injectFn != nil {
			if err := m.Step(); err != nil {
				return err
			}
			continue
		}
		if m.cycle >= m.dev.nextEvent {
			m.syncDevices()
			continue
		}
		// Horizon entry is a block-leader point (trap return, post-sleep,
		// post-interrupt resume): give the translator a chance to dispatch
		// fused blocks before the per-op loop. The inline idx probe skips
		// the call for leaders already proven untranslatable (syscall
		// wrappers starting at a KTRAP, lone branches) — common landing
		// points that would otherwise pay a function call per visit.
		// runTranslated only runs a block whose worst case fits strictly
		// inside the horizon and cycle budget, so afterwards the clock is
		// still short of both; the re-check is defensive.
		if m.xl != nil && m.xl.idx[m.pc&(FlashWords-1)] != xlDead {
			halt, err := m.runTranslated(limit)
			if err != nil {
				return err
			}
			if halt || m.cycle >= m.dev.nextEvent || (limit != 0 && m.cycle >= limit) {
				continue
			}
		}
		// Fast loop. Within the horizon nothing can set pending (syncDevices
		// only runs once cycle reaches nextEvent, and I/O side effects that
		// reschedule events re-check through dev.nextEvent below), so no
		// per-instruction interrupt or device check is needed. A checked uop
		// (KTRAP, SLEEP) executes exactly as Step would — the ladder Step
		// runs first is all no-ops here — but the loop breaks afterwards so
		// the fault/sleep/pending state the handler may have left behind is
		// re-examined before the next instruction.
		for {
			pc := m.pc & (FlashWords - 1)
			u := &m.uops[pc]
			if u.in.Op == avr.OpInvalid {
				if err := m.buildUop(pc); err != nil {
					return m.faultf(FaultBadInst, 0, err.Error())
				}
				// buildUop may have copied a shared cache out from under
				// us (copy-on-write); re-point at the live array.
				u = &m.uops[pc]
			}
			m.insts++
			// Direct calls for the hottest opcodes (measured over the kernel
			// benchmark suite these cover >95% of natively executed
			// instructions). A direct call is predictable and lets the
			// compiler inline the small handlers; everything else goes
			// through the dispatch table exactly as before.
			var err error
			switch u.in.Op {
			case avr.OpIn:
				err = execIn(m, u)
			case avr.OpSbrs:
				err = execSbrs(m, u)
			case avr.OpDec:
				err = execDec(m, u)
			case avr.OpAdd:
				err = execAdd(m, u)
			case avr.OpAdc:
				err = execAdc(m, u)
			case avr.OpLsr:
				err = execLsr(m, u)
			case avr.OpSbrc:
				err = execSbrc(m, u)
			case avr.OpLdi:
				err = execLdi(m, u)
			case avr.OpEor:
				err = execEor(m, u)
			case avr.OpBrbc:
				err = execBrbc(m, u)
			default:
				err = dispatch[byte(u.in.Op)](m, u)
			}
			if err != nil {
				return err
			}
			if u.checked || m.cycle >= m.dev.nextEvent || (limit != 0 && m.cycle >= limit) {
				break
			}
			// The PC after a control transfer is a basic-block leader;
			// dispatch translated blocks (counting the landing) before
			// falling back to per-op execution. The inline idx probe skips
			// the call when the landing is already known untranslatable.
			if u.ctl && m.xl != nil && m.xl.idx[m.pc&(FlashWords-1)] != xlDead {
				halt, err := m.runTranslated(limit)
				if err != nil {
					return err
				}
				if halt || m.cycle >= m.dev.nextEvent || (limit != 0 && m.cycle >= limit) {
					break
				}
			}
		}
	}
	return nil
}

// Step executes one instruction (or delivers one interrupt / sleeps).
func (m *Machine) Step() error {
	if m.fault != nil {
		return m.fault
	}
	if m.cycle >= m.dev.nextEvent {
		m.syncDevices()
	}
	if m.injectFn != nil && m.cycle >= m.injectAt {
		// Disarm before firing so the hook can chain a later injection by
		// re-arming from inside the callback.
		fn := m.injectFn
		m.injectFn = nil
		fn(m)
	}
	if m.pending != 0 && m.data[addrSREG]&flagI != 0 {
		m.deliverInterrupt()
		return nil
	}
	if m.sleeping {
		return m.advanceSleep()
	}
	u, err := m.fetchUop(m.pc)
	if err != nil {
		return m.faultf(FaultBadInst, 0, err.Error())
	}
	m.insts++
	fn := dispatch[byte(u.in.Op)]
	if m.profInstr == nil {
		return fn(m, u)
	}
	if u.in.Op == avr.OpKtrap {
		// The trap handler may switch tasks mid-exec; attribute the 1-cycle
		// KTRAP fetch to the task that reached the trap, before dispatch.
		// The kernel attributes the service's own charges itself.
		m.profInstr(m.pc, m.SP(), 1)
		return fn(m, u)
	}
	pc, before := m.pc, m.cycle
	err = fn(m, u)
	m.profInstr(pc, m.SP(), m.cycle-before)
	return err
}

// deliverInterrupt vectors to the highest-priority pending source.
func (m *Machine) deliverInterrupt() {
	var vec uint32
	switch {
	case m.pending&intTimer0 != 0:
		m.pending &^= intTimer0
		vec = VecTimer0
	case m.pending&intADC != 0:
		m.pending &^= intADC
		vec = VecADC
	case m.pending&intUART != 0:
		m.pending &^= intUART
		vec = VecUART
	default:
		m.pending &^= intRadioRx
		vec = VecRadioRx
	}
	m.sleeping = false
	m.pushWord(uint16(m.pc))
	m.data[addrSREG] &^= flagI
	m.pc = vec
	m.cycle += 4
	if m.profIntr != nil {
		m.profIntr(4)
	}
	if m.rec != nil {
		m.rec.Emit(trace.Event{Cycle: m.cycle, Kind: trace.KindInterrupt, Task: -1, Arg: uint64(vec)})
	}
}

// advanceSleep fast-forwards the clock to the next device event.
func (m *Machine) advanceSleep() error {
	next := m.dev.nextEvent
	if next == noEvent {
		return m.faultf(FaultDeadSleep, 0, "no device event scheduled")
	}
	if next > m.cycle {
		m.AddIdleCycles(next - m.cycle)
	}
	m.syncDevices()
	return nil
}

// Instructions returns the number of instructions executed since reset
// (interrupt deliveries and sleep advances excluded) — the numerator of the
// host-MIPS throughput metric.
func (m *Machine) Instructions() uint64 { return m.insts }

// SetStepwise forces Run and RunUntil onto the fully-checked per-instruction
// Step path, disabling the event-horizon fast loop. The benchmark harness
// uses it as the before/after comparator; both modes are cycle-identical.
func (m *Machine) SetStepwise(v bool) { m.stepwise = v }

// ClearFault clears a recorded fault so a supervising kernel can recover
// (e.g. grow a task's stack after a guard trip and retry the instruction;
// PC still points at the faulting instruction).
func (m *Machine) ClearFault() { m.fault = nil }

// Sleep puts the CPU into sleep mode, as the SLEEP instruction would. A
// supervising runtime that patches SLEEP out of application code uses this
// to re-enter the hardware sleep path after handling the trap.
func (m *Machine) Sleep() { m.sleeping = true }

// Wake clears sleep mode without delivering an interrupt — the supervising
// kernel's recovery path when a corrupted task executed a stray SLEEP and
// was terminated for it.
func (m *Machine) Wake() { m.sleeping = false }

// Energy model of the MICA2 node (CC1000 mote, 3 V supply): the ATmega128L
// draws ~8 mA active and ~15 µA in sleep mode. EnergyMilliJoules estimates
// the CPU energy consumed so far from the active/idle cycle split — the
// quantity the paper's introduction argues unpredictable latencies waste.
const (
	activeMilliAmps = 8.0
	sleepMilliAmps  = 0.015
	supplyVolts     = 3.0
)

// EnergyMilliJoules returns the estimated CPU energy spent since reset.
func (m *Machine) EnergyMilliJoules() float64 {
	active := float64(m.cycle-m.idle) / ClockHz
	idle := float64(m.idle) / ClockHz
	return (active*activeMilliAmps + idle*sleepMilliAmps) * supplyVolts
}

package mcu

import (
	"testing"

	"repro/internal/trace"
)

// TestMachineTraceEvents checks the machine-level emission sites: idle
// advances, halts, and budget exhaustion all stamp typed events with the
// post-advance cycle counter.
func TestMachineTraceEvents(t *testing.T) {
	m := load(t, `
main:
loop:
    rjmp loop
`)
	rec := trace.New()
	m.SetRecorder(rec)
	if m.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	start := m.Cycles()
	m.AddIdleCycles(100)
	m.AddIdleCycles(0) // no-op advances must not emit
	if err := m.Run(start + 150); err != nil {
		t.Fatal(err)
	}
	m.Halt("test stop")
	m.Halt("second halt is a no-op")

	var idle, budget, halt int
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindIdle:
			idle++
			if e.Arg != 100 || e.Task != -1 {
				t.Errorf("idle event = %+v, want Arg=100 Task=-1", e)
			}
			if e.Cycle != start+100 {
				t.Errorf("idle event stamped at %d, want post-advance %d", e.Cycle, start+100)
			}
		case trace.KindBudget:
			budget++
			if e.Arg != start+150 {
				t.Errorf("budget event Arg = %d, want limit %d", e.Arg, start+150)
			}
		case trace.KindHalt:
			halt++
			if e.Detail != "test stop" {
				t.Errorf("halt detail = %q, want first halt note", e.Detail)
			}
		}
	}
	if idle != 1 || budget != 1 || halt != 1 {
		t.Errorf("got %d idle / %d budget / %d halt events, want 1 each", idle, budget, halt)
	}
}

// TestMachineWithoutRecorderRuns guards the nil-recorder fast path: a
// machine with tracing disabled must behave identically.
func TestMachineWithoutRecorderRuns(t *testing.T) {
	m := load(t, `
main:
    ldi r16, 5
loop:
    dec r16
    brne loop
    break
`)
	runUntilBreak(t, m, 1_000)
	if m.Recorder() != nil {
		t.Error("recorder attached without SetRecorder")
	}
}

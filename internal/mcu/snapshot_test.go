package mcu

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

const uartEmitSrc = `
main:
    ldi r24, 'a'
    rcall putc
    ldi r24, 'b'
    rcall putc
    break
putc:
    in r17, UCSR0A
    sbrs r17, 5       ; UDRE
    rjmp putc
    out UDR0, r24
    ret
`

// TestUARTOutputSnapshotStable pins the regression where UARTOutput handed
// out the machine's live transmit buffer: a snapshot taken mid-run must not
// change when the machine keeps transmitting into the same backing array.
func TestUARTOutputSnapshotStable(t *testing.T) {
	m := load(t, uartEmitSrc)
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
	m.fault = nil
	m.AddCycles(UARTByteCycles)
	m.FlushDevices()

	snap := m.UARTOutput()
	want := append([]byte(nil), snap...)
	// Keep transmitting on the same machine; the snapshot must not move.
	m.dev.uartOut = append(m.dev.uartOut, 'X', 'Y', 'Z')
	if !bytes.Equal(snap, want) {
		t.Fatalf("snapshot mutated by later traffic: %q, want %q", snap, want)
	}
	// And writes through the snapshot must not corrupt the machine.
	if len(snap) > 0 {
		snap[0] = '?'
	}
	if m.dev.uartOut[0] == '?' {
		t.Fatal("snapshot aliases the machine's internal buffer")
	}
}

// TestRadioOutputSnapshotStable is the radio-side twin of the UART test.
func TestRadioOutputSnapshotStable(t *testing.T) {
	m := load(t, `
main:
    ldi r24, 0x55
    rcall txb
    break
txb:
    in r17, RSR
    sbrs r17, 0
    rjmp txb
    out RDR, r24
    ret
`)
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
	m.fault = nil
	m.AddCycles(RadioByteCycles)
	m.FlushDevices()

	snap := m.RadioOutput()
	if len(snap) != 1 || snap[0].Byte != 0x55 {
		t.Fatalf("radio frames = %+v", snap)
	}
	m.dev.radioOut = append(m.dev.radioOut, RadioFrame{Byte: 0xAA})
	snap[0].Byte = 0
	if m.dev.radioOut[0].Byte != 0x55 {
		t.Fatal("snapshot aliases the machine's internal radio buffer")
	}
}

// TestConcurrentMachinesIndependent runs several machines on separate
// goroutines (the parallel experiment engine's usage pattern) and checks,
// under -race, that instances share no mutable state: every machine must
// produce the same UART output it produces alone.
func TestConcurrentMachinesIndependent(t *testing.T) {
	ref := load(t, uartEmitSrc)
	ref.SetSP(0x10FF)
	runUntilBreak(t, ref, 100_000)
	ref.fault = nil
	ref.AddCycles(UARTByteCycles)
	ref.FlushDevices()
	want := ref.UARTOutput()
	wantCycles := ref.Cycles()

	const machines = 8
	var wg sync.WaitGroup
	errs := make(chan error, machines)
	for i := 0; i < machines; i++ {
		m := load(t, uartEmitSrc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.SetSP(0x10FF)
			if err := m.Run(100_000); err != nil {
				var f *Fault
				if !errors.As(err, &f) || f.Kind != FaultBreak {
					errs <- fmt.Errorf("run: %v", err)
					return
				}
			}
			m.fault = nil
			m.AddCycles(UARTByteCycles)
			m.FlushDevices()
			if got := m.UARTOutput(); !bytes.Equal(got, want) {
				errs <- fmt.Errorf("uart = %q, want %q", got, want)
			}
			if got := m.Cycles(); got != wantCycles {
				errs <- fmt.Errorf("cycles = %d, want %d", got, wantCycles)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

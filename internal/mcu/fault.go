package mcu

import "fmt"

// FaultKind classifies the ways simulated execution can stop abnormally.
type FaultKind uint8

const (
	// FaultBadInst is an undecodable or unsupported opcode.
	FaultBadInst FaultKind = iota + 1
	// FaultBreak is a bare BREAK with no kernel trap handler installed.
	FaultBreak
	// FaultTrap is an unhandled KTRAP (no kernel attached).
	FaultTrap
	// FaultMemGuard is a native store or load outside the allowed region
	// (the memory-isolation backstop the kernel arms per task).
	FaultMemGuard
	// FaultStackOverflow is a push/call that ran below the guard floor.
	FaultStackOverflow
	// FaultDeadSleep is a SLEEP with no enabled wake-up source.
	FaultDeadSleep
	// FaultHalt is a voluntary halt requested through Machine.Halt.
	FaultHalt
)

func (k FaultKind) String() string {
	switch k {
	case FaultBadInst:
		return "bad instruction"
	case FaultBreak:
		return "break"
	case FaultTrap:
		return "unhandled ktrap"
	case FaultMemGuard:
		return "memory isolation violation"
	case FaultStackOverflow:
		return "stack overflow"
	case FaultDeadSleep:
		return "sleep with no wake-up source"
	case FaultHalt:
		return "halted"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is the error type returned when execution stops abnormally.
type Fault struct {
	Kind FaultKind
	PC   uint32 // word address of the faulting instruction
	Addr uint16 // data address involved, if any
	Note string
}

func (f *Fault) Error() string {
	s := fmt.Sprintf("mcu: %s at pc=%#x", f.Kind, f.PC)
	if f.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", f.Addr)
	}
	if f.Note != "" {
		s += " (" + f.Note + ")"
	}
	return s
}

package mcu

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Capture/restore errors. Capture refuses state it cannot serialize; restore
// refuses state that does not fit the machine it is applied to.
var (
	// ErrCustomADCSource: a machine with a caller-installed ADC source
	// closure cannot be checkpointed — the closure's state is opaque.
	ErrCustomADCSource = errors.New("mcu: cannot capture state with a custom ADC source installed")
	// ErrArmedInjector: an armed fault-injection hook is a pending
	// side effect the snapshot cannot carry.
	ErrArmedInjector = errors.New("mcu: cannot capture state with an armed fault injector")
	// ErrImageMismatch: the restore target's flash contents differ from the
	// image the snapshot was taken against.
	ErrImageMismatch = errors.New("mcu: flash image differs from snapshot's")
	// ErrSnapshotDataSize: the snapshot's data segment is not DataSize bytes,
	// so it was taken against a different memory geometry (or truncated).
	ErrSnapshotDataSize = errors.New("mcu: snapshot data segment size mismatch")
	// ErrSamplerMismatch: the restore target's telemetry sampling interval
	// differs from the snapshot's, so the restored sample schedule would not
	// reproduce the source run's boundaries.
	ErrSamplerMismatch = errors.New("mcu: telemetry interval differs from snapshot's")
)

// DeviceState is the serializable peripheral state of a Machine.
type DeviceState struct {
	NextEvent uint64

	T0BaseCycle uint64
	T0BaseCount uint16
	T0Prescale  uint32

	ADCBusyUntil uint64
	ADCPending   bool
	ADCLFSR      uint16

	UARTBusyUntil uint64
	UARTPendingB  byte
	UARTPending   bool
	UARTOut       []byte

	RadioBusyUntil uint64
	RadioPendingB  byte
	RadioPending   bool
	RadioOut       []RadioFrame
	RadioIn        []byte
}

// MachineState is the complete serializable execution state of a Machine,
// excluding the program image: flash (and its derived micro-op cache) is
// validated by hash instead of carried, so a restore target must have the
// same programs deployed — which it reuses, optionally copy-on-write shared
// via AdoptImage.
type MachineState struct {
	Data  []byte // all DataSize bytes: registers, I/O space, SRAM
	PC    uint32
	Cycle uint64
	Idle  uint64
	Insts uint64

	Sleeping  bool
	FaultKind uint8
	FaultPC   uint32
	FaultAddr uint16
	FaultNote string
	Pending   uint8
	Stepwise  bool

	GuardLo, GuardHi uint16
	GuardOn          bool

	SampleEvery uint64
	SampleNext  uint64

	CodeEnd   uint32
	FlashHash [32]byte

	Dev DeviceState
}

// flashHash digests the current flash contents (little-endian words).
func (m *Machine) flashHash() [32]byte {
	h := sha256.New()
	var buf [512]byte
	for i := 0; i < FlashWords; i += 256 {
		for j, w := range m.flash[i : i+256] {
			buf[2*j] = byte(w)
			buf[2*j+1] = byte(w >> 8)
		}
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CaptureState snapshots the machine's execution and device state. It is
// read-only — capturing never perturbs the run — and deep-copies every
// buffer, so the returned state stays valid while the machine keeps running.
// It fails if unserializable hooks are attached (custom ADC source, armed
// fault injector).
func (m *Machine) CaptureState() (*MachineState, error) {
	if m.dev.adcSource != nil {
		return nil, ErrCustomADCSource
	}
	if m.injectFn != nil {
		return nil, ErrArmedInjector
	}
	st := &MachineState{
		Data:        append([]byte(nil), m.data[:]...),
		PC:          m.pc,
		Cycle:       m.cycle,
		Idle:        m.idle,
		Insts:       m.insts,
		Sleeping:    m.sleeping,
		Pending:     m.pending,
		Stepwise:    m.stepwise,
		GuardLo:     m.guardLo,
		GuardHi:     m.guardHi,
		GuardOn:     m.guardOn,
		SampleEvery: m.sampleEvery,
		SampleNext:  m.sampleNext,
		CodeEnd:     m.codeEnd,
		FlashHash:   m.flashHash(),
		Dev: DeviceState{
			NextEvent:      m.dev.nextEvent,
			T0BaseCycle:    m.dev.t0BaseCycle,
			T0BaseCount:    m.dev.t0BaseCount,
			T0Prescale:     m.dev.t0Prescale,
			ADCBusyUntil:   m.dev.adcBusyUntil,
			ADCPending:     m.dev.adcPending,
			ADCLFSR:        m.dev.adcLFSR,
			UARTBusyUntil:  m.dev.uartBusyUntil,
			UARTPendingB:   m.dev.uartPendingB,
			UARTPending:    m.dev.uartPending,
			UARTOut:        append([]byte(nil), m.dev.uartOut...),
			RadioBusyUntil: m.dev.radioBusyUntil,
			RadioPendingB:  m.dev.radioPendingB,
			RadioPending:   m.dev.radioPending,
			RadioOut:       append([]RadioFrame(nil), m.dev.radioOut...),
			RadioIn:        append([]byte(nil), m.dev.radioIn...),
		},
	}
	if m.fault != nil {
		st.FaultKind = uint8(m.fault.Kind)
		st.FaultPC = m.fault.PC
		st.FaultAddr = m.fault.Addr
		st.FaultNote = m.fault.Note
	}
	return st, nil
}

// RestoreState applies a captured state to m, which must already hold the
// identical program image the snapshot was taken against (validated by
// hash — flash itself is not part of the state). Every buffer is deep-copied
// out of st, so neither the machine nor a caller-held snapshot aliases the
// other afterward. Attached hooks (trap handler, recorder, profiler,
// sampler) are left as wired by the machine's constructor; only the
// sampler's schedule is restored, and its interval must match the
// snapshot's.
func (m *Machine) RestoreState(st *MachineState) error {
	if len(st.Data) != DataSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrSnapshotDataSize, len(st.Data), DataSize)
	}
	if st.FlashHash != m.flashHash() {
		return ErrImageMismatch
	}
	if m.sampleFn != nil && m.sampleEvery != st.SampleEvery {
		return fmt.Errorf("%w: target %d, snapshot %d",
			ErrSamplerMismatch, m.sampleEvery, st.SampleEvery)
	}
	copy(m.data[:], st.Data)
	m.pc = st.PC & (FlashWords - 1)
	m.cycle = st.Cycle
	m.idle = st.Idle
	m.insts = st.Insts
	m.sleeping = st.Sleeping
	if st.FaultKind != 0 {
		m.fault = &Fault{Kind: FaultKind(st.FaultKind), PC: st.FaultPC,
			Addr: st.FaultAddr, Note: st.FaultNote}
	} else {
		m.fault = nil
	}
	m.pending = st.Pending
	m.stepwise = st.Stepwise
	m.guardLo, m.guardHi, m.guardOn = st.GuardLo, st.GuardHi, st.GuardOn
	if m.sampleFn != nil {
		m.sampleNext = st.SampleNext
	}
	m.codeEnd = st.CodeEnd
	// The block cache is derived state, like the micro-op cache: the restore
	// target may have been running unrelated code (its flash merely hashes
	// equal now), so drop every translated block and landing counter rather
	// than trust them. They rebuild from scratch, exactly as uops refetch.
	if m.xl != nil {
		m.xl.reset()
	}
	m.dev = devices{
		nextEvent:      st.Dev.NextEvent,
		t0BaseCycle:    st.Dev.T0BaseCycle,
		t0BaseCount:    st.Dev.T0BaseCount,
		t0Prescale:     st.Dev.T0Prescale,
		adcBusyUntil:   st.Dev.ADCBusyUntil,
		adcPending:     st.Dev.ADCPending,
		adcLFSR:        st.Dev.ADCLFSR,
		uartBusyUntil:  st.Dev.UARTBusyUntil,
		uartPendingB:   st.Dev.UARTPendingB,
		uartPending:    st.Dev.UARTPending,
		uartOut:        append([]byte(nil), st.Dev.UARTOut...),
		radioBusyUntil: st.Dev.RadioBusyUntil,
		radioPendingB:  st.Dev.RadioPendingB,
		radioPending:   st.Dev.RadioPending,
		radioOut:       append([]RadioFrame(nil), st.Dev.RadioOut...),
		radioIn:        append([]byte(nil), st.Dev.RadioIn...),
	}
	return nil
}

package mcu

import (
	"testing"
)

// reRun clears the BREAK fault and restarts the loaded program from pc=0
// without clearing the micro-op cache, so a stale cache entry would be
// re-executed as-is.
func reRun(t *testing.T, m *Machine) {
	t.Helper()
	m.fault = nil
	m.SetPC(0)
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
}

// TestLoadFlashInvalidatesSecondWord pins the micro-op invalidation rule for
// two-word instructions: patching only the SECOND word of a cached LDS, STS,
// or CALL must rebuild the entry whose first word sits at base-1. Without the
// base-1 invalidation in LoadFlash the predecoded operand would survive the
// patch and the old address would be used.
func TestLoadFlashInvalidatesSecondWord(t *testing.T) {
	t.Run("lds", func(t *testing.T) {
		m := load(t, `
main:
    lds r16, 0x0200
    break
`)
		m.Poke(0x0200, 11)
		m.Poke(0x0204, 22)
		m.SetSP(0x10FF)
		runUntilBreak(t, m, 100_000)
		if got := m.Reg(16); got != 11 {
			t.Fatalf("first run: r16 = %d, want 11", got)
		}
		// Patch only the operand word (flash word 1) to point at 0x0204.
		if err := m.LoadFlash(1, []uint16{0x0204}); err != nil {
			t.Fatal(err)
		}
		reRun(t, m)
		if got := m.Reg(16); got != 22 {
			t.Fatalf("after second-word patch: r16 = %d, want 22 (stale uop operand)", got)
		}
	})

	t.Run("sts", func(t *testing.T) {
		m := load(t, `
main:
    ldi r16, 77
    sts 0x0200, r16
    break
`)
		m.SetSP(0x10FF)
		runUntilBreak(t, m, 100_000)
		if got := m.Peek(0x0200); got != 77 {
			t.Fatalf("first run: [0x0200] = %d, want 77", got)
		}
		// ldi is one word, so the STS operand is flash word 2.
		if err := m.LoadFlash(2, []uint16{0x0204}); err != nil {
			t.Fatal(err)
		}
		reRun(t, m)
		if got := m.Peek(0x0204); got != 77 {
			t.Fatalf("after second-word patch: [0x0204] = %d, want 77 (stale uop operand)", got)
		}
	})

	t.Run("call", func(t *testing.T) {
		m := load(t, `
main:
    call f1
    break
f1:
    ldi r20, 1
    ret
f2:
    ldi r20, 2
    ret
`)
		m.SetSP(0x10FF)
		runUntilBreak(t, m, 100_000)
		if got := m.Reg(20); got != 1 {
			t.Fatalf("first run: r20 = %d, want 1", got)
		}
		// Layout: call = words 0-1, break = 2, f1 = 3-4, f2 = 5-6. Patch the
		// CALL target word to f2.
		if err := m.LoadFlash(1, []uint16{5}); err != nil {
			t.Fatal(err)
		}
		reRun(t, m)
		if got := m.Reg(20); got != 2 {
			t.Fatalf("after second-word patch: r20 = %d, want 2 (stale uop target)", got)
		}
	})
}

// identitySrc mixes the hot native ops of the benchmark suite (ALU, skips,
// short branches, I/O polling) with memory, stack, and flash-read traffic so
// the fast run loop and the fully-checked Step path both cover every dispatch
// family.
const identitySrc = `
main:
    ldi r16, lo8(0x10FF)
    out SPL, r16
    ldi r16, hi8(0x10FF)
    out SPH, r16
    ldi r24, 200
    clr r20
    clr r21
outer:
    mov r18, r24
    lsr r18
    add r20, r18
    adc r21, r1
    eor r18, r20
    push r18
    pop r19
    call leaf
    sbrs r24, 0
    inc r22
    dec r24
    brne outer
    sts 0x0200, r20
    sts 0x0201, r21
    ldi r30, lo8(table)
    ldi r31, hi8(table)
    lsl r30
    lpm r23, Z
wait:
    in r17, UCSR0A
    sbrs r17, 5
    rjmp wait
    out UDR0, r20
    break
leaf:
    subi r20, 1
    sbci r21, 0
    ret
table:
    .dw 0x4241
`

// TestFastStepwiseIdentity runs the same program through the event-horizon
// fast loop and through per-instruction Step and requires bit-identical
// architectural state: cycles, retired instructions, PC, SP, SREG, and all of
// data memory.
func TestFastStepwiseIdentity(t *testing.T) {
	run := func(stepwise bool) *Machine {
		m := load(t, identitySrc)
		m.SetStepwise(stepwise)
		runUntilBreak(t, m, 1_000_000)
		return m
	}
	fast, slow := run(false), run(true)
	if fast.Cycles() != slow.Cycles() {
		t.Errorf("cycles: fast %d, stepwise %d", fast.Cycles(), slow.Cycles())
	}
	if fast.Instructions() != slow.Instructions() {
		t.Errorf("instructions: fast %d, stepwise %d", fast.Instructions(), slow.Instructions())
	}
	if fast.PC() != slow.PC() {
		t.Errorf("pc: fast %#x, stepwise %#x", fast.PC(), slow.PC())
	}
	if fast.SP() != slow.SP() {
		t.Errorf("sp: fast %#x, stepwise %#x", fast.SP(), slow.SP())
	}
	if fast.SREG() != slow.SREG() {
		t.Errorf("sreg: fast %08b, stepwise %08b", fast.SREG(), slow.SREG())
	}
	if fast.data != slow.data {
		for i := range fast.data {
			if fast.data[i] != slow.data[i] {
				t.Errorf("data[%#04x]: fast %#02x, stepwise %#02x", i, fast.data[i], slow.data[i])
			}
		}
	}
}

// TestRunStopsAtDeviceHorizon checks that the fast loop never runs past a
// pending device event: an ADC conversion started inside the horizon must
// complete at exactly the documented latency even though no per-instruction
// device check happens in the inner loop.
func TestRunStopsAtDeviceHorizon(t *testing.T) {
	m := load(t, `
main:
    ldi r16, 0b11000000   ; ADEN|ADSC
    out ADCSRA, r16
poll:
    in r17, ADCSRA
    sbrc r17, 6           ; ADSC still set -> conversion running
    rjmp poll
    break
`)
	m.SetADCSource(func(uint8) uint16 { return 0x123 })
	m.SetSP(0x10FF)
	runUntilBreak(t, m, 100_000)
	if m.Cycles() < ADCCycles {
		t.Fatalf("conversion finished after %d cycles, want >= %d", m.Cycles(), ADCCycles)
	}
	if got := uint16(m.Peek(IOBase+0x04)) | uint16(m.Peek(IOBase+0x05))<<8; got != 0x123 {
		t.Fatalf("ADC result = %#x, want 0x123", got)
	}
}

package mcu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/avr"
)

func TestUARTOverrunDropsByte(t *testing.T) {
	// Writing UDR0 while a byte is in flight overruns: the in-flight slot
	// is replaced and only the final byte completes.
	m := load(t, `
main:
    ldi r16, 'a'
    out UDR0, r16
    ldi r16, 'b'
    out UDR0, r16        ; overrun: replaces the pending byte
    break
`)
	runUntilBreak(t, m, 10_000)
	m.fault = nil
	m.AddCycles(2 * UARTByteCycles)
	m.syncDevices()
	if got := string(m.UARTOutput()); got != "b" {
		t.Errorf("uart = %q, want %q (overrun semantics)", got, "b")
	}
}

func TestTimer0PrescalerChangeRebasesCount(t *testing.T) {
	m := New()
	// Start at clk/8; run 800 cycles -> TCNT0 = 100.
	m.WriteBus(IOBase+0x33, 2) // TCCR0 = clk/8
	m.AddCycles(800)
	if got := m.ReadBus(IOBase + 0x32); got != 100 {
		t.Fatalf("TCNT0 = %d, want 100", got)
	}
	// Switch to clk/64: the count must not jump.
	m.WriteBus(IOBase+0x33, 4)
	if got := m.ReadBus(IOBase + 0x32); got != 100 {
		t.Errorf("TCNT0 after prescaler change = %d, want 100", got)
	}
	m.AddCycles(64 * 10)
	if got := m.ReadBus(IOBase + 0x32); got != 110 {
		t.Errorf("TCNT0 = %d, want 110", got)
	}
}

func TestTimer0StopHoldsCount(t *testing.T) {
	m := New()
	m.WriteBus(IOBase+0x33, 1) // clk/1
	m.AddCycles(42)
	m.WriteBus(IOBase+0x33, 0) // stop
	m.AddCycles(10_000)
	if got := m.ReadBus(IOBase + 0x32); got != 42 {
		t.Errorf("stopped TCNT0 = %d, want 42", got)
	}
}

func TestInterruptPriorityOrder(t *testing.T) {
	// With both Timer0 and radio-RX pending, Timer0 (lower vector) wins.
	m := load(t, `
    jmp main
.org 2
    jmp t0vec
.org 8
    jmp rxvec
main:
    ldi r16, lo8(RAMEND)
    out SPL, r16
    ldi r16, hi8(RAMEND)
    out SPH, r16
    ldi r16, 1
    out TIMSK, r16
    ldi r16, 1           ; clk/1: overflow after 256 cycles
    out TCCR0, r16
    ; Busy-wait past the overflow with interrupts still masked, so both the
    ; timer and the radio are pending when SEI opens the gate.
    ldi r17, 120
spinup:
    dec r17
    brne spinup
    sei
wait:
    rjmp wait
t0vec:
    ldi r24, 1
    break
rxvec:
    ldi r24, 2
    break
`)
	m.InjectRadio([]byte{0x42}) // radio pending immediately
	// Force the timer overflow to be pending too before interrupts fire:
	// interrupts are enabled only after SEI, and by then the radio is
	// already pending; run until one vector executes.
	err := m.Run(10_000)
	var f *Fault
	if !faultAs(err, &f) || f.Kind != FaultBreak {
		t.Fatalf("err = %v", err)
	}
	// Both sources were pending when SEI executed; the lower vector
	// (Timer0) must win.
	if m.Reg(24) != 1 {
		t.Errorf("vector executed = %d, want timer0 (1)", m.Reg(24))
	}
}

func faultAs(err error, f **Fault) bool {
	if err == nil {
		return false
	}
	ff, ok := err.(*Fault)
	if ok {
		*f = ff
	}
	return ok
}

func TestRadioInjectionRaisesPending(t *testing.T) {
	m := load(t, `
    jmp main
.org 8
    jmp rx
main:
    ldi r16, lo8(RAMEND)
    out SPL, r16
    ldi r16, hi8(RAMEND)
    out SPH, r16
    sei
idle:
    rjmp idle
rx:
    in r24, RDR
    break
`)
	m.InjectRadio([]byte{0x5A})
	runUntilBreak(t, m, 10_000)
	if m.Reg(24) != 0x5A {
		t.Errorf("rx byte = %#x, want 0x5A", m.Reg(24))
	}
}

// TestALU16BitChainsMatchReference cross-checks the simulator's flag
// semantics against Go arithmetic: random 16-bit add/sub/compare chains
// must produce the exact Go result.
func TestALU16BitChainsMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := uint16(r.Intn(0x10000))
		b := uint16(r.Intn(0x10000))
		c := uint16(r.Intn(0x10000))
		// Program: t = a + b; t -= c; result in r25:r24.
		m := New()
		var prog []uint16
		emit := func(in avr.Inst) {
			w, err := avr.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			prog = append(prog, w...)
		}
		emit(avr.Inst{Op: avr.OpLdi, Dst: 24, Imm: int32(a & 0xFF)})
		emit(avr.Inst{Op: avr.OpLdi, Dst: 25, Imm: int32(a >> 8)})
		emit(avr.Inst{Op: avr.OpLdi, Dst: 22, Imm: int32(b & 0xFF)})
		emit(avr.Inst{Op: avr.OpLdi, Dst: 23, Imm: int32(b >> 8)})
		emit(avr.Inst{Op: avr.OpLdi, Dst: 20, Imm: int32(c & 0xFF)})
		emit(avr.Inst{Op: avr.OpLdi, Dst: 21, Imm: int32(c >> 8)})
		emit(avr.Inst{Op: avr.OpAdd, Dst: 24, Src: 22})
		emit(avr.Inst{Op: avr.OpAdc, Dst: 25, Src: 23})
		emit(avr.Inst{Op: avr.OpSub, Dst: 24, Src: 20})
		emit(avr.Inst{Op: avr.OpSbc, Dst: 25, Src: 21})
		emit(avr.Inst{Op: avr.OpBreak})
		prog = append(prog, 0x0000)
		if err := m.LoadFlash(0, prog); err != nil {
			t.Fatal(err)
		}
		_ = m.Run(1000)
		got := uint16(m.Reg(24)) | uint16(m.Reg(25))<<8
		want := a + b - c
		if got != want {
			t.Logf("seed %d: %d+%d-%d = %d, want %d", seed, a, b, c, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyModelFavorsSleep(t *testing.T) {
	busy := New()
	busy.AddCycles(ClockHz) // one second fully active
	idle := New()
	idle.AddIdleCycles(ClockHz) // one second asleep
	if busy.EnergyMilliJoules() <= idle.EnergyMilliJoules() {
		t.Error("active second must cost more energy than a sleeping second")
	}
	// 1 s active at 8 mA, 3 V = 24 mJ.
	if got := busy.EnergyMilliJoules(); got < 23.9 || got > 24.1 {
		t.Errorf("active energy = %.2f mJ, want ~24", got)
	}
	if got := idle.EnergyMilliJoules(); got < 0.04 || got > 0.05 {
		t.Errorf("sleep energy = %.3f mJ, want ~0.045", got)
	}
}

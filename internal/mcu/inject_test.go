package mcu

import (
	"errors"
	"testing"
)

// TestInjectorFiresOnceAtCycle checks the armed hook fires at the first
// checked step whose clock reached the arm cycle, then disarms.
func TestInjectorFiresOnceAtCycle(t *testing.T) {
	m := load(t, `
main:
    clr r20
loop:
    inc r20
    rjmp loop
`)
	var fired []uint64
	m.SetInjector(50, func(m *Machine) {
		fired = append(fired, m.Cycles())
		m.SetReg(20, 0xAA)
	})
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("injector fired %d times, want 1", len(fired))
	}
	if fired[0] < 50 || fired[0] > 53 {
		t.Errorf("injector fired at cycle %d, want first boundary at/after 50", fired[0])
	}
	if m.injectFn != nil {
		t.Error("injector still armed after firing")
	}
	// The injected register write took effect on live state: r20 kept
	// incrementing from 0xAA afterwards, so it can't still hold the
	// uninjected count.
	if got := m.Reg(20); got < 0xAA-1 {
		t.Errorf("r20 = %#x, injected value did not take effect", got)
	}
}

// TestInjectorChaining checks a hook can re-arm from inside the callback.
func TestInjectorChaining(t *testing.T) {
	m := load(t, `
loop:
    nop
    rjmp loop
`)
	var fired []uint64
	var arm func(at uint64)
	arm = func(at uint64) {
		m.SetInjector(at, func(m *Machine) {
			fired = append(fired, m.Cycles())
			if len(fired) < 3 {
				arm(at + 40)
			}
		})
	}
	arm(10)
	if err := m.Run(300); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("chained injector fired %d times, want 3", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Errorf("chained firings not strictly ordered: %v", fired)
		}
	}
}

// TestInjectorDisarmedCycleIdentical checks that arming-then-disarming the
// hook leaves execution cycle-identical to a run that never armed it, and
// that a disarmed machine returns to the fast loop (mirrored by equal
// instruction counts).
func TestInjectorDisarmedCycleIdentical(t *testing.T) {
	src := `
main:
    clr r20
    ldi r16, 200
loop:
    add r20, r16
    dec r16
    brne loop
    break
`
	plain := load(t, src)
	errPlain := plain.Run(0)

	hooked := load(t, src)
	hooked.SetInjector(30, func(m *Machine) {}) // no-op injection
	errHooked := hooked.Run(0)

	var f1, f2 *Fault
	if !errors.As(errPlain, &f1) || !errors.As(errHooked, &f2) || f1.Kind != f2.Kind {
		t.Fatalf("stop mismatch: %v vs %v", errPlain, errHooked)
	}
	if plain.Cycles() != hooked.Cycles() {
		t.Errorf("cycles diverge: plain %d, hooked %d", plain.Cycles(), hooked.Cycles())
	}
	if plain.Instructions() != hooked.Instructions() {
		t.Errorf("instruction counts diverge: plain %d, hooked %d",
			plain.Instructions(), hooked.Instructions())
	}
	if plain.Reg(20) != hooked.Reg(20) {
		t.Errorf("r20 diverges: %#x vs %#x", plain.Reg(20), hooked.Reg(20))
	}
}

// TestFaultingPushLeavesSRAMUntouched is the regression test for the
// partial-write audit: a CALL whose two-byte return-address push cannot
// complete must leave both SRAM and SP exactly as they were, so the kernel's
// grow-and-retry replays it from pristine state.
func TestFaultingPushLeavesSRAMUntouched(t *testing.T) {
	m := load(t, `
main:
    call sub
    break
sub:
    ret
`)
	// SP exactly at the guard floor: the first byte of the return-address
	// push is in range, the second is not. Pre-fix this wrote one byte and
	// moved SP before faulting.
	const lo, hi = 0x0400, 0x0500
	m.SetGuard(lo, hi)
	m.SetSP(lo)
	m.Poke(lo, 0x5A) // sentinel where the partial write used to land
	spBefore := m.SP()
	pcBefore := m.PC()

	err := m.Run(100)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStackOverflow {
		t.Fatalf("expected stack-overflow fault, got %v", err)
	}
	if got := m.Peek(lo); got != 0x5A {
		t.Errorf("SRAM at %#x = %#x, want untouched sentinel 0x5A", lo, got)
	}
	if m.SP() != spBefore {
		t.Errorf("SP moved on faulting push: %#x, want %#x", m.SP(), spBefore)
	}
	if m.PC() != pcBefore {
		t.Errorf("PC advanced on faulting push: %#x, want %#x", m.PC(), pcBefore)
	}

	// After recovery (guard widened, fault cleared), the retried CALL pushes
	// both bytes at the architectural addresses.
	m.ClearFault()
	m.SetGuard(lo-32, hi)
	if err := m.Step(); err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if m.SP() != spBefore-2 {
		t.Errorf("retried call SP = %#x, want %#x", m.SP(), spBefore-2)
	}
	// Return address is the word after the 2-word CALL at pc 0, pushed low
	// byte first (so the low byte sits at the higher address).
	if lo8, hi8 := m.Peek(spBefore), m.Peek(spBefore-1); lo8 != 2 || hi8 != 0 {
		t.Errorf("retried call wrote return address %#x%02x, want 0x0002", hi8, lo8)
	}
}

// TestFaultingPopLeavesSPUntouched checks the matching pop-side fix: a RET
// with no frame to pop (SP at the region top) faults without moving SP.
func TestFaultingPopLeavesSPUntouched(t *testing.T) {
	m := load(t, `
main:
    ret
`)
	const lo, hi = 0x0400, 0x0500
	m.SetGuard(lo, hi)
	m.SetSP(hi - 1) // empty stack: pops would read hi, hi+1 — out of region
	spBefore := m.SP()

	err := m.Run(100)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStackOverflow {
		t.Fatalf("expected stack-overflow fault, got %v", err)
	}
	if m.SP() != spBefore {
		t.Errorf("SP moved on faulting pop: %#x, want %#x", m.SP(), spBefore)
	}
}

// TestPopWordTransactionalSplit pins the half-in-range case: the first pop
// address is inside the region, the second is not; neither byte may be
// consumed.
func TestPopWordTransactionalSplit(t *testing.T) {
	m := load(t, `
main:
    ret
`)
	const lo, hi = 0x0400, 0x0500
	m.SetGuard(lo, hi)
	m.SetSP(hi - 2) // first pop at hi-1 is fine, second at hi faults
	spBefore := m.SP()

	err := m.Run(100)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStackOverflow {
		t.Fatalf("expected stack-overflow fault, got %v", err)
	}
	if m.SP() != spBefore {
		t.Errorf("SP moved on half-faulting popWord: %#x, want %#x", m.SP(), spBefore)
	}
}

// TestInjectorStackSmash checks an injected return-address corruption is
// honoured by the subsequent RET: the hook mutates SRAM through Poke
// (harness-level, guard-exempt) and execution follows the corrupted address.
func TestInjectorStackSmash(t *testing.T) {
	m := load(t, `
main:
    ldi r16, lo8(0x04F0)
    out SPL, r16
    ldi r16, hi8(0x04F0)
    out SPH, r16
    call sub
    break
sub:
    nop
    nop
    nop
    nop
    ret
`)
	m.SetGuard(0x0400, 0x0500)
	// Corrupt the return address pushed by CALL while inside sub (the CALL
	// completes around cycle 8; the NOPs run 9..12): point it at flash word
	// 0x3F00 (empty flash decodes as a NOP sled from there on).
	m.SetInjector(10, func(m *Machine) {
		sp := m.SP()
		m.Poke(sp+1, 0x3F) // hi byte (pushWord order: lo first, hi on top)
		m.Poke(sp+2, 0x00) // lo byte
	})
	// The run ends on the cycle budget, spinning in the NOP sled.
	if err := m.Run(400); err != nil {
		t.Fatal(err)
	}
	if pc := m.PC(); pc < 0x3F00 {
		t.Errorf("corrupted return address not honoured: pc=%#x, want >= 0x3F00", pc)
	}
}

package experiment

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/telemetry"
)

// InterpBenchPoint is one kernel benchmark timed under the two interpreter
// modes: the checked stepwise loop (every instruction goes through Step with
// its per-instruction device/pending/fault checks) and the event-horizon
// fast loop that `Run` uses by default.
type InterpBenchPoint struct {
	Benchmark string `json:"benchmark"`
	Cycles    uint64 `json:"simulated_cycles"`
	// Instructions is the retired-instruction count, identical across modes.
	Instructions uint64  `json:"instructions"`
	CheckedMs    float64 `json:"checked_ms"`
	FastMs       float64 `json:"fast_ms"`
	// CheckedMIPS and FastMIPS are host millions of instructions per second.
	CheckedMIPS float64 `json:"checked_mips"`
	FastMIPS    float64 `json:"fast_mips"`
	// Speedup is FastMIPS/CheckedMIPS — a host-relative ratio, so it is far
	// more stable across machines than either absolute MIPS figure.
	Speedup float64 `json:"speedup"`
	// TelemetryArmedMs times the fast loop with a telemetry sampler attached
	// whose interval exceeds the run length, so it never fires: the delta
	// against FastMs isolates the armed check itself (one compare per
	// outer-loop pass — the fast inner loop is untouched).
	TelemetryArmedMs float64 `json:"telemetry_armed_ms"`
	// EnergyArmedMs times the fast loop with an energy meter attached: the
	// meter's hooks live at device transition points and the sleep path, none
	// of them on the per-instruction fast loop, so the delta against FastMs
	// bounds what merely attaching a meter costs.
	EnergyArmedMs float64 `json:"energy_armed_ms"`
	// CyclesIdentical confirms the fast loop is an optimization, not a
	// different simulation: both modes must retire the same instructions
	// and simulate the same cycles.
	CyclesIdentical bool `json:"cycles_identical"`
}

// InterpBench is the BENCH_interp.json payload.
type InterpBench struct {
	BenchMeta
	Reps int    `json:"reps"`
	Note string `json:"note"`
	// SerialFastMs / SerialFastMIPS aggregate the whole suite run
	// back-to-back on one goroutine in fast mode.
	SerialFastMs   float64 `json:"serial_fast_ms"`
	SerialFastMIPS float64 `json:"serial_fast_mips"`
	// ParallelFastMs / ParallelFastMIPS run the same suite under the
	// experiment worker pool (one machine per point, runPoints order).
	ParallelWorkers  int     `json:"parallel_workers"`
	ParallelFastMs   float64 `json:"parallel_fast_ms"`
	ParallelFastMIPS float64 `json:"parallel_fast_mips"`
	// MinSpeedup is the smallest per-benchmark fast/checked ratio
	// (informational: the short benchmarks make it noisy, so the gate uses
	// SuiteSpeedup).
	MinSpeedup float64 `json:"min_speedup"`
	// SuiteSpeedup is sum(checked_ms)/sum(fast_ms) across the whole suite —
	// dominated by the long benchmarks, so it is stable enough to gate on.
	SuiteSpeedup float64 `json:"suite_speedup"`
	// TelemetryOverheadPct is the suite-summed armed-telemetry vs disabled
	// fast-loop wall-clock delta, clamped at zero. The sampler never fires
	// during the armed runs, so this bounds what merely attaching telemetry
	// costs; the interp gate requires it to stay under 1%. Suite sums of
	// best-of-reps minima keep the figure stable against scheduler noise.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// EnergyOverheadPct is the same suite-summed armed-vs-disabled delta for
	// an attached energy meter, gated under 1% like telemetry.
	EnergyOverheadPct  float64            `json:"energy_overhead_pct"`
	AllCyclesIdentical bool               `json:"all_cycles_identical"`
	Benchmarks         []InterpBenchPoint `json:"benchmarks"`
}

const interpBenchLimit = 4_000_000_000

// mips converts an instruction count and a wall time in milliseconds to
// host millions of instructions per second.
func mips(insts uint64, ms float64) float64 {
	if ms <= 0 {
		return 0
	}
	return float64(insts) / (ms * 1000)
}

// BenchInterp times the seven kernel benchmarks under the checked stepwise
// interpreter and the event-horizon fast loop, then re-times the fast suite
// serially and under the parallel pool. It backs `make bench-interp` and
// BENCH_interp.json.
func BenchInterp(reps, workers int) (*InterpBench, error) {
	if reps <= 0 {
		reps = 3
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &InterpBench{
		BenchMeta: NewBenchMeta("interp", "kernel7"),
		Reps:      reps,
		Note: "checked mode forces the per-instruction Step path (stepwise), which already uses the " +
			"predecoded micro-op cache; speedup therefore isolates the event-horizon loop and " +
			"understates the gain over the pre-predecode interpreter. Interleaved best-of-8 runs " +
			"of the whole suite against the pre-predecode build on the same host measured 46-49 ms " +
			"(seed) vs 22-25 ms (this build), a 2.0-2.1x throughput gain; see EXPERIMENTS.md",
		ParallelWorkers:    workers,
		AllCyclesIdentical: true,
	}
	benchmarks := progs.KernelBenchmarks()
	// The overhead gates compare wall times that differ by well under a
	// millisecond, so a collector cycle landing inside one timed pass but not
	// its counterpart reads as overhead (worst on single-CPU hosts, where the
	// collector shares the measuring core). Disable automatic GC for the
	// measured phase and collect manually between passes: each pass allocates
	// a few MB (machine + predecoded micro-ops), so the heap stays bounded.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, kb := range benchmarks {
		p := InterpBenchPoint{Benchmark: kb.Name}

		var checkedM, fastM *mcu.Machine
		var err error
		p.CheckedMs, p.Cycles, err = timeRun(func() (*senSmartRun, error) {
			m := mcu.New()
			m.SetStepwise(true)
			checkedM = m
			return runSenSmartOn(m, kernel.Config{}, interpBenchLimit, kb.Program.Clone())
		}, reps)
		if err != nil {
			return nil, fmt.Errorf("%s checked: %w", kb.Name, err)
		}
		// Fast-loop, armed-telemetry, and armed-energy passes interleave rep
		// by rep: the paths differ by one branch per outer-loop pass (or per
		// device transition for energy), so any measured gap beyond noise is
		// real, and interleaving keeps slow host drift (thermal, cgroup
		// throttling) from biasing one side.
		var fastCycles, armedCycles, energyCycles uint64
		for i := 0; i < reps; i++ {
			// A GC pause landing inside one pass but not another would read as
			// overhead; collecting before each timed section keeps the collector
			// out of the comparison (matters most on single-CPU hosts, where the
			// collector shares the measuring core).
			runtime.GC()
			start := time.Now()
			m := mcu.New()
			fastM = m
			run, err := runSenSmartOn(m, kernel.Config{}, interpBenchLimit, kb.Program.Clone())
			if err != nil {
				return nil, fmt.Errorf("%s fast: %w", kb.Name, err)
			}
			ms := float64(time.Since(start)) / float64(time.Millisecond)
			if i == 0 || ms < p.FastMs {
				p.FastMs = ms
			}
			fastCycles = run.Cycles

			samp := telemetry.New(telemetry.Options{Every: interpBenchLimit, Ring: 8})
			runtime.GC()
			start = time.Now()
			armedRun, err := runSenSmart(kernel.Config{Telemetry: samp}, interpBenchLimit, kb.Program.Clone())
			if err != nil {
				return nil, fmt.Errorf("%s telemetry-armed: %w", kb.Name, err)
			}
			ms = float64(time.Since(start)) / float64(time.Millisecond)
			if i == 0 || ms < p.TelemetryArmedMs {
				p.TelemetryArmedMs = ms
			}
			armedCycles = armedRun.Cycles

			meter := new(energy.Meter)
			runtime.GC()
			start = time.Now()
			energyRun, err := runSenSmart(kernel.Config{Energy: meter}, interpBenchLimit, kb.Program.Clone())
			if err != nil {
				return nil, fmt.Errorf("%s energy-armed: %w", kb.Name, err)
			}
			ms = float64(time.Since(start)) / float64(time.Millisecond)
			if i == 0 || ms < p.EnergyArmedMs {
				p.EnergyArmedMs = ms
			}
			energyCycles = energyRun.Cycles
		}
		p.Instructions = fastM.Instructions()
		p.CheckedMIPS = mips(checkedM.Instructions(), p.CheckedMs)
		p.FastMIPS = mips(p.Instructions, p.FastMs)
		if p.CheckedMIPS > 0 {
			p.Speedup = p.FastMIPS / p.CheckedMIPS
		}
		p.CyclesIdentical = p.Cycles == fastCycles && p.Cycles == armedCycles &&
			p.Cycles == energyCycles && checkedM.Instructions() == fastM.Instructions()
		if !p.CyclesIdentical {
			return nil, fmt.Errorf("%s: fast loop perturbed the simulation (%d vs %d vs %d vs %d cycles, %d vs %d insts)",
				kb.Name, p.Cycles, fastCycles, armedCycles, energyCycles, checkedM.Instructions(), fastM.Instructions())
		}
		if b.MinSpeedup == 0 || p.Speedup < b.MinSpeedup {
			b.MinSpeedup = p.Speedup
		}
		b.Benchmarks = append(b.Benchmarks, p)
	}

	// Whole-suite fast-mode wall time: serial, then under the worker pool.
	var totalInsts uint64
	var checkedMs, fastMs, armedMs, energyMs float64
	for _, p := range b.Benchmarks {
		totalInsts += p.Instructions
		checkedMs += p.CheckedMs
		fastMs += p.FastMs
		armedMs += p.TelemetryArmedMs
		energyMs += p.EnergyArmedMs
	}
	if fastMs > 0 {
		b.SuiteSpeedup = checkedMs / fastMs
		if armedMs > fastMs {
			b.TelemetryOverheadPct = 100 * (armedMs - fastMs) / fastMs
		}
		if energyMs > fastMs {
			b.EnergyOverheadPct = 100 * (energyMs - fastMs) / fastMs
		}
	}
	runPoint := func(i int) (uint64, error) {
		run, err := runSenSmart(kernel.Config{}, interpBenchLimit, benchmarks[i].Program.Clone())
		if err != nil {
			return 0, err
		}
		return run.Cycles, nil
	}
	serialBest, parallelBest := 0.0, 0.0
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		if _, err := runPoints(1, len(benchmarks), runPoint); err != nil {
			return nil, fmt.Errorf("serial suite: %w", err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < serialBest {
			serialBest = ms
		}
		runtime.GC()
		start = time.Now()
		if _, err := runPoints(workers, len(benchmarks), runPoint); err != nil {
			return nil, fmt.Errorf("parallel suite: %w", err)
		}
		ms = float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < parallelBest {
			parallelBest = ms
		}
	}
	b.SerialFastMs = serialBest
	b.SerialFastMIPS = mips(totalInsts, serialBest)
	b.ParallelFastMs = parallelBest
	b.ParallelFastMIPS = mips(totalInsts, parallelBest)
	return b, nil
}

// CheckInterpBaseline gates a fresh InterpBench against a committed
// baseline. Absolute MIPS figures vary with the host, so the primary gate
// is the host-relative suite-aggregate fast/checked speedup; the serial MIPS
// is only required to stay inside a wide tolerance band around the
// baseline, catching order-of-magnitude regressions without flaking on
// hardware differences.
func CheckInterpBaseline(cur, base *InterpBench, minSpeedup, tolerancePct float64) error {
	if !cur.AllCyclesIdentical {
		return fmt.Errorf("interp gate: cycle counts diverged between interpreter modes")
	}
	if cur.SuiteSpeedup < minSpeedup {
		return fmt.Errorf("interp gate: suite fast/checked speedup %.2fx below required %.2fx",
			cur.SuiteSpeedup, minSpeedup)
	}
	if cur.TelemetryOverheadPct >= 1.0 {
		return fmt.Errorf("interp gate: armed-telemetry fast-loop overhead %.2f%% at or above the 1%% budget",
			cur.TelemetryOverheadPct)
	}
	// Gate on cur only: baselines written before the energy meter existed
	// have no energy_overhead_pct field and must keep passing.
	if cur.EnergyOverheadPct >= 1.0 {
		return fmt.Errorf("interp gate: armed-energy fast-loop overhead %.2f%% at or above the 1%% budget",
			cur.EnergyOverheadPct)
	}
	floor := base.SerialFastMIPS * (1 - tolerancePct/100)
	if cur.SerialFastMIPS < floor {
		return fmt.Errorf("interp gate: serial fast throughput %.1f MIPS below baseline %.1f MIPS - %.0f%% = %.1f MIPS",
			cur.SerialFastMIPS, base.SerialFastMIPS, tolerancePct, floor)
	}
	return nil
}

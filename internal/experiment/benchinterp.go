package experiment

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/telemetry"
)

// InterpBenchPoint is one kernel benchmark timed under the three interpreter
// modes: the checked stepwise loop (every instruction goes through Step with
// its per-instruction device/pending/fault checks), the per-op event-horizon
// fast loop (block translation disabled), and the translated loop that `Run`
// uses by default, where hot basic blocks execute as fused superinstructions.
type InterpBenchPoint struct {
	Benchmark string `json:"benchmark"`
	Cycles    uint64 `json:"simulated_cycles"`
	// Instructions is the retired-instruction count, identical across modes.
	Instructions uint64 `json:"instructions"`
	// The wall times cover the kernel run alone: machine construction,
	// program rewrite, task admission, and boot happen before the timer
	// starts, because their cost is dominated by host allocation — noisy
	// enough (most of a millisecond either way on a busy allocator) to
	// swamp the sub-1% armed-overhead deltas gated below.
	CheckedMs float64 `json:"checked_ms"`
	FastMs    float64 `json:"fast_ms"`
	FusedMs   float64 `json:"fused_ms"`
	// CheckedMIPS, FastMIPS, and FusedMIPS are host millions of instructions
	// per second under each mode.
	CheckedMIPS float64 `json:"checked_mips"`
	FastMIPS    float64 `json:"fast_mips"`
	FusedMIPS   float64 `json:"fused_mips"`
	// Speedup is FastMIPS/CheckedMIPS — a host-relative ratio, so it is far
	// more stable across machines than either absolute MIPS figure.
	Speedup float64 `json:"speedup"`
	// FusedSpeedup is FusedMIPS/FastMIPS: the additional gain block
	// translation buys over the per-op fast loop it replaced.
	FusedSpeedup float64 `json:"fused_speedup"`
	// BlocksBuilt / BlockInvalidations / FusedFrac come from the fused run's
	// translation stats: how many basic blocks were translated, how many were
	// killed by flash writes, and what fraction of retired instructions
	// executed inside fused superinstructions.
	BlocksBuilt        uint64  `json:"blocks_built"`
	BlockInvalidations uint64  `json:"block_invalidations"`
	FusedFrac          float64 `json:"fused_frac"`
	// TelemetryArmedMs times the default (translated) loop with a telemetry
	// sampler attached whose interval exceeds the run length, so it never
	// fires: the delta against FusedMs isolates the armed check itself (one
	// compare per outer-loop pass — the inner loops are untouched).
	TelemetryArmedMs float64 `json:"telemetry_armed_ms"`
	// EnergyArmedMs times the default loop with an energy meter attached: the
	// meter's hooks live at device transition points and the sleep path, none
	// of them on the per-instruction or fused paths, so the delta against
	// FusedMs bounds what merely attaching a meter costs.
	EnergyArmedMs float64 `json:"energy_armed_ms"`
	// CyclesIdentical confirms the fast and fused loops are optimizations,
	// not different simulations: every mode must retire the same instructions
	// and simulate the same cycles.
	CyclesIdentical bool `json:"cycles_identical"`
}

// InterpBench is the BENCH_interp.json payload.
type InterpBench struct {
	BenchMeta
	Reps int    `json:"reps"`
	Note string `json:"note"`
	// SerialFastMs / SerialFastMIPS aggregate the whole suite run
	// back-to-back on one goroutine in the default configuration (fused
	// blocks at FusedThreshold). The JSON names predate translation; they
	// now measure whatever `Run` does by default.
	SerialFastMs   float64 `json:"serial_fast_ms"`
	SerialFastMIPS float64 `json:"serial_fast_mips"`
	// ParallelFastMs / ParallelFastMIPS run the same suite under the
	// experiment worker pool (one machine per point, runPoints order).
	ParallelWorkers  int     `json:"parallel_workers"`
	ParallelFastMs   float64 `json:"parallel_fast_ms"`
	ParallelFastMIPS float64 `json:"parallel_fast_mips"`
	// MinSpeedup is the smallest per-benchmark fast/checked ratio
	// (informational: the short benchmarks make it noisy, so the gate uses
	// SuiteSpeedup).
	MinSpeedup float64 `json:"min_speedup"`
	// SuiteSpeedup is sum(checked_ms)/sum(fast_ms) across the whole suite —
	// dominated by the long benchmarks, so it is stable enough to gate on.
	SuiteSpeedup float64 `json:"suite_speedup"`
	// FusedThreshold is the block-translation landing threshold the fused
	// passes ran at (the mcu default unless overridden on the CLI).
	FusedThreshold int `json:"fused_threshold"`
	// FusedSuiteSpeedup is sum(fast_ms)/sum(fused_ms): the additional
	// suite-aggregate gain from basic-block superinstruction translation over
	// the per-op fast loop. Host-relative, so stable enough to gate on.
	FusedSuiteSpeedup float64 `json:"fused_suite_speedup"`
	// TotalSuiteSpeedup is sum(checked_ms)/sum(fused_ms): the end-to-end
	// gain of the default interpreter configuration over the checked loop.
	TotalSuiteSpeedup float64 `json:"total_suite_speedup"`
	// TelemetryOverheadPct is the armed-telemetry vs disabled default-loop
	// wall-clock delta, as a percentage of the fused suite floor. The sampler
	// never fires during the armed runs, so this bounds what merely attaching
	// telemetry costs; the interp gate requires it to stay under 1%. Each
	// benchmark contributes its smallest same-rep armed-minus-fused delta
	// (clamped at zero): adjacent passes share host state, so the paired
	// delta cancels the slow drift that independent best-of-reps minima
	// cannot, and host noise only ever adds time, so one quiet rep bounds
	// the real overhead from above.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// EnergyOverheadPct is the same paired armed-vs-disabled estimate for an
	// attached energy meter, gated under 1% like telemetry.
	EnergyOverheadPct  float64            `json:"energy_overhead_pct"`
	AllCyclesIdentical bool               `json:"all_cycles_identical"`
	Benchmarks         []InterpBenchPoint `json:"benchmarks"`
}

const interpBenchLimit = 4_000_000_000

// mips converts an instruction count and a wall time in milliseconds to
// host millions of instructions per second.
func mips(insts uint64, ms float64) float64 {
	if ms <= 0 {
		return 0
	}
	return float64(insts) / (ms * 1000)
}

// BenchInterp times the seven kernel benchmarks under the checked stepwise
// interpreter, the per-op event-horizon fast loop (translation off), and the
// default translated loop (fused basic blocks at the given landing threshold;
// 0 selects the mcu default), then re-times the default suite serially and
// under the parallel pool. It backs `make bench-interp` and
// BENCH_interp.json.
func BenchInterp(reps, workers, threshold int) (*InterpBench, error) {
	if reps <= 0 {
		reps = 3
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if threshold <= 0 {
		threshold = mcu.DefaultTranslationThreshold
	}
	b := &InterpBench{
		BenchMeta: NewBenchMeta("interp", "kernel7"),
		Reps:      reps,
		Note: "checked mode forces the per-instruction Step path (stepwise), which already uses the " +
			"predecoded micro-op cache; fast mode is the event-horizon loop with block translation " +
			"disabled; fused mode is the default configuration, with hot basic blocks translated " +
			"into superinstructions. fused_speedup isolates the translation gain over the per-op " +
			"loop; suite_speedup isolates the event-horizon loop over stepwise; see EXPERIMENTS.md",
		ParallelWorkers:    workers,
		FusedThreshold:     threshold,
		AllCyclesIdentical: true,
	}
	benchmarks := progs.KernelBenchmarks()
	// Suite sums of the per-benchmark paired armed-vs-fused deltas (see the
	// rep loop below); the overhead percentages divide them by the fused
	// suite floor.
	telDeltaSum, energyDeltaSum := 0.0, 0.0
	// The overhead gates compare wall times that differ by well under a
	// millisecond, so a collector cycle landing inside one timed pass but not
	// its counterpart reads as overhead (worst on single-CPU hosts, where the
	// collector shares the measuring core). Disable automatic GC for the
	// measured phase and collect manually between passes: each pass allocates
	// a few MB (machine + predecoded micro-ops), so the heap stays bounded.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, kb := range benchmarks {
		p := InterpBenchPoint{Benchmark: kb.Name}

		// One timed pass: build and boot everything first, then time the
		// kernel run alone. Setup (machine construction, program rewrite,
		// task admission, boot) is dominated by host allocation, whose cost
		// swings by most of a millisecond with allocator state — enough to
		// swamp the sub-1% deltas the armed gates measure — so it stays
		// outside the timed window. The collection before the timer starts
		// for the same reason: a GC pause landing inside one pass but not
		// its counterpart reads as overhead (worst on single-CPU hosts,
		// where the collector shares the measuring core).
		runPass := func(stepwise bool, thr int, cfg kernel.Config) (*mcu.Machine, float64, error) {
			m := mcu.New()
			m.SetStepwise(stepwise)
			m.SetTranslation(thr)
			k, err := bootSenSmart(m, cfg, kb.Program.Clone())
			if err != nil {
				return nil, 0, err
			}
			runtime.GC()
			start := time.Now()
			err = k.Run(interpBenchLimit)
			ms := float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				return nil, 0, err
			}
			if !k.Done() {
				return nil, 0, fmt.Errorf("%d-cycle limit hit before completion", interpBenchLimit)
			}
			return m, ms, nil
		}

		var checkedM, fastM, fusedM *mcu.Machine
		for i := 0; i < reps; i++ {
			m, ms, err := runPass(true, -1, kernel.Config{})
			if err != nil {
				return nil, fmt.Errorf("%s checked: %w", kb.Name, err)
			}
			if i == 0 || ms < p.CheckedMs {
				p.CheckedMs = ms
			}
			checkedM = m
			p.Cycles = m.Cycles()
		}
		// Fast-loop, fused-loop, armed-telemetry, and armed-energy passes
		// interleave rep by rep: the fast/fused pair differ only in block
		// translation, the armed pairs differ by one branch per outer-loop
		// pass (or per device transition for energy), so any measured gap
		// beyond noise is real, and interleaving keeps slow host drift
		// (thermal, cgroup throttling) from biasing one side. The armed
		// overhead estimates pair each armed time against the fused time of
		// the same rep — adjacent passes share host state, so the paired
		// delta cancels drift the independent best-of-reps minima can't —
		// and keep the smallest delta across reps: noise only ever adds
		// time, so any single quiet rep bounds the real overhead from above.
		var fastCycles, fusedCycles, armedCycles, energyCycles uint64
		telDelta, energyDelta := 0.0, 0.0
		for i := 0; i < reps; i++ {
			m, ms, err := runPass(false, -1, kernel.Config{})
			if err != nil {
				return nil, fmt.Errorf("%s fast: %w", kb.Name, err)
			}
			if i == 0 || ms < p.FastMs {
				p.FastMs = ms
			}
			fastM, fastCycles = m, m.Cycles()

			m, fusedRepMs, err := runPass(false, threshold, kernel.Config{})
			if err != nil {
				return nil, fmt.Errorf("%s fused: %w", kb.Name, err)
			}
			if i == 0 || fusedRepMs < p.FusedMs {
				p.FusedMs = fusedRepMs
			}
			fusedM, fusedCycles = m, m.Cycles()

			samp := telemetry.New(telemetry.Options{Every: interpBenchLimit, Ring: 8})
			m, ms, err = runPass(false, threshold, kernel.Config{Telemetry: samp})
			if err != nil {
				return nil, fmt.Errorf("%s telemetry-armed: %w", kb.Name, err)
			}
			if i == 0 || ms < p.TelemetryArmedMs {
				p.TelemetryArmedMs = ms
			}
			if d := ms - fusedRepMs; i == 0 || d < telDelta {
				telDelta = d
			}
			armedCycles = m.Cycles()

			m, ms, err = runPass(false, threshold, kernel.Config{Energy: new(energy.Meter)})
			if err != nil {
				return nil, fmt.Errorf("%s energy-armed: %w", kb.Name, err)
			}
			if i == 0 || ms < p.EnergyArmedMs {
				p.EnergyArmedMs = ms
			}
			if d := ms - fusedRepMs; i == 0 || d < energyDelta {
				energyDelta = d
			}
			energyCycles = m.Cycles()
		}
		// Clamp at zero per benchmark: real overhead cannot be negative, and
		// letting a lucky negative delta on one benchmark offset a real cost
		// on another would hide regressions.
		telDeltaSum += max(telDelta, 0)
		energyDeltaSum += max(energyDelta, 0)
		p.Instructions = fastM.Instructions()
		p.CheckedMIPS = mips(checkedM.Instructions(), p.CheckedMs)
		p.FastMIPS = mips(p.Instructions, p.FastMs)
		p.FusedMIPS = mips(fusedM.Instructions(), p.FusedMs)
		if p.CheckedMIPS > 0 {
			p.Speedup = p.FastMIPS / p.CheckedMIPS
		}
		if p.FastMIPS > 0 {
			p.FusedSpeedup = p.FusedMIPS / p.FastMIPS
		}
		st := fusedM.TranslationStats()
		p.BlocksBuilt = st.Built
		p.BlockInvalidations = st.Invalidations
		if n := fusedM.Instructions(); n > 0 {
			p.FusedFrac = float64(st.FusedInsts) / float64(n)
		}
		p.CyclesIdentical = p.Cycles == fastCycles && p.Cycles == fusedCycles &&
			p.Cycles == armedCycles && p.Cycles == energyCycles &&
			checkedM.Instructions() == fastM.Instructions() &&
			checkedM.Instructions() == fusedM.Instructions()
		if !p.CyclesIdentical {
			return nil, fmt.Errorf("%s: fast/fused loops perturbed the simulation (%d vs %d vs %d vs %d vs %d cycles, %d vs %d vs %d insts)",
				kb.Name, p.Cycles, fastCycles, fusedCycles, armedCycles, energyCycles,
				checkedM.Instructions(), fastM.Instructions(), fusedM.Instructions())
		}
		if b.MinSpeedup == 0 || p.Speedup < b.MinSpeedup {
			b.MinSpeedup = p.Speedup
		}
		b.Benchmarks = append(b.Benchmarks, p)
	}

	// Whole-suite default-mode wall time: serial, then under the worker pool.
	var totalInsts uint64
	var checkedMs, fastMs, fusedMs float64
	for _, p := range b.Benchmarks {
		totalInsts += p.Instructions
		checkedMs += p.CheckedMs
		fastMs += p.FastMs
		fusedMs += p.FusedMs
	}
	if fastMs > 0 {
		b.SuiteSpeedup = checkedMs / fastMs
	}
	if fusedMs > 0 {
		b.FusedSuiteSpeedup = fastMs / fusedMs
		b.TotalSuiteSpeedup = checkedMs / fusedMs
		// The armed runs use the default (translated) configuration, so the
		// overhead baseline is the fused pass, not the per-op fast pass.
		b.TelemetryOverheadPct = 100 * telDeltaSum / fusedMs
		b.EnergyOverheadPct = 100 * energyDeltaSum / fusedMs
	}
	runPoint := func(i int) (uint64, error) {
		m := mcu.New()
		m.SetTranslation(threshold)
		run, err := runSenSmartOn(m, kernel.Config{}, interpBenchLimit, benchmarks[i].Program.Clone())
		if err != nil {
			return 0, err
		}
		return run.Cycles, nil
	}
	serialBest, parallelBest := 0.0, 0.0
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		if _, err := runPoints(1, len(benchmarks), runPoint); err != nil {
			return nil, fmt.Errorf("serial suite: %w", err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < serialBest {
			serialBest = ms
		}
		runtime.GC()
		start = time.Now()
		if _, err := runPoints(workers, len(benchmarks), runPoint); err != nil {
			return nil, fmt.Errorf("parallel suite: %w", err)
		}
		ms = float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < parallelBest {
			parallelBest = ms
		}
	}
	b.SerialFastMs = serialBest
	b.SerialFastMIPS = mips(totalInsts, serialBest)
	b.ParallelFastMs = parallelBest
	b.ParallelFastMIPS = mips(totalInsts, parallelBest)
	return b, nil
}

// CheckInterpBaseline gates a fresh InterpBench against a committed
// baseline. Absolute MIPS figures vary with the host, so the primary gates
// are the host-relative suite-aggregate ratios — fast/checked, fused/fast,
// and the end-to-end checked/fused floor; the serial MIPS is only required
// to stay inside a wide tolerance band around the baseline, catching
// order-of-magnitude regressions without flaking on hardware differences.
func CheckInterpBaseline(cur, base *InterpBench, minSpeedup, minFused, minTotal, tolerancePct float64) error {
	if !cur.AllCyclesIdentical {
		return fmt.Errorf("interp gate: cycle counts diverged between interpreter modes")
	}
	if cur.SuiteSpeedup < minSpeedup {
		return fmt.Errorf("interp gate: suite fast/checked speedup %.2fx below required %.2fx",
			cur.SuiteSpeedup, minSpeedup)
	}
	if cur.FusedSuiteSpeedup < minFused {
		return fmt.Errorf("interp gate: suite fused/fast speedup %.2fx below required %.2fx",
			cur.FusedSuiteSpeedup, minFused)
	}
	if cur.TotalSuiteSpeedup < minTotal {
		return fmt.Errorf("interp gate: suite checked/fused speedup %.2fx below required %.2fx",
			cur.TotalSuiteSpeedup, minTotal)
	}
	if cur.TelemetryOverheadPct >= 1.0 {
		return fmt.Errorf("interp gate: armed-telemetry fast-loop overhead %.2f%% at or above the 1%% budget",
			cur.TelemetryOverheadPct)
	}
	// Gate on cur only: baselines written before the energy meter existed
	// have no energy_overhead_pct field and must keep passing.
	if cur.EnergyOverheadPct >= 1.0 {
		return fmt.Errorf("interp gate: armed-energy fast-loop overhead %.2f%% at or above the 1%% budget",
			cur.EnergyOverheadPct)
	}
	floor := base.SerialFastMIPS * (1 - tolerancePct/100)
	if cur.SerialFastMIPS < floor {
		return fmt.Errorf("interp gate: serial fast throughput %.1f MIPS below baseline %.1f MIPS - %.0f%% = %.1f MIPS",
			cur.SerialFastMIPS, base.SerialFastMIPS, tolerancePct, floor)
	}
	return nil
}

package experiment

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// mutateImage applies one dna-selected adversarial mutation to a benchmark
// image: flipped opcode bits, truncated sections, or an oversized stack
// reservation. These are the malformed inputs a base station could ship
// after a corrupted build or transfer.
func mutateImage(d *dna, p *image.Program) (mutated *image.Program, what string) {
	p = p.Clone()
	switch d.intn(4) {
	case 0: // flip one bit of one code word
		if len(p.Words) == 0 {
			return p, "empty"
		}
		i := (int(d.next())<<8 | int(d.next())) % len(p.Words)
		p.Words[i] ^= 1 << (d.intn(16))
		return p, "bitflip"
	case 1: // flip a whole opcode to another value
		if len(p.Words) == 0 {
			return p, "empty"
		}
		i := (int(d.next())<<8 | int(d.next())) % len(p.Words)
		p.Words[i] = uint16(d.next())<<8 | uint16(d.next())
		return p, "opcode-rewrite"
	case 2: // truncate the text section
		if len(p.Words) < 2 {
			return p, "empty"
		}
		keep := 1 + (int(d.next())<<8|int(d.next()))%(len(p.Words)-1)
		p.Words = p.Words[:keep]
		// Drop text-data ranges that no longer fit; keep Entry as-is — a
		// now-dangling entry point is part of the attack surface.
		var ranges []image.Range
		for _, r := range p.TextData {
			if r.End <= uint32(keep) {
				ranges = append(ranges, r)
			}
		}
		p.TextData = ranges
		return p, "truncated"
	default: // demand an impossible stack frame
		p.StackReserve = 0xFFFF
		return p, "oversized-stack"
	}
}

// assertRejectOrContain is the adversarial property: a mutated image may be
// rejected at any stage (rewrite, load, boot) with an error, and if it gets
// as far as running, the kernel must come back — termination, budget, or a
// surfaced error, but never a panic and never a wedge past the cycle limit.
func assertRejectOrContain(t *testing.T, p *image.Program, what string) {
	t.Helper()
	nat, err := rewriter.Rewrite(p, rewriter.Config{})
	if err != nil {
		return // rejected at rewrite: fine
	}
	m := mcu.New()
	k := kernel.New(m, kernel.Config{})
	task, err := k.AddTask(p.Name, nat)
	if err != nil {
		return // rejected at load: fine
	}
	if err := k.Boot(); err != nil {
		return // rejected at boot: fine
	}
	if err := k.Run(30_000_000); err != nil {
		// A surfaced error is containment too — the harness got control
		// back — but it must be a domain fault, not a Go runtime failure
		// dressed up as one.
		if !strings.Contains(err.Error(), "mcu:") && !strings.Contains(err.Error(), "kernel:") {
			t.Fatalf("%s image: run error is not a machine/kernel fault: %v", what, err)
		}
		return
	}
	_ = task
}

// TestAdversarialImageCorpus drives a fixed corpus of mutated benchmark
// images through the reject-or-contain property — the deterministic
// companion to FuzzAdversarialImage.
func TestAdversarialImageCorpus(t *testing.T) {
	benches := progs.KernelBenchmarks()
	for seed := 0; seed < 48; seed++ {
		d := &dna{data: []byte{byte(seed), byte(seed * 7), byte(seed * 13), byte(seed * 29), byte(seed * 31)}}
		b := benches[seed%len(benches)]
		p, what := mutateImage(d, b.Program)
		t.Run(p.Name+"/"+what, func(t *testing.T) {
			assertRejectOrContain(t, p, what)
		})
	}
}

// FuzzAdversarialImage lets the fuzzer drive the mutation choices: any byte
// string selects a benchmark and a mutation, and the result must be
// rejected or contained — never a panic, never a wedge.
//
//	go test ./internal/experiment -run Fuzz -fuzz=FuzzAdversarialImage -fuzztime=10s
func FuzzAdversarialImage(f *testing.F) {
	for _, kb := range progs.KernelBenchmarks() {
		f.Add(dnaFromProgram(kb.Program))
	}
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 0, 0})
	f.Add([]byte{2, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &dna{data: data}
		benches := progs.KernelBenchmarks()
		b := benches[d.intn(len(benches))]
		p, what := mutateImage(d, b.Program)
		assertRejectOrContain(t, p, what)
	})
}

package experiment

import (
	"path/filepath"
	"strings"
	"testing"
)

// interpFixture builds a minimal but schema-complete interp payload.
func interpFixture(fastMIPS float64) *InterpBench {
	b := &InterpBench{
		BenchMeta:          NewBenchMeta("interp", "kernel7"),
		Reps:               3,
		SerialFastMs:       10,
		SerialFastMIPS:     fastMIPS,
		SuiteSpeedup:       3.0,
		FusedThreshold:     32,
		FusedSuiteSpeedup:  2.0,
		TotalSuiteSpeedup:  6.0,
		AllCyclesIdentical: true,
	}
	b.Benchmarks = []InterpBenchPoint{
		{Benchmark: "lfsr", Cycles: 1000, Instructions: 500, CheckedMs: 3, FastMs: 1, FusedMs: 0.5,
			CheckedMIPS: fastMIPS / 3, FastMIPS: fastMIPS, FusedMIPS: 2 * fastMIPS,
			Speedup: 3, FusedSpeedup: 2, CyclesIdentical: true},
		{Benchmark: "sort", Cycles: 2000, Instructions: 900, CheckedMs: 6, FastMs: 2, FusedMs: 1,
			CheckedMIPS: fastMIPS / 3, FastMIPS: fastMIPS, FusedMIPS: 2 * fastMIPS,
			Speedup: 3, FusedSpeedup: 2, CyclesIdentical: true},
	}
	return b
}

func writeFixture(t *testing.T, name string, v any) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if _, err := WriteBenchFile(path, v); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareIdenticalFilesOK(t *testing.T) {
	old := writeFixture(t, "old.json", interpFixture(100))
	cur := writeFixture(t, "new.json", interpFixture(100))
	tbl, regressions, err := CompareBenchFiles(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("identical files regressed: %v", regressions)
	}
	for _, row := range tbl.Rows {
		if v := row[len(row)-1]; v != "ok" && v != "n/a" {
			t.Fatalf("identical files produced verdict %q in row %v", v, row)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := writeFixture(t, "old.json", interpFixture(100))
	slow := interpFixture(50) // halved throughput, well outside a 10% band
	cur := writeFixture(t, "new.json", slow)
	_, regressions, err := CompareBenchFiles(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) == 0 {
		t.Fatal("halved MIPS not flagged as a regression")
	}
	found := false
	for _, r := range regressions {
		if strings.Contains(r, "serial_fast_mips") {
			found = true
		}
	}
	if !found {
		t.Fatalf("suite throughput row missing from regressions: %v", regressions)
	}
}

func TestCompareDirectionAware(t *testing.T) {
	// Wall-clock metrics regress UPWARD: a slower profiled_ms must be
	// flagged even though the number grew.
	oldB := &ProfileBench{
		BenchMeta: NewBenchMeta("profile", "kernel7"),
		Benchmarks: []ProfileBenchPoint{
			{Benchmark: "lfsr", UnprofiledMs: 10, ProfiledMs: 12},
		},
	}
	newB := &ProfileBench{
		BenchMeta: NewBenchMeta("profile", "kernel7"),
		Benchmarks: []ProfileBenchPoint{
			{Benchmark: "lfsr", UnprofiledMs: 10, ProfiledMs: 30},
		},
	}
	old := writeFixture(t, "old.json", oldB)
	cur := writeFixture(t, "new.json", newB)
	_, regressions, err := CompareBenchFiles(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "profiled_ms") {
		t.Fatalf("2.5x slower profiled_ms not flagged: %v", regressions)
	}
}

func TestCompareKindMismatch(t *testing.T) {
	old := writeFixture(t, "old.json", interpFixture(100))
	cur := writeFixture(t, "new.json", &ProfileBench{BenchMeta: NewBenchMeta("profile", "kernel7")})
	if _, _, err := CompareBenchFiles(old, cur, 10); err == nil {
		t.Fatal("comparing interp against profile did not error")
	}
}

// Files written before the BenchMeta header existed carry no kind; the
// loader must still classify them by payload shape and note the inference.
func TestCompareLegacyFileInference(t *testing.T) {
	legacy := interpFixture(100)
	legacy.BenchMeta = BenchMeta{} // schema_version 0, no kind
	old := writeFixture(t, "old.json", legacy)
	cur := writeFixture(t, "new.json", interpFixture(100))
	tbl, regressions, err := CompareBenchFiles(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("legacy comparison regressed: %v", regressions)
	}
	noted := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "legacy") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("legacy inference not noted: %v", tbl.Notes)
	}
}

func TestCompareMissingBenchmarkNoted(t *testing.T) {
	old := writeFixture(t, "old.json", interpFixture(100))
	cur := interpFixture(100)
	cur.Benchmarks = cur.Benchmarks[:1] // drop "sort"
	curPath := writeFixture(t, "new.json", cur)
	tbl, _, err := CompareBenchFiles(old, curPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	noted := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "sort") && strings.Contains(n, "only one file") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("dropped benchmark not noted: %v", tbl.Notes)
	}
}

func TestCompareRejectsUnknownPayload(t *testing.T) {
	path := writeFixture(t, "odd.json", map[string]int{"answer": 42})
	if _, _, err := CompareBenchFiles(path, path, 10); err == nil {
		t.Fatal("unrecognized payload did not error")
	}
}

// warmstartFixture builds a minimal warmstart payload.
func warmstartFixture(identical bool, speedup float64, warmNS int64) *WarmstartBench {
	return &WarmstartBench{
		BenchMeta:     NewBenchMeta("warmstart", "kernel7"),
		SnapshotBytes: 7000,
		Identical:     identical,
		ColdWallNS:    2_000_000_000,
		WarmWallNS:    warmNS,
		Speedup:       speedup,
	}
}

// energyFixture builds a minimal energy payload.
func energyFixture(lfsrPJ, matePJ, tkPJ uint64, orderingOK bool) *EnergyBench {
	b := &EnergyBench{
		BenchMeta:   NewBenchMeta("energy", "kernel7 + periodic baselines"),
		Activations: 10,
		OrderingOK:  orderingOK,
	}
	b.Benchmarks = []EnergyBenchPoint{{Benchmark: "lfsr", Cycles: 1000}}
	b.Benchmarks[0].TotalPJ = lfsrPJ
	b.Baselines = []EnergyBaselineRow{
		{Baseline: "mate", Activations: 10, TotalPJ: matePJ * 10, PJPerActivation: matePJ},
		{Baseline: "t-kernel", Activations: 10, TotalPJ: tkPJ * 10, PJPerActivation: tkPJ},
	}
	return b
}

// Both new kinds through the full load-diff-verdict path, table-driven:
// identical files pass, regressions in the bad direction are flagged, and
// moves in the good direction are not (direction awareness).
func TestCompareWarmstartAndEnergyKinds(t *testing.T) {
	cases := []struct {
		name        string
		old, new    any
		wantRegress string // "" = no regression expected
	}{
		{"warmstart identical ok",
			warmstartFixture(true, 1.5, 1_000_000_000),
			warmstartFixture(true, 1.5, 1_000_000_000), ""},
		{"warmstart identity flip regresses",
			warmstartFixture(true, 1.5, 1_000_000_000),
			warmstartFixture(false, 1.5, 1_000_000_000), "identical"},
		{"warmstart slower warm pass regresses",
			warmstartFixture(true, 1.5, 1_000_000_000),
			warmstartFixture(true, 1.5, 5_000_000_000), "warm_wall"},
		{"warmstart faster warm pass is not a regression",
			warmstartFixture(true, 1.5, 1_000_000_000),
			warmstartFixture(true, 3.5, 400_000_000), ""},
		{"energy identical ok",
			energyFixture(5000, 900, 100, true),
			energyFixture(5000, 900, 100, true), ""},
		{"energy benchmark joules growth regresses",
			energyFixture(5000, 900, 100, true),
			energyFixture(9000, 900, 100, true), "total_pj"},
		{"energy baseline pj/activation growth regresses",
			energyFixture(5000, 900, 100, true),
			energyFixture(5000, 900, 300, true), "pj_per_activation"},
		{"energy joules drop is not a regression",
			energyFixture(5000, 900, 100, true),
			energyFixture(2000, 900, 100, true), ""},
		{"energy ordering flip regresses",
			energyFixture(5000, 900, 100, true),
			energyFixture(5000, 900, 100, false), "ordering_ok"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := writeFixture(t, "old.json", tc.old)
			cur := writeFixture(t, "new.json", tc.new)
			_, regressions, err := CompareBenchFiles(old, cur, 10)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantRegress == "" {
				if len(regressions) != 0 {
					t.Fatalf("unexpected regressions: %v", regressions)
				}
				return
			}
			found := false
			for _, r := range regressions {
				if strings.Contains(r, tc.wantRegress) {
					found = true
				}
			}
			if !found {
				t.Fatalf("metric %q not flagged; regressions: %v", tc.wantRegress, regressions)
			}
		})
	}
}

func TestCompareEnergyMissingBaselineNoted(t *testing.T) {
	old := energyFixture(5000, 900, 100, true)
	cur := energyFixture(5000, 900, 100, true)
	cur.Baselines = cur.Baselines[:1] // drop "t-kernel"
	oldPath := writeFixture(t, "old.json", old)
	curPath := writeFixture(t, "new.json", cur)
	tbl, _, err := CompareBenchFiles(oldPath, curPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	noted := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "t-kernel") && strings.Contains(n, "only one file") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("dropped baseline not noted: %v", tbl.Notes)
	}
}

func TestCheckInterpBaselineTelemetryGate(t *testing.T) {
	base := interpFixture(100)
	cur := interpFixture(100)
	if err := CheckInterpBaseline(cur, base, 1.5, 1.3, 1.5, 40); err != nil {
		t.Fatalf("clean bench failed the gate: %v", err)
	}
	cur.TelemetryOverheadPct = 1.5
	if err := CheckInterpBaseline(cur, base, 1.5, 1.3, 1.5, 40); err == nil {
		t.Fatal("1.5% armed-telemetry overhead passed the <1% gate")
	}
}

func TestCheckInterpBaselineEnergyGate(t *testing.T) {
	// The gate reads only the fresh run's field, so baselines written before
	// the energy meter existed (no energy_overhead_pct) must keep passing.
	base := interpFixture(100)
	cur := interpFixture(100)
	cur.EnergyOverheadPct = 1.5
	if err := CheckInterpBaseline(cur, base, 1.5, 1.3, 1.5, 40); err == nil {
		t.Fatal("1.5% armed-energy overhead passed the <1% gate")
	}
}

func TestCheckInterpBaselineFusedGate(t *testing.T) {
	base := interpFixture(100)
	cur := interpFixture(100)
	cur.FusedSuiteSpeedup = 1.1
	if err := CheckInterpBaseline(cur, base, 1.5, 1.3, 1.5, 40); err == nil {
		t.Fatal("1.1x fused suite speedup passed the 1.3x gate")
	}
}

func TestCheckInterpBaselineTotalGate(t *testing.T) {
	base := interpFixture(100)
	cur := interpFixture(100)
	cur.TotalSuiteSpeedup = 1.4
	if err := CheckInterpBaseline(cur, base, 1.5, 1.3, 1.5, 40); err == nil {
		t.Fatal("1.4x total suite speedup passed the 1.5x gate")
	}
}

func TestCompareInterpOldBaselineWithoutFusedColumns(t *testing.T) {
	// A baseline written before block translation has zero fused columns;
	// the comparator must skip them (with a note), not flag regressions.
	old := interpFixture(100)
	old.FusedSuiteSpeedup = 0
	old.TotalSuiteSpeedup = 0
	for i := range old.Benchmarks {
		old.Benchmarks[i].FusedMs = 0
		old.Benchmarks[i].FusedMIPS = 0
		old.Benchmarks[i].FusedSpeedup = 0
	}
	oldPath := writeFixture(t, "old.json", old)
	curPath := writeFixture(t, "new.json", interpFixture(100))
	tbl, regressions, err := CompareBenchFiles(oldPath, curPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("fused columns vs pre-translation baseline flagged: %v", regressions)
	}
	noted := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "fused") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("skipped fused columns not noted: %v", tbl.Notes)
	}
}

package experiment

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/progs"
)

// ProfileBenchPoint is one benchmark timed with the profiler hook disabled
// (nil, the default) and enabled.
type ProfileBenchPoint struct {
	Benchmark string `json:"benchmark"`
	Cycles    uint64 `json:"simulated_cycles"`
	// UnprofiledMs is the best-of-reps host wall time with every profiling
	// hook nil — the disabled path every ordinary run takes.
	UnprofiledMs float64 `json:"unprofiled_ms"`
	// UnprofiledRepeatMs is a second, independent best-of-reps pass of the
	// same disabled configuration. The relative delta between the two passes
	// bounds what the nil hook check could possibly cost: the check is one
	// pointer compare per instruction, so any real cost must show up inside
	// this noise band.
	UnprofiledRepeatMs float64 `json:"unprofiled_repeat_ms"`
	DisabledDeltaPct   float64 `json:"disabled_delta_pct"`
	ProfiledMs         float64 `json:"profiled_ms"`
	// ProfiledOverheadPct is the full cost of cycle-exact attribution
	// (per-PC counters, stack sampling bookkeeping) relative to the
	// disabled path.
	ProfiledOverheadPct float64 `json:"profiled_overhead_pct"`
	// CyclesIdentical confirms the profiler observes without perturbing:
	// both modes must simulate exactly the same number of cycles.
	CyclesIdentical bool   `json:"cycles_identical"`
	HotFrame        string `json:"hot_frame"`
}

// ProfileBench is the BENCH_profile.json payload.
type ProfileBench struct {
	BenchMeta
	Reps               int                 `json:"reps"`
	DisabledWithin5Pct bool                `json:"disabled_within_5pct"`
	Note               string              `json:"note"`
	Benchmarks         []ProfileBenchPoint `json:"benchmarks"`
}

// timeRun executes one benchmark to completion reps times and returns the
// best wall time plus the last run's cycle count (identical across reps —
// the simulator is deterministic).
func timeRun(prog func() (*senSmartRun, error), reps int) (float64, uint64, error) {
	best, cycles := 0.0, uint64(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		run, err := prog()
		if err != nil {
			return 0, 0, err
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < best {
			best = ms
		}
		cycles = run.Cycles
	}
	return best, cycles, nil
}

// BenchProfile times the seven kernel benchmarks with the profiler hook
// disabled (twice, independently) and enabled, serially to keep the wall
// clocks honest. It backs the `make bench` target and BENCH_profile.json.
func BenchProfile(reps int) (*ProfileBench, error) {
	if reps <= 0 {
		reps = 3
	}
	b := &ProfileBench{
		BenchMeta: NewBenchMeta("profile", "kernel7"),
		Reps:      reps,
		Note: "disabled_delta_pct compares two independent passes of the nil-hook configuration: " +
			"the disabled hook is a single pointer compare per instruction, so its cost is bounded by this noise band",
		DisabledWithin5Pct: true,
	}
	for _, kb := range progs.KernelBenchmarks() {
		p := ProfileBenchPoint{Benchmark: kb.Name}

		unprofiled := func() (*senSmartRun, error) {
			return runSenSmart(kernel.Config{}, 4_000_000_000, kb.Program.Clone())
		}
		var err error
		p.UnprofiledMs, p.Cycles, err = timeRun(unprofiled, reps)
		if err != nil {
			return nil, fmt.Errorf("%s unprofiled: %w", kb.Name, err)
		}
		var repeatCycles uint64
		p.UnprofiledRepeatMs, repeatCycles, err = timeRun(unprofiled, reps)
		if err != nil {
			return nil, fmt.Errorf("%s unprofiled repeat: %w", kb.Name, err)
		}
		lo, hi := p.UnprofiledMs, p.UnprofiledRepeatMs
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo > 0 {
			p.DisabledDeltaPct = 100 * (hi - lo) / lo
		}
		if p.DisabledDeltaPct >= 5 {
			b.DisabledWithin5Pct = false
		}

		var prof *profile.Profiler
		profiledCycles := uint64(0)
		p.ProfiledMs, profiledCycles, err = timeRun(func() (*senSmartRun, error) {
			prof = profile.New(profile.Options{})
			return runSenSmart(kernel.Config{Profile: prof}, 4_000_000_000, kb.Program.Clone())
		}, reps)
		if err != nil {
			return nil, fmt.Errorf("%s profiled: %w", kb.Name, err)
		}
		if p.UnprofiledMs > 0 {
			p.ProfiledOverheadPct = 100 * (p.ProfiledMs - p.UnprofiledMs) / p.UnprofiledMs
		}
		p.CyclesIdentical = p.Cycles == profiledCycles && p.Cycles == repeatCycles
		if !p.CyclesIdentical {
			return nil, fmt.Errorf("%s: profiling perturbed the simulation (%d vs %d cycles)",
				kb.Name, p.Cycles, profiledCycles)
		}
		if top := prof.Top(1); len(top) > 0 {
			p.HotFrame = top[0].Frame
		}
		b.Benchmarks = append(b.Benchmarks, p)
	}
	return b, nil
}

package experiment

import (
	"fmt"
	"strings"

	"repro/internal/avr/asm"
	"repro/internal/kernel"
)

// probe measures the per-repetition cycle cost of an instruction sequence
// under SenSmart and natively; the difference is the kernel overhead that
// Table II reports. The repetitions are separated so the grouped-access
// optimization cannot fuse them.
type probe struct {
	name     string
	prologue string
	rep      string // one repetition (may be several lines)
	paper    string // the value Table II reports ("~" marks estimates)
}

const probeReps = 64

func (p probe) build(name string, reps int) string {
	var b strings.Builder
	b.WriteString(".data\nbuf: .space 8\n.text\nmain:\n")
	b.WriteString(p.prologue)
	b.WriteString("\n")
	for i := 0; i < reps; i++ {
		b.WriteString(strings.ReplaceAll(p.rep, "@", fmt.Sprintf("%d", i)))
		b.WriteString("\n")
	}
	b.WriteString("    break\n")
	return b.String()
}

// measure returns the overhead cycles per repetition (SenSmart minus native).
func (p probe) measure() (int64, error) {
	var perSystem [2]int64 // 0: sensmart, 1: native
	cost := func(native bool, reps int) (uint64, error) {
		prog, err := asm.Assemble(fmt.Sprintf("probe-%s-%d", p.name, reps), p.build(p.name, reps))
		if err != nil {
			return 0, err
		}
		if native {
			c, _, err := runNativeCycles(prog, 50_000_000)
			return c, err
		}
		run, err := runSenSmart(kernel.Config{}, 50_000_000, prog)
		if err != nil {
			return 0, err
		}
		return run.Cycles, nil
	}
	for i, native := range []bool{false, true} {
		base, err := cost(native, 0)
		if err != nil {
			return 0, fmt.Errorf("probe %s: %w", p.name, err)
		}
		full, err := cost(native, probeReps)
		if err != nil {
			return 0, fmt.Errorf("probe %s: %w", p.name, err)
		}
		perSystem[i] = (int64(full) - int64(base)) / probeReps
	}
	return perSystem[0] - perSystem[1], nil
}

// table2Probes lists the measurable Table II rows.
var table2Probes = []probe{
	{
		name:  "mem direct I/O area",
		rep:   "    lds r24, 0x0052      ; TCNT0 through data space",
		paper: "2",
	},
	{
		name:  "mem direct others (heap)",
		rep:   "    lds r24, buf",
		paper: "28",
	},
	{
		name: "mem indirect I/O area",
		prologue: `    ldi r26, 0x52
    ldi r27, 0x00`,
		rep:   "    ld r24, X\n    mov r0, r0",
		paper: "54",
	},
	{
		name: "mem indirect heap",
		prologue: `    ldi r26, lo8(buf)
    ldi r27, hi8(buf)`,
		rep:   "    ld r24, X\n    mov r0, r0",
		paper: "~80 (garbled in source)",
	},
	{
		name: "mem indirect stack frame",
		prologue: `    ldi r28, 0xE0
    ldi r29, 0x10          ; Y -> logical stack area`,
		rep:   "    ldd r24, Y+1\n    mov r0, r0",
		paper: "~82 (garbled in source)",
	},
	{
		name:  "stack operation (push, native)",
		rep:   "    push r24\n    pop r24",
		paper: "~ (garbled in source)",
	},
	{
		name: "program memory (ijmp)",
		rep: `    ldi r30, lo8(tgt@)
    ldi r31, hi8(tgt@)
    ijmp
tgt@:`,
		paper: "376",
	},
	{
		name:  "get stack pointer",
		rep:   "    in r24, SPL",
		paper: "45",
	},
	{
		name:     "set stack pointer",
		prologue: "    in r28, SPL",
		rep:      "    out SPL, r28",
		paper:    "94",
	},
}

// Table2 measures the overhead of the kernel's key operations and compares
// them with the paper's Table II.
func Table2() (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Overhead of key operations in cycles (Table II)",
		Header: []string{"Operation", "Measured", "Paper"},
	}

	// System initialization: cycles charged by Boot on an empty workload.
	{
		prog, err := asm.Assemble("probe-init", "main:\n    break\n")
		if err != nil {
			return nil, err
		}
		run, err := runSenSmart(kernel.Config{}, 1_000_000, prog)
		if err != nil {
			return nil, err
		}
		// Subtract the probe body: ktrap fetch (1) + exit service.
		t.Rows = append(t.Rows, []string{"system initialization",
			utoa(run.Cycles - 1), "5738"})
	}

	for _, p := range table2Probes {
		got, err := p.measure()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{p.name, fmt.Sprintf("%d", got), p.paper})
	}

	// Stack relocation: trigger real relocations with a recursive task and
	// average the charged cost.
	{
		prog := asm.MustAssemble("probe-reloc", relocProbeSrc)
		run, err := runSenSmart(kernel.Config{InitialStack: 64}, 200_000_000, prog)
		if err != nil {
			return nil, err
		}
		st := run.K.Stats
		if st.Relocations == 0 {
			return nil, fmt.Errorf("experiment: relocation probe did not relocate")
		}
		avg := (uint64(st.Relocations)*kernel.CostStackReloc +
			st.RelocatedBytes*kernel.CostRelocPerByte) / uint64(st.Relocations)
		t.Rows = append(t.Rows, []string{"stack relocation (avg, measured workload)",
			utoa(avg), "2326 + copy"})
	}

	// Context switch rows are charged as Table II constants; report them.
	t.Rows = append(t.Rows,
		[]string{"context saving (configured)", itoa(kernel.CostCtxSave), "932"},
		[]string{"context restoring (configured)", itoa(kernel.CostCtxRestore), "976"},
		[]string{"full switching (configured)", itoa(kernel.CostFullSwitch), "2298"},
	)
	t.Notes = append(t.Notes,
		"measured = (SenSmart cycles - native cycles) per operation over 64 repetitions",
		"rows marked 'configured' are the Table II constants the kernel charges per event",
		"'~' paper entries were unreadable in the available copy; see EXPERIMENTS.md")
	return t, nil
}

// relocProbeSrc recurses 120 levels deep (3 stack bytes per level), forcing
// the kernel to relocate its stack repeatedly from the 64-byte initial size.
const relocProbeSrc = `
main:
    ldi r24, 120
    rcall eat
    break
eat:
    push r24
    dec r24
    brne eat
drain:
    pop r24
    cpi r24, 120
    brne drain
    ret
`

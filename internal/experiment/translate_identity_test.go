package experiment

import (
	"bytes"
	"testing"

	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/profile"
	"repro/internal/progs"
	"repro/internal/trace"
)

// translationModes configures one machine per interpreter mode under test:
// the fully-checked stepwise loop, the per-op event-horizon fast loop
// (translation off), and basic-block translation forced on (threshold 1, so
// every block fuses on its first landing) plus at the default threshold.
var translationModes = []struct {
	name  string
	setup func(m *mcu.Machine)
}{
	{"stepwise", func(m *mcu.Machine) { m.SetStepwise(true); m.SetTranslation(-1) }},
	{"fast", func(m *mcu.Machine) { m.SetTranslation(-1) }},
	{"fused-1", func(m *mcu.Machine) { m.SetTranslation(1) }},
	{"fused-default", func(m *mcu.Machine) { m.SetTranslation(0) }},
}

// TestTranslatedSuiteIdentity extends the fast-vs-stepwise identity suite to
// block translation: all seven kernel benchmarks run under every interpreter
// mode and must simulate identical cycles, idle cycles, retired instructions,
// and energy ledgers. The threshold-1 runs must actually dispatch fused
// blocks, or the mode proves nothing.
func TestTranslatedSuiteIdentity(t *testing.T) {
	for _, kb := range progs.KernelBenchmarks() {
		t.Run(kb.Name, func(t *testing.T) {
			type outcome struct {
				cycles, idle, insts uint64
				energy              energy.Breakdown
			}
			var want outcome
			for i, mode := range translationModes {
				m := mcu.New()
				mode.setup(m)
				meter := new(energy.Meter)
				run, err := runSenSmartOn(m, kernel.Config{Energy: meter}, 4_000_000_000, kb.Program.Clone())
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				got := outcome{
					cycles: run.Cycles,
					idle:   run.Idle,
					insts:  m.Instructions(),
					energy: meter.Report(run.Cycles),
				}
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s diverged from stepwise:\n got %+v\nwant %+v", mode.name, got, want)
				}
				if mode.name == "fused-1" {
					if st := m.TranslationStats(); st.FusedDispatches == 0 {
						t.Errorf("fused-1 dispatched no blocks: %+v", st)
					}
				}
			}
		})
	}
}

// TestTranslationObserverByteIdentity pins the observer contract: attached
// trace recorders and profilers force the checked Step path, so their output
// must be byte-identical whether translation is enabled or not — fused
// blocks must never leak into an observed run.
func TestTranslationObserverByteIdentity(t *testing.T) {
	workload := tracedWorkload(t)

	tracedBytes := func(threshold int) []byte {
		t.Helper()
		rec := trace.New()
		m := mcu.New()
		m.SetTranslation(threshold)
		if _, err := runSenSmartOn(m, kernel.Config{Trace: rec}, 4_000_000_000,
			workload[0].Clone(), workload[1].Clone()); err != nil {
			t.Fatal(err)
		}
		return rec.Encode()
	}
	if on, off := tracedBytes(1), tracedBytes(-1); !bytes.Equal(on, off) {
		t.Errorf("trace streams differ with translation on vs off (%d vs %d bytes)", len(on), len(off))
	}

	profBytes := func(threshold int) []byte {
		t.Helper()
		prof := profile.New(profile.Options{})
		m := mcu.New()
		m.SetTranslation(threshold)
		if _, err := runSenSmartOn(m, kernel.Config{Profile: prof}, 4_000_000_000,
			workload[0].Clone(), workload[1].Clone()); err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := prof.WritePprof(&pb); err != nil {
			t.Fatal(err)
		}
		return pb.Bytes()
	}
	on, off := profBytes(1), profBytes(-1)
	if len(on) == 0 {
		t.Fatal("empty pprof export")
	}
	if !bytes.Equal(on, off) {
		t.Errorf("pprof exports differ with translation on vs off (%d vs %d bytes)", len(on), len(off))
	}
}

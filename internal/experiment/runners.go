package experiment

import (
	"errors"
	"fmt"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// senSmartRun is the outcome of running programs to completion under the
// SenSmart kernel.
type senSmartRun struct {
	K      *kernel.Kernel
	Cycles uint64
	Idle   uint64
}

// runSenSmart naturalizes the programs, boots a kernel with one task per
// program, and runs until all tasks exit (or the cycle limit).
func runSenSmart(cfg kernel.Config, limit uint64, programs ...*image.Program) (*senSmartRun, error) {
	m := mcu.New()
	k := kernel.New(m, cfg)
	for i, p := range programs {
		nat, err := rewriter.Rewrite(p, rewriter.Config{})
		if err != nil {
			return nil, err
		}
		if _, err := k.AddTask(fmt.Sprintf("%s#%d", p.Name, i), nat); err != nil {
			return nil, err
		}
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	if err := k.Run(limit); err != nil {
		return nil, err
	}
	if !k.Done() {
		return nil, fmt.Errorf("experiment: %d-cycle limit hit before completion", limit)
	}
	return &senSmartRun{K: k, Cycles: m.Cycles(), Idle: m.IdleCycles()}, nil
}

// runNativeCycles executes a program bare-metal and returns its cycle count.
func runNativeCycles(p *image.Program, limit uint64) (uint64, uint64, error) {
	m := mcu.New()
	if err := m.LoadFlash(0, p.Words); err != nil {
		return 0, 0, err
	}
	for i, b := range p.DataInit {
		m.Poke(p.HeapBase+uint16(i), b)
	}
	m.SetPC(p.Entry)
	err := m.Run(limit)
	var f *mcu.Fault
	if errors.As(err, &f) && f.Kind == mcu.FaultBreak {
		return m.Cycles(), m.IdleCycles(), nil
	}
	if err == nil {
		return 0, 0, fmt.Errorf("experiment: native run of %s hit the cycle limit", p.Name)
	}
	return 0, 0, err
}

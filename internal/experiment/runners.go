package experiment

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/rewriter"
)

// natCacheKey identifies one rewrite: sweeps re-naturalize the same assembled
// program under the same rewriter configuration at every point, so the
// (name, config) pair is the natural memoization key.
type natCacheKey struct {
	name string
	cfg  rewriter.Config
}

// natCacheCap bounds the rewrite cache. Sweeps use a handful of programs and
// at most a few rewriter configurations, so 64 entries is generous; if an
// unusual caller exceeds it we simply rewrite without caching rather than
// grow without bound.
const natCacheCap = 64

var natCache = struct {
	mu sync.Mutex
	m  map[natCacheKey]*rewriter.Naturalized
}{m: make(map[natCacheKey]*rewriter.Naturalized)}

// sameProgram reports whether p matches the program a cached rewrite was
// built from. Program names are not globally unique (workload sizes vary
// across experiments), so a hit is only trusted after comparing content.
func sameProgram(a, b *image.Program) bool {
	return a.Entry == b.Entry &&
		a.HeapBase == b.HeapBase &&
		a.HeapSize == b.HeapSize &&
		a.StackReserve == b.StackReserve &&
		slices.Equal(a.Words, b.Words) &&
		slices.Equal(a.DataInit, b.DataInit)
}

// naturalize is a memoizing rewriter.Rewrite: the first call for a given
// (program, config) pays for the rewrite, later calls hand out independent
// clones. Rewriting is deterministic, so a clone of a cached result is
// indistinguishable from a fresh rewrite.
func naturalize(p *image.Program, cfg rewriter.Config) (*rewriter.Naturalized, error) {
	key := natCacheKey{name: p.Name, cfg: cfg}
	natCache.mu.Lock()
	cached, ok := natCache.m[key]
	natCache.mu.Unlock()
	if ok && sameProgram(p, cached.Orig) {
		return cached.Clone(), nil
	}
	nat, err := rewriter.Rewrite(p, cfg)
	if err != nil {
		return nil, err
	}
	natCache.mu.Lock()
	if len(natCache.m) < natCacheCap || ok {
		natCache.m[key] = nat.Clone()
	}
	natCache.mu.Unlock()
	return nat, nil
}

// senSmartRun is the outcome of running programs to completion under the
// SenSmart kernel.
type senSmartRun struct {
	K      *kernel.Kernel
	Cycles uint64
	Idle   uint64
}

// runSenSmart naturalizes the programs, boots a kernel with one task per
// program, and runs until all tasks exit (or the cycle limit).
func runSenSmart(cfg kernel.Config, limit uint64, programs ...*image.Program) (*senSmartRun, error) {
	return runSenSmartOn(mcu.New(), cfg, limit, programs...)
}

// runSenSmartOn is runSenSmart on a caller-provided machine, so benchmarks
// can configure the interpreter (e.g. force the checked stepwise loop)
// before the kernel boots.
func runSenSmartOn(m *mcu.Machine, cfg kernel.Config, limit uint64, programs ...*image.Program) (*senSmartRun, error) {
	k, err := bootSenSmart(m, cfg, programs...)
	if err != nil {
		return nil, err
	}
	if err := k.Run(limit); err != nil {
		return nil, err
	}
	if !k.Done() {
		return nil, fmt.Errorf("experiment: %d-cycle limit hit before completion", limit)
	}
	return &senSmartRun{K: k, Cycles: m.Cycles(), Idle: m.IdleCycles()}, nil
}

// bootSenSmart is everything runSenSmartOn does before the run itself:
// naturalize the programs, admit them as tasks, and boot the kernel. The
// throughput benchmarks use the split to keep setup — dominated by host
// allocation, whose cost swings by most of a millisecond with allocator
// state — out of their timed windows; everything else goes through
// runSenSmartOn.
func bootSenSmart(m *mcu.Machine, cfg kernel.Config, programs ...*image.Program) (*kernel.Kernel, error) {
	k := kernel.New(m, cfg)
	for i, p := range programs {
		nat, err := naturalize(p, rewriter.Config{})
		if err != nil {
			return nil, err
		}
		if _, err := k.AddTask(fmt.Sprintf("%s#%d", p.Name, i), nat); err != nil {
			return nil, err
		}
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	return k, nil
}

// runNativeCycles executes a program bare-metal and returns its cycle count.
func runNativeCycles(p *image.Program, limit uint64) (uint64, uint64, error) {
	m := mcu.New()
	if err := m.LoadFlash(0, p.Words); err != nil {
		return 0, 0, err
	}
	for i, b := range p.DataInit {
		m.Poke(p.HeapBase+uint16(i), b)
	}
	m.SetPC(p.Entry)
	err := m.Run(limit)
	var f *mcu.Fault
	if errors.As(err, &f) && f.Kind == mcu.FaultBreak {
		return m.Cycles(), m.IdleCycles(), nil
	}
	if err == nil {
		return 0, 0, fmt.Errorf("experiment: native run of %s hit the cycle limit", p.Name)
	}
	return 0, 0, err
}

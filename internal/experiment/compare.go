package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/faultinject"
)

// benchFile is one parsed BENCH_* file: its header plus exactly one typed
// payload, selected by the header's kind (or inferred for legacy files
// written before the header existed).
type benchFile struct {
	path      string
	meta      BenchMeta
	interp    *InterpBench
	profile   *ProfileBench
	parallel  *ParallelBench
	faultcamp *FaultBench
	warmstart *WarmstartBench
	energy    *EnergyBench
}

// loadBenchFile reads and type-detects one BENCH_* file.
func loadBenchFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// The probe decodes only the header plus one shape-discriminating field
	// per kind, so legacy files (schema_version 0, no kind) still classify.
	var probe struct {
		BenchMeta
		SuiteSpeedup *float64        `json:"suite_speedup"`
		Disabled     *bool           `json:"disabled_within_5pct"`
		Sweeps       json.RawMessage `json:"sweeps"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	kind := probe.Kind
	if kind == "" {
		switch {
		case probe.SuiteSpeedup != nil:
			kind = "interp"
		case probe.Disabled != nil:
			kind = "profile"
		case probe.Sweeps != nil:
			kind = "parallel"
		default:
			return nil, fmt.Errorf("%s: not a recognized BENCH_* payload (no kind header and no known shape)", path)
		}
	}
	f := &benchFile{path: path, meta: probe.BenchMeta}
	f.meta.Kind = kind
	switch kind {
	case "interp":
		f.interp = new(InterpBench)
		err = json.Unmarshal(raw, f.interp)
	case "profile":
		f.profile = new(ProfileBench)
		err = json.Unmarshal(raw, f.profile)
	case "parallel":
		f.parallel = new(ParallelBench)
		err = json.Unmarshal(raw, f.parallel)
	case "faultcampaign":
		f.faultcamp = new(FaultBench)
		err = json.Unmarshal(raw, f.faultcamp)
	case "warmstart":
		f.warmstart = new(WarmstartBench)
		err = json.Unmarshal(raw, f.warmstart)
	case "energy":
		f.energy = new(EnergyBench)
		err = json.Unmarshal(raw, f.energy)
	default:
		return nil, fmt.Errorf("%s: unknown benchmark kind %q", path, kind)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// forensicCoverage counts the trials owing a forensic report (non-contained
// verdicts) and how many actually carry one.
func forensicCoverage(r faultinject.Report) (got, owed int) {
	for _, tr := range r.Trials {
		if !faultinject.NeedsForensic(tr.Verdict) {
			continue
		}
		owed++
		if tr.Forensic != nil {
			got++
		}
	}
	return got, owed
}

// ratio is got/owed, 0 when nothing is owed.
func ratio(got, owed int) float64 {
	if owed == 0 {
		return 0
	}
	return float64(got) / float64(owed)
}

// b2f encodes a pass/fail flag as 0/1 for direction-aware comparison.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// compareRow is one metric of one benchmark diffed across the two files.
type compareRow struct {
	bench  string
	metric string
	unit   string
	old    float64
	new    float64
	// higherBetter orients the verdict: MIPS and speedups regress downward,
	// wall-clock milliseconds regress upward.
	higherBetter bool
}

// verdict classifies the delta against the tolerance band: moves beyond the
// band in the bad direction regress, beyond it in the good direction
// improve, and anything inside the band is ok.
func (r *compareRow) verdict(tolerancePct float64) string {
	if r.old == 0 {
		return "n/a"
	}
	delta := 100 * (r.new - r.old) / r.old
	bad := delta < -tolerancePct
	good := delta > tolerancePct
	if !r.higherBetter {
		bad, good = good, bad
	}
	switch {
	case bad:
		return "regressed"
	case good:
		return "improved"
	default:
		return "ok"
	}
}

// CompareBenchFiles diffs two BENCH_* files of the same kind, benchmark by
// benchmark and metric by metric, rendering a delta table with a
// tolerance-banded verdict per row. It returns the rendered table plus the
// list of regressed rows; `sensmart-bench -exp compare` (and the
// `make bench-diff` CI gate) fails when that list is non-empty. Host-bound
// metrics (MIPS, wall ms) need a generous tolerance; ratio metrics
// (speedups) are host-relative and stable.
func CompareBenchFiles(oldPath, newPath string, tolerancePct float64) (*Table, []string, error) {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return nil, nil, err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return nil, nil, err
	}
	if oldF.meta.Kind != newF.meta.Kind {
		return nil, nil, fmt.Errorf("kind mismatch: %s is %q, %s is %q",
			oldPath, oldF.meta.Kind, newPath, newF.meta.Kind)
	}
	if o, n := oldF.meta.SchemaVersion, newF.meta.SchemaVersion; o != 0 && n != 0 && o != n {
		return nil, nil, fmt.Errorf("schema version mismatch: %s is v%d, %s is v%d", oldPath, o, newPath, n)
	}

	var rows []compareRow
	var notes []string
	missing := func(what, name string) {
		notes = append(notes, fmt.Sprintf("%s %q present in only one file; skipped", what, name))
	}
	switch oldF.meta.Kind {
	case "interp":
		o, n := oldF.interp, newF.interp
		// Baselines written before block translation carry no fused columns;
		// comparing against zeros would read as a regression, so only emit
		// fused rows when both files have them.
		haveFused := o.FusedSuiteSpeedup > 0 && n.FusedSuiteSpeedup > 0
		if o.FusedSuiteSpeedup > 0 != (n.FusedSuiteSpeedup > 0) {
			notes = append(notes, "fused-translation columns present in only one file; skipped")
		}
		byName := make(map[string]InterpBenchPoint, len(o.Benchmarks))
		for _, p := range o.Benchmarks {
			byName[p.Benchmark] = p
		}
		for _, np := range n.Benchmarks {
			op, ok := byName[np.Benchmark]
			if !ok {
				missing("benchmark", np.Benchmark)
				continue
			}
			delete(byName, np.Benchmark)
			rows = append(rows,
				compareRow{np.Benchmark, "fast_mips", "MIPS", op.FastMIPS, np.FastMIPS, true},
				compareRow{np.Benchmark, "checked_mips", "MIPS", op.CheckedMIPS, np.CheckedMIPS, true},
				compareRow{np.Benchmark, "speedup", "x", op.Speedup, np.Speedup, true})
			if haveFused {
				rows = append(rows,
					compareRow{np.Benchmark, "fused_mips", "MIPS", op.FusedMIPS, np.FusedMIPS, true},
					compareRow{np.Benchmark, "fused_speedup", "x", op.FusedSpeedup, np.FusedSpeedup, true})
			}
		}
		for name := range byName {
			missing("benchmark", name)
		}
		rows = append(rows,
			compareRow{"suite", "serial_fast_mips", "MIPS", o.SerialFastMIPS, n.SerialFastMIPS, true},
			compareRow{"suite", "suite_speedup", "x", o.SuiteSpeedup, n.SuiteSpeedup, true})
		if haveFused {
			rows = append(rows,
				compareRow{"suite", "fused_suite_speedup", "x", o.FusedSuiteSpeedup, n.FusedSuiteSpeedup, true})
		}
	case "profile":
		o, n := oldF.profile, newF.profile
		byName := make(map[string]ProfileBenchPoint, len(o.Benchmarks))
		for _, p := range o.Benchmarks {
			byName[p.Benchmark] = p
		}
		for _, np := range n.Benchmarks {
			op, ok := byName[np.Benchmark]
			if !ok {
				missing("benchmark", np.Benchmark)
				continue
			}
			delete(byName, np.Benchmark)
			rows = append(rows,
				compareRow{np.Benchmark, "unprofiled_ms", "ms", op.UnprofiledMs, np.UnprofiledMs, false},
				compareRow{np.Benchmark, "profiled_ms", "ms", op.ProfiledMs, np.ProfiledMs, false})
		}
		for name := range byName {
			missing("benchmark", name)
		}
	case "parallel":
		o, n := oldF.parallel, newF.parallel
		byName := make(map[string]ParallelBenchSweep, len(o.Sweeps))
		for _, s := range o.Sweeps {
			byName[s.Sweep] = s
		}
		for _, ns := range n.Sweeps {
			os, ok := byName[ns.Sweep]
			if !ok {
				missing("sweep", ns.Sweep)
				continue
			}
			delete(byName, ns.Sweep)
			rows = append(rows,
				compareRow{ns.Sweep, "serial_ms", "ms", os.SerialMs, ns.SerialMs, false},
				compareRow{ns.Sweep, "parallel_ms", "ms", os.ParallelMs, ns.ParallelMs, false},
				compareRow{ns.Sweep, "speedup", "x", os.Speedup, ns.Speedup, true})
		}
		for name := range byName {
			missing("sweep", name)
		}
	case "faultcampaign":
		o, n := oldF.faultcamp, newF.faultcamp
		byName := make(map[string]faultinject.Report, len(o.Benchmarks))
		for _, b := range o.Benchmarks {
			byName[b.Benchmark] = b
		}
		for _, nb := range n.Benchmarks {
			ob, ok := byName[nb.Benchmark]
			if !ok {
				missing("benchmark", nb.Benchmark)
				continue
			}
			delete(byName, nb.Benchmark)
			// One row per verdict seen on either side. Containment
			// verdicts improve upward; escapes and breaches improve
			// downward.
			var verdicts []string
			seen := make(map[string]bool, len(ob.Verdicts)+len(nb.Verdicts))
			for _, m := range []map[string]int{ob.Verdicts, nb.Verdicts} {
				for v := range m {
					if !seen[v] {
						seen[v] = true
						verdicts = append(verdicts, v)
					}
				}
			}
			sort.Strings(verdicts)
			for _, v := range verdicts {
				higherBetter := v == faultinject.VerdictContainedFault ||
					v == faultinject.VerdictContainedRecovered
				rows = append(rows, compareRow{nb.Benchmark, v, "trials",
					float64(ob.Verdicts[v]), float64(nb.Verdicts[v]), higherBetter})
			}
			// Forensic coverage: every non-contained trial that fired owes a
			// forensic report. The ratio is 1.0 when coverage is complete, so
			// a drop flags lost observability without penalizing runs whose
			// containment improved (fewer escapes shrink both sides). Files
			// written before forensics existed have old coverage 0, which
			// verdict() renders as n/a instead of a regression.
			oGot, oOwed := forensicCoverage(ob)
			nGot, nOwed := forensicCoverage(nb)
			if oOwed > 0 || nOwed > 0 {
				rows = append(rows, compareRow{nb.Benchmark, "forensic_coverage", "ratio",
					ratio(oGot, oOwed), ratio(nGot, nOwed), true})
			}
		}
		for name := range byName {
			missing("benchmark", name)
		}
	case "warmstart":
		o, n := oldF.warmstart, newF.warmstart
		// Identity is pass/fail, not tolerance-banded: encode it as 0/1 so
		// any flip out of "identical" shows as a -100% regression.
		rows = append(rows,
			compareRow{"warmstart", "identical", "bool", b2f(o.Identical), b2f(n.Identical), true},
			compareRow{"warmstart", "speedup", "x", o.Speedup, n.Speedup, true},
			compareRow{"warmstart", "cold_wall", "s", float64(o.ColdWallNS) / 1e9, float64(n.ColdWallNS) / 1e9, false},
			compareRow{"warmstart", "warm_wall", "s", float64(o.WarmWallNS) / 1e9, float64(n.WarmWallNS) / 1e9, false},
			compareRow{"warmstart", "snapshot_bytes", "B", float64(o.SnapshotBytes), float64(n.SnapshotBytes), false})
	case "energy":
		o, n := oldF.energy, newF.energy
		byName := make(map[string]EnergyBenchPoint, len(o.Benchmarks))
		for _, p := range o.Benchmarks {
			byName[p.Benchmark] = p
		}
		for _, np := range n.Benchmarks {
			op, ok := byName[np.Benchmark]
			if !ok {
				missing("benchmark", np.Benchmark)
				continue
			}
			delete(byName, np.Benchmark)
			rows = append(rows,
				compareRow{np.Benchmark, "total_pj", "pJ", float64(op.TotalPJ), float64(np.TotalPJ), false})
		}
		for name := range byName {
			missing("benchmark", name)
		}
		byBase := make(map[string]EnergyBaselineRow, len(o.Baselines))
		for _, b := range o.Baselines {
			byBase[b.Baseline] = b
		}
		for _, nb := range n.Baselines {
			ob, ok := byBase[nb.Baseline]
			if !ok {
				missing("baseline", nb.Baseline)
				continue
			}
			delete(byBase, nb.Baseline)
			rows = append(rows, compareRow{"periodic/" + nb.Baseline, "pj_per_activation", "pJ",
				float64(ob.PJPerActivation), float64(nb.PJPerActivation), false})
		}
		for name := range byBase {
			missing("baseline", name)
		}
		rows = append(rows,
			compareRow{"suite", "ordering_ok", "bool", b2f(o.OrderingOK), b2f(n.OrderingOK), true})
	}

	t := &Table{
		ID:     "compare",
		Title:  fmt.Sprintf("%s: %s vs %s (tolerance ±%.0f%%)", oldF.meta.Kind, oldPath, newPath, tolerancePct),
		Header: []string{"benchmark", "metric", "old", "new", "delta", "verdict"},
		Notes:  notes,
	}
	var regressions []string
	for _, r := range rows {
		delta := "n/a"
		if r.old != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.new-r.old)/r.old)
		}
		v := r.verdict(tolerancePct)
		if v == "regressed" {
			regressions = append(regressions, fmt.Sprintf("%s %s: %.2f -> %.2f %s (%s)",
				r.bench, r.metric, r.old, r.new, r.unit, delta))
		}
		t.Rows = append(t.Rows, []string{
			r.bench, r.metric,
			fmt.Sprintf("%.2f %s", r.old, r.unit),
			fmt.Sprintf("%.2f %s", r.new, r.unit),
			delta, v,
		})
	}
	if oldF.meta.SchemaVersion == 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%s has no schema header (pre-v%d legacy file); kind inferred from shape",
			oldPath, BenchSchemaVersion))
	}
	return t, regressions, nil
}

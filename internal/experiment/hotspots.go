package experiment

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// hotspotPoint is one benchmark's profiled run.
type hotspotPoint struct {
	name string
	prof *profile.Profiler
	top  []profile.TopEntry
}

// verifyProfileLedger cross-checks a profiled run against the kernel's
// always-on cycle ledgers: the profiler must attribute exactly the cycles the
// machine executed, per task and per service class. This is the same
// invariant TestProfilerMatchesKernelLedger pins, enforced on every -exp
// hotspots run so a drifting hook can't quietly produce a plausible table.
func verifyProfileLedger(name string, prof *profile.Profiler, run *senSmartRun) error {
	if got, want := prof.TotalCycles(), run.Cycles; got != want {
		return fmt.Errorf("%s: profiler attributed %d cycles, machine ran %d", name, got, want)
	}
	m := run.K.Metrics()
	for _, tm := range m.Tasks {
		if got, want := prof.TaskTotal(int32(tm.ID)), tm.RunCycles; got != want {
			return fmt.Errorf("%s: task %s profiled at %d cycles, ledger says %d", name, tm.Name, got, want)
		}
	}
	var svc uint64
	for class := rewriter.Class(1); class < 16; class++ {
		if got, want := prof.ServiceOverhead(class), run.K.Stats.ServiceOverhead[class]; got != want {
			return fmt.Errorf("%s: kernel.%v frames total %d cycles, ledger charged %d", name, class, got, want)
		}
		svc += prof.ServiceOverhead(class)
	}
	if svc != m.ServiceOverheadCycles {
		return fmt.Errorf("%s: kernel service frames sum to %d, ServiceOverheadCycles is %d",
			name, svc, m.ServiceOverheadCycles)
	}
	return nil
}

// ProfileRun boots one profiled kernel with one task per program, runs to
// completion (or the cycle limit), reconciles the profiler against the
// kernel cycle ledger, and returns the profiler — the backing for the
// -profile/-folded exports of sensmart-bench.
func ProfileRun(limit uint64, programs ...*image.Program) (*profile.Profiler, error) {
	prof := profile.New(profile.Options{})
	run, err := runSenSmart(kernel.Config{Profile: prof}, limit, programs...)
	if err != nil {
		return nil, err
	}
	if err := verifyProfileLedger("multitask", prof, run); err != nil {
		return nil, err
	}
	return prof, nil
}

// Hotspots profiles each of the seven kernel benchmarks with the cycle-exact
// symbol profiler and reports the topK hottest frames per benchmark —
// application symbols and synthetic kernel frames side by side, so the table
// shows at a glance whether a workload is app-bound or trap-bound. Every run
// is reconciled against the kernel cycle ledger before its rows are emitted.
func (r Runner) Hotspots(topK int) (*Table, error) {
	if topK <= 0 {
		topK = 5
	}
	benches := progs.KernelBenchmarks()
	points, err := runPoints(r.workers(), len(benches), runProgress(r, "hotspots", len(benches),
		func(p hotspotPoint) uint64 { return p.prof.TotalCycles() },
		func(i int) (hotspotPoint, error) {
			prof := profile.New(profile.Options{})
			run, err := runSenSmart(kernel.Config{Profile: prof}, 4_000_000_000, benches[i].Program.Clone())
			if err != nil {
				return hotspotPoint{}, fmt.Errorf("%s: %w", benches[i].Name, err)
			}
			if err := verifyProfileLedger(benches[i].Name, prof, run); err != nil {
				return hotspotPoint{}, err
			}
			return hotspotPoint{name: benches[i].Name, prof: prof, top: prof.Top(topK)}, nil
		}))
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:     "hotspots",
		Title:  fmt.Sprintf("Top %d frames per kernel benchmark (cycle-exact profiler)", topK),
		Header: []string{"benchmark", "rank", "frame", "cycles", "share"},
	}
	for _, p := range points {
		for rank, e := range p.top {
			tbl.Rows = append(tbl.Rows, []string{
				p.name,
				itoa(rank + 1),
				e.Frame,
				utoa(e.Cycles),
				fmt.Sprintf("%.1f%%", e.Percent),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"frames: image.symbol = application code, kernel.<service> = Table II trap overhead, kernel.boot/switch/reloc/compact and idle = global kernel phases",
		"every run's per-task and per-class totals were reconciled exactly against the kernel cycle ledger")
	return tbl, nil
}

package experiment

import (
	"encoding/json"
	"os"
	"runtime"
)

// BenchSchemaVersion is the current BENCH_*.json header version. Bump it
// when a payload changes shape incompatibly; the comparator refuses to diff
// files whose versions disagree (a version of 0 marks a pre-header legacy
// file, which still compares via field inference).
const BenchSchemaVersion = 1

// BenchMeta is the common header every BENCH_*.json payload embeds: schema
// version, which benchmark kind and set the file records, and enough host
// context to interpret absolute wall-clock numbers. Embedding keeps the
// legacy top-level json keys ("gomaxprocs", "numcpu") stable, so files
// written before the header existed still unmarshal.
type BenchMeta struct {
	SchemaVersion int `json:"schema_version"`
	// Kind names the payload shape: "interp", "profile", or "parallel".
	Kind string `json:"kind"`
	// BenchmarkSet names the workload collection the numbers cover.
	BenchmarkSet string `json:"benchmark_set"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"numcpu"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	GoVersion    string `json:"go_version"`
}

// NewBenchMeta fills the header for the current host.
func NewBenchMeta(kind, set string) BenchMeta {
	return BenchMeta{
		SchemaVersion: BenchSchemaVersion,
		Kind:          kind,
		BenchmarkSet:  set,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GoVersion:     runtime.Version(),
	}
}

// MarshalBench renders a BENCH_*.json payload in the repository's canonical
// encoding (two-space indent, trailing newline).
func MarshalBench(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteBenchFile writes a payload to path in the canonical encoding and
// returns the bytes written — the single writer behind every BENCH_* file
// the cmd/sensmart-bench runners produce.
func WriteBenchFile(path string, v any) ([]byte, error) {
	data, err := MarshalBench(v)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return data, nil
}

package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, want %d", row[0], len(row), len(tab.Header))
		}
	}
	if !strings.Contains(tab.Render(), "Stack Relocation") {
		t.Error("render missing stack-relocation row")
	}
}

func TestTable2Measured(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	get := func(name string) int {
		t.Helper()
		for _, row := range tab.Rows {
			if row[0] == name {
				v, err := strconv.Atoi(row[1])
				if err != nil {
					t.Fatalf("row %q value %q", name, row[1])
				}
				return v
			}
		}
		t.Fatalf("no row %q", name)
		return 0
	}
	// The measured overheads must reproduce Table II (exactly, since the
	// kernel charges those constants per service).
	if v := get("mem direct I/O area"); v != 2 {
		t.Errorf("direct I/O overhead = %d, want 2", v)
	}
	if v := get("mem direct others (heap)"); v != 28 {
		t.Errorf("direct heap overhead = %d, want 28", v)
	}
	if v := get("mem indirect I/O area"); v != 54 {
		t.Errorf("indirect I/O overhead = %d, want 54", v)
	}
	if v := get("mem indirect heap"); v != 80 {
		t.Errorf("indirect heap overhead = %d, want 80", v)
	}
	if v := get("mem indirect stack frame"); v != 82 {
		t.Errorf("indirect stack overhead = %d, want 82", v)
	}
	if v := get("get stack pointer"); v != 45 {
		t.Errorf("get SP overhead = %d, want 45", v)
	}
	if v := get("set stack pointer"); v != 94 {
		t.Errorf("set SP overhead = %d, want 94", v)
	}
	if v := get("stack operation (push, native)"); v != 0 {
		t.Errorf("native push/pop overhead = %d, want 0", v)
	}
	if v := get("program memory (ijmp)"); v < 300 || v > 450 {
		t.Errorf("ijmp overhead = %d, want ~376", v)
	}
	if v := get("system initialization"); v < 5738 || v > 5800 {
		t.Errorf("sysinit = %d, want ~5738", v)
	}
}

func TestFigure4Shapes(t *testing.T) {
	tab, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 benchmarks", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		native, _ := strconv.Atoi(row[1])
		total, _ := strconv.Atoi(row[5])
		tk, _ := strconv.Atoi(row[7])
		if total <= native {
			t.Errorf("%s: SenSmart total %d should exceed native %d", row[0], total, native)
		}
		// Paper: SenSmart inflation within 200% (total <= 3x native).
		if total > 3*native {
			t.Errorf("%s: SenSmart inflation beyond 200%%: %d vs %d", row[0], total, native)
		}
		// Paper: t-kernel considerably larger than SenSmart.
		if tk <= total {
			t.Errorf("%s: t-kernel %d should exceed SenSmart %d", row[0], tk, total)
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	tab, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	slower := 0
	for _, row := range tab.Rows {
		native, _ := strconv.ParseFloat(row[1], 64)
		smart, _ := strconv.ParseFloat(row[3], 64)
		tk, _ := strconv.ParseFloat(row[4], 64)
		if smart < native {
			t.Errorf("%s: SenSmart %.3fs cannot beat native %.3fs", row[0], smart, native)
		}
		if tk < native {
			t.Errorf("%s: t-kernel %.3fs cannot beat native %.3fs", row[0], tk, native)
		}
		if tk < smart {
			slower++
		}
	}
	// Paper: the t-kernel is faster than SenSmart on most programs.
	if slower < 4 {
		t.Errorf("t-kernel faster on only %d/7 programs; paper shows it ahead on most", slower)
	}
}

func TestFigure6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	sizes := []int{10_000, 40_000, 70_000, 100_000}
	points, err := Figure6(sizes, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + Figure6Table(points).Render())
	small, big := points[0], points[len(points)-1]
	// Below the knee SenSmart tracks native closely.
	ratioSmall := float64(small.SenSmartCycles) / float64(small.NativeCycles)
	if ratioSmall > 1.15 {
		t.Errorf("small size: SenSmart/native = %.2f, want close to 1", ratioSmall)
	}
	// Past the knee SenSmart departs sharply.
	ratioBig := float64(big.SenSmartCycles) / float64(big.NativeCycles)
	if ratioBig < 1.5 {
		t.Errorf("large size: SenSmart/native = %.2f, want a clear knee", ratioBig)
	}
	// t-kernel pays its ~1 s warm-up, so it is slower than SenSmart at
	// small computation sizes (the paper's observation).
	if small.TKernelCycles <= small.SenSmartCycles {
		t.Errorf("t-kernel %d should trail SenSmart %d at small sizes (warm-up)",
			small.TKernelCycles, small.SenSmartCycles)
	}
	// Utilization grows with computation size and saturates.
	if small.SenSmartUtil >= big.SenSmartUtil {
		t.Error("SenSmart utilization should grow with computation size")
	}
	if big.SenSmartUtil < 0.9 {
		t.Errorf("SenSmart utilization at 100k = %.2f, want saturation", big.SenSmartUtil)
	}
	// Mate is at least an order of magnitude slower than native.
	if float64(big.MateCycles) < 5*float64(big.NativeCycles) {
		t.Errorf("Mate %d vs native %d: interpretation penalty too small",
			big.MateCycles, big.NativeCycles)
	}
}

func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	points, err := Figure7([]int{8, 24, 40}, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + Figure7Table(points).Render())
	// Larger trees -> fewer schedulable tasks.
	if points[0].SurvivingTasks <= points[len(points)-1].SurvivingTasks {
		t.Errorf("schedulable tasks should fall with tree size: %+v", points)
	}
	for _, p := range points {
		if p.SurvivingTasks == 0 {
			t.Errorf("nodes=%d: no tasks survived", p.NodesPerTree)
		}
		if p.Relocations == 0 {
			t.Errorf("nodes=%d: no relocations; the initial 64 B stack must force some", p.NodesPerTree)
		}
		// Paper: tasks run with average allocations below their peak need.
		if p.SurvivingTasks > 1 && p.AvgStackAlloc >= float64(p.MaxStackUsed)*2 {
			t.Errorf("nodes=%d: avg alloc %.0f not economical vs peak %d",
				p.NodesPerTree, p.AvgStackAlloc, p.MaxStackUsed)
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	points, err := Figure8([]int{10, 30, 50}, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + Figure8Table(points).Render())
	for _, p := range points {
		if p.SenSmartTasks <= p.FixedTasks {
			t.Errorf("nodes=%d: SenSmart %d should beat fixed-stack %d",
				p.NodesPerTree, p.SenSmartTasks, p.FixedTasks)
		}
	}
}

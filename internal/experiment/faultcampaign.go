package experiment

import (
	"fmt"

	"repro/internal/faultinject"
)

// FaultBench is the BENCH_faultcampaign.json payload: per-benchmark verdict
// counts from the adversarial fault-injection campaign. Unlike the timing
// payloads, every field is a pure function of (seed, trials), so two files
// from the same source tree must be byte-identical at any worker count —
// the determinism tests and the `-exp compare` gate both rely on it.
type FaultBench struct {
	BenchMeta
	Seed       uint64               `json:"seed"`
	Trials     int                  `json:"trials_per_benchmark"`
	Benchmarks []faultinject.Report `json:"benchmarks"`
}

// FaultCampaign runs the fault-injection campaign over the full benchmark
// suite, one pool point per benchmark. Trials are keyed by (seed,
// benchmark index, trial index), so the pooled sweep draws exactly the
// sites a serial one does and results merge in suite order.
func (r Runner) FaultCampaign(seed uint64, trials int) (*FaultBench, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiment: fault campaign needs a positive trial count, got %d", trials)
	}
	benches := faultinject.Benchmarks()
	spec := faultinject.Spec{Seed: seed, Trials: trials}
	fn := runProgress(r, "faultcampaign", len(benches),
		func(rep faultinject.Report) uint64 { return rep.GoldenCycles },
		func(i int) (faultinject.Report, error) {
			return faultinject.RunBenchmark(benches[i], spec, i)
		})
	reports, err := runPoints(r.workers(), len(benches), fn)
	if err != nil {
		return nil, err
	}
	return &FaultBench{
		BenchMeta:  NewBenchMeta("faultcampaign", "kernel-benchmarks+radiosink"),
		Seed:       seed,
		Trials:     trials,
		Benchmarks: reports,
	}, nil
}

// FaultCampaignTable renders a campaign's per-benchmark verdict counts.
func FaultCampaignTable(b *FaultBench) *Table {
	verdicts := []string{
		faultinject.VerdictContainedFault,
		faultinject.VerdictContainedRecovered,
		faultinject.VerdictSilentCorruption,
		faultinject.VerdictCrossTaskBreach,
		faultinject.VerdictKernelCompromise,
	}
	t := &Table{
		ID: "faultcampaign",
		Title: fmt.Sprintf("Fault-injection campaign (seed %d, %d trials per benchmark)",
			b.Seed, b.Trials),
		Header: append([]string{"benchmark", "golden cycles"}, verdicts...),
	}
	for _, rep := range b.Benchmarks {
		row := []string{rep.Benchmark, fmt.Sprintf("%d", rep.GoldenCycles)}
		for _, v := range verdicts {
			row = append(row, fmt.Sprintf("%d", rep.Verdicts[v]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

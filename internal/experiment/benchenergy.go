package experiment

import (
	"fmt"

	"repro/internal/baseline/fixedstack"
	"repro/internal/baseline/mate"
	"repro/internal/baseline/tkernel"
	"repro/internal/energy"
	"repro/internal/kernel"
	"repro/internal/mcu"
	"repro/internal/progs"
	"repro/internal/rewriter"
)

// EnergyBenchPoint is one kernel benchmark run to completion under SenSmart
// with an energy meter attached: the full per-device joules breakdown of the
// run. Every field is an integer derived from the deterministic cycle
// ledgers, so the point is byte-identical at any worker count.
type EnergyBenchPoint struct {
	Benchmark string `json:"benchmark"`
	Cycles    uint64 `json:"cycles"`
	energy.Breakdown
}

// EnergyBaselineRow is the PeriodicTask workload costed on the joules axis
// under one execution system. PJPerActivation is the comparison metric: total
// energy divided by the number of periodic activations completed.
type EnergyBaselineRow struct {
	Baseline        string `json:"baseline"`
	Cycles          uint64 `json:"cycles"`
	IdleCycles      uint64 `json:"idle_cycles"`
	Activations     int    `json:"activations"`
	TotalPJ         uint64 `json:"total_pj"`
	PJPerActivation uint64 `json:"pj_per_activation"`
}

// EnergyBench is the BENCH_energy.json payload: the seven kernel benchmarks
// on the joules axis, plus the PeriodicTask baseline comparison across
// native, SenSmart, fixed-stack, t-kernel (steady state), and the Maté-style
// VM.
type EnergyBench struct {
	BenchMeta
	Activations int                 `json:"activations"`
	Benchmarks  []EnergyBenchPoint  `json:"benchmarks"`
	Baselines   []EnergyBaselineRow `json:"baselines"`
	// OrderingOK asserts the expected baseline ordering: Maté interpretation
	// costs the most joules per activation, and the t-kernel's lighter
	// protection the fewest among the protected systems at steady state.
	OrderingOK bool `json:"ordering_ok"`
}

// energyBaselineSize is the PeriodicTask computation size the baseline rows
// share (mid-range of the Figure 6 sweep's linear region).
const energyBaselineSize = 30_000

const energyBenchLimit = 30_000_000_000

// BenchEnergy runs the energy benchmark axis with the default worker pool.
func BenchEnergy(activations int) (*EnergyBench, error) {
	return Runner{}.BenchEnergy(activations)
}

// BenchEnergy reruns the seven kernel benchmarks under SenSmart with an
// energy meter attached, then costs the PeriodicTask workload under every
// baseline system on the same joules axis. All accounting is integer math on
// deterministic cycle ledgers: the output is byte-identical between serial
// and parallel runs.
func (r Runner) BenchEnergy(activations int) (*EnergyBench, error) {
	if activations <= 0 {
		activations = 40
	}
	out := &EnergyBench{
		BenchMeta:   NewBenchMeta("energy", "kernel7 + periodic baselines"),
		Activations: activations,
	}

	kbs := progs.KernelBenchmarks()
	points, err := runPoints(r.workers(), len(kbs), runProgress(r, "energy/kernel7", len(kbs),
		func(p EnergyBenchPoint) uint64 { return p.Cycles },
		func(i int) (EnergyBenchPoint, error) {
			meter := new(energy.Meter)
			run, err := runSenSmart(kernel.Config{Energy: meter}, energyBenchLimit, kbs[i].Program.Clone())
			if err != nil {
				return EnergyBenchPoint{}, fmt.Errorf("%s: %w", kbs[i].Name, err)
			}
			return EnergyBenchPoint{
				Benchmark: kbs[i].Name,
				Cycles:    run.Cycles,
				Breakdown: meter.Report(run.Cycles),
			}, nil
		}))
	if err != nil {
		return nil, err
	}
	out.Benchmarks = points

	baselines := []string{"native", "sensmart", "fixed-stack", "t-kernel", "mate"}
	rows, err := runPoints(r.workers(), len(baselines), runProgress(r, "energy/baselines", len(baselines),
		func(row EnergyBaselineRow) uint64 { return row.Cycles },
		func(i int) (EnergyBaselineRow, error) {
			return energyBaselineRow(baselines[i], activations)
		}))
	if err != nil {
		return nil, err
	}
	out.Baselines = rows

	byName := make(map[string]EnergyBaselineRow, len(rows))
	for _, row := range rows {
		byName[row.Baseline] = row
	}
	mateRow := byName["mate"]
	out.OrderingOK = true
	for _, row := range rows {
		if row.Baseline != "mate" && row.PJPerActivation >= mateRow.PJPerActivation {
			out.OrderingOK = false
		}
	}
	tk := byName["t-kernel"]
	for _, name := range []string{"sensmart", "fixed-stack"} {
		if byName[name].PJPerActivation <= tk.PJPerActivation {
			out.OrderingOK = false
		}
	}
	if !out.OrderingOK {
		return out, fmt.Errorf("energy: baseline ordering unexpected (want mate max, t-kernel min among protected)")
	}
	return out, nil
}

// energyBaselineRow costs the PeriodicTask workload under one system.
func energyBaselineRow(name string, activations int) (EnergyBaselineRow, error) {
	row := EnergyBaselineRow{Baseline: name, Activations: activations}
	params := progs.PeriodicParams{Instructions: energyBaselineSize, Activations: activations}
	meter := new(energy.Meter)

	switch name {
	case "native":
		m := mcu.New()
		m.SetEnergyMeter(meter)
		prog := progs.PeriodicTaskNative(params)
		if err := m.LoadFlash(0, prog.Words); err != nil {
			return row, err
		}
		for i, b := range prog.DataInit {
			m.Poke(prog.HeapBase+uint16(i), b)
		}
		m.SetPC(prog.Entry)
		if err := runNativeToBreak(m); err != nil {
			return row, err
		}
		row.Cycles, row.IdleCycles = m.Cycles(), m.IdleCycles()
	case "sensmart":
		run, err := runSenSmart(kernel.Config{Energy: meter}, energyBenchLimit, progs.PeriodicTask(params))
		if err != nil {
			return row, err
		}
		row.Cycles, row.IdleCycles = run.Cycles, run.Idle
	case "fixed-stack":
		m := mcu.New()
		m.SetEnergyMeter(meter)
		sys := fixedstack.New(m, fixedstack.Config{WorstCaseStack: 224})
		nat, err := naturalize(progs.PeriodicTask(params), rewriter.Config{})
		if err != nil {
			return row, err
		}
		if _, err := sys.AddTask("periodic", nat); err != nil {
			return row, err
		}
		if err := sys.K.Boot(); err != nil {
			return row, err
		}
		if err := sys.K.Run(energyBenchLimit); err != nil {
			return row, err
		}
		if !sys.K.Done() {
			return row, fmt.Errorf("energy: fixed-stack periodic run hit the cycle limit")
		}
		row.Cycles, row.IdleCycles = m.Cycles(), m.IdleCycles()
	case "t-kernel":
		// Steady state: no Boot(), so the ~1 s on-node rewriting warm-up is
		// excluded, as in Figure 5.
		img, err := tkernel.Naturalize(progs.PeriodicTaskNative(params))
		if err != nil {
			return row, err
		}
		m := mcu.New()
		m.SetEnergyMeter(meter)
		rt, err := tkernel.NewRuntime(m, img)
		if err != nil {
			return row, err
		}
		if err := rt.Run(energyBenchLimit); err != nil {
			return row, err
		}
		if !rt.Exited() {
			return row, fmt.Errorf("energy: t-kernel periodic run did not finish")
		}
		row.Cycles, row.IdleCycles = m.Cycles(), m.IdleCycles()
	case "mate":
		// The Maté VM is not an mcu.Machine, so its ledger is costed
		// arithmetically from the same coefficients: interpreted cycles at
		// the active draw, sleep ticks at the sleep draw, radio bytes at the
		// transmit draw over their fixed busy window.
		code, err := mate.PeriodicProgram(energyBaselineSize, activations, params.PeriodTicks)
		if err != nil {
			return row, err
		}
		vm := mate.New(code)
		if err := vm.Run(0); err != nil {
			return row, err
		}
		row.Cycles, row.IdleCycles = vm.Cycles, vm.IdleCycles
		active := vm.Cycles - vm.IdleCycles
		row.TotalPJ = active*energy.CPUActivePJ + vm.IdleCycles*energy.CPUSleepPJ +
			uint64(vm.RadioBytes)*mcu.RadioByteCycles*energy.RadioTxPJ
		row.PJPerActivation = row.TotalPJ / uint64(activations)
		return row, nil
	default:
		return row, fmt.Errorf("energy: unknown baseline %q", name)
	}

	row.TotalPJ = meter.Report(row.Cycles).TotalPJ
	row.PJPerActivation = row.TotalPJ / uint64(activations)
	return row, nil
}

// runNativeToBreak runs an already-loaded machine until the program's BREAK.
func runNativeToBreak(m *mcu.Machine) error {
	err := m.Run(energyBenchLimit)
	if f, ok := err.(*mcu.Fault); ok && f.Kind == mcu.FaultBreak {
		return nil
	}
	if err == nil {
		return fmt.Errorf("energy: native run hit the cycle limit")
	}
	return err
}

// EnergyTable renders the benchmark points and baseline rows for the CLI.
func EnergyTable(b *EnergyBench) *Table {
	t := &Table{
		ID:     "energy",
		Title:  "Energy: kernel benchmarks and PeriodicTask baselines (picojoules)",
		Header: []string{"benchmark", "cycles", "total", "cpu-active", "cpu-sleep", "radio", "uart", "adc", "timer"},
	}
	for _, p := range b.Benchmarks {
		t.Rows = append(t.Rows, []string{
			p.Benchmark, fmt.Sprintf("%d", p.Cycles),
			energy.FormatPJ(p.TotalPJ), energy.FormatPJ(p.CPUActivePJ), energy.FormatPJ(p.CPUSleepPJ),
			energy.FormatPJ(p.RadioPJ), energy.FormatPJ(p.UARTPJ), energy.FormatPJ(p.ADCPJ),
			energy.FormatPJ(p.TimerPJ),
		})
	}
	for _, row := range b.Baselines {
		t.Rows = append(t.Rows, []string{
			"periodic/" + row.Baseline, fmt.Sprintf("%d", row.Cycles),
			energy.FormatPJ(row.TotalPJ),
			fmt.Sprintf("%d act", row.Activations),
			energy.FormatPJ(row.PJPerActivation) + "/act",
			"", "", "", "",
		})
	}
	verdict := "expected (mate max, t-kernel min among protected)"
	if !b.OrderingOK {
		verdict = "UNEXPECTED"
	}
	t.Notes = append(t.Notes, "baseline ordering: "+verdict)
	return t
}

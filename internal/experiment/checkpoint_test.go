package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/profile"
	"repro/internal/progs"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// The resume-identity differential suite: for every kernel benchmark,
// checkpoint at a sampling boundary, inside a trap service window, and at
// pseudo-random cycles; restore (in-process off a copy-on-write shared image,
// and through the serialized byte format); run to completion; and require the
// final Metrics, trace, NDJSON telemetry, and pprof bytes to be
// byte-identical to the uninterrupted run — serially and under an 8-way
// worker pool.

const ckptLimit = 4_000_000_000

// ckptObservers is one fully observed system: trace recorder, telemetry
// sampler, and profiler all attached, so resume identity is pinned over every
// output stream the repo produces.
type ckptObservers struct {
	sys   *core.System
	rec   *trace.Recorder
	tel   *telemetry.Sampler
	prof  *profile.Profiler
	meter *energy.Meter
}

// ckptSystem builds an observed system with the named kernel benchmark
// deployed. Every call uses identical observer options, so snapshots transfer
// between instances.
func ckptSystem(name string) (*ckptObservers, error) {
	o := &ckptObservers{
		rec:   trace.New(),
		tel:   telemetry.New(telemetry.Options{Ring: 1 << 14}),
		prof:  profile.New(profile.Options{StackInterval: 8192}),
		meter: new(energy.Meter),
	}
	o.sys = core.NewSystem(core.WithTrace(o.rec), core.WithTelemetry(o.tel),
		core.WithProfile(o.prof), core.WithEnergy(o.meter))
	for _, kb := range progs.KernelBenchmarks() {
		if kb.Name != name {
			continue
		}
		if _, err := o.sys.Deploy(kb.Program); err != nil {
			return nil, err
		}
		return o, nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

// ckptArtifacts is the five byte streams resume identity is asserted over.
type ckptArtifacts struct {
	metrics []byte
	trace   []byte
	ndjson  []byte
	pprof   []byte
	energy  []byte
}

func (o *ckptObservers) artifacts() (ckptArtifacts, error) {
	var a ckptArtifacts
	a.metrics = []byte(o.sys.Metrics().Render())
	a.trace = o.rec.Encode()
	var nb, pb bytes.Buffer
	if err := o.tel.WriteNDJSON(&nb); err != nil {
		return a, err
	}
	a.ndjson = nb.Bytes()
	if err := o.prof.WritePprof(&pb); err != nil {
		return a, err
	}
	a.pprof = pb.Bytes()
	// The energy ledger both raw (every device counter and open-span cursor)
	// and reduced to joules at the final cycle.
	eb, err := json.Marshal(struct {
		State     *energy.MeterState
		Breakdown energy.Breakdown
	}{o.meter.CaptureState(), o.meter.Report(o.sys.Machine().Cycles())})
	if err != nil {
		return a, err
	}
	a.energy = eb
	return a, nil
}

// diff names the first diverging stream, or "" when all five match.
func (a ckptArtifacts) diff(b ckptArtifacts) string {
	switch {
	case !bytes.Equal(a.metrics, b.metrics):
		return "Metrics rendering"
	case !bytes.Equal(a.trace, b.trace):
		return "trace encoding"
	case !bytes.Equal(a.ndjson, b.ndjson):
		return "telemetry NDJSON"
	case !bytes.Equal(a.pprof, b.pprof):
		return "pprof bytes"
	case !bytes.Equal(a.energy, b.energy):
		return "energy ledger"
	}
	return ""
}

// ckptPoint is one checkpoint taken during the chained run.
type ckptPoint struct {
	kind  string // "boundary", "midtrap", "rand0".."rand2"
	at    uint64 // nominal arming cycle
	state *snapshot.State
	blob  []byte
}

// ckptFixture is everything the differential passes need for one benchmark:
// the uninterrupted baseline, the chained-checkpoint parent (kept alive so
// children can adopt its flash image copy-on-write), and the captured points.
type ckptFixture struct {
	name   string
	base   ckptArtifacts
	total  uint64
	parent *ckptObservers
	points []ckptPoint
}

var ckptFix struct {
	once sync.Once
	list []*ckptFixture
	err  error
}

// ckptFixtures builds (once per test binary) the baseline run and the
// chained-checkpoint run for all seven benchmarks. The chained run itself is
// the first identity assertion: arming checkpoints must not perturb the
// trajectory, so its artifacts must equal the uninterrupted baseline's.
func ckptFixtures(t *testing.T) []*ckptFixture {
	t.Helper()
	ckptFix.once.Do(func() {
		for _, kb := range progs.KernelBenchmarks() {
			f, err := buildCkptFixture(kb.Name)
			if err != nil {
				ckptFix.err = fmt.Errorf("%s: %w", kb.Name, err)
				return
			}
			ckptFix.list = append(ckptFix.list, f)
		}
	})
	if ckptFix.err != nil {
		t.Fatalf("building checkpoint fixtures: %v", ckptFix.err)
	}
	return ckptFix.list
}

func buildCkptFixture(name string) (*ckptFixture, error) {
	// Uninterrupted baseline.
	base, err := ckptSystem(name)
	if err != nil {
		return nil, err
	}
	if err := base.sys.Boot(); err != nil {
		return nil, err
	}
	if err := base.sys.Run(ckptLimit); err != nil {
		return nil, err
	}
	f := &ckptFixture{name: name, total: base.sys.Machine().Cycles()}
	if f.base, err = base.artifacts(); err != nil {
		return nil, err
	}
	f.points = ckptPoints(name, f.total, base.rec.Events())

	// Chained run: arm every checkpoint on one system, each callback arming
	// the next, so a single execution captures all points.
	parent, err := ckptSystem(name)
	if err != nil {
		return nil, err
	}
	var capErr error
	var arm func(i int)
	arm = func(i int) {
		parent.sys.ArmCheckpoint(f.points[i].at, func(st *snapshot.State, err error) {
			if err != nil {
				capErr = fmt.Errorf("checkpoint %s at %d: %w", f.points[i].kind, f.points[i].at, err)
				return
			}
			f.points[i].state = st
			if i+1 < len(f.points) {
				arm(i + 1)
			}
		})
	}
	arm(0)
	if err := parent.sys.Boot(); err != nil {
		return nil, err
	}
	if err := parent.sys.Run(ckptLimit); err != nil {
		return nil, err
	}
	if capErr != nil {
		return nil, capErr
	}
	chained, err := parent.artifacts()
	if err != nil {
		return nil, err
	}
	if d := chained.diff(f.base); d != "" {
		return nil, fmt.Errorf("arming checkpoints perturbed the run: %s diverges from baseline", d)
	}
	for i := range f.points {
		p := &f.points[i]
		if p.state == nil {
			return nil, fmt.Errorf("checkpoint %s at cycle %d never fired (run ended at %d)", p.kind, p.at, f.total)
		}
		if p.blob, err = snapshot.Encode(p.state); err != nil {
			return nil, fmt.Errorf("encode %s: %w", p.kind, err)
		}
	}
	f.parent = parent
	return f, nil
}

// ckptPoints selects the arming cycles for one benchmark from its baseline
// run: a sampler-cadence boundary near the midpoint, a cycle one past a trap
// entry (so the checkpoint arms inside a kernel service window and quantizes
// to the next run-loop boundary), and three pseudo-random cycles seeded from
// the benchmark name.
func ckptPoints(name string, total uint64, events []trace.Event) []ckptPoint {
	const cadence = 65536
	pts := []ckptPoint{{kind: "boundary", at: (total / 2) / cadence * cadence}}

	mid := total / 3 // fallback when no trap window is found
	for i, e := range events {
		if e.Kind != trace.KindTrapEnter || e.Cycle < total/4 {
			continue
		}
		for _, x := range events[i+1:] {
			if x.Kind == trace.KindTrapExit && x.Cycle > e.Cycle+1 {
				mid = e.Cycle + 1
			}
			break
		}
		if mid != total/3 {
			break
		}
	}
	pts = append(pts, ckptPoint{kind: "midtrap", at: mid})

	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	lo, hi := total/10, total*9/10
	for i := 0; i < 3; i++ {
		pts = append(pts, ckptPoint{
			kind: fmt.Sprintf("rand%d", i),
			at:   lo + uint64(rng.Int63n(int64(hi-lo))),
		})
	}

	slices.SortFunc(pts, func(a, b ckptPoint) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
	// Duplicate arming cycles would make the chained re-arm fire twice at one
	// boundary; nudge any collision forward.
	for i := 1; i < len(pts); i++ {
		if pts[i].at <= pts[i-1].at {
			pts[i].at = pts[i-1].at + 1
		}
	}
	return pts
}

// ckptRestoreRun restores point p of fixture f into a fresh system and runs
// it to completion, returning the final artifacts. Variant "adopt" restores
// the in-memory state sharing the parent's flash image copy-on-write;
// variant "bytes" decodes the serialized blob and restores with a privately
// loaded image — the exact path a -restore from disk takes.
func ckptRestoreRun(f *ckptFixture, p *ckptPoint, variant string) (ckptArtifacts, error) {
	var a ckptArtifacts
	child, err := ckptSystem(f.name)
	if err != nil {
		return a, err
	}
	st := p.state
	if variant == "adopt" {
		child.sys.AdoptImage(f.parent.sys)
	} else {
		if st, err = snapshot.Decode(p.blob); err != nil {
			return a, err
		}
	}
	if err := child.sys.Restore(st); err != nil {
		return a, err
	}
	if err := child.sys.Run(ckptLimit); err != nil {
		return a, err
	}
	return child.artifacts()
}

// TestResumeIdentitySerial pins resume identity benchmark by benchmark: every
// checkpoint kind, restored both in-process and through the byte format, must
// finish with artifacts byte-identical to the uninterrupted run.
func TestResumeIdentitySerial(t *testing.T) {
	for _, f := range ckptFixtures(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			for i := range f.points {
				p := &f.points[i]
				for _, variant := range []string{"adopt", "bytes"} {
					got, err := ckptRestoreRun(f, p, variant)
					if err != nil {
						t.Fatalf("%s/%s at cycle %d: %v", p.kind, variant, p.at, err)
					}
					if d := got.diff(f.base); d != "" {
						t.Errorf("%s/%s at cycle %d: %s diverges from uninterrupted run", p.kind, variant, p.at, d)
					}
				}
			}
		})
	}
}

// TestResumeIdentityPooled runs the identical benchmark x point x variant
// matrix through the experiment worker pool at 8 workers — the warm-
// checkpoint fan-out shape — so the copy-on-write image sharing and restore
// paths are exercised concurrently (and, under -race, checked for races).
func TestResumeIdentityPooled(t *testing.T) {
	fixtures := ckptFixtures(t)
	type job struct {
		f       *ckptFixture
		p       *ckptPoint
		variant string
	}
	var jobs []job
	for _, f := range fixtures {
		for i := range f.points {
			for _, variant := range []string{"adopt", "bytes"} {
				jobs = append(jobs, job{f, &f.points[i], variant})
			}
		}
	}
	diffs, err := runPoints(8, len(jobs), func(i int) (string, error) {
		j := jobs[i]
		got, err := ckptRestoreRun(j.f, j.p, j.variant)
		if err != nil {
			return "", fmt.Errorf("%s %s/%s at cycle %d: %w", j.f.name, j.p.kind, j.variant, j.p.at, err)
		}
		if d := got.diff(j.f.base); d != "" {
			return fmt.Sprintf("%s %s/%s at cycle %d: %s diverges", j.f.name, j.p.kind, j.variant, j.p.at, d), nil
		}
		return "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if d != "" {
			t.Error(d)
		}
	}
}

// TestRestoreDoesNotAliasSnapshot scribbles over every mutable buffer of a
// snapshot after restoring from it; the restored run must be unaffected, and
// the snapshot must re-encode to the same bytes it decoded from until the
// scribble. Catches restored systems keeping references into snapshot slices
// (device output buffers, sampler rings, trace events, task registers).
func TestRestoreDoesNotAliasSnapshot(t *testing.T) {
	fixtures := ckptFixtures(t)
	f := fixtures[0]
	p := &f.points[len(f.points)/2]

	st, err := snapshot.Decode(p.blob)
	if err != nil {
		t.Fatal(err)
	}
	child, err := ckptSystem(f.name)
	if err != nil {
		t.Fatal(err)
	}
	if err := child.sys.Restore(st); err != nil {
		t.Fatal(err)
	}

	// Deface everything reachable through the decoded state.
	for i := range st.Machine.Data {
		st.Machine.Data[i] ^= 0xA5
	}
	for i := range st.Machine.Dev.UARTOut {
		st.Machine.Dev.UARTOut[i] ^= 0xA5
	}
	for i := range st.Machine.Dev.RadioOut {
		st.Machine.Dev.RadioOut[i].Byte ^= 0xA5
		st.Machine.Dev.RadioOut[i].Cycle ^= 0xFFFF
	}
	for i := range st.Machine.Dev.RadioIn {
		st.Machine.Dev.RadioIn[i] ^= 0xA5
	}
	for i := range st.Kernel.Tasks {
		tk := &st.Kernel.Tasks[i]
		for j := range tk.Regs {
			tk.Regs[j] ^= 0xA5
		}
		tk.PC ^= 0xFFFF
		tk.ServiceCalls[0] ^= 0xFFFF
	}
	if st.Trace != nil {
		for i := range st.Trace.Events {
			st.Trace.Events[i].Cycle ^= 0xFFFF
			st.Trace.Events[i].Detail = "scribbled"
		}
	}
	if st.Telemetry != nil {
		for i := range st.Telemetry.Samples {
			s := &st.Telemetry.Samples[i]
			s.Cycle ^= 0xFFFF
			for j := range s.Tasks {
				s.Tasks[j].RunCycles ^= 0xFFFF
			}
		}
		for i := range st.Telemetry.TaskNames {
			st.Telemetry.TaskNames[i] = "scribbled"
		}
	}
	if st.Energy != nil {
		st.Energy.SleepCycles ^= 0xFFFF
		st.Energy.RadioCycles ^= 0xFFFF
		st.Energy.UARTBytes ^= 0xFFFF
		st.Energy.TimerSince ^= 0xFFFF
		st.Energy.TimerOn = !st.Energy.TimerOn
	}
	if st.Profile != nil {
		for i := range st.Profile.Tasks {
			tp := &st.Profile.Tasks[i]
			for j := range tp.PCs {
				tp.PCs[j].Cycles ^= 0xFFFF
			}
			for j := range tp.Ring {
				tp.Ring[j].Used ^= 0xFFFF
			}
		}
	}

	if err := child.sys.Run(ckptLimit); err != nil {
		t.Fatal(err)
	}
	got, err := child.artifacts()
	if err != nil {
		t.Fatal(err)
	}
	if d := got.diff(f.base); d != "" {
		t.Errorf("scribbling the snapshot after restore changed the run: %s diverges", d)
	}
}

// TestConcurrentAdoptRestore fans eight children out of one parent at once:
// every child adopts the parent's image copy-on-write, restores the same
// in-memory snapshot, and runs to completion on its own goroutine. All eight
// must match the baseline; under -race this pins the shared-image fan-out as
// race-free.
func TestConcurrentAdoptRestore(t *testing.T) {
	fixtures := ckptFixtures(t)
	f := fixtures[len(fixtures)-1]
	p := &f.points[0]

	diffs, err := runPoints(8, 8, func(int) (string, error) {
		got, err := ckptRestoreRun(f, p, "adopt")
		if err != nil {
			return "", err
		}
		return got.diff(f.base), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range diffs {
		if d != "" {
			t.Errorf("child %d: %s diverges from uninterrupted run", i, d)
		}
	}
}

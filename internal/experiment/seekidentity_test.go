package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/snapshot"
	"repro/internal/timetravel"
)

// The seek-identity differential suite: for every kernel benchmark, record
// one run under a time-travel checkpoint ring, then Seek to the same probe
// cycles the resume-identity suite uses (sampling boundary, mid-trap window,
// seeded random cycles) — from the in-memory ring and from the snapshot wire
// bytes — and require the landed system to be byte-identical to a straight
// checked run to the same cycle: the full snapshot encoding plus all five
// artifact streams. Serially and under an 8-way worker pool.

// seekSystem builds the same fully observed system shape as ckptSystem; it
// is the Debugger factory, so every replay carries every observer.
func seekSystem(name string) func() (*core.System, error) {
	return func() (*core.System, error) {
		o, err := ckptSystem(name)
		if err != nil {
			return nil, err
		}
		return o.sys, nil
	}
}

// sysArtifacts collects the five identity streams from a bare system handle
// (the Inspector exposes the system, not the ckptObservers wrapper).
func sysArtifacts(sys *core.System) (ckptArtifacts, error) {
	var a ckptArtifacts
	a.metrics = []byte(sys.Metrics().Render())
	a.trace = sys.Trace().Encode()
	var nb, pb bytes.Buffer
	if err := sys.Telemetry().WriteNDJSON(&nb); err != nil {
		return a, err
	}
	a.ndjson = nb.Bytes()
	if err := sys.Profile().WritePprof(&pb); err != nil {
		return a, err
	}
	a.pprof = pb.Bytes()
	eb, err := json.Marshal(struct {
		State     *energy.MeterState
		Breakdown energy.Breakdown
	}{sys.Energy().CaptureState(), sys.Energy().Report(sys.Machine().Cycles())})
	if err != nil {
		return a, err
	}
	a.energy = eb
	return a, nil
}

func encodeSys(sys *core.System) ([]byte, error) {
	st, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(st)
}

// seekFixture is one benchmark's recorded debugger plus its probe cycles.
type seekFixture struct {
	name   string
	dbg    *timetravel.Debugger
	probes []ckptPoint
}

var seekFix struct {
	once sync.Once
	list []*seekFixture
	err  error
}

// seekFixtures records (once per test binary) every kernel benchmark under
// an 8-slot ring sized so early probes fall before the oldest retained
// checkpoint (boot fallback) and late probes restore from the ring.
func seekFixtures(t *testing.T) []*seekFixture {
	t.Helper()
	seekFix.once.Do(func() {
		for _, f := range ckptFixtures(t) {
			d, err := timetravel.New(seekSystem(f.name), timetravel.Config{
				Checkpoints: 8,
				Every:       f.total / 12,
			})
			if err == nil {
				err = d.Record(ckptLimit)
			}
			if err != nil {
				seekFix.err = fmt.Errorf("%s: record: %w", f.name, err)
				return
			}
			if d.End() != f.total {
				seekFix.err = fmt.Errorf("%s: recorded run ended at %d, baseline at %d (arming the ring perturbed the run)",
					f.name, d.End(), f.total)
				return
			}
			seekFix.list = append(seekFix.list, &seekFixture{
				name:   f.name,
				dbg:    d,
				probes: ckptPoints(f.name, f.total, d.Recorded().Trace().Events()),
			})
		}
	})
	if seekFix.err != nil {
		t.Fatalf("building seek fixtures: %v", seekFix.err)
	}
	return seekFix.list
}

// seekCheck seeks fixture sf to cycle via the given variant and compares the
// landed system against a straight checked run: snapshot bytes first, then
// every artifact stream. Returns "" on identity.
func seekCheck(sf *seekFixture, cycle uint64, variant string) (string, error) {
	seek := sf.dbg.Seek
	if variant == "bytes" {
		seek = sf.dbg.SeekBytes
	}
	insp, err := seek(cycle)
	if err != nil {
		return "", fmt.Errorf("seek: %w", err)
	}

	ref, err := seekSystem(sf.name)()
	if err != nil {
		return "", err
	}
	if err := ref.Boot(); err != nil {
		return "", err
	}
	ref.Machine().SetStepwise(true)
	if err := ref.Run(cycle); err != nil {
		return "", err
	}

	if insp.Cycle() != ref.Machine().Cycles() {
		return fmt.Sprintf("landed on cycle %d, straight run stops at %d", insp.Cycle(), ref.Machine().Cycles()), nil
	}
	gotBlob, err := encodeSys(insp.System())
	if err != nil {
		return "", err
	}
	wantBlob, err := encodeSys(ref)
	if err != nil {
		return "", err
	}
	if !bytes.Equal(gotBlob, wantBlob) {
		return "snapshot bytes diverge from straight run", nil
	}
	got, err := sysArtifacts(insp.System())
	if err != nil {
		return "", err
	}
	want, err := sysArtifacts(ref)
	if err != nil {
		return "", err
	}
	if d := got.diff(want); d != "" {
		return fmt.Sprintf("%s diverges from straight run", d), nil
	}
	return "", nil
}

// TestSeekIdentitySerial pins seek identity benchmark by benchmark over
// every probe kind and both restore paths.
func TestSeekIdentitySerial(t *testing.T) {
	for _, sf := range seekFixtures(t) {
		sf := sf
		t.Run(sf.name, func(t *testing.T) {
			for _, p := range sf.probes {
				for _, variant := range []string{"ring", "bytes"} {
					d, err := seekCheck(sf, p.at, variant)
					if err != nil {
						t.Fatalf("%s/%s at cycle %d: %v", p.kind, variant, p.at, err)
					}
					if d != "" {
						t.Errorf("%s/%s at cycle %d: %s", p.kind, variant, p.at, d)
					}
				}
			}
		})
	}
}

// TestSeekIdentityPooled runs the same benchmark x probe x variant matrix
// through the experiment worker pool at 8 workers; under -race this pins
// concurrent seeks out of one shared debugger (copy-on-write image adoption
// included) as race-free.
func TestSeekIdentityPooled(t *testing.T) {
	fixtures := seekFixtures(t)
	type job struct {
		sf      *seekFixture
		at      uint64
		kind    string
		variant string
	}
	var jobs []job
	for _, sf := range fixtures {
		for _, p := range sf.probes {
			for _, variant := range []string{"ring", "bytes"} {
				jobs = append(jobs, job{sf, p.at, p.kind, variant})
			}
		}
	}
	diffs, err := runPoints(8, len(jobs), func(i int) (string, error) {
		j := jobs[i]
		d, err := seekCheck(j.sf, j.at, j.variant)
		if err != nil {
			return "", fmt.Errorf("%s %s/%s at cycle %d: %w", j.sf.name, j.kind, j.variant, j.at, err)
		}
		if d != "" {
			return fmt.Sprintf("%s %s/%s at cycle %d: %s", j.sf.name, j.kind, j.variant, j.at, d), nil
		}
		return "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		if d != "" {
			t.Error(d)
		}
	}
}

// TestSeekFirstAgainstLinearScan pins SeekFirst's bisection on a real
// workload: the first cycle at which the benchmark's UART transcript reaches
// half its final length, verified against an exhaustive boundary-by-boundary
// scan of a straight checked run.
func TestSeekFirstAgainstLinearScan(t *testing.T) {
	sf := seekFixtures(t)[0]
	total := len(sf.dbg.Recorded().Machine().UARTOutput())
	if total < 2 {
		t.Skipf("%s transmitted %d UART bytes; need at least 2", sf.name, total)
	}
	target := total / 2

	insp, err := sf.dbg.SeekFirst(func(in *timetravel.Inspector) bool {
		return len(in.System().Machine().UARTOutput()) >= target
	})
	if err != nil {
		t.Fatal(err)
	}

	ref, err := seekSystem(sf.name)()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Boot(); err != nil {
		t.Fatal(err)
	}
	ref.Machine().SetStepwise(true)
	rm := ref.Machine()
	for len(rm.UARTOutput()) < target {
		cur := rm.Cycles()
		if err := ref.Run(cur + 1); err != nil {
			t.Fatal(err)
		}
		if rm.Cycles() == cur {
			t.Fatalf("straight run ended before the UART transcript reached %d bytes", target)
		}
	}
	if insp.Cycle() != rm.Cycles() {
		t.Errorf("SeekFirst landed on cycle %d, linear scan says first-true is %d", insp.Cycle(), rm.Cycles())
	}
}

// Package experiment contains the harnesses that regenerate every table and
// figure of the paper's evaluation (Section V). Each harness returns a
// Table whose rows mirror what the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "table2", "fig4"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// seconds renders a cycle count as seconds on the 7.3728 MHz mote.
func seconds(cycles uint64) string {
	return fmt.Sprintf("%.3f", float64(cycles)/7372800.0)
}

// pct renders a ratio as a percentage.
func pct(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func utoa(v uint64) string { return fmt.Sprintf("%d", v) }

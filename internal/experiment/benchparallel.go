package experiment

import (
	"fmt"
	"runtime"
	"time"
)

// ParallelBenchSweep records one sweep timed serially and with the worker
// pool. Identical reports whether the two runs rendered byte-identical
// tables — the engine's determinism guarantee, checked on every benchmark.
type ParallelBenchSweep struct {
	Sweep      string  `json:"sweep"`
	Points     int     `json:"points"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical_output"`
}

// ParallelBench is the BENCH_parallel.json payload: serial vs parallel
// wall-clock for the fig5 and fig6a sweeps, with enough host context
// (GOMAXPROCS, CPU count) to interpret the speedup.
type ParallelBench struct {
	BenchMeta
	Workers     int                  `json:"workers"`
	Activations int                  `json:"fig6_activations"`
	Note        string               `json:"note,omitempty"`
	Sweeps      []ParallelBenchSweep `json:"sweeps"`
}

// BenchParallel times the fig5 and fig6a sweeps once with Concurrency 1 and
// once with the given worker count, and verifies the outputs match byte for
// byte. activations scales the fig6 runs (0 means the paper's 300).
func BenchParallel(workers, activations int) (*ParallelBench, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &ParallelBench{
		BenchMeta:   NewBenchMeta("parallel", "fig5+fig6a"),
		Workers:     workers,
		Activations: activations,
	}
	if b.NumCPU < workers {
		b.Note = fmt.Sprintf("host exposes only %d CPU(s); wall-clock speedup is bounded by the hardware, not the engine", b.NumCPU)
	}

	fig5 := func(r Runner) (string, int, error) {
		t, err := r.Figure5()
		if err != nil {
			return "", 0, err
		}
		return t.Render(), len(t.Rows), nil
	}
	fig6 := func(r Runner) (string, int, error) {
		points, err := r.Figure6(nil, activations)
		if err != nil {
			return "", 0, err
		}
		return Figure6Table(points).Render(), len(points), nil
	}
	for _, sweep := range []struct {
		name string
		run  func(Runner) (string, int, error)
	}{
		{"fig5", fig5},
		{"fig6a", fig6},
	} {
		s := ParallelBenchSweep{Sweep: sweep.name}
		start := time.Now()
		serialOut, n, err := sweep.run(Runner{Concurrency: 1})
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", sweep.name, err)
		}
		s.SerialMs = float64(time.Since(start)) / float64(time.Millisecond)
		s.Points = n
		start = time.Now()
		parallelOut, _, err := sweep.run(Runner{Concurrency: workers})
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", sweep.name, err)
		}
		s.ParallelMs = float64(time.Since(start)) / float64(time.Millisecond)
		if s.ParallelMs > 0 {
			s.Speedup = s.SerialMs / s.ParallelMs
		}
		s.Identical = serialOut == parallelOut
		if !s.Identical {
			return nil, fmt.Errorf("%s: parallel output diverged from serial", sweep.name)
		}
		b.Sweeps = append(b.Sweeps, s)
	}
	return b, nil
}

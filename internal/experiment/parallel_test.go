package experiment

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/progs"
	"repro/internal/rewriter"
)

// TestRunPointsOrdering checks the pool's core contract: results come back
// in sweep-index order no matter how many workers compute them.
func TestRunPointsOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := runPoints(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunPointsError checks that a failing point surfaces the error of the
// lowest failing index — the same error a serial sweep would report — for
// both the serial and the pooled path.
func TestRunPointsError(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := runPoints(workers, 20, func(i int) (int, error) {
			if i >= 7 {
				return 0, errBoom
			}
			return i, nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errBoom)
		}
	}
}

// TestParallelMatchesSerial is the determinism guarantee of the engine:
// fig5 and a small fig6 sweep must render byte-identically with one worker
// and with many.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig5/fig6 sweeps in -short mode")
	}
	serial := Runner{Concurrency: 1}
	pooled := Runner{Concurrency: 4}

	st, err := serial.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := pooled.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if st.Render() != pt.Render() {
		t.Errorf("fig5 diverges between 1 and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s",
			st.Render(), pt.Render())
	}

	sizes := []int{20_000, 60_000}
	sp, err := serial.Figure6(sizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := pooled.Figure6(sizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if Figure6Table(sp).Render() != Figure6Table(pp).Render() {
		t.Errorf("fig6 diverges between 1 and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s",
			Figure6Table(sp).Render(), Figure6Table(pp).Render())
	}
}

// TestConcurrentRewriteSharedProgram rewrites the same source *image.Program
// from many goroutines at once — the sharing pattern figure sweeps create
// when several points naturalize one benchmark — and checks under -race that
// every result is identical and the source image is untouched.
func TestConcurrentRewriteSharedProgram(t *testing.T) {
	prog := progs.CRC(120)
	origWords := append([]uint16(nil), prog.Words...)

	ref, err := rewriter.Rewrite(prog, rewriter.Config{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*rewriter.Naturalized, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = rewriter.Rewrite(prog, rewriter.Config{})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("rewrite %d: %v", i, errs[i])
		}
		if len(results[i].Program.Words) != len(ref.Program.Words) {
			t.Fatalf("rewrite %d: %d words, want %d",
				i, len(results[i].Program.Words), len(ref.Program.Words))
		}
		for w := range ref.Program.Words {
			if results[i].Program.Words[w] != ref.Program.Words[w] {
				t.Fatalf("rewrite %d: word %#x = %#04x, want %#04x",
					i, w, results[i].Program.Words[w], ref.Program.Words[w])
			}
		}
	}
	for i, w := range prog.Words {
		if w != origWords[i] {
			t.Fatalf("source image mutated at word %#x", i)
		}
	}
}

package experiment

// Table1 reproduces the qualitative system-capability matrix ("Comparison of
// typical systems"). The SenSmart column reflects what this reproduction
// actually implements; the others restate the paper's classification.
func Table1() *Table {
	return &Table{
		ID:    "table1",
		Title: "Comparison of typical systems (Table I)",
		Header: []string{"Feature", "TinyOS/TinyThread", "Mate", "MANTIS OS",
			"t-kernel", "RETOS", "LiteOS", "SenSmart"},
		Rows: [][]string{
			{"TinyOS Compatible", "N/A", "No", "No", "Yes", "No", "No", "Yes"},
			{"Preemptive Multitasking", "Yes", "No", "Yes", "Partial", "Yes", "Yes", "Yes"},
			{"Concurrent Applications", "No", "N/A", "No", "No", "No", "No", "Yes"},
			{"Interrupt-free Preemption", "Yes", "N/A", "No", "Yes", "No", "No", "Yes"},
			{"Memory Protection", "No", "Yes", "No", "Partial", "Yes", "No", "Yes"},
			{"Logical Memory Address", "No", "N/A", "No", "No", "No", "No", "Yes"},
			{"Physical Mem Management", "Automatic", "Automatic", "Automatic",
				"Automatic", "Automatic", "Manual", "Automatic"},
			{"Stack Relocation", "No", "No", "No", "No", "No", "No", "Yes"},
		},
		Notes: []string{
			"SenSmart column verified against this reproduction: preemption via 1-of-256 backward-branch traps (internal/kernel), isolation via logical addressing, stack relocation in internal/kernel/memory.go.",
		},
	}
}
